module terids

go 1.24
