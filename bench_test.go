// Package bench holds one testing.B benchmark per table and figure of the
// paper's evaluation section (plus the ablation studies). Each benchmark
// regenerates its experiment end to end at a reduced scale; the full-scale
// reports (and the paper-vs-measured comparison) live in EXPERIMENTS.md and
// are produced by cmd/terids-bench.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"time"

	"terids/internal/core"
	"terids/internal/dataset"
	"terids/internal/engine"
	"terids/internal/experiments"
	"terids/internal/obs"
	"terids/internal/snapshot"
	"terids/internal/tuple"
	"terids/internal/wal"
)

// benchParams shrinks the workload so `go test -bench=.` stays tractable
// while still exercising every moving part.
func benchParams(datasets ...string) experiments.Params {
	p := experiments.DefaultParams()
	p.Scale = 0.25
	p.W = 60
	p.MaxStream = 160
	if len(datasets) == 0 {
		datasets = []string{"Citations"}
	}
	p.Datasets = datasets
	return p
}

func runExperiment(b *testing.B, id string, p experiments.Params) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, p); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkTable4DatasetStats regenerates Table 4 (dataset statistics).
func BenchmarkTable4DatasetStats(b *testing.B) {
	runExperiment(b, "table4", benchParams())
}

// BenchmarkTable5ParameterGrid regenerates Table 5 (parameter settings).
func BenchmarkTable5ParameterGrid(b *testing.B) {
	runExperiment(b, "table5", benchParams())
}

// BenchmarkFig4PruningPower regenerates Figure 4 (per-strategy pruning
// power).
func BenchmarkFig4PruningPower(b *testing.B) {
	runExperiment(b, "fig4", benchParams())
}

// BenchmarkFig5aFScore regenerates Figure 5(a) (F-score per method).
func BenchmarkFig5aFScore(b *testing.B) {
	runExperiment(b, "fig5a", benchParams())
}

// BenchmarkFig5bWallClock regenerates Figure 5(b) (wall clock per method).
func BenchmarkFig5bWallClock(b *testing.B) {
	runExperiment(b, "fig5b", benchParams())
}

// BenchmarkFig6Breakdown regenerates Figure 6 (TER-iDS cost breakdown).
func BenchmarkFig6Breakdown(b *testing.B) {
	runExperiment(b, "fig6", benchParams())
}

// BenchmarkFig7Alpha regenerates Figure 7 (efficiency vs α).
func BenchmarkFig7Alpha(b *testing.B) {
	runExperiment(b, "fig7", benchParams())
}

// BenchmarkFig8Rho regenerates Figure 8 (efficiency vs ρ = γ/d).
func BenchmarkFig8Rho(b *testing.B) {
	runExperiment(b, "fig8", benchParams())
}

// BenchmarkFig9MissingRate regenerates Figure 9 (efficiency vs ξ).
func BenchmarkFig9MissingRate(b *testing.B) {
	runExperiment(b, "fig9", benchParams())
}

// BenchmarkFig10Window regenerates Figure 10 (efficiency vs w).
func BenchmarkFig10Window(b *testing.B) {
	runExperiment(b, "fig10", benchParams())
}

// BenchmarkFig11aPivotEta regenerates Figure 11(a) (pivot selection cost vs
// η).
func BenchmarkFig11aPivotEta(b *testing.B) {
	runExperiment(b, "fig11a", benchParams())
}

// BenchmarkFig11bPivotCntMax regenerates Figure 11(b) (pivot selection cost
// vs cntMax).
func BenchmarkFig11bPivotCntMax(b *testing.B) {
	runExperiment(b, "fig11b", benchParams())
}

// BenchmarkFig12CDDDetect regenerates Figure 12 (offline CDD detection
// cost).
func BenchmarkFig12CDDDetect(b *testing.B) {
	runExperiment(b, "fig12", benchParams())
}

// BenchmarkFig13FScoreXi regenerates Figure 13 (F-score vs ξ).
func BenchmarkFig13FScoreXi(b *testing.B) {
	p := benchParams()
	p.MaxStream = 100
	runExperiment(b, "fig13", p)
}

// BenchmarkFig14FScoreEta regenerates Figure 14 (F-score vs η).
func BenchmarkFig14FScoreEta(b *testing.B) {
	p := benchParams()
	p.MaxStream = 100
	runExperiment(b, "fig14", p)
}

// BenchmarkFig15FScoreM regenerates Figure 15 (F-score vs m).
func BenchmarkFig15FScoreM(b *testing.B) {
	p := benchParams()
	p.MaxStream = 100
	runExperiment(b, "fig15", p)
}

// BenchmarkFig16TimeEta regenerates Figure 16 (efficiency vs η).
func BenchmarkFig16TimeEta(b *testing.B) {
	p := benchParams()
	p.MaxStream = 100
	runExperiment(b, "fig16", p)
}

// BenchmarkFig17TimeM regenerates Figure 17 (efficiency vs m).
func BenchmarkFig17TimeM(b *testing.B) {
	p := benchParams()
	p.MaxStream = 100
	runExperiment(b, "fig17", p)
}

// BenchmarkAblationPruning measures TER-iDS with each pruning strategy
// disabled (design-choice ablation; results identical, cost moves).
func BenchmarkAblationPruning(b *testing.B) {
	runExperiment(b, "ablation-pruning", benchParams())
}

// BenchmarkAblationPivot compares entropy-selected pivots against naive
// first-value pivots (the Section 5.4 design choice).
func BenchmarkAblationPivot(b *testing.B) {
	runExperiment(b, "ablation-pivot", benchParams())
}

// engineFixture caches one dataset + offline state for the engine
// throughput benchmarks, so iterations measure only the online phase.
type engineFixture struct {
	sh     *core.Shared
	cfg    core.Config
	stream []*tuple.Record
}

var (
	engineFixOnce sync.Once
	engineFix     engineFixture
	engineFixErr  error
)

func loadEngineFixture(b *testing.B) engineFixture {
	b.Helper()
	engineFixOnce.Do(func() {
		prof, err := dataset.ProfileByName("Citations")
		if err != nil {
			engineFixErr = err
			return
		}
		data, err := dataset.Generate(prof, dataset.Options{
			Scale: 1, MissingRate: 0.3, MissingAttrs: 1, RepoRatio: 0.5, Seed: 1,
		})
		if err != nil {
			engineFixErr = err
			return
		}
		sh, err := core.Prepare(data.Repo, core.DefaultPrepareConfig(data.Keywords))
		if err != nil {
			engineFixErr = err
			return
		}
		engineFix = engineFixture{
			sh: sh,
			cfg: core.Config{
				Keywords:   data.Keywords,
				Gamma:      0.5 * float64(data.Schema.D()),
				Alpha:      0.5,
				WindowSize: 200,
				Streams:    2,
			},
			stream: data.Stream,
		}
	})
	if engineFixErr != nil {
		b.Fatalf("engine fixture: %v", engineFixErr)
	}
	return engineFix
}

// BenchmarkProcessorBaseline is the single-threaded tuples/sec reference
// the engine benchmarks are compared against.
func BenchmarkProcessorBaseline(b *testing.B) {
	f := loadEngineFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc, err := core.NewProcessor(f.sh, f.cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.stream {
			if _, err := proc.Advance(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(f.stream))/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkSnapshotRoundtrip measures the checkpoint subsystem end to end:
// barrier-checkpoint a loaded engine, encode to the binary format, decode,
// and rebuild a fresh engine from it. It reports the checkpoint size
// (ckpt_bytes) alongside the roundtrip latency, so the perf trajectory of
// both restore cost and on-disk footprint is tracked PR-over-PR.
func BenchmarkSnapshotRoundtrip(b *testing.B) {
	f := loadEngineFixture(b)
	eng, err := engine.New(f.sh, engine.Config{Core: f.cfg, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	for _, r := range f.stream {
		if err := eng.Submit(r); err != nil {
			b.Fatal(err)
		}
	}
	// Drain before timing: the first Checkpoint otherwise waits out the
	// whole submitted stream and the b.N=1 CI smoke run would measure
	// engine throughput instead of the snapshot roundtrip.
	if _, err := eng.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	var bytesOut int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := eng.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := snapshot.Encode(&buf, c); err != nil {
			b.Fatal(err)
		}
		bytesOut = buf.Len()
		c2, err := snapshot.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		restored, err := engine.NewFromSnapshot(f.sh, engine.Config{Core: f.cfg, Shards: 4}, c2)
		if err != nil {
			b.Fatal(err)
		}
		if err := restored.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(bytesOut), "ckpt_bytes")
}

// BenchmarkWALAppend measures the durable ingest path's write-ahead log
// append under group commit: parallel appenders reserve strictly ordered
// slots (as engine submissions do under the submission lock) and then wait
// for durability together, sharing fsyncs. Reports appends/s and the
// on-disk bytes per entry.
func BenchmarkWALAppend(b *testing.B) {
	l, err := wal.Open(b.TempDir(), wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	values := []string{"an incomplete stream tuple", "-", "topic-aware entity resolution", "sigmod"}
	var mu sync.Mutex
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			seq := next
			next++
			tk, err := l.Reserve(wal.Entry{
				Seq: seq, RID: fmt.Sprintf("r%d", seq), Stream: int(seq % 4),
				TupleSeq: seq, EntityID: -1, Values: values,
			}, true)
			mu.Unlock()
			if err != nil {
				panic(err)
			}
			if err := tk.Wait(); err != nil {
				panic(err)
			}
		}
	})
	b.StopTimer()
	st := l.Stats()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "appends/s")
	if st.NextSeq > 0 {
		b.ReportMetric(float64(st.Bytes)/float64(st.NextSeq), "diskB/entry")
	}
}

// BenchmarkRecovery measures crash recovery end to end: restore the
// mid-stream snapshot, then replay the WAL suffix (half the stream) through
// the full pipeline. Reports replayed tuples/s — the number that, against
// -checkpoint-interval, bounds restart time.
func BenchmarkRecovery(b *testing.B) {
	f := loadEngineFixture(b)
	dir := b.TempDir()
	d, err := engine.OpenDurable(f.sh, engine.Config{Core: f.cfg, Shards: 4},
		engine.DurableConfig{Dir: dir, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	mid := len(f.stream) / 2
	for i, r := range f.stream {
		if err := d.Eng.Submit(r); err != nil {
			b.Fatal(err)
		}
		if i+1 == mid {
			if _, err := d.CheckpointNow(); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Close without a final checkpoint: the directory now holds a snapshot
	// at mid plus a WAL to the end — a crash image every iteration recovers.
	if err := d.Close(false); err != nil {
		b.Fatal(err)
	}
	replayed := len(f.stream) - mid
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d2, err := engine.OpenDurable(f.sh, engine.Config{Core: f.cfg, Shards: 4},
			engine.DurableConfig{Dir: dir, NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := d2.Close(false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*replayed)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkDeltaCheckpoint measures the incremental-checkpoint path against
// its full-snapshot equivalent: compute the v3 delta between two barrier
// checkpoints 50 arrivals apart, encode it, decode it, and apply it back
// onto the base. Reports the delta's wire size (delta_bytes) next to the
// full checkpoint's (full_bytes) — the on-disk saving that makes frequent
// checkpointing cheap.
func BenchmarkDeltaCheckpoint(b *testing.B) {
	f := loadEngineFixture(b)
	eng, err := engine.New(f.sh, engine.Config{Core: f.cfg, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	cut := len(f.stream) - 50
	for _, r := range f.stream[:cut] {
		if err := eng.Submit(r); err != nil {
			b.Fatal(err)
		}
	}
	base, err := eng.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range f.stream[cut:] {
		if err := eng.Submit(r); err != nil {
			b.Fatal(err)
		}
	}
	cur, err := eng.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	var fullBuf bytes.Buffer
	if err := snapshot.Encode(&fullBuf, cur); err != nil {
		b.Fatal(err)
	}
	var deltaBytes int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := snapshot.ComputeDelta(base, cur)
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := snapshot.EncodeDelta(&buf, d); err != nil {
			b.Fatal(err)
		}
		deltaBytes = buf.Len()
		d2, err := snapshot.DecodeDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := snapshot.ApplyDelta(base, d2); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(deltaBytes), "delta_bytes")
	b.ReportMetric(float64(fullBuf.Len()), "full_bytes")
}

// BenchmarkDeepReplay measures WAL-backed result regeneration end to end:
// a throwaway engine restored at the replay base re-runs the whole logged
// stream through the full pipeline, exactly what serves a /results?from=
// cursor that fell behind the in-memory ring. Reports regenerated tuples/s —
// the number that bounds how far behind a consumer can fall and still catch
// up.
func BenchmarkDeepReplay(b *testing.B) {
	f := loadEngineFixture(b)
	d, err := engine.OpenDurable(f.sh, engine.Config{Core: f.cfg, Shards: 4},
		engine.DurableConfig{Dir: b.TempDir(), NoSync: true, DeltaEvery: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close(false)
	for i, r := range f.stream {
		if err := d.Eng.Submit(r); err != nil {
			b.Fatal(err)
		}
		if (i+1)%(len(f.stream)/4) == 0 {
			if _, err := d.CheckpointNow(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := d.Eng.Checkpoint(); err != nil { // barrier = drain
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := d.DeepReplay(context.Background(), 0, 0, 0, func(engine.Result) bool {
			n++
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != len(f.stream) {
			b.Fatalf("deep replay regenerated %d results, want %d", n, len(f.stream))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(f.stream))/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkRebalance measures the online rebalance end to end — barrier
// drain, checkpoint capture, state teardown, weighted restore at the new
// layout, pipeline resume — on a loaded engine, alternating K=4 ↔ K=8. This
// is the pause an adaptive rebalance inflicts on a live stream; reports the
// resident count moved per rebalance alongside the latency.
func BenchmarkRebalance(b *testing.B) {
	f := loadEngineFixture(b)
	eng, err := engine.New(f.sh, engine.Config{Core: f.cfg, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	for _, r := range f.stream {
		if err := eng.Submit(r); err != nil {
			b.Fatal(err)
		}
	}
	// Drain before timing, so the first rebalance's barrier does not charge
	// the whole submitted stream to the measurement.
	if _, err := eng.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	residents := 0
	for _, ss := range eng.Stats().PerShard {
		residents += int(ss.Residents)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := 8
		if i%2 == 1 {
			k = 4
		}
		if err := eng.Rebalance(eng.BalancedLayout(k)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(residents), "residents")
}

// BenchmarkEngineShards measures sharded engine throughput at K ∈
// {1, 2, 4, 8} over the same stream as BenchmarkProcessorBaseline, giving
// future PRs a perf trajectory to track. On a 4+ core runner K=4 should
// deliver ≥ 2× the baseline's tuples/s; on fewer cores the pipeline only
// breaks even against channel overhead.
// mallocs snapshots the process-wide cumulative allocation count. Deltas
// around a timed loop capture concurrent pipeline goroutines' allocations
// too — which b.ReportAllocs (current-goroutine only under RunParallel, but
// whole-process here) also reflects; the explicit metric feeds
// BENCH_engine.json regardless of -benchmem.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// runEngineStream drives one fresh engine through the fixture stream in
// batches of bs and returns the allocations attributed to the timed region
// (submission through drain; engine construction happens with the timer
// stopped). The process-wide Mallocs delta captures the pipeline goroutines'
// allocations, not just this one's.
func runEngineStream(b *testing.B, f engineFixture, k, bs int) uint64 {
	b.StopTimer()
	eng, err := engine.New(f.sh, engine.Config{Core: f.cfg, Shards: k})
	if err != nil {
		b.Fatal(err)
	}
	b.StartTimer()
	a0 := mallocs()
	for off := 0; off < len(f.stream); off += bs {
		end := off + bs
		if end > len(f.stream) {
			end = len(f.stream)
		}
		if err := eng.SubmitBatch(f.stream[off:end]); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
	return mallocs() - a0
}

func BenchmarkEngineShards(b *testing.B) {
	f := loadEngineFixture(b)
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprint(k), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var allocs uint64
			for i := 0; i < b.N; i++ {
				allocs += runEngineStream(b, f, k, 64)
			}
			b.StopTimer()
			arrivals := float64(b.N * len(f.stream))
			b.ReportMetric(arrivals/b.Elapsed().Seconds(), "tuples/s")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/arrivals, "ns_per_arrival")
			b.ReportMetric(float64(allocs)/arrivals, "allocs_per_arrival")
		})
	}
}

// BenchmarkSubmitBatch measures the batched hot path end to end at K=4
// across batch sizes (1 = the single-Submit path). batch_ns_per_arrival and
// batch_allocs_per_arrival land in BENCH_engine.json; the per-batch
// amortization of the submission lock and channel hops should make both fall
// as the batch grows.
func BenchmarkSubmitBatch(b *testing.B) {
	f := loadEngineFixture(b)
	for _, bs := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprint(bs), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var allocs uint64
			for i := 0; i < b.N; i++ {
				allocs += runEngineStream(b, f, 4, bs)
			}
			b.StopTimer()
			arrivals := float64(b.N * len(f.stream))
			b.ReportMetric(arrivals/b.Elapsed().Seconds(), "tuples/s")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/arrivals, "batch_ns_per_arrival")
			b.ReportMetric(float64(allocs)/arrivals, "batch_allocs_per_arrival")
		})
	}
}

// BenchmarkInstrumentedSubmit quantifies the observability tax: the same
// stream runs once through an instrumented engine (ns/op, tuples/s — the
// timed measurement) and once with Config.ObsOff, and the per-arrival
// difference is reported as obs_overhead_ns. CI publishes it into
// BENCH_engine.json so the cost of each new instrument is tracked
// PR-over-PR; noise can drive small values slightly negative.
func BenchmarkInstrumentedSubmit(b *testing.B) {
	f := loadEngineFixture(b)
	run := func(b *testing.B, cfg engine.Config) {
		eng, err := engine.New(f.sh, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.stream {
			if err := eng.Submit(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A private registry per iteration: the default-instrumented path,
		// without cross-benchmark accumulation in obs.Default().
		run(b, engine.Config{Core: f.cfg, Shards: 4, Obs: obs.NewRegistry()})
	}
	b.StopTimer()
	instrumented := b.Elapsed()

	baselineStart := time.Now()
	for i := 0; i < b.N; i++ {
		run(b, engine.Config{Core: f.cfg, Shards: 4, ObsOff: true})
	}
	baseline := time.Since(baselineStart)

	arrivals := float64(b.N * len(f.stream))
	b.ReportMetric(float64(instrumented-baseline)/arrivals, "obs_overhead_ns")
	b.ReportMetric(arrivals/instrumented.Seconds(), "tuples/s")
}
