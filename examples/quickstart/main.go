// Quickstart: the smallest complete TER-iDS pipeline — build a repository,
// prepare the offline state (pivots, rules, indexes), then stream a handful
// of tuples with a missing attribute through the processor and print the
// topic-related matches it maintains.
package main

import (
	"fmt"
	"log"

	"terids/internal/core"
	"terids/internal/repository"
	"terids/internal/tuple"
)

func main() {
	log.SetFlags(0)

	// A 3-attribute schema over textual values.
	schema := tuple.MustSchema("name", "features", "category")

	// The static complete repository R: historical records the imputation
	// rules are mined from.
	mk := func(rid, name, features, category string) *tuple.Record {
		return tuple.MustRecord(schema, rid, 0, 0, []string{name, features, category})
	}
	repo, err := repository.Build(schema, []*tuple.Record{
		mk("s1", "trail runner pro", "grip sole light mesh", "running shoes"),
		mk("s2", "trail runner", "grip sole light mesh vent", "running shoes"),
		mk("s3", "trail runner max", "grip sole mesh vent", "running shoes"),
		mk("s4", "city sneaker", "flat sole canvas", "casual shoes"),
		mk("s5", "city sneaker lite", "flat sole canvas light", "casual shoes"),
		mk("s6", "city sneaker", "flat sole canvas soft", "casual shoes"),
		mk("s7", "peak boot", "ankle support leather", "hiking boots"),
		mk("s8", "peak boot gtx", "ankle support leather waterproof", "hiking boots"),
		mk("s9", "peak boot", "ankle leather waterproof", "hiking boots"),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Offline phase: pivot selection, rule detection, index construction.
	keywords := []string{"running"} // the query topic K
	sh, err := core.Prepare(repo, core.DefaultPrepareConfig(keywords))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: %d rules detected from %d samples\n", sh.Rules.Len(), repo.Len())

	// Online phase: two streams, window of 4, similarity > 2 of 3,
	// probability > 0.4.
	proc, err := core.NewProcessor(sh, core.Config{
		Keywords:   keywords,
		Gamma:      2.0,
		Alpha:      0.4,
		WindowSize: 4,
		Streams:    2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream arrivals; r3's category is missing ("-") and is imputed from
	// the repository via CDD rules before resolution.
	arrivals := []*tuple.Record{
		tuple.MustRecord(schema, "a1", 0, 0, []string{"trail runner pro", "grip sole light mesh", "running shoes"}),
		tuple.MustRecord(schema, "b1", 1, 1, []string{"city sneaker", "flat sole canvas", "casual shoes"}),
		tuple.MustRecord(schema, "b2", 1, 2, []string{"trail runner pro", "grip sole light mesh vent", "-"}),
		tuple.MustRecord(schema, "a2", 0, 3, []string{"peak boot gtx", "ankle support leather waterproof", "hiking boots"}),
	}
	for _, r := range arrivals {
		pairs, err := proc.Advance(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("arrival %-3s -> %d new match(es)\n", r.RID, len(pairs))
		for _, p := range pairs {
			fmt.Printf("  %s ~ %s with probability %.2f\n", p.A.RID, p.B.RID, p.Prob)
		}
	}

	fmt.Printf("\nlive entity set (%d pairs):\n", proc.Results().Len())
	for _, p := range proc.Results().Pairs() {
		fmt.Printf("  %s ~ %s (Pr=%.2f)\n", p.A.RID, p.B.RID, p.Prob)
	}
}
