// Bibliography runs topic-aware deduplication over the Citations profile
// (the paper's DBLP-ACM analog): two citation sources stream records with
// occasionally missing venues/years, and we look for duplicate "database"
// publications online. It also demonstrates the CSV round trip and a
// side-by-side comparison of TER-iDS against the DD-rule baseline on the
// same stream.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"terids/internal/core"
	"terids/internal/dataset"
	"terids/internal/metrics"
	"terids/internal/tuple"
)

func main() {
	log.SetFlags(0)

	prof, err := dataset.ProfileByName("Citations")
	if err != nil {
		log.Fatal(err)
	}
	data, err := dataset.Generate(prof, dataset.Options{
		Scale: 1, MissingRate: 0.3, MissingAttrs: 1, RepoRatio: 0.5, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Persist and re-load the stream through CSV (showing the disk
	// format used by terids-datagen).
	dir, err := os.MkdirTemp("", "terids-bib")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "stream.csv")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tuple.WriteCSV(f, data.Schema, data.Stream); err != nil {
		log.Fatal(err)
	}
	f.Close()
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	_, reloaded, err := tuple.ReadCSV(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-tripped %d citation records through %s\n", len(reloaded), path)

	keywords := []string{"database"}
	sh, err := core.Prepare(data.Repo, core.DefaultPrepareConfig(keywords))
	if err != nil {
		log.Fatal(err)
	}
	gamma := 0.5 * float64(data.Schema.D())
	cfg := core.Config{
		Keywords:   keywords,
		Gamma:      gamma,
		Alpha:      0.5,
		WindowSize: 120,
		Streams:    2,
	}

	run := func(res core.Resolver) map[metrics.PairKey]bool {
		emitted := map[metrics.PairKey]bool{}
		for _, r := range data.Stream {
			pairs, err := res.Advance(r)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range pairs {
				emitted[p.Key()] = true
			}
		}
		return emitted
	}

	ter, err := core.NewProcessor(sh, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dd, err := core.NewBaseline(sh, cfg, core.DDER)
	if err != nil {
		log.Fatal(err)
	}

	truth := data.TruthPairs(cfg.WindowSize, gamma)
	terConf := metrics.Compare(run(ter), truth)
	ddConf := metrics.Compare(run(dd), truth)

	fmt.Printf("ground truth duplicate pairs about %v: %d\n", keywords, len(truth))
	fmt.Printf("TER-iDS  F-score %.2f%% (P %.1f%% / R %.1f%%)\n",
		terConf.F1()*100, terConf.Precision()*100, terConf.Recall()*100)
	fmt.Printf("DD+ER    F-score %.2f%% (P %.1f%% / R %.1f%%)\n",
		ddConf.F1()*100, ddConf.Precision()*100, ddConf.Recall()*100)
	if terConf.F1() < ddConf.F1() {
		fmt.Println("note: CDD imputation usually beats DD imputation; on tiny streams ties happen")
	}
}
