// Healthforum reproduces Example 1 of the paper (online health community
// support): posts with (Gender, Symptom, Diagnosis, Treatment) arrive from
// two health groups; information extraction leaves some attributes missing;
// a medical professional registers diabetes-related topics and receives the
// matching post pairs online — including pair (a1, c2)-style matches where
// one side's diagnosis had to be imputed.
package main

import (
	"fmt"
	"log"

	"terids/internal/core"
	"terids/internal/repository"
	"terids/internal/tuple"
)

func main() {
	log.SetFlags(0)

	schema := tuple.MustSchema("Gender", "Symptom", "Diagnosis", "Treatment")

	// Historical complete posts (the repository R of Section 2.2); the
	// Gender+Symptom -> Diagnosis association lives in this data.
	mk := func(rid string, vals ...string) *tuple.Record {
		return tuple.MustRecord(schema, rid, 0, 0, vals)
	}
	var hist []*tuple.Record
	diabetes := [][2]string{
		{"thirst weight loss blurred vision", "diabetes"},
		{"weight loss blurred vision thirst fatigue", "diabetes"},
		{"thirst weight loss vision", "diabetes"},
		{"blurred vision thirst weight", "diabetes"},
	}
	flu := [][2]string{
		{"fever cough fatigue aches", "flu"},
		{"fever cough aches chills", "flu"},
		{"cough fatigue fever", "flu"},
	}
	eye := [][2]string{
		{"red eye itchy shed tears", "conjunctivitis"},
		{"red eye itchy tears", "conjunctivitis"},
	}
	i := 0
	for _, group := range [][][2]string{diabetes, flu, eye} {
		for _, g := range group {
			for _, gender := range []string{"male", "female"} {
				i++
				treatment := map[string]string{
					"diabetes":       "dietary therapy drug therapy",
					"flu":            "drink more sleep more",
					"conjunctivitis": "eye drop",
				}[g[1]]
				hist = append(hist, mk(fmt.Sprintf("h%02d", i), gender, g[0], g[1], treatment))
			}
		}
	}
	repo, err := repository.Build(schema, hist)
	if err != nil {
		log.Fatal(err)
	}

	// The medical professional's expertise topics.
	keywords := []string{"diabetes"}
	sh, err := core.Prepare(repo, core.DefaultPrepareConfig(keywords))
	if err != nil {
		log.Fatal(err)
	}
	proc, err := core.NewProcessor(sh, core.Config{
		Keywords:   keywords,
		Gamma:      2.2, // of d = 4
		Alpha:      0.3,
		WindowSize: 6,
		Streams:    2, // two health groups/forums
	})
	if err != nil {
		log.Fatal(err)
	}

	// Table 1's posts arriving online. a2's Diagnosis and Treatment are
	// missing — exactly the motivating case: its symptoms point at
	// diabetes, and imputation lets it match diabetes posts on the other
	// forum.
	posts := []*tuple.Record{
		tuple.MustRecord(schema, "a1", 0, 0, []string{"male", "thirst weight loss blurred vision", "diabetes", "dietary therapy drug therapy"}),
		tuple.MustRecord(schema, "b1", 1, 1, []string{"female", "fever cough aches", "flu", "-"}),
		tuple.MustRecord(schema, "a2", 0, 2, []string{"male", "weight loss blurred vision thirst", "-", "-"}),
		tuple.MustRecord(schema, "c1", 1, 3, []string{"female", "red eye itchy shed tears", "conjunctivitis", "eye drop"}),
		tuple.MustRecord(schema, "c2", 1, 4, []string{"male", "thirst blurred vision weight loss", "diabetes", "drug therapy dietary therapy"}),
	}
	fmt.Println("monitoring diabetes-related posts across two forums:")
	for _, r := range posts {
		pairs, err := proc.Advance(r)
		if err != nil {
			log.Fatal(err)
		}
		status := ""
		if !r.IsComplete() {
			status = " (incomplete -> imputed)"
		}
		fmt.Printf("post %s arrives%s\n", r.RID, status)
		for _, p := range pairs {
			fmt.Printf("  ALERT: %s ~ %s look like the same case (Pr=%.2f)\n", p.A.RID, p.B.RID, p.Prob)
		}
	}

	fmt.Printf("\npairs forwarded to the professional: %d\n", proc.Results().Len())
	for _, p := range proc.Results().Pairs() {
		fmt.Printf("  %s ~ %s (Pr=%.2f)\n", p.A.RID, p.B.RID, p.Prob)
	}
	if !proc.Results().Has("a2", "c2") {
		log.Fatal("expected the imputed post a2 to match c2 (the paper's motivating pair)")
	}
}
