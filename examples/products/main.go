// Products demonstrates the e-commerce motivation of Section 1: a customer
// watches crawled product descriptions from two marketplaces (incomplete —
// crawlers miss fields), registers a product-type topic ("headphones"), and
// receives groups of the latest matching offers. It uses the synthetic
// Bikes-style generator machinery with a custom profile to show how to
// define one.
package main

import (
	"fmt"
	"log"

	"terids/internal/core"
	"terids/internal/dataset"
	"terids/internal/metrics"
)

func main() {
	log.SetFlags(0)

	// A custom dataset profile: two marketplaces listing the same product
	// catalog with noisy titles and occasional missing fields.
	profile := dataset.Profile{
		Name:    "Gadgets",
		Attrs:   []string{"title", "brand", "specs", "shop_category"},
		SourceA: 220, SourceB: 260, Entities: 180,
		TokensPerAttr: []int{5, 2, 6, 2},
		VocabPerAttr:  []int{180, 30, 150, 25},
		PerturbRate:   0.13,
		Topics:        []string{"headphones", "speakers", "earbuds"},
		TopicAttr:     0,
		TopicRate:     0.2,
	}
	data, err := dataset.Generate(profile, dataset.Options{
		Scale: 1, MissingRate: 0.25, MissingAttrs: 1, RepoRatio: 0.5, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The customer cares about headphone-type products only.
	keywords := []string{"headphones", "earbuds"}
	sh, err := core.Prepare(data.Repo, core.DefaultPrepareConfig(keywords))
	if err != nil {
		log.Fatal(err)
	}
	gamma := 0.5 * float64(data.Schema.D())
	proc, err := core.NewProcessor(sh, core.Config{
		Keywords:   keywords,
		Gamma:      gamma,
		Alpha:      0.5,
		WindowSize: 80, // "the latest offers"
		Streams:    2,
	})
	if err != nil {
		log.Fatal(err)
	}

	emitted := map[metrics.PairKey]bool{}
	for _, r := range data.Stream {
		pairs, err := proc.Advance(r)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range pairs {
			emitted[p.Key()] = true
		}
	}

	fmt.Printf("streamed %d offers from 2 marketplaces (%d incomplete)\n",
		len(data.Stream), countIncomplete(data))
	fmt.Printf("matching offer pairs about %v seen over the run: %d\n", keywords, len(emitted))
	fmt.Printf("currently live (both offers still in window): %d\n", proc.Results().Len())
	for i, p := range proc.Results().Pairs() {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s ~ %s (Pr=%.2f): %q vs %q\n",
			p.A.RID, p.B.RID, p.Prob, p.A.Value(0), p.B.Value(0))
	}
	topic, _, _, _, total := proc.PruneStats().Power()
	fmt.Printf("work saved by pruning: %.1f%% of candidate pairs (topic pruning alone %.1f%%)\n",
		total, topic)
}

func countIncomplete(d *dataset.Data) int {
	n := 0
	for _, r := range d.Stream {
		if !r.IsComplete() {
			n++
		}
	}
	return n
}
