// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// results (BENCH_engine.json) as a workflow artifact and the perf trajectory
// can be tracked PR-over-PR without scraping logs.
//
// Usage:
//
//	go test -run xxx -bench=. -benchtime=1x ./... | benchjson > BENCH_engine.json
//
// Each benchmark line
//
//	BenchmarkEngineShards/4-8   1   12345 ns/op   67 B/op   8 allocs/op   9999 tuples/s
//
// becomes {"name": "EngineShards/4", "procs": 8, "runs": 1,
// "metrics": {"ns/op": 12345, "B/op": 67, "allocs/op": 8, "tuples/s": 9999}}.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Procs   int                `json:"procs,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     []string `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// parseLine parses one "Benchmark..." output line; ok is false for
// non-benchmark lines.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Procs: procs, Runs: runs, Metrics: map[string]float64{}}
	// The remainder alternates value/unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}

func run(in io.Reader, out io.Writer) error {
	rep := Report{Results: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = append(rep.Pkg, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		default:
			if res, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
