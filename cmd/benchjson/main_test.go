package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: terids
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkProcessorBaseline 	       1	  53197897 ns/op	  7519 tuples/s	27305688 B/op	  319762 allocs/op
BenchmarkEngineShards/4-8         	       1	  14799151 ns/op	 27028 tuples/s	28455344 B/op	  327699 allocs/op
BenchmarkSnapshotRoundtrip 	       1	  43601362 ns/op	     36818 ckpt_bytes	 4658832 B/op	   52021 allocs/op
PASS
ok  	terids	0.293s
`

func TestParseLine(t *testing.T) {
	res, ok := parseLine("BenchmarkEngineShards/4-8 1 14799151 ns/op 27028 tuples/s")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if res.Name != "EngineShards/4" || res.Procs != 8 || res.Runs != 1 {
		t.Fatalf("parsed %+v", res)
	}
	if res.Metrics["ns/op"] != 14799151 || res.Metrics["tuples/s"] != 27028 {
		t.Fatalf("metrics %v", res.Metrics)
	}

	if _, ok := parseLine("ok  	terids	0.293s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
	if _, ok := parseLine("PASS"); ok {
		t.Fatal("PASS accepted")
	}
}

func TestRunProducesReport(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || len(rep.Pkg) != 1 {
		t.Fatalf("header %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rep.Results))
	}
	byName := map[string]Result{}
	for _, r := range rep.Results {
		byName[r.Name] = r
	}
	if byName["SnapshotRoundtrip"].Metrics["ckpt_bytes"] != 36818 {
		t.Fatalf("SnapshotRoundtrip metrics %v", byName["SnapshotRoundtrip"].Metrics)
	}
	// Lines without a -P suffix keep procs 0 ("unspecified").
	if byName["ProcessorBaseline"].Procs != 0 {
		t.Fatalf("ProcessorBaseline procs %d", byName["ProcessorBaseline"].Procs)
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"results": []`) {
		t.Fatalf("empty input must produce an empty results array: %s", out.String())
	}
}
