package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"terids/internal/core"
	"terids/internal/dataset"
	"terids/internal/engine"
	"terids/internal/snapshot"
	"terids/internal/testutil"
	"terids/internal/tuple"
)

type serveFixture struct {
	sh     *core.Shared
	cfg    core.Config
	stream []*tuple.Record
}

var (
	serveFixOnce sync.Once
	serveFix     serveFixture
	serveFixErr  error
)

func loadServeFixture(t *testing.T) serveFixture {
	t.Helper()
	serveFixOnce.Do(func() {
		prof, err := dataset.ProfileByName("Citations")
		if err != nil {
			serveFixErr = err
			return
		}
		data, err := dataset.Generate(prof, dataset.Options{
			Scale: 0.25, MissingRate: 0.3, MissingAttrs: 1, RepoRatio: 0.5, Seed: 7,
		})
		if err != nil {
			serveFixErr = err
			return
		}
		sh, err := core.Prepare(data.Repo, core.DefaultPrepareConfig(data.Keywords))
		if err != nil {
			serveFixErr = err
			return
		}
		stream := data.Stream
		if len(stream) > 200 {
			stream = stream[:200]
		}
		serveFix = serveFixture{
			sh: sh,
			cfg: core.Config{
				Keywords:   data.Keywords,
				Gamma:      0.5 * float64(data.Schema.D()),
				Alpha:      0.4,
				WindowSize: 50,
				Streams:    2,
			},
			stream: stream,
		}
	})
	if serveFixErr != nil {
		t.Fatalf("serve fixture: %v", serveFixErr)
	}
	return serveFix
}

// startServer builds a server + engine pair (optionally from a checkpoint)
// and registers cleanup.
func startServer(t *testing.T, f serveFixture, shards, ringCap int, ckpt *snapshot.Checkpoint) (*server, *httptest.Server) {
	t.Helper()
	ringBase := int64(0)
	if ckpt != nil {
		ringBase = ckpt.Seq
	}
	srv := newServer(f.sh.Schema, ringCap, ringBase, t.TempDir())
	srv.streams = f.cfg.Streams
	cfg := engine.Config{Core: f.cfg, Shards: shards, OnResult: srv.onResult}
	var eng *engine.Engine
	var err error
	if ckpt != nil {
		eng, err = engine.NewFromSnapshot(f.sh, cfg, ckpt)
	} else {
		eng, err = engine.New(f.sh, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	srv.eng = eng
	srv.ready.Store(true)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		close(srv.done)
		ts.Close()
		_ = eng.Close()
	})
	return srv, ts
}

func ndjson(t *testing.T, recs []*tuple.Record) string {
	t.Helper()
	var b strings.Builder
	for _, r := range recs {
		vals := make([]string, r.D())
		for j := range vals {
			vals[j] = r.Value(j)
		}
		line, err := json.Marshal(map[string]any{
			"rid": r.RID, "stream": r.Stream, "seq": r.Seq, "values": vals,
		})
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func ingest(t *testing.T, ts *httptest.Server, recs []*tuple.Record) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/ingest?wait=1", "application/x-ndjson",
		strings.NewReader(ndjson(t, recs)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Accepted int    `json:"accepted"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || out.Accepted != len(recs) {
		t.Fatalf("ingest: status %d accepted %d (%s), want 200/%d",
			resp.StatusCode, out.Accepted, out.Error, len(recs))
	}
}

// readResults streams /results?from= and returns the first n lines.
func readResults(t *testing.T, ts *httptest.Server, query string, n int) []resultLine {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/results"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /results%s: status %d", query, resp.StatusCode)
	}
	var out []resultLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for len(out) < n && sc.Scan() {
		var line resultLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad result line %q: %v", sc.Text(), err)
		}
		out = append(out, line)
	}
	if len(out) < n {
		t.Fatalf("stream ended after %d lines, want %d (scan err %v)", len(out), n, sc.Err())
	}
	return out
}

// TestServeReplayAndSnapshotRestore is the end-to-end operations flow:
// ingest half the stream, replay it exactly from sequence numbers via
// /results?from=, take a barrier checkpoint over HTTP, restore it into a
// second server at a different shard count, finish the stream there, and
// check the final entity set matches an uninterrupted single-threaded run.
func TestServeReplayAndSnapshotRestore(t *testing.T) {
	f := loadServeFixture(t)
	mid := len(f.stream) / 2

	_, ts := startServer(t, f, 2, 4096, nil)
	ingest(t, ts, f.stream[:mid])

	// Barrier checkpoint over HTTP (binary body).
	resp, err := http.Post(ts.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /snapshot: status %d (%s)", resp.StatusCode, body.String())
	}
	ckpt, err := snapshot.Decode(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Seq != int64(mid) {
		t.Fatalf("checkpoint watermark %d, want %d", ckpt.Seq, mid)
	}

	// Replay from 0: every merged result, in order, exactly once.
	lines := readResults(t, ts, "?from=0", mid)
	for i, line := range lines {
		if line.Seq != int64(i) {
			t.Fatalf("replay line %d has seq %d", i, line.Seq)
		}
		if line.RID != f.stream[i].RID {
			t.Fatalf("replay seq %d: rid %s, want %s", i, line.RID, f.stream[i].RID)
		}
	}
	// Replay from a mid-stream sequence.
	tail := readResults(t, ts, fmt.Sprintf("?from=%d", mid-10), 10)
	if tail[0].Seq != int64(mid-10) || tail[9].Seq != int64(mid-1) {
		t.Fatalf("tail replay spans [%d,%d], want [%d,%d]", tail[0].Seq, tail[9].Seq, mid-10, mid-1)
	}

	// Restore into a fresh server at a different shard count and finish.
	srv2, ts2 := startServer(t, f, 4, 4096, ckpt)
	ingest(t, ts2, f.stream[mid:])
	if _, err := srv2.eng.Checkpoint(); err != nil { // barrier = drain
		t.Fatal(err)
	}

	// The restored server's replay starts at the restore watermark...
	cont := readResults(t, ts2, fmt.Sprintf("?from=%d", mid), len(f.stream)-mid)
	if cont[0].Seq != int64(mid) {
		t.Fatalf("restored replay starts at %d, want %d", cont[0].Seq, mid)
	}
	// ...and pre-restore sequences are correctly reported gone.
	goneResp, err := http.Get(ts2.URL + "/results?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer goneResp.Body.Close()
	if goneResp.StatusCode != http.StatusGone {
		t.Fatalf("pre-restore replay: status %d, want 410", goneResp.StatusCode)
	}

	// Final entity set equals the uninterrupted single-threaded reference.
	proc, err := core.NewProcessor(f.sh, f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream {
		if _, err := proc.Advance(r); err != nil {
			t.Fatal(err)
		}
	}
	want := proc.Results().Pairs()
	got := srv2.eng.ResultSet()
	if len(got) != len(want) {
		t.Fatalf("final entity set: server %d pairs, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i].A.RID != want[i].A.RID || got[i].B.RID != want[i].B.RID || got[i].Prob != want[i].Prob {
			t.Fatalf("final pair %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestServeSnapshotToPath covers the server-side checkpoint write, confined
// to the configured checkpoint directory.
func TestServeSnapshotToPath(t *testing.T) {
	f := loadServeFixture(t)
	srv, ts := startServer(t, f, 2, 64, nil)
	ingest(t, ts, f.stream[:40])

	resp, err := http.Post(ts.URL+"/snapshot?path=ckpt.bin", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var meta struct {
		Path      string `json:"path"`
		Seq       int64  `json:"seq"`
		Residents int    `json:"residents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || meta.Seq != 40 {
		t.Fatalf("snapshot?path: status %d meta %+v", resp.StatusCode, meta)
	}
	if meta.Path != srv.ckptDir+"/ckpt.bin" {
		t.Fatalf("checkpoint landed at %s, want inside %s", meta.Path, srv.ckptDir)
	}
	c, err := snapshot.ReadFile(meta.Path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Seq != 40 {
		t.Fatalf("file watermark %d, want 40", c.Seq)
	}

	// Escapes and absolute paths are refused; so is any write when no
	// checkpoint directory is configured.
	for _, bad := range []string{"/etc/passwd", "../escape.bin", "a/../../escape.bin"} {
		resp, err := http.Post(ts.URL+"/snapshot?path="+bad, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("snapshot?path=%s: status %d, want 403", bad, resp.StatusCode)
		}
	}
	srv.ckptDir = ""
	resp2, err := http.Post(ts.URL+"/snapshot?path=ckpt.bin", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Fatalf("snapshot?path with no -checkpoint-dir: status %d, want 403", resp2.StatusCode)
	}
}

// TestServeReplayEviction: a tiny ring loses old results and reports 410
// with the oldest retained sequence.
func TestServeReplayEviction(t *testing.T) {
	f := loadServeFixture(t)
	srv, ts := startServer(t, f, 2, 8, nil)
	ingest(t, ts, f.stream[:50])
	if _, err := srv.eng.Checkpoint(); err != nil { // drain so all 50 merged
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/results?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted replay: status %d, want 410", resp.StatusCode)
	}
	var out struct {
		OldestRetained int64 `json:"oldest_retained"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.OldestRetained != 42 {
		t.Fatalf("oldest_retained %d, want 42", out.OldestRetained)
	}
	// /stats exposes the same retention window, so clients can size from=
	// without probing for a 410.
	st := getStats(t, ts)
	replay, ok := st["replay"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no replay block: %v", st)
	}
	if got := replay["oldest_retained"].(float64); got != 42 {
		t.Fatalf("/stats replay.oldest_retained %v, want 42", got)
	}
	if got := replay["next_seq"].(float64); got != 50 {
		t.Fatalf("/stats replay.next_seq %v, want 50", got)
	}
	if got := replay["retained"].(float64); got != 8 {
		t.Fatalf("/stats replay.retained %v, want 8", got)
	}
	// The retained tail still replays.
	lines := readResults(t, ts, "?from=42", 8)
	if lines[0].Seq != 42 || lines[7].Seq != 49 {
		t.Fatalf("tail spans [%d,%d], want [42,49]", lines[0].Seq, lines[7].Seq)
	}
}

// getStats fetches and decodes /stats.
func getStats(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServeReplayFromFutureSeq: a cursor beyond the newest merged result
// must wait for it — never stream results below the cursor.
func TestServeReplayFromFutureSeq(t *testing.T) {
	f := loadServeFixture(t)
	_, ts := startServer(t, f, 2, 64, nil)
	ingest(t, ts, f.stream[:20])

	body := ndjson(t, f.stream[20:40])
	go func() {
		time.Sleep(300 * time.Millisecond)
		// Results 20..39 arrive while the replay below is already waiting
		// at cursor 25. (No test helpers here: t.Fatal is not allowed off
		// the test goroutine.)
		resp, err := http.Post(ts.URL+"/ingest?wait=1", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
	}()
	lines := readResults(t, ts, "?from=25", 10)
	for i, line := range lines {
		if line.Seq != int64(25+i) {
			t.Fatalf("line %d has seq %d, want %d (cursor must never rewind)", i, line.Seq, 25+i)
		}
	}
}

// startDurableServer boots a server over a durability directory via the
// auto-recovery path (newest checkpoint + WAL replay), exactly as -wal-dir
// does.
func startDurableServer(t *testing.T, f serveFixture, shards, ringCap int, dir string, dcfg engine.DurableConfig) (*server, *engine.Durable, *httptest.Server) {
	t.Helper()
	path, ckpt, err := engine.LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	ringBase := int64(0)
	if ckpt != nil {
		ringBase = ckpt.Seq
	}
	srv := newServer(f.sh.Schema, ringCap, ringBase, "")
	srv.streams = f.cfg.Streams
	dcfg.Dir = dir
	dcfg.Checkpoint = ckpt
	dcfg.CheckpointPath = path
	dcfg.NoSync = true
	dur, err := engine.OpenDurable(f.sh,
		engine.Config{Core: f.cfg, Shards: shards, OnResult: srv.onResult}, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.eng = dur.Eng
	srv.dur.Store(dur)
	srv.ready.Store(true)
	return srv, dur, httptest.NewServer(srv.routes())
}

// readRawResults streams /results?from= and returns the first n raw NDJSON
// lines — for byte-identity comparisons across restarts.
func readRawResults(t *testing.T, ts *httptest.Server, query string, n int) []string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/results"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /results%s: status %d", query, resp.StatusCode)
	}
	var out []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for len(out) < n && sc.Scan() {
		out = append(out, sc.Text())
	}
	if len(out) < n {
		t.Fatalf("stream ended after %d lines, want %d (scan err %v)", len(out), n, sc.Err())
	}
	return out
}

// TestServeDurableRestart is the serving half of the durability contract: a
// client's /results?from= cursor taken before a restart must replay the full
// gap afterwards — served from the WAL-backed ring rebuilt on recovery — with
// no 410, and /stats must surface the subsystem's health.
func TestServeDurableRestart(t *testing.T) {
	f := loadServeFixture(t)
	dir := t.TempDir()

	srv1, dur1, ts1 := startDurableServer(t, f, 2, 4096, dir, engine.DurableConfig{})
	ingest(t, ts1, f.stream[:40])
	if _, err := dur1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	ingest(t, ts1, f.stream[40:100])
	// The "crash": stop serving without a final checkpoint, so sequences
	// [40, 100) exist only in the WAL.
	close(srv1.done)
	ts1.Close()
	if err := dur1.Close(false); err != nil {
		t.Fatal(err)
	}

	srv2, dur2, ts2 := startDurableServer(t, f, 4, 4096, dir, engine.DurableConfig{})
	defer func() {
		close(srv2.done)
		ts2.Close()
		_ = dur2.Close(false)
	}()
	if dur2.ResumeSeq() != 100 || dur2.Replayed() != 60 {
		t.Fatalf("recovery resumed at %d with %d replayed, want 100/60", dur2.ResumeSeq(), dur2.Replayed())
	}

	// A cursor from before the crash, spanning the restart: the whole gap
	// streams back, no 410.
	lines := readResults(t, ts2, "?from=50", 50)
	for i, line := range lines {
		if line.Seq != int64(50+i) {
			t.Fatalf("line %d has seq %d, want %d", i, line.Seq, 50+i)
		}
		if line.RID != f.stream[50+i].RID {
			t.Fatalf("seq %d replayed rid %s, want %s", line.Seq, line.RID, f.stream[50+i].RID)
		}
	}
	// Live ingest continues seamlessly after the replayed gap.
	ingest(t, ts2, f.stream[100:120])
	cont := readResults(t, ts2, "?from=95", 25)
	if cont[0].Seq != 95 || cont[24].Seq != 119 {
		t.Fatalf("spanning read covers [%d,%d], want [95,119]", cont[0].Seq, cont[24].Seq)
	}
	// Results older than the restored checkpoint never entered the rebuilt
	// ring, but the WAL still reaches back to genesis — deep replay
	// regenerates them exactly instead of the pre-PR 410.
	pre := readResults(t, ts2, "?from=10", 40)
	for i, line := range pre {
		if line.Seq != int64(10+i) {
			t.Fatalf("deep-replayed line %d has seq %d, want %d", i, line.Seq, 10+i)
		}
		if line.RID != f.stream[10+i].RID {
			t.Fatalf("deep-replayed seq %d has rid %s, want %s", line.Seq, line.RID, f.stream[10+i].RID)
		}
	}

	// /stats surfaces WAL and checkpointer health.
	st := getStats(t, ts2)
	durStats, ok := st["durability"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no durability block: %v", st)
	}
	walStats := durStats["wal"].(map[string]any)
	if got := walStats["next_seq"].(float64); got != 120 {
		t.Fatalf("durability.wal.next_seq %v, want 120", got)
	}
	if got := walStats["segments"].(float64); got < 1 {
		t.Fatalf("durability.wal.segments %v, want >= 1", got)
	}
	if got := durStats["replayed"].(float64); got != 60 {
		t.Fatalf("durability.replayed %v, want 60", got)
	}
	if got := durStats["last_checkpoint_seq"].(float64); got != 40 {
		t.Fatalf("durability.last_checkpoint_seq %v, want 40", got)
	}
	if durStats["recovered_from"].(string) == "" {
		t.Fatal("durability.recovered_from empty after a snapshot recovery")
	}
	// The replay block reflects deep-replay reach: the ring starts at the
	// restored watermark, but /results?from= can reach back to genesis.
	replay, ok := st["replay"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no replay block: %v", st)
	}
	if got := replay["oldest_retained"].(float64); got != 0 {
		t.Fatalf("/stats replay.oldest_retained %v, want 0 (deep-replay reach)", got)
	}
	if got := replay["ring_oldest"].(float64); got != 40 {
		t.Fatalf("/stats replay.ring_oldest %v, want 40", got)
	}
	if got := replay["deep_replays"].(float64); got < 1 {
		t.Fatalf("/stats replay.deep_replays %v, want >= 1", got)
	}
}

// TestServeIngestRateLimit: per-stream token buckets — an over-limit stream
// gets 429 with Retry-After while other streams keep flowing, and /stats
// counts the rejections.
func TestServeIngestRateLimit(t *testing.T) {
	f := loadServeFixture(t)
	srv, ts := startServer(t, f, 1, 64, nil)
	srv.limiter = newRateLimiter(1, 3) // 1 tuple/sec, burst 3

	var s0, s1 []*tuple.Record
	for _, r := range f.stream {
		if r.Stream == 0 && len(s0) < 6 {
			s0 = append(s0, r)
		}
		if r.Stream == 1 && len(s1) < 3 {
			s1 = append(s1, r)
		}
	}
	resp, err := http.Post(ts.URL+"/ingest?wait=1", "application/x-ndjson",
		strings.NewReader(ndjson(t, s0)))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Accepted int    `json:"accepted"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit ingest: status %d, want 429", resp.StatusCode)
	}
	if out.Accepted != 3 {
		t.Fatalf("accepted %d lines before the limit, want the burst of 3", out.Accepted)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 carries Retry-After %q, want >= 1 second", ra)
	}
	// Stream 1's bucket is untouched by stream 0's exhaustion.
	ingest(t, ts, s1)
	if got := getStats(t, ts)["rate_limited"].(float64); got != 1 {
		t.Fatalf("/stats rate_limited %v, want 1", got)
	}
	// Out-of-range stream ids are rejected BEFORE the limiter, so arbitrary
	// client-chosen ids cannot grow its bucket map.
	bad, err := http.Post(ts.URL+"/ingest", "application/x-ndjson",
		strings.NewReader(`{"rid":"x","stream":999999,"values":["a","b","c","d"]}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range stream: status %d, want 400", bad.StatusCode)
	}
	srv.limiter.mu.Lock()
	nBuckets := len(srv.limiter.buckets)
	srv.limiter.mu.Unlock()
	if nBuckets > f.cfg.Streams {
		t.Fatalf("limiter holds %d buckets for %d streams: invalid ids leaked in", nBuckets, f.cfg.Streams)
	}
}

// TestServeCrashRestartRingRebuild is the black-box restart test of the
// replay paths: ingest over HTTP, SIGKILL-style teardown (the durability
// directory is cloned mid-flight, exactly the bytes a kill -9 leaves — no
// drain, no exit checkpoint), reboot a -wal-dir server on the clone with a
// replay ring too small to hold the backlog, and a /results?from= cursor
// taken before the crash — including one far below the rebuilt ring — must
// resume across the restart without a 410, byte-identical to the pre-crash
// stream: the ring serves its window, WAL-backed deep replay regenerates
// everything below it.
func TestServeCrashRestartRingRebuild(t *testing.T) {
	f := loadServeFixture(t)
	dir := t.TempDir()

	srv1, dur1, ts1 := startDurableServer(t, f, 2, 4096, dir, engine.DurableConfig{})
	ingest(t, ts1, f.stream[:40])
	if _, err := dur1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	ingest(t, ts1, f.stream[40:100])
	// The byte-level reference: the full pre-crash result stream as the
	// uninterrupted server serialized it.
	want := readRawResults(t, ts1, "?from=0", 100)
	// The kill: clone the durable state while the server is still up. The
	// teardown below is only goroutine hygiene — recovery works off the
	// clone, which never saw a graceful close.
	crashDir := t.TempDir()
	testutil.CopyTree(t, dir, crashDir)
	close(srv1.done)
	ts1.Close()
	if err := dur1.Close(false); err != nil {
		t.Fatal(err)
	}

	// Restart with a 16-slot ring: the rebuilt ring holds only [84, 100), so
	// every earlier cursor exercises deep replay.
	srv2, dur2, ts2 := startDurableServer(t, f, 4, 16, crashDir, engine.DurableConfig{})
	defer func() {
		close(srv2.done)
		ts2.Close()
		_ = dur2.Close(false)
	}()
	if dur2.ResumeSeq() != 100 || dur2.Replayed() != 60 {
		t.Fatalf("crash recovery resumed at %d with %d replayed, want 100/60", dur2.ResumeSeq(), dur2.Replayed())
	}
	// A cursor far below the ring (and below the restored checkpoint at 40):
	// the whole history streams back byte-identical to the pre-crash run —
	// deep replay for [0, 84), the live ring from there.
	got := readRawResults(t, ts2, "?from=0", 100)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deep-replayed line %d differs across the crash:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	// A mid-gap cursor spans the restart the same way: no 410, no gap, no
	// rewind.
	lines := readResults(t, ts2, "?from=50", 50)
	for i, line := range lines {
		if line.Seq != int64(50+i) {
			t.Fatalf("line %d has seq %d, want %d", i, line.Seq, 50+i)
		}
		if line.RID != f.stream[50+i].RID {
			t.Fatalf("seq %d replayed rid %s, want %s", line.Seq, line.RID, f.stream[50+i].RID)
		}
	}
	// Live ingest continues seamlessly past the recovered frontier.
	ingest(t, ts2, f.stream[100:110])
	cont := readResults(t, ts2, "?from=98", 12)
	if cont[0].Seq != 98 || cont[11].Seq != 109 {
		t.Fatalf("spanning read covers [%d,%d], want [98,109]", cont[0].Seq, cont[11].Seq)
	}
	// The recovered server also exposes metrics: recovery + live traffic left
	// samples in the WAL and stage families.
	mresp, mbody := get(t, ts2.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK || mbody == "" {
		t.Fatalf("/metrics after crash recovery: status %d, %d bytes", mresp.StatusCode, len(mbody))
	}
	for _, want := range []string{"terids_arrivals_total", "terids_wal_commit_seconds_count"} {
		if !strings.Contains(mbody, want) {
			t.Fatalf("post-recovery /metrics missing %s", want)
		}
	}
}

// TestServeDeepReplayDepthAndPrunedCoverage pins down when 410 is still the
// answer: a cursor below the deep-replay reach (WAL genuinely truncated by
// checkpoint pruning), or a gap wider than -replay-depth allows. In both
// cases oldest_retained names the deepest reachable sequence.
func TestServeDeepReplayDepthAndPrunedCoverage(t *testing.T) {
	f := loadServeFixture(t)
	dir := t.TempDir()

	// Tiny WAL segments + KeepCheckpoints=1 so pruning genuinely drops
	// coverage below the newest checkpoint; an 8-slot ring forces every old
	// cursor through the deep-replay path.
	srv, dur, ts := startDurableServer(t, f, 2, 8, dir,
		engine.DurableConfig{SegmentBytes: 512, KeepCheckpoints: 1})
	defer func() {
		close(srv.done)
		ts.Close()
		_ = dur.Close(false)
	}()
	ingest(t, ts, f.stream[:60])
	if _, err := dur.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	ingest(t, ts, f.stream[60:100])
	if _, err := dur.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	st := dur.Stats()
	if st.WAL.FirstSeq == 0 {
		t.Skip("wal not truncated at this segment size; cannot exercise pruned coverage")
	}
	if st.ReplayReach != 100 {
		t.Fatalf("deep-replay reach %d, want 100 (the only retained checkpoint)", st.ReplayReach)
	}

	// Below the reach: genuinely gone, and oldest_retained names the oldest
	// cursor that WOULD work — the ring's tail (92), since the ring reaches
	// further down than the pruned checkpoint+WAL coverage here.
	resp, err := http.Get(ts.URL + "/results?from=20")
	if err != nil {
		t.Fatal(err)
	}
	var gone struct {
		OldestRetained int64 `json:"oldest_retained"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&gone); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone || gone.OldestRetained != 92 {
		t.Fatalf("below-coverage cursor: status %d oldest %d, want 410/92", resp.StatusCode, gone.OldestRetained)
	}

	// At the reach: deep replay serves it even though the ring starts at 92.
	ingest(t, ts, f.stream[100:120])
	lines := readResults(t, ts, "?from=100", 20)
	for i, line := range lines {
		if line.Seq != int64(100+i) {
			t.Fatalf("line %d has seq %d, want %d", i, line.Seq, 100+i)
		}
	}

	// Depth bound: a 3-arrival budget cannot regenerate the 12-arrival gap
	// to the ring's tail (112).
	srv.replayDepth = 3
	resp2, err := http.Get(ts.URL + "/results?from=100")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusGone {
		t.Fatalf("over-depth replay: status %d, want 410", resp2.StatusCode)
	}
	// The gate measures to the splice point, not the WAL frontier: 15 covers
	// the 12-arrival gap to the ring even though the frontier is 20 away.
	srv.replayDepth = 15
	tail := readResults(t, ts, "?from=100", 20)
	if tail[0].Seq != 100 || tail[19].Seq != 119 {
		t.Fatalf("in-depth replay spans [%d,%d], want [100,119]", tail[0].Seq, tail[19].Seq)
	}
	srv.replayDepth = 0
}

// TestServeRebalanceEndpoint drives the admin rebalance over HTTP: shard
// count change + weighted layout mid-ingest, surfaced counters in /stats,
// parameter validation, and — the part that matters — a final entity set
// identical to the uninterrupted single-threaded reference.
func TestServeRebalanceEndpoint(t *testing.T) {
	f := loadServeFixture(t)
	srv, ts := startServer(t, f, 2, 4096, nil)
	mid := len(f.stream) / 2
	ingest(t, ts, f.stream[:mid])

	resp, err := http.Post(ts.URL+"/rebalance?shards=4", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Shards          int     `json:"shards"`
		Seq             int64   `json:"seq"`
		DurationMS      float64 `json:"duration_ms"`
		ImbalanceBefore float64 `json:"imbalance_before"`
		ImbalanceAfter  float64 `json:"imbalance_after"`
		Rebalances      int64   `json:"rebalances"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /rebalance: status %d", resp.StatusCode)
	}
	if out.Shards != 4 || out.Seq != int64(mid) || out.Rebalances != 1 {
		t.Fatalf("rebalance reply %+v, want shards=4 seq=%d rebalances=1", out, mid)
	}
	if out.DurationMS <= 0 {
		t.Fatalf("rebalance reported duration %v ms", out.DurationMS)
	}

	// Ingest continues on the rebalanced engine; the merged output must be
	// untouched by the layout change.
	ingest(t, ts, f.stream[mid:])
	if _, err := srv.eng.Checkpoint(); err != nil { // barrier = drain
		t.Fatal(err)
	}
	proc, err := core.NewProcessor(f.sh, f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream {
		if _, err := proc.Advance(r); err != nil {
			t.Fatal(err)
		}
	}
	want := proc.Results().Pairs()
	got := srv.eng.ResultSet()
	if len(got) != len(want) {
		t.Fatalf("final entity set after rebalance: %d pairs, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i].A.RID != want[i].A.RID || got[i].B.RID != want[i].B.RID || got[i].Prob != want[i].Prob {
			t.Fatalf("final pair %d differs after rebalance: %+v vs %+v", i, got[i], want[i])
		}
	}

	// /stats surfaces the shard count, per-shard residents, the imbalance
	// ratio, and the rebalance counters.
	st := getStats(t, ts)
	engStats, ok := st["engine"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no engine block: %v", st)
	}
	if got := engStats["shards"].(float64); got != 4 {
		t.Fatalf("/stats engine.shards %v, want 4", got)
	}
	if perShard := engStats["per_shard"].([]any); len(perShard) != 4 {
		t.Fatalf("/stats per_shard has %d entries, want 4", len(perShard))
	}
	if _, ok := engStats["imbalance"].(float64); !ok {
		t.Fatalf("/stats engine.imbalance missing: %v", engStats)
	}
	reb, ok := engStats["rebalance"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no rebalance block: %v", engStats)
	}
	if got := reb["rebalances"].(float64); got != 1 {
		t.Fatalf("/stats rebalance.rebalances %v, want 1", got)
	}

	// Parameter validation: shard counts outside [1, MaxShards] are 400s.
	for _, bad := range []string{"0", "-2", "9999", "abc"} {
		resp, err := http.Post(ts.URL+"/rebalance?shards="+bad, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST /rebalance?shards=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestServeBadFrom rejects malformed replay cursors.
func TestServeBadFrom(t *testing.T) {
	f := loadServeFixture(t)
	_, ts := startServer(t, f, 1, 8, nil)
	for _, q := range []string{"?from=abc", "?from=-3", "?from=1.5"} {
		resp, err := http.Get(ts.URL + "/results" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /results%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestServeIngestBatched: with -ingest-batch > 1, /ingest groups NDJSON
// lines into one engine submission per batch — and the result stream stays
// byte-identical to the submit-per-line server. A bad line mid-request still
// honours the per-line contract: the parsed prefix is flushed and counted
// before the error is reported, so the client resumes from accepted+1.
func TestServeIngestBatched(t *testing.T) {
	f := loadServeFixture(t)
	n := len(f.stream) - 5 // keep 5 records for the error-mid-batch case
	if n > 115 {
		n = 115
	}

	single, tsSingle := startServer(t, f, 2, 256, nil)
	if single.ingestBatch != 1 {
		t.Fatalf("newServer defaults ingestBatch=%d, want 1", single.ingestBatch)
	}
	ingest(t, tsSingle, f.stream[:n])

	batched, tsBatched := startServer(t, f, 2, 256, nil)
	batched.ingestBatch = 7 // uneven vs. n: exercises the trailing partial flush
	ingest(t, tsBatched, f.stream[:n])

	want := readResults(t, tsSingle, "?from=0", n)
	got := readResults(t, tsBatched, "?from=0", n)
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("result %d diverges under batching:\n  batched: %+v\n  per-line: %+v", i, got[i], want[i])
		}
	}

	// A malformed line after 5 good ones: 400, accepted=5 (prefix flushed),
	// and the 5 flushed arrivals show up in /results.
	body := ndjson(t, f.stream[n:n+5]) + "{\"rid\":\"\",\"stream\":0,\"values\":[]}\n"
	resp, err := http.Post(tsBatched.URL+"/ingest?wait=1", "application/x-ndjson",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Accepted int    `json:"accepted"`
		Line     int    `json:"line"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad line mid-batch: status %d, want 400", resp.StatusCode)
	}
	if out.Accepted != 5 || out.Line != 6 {
		t.Fatalf("bad line mid-batch: accepted=%d line=%d (%s), want accepted=5 line=6",
			out.Accepted, out.Line, out.Error)
	}
	flushed := readResults(t, tsBatched, fmt.Sprintf("?from=%d", n), 5)
	for i, line := range flushed {
		if line.RID != f.stream[n+i].RID {
			t.Fatalf("flushed prefix arrival %d: rid %q, want %q", i, line.RID, f.stream[n+i].RID)
		}
	}
}
