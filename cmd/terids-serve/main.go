// Command terids-serve exposes the sharded TER-iDS engine as an HTTP ingest
// server: incomplete tuples are POSTed as NDJSON, flow through the
// concurrent impute → shard → merge pipeline, and matching pairs stream back
// out as they are detected.
//
// The offline state (repository, rules, indexes) is bootstrapped from one of
// the built-in synthetic dataset profiles; the online phase then accepts
// arbitrary tuples over that profile's schema.
//
// Endpoints:
//
//	POST /ingest    NDJSON arrivals {"rid","stream","seq","values":[...]}
//	                ("-" or "" marks a missing attribute). Backpressure comes
//	                from the engine's bounded queues: when the ingest queue is
//	                full the server replies 429 (with Retry-After) unless the
//	                request opts into blocking with ?wait=1.
//	GET  /results   live NDJSON stream of per-arrival results (matches +
//	                expirations); ?snapshot=1 returns the current entity set;
//	                ?from=seq replays the retained merged results with
//	                sequence >= seq before going live (410 Gone once seq
//	                falls off the replay ring).
//	POST /snapshot  barrier checkpoint of the full engine state; ?path=
//	                writes it server-side under -checkpoint-dir (disabled
//	                unless that flag is set), otherwise the binary
//	                checkpoint is the response body.
//	POST /rebalance admin trigger for an online shard rebalance (barrier →
//	                weighted layout → resume); ?shards=K changes the shard
//	                count, ?weighted=0 uses the uniform modulo layout.
//	GET  /stats     engine + server counters as JSON, including per-shard
//	                residents, the imbalance ratio, and rebalance counters.
//	GET  /healthz   liveness.
//
// Operations: -wal-dir <dir> turns on the durability subsystem — every
// accepted arrival is group-committed to a write-ahead log before it enters
// the pipeline, a background checkpointer (-checkpoint-interval) snapshots
// the full engine state atomically and prunes obsolete WAL segments, and on
// boot the server auto-recovers: newest snapshot + WAL replay rebuilds the
// exact pre-crash state, including the /results replay ring, so a client
// cursor taken before the crash resumes across the restart without a 410.
// -rate-limit caps per-stream ingest (token bucket per stream id; over-limit
// lines get 429 with Retry-After). -restore <file> boots the engine from an
// explicit checkpoint instead (mutually exclusive with -wal-dir);
// -checkpoint-on-exit <file> makes SIGINT/SIGTERM drain the pipeline and
// write a final checkpoint before exiting. -rebalance-threshold plus
// -rebalance-interval enable the adaptive skew monitor: when topic skew
// keeps the most loaded shard over threshold × the per-shard mean, the
// engine rebalances online (checkpoints carry the layout, so -wal-dir
// recovery resumes balanced).
//
// Usage:
//
//	terids-serve -addr :8080 -dataset Citations -shards 4 -alpha 0.5 -rho 0.5
//	terids-serve -wal-dir state/ -checkpoint-interval 30s -rate-limit 1000
//	curl -X POST --data-binary @arrivals.ndjson localhost:8080/ingest
//	curl -N localhost:8080/results
//	curl -X POST 'localhost:8080/snapshot?path=ckpt.bin'   # needs -checkpoint-dir
//	curl -N 'localhost:8080/results?from=1000'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"terids/internal/cliutil"
	"terids/internal/core"
	"terids/internal/dataset"
	"terids/internal/engine"
	"terids/internal/snapshot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("terids-serve: ")

	var (
		addr       = flag.String("addr", ":8080", "listen address")
		name       = flag.String("dataset", "Citations", "dataset profile bootstrapping the repository/schema")
		alpha      = flag.Float64("alpha", 0.5, "probabilistic threshold α in [0,1)")
		rho        = flag.Float64("rho", 0.5, "similarity ratio ρ (γ = ρ·d)")
		w          = flag.Int("w", 200, "sliding window size")
		streams    = flag.Int("streams", 2, "number of incoming streams")
		eta        = flag.Float64("eta", 0.5, "repository size ratio η")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor")
		seed       = flag.Int64("seed", 1, "generation seed")
		shards     = flag.Int("shards", 0, "ER-grid shards (0 = GOMAXPROCS, max 8)")
		queue      = flag.Int("queue", 256, "bounded queue depth per pipeline stage")
		keywords   = flag.String("keywords", "", "comma-separated query keywords (default: the profile's topics)")
		replayCap  = flag.Int("replay-buffer", 4096, "merged results retained for /results?from= replay")
		restore    = flag.String("restore", "", "boot the engine from this checkpoint file")
		ckptOnExit = flag.String("checkpoint-on-exit", "", "drain and write a final checkpoint here on SIGINT/SIGTERM")
		ckptDir    = flag.String("checkpoint-dir", "", "directory /snapshot?path= may write into (empty = server-side writes disabled)")
		walDir     = flag.String("wal-dir", "", "durability root: write-ahead log + periodic checkpoints + auto-recovery on boot")
		ckptEvery  = flag.Duration("checkpoint-interval", 0, "background checkpoint period (0 = disabled; requires -wal-dir)")
		ckptKeep   = flag.Int("checkpoint-keep", 2, "snapshots retained under -wal-dir (older ones and their WAL segments are pruned)")
		rateLimit  = flag.Float64("rate-limit", 0, "per-stream ingest rate limit in tuples/sec (0 = unlimited; over-limit gets 429 + Retry-After)")
		rateBurst  = flag.Int("rate-burst", 0, "per-stream token-bucket burst (0 = one second's worth of -rate-limit)")
		rebThresh  = flag.Float64("rebalance-threshold", 0, "imbalance ratio (max shard residents / mean) arming an automatic online rebalance (0 = disabled; requires -rebalance-interval)")
		rebEvery   = flag.Duration("rebalance-interval", 0, "skew monitor sampling period (required with -rebalance-threshold)")
	)
	flag.Parse()
	if err := (cliutil.Params{
		Alpha: *alpha, Rho: *rho, W: *w, Streams: *streams, Shards: *shards,
		Queue: *queue, Scale: *scale, Eta: *eta, Xi: 0.3, RateLimit: *rateLimit,
	}).Validate(); err != nil {
		log.Fatal(err)
	}
	if err := (cliutil.Durability{
		WALDir: *walDir, Restore: *restore,
		CheckpointInterval: *ckptEvery, CheckpointKeep: *ckptKeep,
	}).Validate(); err != nil {
		log.Fatal(err)
	}
	if err := (cliutil.Rebalance{
		Threshold: *rebThresh, Interval: *rebEvery,
	}).Validate(); err != nil {
		log.Fatal(err)
	}
	if *replayCap < 1 {
		log.Fatalf("-replay-buffer %d, need >= 1", *replayCap)
	}

	prof, err := dataset.ProfileByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	data, err := dataset.Generate(prof, dataset.Options{
		Scale: *scale, RepoRatio: *eta, Seed: *seed,
		MissingRate: 0.3, MissingAttrs: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	kws := data.Keywords
	if *keywords != "" {
		kws = strings.Split(*keywords, ",")
	}
	log.Printf("offline phase: dataset %s, repository %d tuples, keywords %v", prof.Name, data.Repo.Len(), kws)
	sh, err := core.Prepare(data.Repo, core.DefaultPrepareConfig(kws))
	if err != nil {
		log.Fatal(err)
	}

	var ckpt *snapshot.Checkpoint
	ckptPath := ""
	if *restore != "" {
		ckpt, err = snapshot.ReadFile(*restore)
		if err != nil {
			log.Fatal(err)
		}
		ckptPath = *restore
	} else if *walDir != "" {
		// Auto-recovery: the newest snapshot under the durability root seeds
		// both the engine and the replay ring's base; the WAL suffix past its
		// watermark is replayed below, before the listener starts.
		ckptPath, ckpt, err = engine.LatestCheckpoint(*walDir)
		if err != nil {
			log.Fatal(err)
		}
	}
	if ckpt != nil {
		log.Printf("restoring %s: watermark %d, %d residents, %d live pairs (captured at K=%d)",
			ckptPath, ckpt.Seq, len(ckpt.Residents), len(ckpt.Pairs), ckpt.Shards)
	}

	ringBase := int64(0)
	if ckpt != nil {
		ringBase = ckpt.Seq
	}
	srv := newServer(sh.Schema, *replayCap, ringBase, *ckptDir)
	srv.limiter = newRateLimiter(*rateLimit, *rateBurst)
	srv.streams = *streams
	engCfg := engine.Config{
		Core: core.Config{
			Keywords: kws, Gamma: *rho * float64(sh.Schema.D()), Alpha: *alpha,
			WindowSize: *w, Streams: *streams,
		},
		Shards:     *shards,
		QueueDepth: *queue,
		OnResult:   srv.onResult,
		Rebalance: engine.RebalanceConfig{
			Threshold: *rebThresh, Interval: *rebEvery, Logf: log.Printf,
		},
	}
	var eng *engine.Engine
	var dur *engine.Durable
	switch {
	case *walDir != "":
		dur, err = engine.OpenDurable(sh, engCfg, engine.DurableConfig{
			Dir: *walDir, CheckpointInterval: *ckptEvery, KeepCheckpoints: *ckptKeep,
			Checkpoint: ckpt, CheckpointPath: ckptPath, Logf: log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		eng = dur.Eng
		log.Printf("durable: wal at %s, resumed at seq %d (%d arrivals replayed)",
			*walDir, dur.ResumeSeq(), dur.Replayed())
	case ckpt != nil:
		eng, err = engine.NewFromSnapshot(sh, engCfg, ckpt)
	default:
		eng, err = engine.New(sh, engCfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	srv.eng = eng
	srv.dur = dur

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	go func() {
		log.Printf("listening on %s (%d shards, schema %v)", *addr, eng.Stats().Shards, sh.Schema.Attrs())
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	close(srv.done)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	// Close drains every accepted arrival through the pipeline, so the exit
	// checkpoint below captures a consistent final state. With a WAL this
	// also writes one last snapshot, making the next boot replay-free.
	if dur != nil {
		if err := dur.Close(true); err != nil {
			log.Fatalf("durable shutdown: %v", err)
		}
	} else if err := eng.Close(); err != nil {
		log.Fatalf("engine: %v", err)
	}
	if *ckptOnExit != "" {
		c, err := eng.Checkpoint()
		if err != nil {
			log.Fatalf("final checkpoint: %v", err)
		}
		if err := snapshot.WriteFile(*ckptOnExit, c); err != nil {
			log.Fatalf("final checkpoint: %v", err)
		}
		log.Printf("wrote final checkpoint %s (watermark %d, %d residents, %d live pairs)",
			*ckptOnExit, c.Seq, len(c.Residents), len(c.Pairs))
	}
}
