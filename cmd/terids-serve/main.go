// Command terids-serve exposes the sharded TER-iDS engine as an HTTP ingest
// server: incomplete tuples are POSTed as NDJSON, flow through the
// concurrent impute → shard → merge pipeline, and matching pairs stream back
// out as they are detected.
//
// The offline state (repository, rules, indexes) is bootstrapped from one of
// the built-in synthetic dataset profiles; the online phase then accepts
// arbitrary tuples over that profile's schema.
//
// Endpoints:
//
//	POST /ingest   NDJSON arrivals {"rid","stream","seq","values":[...]}
//	               ("-" or "" marks a missing attribute). Backpressure comes
//	               from the engine's bounded queues: when the ingest queue is
//	               full the server replies 429 (with Retry-After) unless the
//	               request opts into blocking with ?wait=1.
//	GET  /results  live NDJSON stream of per-arrival results (matches +
//	               expirations); ?snapshot=1 returns the current entity set.
//	GET  /stats    engine + server counters as JSON.
//	GET  /healthz  liveness.
//
// Usage:
//
//	terids-serve -addr :8080 -dataset Citations -shards 4 -alpha 0.5 -rho 0.5
//	curl -X POST --data-binary @arrivals.ndjson localhost:8080/ingest
//	curl -N localhost:8080/results
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"terids/internal/core"
	"terids/internal/dataset"
	"terids/internal/engine"
	"terids/internal/tuple"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("terids-serve: ")

	var (
		addr     = flag.String("addr", ":8080", "listen address")
		name     = flag.String("dataset", "Citations", "dataset profile bootstrapping the repository/schema")
		alpha    = flag.Float64("alpha", 0.5, "probabilistic threshold α in [0,1)")
		rho      = flag.Float64("rho", 0.5, "similarity ratio ρ (γ = ρ·d)")
		w        = flag.Int("w", 200, "sliding window size")
		streams  = flag.Int("streams", 2, "number of incoming streams")
		eta      = flag.Float64("eta", 0.5, "repository size ratio η")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		seed     = flag.Int64("seed", 1, "generation seed")
		shards   = flag.Int("shards", 0, "ER-grid shards (0 = GOMAXPROCS, max 8)")
		queue    = flag.Int("queue", 256, "bounded queue depth per pipeline stage")
		keywords = flag.String("keywords", "", "comma-separated query keywords (default: the profile's topics)")
	)
	flag.Parse()

	prof, err := dataset.ProfileByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	data, err := dataset.Generate(prof, dataset.Options{
		Scale: *scale, RepoRatio: *eta, Seed: *seed,
		MissingRate: 0.3, MissingAttrs: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	kws := data.Keywords
	if *keywords != "" {
		kws = strings.Split(*keywords, ",")
	}
	log.Printf("offline phase: dataset %s, repository %d tuples, keywords %v", prof.Name, data.Repo.Len(), kws)
	sh, err := core.Prepare(data.Repo, core.DefaultPrepareConfig(kws))
	if err != nil {
		log.Fatal(err)
	}

	srv := &server{schema: sh.Schema, done: make(chan struct{})}
	eng, err := engine.New(sh, engine.Config{
		Core: core.Config{
			Keywords: kws, Gamma: *rho * float64(sh.Schema.D()), Alpha: *alpha,
			WindowSize: *w, Streams: *streams,
		},
		Shards:     *shards,
		QueueDepth: *queue,
		OnResult:   srv.broadcast,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.eng = eng

	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", srv.handleIngest)
	mux.HandleFunc("GET /results", srv.handleResults)
	mux.HandleFunc("GET /stats", srv.handleStats)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, "ok")
	})

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		log.Printf("listening on %s (%d shards, schema %v)", *addr, eng.Stats().Shards, sh.Schema.Attrs())
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	close(srv.done)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	if err := eng.Close(); err != nil {
		log.Fatalf("engine: %v", err)
	}
}

// server wires the engine into HTTP handlers plus a result broadcaster.
type server struct {
	eng    *engine.Engine
	schema *tuple.Schema
	// done is closed on shutdown so idle /results streams exit instead of
	// pinning http.Server.Shutdown to its deadline.
	done chan struct{}

	mu      sync.Mutex
	subs    map[chan engine.Result]struct{}
	dropped atomic.Int64
	autoSeq atomic.Int64
}

// arrival is one /ingest NDJSON line.
type arrival struct {
	RID    string   `json:"rid"`
	Stream int      `json:"stream"`
	Seq    *int64   `json:"seq,omitempty"`
	Values []string `json:"values"`
}

// resultLine is one /results NDJSON line.
type resultLine struct {
	Seq      int64      `json:"seq"`
	RID      string     `json:"rid"`
	Rejected bool       `json:"rejected,omitempty"`
	Expired  []string   `json:"expired,omitempty"`
	Pairs    []pairLine `json:"pairs"`
}

type pairLine struct {
	A    string  `json:"a"`
	B    string  `json:"b"`
	Prob float64 `json:"prob"`
}

func toLine(res engine.Result) resultLine {
	line := resultLine{Seq: res.Seq, RID: res.RID, Rejected: res.Rejected, Expired: res.Expired, Pairs: []pairLine{}}
	for _, p := range res.Pairs {
		line.Pairs = append(line.Pairs, pairLine{A: p.A.RID, B: p.B.RID, Prob: p.Prob})
	}
	return line
}

// broadcast fans one engine result out to all /results subscribers without
// ever blocking the merger: slow subscribers drop.
func (s *server) broadcast(res engine.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ch := range s.subs {
		select {
		case ch <- res:
		default:
			s.dropped.Add(1)
		}
	}
}

func (s *server) subscribe() chan engine.Result {
	ch := make(chan engine.Result, 256)
	s.mu.Lock()
	if s.subs == nil {
		s.subs = make(map[chan engine.Result]struct{})
	}
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	return ch
}

func (s *server) unsubscribe(ch chan engine.Result) {
	s.mu.Lock()
	delete(s.subs, ch)
	s.mu.Unlock()
}

// handleIngest parses NDJSON arrivals and submits them in request order.
func (s *server) handleIngest(rw http.ResponseWriter, req *http.Request) {
	wait := req.URL.Query().Get("wait") == "1"
	sc := bufio.NewScanner(req.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	accepted := 0
	lineNo := 0
	reply := func(status int, msg string) {
		rw.Header().Set("Content-Type", "application/json")
		if status == http.StatusTooManyRequests {
			rw.Header().Set("Retry-After", "1")
		}
		rw.WriteHeader(status)
		_ = json.NewEncoder(rw).Encode(map[string]any{
			"accepted": accepted, "line": lineNo, "error": msg,
		})
	}
	for sc.Scan() {
		lineNo++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var a arrival
		if err := json.Unmarshal([]byte(raw), &a); err != nil {
			reply(http.StatusBadRequest, fmt.Sprintf("line %d: %v", lineNo, err))
			return
		}
		if a.RID == "" {
			reply(http.StatusBadRequest, fmt.Sprintf("line %d: missing rid", lineNo))
			return
		}
		seq := s.autoSeq.Add(1)
		if a.Seq != nil {
			seq = *a.Seq
		}
		rec, err := tuple.NewRecord(s.schema, a.RID, a.Stream, seq, a.Values)
		if err != nil {
			reply(http.StatusBadRequest, fmt.Sprintf("line %d: %v", lineNo, err))
			return
		}
		if wait {
			err = s.eng.Submit(rec)
		} else {
			err = s.eng.TrySubmit(rec)
		}
		switch {
		case errors.Is(err, engine.ErrOverloaded):
			reply(http.StatusTooManyRequests, "ingest queue full")
			return
		case errors.Is(err, engine.ErrInvalidRecord):
			reply(http.StatusBadRequest, fmt.Sprintf("line %d: %v", lineNo, err))
			return
		case err != nil:
			reply(http.StatusServiceUnavailable, err.Error())
			return
		}
		accepted++
	}
	if err := sc.Err(); err != nil {
		reply(http.StatusBadRequest, err.Error())
		return
	}
	reply(http.StatusOK, "")
}

// handleResults streams live per-arrival results as NDJSON; ?snapshot=1
// returns the current entity set instead.
func (s *server) handleResults(rw http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("snapshot") == "1" {
		pairs := s.eng.ResultSet()
		out := make([]pairLine, 0, len(pairs))
		for _, p := range pairs {
			out = append(out, pairLine{A: p.A.RID, B: p.B.RID, Prob: p.Prob})
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(map[string]any{"live_pairs": out})
		return
	}
	fl, ok := rw.(http.Flusher)
	if !ok {
		http.Error(rw, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch := s.subscribe()
	defer s.unsubscribe(ch)
	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	fl.Flush()
	enc := json.NewEncoder(rw)
	for {
		select {
		case res := <-ch:
			if err := enc.Encode(toLine(res)); err != nil {
				return
			}
			fl.Flush()
		case <-req.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}

// handleStats reports aggregated engine stats plus server-side counters.
func (s *server) handleStats(rw http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	s.mu.Lock()
	nSubs := len(s.subs)
	s.mu.Unlock()
	topic, simUB, probUB, instPair, total := st.Totals.Prune.Power()
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(map[string]any{
		"engine": st,
		"breakdown": map[string]any{
			"select_ns": st.Totals.Breakdown.Select.Nanoseconds(),
			"impute_ns": st.Totals.Breakdown.Impute.Nanoseconds(),
			"er_ns":     st.Totals.Breakdown.ER.Nanoseconds(),
			"total_ns":  st.Totals.Breakdown.Total().Nanoseconds(),
		},
		"prune_power": map[string]float64{
			"topic": topic, "sim_ub": simUB, "prob_ub": probUB,
			"inst_pair": instPair, "total": total,
		},
		"subscribers":     nSubs,
		"dropped_results": s.dropped.Load(),
	})
}
