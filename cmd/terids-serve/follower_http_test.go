package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"terids/internal/engine"
	"terids/internal/obs"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFollowerHTTPModeAndPromotion is the serving-layer replica contract:
// a follower server refuses writes with a reasoned 503, serves reads
// identical to the writer's state, refuses promotion while the writer is
// alive, and after the writer dies flips to a fully functional writer on
// POST /promote — ingest resumes on the same process.
func TestFollowerHTTPModeAndPromotion(t *testing.T) {
	f := loadServeFixture(t)
	n := len(f.stream)
	cut := n / 2
	dir := t.TempDir()

	w, err := engine.OpenDurable(f.sh, engine.Config{Core: f.cfg, Shards: 2},
		engine.DurableConfig{Dir: dir, NoSync: true, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	writerOpen := true
	defer func() {
		if writerOpen {
			_ = w.Close(false)
		}
	}()

	srv := newServer(f.sh.Schema, 1024, 0, "")
	srv.streams = f.cfg.Streams
	fol, err := engine.OpenFollower(f.sh,
		engine.Config{Core: f.cfg, Shards: 2, OnResult: srv.onResult},
		engine.FollowerConfig{Dir: dir, Poll: 2 * time.Millisecond,
			Durable: engine.DurableConfig{NoSync: true}})
	if err != nil {
		t.Fatal(err)
	}
	srv.eng = fol.Eng
	srv.fol = fol
	srv.mode.Store(modeFollowing)
	srv.ready.Store(true)
	ts := httptest.NewServer(srv.routes())
	defer func() {
		close(srv.done)
		ts.Close()
		if d := srv.durable(); d != nil {
			_ = d.Close(false)
		}
		_ = fol.Close()
	}()

	for _, r := range f.stream[:cut] {
		if err := w.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "follower caught up over HTTP", func() bool {
		return fol.Eng.Completed() == int64(cut) && fol.Lag() == 0
	})

	// Writes are refused with the promotion hint while following.
	for _, path := range []string{"/ingest", "/rebalance"} {
		resp, err := http.Post(ts.URL+path, "application/x-ndjson", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s on a follower = %d, want 503", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "read-only replica") {
			t.Fatalf("POST %s 503 body %q does not name the follower role", path, body)
		}
	}

	// Promotion is refused while the writer holds the liveness lock.
	resp, err := http.Post(ts.URL+"/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote with a live writer = %d, want 409", resp.StatusCode)
	}

	// /stats carries the follower block.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	folStats, ok := stats["follower"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no follower block: %v", stats)
	}
	if alive, _ := folStats["writer_alive"].(bool); !alive {
		t.Fatalf("follower stats do not report the live writer: %v", folStats)
	}

	// The writer dies; takeover succeeds and is idempotent.
	if err := w.Close(false); err != nil {
		t.Fatal(err)
	}
	writerOpen = false
	promote := func() map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+"/promote", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("promote after writer death = %d: %s", resp.StatusCode, body)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := promote()
	if got, _ := first["resume_seq"].(float64); int64(got) != int64(cut) {
		t.Fatalf("promotion resumed at %v, want %d", first["resume_seq"], cut)
	}
	again := promote()
	if already, _ := again["already"].(bool); !already {
		t.Fatalf("second promote did not report the promoted state: %v", again)
	}

	// Ingest resumes on the promoted process, through the durable path.
	resp, err = http.Post(ts.URL+"/ingest?wait=1", "application/x-ndjson",
		strings.NewReader(ndjson(t, f.stream[cut:])))
	if err != nil {
		t.Fatal(err)
	}
	var ingest map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ingest); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after promotion = %d: %v", resp.StatusCode, ingest)
	}
	if got, _ := ingest["accepted"].(float64); int(got) != n-cut {
		t.Fatalf("promoted ingest accepted %v records, want %d", ingest["accepted"], n-cut)
	}
	waitFor(t, "promoted pipeline drain", func() bool {
		return fol.Eng.Completed() == int64(n)
	})
	if got := srv.durable().Log.Stats().NextSeq; got != int64(n) {
		t.Fatalf("wal frontier %d after promoted ingest, want %d", got, n)
	}
}

// TestPromoteOnWriter verifies a process started without -follow refuses
// promotion outright.
func TestPromoteOnWriter(t *testing.T) {
	f := loadServeFixture(t)
	_, ts := startServer(t, f, 2, 64, nil)
	resp, err := http.Post(ts.URL+"/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote on a writer = %d, want 409", resp.StatusCode)
	}
	if !strings.Contains(string(body), "not a follower") {
		t.Fatalf("409 body %q does not explain the role", body)
	}
}

// TestEventsCursorEvicted pins the /events?from= contract: an explicit
// cursor below the journal ring's oldest retained event gets an explicit
// 410 naming the oldest reachable sequence, instead of a silent resume
// that skips the gap; cursors at or above it (and requests without a
// cursor) serve normally.
func TestEventsCursorEvicted(t *testing.T) {
	f := loadServeFixture(t)
	srv, ts := startServer(t, f, 2, 64, nil)
	srv.jr = obs.NewJournal(4)
	for i := 0; i < 10; i++ {
		srv.jr.Record("tick", "test event", nil)
	}
	oldest := srv.jr.OldestSeq() // 6: events 0-5 evicted

	resp, err := http.Get(ts.URL + "/events?from=2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted cursor = %d, want 410", resp.StatusCode)
	}
	var gone map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&gone); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got, _ := gone["oldest_retained"].(float64); int64(got) != oldest {
		t.Fatalf("410 names oldest_retained %v, want %d", gone["oldest_retained"], oldest)
	}

	lines := func(url string) (int, int) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		n := 0
		for _, ln := range strings.Split(string(body), "\n") {
			if strings.TrimSpace(ln) != "" {
				n++
			}
		}
		return resp.StatusCode, n
	}
	if code, got := lines(ts.URL + "/events?from=6"); code != http.StatusOK || got != 4 {
		t.Fatalf("from=oldest: status %d with %d events, want 200 with 4", code, got)
	}
	if code, got := lines(ts.URL + "/events"); code != http.StatusOK || got != 4 {
		t.Fatalf("no cursor: status %d with %d events, want 200 with 4", code, got)
	}
	if code, got := lines(ts.URL + "/events?from=99"); code != http.StatusOK || got != 0 {
		t.Fatalf("future cursor: status %d with %d events, want 200 with 0", code, got)
	}
}
