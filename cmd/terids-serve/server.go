package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"terids/internal/cliutil"
	"terids/internal/engine"
	"terids/internal/obs"
	"terids/internal/snapshot"
	"terids/internal/tuple"
	"terids/internal/wal"
)

// deepReplayWriteTimeout bounds each result write while a deep replay holds
// the server's single replay slot (see server.deepSem).
const deepReplayWriteTimeout = 30 * time.Second

// Serving roles. A process starts as a writer (standalone or -wal-dir) or
// a follower (-follow); promotion is the only transition.
const (
	modeWriter    int32 = iota // owns ingest; the default role
	modeFollowing              // read-only replica tailing a writer's WAL
	modePromoted               // replica that has taken over as the writer
)

// server wires the engine into HTTP handlers, a live result broadcaster,
// and the bounded replay ring behind /results?from=.
type server struct {
	eng    *engine.Engine
	schema *tuple.Schema
	ring   *resultRing
	// ckptDir, when non-empty, is the only directory /snapshot?path= may
	// write into; empty disables server-side checkpoint writes entirely
	// (the endpoint is unauthenticated, so it must never take an arbitrary
	// client-chosen filesystem path).
	ckptDir string
	// done is closed on shutdown so idle /results streams exit instead of
	// pinning http.Server.Shutdown to its deadline.
	done chan struct{}
	// limiter, when non-nil, enforces the per-stream ingest rate (-rate-limit).
	limiter *rateLimiter
	// streams bounds client-supplied stream ids up front (0 = unchecked
	// here, the engine still validates). The limiter keys a bucket per
	// stream id, so on this unauthenticated endpoint ids must be validated
	// BEFORE the limiter — otherwise random ids grow its map without bound.
	streams int
	// dur, when non-nil, is the durability subsystem handle (-wal-dir). Its
	// health shows up in /stats, and /results?from= cursors below the ring
	// are served by WAL-backed deep replay instead of a 410. Atomic because
	// a follower's promotion installs it while the listener is serving.
	dur atomic.Pointer[engine.Durable]
	// fol is the follower replica handle (-follow). Handlers only read it
	// after observing mode != modeWriter: main stores s.fol before
	// mode.Store(modeFollowing), so that atomic pair is the happens-before
	// edge (same pattern as s.eng behind ready).
	fol *engine.Follower
	// mode is the serving role; promotion moves it following → promoted.
	mode atomic.Int32
	// promoteMu serializes promotion attempts (manual POST /promote racing
	// the writer-loss auto-promoter).
	promoteMu sync.Mutex
	// replayDepth bounds how many arrivals one deep replay may re-run
	// (-replay-depth; 0 = unlimited).
	replayDepth int64
	// ingestBatch is how many decoded NDJSON arrivals /ingest groups into one
	// engine.SubmitBatch (-ingest-batch; 1 = submit per line).
	ingestBatch int
	// interner shares tokenizations across ingested records — stream values
	// repeat heavily, so this removes most per-record tokenize cost.
	interner *tuple.Interner
	// deepSem serializes deep replays: each one spins up a throwaway engine
	// and re-runs a WAL suffix, so concurrent requests queue here instead of
	// multiplying that cost.
	deepSem chan struct{}

	// reg is the metrics registry /metrics renders; started feeds
	// uptime_seconds; ready flips once the engine is attached and serving
	// (readyz) and back off at shutdown. The listener starts before the
	// engine exists, so every engine-backed handler is gated on ready: the
	// store of s.eng happens before ready.Store(true), and handlers only
	// touch s.eng after observing ready — that atomic pair is the
	// happens-before edge making the late attach race-free.
	reg     *obs.Registry
	started time.Time
	ready   atomic.Bool
	// readyReason names the startup phase /readyz (and gated endpoints)
	// report while ready is false: "starting", then "recovering" during WAL
	// replay. Holds a string.
	readyReason atomic.Value

	// jr is the lifecycle event journal behind GET /events; slo, when
	// non-nil, serves GET /slo; flight, when non-nil and configured with a
	// directory, backs POST /debug/dump (and the SIGQUIT/panic paths in main).
	jr     *obs.Journal
	slo    *obs.SLOEngine
	flight *obs.Flight

	// throttleLast tracks each stream's last 429, so the journal records one
	// event per throttle episode instead of one per rejected line.
	throttleMu   sync.Mutex
	throttleLast map[int]time.Time

	mu          sync.Mutex
	subs        map[chan engine.Result]struct{}
	dropped     atomic.Int64
	autoSeq     atomic.Int64
	rateLimited atomic.Int64
}

// newServer builds the server shell; the engine is attached afterwards
// (its OnResult must point at s.onResult, which needs s to exist first).
func newServer(schema *tuple.Schema, ringCap int, ringBase int64, ckptDir string) *server {
	s := &server{
		schema:       schema,
		ring:         newResultRing(ringCap, ringBase),
		ckptDir:      ckptDir,
		done:         make(chan struct{}),
		deepSem:      make(chan struct{}, 1),
		reg:          obs.Default(),
		started:      time.Now(),
		ingestBatch:  1,
		interner:     tuple.NewInterner(0),
		jr:           obs.DefaultJournal(),
		throttleLast: make(map[int]time.Time),
	}
	s.readyReason.Store("starting")
	s.reg.GaugeFunc("terids_uptime_seconds", "Seconds since this process started serving.", nil,
		func() float64 { return time.Since(s.started).Seconds() })
	return s
}

// durable returns the durability subsystem handle: nil without -wal-dir,
// installed at boot for a writer, at promotion for a follower.
func (s *server) durable() *engine.Durable { return s.dur.Load() }

// notReadyReason is the body a gated endpoint or /readyz returns while the
// server is not ready to take traffic.
func (s *server) notReadyReason() string {
	if r, ok := s.readyReason.Load().(string); ok && r != "" {
		return r
	}
	return "starting"
}

// requireEngine gates an engine-backed handler on readiness: the listener
// comes up before the engine exists (so probes and diagnostics answer during
// a long recovery replay), and traffic gets a 503 naming the startup phase
// until main attaches the engine and flips ready.
func (s *server) requireEngine(h http.HandlerFunc) http.HandlerFunc {
	return func(rw http.ResponseWriter, req *http.Request) {
		if !s.ready.Load() {
			http.Error(rw, s.notReadyReason(), http.StatusServiceUnavailable)
			return
		}
		h(rw, req)
	}
}

// routes registers every endpoint. Engine-backed handlers are readiness-
// gated; observability endpoints (metrics, probes, events, slo, dump) answer
// from the moment the listener is up.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.requireEngine(s.handleIngest))
	mux.HandleFunc("GET /results", s.requireEngine(s.handleResults))
	mux.HandleFunc("GET /stats", s.requireEngine(s.handleStats))
	mux.HandleFunc("POST /snapshot", s.requireEngine(s.handleSnapshot))
	mux.HandleFunc("POST /rebalance", s.requireEngine(s.handleRebalance))
	mux.HandleFunc("GET /trace", s.requireEngine(s.handleTrace))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /slo", s.handleSLO)
	mux.HandleFunc("POST /debug/dump", s.handleDump)
	// Promotion is deliberately NOT readiness-gated: a follower whose writer
	// died mid-catch-up must still be promotable (Promote itself replays the
	// un-tailed WAL remainder before taking over).
	mux.HandleFunc("POST /promote", s.handlePromote)
	return mux
}

// refuseOnFollower guards a write endpoint: a follower replica is read-only
// until promoted. Returns true when the 503 was written.
func (s *server) refuseOnFollower(rw http.ResponseWriter) bool {
	if s.mode.Load() != modeFollowing {
		return false
	}
	http.Error(rw, "follower: read-only replica (POST /promote to take over)",
		http.StatusServiceUnavailable)
	return true
}

// handlePromote turns a follower replica into the writer: seal at the WAL
// frontier (refused while the old writer's liveness lock is held), replay
// the un-tailed remainder, attach the log, and reopen /ingest and
// /rebalance. Idempotent — repeating the POST reports the promoted state.
func (s *server) handlePromote(rw http.ResponseWriter, _ *http.Request) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	switch s.mode.Load() {
	case modeWriter:
		http.Error(rw, "not a follower replica (started without -follow)", http.StatusConflict)
		return
	case modePromoted:
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(map[string]any{
			"promoted": true, "already": true, "resume_seq": s.durable().ResumeSeq(),
		})
		return
	}
	d, err := s.promote("http")
	if err != nil {
		if errors.Is(err, wal.ErrLocked) {
			http.Error(rw, fmt.Sprintf("writer still alive: %v", err), http.StatusConflict)
			return
		}
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(map[string]any{
		"promoted": true, "resume_seq": d.ResumeSeq(),
	})
}

// promote runs the takeover under promoteMu (held by the caller) and flips
// the serving role. A promoted replica is ready by construction: Promote
// returns only after every durable arrival ran through the pipeline, so the
// replica IS the frontier now.
func (s *server) promote(trigger string) (*engine.Durable, error) {
	d, err := s.fol.Promote()
	if err != nil {
		return nil, err
	}
	s.dur.Store(d)
	s.mode.Store(modePromoted)
	s.readyReason.Store("")
	s.ready.Store(true)
	s.jr.Record("promote", "follower took over as writer", map[string]any{
		"trigger": trigger, "resume_seq": d.ResumeSeq(),
	})
	return d, nil
}

// handleEvents serves the lifecycle event journal as NDJSON, oldest first.
// ?from=seq resumes from a cursor; an explicit cursor that has fallen off
// the journal's ring gets 410 Gone naming the oldest retained sequence —
// a resuming consumer must learn it has a gap, not silently skip it.
// Without ?from=, everything retained is served (there is no cursor to
// invalidate).
func (s *server) handleEvents(rw http.ResponseWriter, req *http.Request) {
	from := int64(0)
	if q := req.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v < 0 {
			http.Error(rw, fmt.Sprintf("bad from=%q: non-negative integer required", q),
				http.StatusBadRequest)
			return
		}
		if oldest := s.jr.OldestSeq(); v < oldest {
			writeGone(rw, fmt.Sprintf("events before seq %d have been evicted from the journal ring", oldest), oldest)
			return
		}
		from = v
	}
	rw.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.jr.WriteNDJSON(rw, from)
}

// handleSLO reports every objective's current value, burn rates, remaining
// error budget, and ok/warn/breach state as JSON.
func (s *server) handleSLO(rw http.ResponseWriter, _ *http.Request) {
	statuses := []obs.SLOStatus{}
	if s.slo != nil {
		statuses = s.slo.Status()
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(map[string]any{"objectives": statuses})
}

// handleDump triggers a flight-recorder bundle on demand and returns its
// path — the manual counterpart of the SIGQUIT and panic dumps.
func (s *server) handleDump(rw http.ResponseWriter, _ *http.Request) {
	if s.flight == nil || s.flight.Dir == "" {
		http.Error(rw, "flight recorder disabled (start with -flight-dir)", http.StatusNotFound)
		return
	}
	path, err := s.flight.Dump("http")
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(map[string]any{"path": path})
}

// handleMetrics serves the process-wide registry in the Prometheus text
// exposition format.
func (s *server) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(rw)
}

// handleTrace serves the sampled arrival timelines (oldest first) as NDJSON.
// Empty unless the server runs with -trace-sample.
func (s *server) handleTrace(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(rw)
	for _, tr := range s.eng.Traces() {
		if err := enc.Encode(tr); err != nil {
			return
		}
	}
}

// handleHealthz reports process liveness: 200 while the pipeline is intact
// (including the startup window before the engine exists — a process deep in
// recovery replay is alive, just not ready), 503 once the pipeline has
// failed or the server is shutting down.
func (s *server) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	select {
	case <-s.done:
		http.Error(rw, "shutting down", http.StatusServiceUnavailable)
		return
	default:
	}
	if !s.ready.Load() {
		// Still starting: the engine may not be attached yet, so it must not
		// be touched — and a slow recovery is not a liveness failure.
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, "ok")
		return
	}
	if err := s.eng.Err(); err != nil {
		http.Error(rw, fmt.Sprintf("pipeline failed: %v", err), http.StatusServiceUnavailable)
		return
	}
	rw.WriteHeader(http.StatusOK)
	fmt.Fprintln(rw, "ok")
}

// handleReadyz reports readiness to take traffic: recovery replay finished,
// engine attached and healthy, no rebalance pause in progress, not shutting
// down. The 503 body names why ("starting", "recovering", "rebalancing").
func (s *server) handleReadyz(rw http.ResponseWriter, _ *http.Request) {
	select {
	case <-s.done:
		http.Error(rw, "shutting down", http.StatusServiceUnavailable)
		return
	default:
	}
	if !s.ready.Load() {
		http.Error(rw, s.notReadyReason(), http.StatusServiceUnavailable)
		return
	}
	if s.eng.Rebalancing() {
		http.Error(rw, "rebalancing", http.StatusServiceUnavailable)
		return
	}
	if err := s.eng.Err(); err != nil {
		http.Error(rw, fmt.Sprintf("pipeline failed: %v", err), http.StatusServiceUnavailable)
		return
	}
	rw.WriteHeader(http.StatusOK)
	fmt.Fprintln(rw, "ready")
}

// arrival is one /ingest NDJSON line.
type arrival struct {
	RID    string   `json:"rid"`
	Stream int      `json:"stream"`
	Seq    *int64   `json:"seq,omitempty"`
	Values []string `json:"values"`
}

// resultLine is one /results NDJSON line.
type resultLine struct {
	Seq      int64      `json:"seq"`
	RID      string     `json:"rid"`
	Rejected bool       `json:"rejected,omitempty"`
	Expired  []string   `json:"expired,omitempty"`
	Pairs    []pairLine `json:"pairs"`
}

type pairLine struct {
	A    string  `json:"a"`
	B    string  `json:"b"`
	Prob float64 `json:"prob"`
}

func toLine(res engine.Result) resultLine {
	line := resultLine{Seq: res.Seq, RID: res.RID, Rejected: res.Rejected, Expired: res.Expired, Pairs: []pairLine{}}
	for _, p := range res.Pairs {
		line.Pairs = append(line.Pairs, pairLine{A: p.A.RID, B: p.B.RID, Prob: p.Prob})
	}
	return line
}

// onResult is the engine's result sink: retain for replay first, then fan
// out to live subscribers — the order /results?from= relies on to splice
// ring and live stream without a gap.
func (s *server) onResult(res engine.Result) {
	s.ring.add(res)
	s.broadcast(res)
}

// broadcast fans one engine result out to all /results subscribers without
// ever blocking the merger: slow subscribers drop.
func (s *server) broadcast(res engine.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ch := range s.subs {
		select {
		case ch <- res:
		default:
			s.dropped.Add(1)
		}
	}
}

func (s *server) subscribe() chan engine.Result {
	ch := make(chan engine.Result, 256)
	s.mu.Lock()
	if s.subs == nil {
		s.subs = make(map[chan engine.Result]struct{})
	}
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	return ch
}

func (s *server) unsubscribe(ch chan engine.Result) {
	s.mu.Lock()
	delete(s.subs, ch)
	s.mu.Unlock()
}

// handleIngest parses NDJSON arrivals and submits them in request order,
// grouped into batches of s.ingestBatch records per engine submission
// (-ingest-batch; 1 = the old submit-per-line behavior). A batch is accepted
// or rejected atomically; "accepted" in the reply counts only submitted
// records, so after an error the client resumes from accepted+1.
func (s *server) handleIngest(rw http.ResponseWriter, req *http.Request) {
	if s.refuseOnFollower(rw) {
		return
	}
	wait := req.URL.Query().Get("wait") == "1"
	sc := bufio.NewScanner(req.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	accepted := 0
	lineNo := 0
	reply := func(status int, msg string) {
		rw.Header().Set("Content-Type", "application/json")
		if status == http.StatusTooManyRequests && rw.Header().Get("Retry-After") == "" {
			rw.Header().Set("Retry-After", "1")
		}
		rw.WriteHeader(status)
		_ = json.NewEncoder(rw).Encode(map[string]any{
			"accepted": accepted, "line": lineNo, "error": msg,
		})
	}
	batchCap := s.ingestBatch
	if batchCap < 1 {
		batchCap = 1
	}
	batch := make([]*tuple.Record, 0, batchCap)
	batchStart := 0 // request line of the batch's first record
	flush := func() (status int, msg string) {
		if len(batch) == 0 {
			return 0, ""
		}
		var err error
		if wait {
			err = s.eng.SubmitBatch(batch)
		} else {
			err = s.eng.TrySubmitBatch(batch)
		}
		switch {
		case errors.Is(err, engine.ErrOverloaded):
			return http.StatusTooManyRequests, "ingest queue full"
		case errors.Is(err, engine.ErrInvalidRecord):
			return http.StatusBadRequest, fmt.Sprintf("lines %d-%d: %v", batchStart, lineNo, err)
		case err != nil:
			return http.StatusServiceUnavailable, err.Error()
		}
		accepted += len(batch)
		batch = batch[:0]
		return 0, ""
	}
	// fail flushes what parsed cleanly before the offending line (preserving
	// the submit-per-line contract that earlier valid lines are accepted),
	// then reports the line's own error — unless the flush itself failed.
	fail := func(status int, msg string) {
		if st, m := flush(); st != 0 {
			reply(st, m)
			return
		}
		reply(status, msg)
	}
	for sc.Scan() {
		lineNo++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var a arrival
		if err := json.Unmarshal([]byte(raw), &a); err != nil {
			fail(http.StatusBadRequest, fmt.Sprintf("line %d: %v", lineNo, err))
			return
		}
		if a.RID == "" {
			fail(http.StatusBadRequest, fmt.Sprintf("line %d: missing rid", lineNo))
			return
		}
		if a.Stream < 0 || (s.streams > 0 && a.Stream >= s.streams) {
			fail(http.StatusBadRequest, fmt.Sprintf("line %d: stream %d outside [0,%d)", lineNo, a.Stream, s.streams))
			return
		}
		if ok, wait := s.limiter.allow(a.Stream); !ok {
			s.rateLimited.Add(1)
			s.reg.Counter("terids_ingest_throttled_total",
				"Ingest requests rejected by the per-stream rate limit.",
				obs.Labels{"stream": strconv.Itoa(a.Stream)}).Inc()
			s.noteThrottle(a.Stream, wait)
			rw.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
			fail(http.StatusTooManyRequests, fmt.Sprintf("line %d: stream %d over the ingest rate limit", lineNo, a.Stream))
			return
		}
		seq := s.autoSeq.Add(1)
		if a.Seq != nil {
			seq = *a.Seq
		}
		rec, err := s.interner.NewRecord(s.schema, a.RID, a.Stream, seq, a.Values)
		if err != nil {
			fail(http.StatusBadRequest, fmt.Sprintf("line %d: %v", lineNo, err))
			return
		}
		if len(batch) == 0 {
			batchStart = lineNo
		}
		batch = append(batch, rec)
		if len(batch) >= batchCap {
			if st, msg := flush(); st != 0 {
				reply(st, msg)
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		fail(http.StatusBadRequest, err.Error())
		return
	}
	if st, msg := flush(); st != 0 {
		reply(st, msg)
		return
	}
	reply(http.StatusOK, "")
}

// throttleEpisodeGap separates distinct throttle episodes in the journal: a
// stream's repeated 429s within the gap extend one episode instead of
// producing one event per rejected line.
const throttleEpisodeGap = 5 * time.Second

// noteThrottle records a "throttle" journal event when a stream transitions
// into an over-limit episode.
func (s *server) noteThrottle(stream int, wait time.Duration) {
	now := time.Now()
	s.throttleMu.Lock()
	last, seen := s.throttleLast[stream]
	s.throttleLast[stream] = now
	s.throttleMu.Unlock()
	if seen && now.Sub(last) < throttleEpisodeGap {
		return
	}
	s.jr.Record("throttle", "stream over the ingest rate limit", map[string]any{
		"stream": stream, "retry_after_s": retryAfterSeconds(wait),
	})
}

// handleResults streams per-arrival results as NDJSON. Modes:
//
//	?snapshot=1  the current entity set, one JSON object
//	?from=seq    replay the merged results with sequence >= seq — from the
//	             in-memory ring when retained, regenerated byte-identically
//	             from checkpoint + WAL (deep replay; requires -wal-dir) when
//	             the cursor has fallen behind the ring — then continue live.
//	             410 Gone only when seq predates the retained durable
//	             coverage (oldest_retained names the reachable bound).
//	(default)    live results from now on
func (s *server) handleResults(rw http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("snapshot") == "1" {
		pairs := s.eng.ResultSet()
		out := make([]pairLine, 0, len(pairs))
		for _, p := range pairs {
			out = append(out, pairLine{A: p.A.RID, B: p.B.RID, Prob: p.Prob})
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(map[string]any{"live_pairs": out})
		return
	}
	replay := false
	var from int64
	if fromStr := req.URL.Query().Get("from"); fromStr != "" {
		v, err := strconv.ParseInt(fromStr, 10, 64)
		if err != nil || v < 0 {
			http.Error(rw, fmt.Sprintf("bad from=%q: non-negative integer required", fromStr),
				http.StatusBadRequest)
			return
		}
		replay, from = true, v
	}
	fl, ok := rw.(http.Flusher)
	if !ok {
		http.Error(rw, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	// Subscribe before the first ring read: onResult adds to the ring before
	// broadcasting, so a broadcast on the channel implies its result (and
	// everything before it) is readable from the ring.
	ch := s.subscribe()
	defer s.unsubscribe(ch)
	enc := json.NewEncoder(rw)
	if replay {
		// Ring-paced streaming: results are always read from the ring
		// (gapless by construction, in sequence order, never below the
		// cursor); the subscription only signals that new results exist.
		// Dropped broadcast signals are harmless — the drop implies the
		// channel holds 256 newer wake-ups, and every drain re-reads the
		// ring from the cursor. Cursors below the ring's tail fall through
		// to WAL-backed deep replay (when -wal-dir is on), which regenerates
		// the gap and rejoins the ring; 410 is left for sequences below even
		// that coverage.
		cursor := from
		started := false
		for {
			past, gone, oldest := s.ring.since(cursor)
			if gone {
				prev := cursor
				ok := s.deepReplay(rw, req, fl, enc, &cursor, &started, oldest)
				if !ok {
					// Response finished: 410/error written, or the stream
					// already started and cannot be spliced cleanly —
					// terminate; the client's re-request from its advanced
					// cursor resumes (or yields the 410).
					return
				}
				if cursor == prev {
					// Defensive: a successful replay that advanced nothing
					// would spin here forever.
					return
				}
				continue
			}
			if !started {
				started = true
				rw.Header().Set("Content-Type", "application/x-ndjson")
				rw.WriteHeader(http.StatusOK)
				fl.Flush()
			}
			if len(past) > 0 {
				for _, res := range past {
					if err := enc.Encode(toLine(res)); err != nil {
						return
					}
					cursor = res.Seq + 1
				}
				fl.Flush()
				// The chunked read may have more backlog: re-read before
				// waiting for a wake-up.
				continue
			}
			select {
			case <-ch:
				for { // drain pending wake-ups, then re-read the ring once
					select {
					case <-ch:
						continue
					default:
					}
					break
				}
			case <-req.Context().Done():
				return
			case <-s.done:
				return
			}
		}
	}
	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case res := <-ch:
			if err := enc.Encode(toLine(res)); err != nil {
				return
			}
			fl.Flush()
		case <-req.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}

// replayReach is the oldest sequence a /results?from= cursor can still be
// served from: the durability layer's deep-replay reach when it extends
// below the ring, the ring's tail otherwise.
func (s *server) replayReach(ringOldest int64) int64 {
	if d := s.durable(); d != nil {
		if reach, ok := d.DeepReach(); ok && reach < ringOldest {
			return reach
		}
	}
	return ringOldest
}

// writeGone emits the 410 for a cursor that cannot be served, with the
// oldest sequence that would have worked.
func writeGone(rw http.ResponseWriter, msg string, oldest int64) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(http.StatusGone)
	_ = json.NewEncoder(rw).Encode(map[string]any{
		"error":           msg,
		"oldest_retained": oldest,
	})
}

// deepReplay serves the [cursor, ring) gap by regenerating it from the
// durable state: the newest checkpoint at-or-below the cursor is restored
// into a throwaway engine and the WAL re-run through the normal pipeline,
// streaming byte-identical historical results until the cursor rejoins the
// live ring. Returns true when the caller should continue its ring loop from
// the advanced cursor; false when the response is finished (410 written,
// error, or mid-stream failure).
func (s *server) deepReplay(rw http.ResponseWriter, req *http.Request, fl http.Flusher,
	enc *json.Encoder, cursor *int64, started *bool, ringOldest int64) bool {
	dur := s.durable()
	if dur == nil {
		if !*started {
			writeGone(rw, fmt.Sprintf("results before seq %d are no longer retained", ringOldest), ringOldest)
		}
		return false
	}
	select {
	case s.deepSem <- struct{}{}:
	case <-req.Context().Done():
		return false
	case <-s.done:
		return false
	}
	defer func() { <-s.deepSem }()

	// The semaphore is held for the whole regeneration, so a client that
	// stops reading must not pin it: each write carries a deadline, and a
	// stalled connection errors out of the replay instead of blocking every
	// other deep replay behind a dead peer. The deadline is cleared before
	// returning to normal (subscription-paced) streaming.
	rc := http.NewResponseController(rw)
	defer rc.SetWriteDeadline(time.Time{})

	start := *cursor
	joined, failed := false, false
	err := dur.DeepReplay(req.Context(), start, ringOldest, s.replayDepth, func(res engine.Result) bool {
		if joined || failed {
			return false
		}
		if !*started {
			*started = true
			rw.Header().Set("Content-Type", "application/x-ndjson")
			rw.WriteHeader(http.StatusOK)
		}
		_ = rc.SetWriteDeadline(time.Now().Add(deepReplayWriteTimeout))
		if err := enc.Encode(toLine(res)); err != nil {
			failed = true
			return false
		}
		*cursor = res.Seq + 1
		// Splice point: once the next sequence is inside the live ring, the
		// ring loop takes over — cheaper than regenerating what memory holds.
		if oldestNow, _, _ := s.ring.status(); *cursor >= oldestNow {
			joined = true
			return false
		}
		return true
	})
	if failed {
		return false
	}
	if err != nil {
		if !*started {
			switch {
			case errors.Is(err, engine.ErrNoReplayCoverage):
				reach := s.replayReach(ringOldest)
				if reach <= start {
					// The advertised reach just failed to serve this very
					// cursor (e.g. the oldest retained checkpoint file is
					// unreadable); report the ring's tail — the oldest bound
					// that provably works — so clients don't retry a cursor
					// the server keeps naming and keeps refusing.
					reach = ringOldest
				}
				writeGone(rw, fmt.Sprintf("results before seq %d are no longer recoverable", reach), reach)
			case errors.Is(err, engine.ErrReplayDepthExceeded):
				writeGone(rw, err.Error(), s.replayReach(ringOldest))
			default:
				http.Error(rw, err.Error(), http.StatusInternalServerError)
			}
		}
		return false
	}
	if *started {
		fl.Flush()
	}
	return true
}

// handleSnapshot takes a barrier checkpoint of the running engine. With
// ?path=, the checkpoint is written server-side (atomically) and metadata
// returned; without, the binary checkpoint streams back as the body.
func (s *server) handleSnapshot(rw http.ResponseWriter, req *http.Request) {
	// Validate the destination before the barrier: a doomed request must
	// not get to pause intake and drain the pipeline first.
	var path string
	if name := req.URL.Query().Get("path"); name != "" {
		p, err := s.checkpointPath(name)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusForbidden)
			return
		}
		path = p
	}
	c, err := s.eng.Checkpoint()
	if err != nil {
		http.Error(rw, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if path != "" {
		if err := snapshot.WriteFile(path, c); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(map[string]any{
			"path": path, "seq": c.Seq, "residents": len(c.Residents), "pairs": len(c.Pairs),
		})
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Disposition", fmt.Sprintf(`attachment; filename="terids-seq%d.ckpt"`, c.Seq))
	if err := snapshot.Encode(rw, c); err != nil {
		// Headers are gone; the truncated body fails the client's checksum.
		return
	}
}

// handleRebalance is the admin trigger for an online shard rebalance:
// barrier-checkpoint, restore under a new layout, resume — ingest blocks for
// the duration, results are never lost or duplicated. ?shards=K changes the
// shard count (default: keep it); the layout is weighted by the observed
// per-topic resident load unless ?weighted=0 asks for the uniform modulo
// table. Responds with the before/after imbalance and the barrier latency.
func (s *server) handleRebalance(rw http.ResponseWriter, req *http.Request) {
	if s.refuseOnFollower(rw) {
		return
	}
	before := s.eng.Stats()
	k := before.Shards
	if q := req.URL.Query().Get("shards"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 || v > cliutil.MaxShards {
			http.Error(rw, fmt.Sprintf("bad shards=%q: integer in [1,%d] required", q, cliutil.MaxShards),
				http.StatusBadRequest)
			return
		}
		k = v
	}
	var layout engine.Layout
	if req.URL.Query().Get("weighted") == "0" {
		layout = engine.DefaultLayout(k)
	} else {
		layout = s.eng.BalancedLayout(k)
	}
	start := time.Now()
	if err := s.eng.Rebalance(layout); err != nil {
		http.Error(rw, err.Error(), http.StatusServiceUnavailable)
		return
	}
	after := s.eng.Stats()
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(map[string]any{
		"shards":           after.Shards,
		"seq":              after.Rebalance.LastSeq,
		"duration_ms":      float64(time.Since(start).Microseconds()) / 1000,
		"imbalance_before": before.Imbalance,
		"imbalance_after":  after.Imbalance,
		"rebalances":       after.Rebalance.Rebalances,
	})
}

// checkpointPath resolves a client-supplied checkpoint name inside the
// configured checkpoint directory, rejecting anything that would escape it.
func (s *server) checkpointPath(name string) (string, error) {
	if s.ckptDir == "" {
		return "", errors.New("server-side checkpoint writes disabled (start with -checkpoint-dir)")
	}
	if filepath.IsAbs(name) {
		return "", errors.New("checkpoint path must be relative to the checkpoint directory")
	}
	clean := filepath.Clean(name)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", errors.New("checkpoint path escapes the checkpoint directory")
	}
	return filepath.Join(s.ckptDir, clean), nil
}

// handleStats reports aggregated engine stats plus server-side counters,
// the /results replay retention window, and (when -wal-dir is set) the
// durability subsystem's health.
func (s *server) handleStats(rw http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	s.mu.Lock()
	nSubs := len(s.subs)
	s.mu.Unlock()
	topic, simUB, probUB, instPair, total := st.Totals.Prune.Power()
	oldest, next, retained := s.ring.status()
	replayStats := map[string]any{
		"oldest_retained": s.replayReach(oldest),
		"ring_oldest":     oldest,
		"next_seq":        next,
		"retained":        retained,
		// Always present so scrapers get a stable schema; non-zero only with
		// -wal-dir, which deep replay requires.
		"deep_replays": int64(0),
	}
	dur := s.durable()
	if dur != nil {
		replayStats["deep_replays"] = dur.Stats().DeepReplays
	}
	payload := map[string]any{
		"engine": st,
		"breakdown": map[string]any{
			"select_ns": st.Totals.Breakdown.Select.Nanoseconds(),
			"impute_ns": st.Totals.Breakdown.Impute.Nanoseconds(),
			"er_ns":     st.Totals.Breakdown.ER.Nanoseconds(),
			"total_ns":  st.Totals.Breakdown.Total().Nanoseconds(),
		},
		"prune_power": map[string]float64{
			"topic": topic, "sim_ub": simUB, "prob_ub": probUB,
			"inst_pair": instPair, "total": total,
		},
		// oldest_retained is the oldest cursor /results?from= can serve —
		// through the in-memory ring or, with -wal-dir, WAL-backed deep
		// replay; ring_oldest is the in-memory window alone.
		"replay":          replayStats,
		"subscribers":     nSubs,
		"dropped_results": s.dropped.Load(),
		"rate_limited":    s.rateLimited.Load(),
		"uptime_seconds":  time.Since(s.started).Seconds(),
	}
	if dur != nil {
		payload["durability"] = dur.Stats()
	}
	if s.mode.Load() != modeWriter {
		// Follower health: tail cursor, frontier, lag, catch-up counters,
		// writer liveness — still reported after promotion (Promoted=true).
		payload["follower"] = s.fol.Stats()
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(payload)
}
