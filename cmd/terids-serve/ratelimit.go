package main

import (
	"sync"
	"time"
)

// rateLimiter enforces a per-stream ingest rate: one token bucket per stream
// id, refilled continuously at rate tokens/sec up to burst. A nil limiter
// (rate limiting disabled) allows everything.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[int]*bucket
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter builds a limiter at rate tuples/sec per stream. burst <= 0
// defaults the bucket capacity to one second's worth of tokens (minimum 1).
// rate <= 0 disables limiting entirely (returns nil).
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = rate
	}
	if b < 1 {
		b = 1
	}
	return &rateLimiter{rate: rate, burst: b, buckets: make(map[int]*bucket), now: time.Now}
}

// allow consumes one token from the stream's bucket. When the bucket is
// empty it reports the wait until the next token — the 429 Retry-After.
func (l *rateLimiter) allow(stream int) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[stream]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[stream] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait <= 0 {
		// Float roundoff: a deficit below one token can compute to a
		// sub-nanosecond wait, which the Duration conversion truncates to
		// zero — and a denial with a zero wait reads as "retry now". A
		// denial always implies a positive wait.
		wait = time.Nanosecond
	}
	return false, wait
}

// retryAfterSeconds rounds a wait up to whole seconds for the Retry-After
// header (minimum 1: zero would invite an immediate, doomed retry).
func retryAfterSeconds(wait time.Duration) int {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
