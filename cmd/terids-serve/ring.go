package main

import (
	"sync"

	"terids/internal/engine"
)

// resultRing is the bounded in-memory replay buffer behind /results?from=:
// the last cap merged results, keyed by merge sequence. The merger emits
// exactly one result per sequence number, in consecutive order starting at
// the engine's start sequence, so the ring indexes by seq modulo capacity
// and retains the window [next-n, next).
type resultRing struct {
	mu   sync.Mutex
	buf  []engine.Result
	base int64 // engine start sequence: results before it never existed here
	next int64 // sequence after the newest retained result
	n    int   // retained count, <= len(buf)
}

func newResultRing(capacity int, base int64) *resultRing {
	return &resultRing{buf: make([]engine.Result, capacity), base: base, next: base}
}

// add retains one merged result. Called from the engine's OnResult (the
// merger goroutine), so it must stay O(1).
func (r *resultRing) add(res engine.Result) {
	r.mu.Lock()
	r.buf[res.Seq%int64(len(r.buf))] = res
	r.next = res.Seq + 1
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// status reports the retention window for /stats: the oldest sequence a
// /results?from= replay can still serve, the next sequence to be retained,
// and the retained count — so clients can size from= without probing for a
// 410.
func (r *resultRing) status() (oldest, next int64, retained int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest = r.next - int64(r.n)
	if oldest < r.base {
		oldest = r.base
	}
	return oldest, r.next, r.n
}

// since returns the retained results with sequence >= from, in order. gone
// reports that results in [from, oldest) are no longer available — evicted
// from the ring, or produced before this process started (e.g. before a
// checkpoint restore) — so an exact replay from `from` is impossible.
func (r *resultRing) since(from int64) (out []engine.Result, gone bool, oldest int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest = r.next - int64(r.n)
	if oldest < r.base {
		oldest = r.base
	}
	if from < oldest {
		return nil, true, oldest
	}
	for seq := from; seq < r.next; seq++ {
		out = append(out, r.buf[seq%int64(len(r.buf))])
	}
	return out, false, oldest
}
