package main

import (
	"sync"

	"terids/internal/engine"
)

// ringChunk bounds how many results one since call copies out under the
// lock. The merger's add runs on the hot path (OnResult), so a slow /results
// client draining a huge backlog must never pin r.mu for the whole backlog —
// callers loop, re-reading from their advanced cursor, and each iteration
// holds the lock O(ringChunk).
const ringChunk = 256

// resultRing is the bounded in-memory replay buffer behind /results?from=:
// the last cap merged results, keyed by merge sequence. The merger emits
// exactly one result per sequence number, in consecutive order starting at
// the engine's start sequence, so the ring indexes by seq modulo capacity
// and retains the window [next-n, next).
type resultRing struct {
	mu   sync.Mutex
	buf  []engine.Result
	base int64 // engine start sequence: results before it never existed here
	next int64 // sequence after the newest retained result
	n    int   // retained count, <= len(buf)
}

func newResultRing(capacity int, base int64) *resultRing {
	// Defense in depth behind the cliutil flag validation: a non-positive
	// capacity would make every add panic with a divide by zero in the
	// seq%len(buf) index.
	if capacity < 1 {
		capacity = 1
	}
	return &resultRing{buf: make([]engine.Result, capacity), base: base, next: base}
}

// add retains one merged result. Called from the engine's OnResult (the
// merger goroutine), so it must stay O(1).
func (r *resultRing) add(res engine.Result) {
	r.mu.Lock()
	if res.Seq != r.next && r.n > 0 {
		// Discontinuity: the sequence jumped (a follower's checkpoint
		// catch-up skips the truncated range — those results were never
		// emitted here). The retained window must restart at the jump, or
		// since() would serve the stale pre-jump slots as if they covered
		// [next-n, next).
		r.n = 0
		r.base = res.Seq
	}
	r.buf[res.Seq%int64(len(r.buf))] = res
	r.next = res.Seq + 1
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// status reports the retention window for /stats: the oldest sequence a
// /results?from= replay can still serve, the next sequence to be retained,
// and the retained count — so clients can size from= without probing for a
// 410.
func (r *resultRing) status() (oldest, next int64, retained int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.oldestLocked(), r.next, r.n
}

func (r *resultRing) oldestLocked() int64 {
	oldest := r.next - int64(r.n)
	if oldest < r.base {
		oldest = r.base
	}
	return oldest
}

// since returns up to ringChunk retained results with sequence >= from, in
// order; callers loop from the advanced cursor until they drain the backlog
// (the bounded copy keeps the merger's add from stalling behind a slow
// reader). gone reports that results in [from, oldest) are no longer
// available — evicted from the ring, or produced before this process started
// (e.g. before a checkpoint restore) — so an exact replay from `from` is
// impossible here (the durability layer may still regenerate them).
func (r *resultRing) since(from int64) (out []engine.Result, gone bool, oldest int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest = r.oldestLocked()
	if from < oldest {
		return nil, true, oldest
	}
	end := r.next
	if from+ringChunk < end {
		end = from + ringChunk
	}
	if from < end {
		out = make([]engine.Result, 0, end-from)
		for seq := from; seq < end; seq++ {
			out = append(out, r.buf[seq%int64(len(r.buf))])
		}
	}
	return out, false, oldest
}
