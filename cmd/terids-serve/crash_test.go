package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"terids/internal/obs"
	"terids/internal/testutil"
)

// TestMain re-execs the test binary as a real terids-serve process when
// TERIDS_SERVE_CHILD is set: the crash-injection test below needs an actual
// OS process it can SIGQUIT, not an httptest server. In normal mode the run
// is additionally gated on goroutine hygiene — the servers and engines the
// tests start must be fully torn down.
func TestMain(m *testing.M) {
	if os.Getenv("TERIDS_SERVE_CHILD") == "1" {
		main()
		return
	}
	testutil.VerifyNoLeaks(m)
}

var listeningLine = regexp.MustCompile(`listening on (\S+) \(`)

// TestCrashFlightRecorder boots a loaded server in a child process, SIGQUITs
// it, and asserts the flight recorder left a complete, parseable bundle: at
// least one journal event, at least one sampled trace, and a /metrics
// snapshot — the post-mortem contract.
func TestCrashFlightRecorder(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real server process")
	}
	f := loadServeFixture(t)
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe,
		"-addr=127.0.0.1:0", "-scale=0.25", "-shards=2", "-w=50",
		"-trace-sample=1", "-flight-dir="+dir)
	cmd.Env = append(os.Environ(), "TERIDS_SERVE_CHILD=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The child logs its actual listen address (it binds port 0); everything
	// after that is drained so the child never blocks on a full pipe.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := listeningLine.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(60 * time.Second):
		t.Fatal("child never logged its listen address")
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("child never became ready")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Load it: sampled traces and journal events need real traffic.
	resp, err := http.Post(base+"/ingest?wait=1", "application/x-ndjson",
		strings.NewReader(ndjson(t, f.stream[:40])))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("child ingest: status %d (%s)", resp.StatusCode, body)
	}

	// The crash. SIGQUIT must dump a bundle and exit 2.
	if err := cmd.Process.Signal(syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var exitErr *exec.ExitError
	if err == nil {
		t.Fatal("child exited 0 after SIGQUIT, want exit 2")
	} else if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("child exit after SIGQUIT: %v, want exit code 2", err)
	}

	bundles, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil || len(bundles) != 1 {
		t.Fatalf("flight dir holds %d bundles (%v), want 1", len(bundles), err)
	}
	if !strings.Contains(bundles[0], "sigquit") {
		t.Fatalf("bundle %s not named after the sigquit reason", bundles[0])
	}
	raw, err := os.ReadFile(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	var bundle obs.FlightBundle
	if err := json.Unmarshal(raw, &bundle); err != nil {
		t.Fatalf("bundle not JSON: %v", err)
	}
	if bundle.Reason != "sigquit" {
		t.Fatalf("bundle reason %q, want sigquit", bundle.Reason)
	}
	if len(bundle.Events) == 0 {
		t.Fatal("bundle has no journal events (the serving event alone should be there)")
	}
	serving := false
	for _, ev := range bundle.Events {
		if ev.Type == "serving" {
			serving = true
		}
	}
	if !serving {
		t.Fatalf("bundle events missing the serving event: %+v", bundle.Events)
	}
	traces, ok := bundle.Traces.([]any)
	if !ok || len(traces) == 0 {
		t.Fatalf("bundle traces = %T with %d entries, want >= 1 sampled trace",
			bundle.Traces, len(traces))
	}
	if !strings.Contains(bundle.Metrics, "terids_arrivals_total") {
		t.Fatal("bundle metrics snapshot missing terids_arrivals_total")
	}
	if bundle.NumGoroutine <= 0 || !strings.Contains(bundle.Goroutines, "goroutine") {
		t.Fatal("bundle missing goroutine dump")
	}
	var stats map[string]any
	if len(bundle.Stats) > 0 {
		if err := json.Unmarshal(bundle.Stats, &stats); err != nil {
			t.Fatalf("bundle stats not JSON: %v", err)
		}
	}
	if fmt.Sprint(stats["shards"]) != "2" {
		t.Fatalf("bundle stats shards = %v, want 2", stats["shards"])
	}
}
