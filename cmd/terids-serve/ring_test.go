package main

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"terids/internal/engine"
)

func res(seq int64) engine.Result {
	return engine.Result{Seq: seq, RID: fmt.Sprintf("r%d", seq)}
}

func TestRingSinceEmpty(t *testing.T) {
	r := newResultRing(4, 0)
	out, gone, oldest := r.since(0)
	if gone || len(out) != 0 || oldest != 0 {
		t.Fatalf("empty ring: out=%v gone=%v oldest=%d", out, gone, oldest)
	}
}

func TestRingRetainsTail(t *testing.T) {
	r := newResultRing(4, 0)
	for seq := int64(0); seq < 10; seq++ {
		r.add(res(seq))
	}
	// Ring of 4 after 10 results retains [6, 10).
	if out, gone, _ := r.since(6); gone || len(out) != 4 || out[0].Seq != 6 || out[3].Seq != 9 {
		t.Fatalf("since(6): out=%v gone=%v", out, gone)
	}
	if out, gone, _ := r.since(8); gone || len(out) != 2 || out[0].Seq != 8 {
		t.Fatalf("since(8): out=%v gone=%v", out, gone)
	}
	// Older than the tail: gone, reporting the oldest retained.
	if _, gone, oldest := r.since(5); !gone || oldest != 6 {
		t.Fatalf("since(5): gone=%v oldest=%d, want gone at 6", gone, oldest)
	}
	// Future: nothing yet, not gone.
	if out, gone, _ := r.since(10); gone || len(out) != 0 {
		t.Fatalf("since(10): out=%v gone=%v", out, gone)
	}
}

// TestRingZeroCapacityClamped is the regression test for the startup panic:
// a non-positive capacity used to make every add divide by zero in the
// seq%len(buf) index. cliutil rejects the flag value; the ring itself clamps
// as defense in depth.
func TestRingZeroCapacityClamped(t *testing.T) {
	for _, capacity := range []int{0, -4} {
		r := newResultRing(capacity, 0)
		r.add(res(0)) // panicked before the clamp
		if out, gone, _ := r.since(0); gone || len(out) != 1 {
			t.Fatalf("cap %d: since(0) = (%v, %v) after one add", capacity, out, gone)
		}
	}
}

// TestRingSinceChunked is the contention regression test for the merger
// stall: since must copy out at most ringChunk results per call (the lock is
// held O(chunk), never O(backlog)), with callers looping from the advanced
// cursor until they drain — in order, exactly once.
func TestRingSinceChunked(t *testing.T) {
	const n = 4 * ringChunk
	r := newResultRing(2*n, 0)
	for seq := int64(0); seq < n; seq++ {
		r.add(res(seq))
	}
	cursor, calls := int64(0), 0
	for cursor < n {
		out, gone, _ := r.since(cursor)
		if gone {
			t.Fatalf("since(%d) reported gone inside the retained window", cursor)
		}
		if len(out) == 0 {
			t.Fatalf("since(%d) returned nothing with %d results still retained", cursor, n-cursor)
		}
		if len(out) > ringChunk {
			t.Fatalf("since(%d) copied %d results under the lock, chunk bound is %d", cursor, len(out), ringChunk)
		}
		for i, res := range out {
			if res.Seq != cursor+int64(i) {
				t.Fatalf("chunked read out of order: got seq %d at offset %d of cursor %d", res.Seq, i, cursor)
			}
		}
		cursor += int64(len(out))
		calls++
	}
	if calls < n/ringChunk {
		t.Fatalf("backlog of %d drained in %d calls; chunking is not bounding the copies", n, calls)
	}
}

// TestRingAddNotStalledBySlowReader: adds (the merger's OnResult path) keep
// flowing while slow readers crawl a large backlog chunk by chunk. Run under
// -race in CI; the wall-clock bound is deliberately generous — the failure
// mode it guards against is an add queued behind a full-backlog copy.
func TestRingAddNotStalledBySlowReader(t *testing.T) {
	const backlog = 1 << 16
	r := newResultRing(backlog, 0)
	for seq := int64(0); seq < backlog; seq++ {
		r.add(res(seq))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cursor := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, gone, oldest := r.since(cursor)
				if gone {
					cursor = oldest
					continue
				}
				cursor += int64(len(out))
				time.Sleep(time.Millisecond) // a slow client between chunks
			}
		}()
	}
	var worst time.Duration
	for seq := int64(backlog); seq < backlog+2048; seq++ {
		start := time.Now()
		r.add(res(seq))
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	close(stop)
	wg.Wait()
	if worst > time.Second {
		t.Fatalf("an add stalled %v behind readers; the ring lock is being held too long", worst)
	}
}

func TestRingBaseAfterRestore(t *testing.T) {
	// A server restored at watermark 100 never saw results 0..99.
	r := newResultRing(8, 100)
	for seq := int64(100); seq < 103; seq++ {
		r.add(res(seq))
	}
	if _, gone, oldest := r.since(50); !gone || oldest != 100 {
		t.Fatalf("pre-restore seqs must be gone: gone=%v oldest=%d", gone, oldest)
	}
	if out, gone, _ := r.since(100); gone || len(out) != 3 {
		t.Fatalf("since(100): out=%v gone=%v", out, gone)
	}
}
