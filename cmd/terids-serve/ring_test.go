package main

import (
	"fmt"
	"testing"

	"terids/internal/engine"
)

func res(seq int64) engine.Result {
	return engine.Result{Seq: seq, RID: fmt.Sprintf("r%d", seq)}
}

func TestRingSinceEmpty(t *testing.T) {
	r := newResultRing(4, 0)
	out, gone, oldest := r.since(0)
	if gone || len(out) != 0 || oldest != 0 {
		t.Fatalf("empty ring: out=%v gone=%v oldest=%d", out, gone, oldest)
	}
}

func TestRingRetainsTail(t *testing.T) {
	r := newResultRing(4, 0)
	for seq := int64(0); seq < 10; seq++ {
		r.add(res(seq))
	}
	// Ring of 4 after 10 results retains [6, 10).
	if out, gone, _ := r.since(6); gone || len(out) != 4 || out[0].Seq != 6 || out[3].Seq != 9 {
		t.Fatalf("since(6): out=%v gone=%v", out, gone)
	}
	if out, gone, _ := r.since(8); gone || len(out) != 2 || out[0].Seq != 8 {
		t.Fatalf("since(8): out=%v gone=%v", out, gone)
	}
	// Older than the tail: gone, reporting the oldest retained.
	if _, gone, oldest := r.since(5); !gone || oldest != 6 {
		t.Fatalf("since(5): gone=%v oldest=%d, want gone at 6", gone, oldest)
	}
	// Future: nothing yet, not gone.
	if out, gone, _ := r.since(10); gone || len(out) != 0 {
		t.Fatalf("since(10): out=%v gone=%v", out, gone)
	}
}

func TestRingBaseAfterRestore(t *testing.T) {
	// A server restored at watermark 100 never saw results 0..99.
	r := newResultRing(8, 100)
	for seq := int64(100); seq < 103; seq++ {
		r.add(res(seq))
	}
	if _, gone, oldest := r.since(50); !gone || oldest != 100 {
		t.Fatalf("pre-restore seqs must be gone: gone=%v oldest=%d", gone, oldest)
	}
	if out, gone, _ := r.since(100); gone || len(out) != 3 {
		t.Fatalf("since(100): out=%v gone=%v", out, gone)
	}
}
