package main

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRateLimiterBuckets drives the token bucket with a fake clock: burst
// spends, refill restores, streams are independent, and the reported wait
// matches the deficit.
func TestRateLimiterBuckets(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(2, 2) // 2 tuples/sec, burst 2
	l.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow(0); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	ok, wait := l.allow(0)
	if ok {
		t.Fatal("third token within the same instant allowed")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Fatalf("wait %v, want in (0, 500ms] at 2 tokens/sec", wait)
	}
	// A different stream has its own bucket.
	if ok, _ := l.allow(1); !ok {
		t.Fatal("stream 1 denied by stream 0's exhaustion")
	}
	// Half a second refills one token at 2/sec.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := l.allow(0); !ok {
		t.Fatal("refilled token denied")
	}
	if ok, _ := l.allow(0); ok {
		t.Fatal("second token after a one-token refill allowed")
	}
	// Idle time caps at burst, not unbounded credit.
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow(0); !ok {
			t.Fatalf("post-idle burst token %d denied", i)
		}
	}
	if ok, _ := l.allow(0); ok {
		t.Fatal("idle time accumulated more than burst")
	}

	// Disabled limiter (rate 0) is nil and allows everything.
	if dl := newRateLimiter(0, 5); dl != nil {
		t.Fatal("rate 0 must disable the limiter")
	}
	var nilLimiter *rateLimiter
	if ok, _ := nilLimiter.allow(3); !ok {
		t.Fatal("nil limiter must allow")
	}
}

// TestRateLimiterDenialWaitAlwaysPositive pins the float-roundoff fix: a
// refill that lands the bucket a hair under one token (1/3 s at 3 tokens/s
// leaves 0.999…) produces a sub-nanosecond deficit whose Duration conversion
// used to truncate to zero — a denial must always report a positive wait,
// and Retry-After must never be zero or negative.
func TestRateLimiterDenialWaitAlwaysPositive(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(3, 1)
	l.now = func() time.Time { return now }
	if ok, _ := l.allow(0); !ok {
		t.Fatal("burst token denied")
	}
	for i := 0; i < 50; i++ {
		now = now.Add(time.Second / 3)
		ok, wait := l.allow(0)
		if !ok {
			if wait <= 0 {
				t.Fatalf("iteration %d: denial reported wait %v, want > 0", i, wait)
			}
			if ra := retryAfterSeconds(wait); ra < 1 {
				t.Fatalf("iteration %d: Retry-After %d, want >= 1", i, ra)
			}
		}
	}
}

// TestRateLimiterConcurrentStreams hammers M stream buckets from N
// goroutines each under -race: token grants stay exactly conserved per
// bucket (no over-grant under contention), buckets are isolated, and every
// denial carries a positive wait. The clock is frozen, so each bucket can
// grant precisely its burst.
func TestRateLimiterConcurrentStreams(t *testing.T) {
	const (
		streams    = 8
		goroutines = 6
		attempts   = 200
		burst      = 17
	)
	now := time.Unix(2000, 0)
	l := newRateLimiter(5, burst)
	l.now = func() time.Time { return now }

	var granted [streams]atomic.Int64
	var badWaits atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				for s := 0; s < streams; s++ {
					ok, wait := l.allow(s)
					if ok {
						granted[s].Add(1)
					} else if wait <= 0 || retryAfterSeconds(wait) < 1 {
						badWaits.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	for s := 0; s < streams; s++ {
		if got := granted[s].Load(); got != burst {
			t.Errorf("stream %d granted %d tokens under a frozen clock, want exactly the burst %d", s, got, burst)
		}
	}
	if n := badWaits.Load(); n != 0 {
		t.Errorf("%d denials reported a zero/negative wait or Retry-After < 1", n)
	}

	// Refill one token and race for it: exactly one goroutine may win it per
	// bucket — bucket isolation and conservation under contention.
	now = now.Add(time.Second / 5)
	var wins [streams]atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < streams; s++ {
				if ok, _ := l.allow(s); ok {
					wins[s].Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for s := 0; s < streams; s++ {
		if got := wins[s].Load(); got != 1 {
			t.Errorf("stream %d granted %d refilled tokens, want exactly 1", s, got)
		}
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want int
	}{
		{0, 1}, {10 * time.Millisecond, 1}, {time.Second, 1}, {1100 * time.Millisecond, 2}, {3 * time.Second, 3},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.wait); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.wait, got, tc.want)
		}
	}
}
