package main

import (
	"testing"
	"time"
)

// TestRateLimiterBuckets drives the token bucket with a fake clock: burst
// spends, refill restores, streams are independent, and the reported wait
// matches the deficit.
func TestRateLimiterBuckets(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(2, 2) // 2 tuples/sec, burst 2
	l.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow(0); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	ok, wait := l.allow(0)
	if ok {
		t.Fatal("third token within the same instant allowed")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Fatalf("wait %v, want in (0, 500ms] at 2 tokens/sec", wait)
	}
	// A different stream has its own bucket.
	if ok, _ := l.allow(1); !ok {
		t.Fatal("stream 1 denied by stream 0's exhaustion")
	}
	// Half a second refills one token at 2/sec.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := l.allow(0); !ok {
		t.Fatal("refilled token denied")
	}
	if ok, _ := l.allow(0); ok {
		t.Fatal("second token after a one-token refill allowed")
	}
	// Idle time caps at burst, not unbounded credit.
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow(0); !ok {
			t.Fatalf("post-idle burst token %d denied", i)
		}
	}
	if ok, _ := l.allow(0); ok {
		t.Fatal("idle time accumulated more than burst")
	}

	// Disabled limiter (rate 0) is nil and allows everything.
	if dl := newRateLimiter(0, 5); dl != nil {
		t.Fatal("rate 0 must disable the limiter")
	}
	var nilLimiter *rateLimiter
	if ok, _ := nilLimiter.allow(3); !ok {
		t.Fatal("nil limiter must allow")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want int
	}{
		{0, 1}, {10 * time.Millisecond, 1}, {time.Second, 1}, {1100 * time.Millisecond, 2}, {3 * time.Second, 3},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.wait); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.wait, got, tc.want)
		}
	}
}
