package main

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// debugMux builds the -debug-addr handler: net/http/pprof, expvar, and the
// metrics exposition, registered explicitly on a private mux (importing
// net/http/pprof for its side effect would put the profiler on the public
// serving mux via http.DefaultServeMux — exactly what a separate debug
// listener exists to avoid).
func debugMux(s *server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}
