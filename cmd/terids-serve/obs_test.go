package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"terids/internal/engine"
	"terids/internal/obs"
)

// startObsServer is startServer with trace sampling enabled and a shutdown
// func tests can call early (cleanup tolerates both orders).
func startObsServer(t *testing.T, f serveFixture, shards, traceSample int) (*server, *httptest.Server, func()) {
	t.Helper()
	srv := newServer(f.sh.Schema, 256, 0, t.TempDir())
	srv.streams = f.cfg.Streams
	eng, err := engine.New(f.sh, engine.Config{
		Core:        f.cfg,
		Shards:      shards,
		OnResult:    srv.onResult,
		TraceSample: traceSample,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.eng = eng
	srv.ready.Store(true)
	ts := httptest.NewServer(srv.routes())
	var once sync.Once
	shut := func() { once.Do(func() { close(srv.done) }) }
	t.Cleanup(func() {
		shut()
		ts.Close()
		_ = eng.Close()
	})
	return srv, ts, shut
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

// TestServeMetricsEndpoint drives traffic through the full pipeline and
// checks /metrics is valid text exposition covering every stage, with
// read-time quantiles per latency family.
func TestServeMetricsEndpoint(t *testing.T) {
	f := loadServeFixture(t)
	_, ts, _ := startObsServer(t, f, 2, 4)
	ingest(t, ts, f.stream[:80])

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("unparseable exposition line: %q", line)
		}
	}
	// Every pipeline stage must be represented, each latency family with its
	// read-time quantile series.
	for _, want := range []string{
		"terids_arrivals_total ",
		"terids_impute_queue_wait_seconds_count ",
		"terids_impute_seconds_count ",
		"terids_route_seconds_count ",
		"terids_merge_hold_seconds_count ",
		"terids_merge_pending ",
		`terids_shard_resolve_seconds_count{shard="0"}`,
		`terids_shard_resolve_seconds_count{shard="1"}`,
		`terids_impute_seconds_q{q="0.50"}`,
		`terids_route_seconds_q{q="0.95"}`,
		`terids_merge_hold_seconds_q{q="0.99"}`,
		"terids_traces_sampled_total ",
		"terids_uptime_seconds ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestServeTraceEndpoint: with -trace-sample 1, every arrival's timeline is
// retained and served as one NDJSON object per line.
func TestServeTraceEndpoint(t *testing.T) {
	f := loadServeFixture(t)
	_, ts, _ := startObsServer(t, f, 2, 1)
	ingest(t, ts, f.stream[:40])

	resp, body := get(t, ts.URL+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 40 {
		t.Fatalf("/trace returned %d lines, want 40", len(lines))
	}
	for i, line := range lines {
		var tr map[string]any
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			t.Fatalf("trace line %d not JSON: %v\n%s", i, err, line)
		}
		if int64(tr["seq"].(float64)) != int64(i) {
			t.Fatalf("trace line %d has seq %v (oldest-first order broken)", i, tr["seq"])
		}
		for _, key := range []string{"rid", "impute_queue_wait_ns", "impute_ns", "route_ns", "merge_hold_ns", "total_ns", "pairs"} {
			if _, ok := tr[key]; !ok {
				t.Fatalf("trace line %d missing %q: %s", i, key, line)
			}
		}
		if tr["total_ns"].(float64) <= 0 {
			t.Fatalf("trace line %d has non-positive total_ns: %s", i, line)
		}
	}
}

// TestServeHealthReadiness walks the lifecycle: readiness gates on startup
// completing (with the startup phase as the 503 body), engine-backed
// endpoints are gated the same way, and both probes flip to 503 on shutdown.
func TestServeHealthReadiness(t *testing.T) {
	f := loadServeFixture(t)
	srv, ts, shut := startObsServer(t, f, 1, 0)
	srv.ready.Store(false) // rewind the helper: pre-attach startup state

	if resp, body := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz before ready: %d %q, want 200 ok", resp.StatusCode, body)
	}
	// Readiness is withheld until main finishes recovery and flips the bit —
	// liveness is not — and the 503 body names the phase.
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("readyz before ready: %d %q, want 503 starting", resp.StatusCode, body)
	}
	srv.readyReason.Store("recovering")
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "recovering") {
		t.Fatalf("readyz while recovering: %d %q, want 503 recovering", resp.StatusCode, body)
	}
	// Engine-backed endpoints are readiness-gated with the same reason, so a
	// listener that is up before the engine exists never dereferences it.
	if resp, body := get(t, ts.URL+"/stats"); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "recovering") {
		t.Fatalf("stats while recovering: %d %q, want 503 recovering", resp.StatusCode, body)
	}
	srv.readyReason.Store("")
	srv.ready.Store(true)
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz after ready: %d %q, want 200 ready", resp.StatusCode, body)
	}
	srv.ready.Store(false)
	shut()
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: %d, want 503", resp.StatusCode)
	}
}

// TestServeStatsSchemaStable: /stats carries uptime and a zero-valued
// replay.deep_replays even without -wal-dir, so scrapers see one schema
// regardless of deployment mode.
func TestServeStatsSchemaStable(t *testing.T) {
	f := loadServeFixture(t)
	_, ts, _ := startObsServer(t, f, 1, 0)
	ingest(t, ts, f.stream[:10])

	stats := getStats(t, ts)
	up, ok := stats["uptime_seconds"].(float64)
	if !ok || up <= 0 {
		t.Fatalf("uptime_seconds = %v, want > 0", stats["uptime_seconds"])
	}
	replay, ok := stats["replay"].(map[string]any)
	if !ok {
		t.Fatalf("replay section missing: %v", stats)
	}
	dr, ok := replay["deep_replays"].(float64)
	if !ok || dr != 0 {
		t.Fatalf("replay.deep_replays = %v, want 0 without -wal-dir", replay["deep_replays"])
	}
}

// decodeEvents parses an /events NDJSON body.
func decodeEvents(t *testing.T, body string) []obs.Event {
	t.Helper()
	var out []obs.Event
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	return out
}

// TestServeEventsEndpoint: lifecycle events (here: an admin rebalance) land
// in the journal and stream back from /events as NDJSON, with ?from= cursors
// and malformed-cursor rejection.
func TestServeEventsEndpoint(t *testing.T) {
	f := loadServeFixture(t)
	_, ts := startServer(t, f, 2, 256, nil)
	ingest(t, ts, f.stream[:60])

	resp, err := http.Post(ts.URL+"/rebalance?shards=4", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /rebalance: status %d", resp.StatusCode)
	}

	eresp, body := get(t, ts.URL+"/events")
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("/events status %d", eresp.StatusCode)
	}
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("/events content type %q", ct)
	}
	events := decodeEvents(t, body)
	if len(events) == 0 {
		t.Fatal("/events returned no events after a rebalance")
	}
	var start, done *obs.Event
	for i := range events {
		ev := &events[i]
		if ev.Type == "rebalance_start" && start == nil {
			start = ev
		}
		if ev.Type == "rebalance_done" {
			done = ev
		}
	}
	if start == nil || done == nil {
		t.Fatalf("events missing rebalance_start/rebalance_done:\n%s", body)
	}
	if trig, _ := start.Fields["trigger"].(string); trig != "manual" {
		t.Fatalf("rebalance_start trigger %v, want manual", start.Fields["trigger"])
	}
	if done.Fields["k_to"].(float64) != 4 {
		t.Fatalf("rebalance_done k_to %v, want 4", done.Fields["k_to"])
	}

	// Cursor: resuming from the last event's seq returns exactly that suffix.
	last := events[len(events)-1].Seq
	_, tail := get(t, fmt.Sprintf("%s/events?from=%d", ts.URL, last))
	tailEvents := decodeEvents(t, tail)
	if len(tailEvents) < 1 || tailEvents[0].Seq != last {
		t.Fatalf("/events?from=%d starts at %v, want %d", last, tailEvents, last)
	}
	if bad, _ := get(t, ts.URL+"/events?from=abc"); bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("/events?from=abc status %d, want 400", bad.StatusCode)
	}
}

// TestServeSLOEndpointBreach wires a deliberately impossible latency
// objective into the server: after one evaluation tick over real ingest
// latencies the objective reports breach on /slo, and the ok→breach
// transition is in the journal (and so on /events).
func TestServeSLOEndpointBreach(t *testing.T) {
	f := loadServeFixture(t)
	srv, ts, _ := startObsServer(t, f, 2, 0)
	ingest(t, ts, f.stream[:60])

	obj, err := obs.ParseSLO("serve-ingest-lat:terids_impute_seconds:p99<1ns")
	if err != nil {
		t.Fatal(err)
	}
	slo := obs.NewSLOEngine(srv.reg, srv.jr, []obs.Objective{obj},
		time.Second, 10*time.Second, time.Minute)
	srv.slo = slo
	slo.Tick(time.Now())

	resp, body := get(t, ts.URL+"/slo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/slo status %d", resp.StatusCode)
	}
	var out struct {
		Objectives []obs.SLOStatus `json:"objectives"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/slo not JSON: %v\n%s", err, body)
	}
	var st *obs.SLOStatus
	for i := range out.Objectives {
		if out.Objectives[i].Objective == "serve-ingest-lat" {
			st = &out.Objectives[i]
		}
	}
	if st == nil {
		t.Fatalf("/slo missing serve-ingest-lat: %s", body)
	}
	if st.State != "breach" || st.BurnRateFast < 1 || st.BudgetRemaining != 0 {
		t.Fatalf("breached objective reports %+v, want state=breach burn_fast>=1 budget=0", st)
	}
	if st.Current <= 1e-9 {
		t.Fatalf("current p99 %v s, want > 1ns", st.Current)
	}

	// The transition is journaled, hence visible on /events.
	_, ebody := get(t, ts.URL+"/events")
	found := false
	for _, ev := range decodeEvents(t, ebody) {
		if ev.Type == "slo_transition" && ev.Fields["slo"] == "serve-ingest-lat" &&
			ev.Fields["to"] == "breach" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no slo_transition to breach for serve-ingest-lat in /events:\n%s", ebody)
	}

	// The state gauges are on /metrics.
	_, mbody := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`terids_slo_state{slo="serve-ingest-lat"} 2`,
		`terids_slo_budget_remaining{slo="serve-ingest-lat"} 0`,
	} {
		if !strings.Contains(mbody, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestServeDebugDump: POST /debug/dump writes a parseable flight bundle and
// returns its path; without a flight recorder the endpoint is a 404.
func TestServeDebugDump(t *testing.T) {
	f := loadServeFixture(t)
	srv, ts, _ := startObsServer(t, f, 2, 2)
	ingest(t, ts, f.stream[:40])
	dir := t.TempDir()
	srv.flight = &obs.Flight{
		Dir: dir, Version: "test",
		Registry: srv.reg, Journal: srv.jr,
		Traces: func() any { return srv.eng.Traces() },
		Stats:  func() any { return srv.eng.Stats() },
	}
	srv.jr.Record("test_marker", "dump test marker", nil)

	resp, body := get(t, ts.URL+"/healthz") // warm liveness before the dump
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	dresp, err := http.Post(ts.URL+"/debug/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Path string `json:"path"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || out.Path == "" {
		t.Fatalf("POST /debug/dump: status %d path %q", dresp.StatusCode, out.Path)
	}
	raw, err := os.ReadFile(out.Path)
	if err != nil {
		t.Fatal(err)
	}
	var bundle obs.FlightBundle
	if err := json.Unmarshal(raw, &bundle); err != nil {
		t.Fatalf("bundle not JSON: %v", err)
	}
	if bundle.Reason != "http" || len(bundle.Events) == 0 ||
		!strings.Contains(bundle.Metrics, "terids_arrivals_total") ||
		!strings.Contains(bundle.Goroutines, "goroutine") {
		t.Fatalf("bundle incomplete: reason=%q events=%d metrics=%dB",
			bundle.Reason, len(bundle.Events), len(bundle.Metrics))
	}
	marked := false
	for _, ev := range bundle.Events {
		if ev.Type == "test_marker" {
			marked = true
		}
	}
	if !marked {
		t.Fatal("bundle events missing the journaled marker")
	}

	// No recorder configured: 404, nothing written.
	_, ts2 := startServer(t, f, 1, 8, nil)
	nresp, err := http.Post(ts2.URL+"/debug/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("dump without -flight-dir: status %d, want 404", nresp.StatusCode)
	}
}

// TestServeTraceDuringRebalance hammers GET /trace while admin rebalances
// and ingest run concurrently: every served trace must be complete — all
// stage fields present, strictly positive total — under the race detector.
func TestServeTraceDuringRebalance(t *testing.T) {
	f := loadServeFixture(t)
	_, ts, _ := startObsServer(t, f, 2, 1)
	ingest(t, ts, f.stream[:40])

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/trace")
				if err != nil {
					t.Error(err)
					return
				}
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
				for sc.Scan() {
					var tr map[string]any
					if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
						t.Errorf("trace line not JSON during rebalance: %v", err)
						break
					}
					for _, key := range []string{"impute_queue_wait_ns", "impute_ns", "route_ns", "merge_hold_ns", "total_ns"} {
						v, ok := tr[key].(float64)
						if !ok {
							t.Errorf("trace missing %q during rebalance: %v", key, tr)
							break
						}
						if v < 0 {
							t.Errorf("trace %s negative (%v) during rebalance", key, v)
							break
						}
					}
					if tot, _ := tr["total_ns"].(float64); tot <= 0 {
						t.Errorf("trace total_ns %v during rebalance, want > 0", tr["total_ns"])
					}
				}
				resp.Body.Close()
			}
		}()
	}
	// Rebalance back and forth while traces stream, with ingest in between.
	next := 40
	for i, k := range []int{4, 2, 4, 2} {
		resp, err := http.Post(fmt.Sprintf("%s/rebalance?shards=%d", ts.URL, k), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rebalance %d: status %d", i, resp.StatusCode)
		}
		if next+20 <= len(f.stream) {
			ingest(t, ts, f.stream[next:next+20])
			next += 20
		}
	}
	close(stop)
	wg.Wait()
}
