package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"terids/internal/engine"
)

// startObsServer is startServer with trace sampling enabled and a shutdown
// func tests can call early (cleanup tolerates both orders).
func startObsServer(t *testing.T, f serveFixture, shards, traceSample int) (*server, *httptest.Server, func()) {
	t.Helper()
	srv := newServer(f.sh.Schema, 256, 0, t.TempDir())
	srv.streams = f.cfg.Streams
	eng, err := engine.New(f.sh, engine.Config{
		Core:        f.cfg,
		Shards:      shards,
		OnResult:    srv.onResult,
		TraceSample: traceSample,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.eng = eng
	ts := httptest.NewServer(srv.routes())
	var once sync.Once
	shut := func() { once.Do(func() { close(srv.done) }) }
	t.Cleanup(func() {
		shut()
		ts.Close()
		_ = eng.Close()
	})
	return srv, ts, shut
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

// TestServeMetricsEndpoint drives traffic through the full pipeline and
// checks /metrics is valid text exposition covering every stage, with
// read-time quantiles per latency family.
func TestServeMetricsEndpoint(t *testing.T) {
	f := loadServeFixture(t)
	_, ts, _ := startObsServer(t, f, 2, 4)
	ingest(t, ts, f.stream[:80])

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("unparseable exposition line: %q", line)
		}
	}
	// Every pipeline stage must be represented, each latency family with its
	// read-time quantile series.
	for _, want := range []string{
		"terids_arrivals_total ",
		"terids_impute_queue_wait_seconds_count ",
		"terids_impute_seconds_count ",
		"terids_route_seconds_count ",
		"terids_merge_hold_seconds_count ",
		"terids_merge_pending ",
		`terids_shard_resolve_seconds_count{shard="0"}`,
		`terids_shard_resolve_seconds_count{shard="1"}`,
		`terids_impute_seconds_q{q="0.50"}`,
		`terids_route_seconds_q{q="0.95"}`,
		`terids_merge_hold_seconds_q{q="0.99"}`,
		"terids_traces_sampled_total ",
		"terids_uptime_seconds ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestServeTraceEndpoint: with -trace-sample 1, every arrival's timeline is
// retained and served as one NDJSON object per line.
func TestServeTraceEndpoint(t *testing.T) {
	f := loadServeFixture(t)
	_, ts, _ := startObsServer(t, f, 2, 1)
	ingest(t, ts, f.stream[:40])

	resp, body := get(t, ts.URL+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 40 {
		t.Fatalf("/trace returned %d lines, want 40", len(lines))
	}
	for i, line := range lines {
		var tr map[string]any
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			t.Fatalf("trace line %d not JSON: %v\n%s", i, err, line)
		}
		if int64(tr["seq"].(float64)) != int64(i) {
			t.Fatalf("trace line %d has seq %v (oldest-first order broken)", i, tr["seq"])
		}
		for _, key := range []string{"rid", "impute_queue_wait_ns", "impute_ns", "route_ns", "merge_hold_ns", "total_ns", "pairs"} {
			if _, ok := tr[key]; !ok {
				t.Fatalf("trace line %d missing %q: %s", i, key, line)
			}
		}
		if tr["total_ns"].(float64) <= 0 {
			t.Fatalf("trace line %d has non-positive total_ns: %s", i, line)
		}
	}
}

// TestServeHealthReadiness walks the lifecycle: readiness gates on startup
// completing, both probes flip to 503 on shutdown.
func TestServeHealthReadiness(t *testing.T) {
	f := loadServeFixture(t)
	srv, ts, shut := startObsServer(t, f, 1, 0)

	if resp, body := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz before ready: %d %q, want 200 ok", resp.StatusCode, body)
	}
	// Readiness is withheld until main finishes recovery and flips the bit —
	// liveness is not.
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before ready: %d, want 503", resp.StatusCode)
	}
	srv.ready.Store(true)
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz after ready: %d %q, want 200 ready", resp.StatusCode, body)
	}
	srv.ready.Store(false)
	shut()
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: %d, want 503", resp.StatusCode)
	}
}

// TestServeStatsSchemaStable: /stats carries uptime and a zero-valued
// replay.deep_replays even without -wal-dir, so scrapers see one schema
// regardless of deployment mode.
func TestServeStatsSchemaStable(t *testing.T) {
	f := loadServeFixture(t)
	_, ts, _ := startObsServer(t, f, 1, 0)
	ingest(t, ts, f.stream[:10])

	stats := getStats(t, ts)
	up, ok := stats["uptime_seconds"].(float64)
	if !ok || up <= 0 {
		t.Fatalf("uptime_seconds = %v, want > 0", stats["uptime_seconds"])
	}
	replay, ok := stats["replay"].(map[string]any)
	if !ok {
		t.Fatalf("replay section missing: %v", stats)
	}
	dr, ok := replay["deep_replays"].(float64)
	if !ok || dr != 0 {
		t.Fatalf("replay.deep_replays = %v, want 0 without -wal-dir", replay["deep_replays"])
	}
}
