// Command benchgate is the benchmark regression gate: it compares a fresh
// BENCH_engine.json (see cmd/benchjson) against a committed baseline and
// fails when a gated latency metric regresses beyond a tolerance.
//
// Usage:
//
//	go run ./cmd/benchgate -baseline BENCH_baseline.json -current BENCH_engine.json
//
// Because CI machines differ from the machine that produced the baseline,
// raw wall-clock comparison would gate on hardware, not code. Both sides are
// therefore normalized by a reference benchmark measured in the same run —
// by default ProcessorBaseline's ns/op, the single-threaded core that every
// engine change leaves untouched. The gated quantity is the ratio
//
//	metric / ref_ns_per_op
//
// i.e. "engine nanoseconds per arrival, in units of core-processor
// nanoseconds", which is stable across machine speeds. Pass -ref "" to
// compare raw values instead (only meaningful on identical hardware).
//
// When a run repeats a benchmark (-count > 1), the minimum per name is used
// on both sides — benchstat-style best-of, the least noisy floor for
// latency metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Result and Report mirror cmd/benchjson's output schema.
type Result struct {
	Name    string             `json:"name"`
	Procs   int                `json:"procs,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

type Report struct {
	Results []Result `json:"results"`
}

// load reads a benchjson report and folds repeated benchmark names down to
// the per-metric minimum.
func load(path string) (map[string]map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]map[string]float64{}
	for _, r := range rep.Results {
		m := out[r.Name]
		if m == nil {
			m = map[string]float64{}
			out[r.Name] = m
		}
		for unit, v := range r.Metrics {
			if prev, ok := m[unit]; !ok || v < prev {
				m[unit] = v
			}
		}
	}
	return out, nil
}

// refScale returns the normalization divisor for one report: the reference
// benchmark's metric, or 1 when normalization is disabled.
func refScale(rep map[string]map[string]float64, refName, refMetric, path string) (float64, error) {
	if refName == "" {
		return 1, nil
	}
	m, ok := rep[refName]
	if !ok {
		return 0, fmt.Errorf("%s: reference benchmark %q missing — cannot normalize", path, refName)
	}
	v, ok := m[refMetric]
	if !ok || v <= 0 {
		return 0, fmt.Errorf("%s: reference %q has no positive %q", path, refName, refMetric)
	}
	return v, nil
}

func run() error {
	var (
		basePath  = flag.String("baseline", "BENCH_baseline.json", "committed baseline report (benchjson schema)")
		curPath   = flag.String("current", "BENCH_engine.json", "freshly measured report to gate")
		metrics   = flag.String("metrics", "ns_per_arrival,batch_ns_per_arrival", "comma-separated latency metrics to gate (lower is better)")
		refName   = flag.String("ref", "ProcessorBaseline", "reference benchmark used to normalize across machines (\"\" = raw comparison)")
		refMetric = flag.String("ref-metric", "ns/op", "metric of the reference benchmark")
		maxRegr   = flag.Float64("max-regress", 0.15, "fail when normalized metric exceeds baseline by more than this fraction")
	)
	flag.Parse()

	base, err := load(*basePath)
	if err != nil {
		return err
	}
	cur, err := load(*curPath)
	if err != nil {
		return err
	}
	baseRef, err := refScale(base, *refName, *refMetric, *basePath)
	if err != nil {
		return err
	}
	curRef, err := refScale(cur, *refName, *refMetric, *curPath)
	if err != nil {
		return err
	}

	gated := map[string]bool{}
	for _, m := range strings.Split(*metrics, ",") {
		if m = strings.TrimSpace(m); m != "" {
			gated[m] = true
		}
	}

	rows, failures, compared := compare(base, cur, baseRef, curRef, gated, *maxRegr, *curPath)
	fmt.Printf("%-28s %-26s %12s %12s %8s\n", "benchmark", "metric", "baseline", "current", "delta")
	for _, row := range rows {
		fmt.Println(row)
	}
	if compared == 0 {
		return fmt.Errorf("no gated metrics (%s) found in %s — empty gate would pass vacuously", *metrics, *basePath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Printf("gate passed: %d metrics within %.0f%% of baseline (normalized by %s %s)\n",
		compared, *maxRegr*100, *refName, *refMetric)
	return nil
}

// compare evaluates every gated baseline metric against the current report.
// Each side is divided by its own reference scale before comparison. It
// returns printable table rows, gate failures (regressions, dropped
// benchmarks, renamed metrics), and how many metrics were actually compared.
func compare(base, cur map[string]map[string]float64, baseRef, curRef float64,
	gated map[string]bool, maxRegr float64, curPath string) (rows, failures []string, compared int) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		units := make([]string, 0, len(base[name]))
		for unit := range base[name] {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			bv := base[name][unit]
			if !gated[unit] || bv <= 0 {
				continue
			}
			curMetrics, ok := cur[name]
			if !ok {
				failures = append(failures,
					fmt.Sprintf("%s: present in baseline but missing from %s — benchmark dropped?", name, curPath))
				continue
			}
			cv, ok := curMetrics[unit]
			if !ok {
				failures = append(failures,
					fmt.Sprintf("%s: metric %s missing from %s — metric renamed?", name, unit, curPath))
				continue
			}
			compared++
			delta := (cv/curRef)/(bv/baseRef) - 1
			mark := ""
			if delta > maxRegr {
				mark = "  REGRESSION"
				failures = append(failures, fmt.Sprintf("%s %s regressed %.1f%% (limit %.0f%%)",
					name, unit, delta*100, maxRegr*100))
			}
			rows = append(rows, fmt.Sprintf("%-28s %-26s %12.0f %12.0f %+7.1f%%%s",
				name, unit, bv, cv, delta*100, mark))
		}
	}
	return rows, failures, compared
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
