package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadFoldsRepeatsToMin: -count > 1 runs repeat a benchmark name;
// load keeps the per-metric minimum (benchstat-style best-of).
func TestLoadFoldsRepeatsToMin(t *testing.T) {
	path := writeReport(t, t.TempDir(), "r.json", Report{Results: []Result{
		{Name: "EngineShards/4", Metrics: map[string]float64{"ns_per_arrival": 120, "tuples/s": 800}},
		{Name: "EngineShards/4", Metrics: map[string]float64{"ns_per_arrival": 100, "tuples/s": 900}},
		{Name: "EngineShards/4", Metrics: map[string]float64{"ns_per_arrival": 110}},
	}})
	rep, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep["EngineShards/4"]["ns_per_arrival"]; got != 100 {
		t.Fatalf("ns_per_arrival folded to %v, want the minimum 100", got)
	}
	if got := rep["EngineShards/4"]["tuples/s"]; got != 800 {
		t.Fatalf("tuples/s folded to %v, want the minimum 800", got)
	}
}

// TestCompareNormalizedGate: the gate is on the machine-normalized ratio —
// a slower machine (higher reference ns) with proportionally slower engine
// numbers passes, while a true >15% regression fails even when the raw
// numbers look faster.
func TestCompareNormalizedGate(t *testing.T) {
	gated := map[string]bool{"ns_per_arrival": true}
	base := map[string]map[string]float64{
		"EngineShards/4": {"ns_per_arrival": 1000},
	}

	// Same code, machine 2x slower: reference doubles, metric doubles.
	slower := map[string]map[string]float64{"EngineShards/4": {"ns_per_arrival": 2000}}
	_, failures, compared := compare(base, slower, 50, 100, gated, 0.15, "cur.json")
	if compared != 1 || len(failures) != 0 {
		t.Fatalf("proportional slowdown flagged: compared=%d failures=%v", compared, failures)
	}

	// Machine 2x faster, but the metric only improved 1.5x: a 33% real
	// regression hiding behind better raw numbers.
	hidden := map[string]map[string]float64{"EngineShards/4": {"ns_per_arrival": 667}}
	_, failures, _ = compare(base, hidden, 100, 50, gated, 0.15, "cur.json")
	if len(failures) != 1 || !strings.Contains(failures[0], "regressed") {
		t.Fatalf("hidden regression not flagged: %v", failures)
	}

	// Dropped benchmark and renamed metric both fail the gate.
	_, failures, compared = compare(base, map[string]map[string]float64{}, 1, 1, gated, 0.15, "cur.json")
	if compared != 0 || len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("dropped benchmark not flagged: %v", failures)
	}
	renamed := map[string]map[string]float64{"EngineShards/4": {"ns/arrival": 1000}}
	_, failures, _ = compare(base, renamed, 1, 1, gated, 0.15, "cur.json")
	if len(failures) != 1 || !strings.Contains(failures[0], "renamed") {
		t.Fatalf("renamed metric not flagged: %v", failures)
	}
}

// TestRefScale: missing or non-positive references are hard errors — a
// silently absent normalizer would turn the gate into a raw comparison.
func TestRefScale(t *testing.T) {
	rep := map[string]map[string]float64{"ProcessorBaseline": {"ns/op": 500}}
	if v, err := refScale(rep, "ProcessorBaseline", "ns/op", "r.json"); err != nil || v != 500 {
		t.Fatalf("refScale = %v, %v; want 500, nil", v, err)
	}
	if v, err := refScale(rep, "", "ns/op", "r.json"); err != nil || v != 1 {
		t.Fatalf("disabled normalization = %v, %v; want 1, nil", v, err)
	}
	if _, err := refScale(rep, "Gone", "ns/op", "r.json"); err == nil {
		t.Fatal("missing reference benchmark accepted")
	}
	if _, err := refScale(rep, "ProcessorBaseline", "allocs/op", "r.json"); err == nil {
		t.Fatal("missing reference metric accepted")
	}
}
