package main

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"terids/internal/obs"
)

// registerPprof wires net/http/pprof and expvar onto the -debug-addr mux
// explicitly, keeping them off http.DefaultServeMux.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}

// printStageLatencies prints the per-stage latency quantiles the engine
// published during the run — the wall-clock attribution the summed cost
// breakdown cannot give (it measures CPU time across workers).
func printStageLatencies() {
	reg := obs.Default()
	stages := []struct{ label, metric string }{
		{"impute wait", "terids_impute_queue_wait_seconds"},
		{"impute", "terids_impute_seconds"},
		{"route", "terids_route_seconds"},
		{"merge hold", "terids_merge_hold_seconds"},
		{"wal wait", "terids_wal_submit_wait_seconds"},
	}
	fmt.Printf("stage latency (p50/p95/p99):")
	for _, s := range stages {
		h := reg.Histogram(s.metric, "", nil)
		if h.Count() == 0 {
			continue
		}
		fmt.Printf(" %s %v/%v/%v", s.label,
			quantDur(h, 0.50), quantDur(h, 0.95), quantDur(h, 0.99))
	}
	fmt.Println()
}

func quantDur(h *obs.Histogram, q float64) time.Duration {
	return time.Duration(h.Quantile(q)).Round(time.Microsecond)
}
