// Command terids runs the TER-iDS operator over one of the built-in
// synthetic dataset profiles and streams matching pairs to stdout as they
// are detected, alongside summary statistics — a quick way to watch online
// topic-aware entity resolution over incomplete streams.
//
// Usage:
//
//	terids -dataset Citations -alpha 0.5 -rho 0.5 -xi 0.3 -w 200 -max 500 -v
//
// The run can be checkpointed and resumed: -checkpoint <file> writes the
// final operator state when the stream ends, and -restore <file> loads a
// checkpoint and skips the arrivals it already covers (same dataset flags
// and seed regenerate the same stream, so the suffix lines up exactly).
//
// With -auto-shards the engine sizes the shard count itself and adaptively
// rebalances when topic skew concentrates residents on few shards (mutually
// exclusive with an explicit -shards).
//
// For crash-safe runs, -wal <dir> logs every arrival to a write-ahead log
// before processing it and auto-resumes: rerunning the same command after a
// kill recovers the newest checkpoint under the directory (periodic with
// -checkpoint-interval, always one final on completion), replays the WAL
// suffix, and continues with the remaining arrivals — the combined output is
// identical to an uninterrupted run. Mutually exclusive with -restore; the
// same dataset flags must be used across reruns.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"terids/internal/cliutil"
	"terids/internal/core"
	"terids/internal/dataset"
	"terids/internal/engine"
	"terids/internal/metrics"
	"terids/internal/obs"
	"terids/internal/snapshot"
	"terids/internal/tuple"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("terids: ")

	var (
		name      = flag.String("dataset", "Citations", "dataset profile (Citations, Anime, Bikes, EBooks, Songs)")
		alpha     = flag.Float64("alpha", 0.5, "probabilistic threshold α in [0,1)")
		rho       = flag.Float64("rho", 0.5, "similarity ratio ρ (γ = ρ·d)")
		xi        = flag.Float64("xi", 0.3, "missing rate ξ")
		m         = flag.Int("m", 1, "missing attributes per incomplete tuple")
		w         = flag.Int("w", 200, "sliding window size")
		eta       = flag.Float64("eta", 0.5, "repository size ratio η")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		seed      = flag.Int64("seed", 1, "generation seed")
		max       = flag.Int("max", 0, "max arrivals to process (0 = all)")
		shards    = flag.Int("shards", 1, "ER-grid shards (>1 runs the concurrent engine)")
		autoSh    = flag.Bool("auto-shards", false, "auto-size the shard count and adaptively rebalance under topic skew (mutually exclusive with -shards)")
		keywords  = flag.String("keywords", "", "comma-separated query keywords (default: the profile's topics)")
		verbose   = flag.Bool("v", false, "print every matching pair as it is found")
		ckptOut   = flag.String("checkpoint", "", "write the final operator state to this file when the stream ends")
		restore   = flag.String("restore", "", "resume from a checkpoint file (skips the arrivals it covers)")
		walDir    = flag.String("wal", "", "write-ahead log directory: crash-safe run, reruns auto-resume (mutually exclusive with -restore)")
		ckptEvery = flag.Duration("checkpoint-interval", 0,
			"periodic background checkpoints under -wal (0 = only the final one; requires -wal)")
		debugAddr = flag.String("debug-addr", "", "listener for net/http/pprof, expvar, and /metrics while the run executes (empty = disabled)")
		batch     = flag.Int("batch", 64, "arrivals submitted per engine batch when -shards > 1 (1 = submit one at a time)")
	)
	flag.Parse()
	if err := (cliutil.Params{
		Alpha: *alpha, Rho: *rho, W: *w, Streams: 2, Shards: *shards,
		Queue: 1, Scale: *scale, Eta: *eta, Xi: *xi,
	}).Validate(); err != nil {
		log.Fatal(err)
	}
	if err := (cliutil.Durability{
		WALDir: *walDir, Restore: *restore,
		CheckpointInterval: *ckptEvery, CheckpointKeep: 2,
	}).Validate(); err != nil {
		log.Fatal(err)
	}
	shardsSet := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "shards" {
			shardsSet = true
		}
	})
	if err := (cliutil.Rebalance{AutoShards: *autoSh, ShardsSet: shardsSet}).Validate(); err != nil {
		log.Fatal(err)
	}
	if err := (cliutil.Obs{DebugAddr: *debugAddr}).Validate(); err != nil {
		log.Fatal(err)
	}
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			obs.Default().WritePrometheus(rw)
		})
		registerPprof(mux)
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	prof, err := dataset.ProfileByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	data, err := dataset.Generate(prof, dataset.Options{
		Scale: *scale, MissingRate: *xi, MissingAttrs: *m, RepoRatio: *eta, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	kws := data.Keywords
	if *keywords != "" {
		kws = strings.Split(*keywords, ",")
	}

	fmt.Printf("dataset %s: %d stream tuples, repository %d, keywords %v\n",
		prof.Name, len(data.Stream), data.Repo.Len(), kws)

	start := time.Now()
	sh, err := core.Prepare(data.Repo, core.DefaultPrepareConfig(kws))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline phase: %d rules, pivots %v, indexes built in %v\n",
		sh.Rules.Len(), pivotCounts(sh), time.Since(start).Round(time.Millisecond))

	gamma := *rho * float64(data.Schema.D())
	cfg := core.Config{
		Keywords: kws, Gamma: gamma, Alpha: *alpha,
		WindowSize: *w, Streams: 2,
	}

	stream := data.Stream
	if *max > 0 && len(stream) > *max {
		stream = stream[:*max]
	}
	emitted := map[metrics.PairKey]bool{}
	var ckpt *snapshot.Checkpoint
	// replayRecs are the arrivals this process re-runs from the WAL (between
	// the recovered checkpoint's watermark and the log frontier); the summary
	// counts them as processed.
	var replayRecs []*tuple.Record
	if *restore != "" {
		ckpt, err = snapshot.ReadFile(*restore)
		if err != nil {
			log.Fatal(err)
		}
		if ckpt.Seq > int64(len(stream)) {
			log.Fatalf("checkpoint watermark %d beyond the %d-arrival stream (same -dataset/-seed/-scale flags regenerate it)",
				ckpt.Seq, len(stream))
		}
		fmt.Printf("restored %s: watermark %d, %d residents, %d live pairs — resuming at arrival %d\n",
			*restore, ckpt.Seq, len(ckpt.Residents), len(ckpt.Pairs), ckpt.Seq)
		// The summary below only sees the resumed suffix; carry the
		// checkpoint's live pairs into the emitted set so it stays coherent.
		for _, pr := range ckpt.Pairs {
			emitted[metrics.Key(ckpt.Residents[pr.A].RID, ckpt.Residents[pr.B].RID)] = true
		}
		stream = stream[ckpt.Seq:]
	} else if *walDir != "" {
		path, c, err := engine.LatestCheckpoint(*walDir)
		if err != nil {
			log.Fatal(err)
		}
		if c != nil {
			if c.Seq > int64(len(stream)) {
				log.Fatalf("checkpoint watermark %d beyond the %d-arrival stream (same -dataset/-seed/-scale flags regenerate it)",
					c.Seq, len(stream))
			}
			fmt.Printf("recovering %s: watermark %d, %d residents, %d live pairs\n",
				path, c.Seq, len(c.Residents), len(c.Pairs))
			for _, pr := range c.Pairs {
				emitted[metrics.Key(c.Residents[pr.A].RID, c.Residents[pr.B].RID)] = true
			}
		}
		ckpt = c
	}
	var (
		liveLen   int
		breakdown metrics.Breakdown
		pruneStat metrics.PruneStats
		elapsed   time.Duration
	)
	if *shards > 1 || *walDir != "" || *autoSh {
		engShards := *shards
		var rebCfg engine.RebalanceConfig
		if *autoSh {
			// Auto-sharding: let the engine size K (GOMAXPROCS, capped) and
			// run the skew monitor so a topic-skewed stream re-spreads its
			// residents mid-run.
			engShards = 0
			rebCfg = engine.RebalanceConfig{
				Threshold: 1.5, Interval: 100 * time.Millisecond, Logf: log.Printf,
			}
		}
		engCfg := engine.Config{
			Core:      cfg,
			Shards:    engShards,
			Rebalance: rebCfg,
			OnResult: func(res engine.Result) {
				for _, p := range res.Pairs {
					emitted[p.Key()] = true
					if *verbose {
						// Print the arriving side's timestamp, matching the
						// single-threaded path (pairs are RID-normalized, so
						// the arrival may be either side).
						t := p.A.Seq
						if p.A.RID != res.RID {
							t = p.B.Seq
						}
						fmt.Printf("t=%-6d match %s ~ %s (Pr=%.3f)\n",
							t, p.A.RID, p.B.RID, p.Prob)
					}
				}
			},
		}
		var eng *engine.Engine
		var dur *engine.Durable
		switch {
		case *walDir != "":
			// The checkpoint restore and the WAL replay both happen inside
			// OpenDurable (the replay flows through OnResult above, so its
			// matches land in the emitted set like any other).
			dur, err = engine.OpenDurable(sh, engCfg, engine.DurableConfig{
				Dir: *walDir, CheckpointInterval: *ckptEvery,
				Checkpoint: ckpt, Logf: log.Printf,
			})
			if err != nil {
				log.Fatal(err)
			}
			eng = dur.Eng
			resume := dur.ResumeSeq()
			if resume > int64(len(stream)) {
				log.Fatalf("wal frontier %d beyond the %d-arrival stream (same -dataset/-seed/-scale flags regenerate it)",
					resume, len(stream))
			}
			if resume > 0 {
				watermark := resume - dur.Replayed()
				replayRecs = stream[watermark:resume]
				fmt.Printf("wal: resumed at arrival %d (%d replayed from the log)\n", resume, dur.Replayed())
			}
			stream = stream[resume:]
		case ckpt != nil:
			eng, err = engine.NewFromSnapshot(sh, engCfg, ckpt)
		default:
			eng, err = engine.New(sh, engCfg)
		}
		if err != nil {
			log.Fatal(err)
		}
		bs := *batch
		if bs < 1 {
			bs = 1
		}
		start = time.Now()
		for off := 0; off < len(stream); off += bs {
			end := off + bs
			if end > len(stream) {
				end = len(stream)
			}
			if err := eng.SubmitBatch(stream[off:end]); err != nil {
				log.Fatal(err)
			}
		}
		if dur != nil {
			// Drains the pipeline and writes one final checkpoint, so a
			// rerun of the same command resumes past the whole stream.
			if err := dur.Close(true); err != nil {
				log.Fatal(err)
			}
		} else if err := eng.Close(); err != nil {
			log.Fatal(err)
		}
		elapsed = time.Since(start)
		st := eng.Stats()
		liveLen = st.LivePairs
		breakdown = st.Totals.Breakdown
		pruneStat = st.Totals.Prune
		fmt.Printf("engine: %d shards, per-shard residents ", st.Shards)
		for i, ss := range st.PerShard {
			if i > 0 {
				fmt.Print("/")
			}
			fmt.Print(ss.Residents)
		}
		fmt.Printf(" (imbalance %.2f)\n", st.Imbalance)
		printStageLatencies()
		if *autoSh {
			fmt.Printf("rebalancer: %d rebalances (%d automatic, %d skipped)\n",
				st.Rebalance.Rebalances, st.Rebalance.AutoRebalances, st.Rebalance.Skipped)
		}
		if *ckptOut != "" {
			c, err := eng.Checkpoint()
			if err != nil {
				log.Fatal(err)
			}
			writeCheckpoint(*ckptOut, c)
		}
	} else {
		var proc *core.Processor
		if ckpt != nil {
			proc, err = core.NewProcessorFromSnapshot(sh, cfg, ckpt)
		} else {
			proc, err = core.NewProcessor(sh, cfg)
		}
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		for _, r := range stream {
			pairs, err := proc.Advance(r)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range pairs {
				emitted[p.Key()] = true
				if *verbose {
					fmt.Printf("t=%-6d match %s ~ %s (Pr=%.3f)\n", r.Seq, p.A.RID, p.B.RID, p.Prob)
				}
			}
		}
		elapsed = time.Since(start)
		liveLen = proc.Results().Len()
		breakdown = proc.Breakdown()
		pruneStat = proc.PruneStats()
		if *ckptOut != "" {
			c, err := proc.Snapshot()
			if err != nil {
				log.Fatal(err)
			}
			writeCheckpoint(*ckptOut, c)
		}
	}

	// Ground truth restricted to the processed prefix (plus, on a resumed
	// run, the restored residents).
	truth := data.TruthPairs(*w, gamma)
	seen := map[string]bool{}
	for _, r := range stream {
		seen[r.RID] = true
	}
	for _, r := range replayRecs {
		seen[r.RID] = true
	}
	if ckpt != nil {
		for _, res := range ckpt.Residents {
			seen[res.RID] = true
		}
	}
	for k := range truth {
		if !seen[k.A] || !seen[k.B] {
			delete(truth, k)
		}
	}
	conf := metrics.Compare(emitted, truth)
	perTuple := 0.0
	if len(stream) > 0 {
		perTuple = float64(elapsed.Microseconds()) / float64(len(stream))
	}
	fmt.Printf("\nprocessed %d arrivals in %v (%.1f µs/tuple)\n",
		len(stream), elapsed.Round(time.Millisecond), perTuple)
	fmt.Printf("pairs emitted %d, live result set %d\n", len(emitted), liveLen)
	fmt.Printf("F-score vs ground truth: %.2f%% (precision %.2f%%, recall %.2f%%)\n",
		conf.F1()*100, conf.Precision()*100, conf.Recall()*100)
	fmt.Printf("cost breakdown: %v\n", breakdown)
	topic, simUB, probUB, instPair, total := pruneStat.Power()
	fmt.Printf("pruning power: topic %.1f%% simUB %.1f%% probUB %.1f%% instPair %.1f%% total %.1f%%\n",
		topic, simUB, probUB, instPair, total)
	if conf.TP == 0 && len(truth) > 0 {
		os.Exit(1)
	}
}

func writeCheckpoint(path string, c *snapshot.Checkpoint) {
	if err := snapshot.WriteFile(path, c); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: wrote %s (watermark %d, %d residents, %d live pairs)\n",
		path, c.Seq, len(c.Residents), len(c.Pairs))
}

func pivotCounts(sh *core.Shared) []int {
	out := make([]int, len(sh.Sel.PerAttr))
	for i := range sh.Sel.PerAttr {
		out[i] = sh.Sel.PerAttr[i].NumPivots()
	}
	return out
}
