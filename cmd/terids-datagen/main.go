// Command terids-datagen materializes a synthetic dataset profile to CSV:
// the incomplete stream (with ground-truth entity labels), its complete
// twin, and the repository — for inspection or use outside this module.
//
// Usage:
//
//	terids-datagen -dataset EBooks -xi 0.3 -out /tmp/ebooks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"terids/internal/dataset"
	"terids/internal/tuple"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("terids-datagen: ")

	var (
		name  = flag.String("dataset", "Citations", "dataset profile")
		xi    = flag.Float64("xi", 0.3, "missing rate ξ")
		m     = flag.Int("m", 1, "missing attributes per incomplete tuple")
		eta   = flag.Float64("eta", 0.5, "repository size ratio η")
		scale = flag.Float64("scale", 1.0, "dataset scale factor")
		seed  = flag.Int64("seed", 1, "generation seed")
		out   = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	prof, err := dataset.ProfileByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	data, err := dataset.Generate(prof, dataset.Options{
		Scale: *scale, MissingRate: *xi, MissingAttrs: *m, RepoRatio: *eta, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	write := func(file string, recs []*tuple.Record) {
		path := filepath.Join(*out, file)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := tuple.WriteCSV(f, data.Schema, recs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d records)\n", path, len(recs))
	}

	write("stream.csv", data.Stream)
	complete := make([]*tuple.Record, 0, len(data.Stream))
	for _, r := range data.Stream {
		complete = append(complete, data.Complete[r.RID])
	}
	write("stream_complete.csv", complete)
	write("repository.csv", data.Repo.Samples())
	writeNDJSON(filepath.Join(*out, "stream.ndjson"), data.Stream)
}

// writeNDJSON emits the stream in terids-serve's POST /ingest line format.
func writeNDJSON(path string, recs []*tuple.Record) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, r := range recs {
		vals := make([]string, r.D())
		for j := range vals {
			vals[j] = r.Value(j)
		}
		line := map[string]any{
			"rid": r.RID, "stream": r.Stream, "seq": r.Seq, "values": vals,
		}
		if err := enc.Encode(line); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %s (%d records)\n", path, len(recs))
}
