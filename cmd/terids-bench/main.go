// Command terids-bench regenerates the paper's evaluation tables and
// figures over the synthetic dataset profiles (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for recorded outputs).
//
// Usage:
//
//	terids-bench -experiment fig5b
//	terids-bench -experiment all -datasets Citations,Anime -scale 0.5
//	terids-bench -list
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"terids/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("terids-bench: ")

	var (
		id       = flag.String("experiment", "all", "experiment id (see -list) or \"all\"")
		list     = flag.Bool("list", false, "list available experiment ids and exit")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: all five)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		w        = flag.Int("w", 200, "sliding window size")
		max      = flag.Int("max", 0, "max arrivals per run (0 = all)")
		seed     = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.IDs() {
			fmt.Println(e)
		}
		return
	}

	p := experiments.DefaultParams()
	p.Scale = *scale
	p.W = *w
	p.MaxStream = *max
	p.Seed = *seed
	if *datasets != "" {
		p.Datasets = strings.Split(*datasets, ",")
	}

	ids := []string{*id}
	if *id == "all" {
		ids = experiments.IDs()
	}
	for _, e := range ids {
		rep, err := experiments.Run(e, p)
		if err != nil {
			log.Fatalf("%s: %v", e, err)
		}
		fmt.Println(rep)
	}
}
