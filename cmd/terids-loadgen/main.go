// Command terids-loadgen drives open-loop NDJSON ingest against a running
// terids-serve instance and reports coordinated-omission-safe latency.
//
// The schedule is either one constant-rate phase (-rate + -duration) or a
// stepped ramp (-ramp "200:10s,400:10s"). Every arrival's intended start
// time comes from the schedule alone; workers record completion minus
// intended, so server stalls surface as queueing latency instead of being
// silently omitted. A mixed read load rides along: -followers live
// /results tails and, with -replay-every, periodic /results?from=0 cursor
// reads that exercise the replay ring (and deep replay on a durable server).
// -replica-addr points that read mix at a follower replica (-follow) while
// ingest keeps targeting the writer at -addr.
//
// The run summary — achieved rate, p50/p95/p99/p999, error and 429 counts,
// per-phase breakdown — is written to -out (LOADGEN.json). With -check, the
// process exits 1 when a threshold is violated: -check-max-p99,
// -check-min-rate, -check-max-error-rate.
//
// Records are generated from the same dataset profile the server was booted
// with, so the values fit its schema:
//
//	terids-loadgen -addr http://localhost:8080 -rate 500 -duration 30s \
//	  -followers 2 -replay-every 5s -out LOADGEN.json \
//	  -check -check-max-p99 250ms -check-min-rate 100
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"terids/internal/dataset"
	"terids/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("terids-loadgen: ")

	var (
		addr      = flag.String("addr", "http://localhost:8080", "base URL of the terids-serve instance")
		rate      = flag.Float64("rate", 0, "constant arrival rate in tuples/sec (with -duration; or use -ramp)")
		duration  = flag.Duration("duration", 0, "how long to run the constant-rate phase")
		ramp      = flag.String("ramp", "", `stepped ramp schedule "rate:duration,rate:duration,..." (overrides -rate/-duration)`)
		workers   = flag.Int("workers", 4, "concurrent ingest connections")
		batch     = flag.Int("batch", 32, "arrivals per POST /ingest request")
		wait      = flag.Bool("wait", false, "use blocking ingest (?wait=1) instead of shedding 429s")
		followers = flag.Int("followers", 0, "concurrent live /results followers")
		replayEvy = flag.Duration("replay-every", 0, "period between /results?from=0 replay-cursor reads (0 = off)")
		replica   = flag.String("replica-addr", "", "base URL of a follower replica to aim the read mix at (ingest still targets -addr)")
		name      = flag.String("dataset", "Citations", "dataset profile generating the arrival records (must match the server)")
		scale     = flag.Float64("scale", 0.25, "dataset scale factor for record generation")
		seed      = flag.Int64("seed", 99, "generation seed for the records")
		streams   = flag.Int("streams", 2, "stream ids to spread arrivals over (must be <= the server's -streams)")
		out       = flag.String("out", "LOADGEN.json", "report output path")
		check     = flag.Bool("check", false, "exit 1 when a -check-* threshold is violated")
		maxP99    = flag.Duration("check-max-p99", 0, "fail -check when the CO-safe p99 exceeds this (0 = no gate)")
		minRate   = flag.Float64("check-min-rate", 0, "fail -check when the achieved accepted/sec is below this (0 = no gate)")
		maxErrs   = flag.Float64("check-max-error-rate", 0, "fail -check when errors/sent exceeds this (0 = no gate)")
	)
	flag.Parse()

	phases, err := loadgen.ParsePhases(*rate, *duration, *ramp)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := dataset.ProfileByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	data, err := dataset.Generate(prof, dataset.Options{
		Scale: *scale, RepoRatio: 0.5, Seed: *seed,
		MissingRate: 0.3, MissingAttrs: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	records := make([]loadgen.Arrival, 0, len(data.Stream))
	for i, r := range data.Stream {
		vals := make([]string, r.D())
		for j := range vals {
			vals[j] = r.Value(j)
		}
		records = append(records, loadgen.Arrival{
			RID: r.RID, Stream: i % *streams, Values: vals,
		})
	}
	if len(records) == 0 {
		log.Fatal("dataset produced no stream records")
	}
	log.Printf("generated %d records from %s (scale %.2f)", len(records), prof.Name, *scale)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	start := time.Now()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL: *addr,
		Phases:  phases,
		Records: records,
		Workers: *workers, Batch: *batch, Wait: *wait,
		Followers: *followers, ReplayEvery: *replayEvy, ReplicaURL: *replica,
		Logf: log.Printf,
	})
	if err != nil && rep.Sent == 0 {
		log.Fatal(err)
	}
	if err != nil {
		log.Printf("run interrupted after %s: %v (reporting what was measured)", time.Since(start).Round(time.Millisecond), err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("sent %d (accepted %d, 429 %d, errors %d) at %.1f/s; p50 %.2fms p99 %.2fms p999 %.2fms; report at %s",
		rep.Sent, rep.Accepted, rep.Throttled429, rep.Errors, rep.AchievedRate,
		rep.P50NS/1e6, rep.P99NS/1e6, rep.P999NS/1e6, *out)

	if *check {
		if err := rep.Check(loadgen.Thresholds{
			MaxP99: *maxP99, MinRate: *minRate, MaxErrorRate: *maxErrs,
		}); err != nil {
			log.Print(err)
			os.Exit(1)
		}
		log.Print("thresholds satisfied")
	}
}
