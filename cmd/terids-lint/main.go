// terids-lint runs the project's invariant analyzers (internal/lint) plus
// the toolchain's stock vet passes over the given packages and exits
// non-zero on any finding. CI runs it as a required gate:
//
//	go run ./cmd/terids-lint ./...
//
// The five project analyzers — locksend, poolown, hotalloc, walerr,
// nodeterm — enforce the lock-region, pool-ownership, zero-alloc,
// strict-error, and determinism contracts documented in the README's
// "Static analysis & invariants" section. Stock passes (copylocks, atomic,
// lostcancel, and the rest of the vet suite) are delegated to `go vet`,
// which ships with the toolchain; nilness needs golang.org/x/tools and is
// gated off when that module is unavailable, as in this repo's
// dependency-free offline build.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"terids/internal/lint"
)

func main() {
	var (
		noVet = flag.Bool("no-vet", false, "skip the stock `go vet` passes")
		list  = flag.Bool("list", false, "list the project analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: terids-lint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "terids-lint: %v\n", err)
		os.Exit(2)
	}
	for _, a := range analyzers {
		findings := 0
		for _, pkg := range pkgs {
			diags, err := lint.RunOnPackage(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "terids-lint: %s: %v\n", pkg.Path, err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
				findings++
			}
		}
		status := "ok"
		if findings > 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("terids-lint: analyzer %s: %s (%d findings, %d packages)\n",
			a.Name, status, findings, len(pkgs))
	}

	if !*noVet {
		// Stock passes ride the toolchain's vet driver: copylocks, atomic,
		// lostcancel, printf, and friends. nilness lives in x/tools and is
		// unavailable in the offline build, so it is gated, not silently
		// skipped.
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Printf("terids-lint: stock vet passes: FAIL (%v)\n", err)
			failed = true
		} else {
			fmt.Println("terids-lint: stock vet passes (copylocks, atomic, lostcancel, ...): ok; nilness gated (needs golang.org/x/tools)")
		}
	}

	if failed {
		os.Exit(1)
	}
}
