#!/usr/bin/env sh
# Regenerate BENCH_baseline.json, the committed floor for the CI benchmark
# regression gate (cmd/benchgate). Run this — and commit the result — when a
# PR intentionally shifts engine latency, so the gate tracks the new floor
# instead of failing every subsequent build.
#
# The gate normalizes by ProcessorBaseline, so the baseline does not need to
# be produced on CI-class hardware — any quiet machine works.
set -eu
cd "$(dirname "$0")/.."
go test -run xxx -bench 'ProcessorBaseline|EngineShards|SubmitBatch' \
	-benchtime 3x -count 3 -timeout 30m . | tee /tmp/bench_baseline.txt
go run ./cmd/benchjson < /tmp/bench_baseline.txt > BENCH_baseline.json
echo "wrote BENCH_baseline.json"
