package tokens

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randSet draws a small random token set from a tiny alphabet so that
// overlaps are frequent.
func randSet(r *rand.Rand) Set {
	n := r.Intn(8)
	toks := make([]string, n)
	for i := range toks {
		toks[i] = string(rune('a' + r.Intn(12)))
	}
	return New(toks...)
}

func TestQuickJaccardSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b := randSet(r), randSet(r)
		if Jaccard(a, b) != Jaccard(b, a) {
			t.Fatalf("Jaccard not symmetric for %v, %v", a, b)
		}
	}
}

func TestQuickJaccardRangeAndIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a, b := randSet(r), randSet(r)
		j := Jaccard(a, b)
		if j < 0 || j > 1 {
			t.Fatalf("Jaccard out of range: %v for %v, %v", j, a, b)
		}
		if a.Equal(b) && j != 1 {
			t.Fatalf("Jaccard of identical sets %v = %v, want 1", a, j)
		}
		if j == 1 && !a.Equal(b) {
			t.Fatalf("Jaccard 1 but sets differ: %v, %v", a, b)
		}
	}
}

func TestQuickJaccardTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		a, b, c := randSet(r), randSet(r), randSet(r)
		dab := JaccardDistance(a, b)
		dbc := JaccardDistance(b, c)
		dac := JaccardDistance(a, c)
		if dac > dab+dbc+1e-12 {
			t.Fatalf("triangle inequality violated: d(a,c)=%v > d(a,b)+d(b,c)=%v for %v %v %v",
				dac, dab+dbc, a, b, c)
		}
	}
}

func TestQuickSizeBoundDominates(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		a, b := randSet(r), randSet(r)
		sim := Jaccard(a, b)
		if ub := SimUpperBoundBySize(a.Len(), b.Len()); sim > ub+1e-12 {
			t.Fatalf("size bound %v < actual sim %v for %v, %v", ub, sim, a, b)
		}
		if ub := SimUpperBoundBySizeInterval(a.Len(), a.Len(), b.Len(), b.Len()); sim > ub+1e-12 {
			t.Fatalf("interval size bound %v < actual sim %v for %v, %v", ub, sim, a, b)
		}
	}
}

func TestQuickPivotBoundDominates(t *testing.T) {
	// For any pivot p, 1 - MinDistByPivot(d(a,p), d(a,p), d(b,p), d(b,p))
	// must be an upper bound on Jaccard(a,b): this is exactly Lemma 4.2 on
	// a single attribute with point intervals.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		a, b, p := randSet(r), randSet(r), randSet(r)
		da := JaccardDistance(a, p)
		db := JaccardDistance(b, p)
		minDist := MinDistByPivot(da, da, db, db)
		if actual := JaccardDistance(a, b); actual < minDist-1e-12 {
			t.Fatalf("pivot lower bound %v > actual distance %v for %v, %v, pivot %v",
				minDist, actual, a, b, p)
		}
	}
}

func TestQuickUnionIntersectConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 5000; i++ {
		a, b := randSet(r), randSet(r)
		u, x := a.Union(b), a.Intersect(b)
		if u.Len() != a.UnionSize(b) {
			t.Fatalf("UnionSize mismatch: %d vs %d", u.Len(), a.UnionSize(b))
		}
		if x.Len() != a.IntersectSize(b) {
			t.Fatalf("IntersectSize mismatch: %d vs %d", x.Len(), a.IntersectSize(b))
		}
		if u.Len()+x.Len() != a.Len()+b.Len() {
			t.Fatalf("|A∪B|+|A∩B| != |A|+|B| for %v, %v", a, b)
		}
		for _, tok := range x {
			if !a.Contains(tok) || !b.Contains(tok) {
				t.Fatalf("intersect token %q missing from input", tok)
			}
		}
	}
}

func TestQuickTokenizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Tokenize(s)
		twice := Tokenize(once.String())
		return once.Equal(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
