package tokens

// Jaccard returns the Jaccard similarity |s ∩ t| / |s ∪ t| between two token
// sets (Definition 5). Two empty sets are defined to be identical, with
// similarity 1, so that Jaccard distance stays a metric on the empty set.
func Jaccard(s, t Set) float64 {
	if len(s) == 0 && len(t) == 0 {
		return 1
	}
	inter := s.IntersectSize(t)
	union := len(s) + len(t) - inter
	return float64(inter) / float64(union)
}

// JaccardDistance returns 1 − Jaccard(s, t). It is a metric on token sets
// (the Jaccard/Tanimoto distance), in particular it satisfies the triangle
// inequality used by the pivot-based bounds of Section 4.
func JaccardDistance(s, t Set) float64 {
	return 1 - Jaccard(s, t)
}

// SimUpperBoundBySize returns the largest possible Jaccard similarity
// between a set of size n and a set of size m: min(n,m)/max(n,m). It backs
// Lemma 4.1 (similarity upper bound via token set size). Two empty sets
// yield 1.
func SimUpperBoundBySize(n, m int) float64 {
	if n == 0 && m == 0 {
		return 1
	}
	if n > m {
		n, m = m, n
	}
	return float64(n) / float64(m)
}

// SimUpperBoundBySizeInterval generalizes SimUpperBoundBySize to size
// intervals [nMin, nMax] and [mMin, mMax] following Lemma 4.1: if the
// smallest possible size of one side exceeds the largest possible size of
// the other, the ratio bounds the similarity; otherwise the bound is 1.
func SimUpperBoundBySizeInterval(nMin, nMax, mMin, mMax int) float64 {
	switch {
	case nMin > mMax:
		return float64(mMax) / float64(nMin)
	case nMax < mMin:
		return float64(nMax) / float64(mMin)
	default:
		return 1
	}
}

// MinDistByPivot returns the smallest possible Jaccard distance between two
// values whose distances to a common pivot lie in [lbX, ubX] and [lbY, ubY]
// respectively (Lemma 4.2, via the triangle inequality).
func MinDistByPivot(lbX, ubX, lbY, ubY float64) float64 {
	switch {
	case lbX > ubY:
		return lbX - ubY
	case lbY > ubX:
		return lbY - ubX
	default:
		return 0
	}
}
