// Package tokens implements token sets over textual attribute values and
// the Jaccard similarity/distance used throughout TER-iDS (Definition 5 of
// the paper). Token sets are stored sorted and deduplicated so that set
// operations run in linear time via merge scans.
package tokens

import (
	"sort"
	"strings"
	"unicode"
)

// Set is a sorted, duplicate-free collection of tokens. The zero value is an
// empty set ready to use.
type Set []string

// Tokenize splits a textual attribute value into a token set. Tokens are
// lower-cased maximal runs of letters and digits; everything else is a
// separator. An empty or all-separator string yields an empty set.
func Tokenize(s string) Set {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	return New(fields...)
}

// New builds a Set from raw tokens, sorting and deduplicating them.
// Empty tokens are dropped.
func New(toks ...string) Set {
	if len(toks) == 0 {
		return nil
	}
	cp := make([]string, 0, len(toks))
	for _, t := range toks {
		if t != "" {
			cp = append(cp, t)
		}
	}
	sort.Strings(cp)
	out := cp[:0]
	for i, t := range cp {
		if i == 0 || t != cp[i-1] {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return Set(out)
}

// Len reports the number of tokens in the set.
func (s Set) Len() int { return len(s) }

// Contains reports whether tok is a member of the set.
func (s Set) Contains(tok string) bool {
	i := sort.SearchStrings(s, tok)
	return i < len(s) && s[i] == tok
}

// ContainsAny reports whether any token of other appears in s. It is the
// Boolean topic function ϖ(r, K) of the problem statement when other holds
// the query keywords.
func (s Set) ContainsAny(other Set) bool {
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] == other[j]:
			return true
		case s[i] < other[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// IntersectSize returns |s ∩ other|.
func (s Set) IntersectSize(other Set) int {
	i, j, n := 0, 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] == other[j]:
			n++
			i++
			j++
		case s[i] < other[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// UnionSize returns |s ∪ other|.
func (s Set) UnionSize(other Set) int {
	return len(s) + len(other) - s.IntersectSize(other)
}

// Union returns a new set holding s ∪ other.
func (s Set) Union(other Set) Set {
	out := make(Set, 0, len(s)+len(other))
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] == other[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < other[j]:
			out = append(out, s[i])
			i++
		default:
			out = append(out, other[j])
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, other[j:]...)
	return out
}

// Intersect returns a new set holding s ∩ other.
func (s Set) Intersect(other Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] == other[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < other[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Equal reports whether the two sets hold exactly the same tokens.
func (s Set) Equal(other Set) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders the set as a space-joined token list.
func (s Set) String() string { return strings.Join(s, " ") }

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}
