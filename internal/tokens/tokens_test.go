package tokens

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want Set
	}{
		{"", nil},
		{"   ", nil},
		{"---", nil},
		{"Hello", Set{"hello"}},
		{"loss of weight", Set{"loss", "of", "weight"}},
		{"Loss, of; WEIGHT!", Set{"loss", "of", "weight"}},
		{"drug therapy, drug therapy", Set{"drug", "therapy"}},
		{"a1 b2-c3", Set{"a1", "b2", "c3"}},
		{"Ünïcode Tökens", Set{"tökens", "ünïcode"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNewDedupesAndSorts(t *testing.T) {
	got := New("b", "a", "b", "", "c", "a")
	want := Set{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("New = %v, want %v", got, want)
	}
}

func TestNewEmpty(t *testing.T) {
	if got := New(); got != nil {
		t.Fatalf("New() = %v, want nil", got)
	}
	if got := New("", ""); got != nil {
		t.Fatalf("New(\"\",\"\") = %v, want nil", got)
	}
}

func TestContains(t *testing.T) {
	s := New("alpha", "beta", "gamma")
	if !s.Contains("beta") {
		t.Error("Contains(beta) = false, want true")
	}
	if s.Contains("delta") {
		t.Error("Contains(delta) = true, want false")
	}
	var empty Set
	if empty.Contains("x") {
		t.Error("empty.Contains(x) = true, want false")
	}
}

func TestContainsAny(t *testing.T) {
	s := New("diabetes", "vision", "blurred")
	if !s.ContainsAny(New("flu", "diabetes")) {
		t.Error("want keyword hit for diabetes")
	}
	if s.ContainsAny(New("flu", "cough")) {
		t.Error("want no keyword hit")
	}
	if s.ContainsAny(nil) {
		t.Error("empty keyword set must never hit")
	}
	var empty Set
	if empty.ContainsAny(New("x")) {
		t.Error("empty set contains nothing")
	}
}

func TestIntersectUnionSizes(t *testing.T) {
	a := New("a", "b", "c", "d")
	b := New("c", "d", "e")
	if got := a.IntersectSize(b); got != 2 {
		t.Errorf("IntersectSize = %d, want 2", got)
	}
	if got := a.UnionSize(b); got != 5 {
		t.Errorf("UnionSize = %d, want 5", got)
	}
	if got := a.IntersectSize(nil); got != 0 {
		t.Errorf("IntersectSize(nil) = %d, want 0", got)
	}
	if got := a.UnionSize(nil); got != 4 {
		t.Errorf("UnionSize(nil) = %d, want 4", got)
	}
}

func TestUnionIntersect(t *testing.T) {
	a := New("a", "c", "e")
	b := New("b", "c", "d")
	if got, want := a.Union(b), New("a", "b", "c", "d", "e"); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), New("c"); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got := a.Intersect(nil); got.Len() != 0 {
		t.Errorf("Intersect(nil) = %v, want empty", got)
	}
}

func TestEqual(t *testing.T) {
	if !New("a", "b").Equal(New("b", "a")) {
		t.Error("order must not matter")
	}
	if New("a").Equal(New("a", "b")) {
		t.Error("different sizes must differ")
	}
	var e1, e2 Set
	if !e1.Equal(e2) {
		t.Error("two empty sets are equal")
	}
}

func TestClone(t *testing.T) {
	a := New("x", "y")
	c := a.Clone()
	c[0] = "z"
	if a[0] != "x" {
		t.Error("Clone must be independent")
	}
	var empty Set
	if empty.Clone() != nil {
		t.Error("Clone of nil is nil")
	}
}

func TestString(t *testing.T) {
	if got := New("b", "a").String(); got != "a b" {
		t.Errorf("String = %q, want %q", got, "a b")
	}
}
