package tokens

import (
	"math"
	"testing"
)

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b Set
		want float64
	}{
		{nil, nil, 1},
		{New("a"), nil, 0},
		{nil, New("a"), 0},
		{New("a", "b"), New("a", "b"), 1},
		{New("a", "b"), New("b", "c"), 1.0 / 3.0},
		{New("a", "b", "c", "d"), New("c", "d", "e", "f"), 2.0 / 6.0},
		{New("x"), New("y"), 0},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := JaccardDistance(c.a, c.b); math.Abs(got-(1-c.want)) > 1e-12 {
			t.Errorf("JaccardDistance(%v, %v) = %v, want %v", c.a, c.b, got, 1-c.want)
		}
	}
}

func TestSimUpperBoundBySize(t *testing.T) {
	cases := []struct {
		n, m int
		want float64
	}{
		{0, 0, 1},
		{0, 5, 0}, // empty vs non-empty: actual similarity is 0, bound is tight
		{5, 0, 0},
		{3, 3, 1},
		{2, 4, 0.5},
		{4, 2, 0.5},
		{8, 10, 0.8},
	}
	for _, c := range cases {
		if got := SimUpperBoundBySize(c.n, c.m); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SimUpperBoundBySize(%d, %d) = %v, want %v", c.n, c.m, got, c.want)
		}
	}
}

func TestSimUpperBoundBySizeInterval(t *testing.T) {
	// Paper Example 5: |T(r1[C])| in [5,7], |T(r2[C])| in [10,12] -> 7/10.
	if got := SimUpperBoundBySizeInterval(5, 7, 10, 12); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("interval bound = %v, want 0.7", got)
	}
	// Symmetric case.
	if got := SimUpperBoundBySizeInterval(10, 12, 5, 7); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("interval bound = %v, want 0.7", got)
	}
	// Overlapping intervals give the trivial bound 1.
	if got := SimUpperBoundBySizeInterval(5, 10, 8, 12); got != 1 {
		t.Errorf("overlapping interval bound = %v, want 1", got)
	}
	// Point sizes reduce to SimUpperBoundBySize: Example 5 attr A: 10 vs 8 -> 8/10.
	if got := SimUpperBoundBySizeInterval(10, 10, 8, 8); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("point interval bound = %v, want 0.8", got)
	}
}

func TestMinDistByPivot(t *testing.T) {
	// Paper Example 6 attribute A: X=0.3 (point), Y=0.7 (point) -> 0.4.
	if got := MinDistByPivot(0.3, 0.3, 0.7, 0.7); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("MinDistByPivot = %v, want 0.4", got)
	}
	// Example 6 attribute C: X in [0.1,0.2], Y in [0.7,0.9] -> 0.5.
	if got := MinDistByPivot(0.1, 0.2, 0.7, 0.9); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MinDistByPivot = %v, want 0.5", got)
	}
	// Overlap -> 0.
	if got := MinDistByPivot(0.1, 0.5, 0.4, 0.9); got != 0 {
		t.Errorf("MinDistByPivot overlap = %v, want 0", got)
	}
	// Swapped sides.
	if got := MinDistByPivot(0.7, 0.9, 0.1, 0.2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MinDistByPivot swapped = %v, want 0.5", got)
	}
}

func TestExample5EndToEnd(t *testing.T) {
	// Reconstructs the full similarity upper bound of Example 5: 0.8+0.7+0.7.
	ub := SimUpperBoundBySizeInterval(10, 10, 8, 8) +
		SimUpperBoundBySizeInterval(7, 7, 10, 10) +
		SimUpperBoundBySizeInterval(5, 7, 10, 12)
	if math.Abs(ub-2.2) > 1e-12 {
		t.Errorf("Example 5 total = %v, want 2.2", ub)
	}
}

func TestExample6EndToEnd(t *testing.T) {
	// ub_sim(r1, r2) = 3 - ((0.7-0.3) + (0.8-0.3) + (0.7-0.2)) = 1.6.
	ub := 3 - (MinDistByPivot(0.3, 0.3, 0.7, 0.7) +
		MinDistByPivot(0.3, 0.3, 0.8, 0.8) +
		MinDistByPivot(0.1, 0.2, 0.7, 0.9))
	if math.Abs(ub-1.6) > 1e-12 {
		t.Errorf("Example 6 total = %v, want 1.6", ub)
	}
}
