package artree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sumMerger aggregates float64 sums; simple and easy to verify.
type sumMerger struct{}

func (sumMerger) Zero() any { return 0.0 }
func (sumMerger) Add(acc, agg any) any {
	return acc.(float64) + agg.(float64)
}

// maxMerger keeps the max, a monotone aggregate like the paper's interval
// bounds.
type maxMerger struct{}

func (maxMerger) Zero() any { return math.Inf(-1) }
func (maxMerger) Add(acc, agg any) any {
	return math.Max(acc.(float64), agg.(float64))
}

func TestRectBasics(t *testing.T) {
	a := MustBox([]float64{0, 0}, []float64{2, 2})
	b := MustBox([]float64{1, 1}, []float64{3, 3})
	c := MustBox([]float64{5, 5}, []float64{6, 6})
	if !a.Intersects(b) || b.Intersects(c) != false {
		t.Fatal("Intersects wrong")
	}
	if !a.Intersects(a) {
		t.Fatal("self intersection")
	}
	if a.Contains(b) {
		t.Fatal("a must not contain b")
	}
	if !MustBox([]float64{0, 0}, []float64{9, 9}).Contains(b) {
		t.Fatal("big box must contain b")
	}
	p := Point(1, 1)
	if !a.Intersects(p) || !a.Contains(p) {
		t.Fatal("point containment failed")
	}
	if _, err := Box([]float64{0}, []float64{1, 2}); err == nil {
		t.Fatal("dims mismatch must fail")
	}
	if _, err := Box([]float64{2}, []float64{1}); err == nil {
		t.Fatal("inverted box must fail")
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New(2, sumMerger{})
	tr.Insert(Item{Rect: Point(1, 1), Data: "a", Agg: 1.0})
	tr.Insert(Item{Rect: Point(2, 2), Data: "b", Agg: 2.0})
	tr.Insert(Item{Rect: Point(9, 9), Data: "c", Agg: 4.0})
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	var got []string
	tr.Search(MustBox([]float64{0, 0}, []float64{3, 3}), func(it Item) bool {
		got = append(got, it.Data.(string))
		return true
	})
	sort.Strings(got)
	if fmt.Sprint(got) != "[a b]" {
		t.Fatalf("Search = %v, want [a b]", got)
	}
	if agg := tr.RootAgg().(float64); agg != 7 {
		t.Fatalf("RootAgg = %v, want 7", agg)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New(1, sumMerger{})
	for i := 0; i < 50; i++ {
		tr.Insert(Item{Rect: Point(float64(i)), Agg: 1.0})
	}
	n := 0
	tr.Search(MustBox([]float64{0}, []float64{100}), func(Item) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(2, sumMerger{})
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("fresh tree state wrong")
	}
	tr.Search(MustBox([]float64{0, 0}, []float64{1, 1}), func(Item) bool {
		t.Fatal("empty tree must visit nothing")
		return true
	})
	tr.Traverse(func(Rect, any) bool { return true }, func(Item) bool {
		t.Fatal("empty tree traverse must visit nothing")
		return true
	})
	if tr.Delete(Point(0, 0), func(Item) bool { return true }) {
		t.Fatal("delete on empty tree must fail")
	}
}

// validate checks structural invariants: child MBRs contained in parents,
// aggregates consistent with the items below, fanout limits respected.
func validate(t *testing.T, tr *Tree) {
	t.Helper()
	var walk func(n *node, depth int) (count int, sum float64)
	leafDepth := -1
	walk = func(n *node, depth int) (int, float64) {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				t.Fatalf("leaves at different depths: %d vs %d", leafDepth, depth)
			}
			sum := 0.0
			for _, it := range n.items {
				if !n.rect.Contains(it.Rect) {
					t.Fatalf("leaf MBR %v does not contain item %v", n.rect, it.Rect)
				}
				sum += it.Agg.(float64)
			}
			if n != tr.root && (len(n.items) < tr.min || len(n.items) > tr.max) {
				t.Fatalf("leaf fanout %d outside [%d, %d]", len(n.items), tr.min, tr.max)
			}
			if math.Abs(n.agg.(float64)-sum) > 1e-9 {
				t.Fatalf("leaf agg %v != sum %v", n.agg, sum)
			}
			return len(n.items), sum
		}
		if n != tr.root && (len(n.children) < tr.min || len(n.children) > tr.max) {
			t.Fatalf("inner fanout %d outside [%d, %d]", len(n.children), tr.min, tr.max)
		}
		count, sum := 0, 0.0
		for _, c := range n.children {
			if !n.rect.Contains(c.rect) {
				t.Fatalf("inner MBR %v does not contain child %v", n.rect, c.rect)
			}
			cc, cs := walk(c, depth+1)
			count += cc
			sum += cs
		}
		if math.Abs(n.agg.(float64)-sum) > 1e-9 {
			t.Fatalf("inner agg %v != sum %v", n.agg, sum)
		}
		return count, sum
	}
	count, _ := walk(tr.root, 0)
	if count != tr.Len() {
		t.Fatalf("item count %d != Len %d", count, tr.Len())
	}
}

func TestInvariantsUnderRandomInserts(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	tr := New(3, sumMerger{}, WithFanout(8))
	for i := 0; i < 500; i++ {
		min := []float64{r.Float64(), r.Float64(), r.Float64()}
		max := []float64{min[0] + r.Float64()*0.2, min[1] + r.Float64()*0.2, min[2] + r.Float64()*0.2}
		tr.Insert(Item{Rect: MustBox(min, max), Data: i, Agg: 1.0})
	}
	validate(t, tr)
	if tr.Height() < 2 {
		t.Fatal("500 items with fanout 8 must produce height >= 2")
	}
}

func TestSearchMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	tr := New(2, sumMerger{}, WithFanout(6))
	type stored struct {
		rect Rect
		id   int
	}
	var all []stored
	for i := 0; i < 300; i++ {
		min := []float64{r.Float64(), r.Float64()}
		max := []float64{min[0] + r.Float64()*0.3, min[1] + r.Float64()*0.3}
		rc := MustBox(min, max)
		all = append(all, stored{rc, i})
		tr.Insert(Item{Rect: rc, Data: i, Agg: 1.0})
	}
	for trial := 0; trial < 100; trial++ {
		qmin := []float64{r.Float64(), r.Float64()}
		qmax := []float64{qmin[0] + r.Float64()*0.4, qmin[1] + r.Float64()*0.4}
		q := MustBox(qmin, qmax)
		want := map[int]bool{}
		for _, s := range all {
			if s.rect.Intersects(q) {
				want[s.id] = true
			}
		}
		got := map[int]bool{}
		tr.Search(q, func(it Item) bool {
			got[it.Data.(int)] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d hits, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing id %d", trial, id)
			}
		}
	}
}

func TestDelete(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	tr := New(2, sumMerger{}, WithFanout(6))
	var pts []Rect
	for i := 0; i < 200; i++ {
		p := Point(r.Float64(), r.Float64())
		pts = append(pts, p)
		tr.Insert(Item{Rect: p, Data: i, Agg: 1.0})
	}
	// Delete half in random order.
	perm := r.Perm(200)
	for k := 0; k < 100; k++ {
		id := perm[k]
		ok := tr.Delete(pts[id], func(it Item) bool { return it.Data.(int) == id })
		if !ok {
			t.Fatalf("delete %d failed", id)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d after deletes, want 100", tr.Len())
	}
	validate(t, tr)
	// Remaining items still findable.
	for k := 100; k < 200; k++ {
		id := perm[k]
		found := false
		tr.Search(pts[id], func(it Item) bool {
			if it.Data.(int) == id {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("item %d lost after deletions", id)
		}
	}
	// Delete the rest.
	for k := 100; k < 200; k++ {
		id := perm[k]
		if !tr.Delete(pts[id], func(it Item) bool { return it.Data.(int) == id }) {
			t.Fatalf("final delete %d failed", id)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all, want 0", tr.Len())
	}
	if tr.Delete(Point(0.5, 0.5), func(Item) bool { return true }) {
		t.Fatal("delete on emptied tree must return false")
	}
}

func TestDeleteNoMatch(t *testing.T) {
	tr := New(1, sumMerger{})
	tr.Insert(Item{Rect: Point(1), Data: "x", Agg: 1.0})
	if tr.Delete(Point(1), func(it Item) bool { return false }) {
		t.Fatal("non-matching delete must return false")
	}
	if tr.Len() != 1 {
		t.Fatal("failed delete must not change Len")
	}
}

func TestTraversePruning(t *testing.T) {
	// With a max aggregate, prune all subtrees whose max < 90 and check we
	// only see large items.
	r := rand.New(rand.NewSource(24))
	tr := New(1, maxMerger{}, WithFanout(4))
	for i := 0; i < 200; i++ {
		v := r.Float64() * 100
		tr.Insert(Item{Rect: Point(v / 100), Data: v, Agg: v})
	}
	var visited []float64
	tr.Traverse(
		func(_ Rect, agg any) bool { return agg.(float64) >= 90 },
		func(it Item) bool {
			visited = append(visited, it.Data.(float64))
			return true
		},
	)
	// Every item >= 90 must be visited (its ancestors all have max >= 90).
	want := 0
	tr.Search(MustBox([]float64{0}, []float64{1}), func(it Item) bool {
		if it.Data.(float64) >= 90 {
			want++
		}
		return true
	})
	got := 0
	for _, v := range visited {
		if v >= 90 {
			got++
		}
	}
	if got != want {
		t.Fatalf("pruned traversal saw %d large items, want %d", got, want)
	}
}

func TestTraverseEarlyStop(t *testing.T) {
	tr := New(1, sumMerger{})
	for i := 0; i < 50; i++ {
		tr.Insert(Item{Rect: Point(float64(i) / 50), Agg: 1.0})
	}
	n := 0
	tr.Traverse(func(Rect, any) bool { return true }, func(Item) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d, want 7", n)
	}
}

func TestMixedInsertDeleteInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	tr := New(2, sumMerger{}, WithFanout(5))
	type live struct {
		rect Rect
		id   int
	}
	var alive []live
	next := 0
	for round := 0; round < 2000; round++ {
		if len(alive) == 0 || r.Float64() < 0.6 {
			p := Point(r.Float64(), r.Float64())
			tr.Insert(Item{Rect: p, Data: next, Agg: 1.0})
			alive = append(alive, live{p, next})
			next++
		} else {
			k := r.Intn(len(alive))
			v := alive[k]
			if !tr.Delete(v.rect, func(it Item) bool { return it.Data.(int) == v.id }) {
				t.Fatalf("round %d: delete %d failed", round, v.id)
			}
			alive = append(alive[:k], alive[k+1:]...)
		}
	}
	if tr.Len() != len(alive) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(alive))
	}
	validate(t, tr)
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero dims", func() { New(0, sumMerger{}) })
	mustPanic("nil merger", func() { New(1, nil) })
	tr := New(2, sumMerger{})
	mustPanic("dim mismatch insert", func() { tr.Insert(Item{Rect: Point(1), Agg: 1.0}) })
	mustPanic("dim mismatch search", func() { tr.Search(Point(1), func(Item) bool { return true }) })
}
