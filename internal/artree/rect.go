// Package artree implements an aggregate R-tree (aR-tree, Lazaridis &
// Mehrotra [20]): a Guttman R-tree whose nodes additionally carry
// user-defined aggregates folded bottom-up. The CDD-index and DR-index of
// Section 5.1 are built on it.
package artree

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned d-dimensional box. Points are boxes with
// Min == Max.
type Rect struct {
	Min, Max []float64
}

// Point builds a degenerate rectangle around coords.
func Point(coords ...float64) Rect {
	return Rect{Min: append([]float64(nil), coords...), Max: append([]float64(nil), coords...)}
}

// Box builds a rectangle; min and max must have equal length and
// min[i] <= max[i].
func Box(min, max []float64) (Rect, error) {
	if len(min) != len(max) {
		return Rect{}, fmt.Errorf("artree: box dims mismatch %d vs %d", len(min), len(max))
	}
	for i := range min {
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("artree: box dim %d inverted: [%v, %v]", i, min[i], max[i])
		}
	}
	return Rect{Min: append([]float64(nil), min...), Max: append([]float64(nil), max...)}, nil
}

// MustBox is Box that panics on error.
func MustBox(min, max []float64) Rect {
	r, err := Box(min, max)
	if err != nil {
		panic(err)
	}
	return r
}

// Dims returns the dimensionality.
func (r Rect) Dims() int { return len(r.Min) }

// Intersects reports whether r and o overlap (boundaries touching counts).
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Min {
		if r.Min[i] > o.Max[i] || r.Max[i] < o.Min[i] {
			return false
		}
	}
	return true
}

// Contains reports whether r fully contains o.
func (r Rect) Contains(o Rect) bool {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] || o.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// enlarged returns the MBR of r and o.
func (r Rect) enlarged(o Rect) Rect {
	out := Rect{Min: make([]float64, len(r.Min)), Max: make([]float64, len(r.Max))}
	for i := range r.Min {
		out.Min[i] = math.Min(r.Min[i], o.Min[i])
		out.Max[i] = math.Max(r.Max[i], o.Max[i])
	}
	return out
}

// margin returns the sum of side lengths; used as a degenerate-volume-safe
// size measure.
func (r Rect) margin() float64 {
	m := 0.0
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// volume returns the d-dimensional volume plus a small margin term so that
// degenerate (zero-volume) rectangles still order sensibly.
func (r Rect) volume() float64 {
	v := 1.0
	for i := range r.Min {
		v *= r.Max[i] - r.Min[i]
	}
	return v + 1e-9*r.margin()
}

// enlargement returns the growth in volume when extending r to cover o.
func (r Rect) enlargement(o Rect) float64 {
	return r.enlarged(o).volume() - r.volume()
}

// equal reports exact coordinate equality.
func (r Rect) equal(o Rect) bool {
	if len(r.Min) != len(o.Min) {
		return false
	}
	for i := range r.Min {
		if r.Min[i] != o.Min[i] || r.Max[i] != o.Max[i] {
			return false
		}
	}
	return true
}
