package artree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkRect(a, b, c, d float64) Rect {
	lo0, hi0 := a, b
	if lo0 > hi0 {
		lo0, hi0 = hi0, lo0
	}
	lo1, hi1 := c, d
	if lo1 > hi1 {
		lo1, hi1 = hi1, lo1
	}
	return MustBox([]float64{lo0, lo1}, []float64{hi0, hi1})
}

// TestQuickRectLaws checks the geometric laws the tree relies on:
// intersection symmetry, containment implying intersection, enlargement
// containing both inputs, and volume monotonicity.
func TestQuickRectLaws(t *testing.T) {
	sym := func(a, b, c, d, e, f, g, h float64) bool {
		x, y := mkRect(a, b, c, d), mkRect(e, f, g, h)
		return x.Intersects(y) == y.Intersects(x)
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	enl := func(a, b, c, d, e, f, g, h float64) bool {
		x, y := mkRect(a, b, c, d), mkRect(e, f, g, h)
		u := x.enlarged(y)
		return u.Contains(x) && u.Contains(y) &&
			u.volume() >= x.volume()-1e-9 && u.volume() >= y.volume()-1e-9
	}
	if err := quick.Check(enl, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	containsImpliesIntersects := func(a, b, c, d, e, f, g, h float64) bool {
		x, y := mkRect(a, b, c, d), mkRect(e, f, g, h)
		if x.Contains(y) {
			return x.Intersects(y)
		}
		return true
	}
	if err := quick.Check(containsImpliesIntersects, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	selfLaws := func(a, b, c, d float64) bool {
		x := mkRect(a, b, c, d)
		return x.Contains(x) && x.Intersects(x) && x.enlarged(x).equal(x)
	}
	if err := quick.Check(selfLaws, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickSearchCompleteness: for random trees and queries, Search returns
// exactly the brute-force intersection set.
func TestQuickSearchCompleteness(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	for trial := 0; trial < 40; trial++ {
		tr := New(2, sumMerger{}, WithFanout(4+r.Intn(8)))
		type stored struct {
			rect Rect
			id   int
		}
		var all []stored
		n := 10 + r.Intn(150)
		for i := 0; i < n; i++ {
			rc := mkRect(r.Float64(), r.Float64(), r.Float64(), r.Float64())
			all = append(all, stored{rc, i})
			tr.Insert(Item{Rect: rc, Data: i, Agg: 1.0})
		}
		q := mkRect(r.Float64(), r.Float64(), r.Float64(), r.Float64())
		want := map[int]bool{}
		for _, s := range all {
			if s.rect.Intersects(q) {
				want[s.id] = true
			}
		}
		got := map[int]bool{}
		tr.Search(q, func(it Item) bool {
			got[it.Data.(int)] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing %d", trial, id)
			}
		}
	}
}
