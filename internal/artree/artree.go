package artree

import "fmt"

// Item is a leaf entry: a rectangle (or point), a payload, and its
// aggregate contribution.
type Item struct {
	Rect Rect
	Data any
	Agg  any
}

// Merger folds item aggregates into node aggregates. Aggregates must be
// merge-monotone (adding an element never shrinks the summary), which is
// true of all aggregates the paper uses: bitvector OR, interval union,
// min/max bounds.
type Merger interface {
	// Zero returns a fresh empty aggregate.
	Zero() any
	// Add folds agg into acc and returns the result (acc may be mutated and
	// returned).
	Add(acc, agg any) any
}

// Tree is an aggregate R-tree. The zero value is not usable; call New.
type Tree struct {
	dims   int
	max    int
	min    int
	merger Merger
	root   *node
	size   int
}

type node struct {
	leaf     bool
	rect     Rect
	agg      any
	items    []Item  // leaf only
	children []*node // inner only
}

// Option tweaks tree construction.
type Option func(*Tree)

// WithFanout sets the maximum node fanout M (minimum is M*2/5, at least 2).
func WithFanout(m int) Option {
	return func(t *Tree) {
		if m >= 4 {
			t.max = m
			t.min = m * 2 / 5
			if t.min < 2 {
				t.min = 2
			}
		}
	}
}

// New creates a tree over dims-dimensional rectangles using merger for
// aggregates.
func New(dims int, merger Merger, opts ...Option) *Tree {
	if dims < 1 {
		panic(fmt.Sprintf("artree: dims %d < 1", dims))
	}
	if merger == nil {
		panic("artree: nil merger")
	}
	t := &Tree{dims: dims, max: 16, min: 6, merger: merger}
	for _, o := range opts {
		o(t)
	}
	t.root = &node{leaf: true, agg: merger.Zero()}
	return t
}

// Len returns the number of items stored.
func (t *Tree) Len() int { return t.size }

// Dims returns the tree dimensionality.
func (t *Tree) Dims() int { return t.dims }

func (t *Tree) checkRect(r Rect) {
	if r.Dims() != t.dims {
		panic(fmt.Sprintf("artree: rect dims %d, tree dims %d", r.Dims(), t.dims))
	}
}

// Insert adds an item.
func (t *Tree) Insert(it Item) {
	t.checkRect(it.Rect)
	t.size++
	split := t.insert(t.root, it)
	if split != nil {
		old := t.root
		t.root = &node{
			leaf:     false,
			children: []*node{old, split},
		}
		t.root.refit(t.merger)
	}
}

// insert descends to a leaf; returns a new sibling if n was split.
func (t *Tree) insert(n *node, it Item) *node {
	if n.leaf {
		n.items = append(n.items, it)
		if len(n.items) > t.max {
			return t.splitLeaf(n)
		}
		n.refit(t.merger)
		return nil
	}
	best := chooseSubtree(n.children, it.Rect)
	split := t.insert(n.children[best], it)
	if split != nil {
		n.children = append(n.children, split)
		if len(n.children) > t.max {
			return t.splitInner(n)
		}
	}
	n.refit(t.merger)
	return nil
}

// chooseSubtree picks the child needing least volume enlargement (ties:
// smaller volume).
func chooseSubtree(children []*node, r Rect) int {
	best, bestEnl, bestVol := 0, 0.0, 0.0
	for i, c := range children {
		enl := c.rect.enlargement(r)
		vol := c.rect.volume()
		if i == 0 || enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	return best
}

// refit recomputes the node MBR and aggregate from its members.
func (n *node) refit(m Merger) {
	agg := m.Zero()
	if n.leaf {
		for i, it := range n.items {
			if i == 0 {
				n.rect = it.Rect.enlarged(it.Rect)
			} else {
				n.rect = n.rect.enlarged(it.Rect)
			}
			agg = m.Add(agg, it.Agg)
		}
		if len(n.items) == 0 {
			n.rect = Rect{Min: nil, Max: nil}
		}
	} else {
		for i, c := range n.children {
			if i == 0 {
				n.rect = c.rect.enlarged(c.rect)
			} else {
				n.rect = n.rect.enlarged(c.rect)
			}
			agg = m.Add(agg, c.agg)
		}
	}
	n.agg = agg
}

// splitLeaf splits an overflowing leaf with Guttman's quadratic split and
// returns the new sibling.
func (t *Tree) splitLeaf(n *node) *node {
	rects := make([]Rect, len(n.items))
	for i, it := range n.items {
		rects[i] = it.Rect
	}
	groupA, groupB := quadraticSplit(rects, t.min)
	itemsA := make([]Item, 0, len(groupA))
	itemsB := make([]Item, 0, len(groupB))
	for _, i := range groupA {
		itemsA = append(itemsA, n.items[i])
	}
	for _, i := range groupB {
		itemsB = append(itemsB, n.items[i])
	}
	n.items = itemsA
	sib := &node{leaf: true, items: itemsB}
	n.refit(t.merger)
	sib.refit(t.merger)
	return sib
}

// splitInner splits an overflowing inner node.
func (t *Tree) splitInner(n *node) *node {
	rects := make([]Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.rect
	}
	groupA, groupB := quadraticSplit(rects, t.min)
	childA := make([]*node, 0, len(groupA))
	childB := make([]*node, 0, len(groupB))
	for _, i := range groupA {
		childA = append(childA, n.children[i])
	}
	for _, i := range groupB {
		childB = append(childB, n.children[i])
	}
	n.children = childA
	sib := &node{leaf: false, children: childB}
	n.refit(t.merger)
	sib.refit(t.merger)
	return sib
}

// quadraticSplit partitions indexes [0,len(rects)) into two groups using
// Guttman's quadratic heuristic, guaranteeing each group holds >= min.
func quadraticSplit(rects []Rect, min int) (a, b []int) {
	n := len(rects)
	// Pick seeds: the pair wasting the most volume if grouped.
	seedA, seedB, worst := 0, 1, -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			waste := rects[i].enlarged(rects[j]).volume() - rects[i].volume() - rects[j].volume()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	a = []int{seedA}
	b = []int{seedB}
	rectA, rectB := rects[seedA], rects[seedB]
	assigned := make([]bool, n)
	assigned[seedA], assigned[seedB] = true, true
	remaining := n - 2
	for remaining > 0 {
		// If one group must absorb the rest to reach min, do so.
		if len(a)+remaining == min {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					a = append(a, i)
					rectA = rectA.enlarged(rects[i])
					assigned[i] = true
				}
			}
			return a, b
		}
		if len(b)+remaining == min {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					b = append(b, i)
					rectB = rectB.enlarged(rects[i])
					assigned[i] = true
				}
			}
			return a, b
		}
		// Pick the unassigned entry with the greatest preference.
		pick, pickDiff := -1, -1.0
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			dA := rectA.enlargement(rects[i])
			dB := rectB.enlargement(rects[i])
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > pickDiff {
				pickDiff, pick = diff, i
			}
		}
		dA := rectA.enlargement(rects[pick])
		dB := rectB.enlargement(rects[pick])
		toA := dA < dB || (dA == dB && rectA.volume() < rectB.volume()) ||
			(dA == dB && rectA.volume() == rectB.volume() && len(a) <= len(b))
		if toA {
			a = append(a, pick)
			rectA = rectA.enlarged(rects[pick])
		} else {
			b = append(b, pick)
			rectB = rectB.enlarged(rects[pick])
		}
		assigned[pick] = true
		remaining--
	}
	return a, b
}

// Search visits every item whose rectangle intersects query. Returning
// false stops the scan.
func (t *Tree) Search(query Rect, visit func(Item) bool) {
	t.checkRect(query)
	t.search(t.root, query, visit)
}

func (t *Tree) search(n *node, query Rect, visit func(Item) bool) bool {
	if n.leaf {
		for _, it := range n.items {
			if it.Rect.Intersects(query) {
				if !visit(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if len(c.rect.Min) == 0 || !c.rect.Intersects(query) {
			continue
		}
		if !t.search(c, query, visit) {
			return false
		}
	}
	return true
}

// Traverse walks the tree top-down under caller control. visitNode sees
// each node's MBR and aggregate; returning false prunes the whole subtree
// (this is how pruning via aggregates, Section 5.1, is expressed).
// visitItem sees surviving leaf items; returning false aborts the
// traversal.
func (t *Tree) Traverse(visitNode func(rect Rect, agg any) bool, visitItem func(Item) bool) {
	t.traverse(t.root, visitNode, visitItem)
}

func (t *Tree) traverse(n *node, visitNode func(Rect, any) bool, visitItem func(Item) bool) bool {
	if t.size == 0 {
		return true
	}
	if !visitNode(n.rect, n.agg) {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if !visitItem(it) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.traverse(c, visitNode, visitItem) {
			return false
		}
	}
	return true
}

// Delete removes the first item intersecting rect for which match returns
// true. It reports whether an item was removed. Underflowing nodes are
// condensed by reinserting orphaned entries (Guttman's CondenseTree).
func (t *Tree) Delete(rect Rect, match func(Item) bool) bool {
	t.checkRect(rect)
	var orphans []Item
	removed := t.delete(t.root, rect, match, &orphans)
	if !removed {
		return false
	}
	t.size--
	// Collapse a root with a single inner child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true}
	}
	for _, it := range orphans {
		t.size-- // Insert re-increments
		t.Insert(it)
	}
	return true
}

func (t *Tree) delete(n *node, rect Rect, match func(Item) bool, orphans *[]Item) bool {
	if n.leaf {
		for i, it := range n.items {
			if it.Rect.Intersects(rect) && match(it) {
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.refit(t.merger)
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if len(c.rect.Min) == 0 || !c.rect.Intersects(rect) {
			continue
		}
		if t.delete(c, rect, match, orphans) {
			// Condense: drop underflowing children, reinsert their items.
			if c.underflow(t.min) {
				n.children = append(n.children[:i], n.children[i+1:]...)
				c.collect(orphans)
			}
			n.refit(t.merger)
			return true
		}
	}
	return false
}

func (n *node) underflow(min int) bool {
	if n.leaf {
		return len(n.items) < min
	}
	return len(n.children) < min
}

// collect gathers every item under n.
func (n *node) collect(out *[]Item) {
	if n.leaf {
		*out = append(*out, n.items...)
		return
	}
	for _, c := range n.children {
		c.collect(out)
	}
}

// Height returns the tree height (1 for a lone leaf root).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// RootAgg returns the aggregate over all items (merger.Zero() if empty).
func (t *Tree) RootAgg() any { return t.root.agg }
