package impute

import (
	"fmt"
	"math"
	"testing"

	"terids/internal/metrics"
	"terids/internal/repository"
	"terids/internal/rules"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

// paperSchema/paperRepo reconstruct the Example 3 setting with textual
// attributes: 3 attributes A, B, C where B values control candidate
// retrieval for C.
var schema = tuple.MustSchema("Gender", "Symptom", "Diagnosis")

func repoFixture(t *testing.T) *repository.Repository {
	t.Helper()
	recs := []*tuple.Record{
		tuple.MustRecord(schema, "p1", 0, 0, []string{"male", "thirst weight loss blurred vision", "diabetes type two"}),
		tuple.MustRecord(schema, "p2", 0, 0, []string{"male", "thirst weight loss vision", "diabetes type one"}),
		tuple.MustRecord(schema, "p3", 0, 0, []string{"female", "fever cough aches", "seasonal flu"}),
		tuple.MustRecord(schema, "p4", 0, 0, []string{"male", "fever cough fatigue", "seasonal flu"}),
	}
	repo, err := repository.Build(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

// gender+symptom -> diagnosis, the Section 2.2 motivating rule.
func ruleFixture() *rules.Set {
	set := rules.NewSet(3)
	set.MustAdd(&rules.Rule{
		Kind:      rules.KindCDD,
		Dependent: 2,
		Determinants: []rules.Constraint{
			{Attr: 0, Kind: rules.Const, Value: "male", Toks: tokens.New("male")},
			{Attr: 1, Kind: rules.Interval, Min: 0, Max: 0.3},
		},
		DepMin: 0, DepMax: 0.4,
	})
	return set
}

func TestRuleImputerCompletePassThrough(t *testing.T) {
	ri := NewRuleImputer("CDD", repoFixture(t), ruleFixture(), DefaultConfig())
	r := tuple.MustRecord(schema, "x", 0, 0, []string{"male", "fever", "flu"})
	im := ri.Impute(r)
	if im.InstanceCount() != 1 {
		t.Fatal("complete record must have exactly one instance")
	}
	if im.Dists[2].Cands[0].Text != "flu" {
		t.Fatal("complete attribute must be passed through")
	}
}

func TestRuleImputerImputesDiagnosis(t *testing.T) {
	repo := repoFixture(t)
	ri := NewRuleImputer("CDD", repo, ruleFixture(), DefaultConfig())
	// a2 of Table 1: male with diabetes-like symptoms, diagnosis missing.
	a2 := tuple.MustRecord(schema, "a2", 0, 0, []string{"male", "thirst weight loss blurred vision", "-"})
	im := ri.Impute(a2)
	d := im.Dists[2]
	if len(d.Cands) == 0 || d.Cands[0].Text == "" {
		t.Fatalf("imputation failed: %+v", d)
	}
	// The diabetes diagnoses must be the candidates (samples p1 and p2
	// match the symptom constraint; flu samples do not).
	for _, c := range d.Cands {
		if !c.Toks.Contains("diabetes") {
			t.Errorf("unexpected candidate %q", c.Text)
		}
	}
	total := 0.0
	for _, c := range d.Cands {
		total += c.P
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("candidate probabilities sum to %v, want 1", total)
	}
}

func TestRuleImputerConstMismatchFails(t *testing.T) {
	repo := repoFixture(t)
	ri := NewRuleImputer("CDD", repo, ruleFixture(), DefaultConfig())
	// Female tuple: the male-conditioned CDD does not apply; imputation
	// must fail gracefully.
	f := tuple.MustRecord(schema, "f1", 0, 0, []string{"female", "thirst weight loss blurred vision", "-"})
	im := ri.Impute(f)
	d := im.Dists[2]
	if len(d.Cands) != 1 || d.Cands[0].Text != "" || d.Cands[0].P != 1 {
		t.Fatalf("expected FailedCandidate, got %+v", d)
	}
}

func TestRuleImputerMultipleRulesEquation4(t *testing.T) {
	// Two rules with different dependent intervals: frequencies must sum
	// across rules per Equation 4.
	repo := repoFixture(t)
	set := ruleFixture()
	set.MustAdd(&rules.Rule{
		Kind:      rules.KindDD,
		Dependent: 2,
		Determinants: []rules.Constraint{
			{Attr: 1, Kind: rules.Interval, Min: 0, Max: 0.3},
		},
		DepMin: 0, DepMax: 0.2,
	})
	ri := NewRuleImputer("CDD", repo, set, DefaultConfig())
	a2 := tuple.MustRecord(schema, "a2", 0, 0, []string{"male", "thirst weight loss blurred vision", "-"})
	im := ri.Impute(a2)
	d := im.Dists[2]
	if len(d.Cands) < 2 {
		t.Fatalf("expected multiple candidates, got %+v", d)
	}
	// Equation 4 reference computation: replicate by hand.
	dom := repo.Domain(2)
	freq := map[int]float64{}
	for _, rule := range set.ForDependent(2) {
		if !rule.AppliesTo(a2) {
			continue
		}
		for _, s := range repo.Samples() {
			if !rule.SampleMatches(a2, s) {
				continue
			}
			for _, ci := range dom.RangeByDistance(s.Tokens(2), rule.DepMin, rule.DepMax) {
				freq[ci]++
			}
		}
	}
	total := 0.0
	for _, f := range freq {
		total += f
	}
	for _, c := range d.Cands {
		ci := dom.Lookup(c.Text)
		want := freq[ci] / total
		if math.Abs(c.P-want) > 1e-9 {
			t.Errorf("candidate %q: P = %v, want %v", c.Text, c.P, want)
		}
	}
}

func TestRuleImputerDomainIndexEquivalence(t *testing.T) {
	repo := repoFixture(t)
	set := ruleFixture()
	a2 := tuple.MustRecord(schema, "a2", 0, 0, []string{"male", "thirst weight loss blurred vision", "-"})
	plain := NewRuleImputer("CDD", repo, set, DefaultConfig()).Impute(a2)
	idx := make([]*repository.Index, 3)
	for j := 0; j < 3; j++ {
		idx[j] = repo.Domain(j).BuildIndex(repo.Sample(0).Tokens(j))
	}
	indexed := NewRuleImputer("CDD", repo, set, DefaultConfig()).WithDomainIndexes(idx).Impute(a2)
	if len(plain.Dists[2].Cands) != len(indexed.Dists[2].Cands) {
		t.Fatalf("candidate counts differ: %d vs %d",
			len(plain.Dists[2].Cands), len(indexed.Dists[2].Cands))
	}
	for i := range plain.Dists[2].Cands {
		a, b := plain.Dists[2].Cands[i], indexed.Dists[2].Cands[i]
		if a.Text != b.Text || math.Abs(a.P-b.P) > 1e-9 {
			t.Fatalf("candidate %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestRuleImputerBreakdown(t *testing.T) {
	var b metrics.Breakdown
	ri := NewRuleImputer("CDD", repoFixture(t), ruleFixture(), DefaultConfig()).WithBreakdown(&b)
	a2 := tuple.MustRecord(schema, "a2", 0, 0, []string{"male", "thirst weight loss blurred vision", "-"})
	ri.Impute(a2)
	if b.Select < 0 || b.Impute <= 0 {
		t.Fatalf("breakdown not recorded: %+v", b)
	}
	if b.ER != 0 {
		t.Fatal("imputer must not charge ER time")
	}
}

func TestAccumulatorTruncation(t *testing.T) {
	repo := repoFixture(t)
	dom := repo.Domain(2)
	acc := NewAccumulator(dom, nil)
	for i := 0; i < dom.Len(); i++ {
		acc.AddSample(i, 0, 1) // every value suggests the whole domain
	}
	d := acc.Distribution(Config{MaxCandidates: 2})
	if len(d.Cands) != 2 {
		t.Fatalf("truncation failed: %d candidates", len(d.Cands))
	}
	total := 0.0
	for _, c := range d.Cands {
		total += c.P
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("truncated distribution sums to %v", total)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	repo := repoFixture(t)
	acc := NewAccumulator(repo.Domain(2), nil)
	if !acc.Empty() {
		t.Fatal("fresh accumulator must be empty")
	}
	d := acc.Distribution(DefaultConfig())
	if len(d.Cands) != 1 || d.Cands[0].Text != "" {
		t.Fatalf("empty accumulator must yield FailedCandidate, got %+v", d)
	}
}

func TestStreamImputerUsesTemporalNeighbors(t *testing.T) {
	// Window oldest-first: the most recent donor must dominate (con+ER
	// imputes from temporally near tuples, not most-similar ones).
	window := []*tuple.Record{
		tuple.MustRecord(schema, "w1", 0, 0, []string{"male", "thirst weight loss vision", "diabetes"}),
		tuple.MustRecord(schema, "w2", 0, 1, []string{"male", "fever cough", "flu"}),
		tuple.MustRecord(schema, "w3", 0, 2, []string{"male", "red eye itchy", "conjunctivitis"}),
	}
	si := NewStreamImputer(func() []*tuple.Record { return window }, DefaultConfig())
	si.MaxAvgDist = 1.0 // accept all donors; isolate recency weighting
	r := tuple.MustRecord(schema, "q", 1, 3, []string{"male", "thirst weight loss blurred vision", "-"})
	im := si.Impute(r)
	d := im.Dists[2]
	if len(d.Cands) == 0 {
		t.Fatal("stream imputation returned nothing")
	}
	best := d.Cands[0]
	for _, c := range d.Cands[1:] {
		if c.P > best.P {
			best = c
		}
	}
	if best.Text != "conjunctivitis" {
		t.Fatalf("best candidate = %q, want the most recent donor's value", best.Text)
	}
}

func TestStreamImputerValueConstraint(t *testing.T) {
	// A recent but wildly dissimilar donor is rejected by the value
	// constraint; an older compatible donor is used instead.
	window := []*tuple.Record{
		tuple.MustRecord(schema, "w1", 0, 0, []string{"male", "thirst weight loss vision", "diabetes"}),
		tuple.MustRecord(schema, "w2", 0, 1, []string{"zz", "qq ww ee", "flu"}),
	}
	si := NewStreamImputer(func() []*tuple.Record { return window }, DefaultConfig())
	si.MaxAvgDist = 0.5
	si.TopK = 1
	r := tuple.MustRecord(schema, "q", 1, 3, []string{"male", "thirst weight loss blurred vision", "-"})
	im := si.Impute(r)
	if got := im.Dists[2].Cands[0].Text; got != "diabetes" {
		t.Fatalf("constraint must reject w2; got %q", got)
	}
}

func TestStreamImputerNoDonors(t *testing.T) {
	si := NewStreamImputer(func() []*tuple.Record { return nil }, DefaultConfig())
	r := tuple.MustRecord(schema, "q", 0, 0, []string{"male", "fever", "-"})
	im := si.Impute(r)
	if im.Dists[2].Cands[0].Text != "" {
		t.Fatal("no donors must yield FailedCandidate")
	}
	// Donor missing the needed attribute is useless.
	window := []*tuple.Record{
		tuple.MustRecord(schema, "w1", 0, 0, []string{"male", "fever", "-"}),
	}
	si2 := NewStreamImputer(func() []*tuple.Record { return window }, DefaultConfig())
	if si2.Impute(r).Dists[2].Cands[0].Text != "" {
		t.Fatal("donor without the attribute must not contribute")
	}
}

func TestStreamImputerSkipsSelf(t *testing.T) {
	r := tuple.MustRecord(schema, "q", 0, 0, []string{"male", "fever", "-"})
	self := tuple.MustRecord(schema, "q", 0, 0, []string{"male", "fever", "flu"})
	si := NewStreamImputer(func() []*tuple.Record { return []*tuple.Record{self} }, DefaultConfig())
	if si.Impute(r).Dists[2].Cands[0].Text != "" {
		t.Fatal("a tuple must not impute from itself (same RID)")
	}
}

func TestStreamImputerDeterministicTies(t *testing.T) {
	// Two donors with identical similarity: order must be stable by RID.
	mk := func(rid, diag string) *tuple.Record {
		return tuple.MustRecord(schema, rid, 0, 0, []string{"male", "fever cough", diag})
	}
	window := []*tuple.Record{mk("b", "flu"), mk("a", "cold")}
	si := NewStreamImputer(func() []*tuple.Record { return window }, DefaultConfig())
	r := tuple.MustRecord(schema, "q", 1, 0, []string{"male", "fever cough", "-"})
	im1 := si.Impute(r)
	im2 := si.Impute(r)
	if fmt.Sprint(im1.Dists[2]) != fmt.Sprint(im2.Dists[2]) {
		t.Fatal("stream imputation must be deterministic")
	}
}

func TestImputerInterfaceCompliance(t *testing.T) {
	var _ Imputer = (*RuleImputer)(nil)
	var _ Imputer = (*StreamImputer)(nil)
	if NewRuleImputer("CDD", repoFixture(t), ruleFixture(), DefaultConfig()).Name() != "CDD" {
		t.Fatal("RuleImputer name wrong")
	}
	if NewStreamImputer(func() []*tuple.Record { return nil }, DefaultConfig()).Name() != "con" {
		t.Fatal("StreamImputer name wrong")
	}
}
