// Package impute implements the missing-data imputation of Section 3: given
// an incomplete tuple and dependency rules detected from a complete
// repository R, build per-attribute candidate-value distributions (single
// rule: Equation 3; multiple rules: Equation 4). It also provides the
// baseline imputers of Section 6.1: DD rules, editing rules, and the
// constraint-based stream imputer of con+ER.
package impute

import (
	"sort"

	"terids/internal/metrics"
	"terids/internal/repository"
	"terids/internal/rules"
	"terids/internal/tuple"
)

// Config tunes distribution construction.
type Config struct {
	// MaxCandidates caps each attribute's candidate list (0 = unlimited).
	// The cross product of candidates forms the instance set of
	// Definition 4, so the cap bounds instance-pair enumeration cost.
	MaxCandidates int
}

// DefaultConfig caps candidates at 6 per attribute.
func DefaultConfig() Config { return Config{MaxCandidates: 6} }

// Imputer turns incomplete records into imputed probabilistic tuples.
type Imputer interface {
	// Name identifies the strategy in reports (e.g. "CDD", "DD", "er",
	// "con").
	Name() string
	// Impute returns the imputed version of r. Complete records are
	// wrapped trivially. Implementations must be deterministic.
	Impute(r *tuple.Record) *tuple.Imputed
}

// FailedCandidate is the placeholder distribution used when no rule/sample
// yields any candidate: a single empty value with probability 1, so the
// tuple still has well-defined instances (its similarity contribution on
// the attribute is then 0 against any non-empty value).
func FailedCandidate() tuple.AttrDist {
	return tuple.Point("", nil)
}

// Accumulator gathers candidate-value frequencies for one attribute across
// rules and samples, then emits the normalized distribution of Equation 4.
// It memoizes per-(sample value, dependent interval) candidate sets, and
// optionally accelerates domain range queries with a pivot index.
type Accumulator struct {
	dom   *repository.Domain
	idx   *repository.Index
	freq  map[int]float64
	cache map[candKey][]int
}

type candKey struct {
	valIdx         int
	depMin, depMax float64
}

// NewAccumulator creates an accumulator over dom; idx may be nil (linear
// domain scans) or a pivot index over dom (triangle-inequality accelerated
// scans). Both produce identical results.
func NewAccumulator(dom *repository.Domain, idx *repository.Index) *Accumulator {
	return &Accumulator{
		dom:   dom,
		idx:   idx,
		freq:  make(map[int]float64),
		cache: make(map[candKey][]int),
	}
}

// AddSample registers one repository sample s matched by a rule with
// dependent interval [depMin, depMax]: every domain value val with
// dist(s[A_j], val) inside the interval gains one count (the cand(s[A_j])
// set of Section 3).
func (a *Accumulator) AddSample(sampleValIdx int, depMin, depMax float64) {
	key := candKey{sampleValIdx, depMin, depMax}
	cands, ok := a.cache[key]
	if !ok {
		toks := a.dom.Value(sampleValIdx).Toks
		if a.idx != nil {
			cands = a.idx.Range(toks, depMin, depMax)
		} else {
			cands = a.dom.RangeByDistance(toks, depMin, depMax)
		}
		a.cache[key] = cands
	}
	for _, c := range cands {
		a.freq[c]++
	}
}

// Empty reports whether no candidate was accumulated.
func (a *Accumulator) Empty() bool { return len(a.freq) == 0 }

// Distribution emits the candidate distribution with probabilities
// proportional to accumulated frequencies (Equation 4), truncated per cfg
// and normalized. An empty accumulator yields FailedCandidate.
func (a *Accumulator) Distribution(cfg Config) tuple.AttrDist {
	if len(a.freq) == 0 {
		return FailedCandidate()
	}
	idxs := make([]int, 0, len(a.freq))
	for i := range a.freq {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	dist := tuple.AttrDist{Cands: make([]tuple.Candidate, 0, len(idxs))}
	for _, i := range idxs {
		v := a.dom.Value(i)
		dist.Cands = append(dist.Cands, tuple.Candidate{Text: v.Text, Toks: v.Toks, P: a.freq[i]})
	}
	dist.Normalize()
	dist.Truncate(cfg.MaxCandidates)
	return dist
}

// RuleImputer imputes by scanning the repository with a rule set — the
// unindexed path used by the CDD+ER, DD+ER, and er+ER baselines, and the
// reference the indexed TER-iDS path must agree with.
type RuleImputer struct {
	name      string
	repo      *repository.Repository
	rules     *rules.Set
	cfg       Config
	breakdown *metrics.Breakdown
	domIdx    []*repository.Index // optional, per attribute
}

// NewRuleImputer builds a rule-based imputer. name labels the strategy.
func NewRuleImputer(name string, repo *repository.Repository, set *rules.Set, cfg Config) *RuleImputer {
	return &RuleImputer{name: name, repo: repo, rules: set, cfg: cfg}
}

// WithBreakdown makes the imputer record rule-selection and imputation
// durations into b (Figure 6's first two phases).
func (ri *RuleImputer) WithBreakdown(b *metrics.Breakdown) *RuleImputer {
	ri.breakdown = b
	return ri
}

// WithDomainIndexes installs per-attribute pivot indexes to accelerate
// candidate range queries (results are unchanged).
func (ri *RuleImputer) WithDomainIndexes(idx []*repository.Index) *RuleImputer {
	ri.domIdx = idx
	return ri
}

// Name implements Imputer.
func (ri *RuleImputer) Name() string { return ri.name }

// Impute implements Imputer.
func (ri *RuleImputer) Impute(r *tuple.Record) *tuple.Imputed {
	if r.IsComplete() {
		return tuple.FromComplete(r)
	}
	im := &tuple.Imputed{R: r, Dists: make([]tuple.AttrDist, r.D())}
	for j := 0; j < r.D(); j++ {
		if !r.IsMissing(j) {
			im.Dists[j] = tuple.Point(r.Value(j), r.Tokens(j))
			continue
		}
		im.Dists[j] = ri.imputeAttr(r, j)
	}
	return im
}

func (ri *RuleImputer) imputeAttr(r *tuple.Record, j int) tuple.AttrDist {
	var sw metrics.Stopwatch
	sw.Start()
	var applicable []*rules.Rule
	for _, rule := range ri.rules.ForDependent(j) {
		if rule.AppliesTo(r) {
			applicable = append(applicable, rule)
		}
	}
	if ri.breakdown != nil {
		ri.breakdown.Select += sw.Lap()
	}

	dom := ri.repo.Domain(j)
	var idx *repository.Index
	if ri.domIdx != nil {
		idx = ri.domIdx[j]
	}
	acc := NewAccumulator(dom, idx)
	for _, rule := range applicable {
		for _, s := range ri.repo.Samples() {
			if rule.SampleMatches(r, s) {
				acc.AddSample(dom.Lookup(s.Value(j)), rule.DepMin, rule.DepMax)
			}
		}
	}
	dist := acc.Distribution(ri.cfg)
	if ri.breakdown != nil {
		ri.breakdown.Impute += sw.Lap()
	}
	return dist
}

// Rules exposes the rule set (the core processor shares it with its
// indexes).
func (ri *RuleImputer) Rules() *rules.Set { return ri.rules }
