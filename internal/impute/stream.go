package impute

import (
	"sort"

	"terids/internal/tokens"
	"terids/internal/tuple"
)

// WindowFunc returns the live tuples the stream imputer may borrow values
// from (typically the current sliding-window contents), oldest first.
type WindowFunc func() []*tuple.Record

// StreamImputer is the constraint-based imputation of the con+ER baseline
// (Zhang et al. [43] adapted to textual streams): a missing attribute is
// filled from the temporally nearest complete tuples of the stream itself —
// the paper notes con+ER "imputes each incomplete tuple based on its near
// complete tuple from iDS (instead of accessing data repository R)". A
// value constraint (bounded distance on the shared attributes) filters
// wildly dissimilar donors, mirroring the speed constraints of [43]. It is
// fast — no repository access, donor count independent of m — but ignores
// the semantic association CDD rules capture, so the paper measures it as
// the least accurate imputer.
type StreamImputer struct {
	window WindowFunc
	cfg    Config
	// TopK is the number of most recent donors considered per missing
	// attribute (default 3).
	TopK int
	// MaxAvgDist is the value constraint: donors whose average Jaccard
	// distance on shared attributes exceeds it are rejected (default 0.9).
	MaxAvgDist float64
}

// NewStreamImputer builds the con imputer over the given window view.
func NewStreamImputer(window WindowFunc, cfg Config) *StreamImputer {
	return &StreamImputer{window: window, cfg: cfg, TopK: 3, MaxAvgDist: 0.9}
}

// Name implements Imputer.
func (si *StreamImputer) Name() string { return "con" }

// Impute implements Imputer.
func (si *StreamImputer) Impute(r *tuple.Record) *tuple.Imputed {
	if r.IsComplete() {
		return tuple.FromComplete(r)
	}
	im := &tuple.Imputed{R: r, Dists: make([]tuple.AttrDist, r.D())}
	for j := 0; j < r.D(); j++ {
		if !r.IsMissing(j) {
			im.Dists[j] = tuple.Point(r.Value(j), r.Tokens(j))
			continue
		}
		im.Dists[j] = si.imputeAttr(r, j)
	}
	return im
}

// imputeAttr fills attribute j of r from the TopK most recent window tuples
// carrying j that pass the value constraint; earlier (staler) donors weigh
// less.
func (si *StreamImputer) imputeAttr(r *tuple.Record, j int) tuple.AttrDist {
	win := si.window()
	k := si.TopK
	if k <= 0 {
		k = 3
	}
	type donor struct {
		rec    *tuple.Record
		weight float64
	}
	var donors []donor
	// Scan newest-first.
	for i := len(win) - 1; i >= 0 && len(donors) < k; i-- {
		w := win[i]
		if w.RID == r.RID || w.IsMissing(j) {
			continue
		}
		// Value constraint on shared attributes (the speed-constraint
		// analog): reject donors too far from r on what both carry.
		shared, dist := 0, 0.0
		for x := 0; x < r.D(); x++ {
			if x == j || r.IsMissing(x) || w.IsMissing(x) {
				continue
			}
			shared++
			dist += tokens.JaccardDistance(r.Tokens(x), w.Tokens(x))
		}
		if shared > 0 && dist/float64(shared) > si.MaxAvgDist {
			continue
		}
		// Recency weight: the most recent donor dominates.
		donors = append(donors, donor{w, 1 / float64(len(donors)+1)})
	}
	if len(donors) == 0 {
		return FailedCandidate()
	}
	// Merge duplicate donor values.
	weightOf := map[string]float64{}
	toksOf := map[string]tokens.Set{}
	var order []string
	for _, d := range donors {
		text := d.rec.Value(j)
		if _, seen := weightOf[text]; !seen {
			order = append(order, text)
			toksOf[text] = d.rec.Tokens(j)
		}
		weightOf[text] += d.weight
	}
	sort.Strings(order)
	dist := tuple.AttrDist{Cands: make([]tuple.Candidate, 0, len(order))}
	for _, text := range order {
		dist.Cands = append(dist.Cands, tuple.Candidate{Text: text, Toks: toksOf[text], P: weightOf[text]})
	}
	dist.Normalize()
	dist.Truncate(si.cfg.MaxCandidates)
	return dist
}
