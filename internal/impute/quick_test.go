package impute

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"terids/internal/repository"
	"terids/internal/rules"
	"terids/internal/tuple"
)

// TestQuickImputationDistributionsNormalized randomizes repositories, rules
// and incomplete tuples, and asserts the core distribution invariants: all
// probabilities positive, summing to 1, candidate counts respecting the
// cap, and determinism.
func TestQuickImputationDistributionsNormalized(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	randVal := func(width int) string {
		out := ""
		for i := 0; i <= r.Intn(width); i++ {
			out += fmt.Sprintf("w%d ", r.Intn(12))
		}
		return out
	}
	for trial := 0; trial < 60; trial++ {
		var samples []*tuple.Record
		n := 5 + r.Intn(25)
		for i := 0; i < n; i++ {
			samples = append(samples, tuple.MustRecord(schema, fmt.Sprintf("s%d", i), 0, 0,
				[]string{randVal(2), randVal(4), randVal(3)}))
		}
		repo, err := repository.Build(schema, samples)
		if err != nil {
			t.Fatal(err)
		}
		cfg := rules.DefaultDetectConfig()
		cfg.MinSupport = 2
		set := rules.Detect(repo, cfg)
		cap := 1 + r.Intn(6)
		ri := NewRuleImputer("CDD", repo, set, Config{MaxCandidates: cap})
		q := tuple.MustRecord(schema, "q", 0, 0, []string{randVal(2), randVal(4), "-"})
		im1 := ri.Impute(q)
		im2 := ri.Impute(q)
		for j, d := range im1.Dists {
			if len(d.Cands) == 0 {
				t.Fatalf("trial %d attr %d: empty distribution", trial, j)
			}
			if q.IsMissing(j) && len(d.Cands) > cap {
				t.Fatalf("trial %d attr %d: %d candidates exceed cap %d", trial, j, len(d.Cands), cap)
			}
			total := 0.0
			for _, c := range d.Cands {
				if c.P < 0 {
					t.Fatalf("trial %d: negative probability %v", trial, c.P)
				}
				total += c.P
			}
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("trial %d attr %d: probabilities sum to %v", trial, j, total)
			}
			// Determinism.
			if fmt.Sprint(d) != fmt.Sprint(im2.Dists[j]) {
				t.Fatalf("trial %d attr %d: non-deterministic imputation", trial, j)
			}
		}
		if mass := im1.TotalMass(); math.Abs(mass-1) > 1e-9 {
			t.Fatalf("trial %d: total mass %v", trial, mass)
		}
	}
}

// TestQuickAccumulatorCacheConsistency verifies the memoized candidate sets
// equal fresh computations.
func TestQuickAccumulatorCacheConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	repo := repoFixture(t)
	dom := repo.Domain(2)
	for trial := 0; trial < 200; trial++ {
		acc := NewAccumulator(dom, nil)
		vi := r.Intn(dom.Len())
		lo := r.Float64() * 0.5
		hi := lo + r.Float64()*0.5
		acc.AddSample(vi, lo, hi)
		acc.AddSample(vi, lo, hi) // cached path
		want := dom.RangeByDistance(dom.Value(vi).Toks, lo, hi)
		if len(acc.freq) != len(want) {
			t.Fatalf("trial %d: freq over %d values, want %d", trial, len(acc.freq), len(want))
		}
		for _, w := range want {
			if acc.freq[w] != 2 {
				t.Fatalf("trial %d: value %d counted %v times, want 2", trial, w, acc.freq[w])
			}
		}
	}
}
