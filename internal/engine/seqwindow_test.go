package engine

import (
	"math/rand"
	"testing"
)

// TestSeqWindowReleasesInOrder: values offered in an arbitrary permutation
// come back in strict sequence order, across ring growth and a non-zero
// starting sequence.
func TestSeqWindowReleasesInOrder(t *testing.T) {
	const start, n = 1000, 500
	w := seqWindow[int64]{next: start}
	perm := rand.New(rand.NewSource(42)).Perm(n)
	released := make([]int64, 0, n)
	for _, p := range perm {
		seq := start + int64(p)
		w.put(seq, seq)
		for {
			v, ok := w.popNext()
			if !ok {
				break
			}
			released = append(released, v)
		}
	}
	if len(released) != n {
		t.Fatalf("released %d values, want %d", len(released), n)
	}
	for i, v := range released {
		if v != start+int64(i) {
			t.Fatalf("release %d: got seq %d, want %d", i, v, start+int64(i))
		}
	}
	if w.len() != 0 {
		t.Fatalf("window still holds %d values after full drain", w.len())
	}
}

// TestSeqWindowSparseGrowth: a far-ahead seq forces the ring to grow while
// occupied slots relocate correctly, and peekNext never consumes.
func TestSeqWindowSparseGrowth(t *testing.T) {
	var w seqWindow[string]
	w.put(3, "c")
	w.put(200, "far") // growth with slot 3 occupied
	if _, ok := w.peekNext(); ok {
		t.Fatal("peekNext returned a value before seq 0 arrived")
	}
	w.put(1, "b")
	w.put(0, "a")
	if v, ok := w.peekNext(); !ok || v != "a" {
		t.Fatalf("peekNext = %q,%v; want \"a\",true", v, ok)
	}
	if v, ok := w.popNext(); !ok || v != "a" {
		t.Fatalf("popNext = %q,%v; want \"a\",true", v, ok)
	}
	if v, ok := w.popNext(); !ok || v != "b" {
		t.Fatalf("popNext = %q,%v; want \"b\",true", v, ok)
	}
	if _, ok := w.popNext(); ok {
		t.Fatal("popNext released past the missing seq 2")
	}
	w.put(2, "mid")
	for _, want := range []string{"mid", "c"} {
		if v, ok := w.popNext(); !ok || v != want {
			t.Fatalf("popNext = %q,%v; want %q,true", v, ok, want)
		}
	}
	if _, ok := w.get(200); !ok {
		t.Fatal("far value lost across growth")
	}
	if w.len() != 1 {
		t.Fatalf("len = %d, want 1 (only the far value)", w.len())
	}
}
