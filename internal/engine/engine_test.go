package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"terids/internal/core"
	"terids/internal/dataset"
	"terids/internal/tuple"
)

// fixture caches one seeded synthetic stream plus its offline state across
// subtests (Prepare is the expensive part).
type fixture struct {
	sh     *core.Shared
	cfg    core.Config
	stream []*tuple.Record
}

var (
	fixOnce sync.Once
	fix     fixture
	fixErr  error
)

func loadFixture(t *testing.T) fixture {
	t.Helper()
	fixOnce.Do(func() {
		prof, err := dataset.ProfileByName("Citations")
		if err != nil {
			fixErr = err
			return
		}
		data, err := dataset.Generate(prof, dataset.Options{
			Scale: 0.25, MissingRate: 0.3, MissingAttrs: 1, RepoRatio: 0.5, Seed: 7,
		})
		if err != nil {
			fixErr = err
			return
		}
		sh, err := core.Prepare(data.Repo, core.DefaultPrepareConfig(data.Keywords))
		if err != nil {
			fixErr = err
			return
		}
		stream := data.Stream
		if len(stream) > 400 {
			stream = stream[:400]
		}
		fix = fixture{
			sh: sh,
			cfg: core.Config{
				Keywords:   data.Keywords,
				Gamma:      0.5 * float64(data.Schema.D()),
				Alpha:      0.4,
				WindowSize: 50,
				Streams:    2,
			},
			stream: stream,
		}
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

// runProcessor replays the stream through the single-threaded reference and
// returns per-arrival pair slices plus the final entity set.
func runProcessor(t *testing.T, f fixture) ([][]core.Pair, []core.Pair) {
	t.Helper()
	proc, err := core.NewProcessor(f.sh, f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	perArrival := make([][]core.Pair, 0, len(f.stream))
	for _, r := range f.stream {
		pairs, err := proc.Advance(r)
		if err != nil {
			t.Fatal(err)
		}
		perArrival = append(perArrival, pairs)
	}
	return perArrival, proc.Results().Pairs()
}

func samePairs(a, b []core.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].A.RID != b[i].A.RID || a[i].B.RID != b[i].B.RID || a[i].Prob != b[i].Prob {
			return false
		}
	}
	return true
}

// TestEngineMatchesProcessor is the sharding soundness contract: for
// K ∈ {1, 2, 4, 8} the engine's per-arrival output — pair identities,
// emission order, and exact probabilities — and its final entity set are
// identical to single-threaded core.Processor on the same input. Run under
// -race in CI.
func TestEngineMatchesProcessor(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, wantFinal := runProcessor(t, f)

	nEmitted := 0
	for _, ps := range wantPerArrival {
		nEmitted += len(ps)
	}
	if nEmitted == 0 {
		t.Fatal("reference emitted no pairs; fixture too small to be meaningful")
	}

	for _, k := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			var mu sync.Mutex
			got := make([][]core.Pair, len(f.stream))
			eng, err := New(f.sh, Config{
				Core:   f.cfg,
				Shards: k,
				OnResult: func(res Result) {
					mu.Lock()
					got[res.Seq] = res.Pairs
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range f.stream {
				if err := eng.Submit(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			for i := range wantPerArrival {
				if !samePairs(wantPerArrival[i], got[i]) {
					t.Fatalf("arrival %d (%s): engine K=%d emitted %v, processor %v",
						i, f.stream[i].RID, k, got[i], wantPerArrival[i])
				}
			}
			final := eng.ResultSet()
			if !samePairs(wantFinal, final) {
				t.Fatalf("final entity set differs at K=%d: engine %d pairs, processor %d",
					k, len(final), len(wantFinal))
			}
			st := eng.Stats()
			if st.Completed != int64(len(f.stream)) {
				t.Fatalf("completed %d arrivals, submitted %d", st.Completed, len(f.stream))
			}
			if st.Totals.Tuples != int64(len(f.stream)) {
				t.Fatalf("stats counted %d tuples, want %d", st.Totals.Tuples, len(f.stream))
			}
		})
	}
}

// TestEngineTimeWindowMode checks the time-based window variant drives the
// same expiry semantics as the Processor.
func TestEngineTimeWindowMode(t *testing.T) {
	f := loadFixture(t)
	cfg := f.cfg
	cfg.TimeSpan = 40

	proc, err := core.NewProcessor(f.sh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]core.Pair, 0, len(f.stream))
	for _, r := range f.stream {
		pairs, err := proc.Advance(r)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, pairs)
	}

	var mu sync.Mutex
	got := make([][]core.Pair, len(f.stream))
	eng, err := New(f.sh, Config{
		Core:   cfg,
		Shards: 3,
		OnResult: func(res Result) {
			mu.Lock()
			got[res.Seq] = res.Pairs
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream {
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !samePairs(want[i], got[i]) {
			t.Fatalf("time-window arrival %d: engine %v, processor %v", i, got[i], want[i])
		}
	}
	if !samePairs(proc.Results().Pairs(), eng.ResultSet()) {
		t.Fatal("time-window final entity sets differ")
	}
}

// TestEngineLifecycleErrors covers the submission error contract.
func TestEngineLifecycleErrors(t *testing.T) {
	f := loadFixture(t)

	t.Run("foreign schema", func(t *testing.T) {
		eng, err := New(f.sh, Config{Core: f.cfg, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		foreign := tuple.MustSchema("x", "y", "z", "w")
		r := tuple.MustRecord(foreign, "fr1", 0, 0, []string{"a", "b", "c", "d"})
		if err := eng.Submit(r); err == nil {
			t.Fatal("foreign-schema submit succeeded")
		}
	})

	t.Run("closed", func(t *testing.T) {
		eng, err := New(f.sh, Config{Core: f.cfg, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		if err := eng.Submit(f.stream[0]); err != ErrClosed {
			t.Fatalf("submit after close: %v, want ErrClosed", err)
		}
		if err := eng.TrySubmit(f.stream[0]); err != ErrClosed {
			t.Fatalf("trysubmit after close: %v, want ErrClosed", err)
		}
	})

	t.Run("bad stream rejected synchronously", func(t *testing.T) {
		eng, err := New(f.sh, Config{Core: f.cfg, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		sch := f.sh.Schema
		vals := make([]string, sch.D())
		for i := range vals {
			vals[i] = "v"
		}
		bad := tuple.MustRecord(sch, "bad1", 9, 0, vals)
		if err := eng.Submit(bad); !errors.Is(err, ErrInvalidRecord) {
			t.Fatalf("submit with stream 9: %v, want ErrInvalidRecord", err)
		}
		// The pipeline stays healthy: valid arrivals still process.
		if err := eng.Submit(f.stream[0]); err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatalf("close after rejected submit: %v", err)
		}
	})
}

// TestEngineDuplicateRIDRejected checks that re-submitting a live RID drops
// that arrival (Result.Rejected) without poisoning the pipeline, and that a
// RID becomes submittable again once its first instance expires.
func TestEngineDuplicateRIDRejected(t *testing.T) {
	f := loadFixture(t)
	cfg := f.cfg
	cfg.WindowSize = 5

	var mu sync.Mutex
	var results []Result
	eng, err := New(f.sh, Config{
		Core:   cfg,
		Shards: 2,
		OnResult: func(res Result) {
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dup := f.stream[0]
	if err := eng.Submit(dup); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(dup); err != nil {
		t.Fatalf("duplicate submit should enqueue (rejection is per-tuple, async): %v", err)
	}
	// 5 more arrivals on dup's stream push it out of the w=5 window; then
	// the same RID is acceptable again.
	pushed := 0
	for _, r := range f.stream[1:] {
		if r.Stream != dup.Stream {
			continue
		}
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
		if pushed++; pushed == 5 {
			break
		}
	}
	if err := eng.Submit(dup); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var rejected []int64
	for _, res := range results {
		if res.Rejected {
			rejected = append(rejected, res.Seq)
		}
	}
	if len(rejected) != 1 || rejected[0] != 1 {
		t.Fatalf("rejected seqs %v, want exactly [1]", rejected)
	}
	if st := eng.Stats(); st.Rejected != 1 || st.Completed != int64(len(results)) {
		t.Fatalf("stats rejected=%d completed=%d, want 1 and %d", st.Rejected, st.Completed, len(results))
	}
}
