package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDeltaCheckpointChainRecovery: the checkpointer writes v3 deltas
// between full snapshots, prune keeps whole chains alive, and recovery off a
// SIGKILL clone materializes the newest chain into the exact engine state —
// byte-identical results across the restart.
func TestDeltaCheckpointChainRecovery(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, wantFinal := runProcessor(t, f)
	n := len(f.stream)
	dir := t.TempDir()

	first := newCollector()
	d1, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2, OnResult: first.onResult},
		DurableConfig{Dir: dir, NoSync: true, SegmentBytes: 4096, KeepCheckpoints: 2, DeltaEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	kill := 7 * n / 8
	for i, r := range f.stream[:kill] {
		if err := d1.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
		if (i+1)%40 == 0 {
			if _, err := d1.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := d1.Stats()
	if st.DeltaCheckpoints == 0 {
		t.Fatalf("no delta checkpoints written across %d checkpoints", st.Checkpoints)
	}
	files, _, err := listCheckpointFiles(CheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	var fulls, deltas int
	for _, cf := range files {
		if cf.base < 0 {
			fulls++
		} else {
			deltas++
		}
	}
	if fulls == 0 || deltas == 0 {
		t.Fatalf("on-disk mix fulls=%d deltas=%d, want both (files %+v)", fulls, deltas, files)
	}

	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	if err := d1.Close(false); err != nil {
		t.Fatal(err)
	}

	// LatestCheckpoint must materialize the newest state even when it is the
	// head of a delta chain.
	path, c, err := LatestCheckpoint(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	lastCkpt := int64((kill / 40) * 40)
	if c == nil || c.Seq != lastCkpt {
		t.Fatalf("latest checkpoint watermark %v, want %d", c, lastCkpt)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("materialized chain state invalid: %v", err)
	}
	if filepath.Dir(path) != CheckpointDir(crashDir) {
		t.Fatalf("latest checkpoint path %s outside %s", path, CheckpointDir(crashDir))
	}

	second := newCollector()
	d2, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 3, OnResult: second.onResult},
		DurableConfig{Dir: crashDir, NoSync: true, SegmentBytes: 4096, KeepCheckpoints: 2, DeltaEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d2.ResumeSeq() != int64(kill) {
		t.Fatalf("recovery resumed at %d, want %d", d2.ResumeSeq(), kill)
	}
	for _, r := range f.stream[kill:] {
		if err := d2.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := d2.Close(true); err != nil {
		t.Fatal(err)
	}
	for i := int(lastCkpt); i < n; i++ {
		got, ok := second.pairs[int64(i)]
		if !ok {
			t.Fatalf("arrival %d never finalized after chain recovery", i)
		}
		if !samePairs(wantPerArrival[i], got) {
			t.Fatalf("arrival %d diverged after delta-chain recovery: got %v, reference %v",
				i, got, wantPerArrival[i])
		}
	}
	if !samePairs(wantFinal, d2.Eng.ResultSet()) {
		t.Fatal("final entity set differs after delta-chain recovery")
	}
}

// TestPruneSkipsJunkFiles: a stray non-checkpoint file in the checkpoint
// directory must not abort pruning or the WAL truncation behind it — and
// must never corrupt the truncation watermark (the old code let an
// unparsable ckpt-*.ckpt name displace real checkpoints from the keep window
// and truncate the WAL at the newest watermark, gapping fallback recovery).
func TestPruneSkipsJunkFiles(t *testing.T) {
	f := loadFixture(t)
	dir := t.TempDir()
	d, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2},
		DurableConfig{Dir: dir, NoSync: true, SegmentBytes: 1024, KeepCheckpoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	ckptDir := CheckpointDir(dir)
	junk := []string{"garbage.txt", "ckpt-notanumber.ckpt", "delta-junk.dckpt"}
	for _, name := range junk {
		if err := os.WriteFile(filepath.Join(ckptDir, name), []byte("not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(ckptDir, "ckpt-00000000000000000001.ckpt.d"), 0o755); err != nil {
		t.Fatal(err)
	}

	for i, r := range f.stream[:90] {
		if err := d.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
		if i == 29 || i == 59 || i == 89 {
			if _, err := d.CheckpointNow(); err != nil {
				t.Fatalf("checkpoint with junk in dir: %v", err)
			}
		}
	}
	st := d.Stats()
	if err := d.Close(false); err != nil {
		t.Fatal(err)
	}
	// Junk untouched, real checkpoints pruned to KeepCheckpoints.
	for _, name := range junk {
		if _, err := os.Stat(filepath.Join(ckptDir, name)); err != nil {
			t.Fatalf("prune touched the stray file %s: %v", name, err)
		}
	}
	files, skipped, err := listCheckpointFiles(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0].seq != 90 || files[1].seq != 60 {
		t.Fatalf("retained checkpoint files %+v, want watermarks 90 and 60", files)
	}
	if len(skipped) != len(junk)+1 {
		t.Fatalf("skipped %v, want the %d junk entries", skipped, len(junk)+1)
	}
	// The WAL truncation used the OLDEST retained watermark (60), not the
	// newest — the fallback state keeps its replay suffix.
	if st.WAL.FirstSeq == 0 || st.WAL.FirstSeq > 60 {
		t.Fatalf("wal first retained seq %d, want in (0,60]", st.WAL.FirstSeq)
	}
	// And recovery still works with the junk sitting there.
	d2, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2},
		DurableConfig{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if d2.ResumeSeq() != 90 {
		t.Fatalf("recovery with junk resumed at %d, want 90", d2.ResumeSeq())
	}
	if err := d2.Close(false); err != nil {
		t.Fatal(err)
	}
}

// deepCollect runs a deep replay from `from` and returns the regenerated
// results keyed by sequence, plus the highest sequence seen.
func deepCollect(t *testing.T, d *Durable, from int64, stopAfter int) (map[int64]Result, int64) {
	t.Helper()
	out := make(map[int64]Result)
	high := int64(-1)
	err := d.DeepReplay(context.Background(), from, 0, 0, func(res Result) bool {
		if _, dup := out[res.Seq]; dup {
			t.Errorf("deep replay emitted seq %d twice", res.Seq)
		}
		if high >= 0 && res.Seq != high+1 {
			t.Errorf("deep replay jumped from seq %d to %d", high, res.Seq)
		}
		out[res.Seq] = res
		high = res.Seq
		return stopAfter <= 0 || len(out) < stopAfter
	})
	if err != nil {
		t.Fatalf("DeepReplay(from=%d): %v", from, err)
	}
	return out, high
}

// TestDeepReplayExactRegeneration is the property test of the tentpole
// contract: for any cursor within retained coverage — including sequence
// zero and cursors far below every checkpoint — DeepReplay regenerates the
// merged result stream byte-identically to the uninterrupted reference
// (pairs, order, probabilities, rejections), across a SIGKILL restart and a
// K→K' reshard, with delta checkpoints in the chain. Run under -race in CI.
func TestDeepReplayExactRegeneration(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, _ := runProcessor(t, f)
	n := len(f.stream)
	dir := t.TempDir()

	// Default (large) segments: the tail segment is never removed, so the WAL
	// keeps genesis coverage and deep replay can regenerate from sequence 0.
	d1, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2},
		DurableConfig{Dir: dir, NoSync: true, KeepCheckpoints: 3, DeltaEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	kill := 3 * n / 4
	for i, r := range f.stream[:kill] {
		if err := d1.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
		if (i+1)%50 == 0 {
			if _, err := d1.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	if err := d1.Close(false); err != nil {
		t.Fatal(err)
	}

	// Recover at a different K and finish the stream live.
	d2, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 3},
		DurableConfig{Dir: crashDir, NoSync: true, KeepCheckpoints: 3, DeltaEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close(false)
	for _, r := range f.stream[kill:] {
		if err := d2.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d2.Eng.Checkpoint(); err != nil { // barrier = drain
		t.Fatal(err)
	}

	reach, ok := d2.DeepReach()
	if !ok || reach != 0 {
		t.Fatalf("deep reach %d/%v, want 0 (wal never truncated)", reach, ok)
	}
	checkRange := func(from int64) {
		t.Helper()
		got, high := deepCollect(t, d2, from, 0)
		if from < int64(n) && high+1 < int64(n) {
			t.Fatalf("deep replay from %d stopped at seq %d, frontier is %d", from, high, n)
		}
		for seq := from; seq < int64(n); seq++ {
			res, ok := got[seq]
			if !ok {
				t.Fatalf("deep replay from %d missed seq %d", from, seq)
			}
			if res.Seq != seq {
				t.Fatalf("result seq %d mislabeled as %d", seq, res.Seq)
			}
			if !samePairs(wantPerArrival[seq], res.Pairs) {
				t.Fatalf("deep replay from %d: seq %d pairs %v, reference %v",
					from, seq, res.Pairs, wantPerArrival[seq])
			}
		}
		if _, below := got[from-1]; below {
			t.Fatalf("deep replay from %d emitted a result below the cursor", from)
		}
	}
	checkRange(0)            // genesis replay, below every checkpoint
	checkRange(55)           // lands between checkpoints: base is a chain state
	checkRange(int64(kill))  // spans the crash point
	checkRange(int64(n) - 3) // almost nothing to regenerate
	checkRange(int64(n))     // nothing at all

	// Early stop via emit=false delivers an exact prefix.
	got, high := deepCollect(t, d2, 10, 5)
	if len(got) != 5 || high != 14 {
		t.Fatalf("early-stopped replay returned %d results to %d, want 5 to 14", len(got), high)
	}

	// Depth limit: a gap wider than the bound is refused up front — but the
	// gate measures to the caller's splice point when one is given, so a
	// consumer that only needs a short prefix is not rejected for the length
	// of the whole log.
	err = d2.DeepReplay(context.Background(), 0, 0, 10, func(Result) bool { return true })
	if !errors.Is(err, ErrReplayDepthExceeded) {
		t.Fatalf("DeepReplay over the depth limit returned %v, want ErrReplayDepthExceeded", err)
	}
	short := 0
	err = d2.DeepReplay(context.Background(), 0, 8, 10, func(res Result) bool {
		short++
		return res.Seq < 7 // consume [0, 8) then stop, matching the upTo hint
	})
	if err != nil || short != 8 {
		t.Fatalf("DeepReplay with upTo=8 limit=10: err=%v emitted=%d, want nil/8", err, short)
	}
}

// TestDeepReplayCoveragePruned: once pruning truncates the WAL past old
// checkpoints, cursors below the reach get ErrNoReplayCoverage and DeepReach
// reports exactly where regeneration becomes possible again.
func TestDeepReplayCoveragePruned(t *testing.T) {
	f := loadFixture(t)
	dir := t.TempDir()
	d, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2},
		DurableConfig{Dir: dir, NoSync: true, SegmentBytes: 512, KeepCheckpoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close(false)
	for i, r := range f.stream[:120] {
		if err := d.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
		if i == 59 || i == 99 {
			if _, err := d.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := d.Stats()
	if st.WAL.FirstSeq == 0 {
		t.Skip("wal not truncated at this segment size; cannot exercise pruned coverage")
	}
	reach, ok := d.DeepReach()
	if !ok || reach != 100 {
		t.Fatalf("deep reach %d/%v, want 100 (the only retained checkpoint)", reach, ok)
	}
	err = d.DeepReplay(context.Background(), 50, 0, 0, func(Result) bool { return true })
	if !errors.Is(err, ErrNoReplayCoverage) {
		t.Fatalf("DeepReplay below coverage returned %v, want ErrNoReplayCoverage", err)
	}
	if !strings.Contains(err.Error(), "wal starts at") {
		t.Fatalf("coverage error does not explain the bound: %v", err)
	}
	// At the reach itself, regeneration works.
	got, _ := deepCollect(t, d, reach, 0)
	if len(got) != 20 {
		t.Fatalf("replay from the reach regenerated %d results, want 20", len(got))
	}
}
