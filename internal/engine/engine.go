// Package engine is the sharded, pipelined execution layer over the TER-iDS
// operator: a concurrency harness around core.Step that scales the hot path
// across cores without changing the algorithm's semantics.
//
// The ER-grid is partitioned into K shards. Each shard worker goroutine owns
// one grid.Grid partition — its slice of the windowed tuples — and processes
// a FIFO command stream. An arriving tuple flows through a bounded-channel
// pipeline:
//
//	Submit → [impute workers ×W] → [router] → [shard workers ×K] → [merger]
//
// Imputation (the CDD-index/DR-index join) reads only immutable Shared
// state, so a pool of W workers imputes arrivals concurrently; a reorder
// buffer in the router restores submission order. The router owns the
// per-stream sliding windows (O(1) ring-buffer pushes — sequential state
// that must see arrivals in order), computes expirations, and fans each
// arrival out to every shard: candidates may reside anywhere, so resolution
// is a broadcast, while residency (grid insertion) is routed by the hash of
// the tuple's dominant topic, with a broadcast-residency path for tuples
// whose topic distribution straddles shards (see topic.go). Each shard
// resolves the query against its own partition concurrently with the other
// shards; the merger joins the K partial results per arrival, restores
// deterministic output order with a sequence-numbered reorder buffer, and
// maintains the live entity set.
//
// Determinism: for the same submission order, emitted pairs are identical —
// order and probabilities included — to single-threaded core.Processor.
// Every pruning rule is safe under partitioning (cell aggregates over any
// subset of residents still bound each member), so the surviving pair set
// never depends on the partitioning; the merger sorts each arrival's pairs
// by the candidate's global arrival sequence, which is exactly the grid
// insertion-ordinal order the Processor emits.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"terids/internal/core"
	"terids/internal/metrics"
	"terids/internal/obs"
	"terids/internal/prune"
	"terids/internal/stream"
	"terids/internal/tuple"
	"terids/internal/wal"
)

// ErrOverloaded is returned by TrySubmit when the ingest queue is full
// (backpressure; serving layers map it to HTTP 429).
var ErrOverloaded = errors.New("engine: ingest queue full")

// ErrClosed is returned by submissions after Close.
var ErrClosed = errors.New("engine: closed")

// ErrInvalidRecord wraps synchronous Submit/TrySubmit rejections (foreign
// schema, out-of-range stream id). Invalid input never reaches — and never
// poisons — the pipeline; serving layers map it to HTTP 400.
var ErrInvalidRecord = errors.New("invalid record")

// Config tunes the engine around an embedded core configuration.
type Config struct {
	// Core is the TER-iDS problem configuration (validated by core).
	Core core.Config
	// Shards is K, the number of ER-grid partitions / shard workers.
	// Default: GOMAXPROCS capped at 8.
	Shards int
	// ImputeWorkers sizes the imputation pool. Default: Shards.
	ImputeWorkers int
	// QueueDepth bounds each pipeline channel. Default: 64.
	QueueDepth int
	// OnResult, when set, is invoked by the merger for every processed
	// arrival, in submission order. It must not call back into the engine's
	// submission path or Checkpoint (both would deadlock the merger).
	OnResult func(Result)
	// WAL, when set, makes every accepted arrival durable before it enters
	// the pipeline: Submit reserves the arrival's slot in the log under the
	// submission lock (preserving sequence order) and then waits for the
	// group commit outside it, so concurrent submitters share fsyncs. A
	// result is only ever emitted for an arrival the log already holds.
	// Appends during recovery replay are idempotent no-ops (the log already
	// holds those sequences). The engine does not own the log: closing the
	// engine leaves it open, and it must outlive the engine.
	WAL *wal.Log
	// Rebalance configures the adaptive skew monitor (see rebalance.go).
	// The zero value disables it; manual Rebalance calls work regardless.
	Rebalance RebalanceConfig
	// Obs selects the registry the engine publishes its stage metrics into.
	// Nil means obs.Default(), the process-wide registry /metrics serves.
	Obs *obs.Registry
	// ObsOff disables all metric and trace instrumentation (used by
	// deep-replay throwaway engines and overhead benchmarks).
	ObsOff bool
	// TraceSample, when > 0, records every Nth arrival's full stage timeline
	// into a bounded ring readable via Traces() (served at GET /trace).
	TraceSample int
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.ImputeWorkers <= 0 {
		c.ImputeWorkers = c.Shards
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
}

// Result is the outcome of one processed arrival.
type Result struct {
	// Seq is the 0-based arrival index in submission order.
	Seq int64
	// RID is the arriving record's identifier.
	RID string
	// Rejected reports that the arrival duplicated a live resident's RID
	// and was dropped before touching any state (the Processor would error
	// at grid insertion instead; the engine rejects up front so one bad
	// tuple cannot poison the pipeline).
	Rejected bool
	// Expired lists the RIDs this arrival evicted from the windows.
	Expired []string
	// Pairs are the new matches, in the exact order core.Processor.Advance
	// would return them.
	Pairs []core.Pair
}

// item is one arrival moving through the pipeline.
type item struct {
	seq  int64
	rec  *tuple.Record
	prof *profileOut
	// enq is when the arrival entered the ingest queue (set only when
	// instrumentation is on; on the durable path, after the group commit so
	// queue wait excludes the WAL wait).
	enq time.Time
	// tr is the arrival's sampled trace, nil for unsampled arrivals.
	tr *Trace
}

// profileOut is the impute stage's product.
type profileOut struct {
	im    *tuple.Imputed
	prof  *prune.Profile
	homes []int
	// slot is the layout slot the arrival's residency is charged to (-1 for
	// broadcast residents) — the rebalancer's movable unit of load.
	slot int
}

// header is the router → merger side channel: per-arrival bookkeeping the
// merger needs to finalize seq in order.
type header struct {
	seq     int64
	rid     string
	expired []string
	// skip marks a rejected duplicate: the merger expects no shard
	// partials for this sequence number.
	skip bool
	// tr carries the arrival's sampled trace to the merger, which completes
	// and retains it. The router writes all trace fields (and allocates
	// ShardNs) before sending the header, so this send is the merger's
	// happens-before edge for reading them.
	tr *Trace
}

// Engine is the sharded concurrent TER-iDS executor. Submit goroutines,
// the pipeline stages, and stats readers may all run concurrently.
type Engine struct {
	step *core.Step
	cfg  Config

	ctx    context.Context
	cancel context.CancelFunc

	subMu  sync.Mutex // serializes submissions (seq assignment + imputeIn send) + closed
	closed bool
	// inflight tracks durable-path submitters between WAL reservation and
	// pipeline injection; Close waits for them before closing imputeIn (a
	// reserved sequence number MUST reach the pipeline, or the merger's
	// reorder buffer would wait for it forever).
	inflight sync.WaitGroup
	// seq is written only under subMu; atomic so Stats() can read it
	// without queueing behind a backpressured Submit.
	seq atomic.Int64
	// startSeq is the first sequence number this engine assigns: 0 for a
	// fresh engine, the checkpoint watermark after NewFromSnapshot. The
	// router's and merger's reorder buffers release from it.
	startSeq int64

	// stateMu guards the fields a Rebalance swaps out — shards, shardCh,
	// layout, cfg.Shards, the pipeline channels, the windows — against
	// concurrent readers outside the pipeline (Stats, Imbalance,
	// BalancedLayout). Pipeline goroutines never take it: they are created
	// after a swap completes and stopped before the next one begins.
	stateMu sync.RWMutex

	imputeIn   chan *item
	imputedOut chan *item
	shardCh    []chan shardCmd
	hdrCh      chan header
	partials   chan partial

	imputeWG sync.WaitGroup
	shardWG  sync.WaitGroup
	mergeWG  sync.WaitGroup

	// windows is the router-owned sequential stream state; live maps each
	// resident RID (duplicate rejection) to the layout slot its residency is
	// charged to (-1 for broadcast residents).
	windows  *stream.MultiWindow
	timeWins []*stream.TimeWindow
	live     map[string]int

	shards []*shard
	// layout is the topic-hash slot → shard table (see rebalance.go);
	// slotWeight counts single-home residents per slot (router-written,
	// monitor-read), the weights BalancedLayout packs.
	layout     []int
	slotWeight []atomic.Int64

	reb         rebState
	monitorStop chan struct{}
	monitorWG   sync.WaitGroup

	// met is nil when Config.ObsOff is set — every stage guards its
	// instrumentation with one pointer check. traces is nil unless
	// Config.TraceSample > 0 (and instrumentation is on).
	met    *engineMetrics
	traces *obs.Ring[Trace]

	failOnce sync.Once
	failErr  error
	failMu   sync.Mutex

	acc       metrics.Accumulator
	resultsMu sync.RWMutex
	results   *core.ResultSet
	completed int64 // guarded by resultsMu (written by merger)
	rejected  int64 // guarded by resultsMu (written by merger)
	// drained (on resultsMu) is broadcast by the merger after every
	// finalized arrival and on pipeline failure; Checkpoint waits on it for
	// the barrier (completed == seq).
	drained *sync.Cond
}

// New builds and starts the engine over pre-computed Shared state.
func New(sh *core.Shared, cfg Config) (*Engine, error) {
	e, err := newEngine(sh, cfg)
	if err != nil {
		return nil, err
	}
	e.start()
	e.startMonitor()
	return e, nil
}

// newEngine builds the engine — channels, windows, shard grids — without
// launching the pipeline, so NewFromSnapshot can load state first.
func newEngine(sh *core.Shared, cfg Config) (*Engine, error) {
	cfg.fill()
	step, err := core.NewStep(sh, cfg.Core)
	if err != nil {
		return nil, err
	}
	cfg.Core = step.Config()
	e := &Engine{
		step:       step,
		cfg:        cfg,
		imputeIn:   make(chan *item, cfg.QueueDepth),
		imputedOut: make(chan *item, cfg.QueueDepth),
		hdrCh:      make(chan header, cfg.QueueDepth),
		partials:   make(chan partial, cfg.QueueDepth*cfg.Shards),
		results:    core.NewResultSet(),
		live:       make(map[string]int),
		layout:     DefaultLayout(cfg.Shards).Slots,
		slotWeight: make([]atomic.Int64, LayoutSlots),
	}
	e.drained = sync.NewCond(&e.resultsMu)
	e.ctx, e.cancel = context.WithCancel(context.Background())
	if !cfg.ObsOff {
		reg := cfg.Obs
		if reg == nil {
			reg = obs.Default()
		}
		e.met = newEngineMetrics(reg)
		if cfg.TraceSample > 0 {
			e.traces = obs.NewRing[Trace](traceRingCap)
		}
	}

	cc := cfg.Core
	if cc.TimeSpan > 0 {
		e.timeWins = make([]*stream.TimeWindow, cc.Streams)
		for i := range e.timeWins {
			tw, err := stream.NewTimeWindow(cc.TimeSpan)
			if err != nil {
				return nil, err
			}
			e.timeWins[i] = tw
		}
	} else {
		mw, err := stream.NewMultiWindow(cc.Streams, cc.WindowSize)
		if err != nil {
			return nil, err
		}
		e.windows = mw
	}

	e.shardCh = make([]chan shardCmd, cfg.Shards)
	e.shards = make([]*shard, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		g, err := step.NewGrid()
		if err != nil {
			return nil, err
		}
		e.shardCh[i] = make(chan shardCmd, cfg.QueueDepth)
		e.shards[i] = newShard(i, e, g)
	}
	return e, nil
}

// start launches the pipeline goroutines and wires the shutdown cascade:
// closing imputeIn drains the stages left to right.
func (e *Engine) start() {
	for w := 0; w < e.cfg.ImputeWorkers; w++ {
		e.imputeWG.Add(1)
		go e.imputeWorker()
	}
	go func() {
		e.imputeWG.Wait()
		close(e.imputedOut)
	}()
	go e.router()
	for _, s := range e.shards {
		e.shardWG.Add(1)
		go s.run()
	}
	go func() {
		e.shardWG.Wait()
		close(e.partials)
	}()
	e.mergeWG.Add(1)
	go e.merger()
}

// fail records the first pipeline error and cancels everything in flight.
func (e *Engine) fail(err error) {
	e.failOnce.Do(func() {
		e.failMu.Lock()
		e.failErr = err
		e.failMu.Unlock()
		e.cancel()
		// Wake a Checkpoint barrier that is waiting for a drain which will
		// never complete. Broadcast under resultsMu: a waiter between its
		// predicate check and Wait() still holds the lock, so a lock-free
		// broadcast could slip into that window and be lost forever.
		e.resultsMu.Lock()
		e.drained.Broadcast()
		e.resultsMu.Unlock()
	})
}

// Err returns the first pipeline error, if any.
func (e *Engine) Err() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failErr
}

// Submit enqueues one arrival, blocking while the ingest queue is full
// (backpressure). Submission order defines the engine's arrival order.
func (e *Engine) Submit(r *tuple.Record) error {
	return e.submit(r, true)
}

// TrySubmit enqueues one arrival without blocking; it returns ErrOverloaded
// when the ingest queue is full.
func (e *Engine) TrySubmit(r *tuple.Record) error {
	return e.submit(r, false)
}

func (e *Engine) submit(r *tuple.Record, wait bool) error {
	if r.Schema() != e.step.Shared().Schema {
		return fmt.Errorf("engine: record %s uses a foreign schema: %w", r.RID, ErrInvalidRecord)
	}
	if r.Stream < 0 || r.Stream >= e.cfg.Core.Streams {
		return fmt.Errorf("engine: record %s has stream %d, have %d streams: %w",
			r.RID, r.Stream, e.cfg.Core.Streams, ErrInvalidRecord)
	}
	e.subMu.Lock()
	if e.closed {
		e.subMu.Unlock()
		return ErrClosed
	}
	if err := e.Err(); err != nil {
		e.subMu.Unlock()
		return err
	}
	it := &item{seq: e.seq.Load(), rec: r}
	if m := e.met; m != nil {
		it.enq = time.Now()
		if e.traces != nil && it.seq%int64(e.cfg.TraceSample) == 0 {
			it.tr = &Trace{Seq: it.seq, RID: r.RID, Stream: r.Stream, start: it.enq}
			m.traceSampled.Inc()
		}
	}
	if e.cfg.WAL == nil {
		defer e.subMu.Unlock()
		if wait {
			select {
			case e.imputeIn <- it:
			case <-e.ctx.Done():
				if err := e.Err(); err != nil {
					return err
				}
				return ErrClosed
			}
		} else {
			select {
			case e.imputeIn <- it:
			default:
				return ErrOverloaded
			}
		}
		e.seq.Add(1)
		if m := e.met; m != nil {
			m.arrivals.Inc()
		}
		return nil
	}
	// Durable path: once the slot is reserved the arrival is committed to
	// the pipeline, so the non-blocking check happens up front (a full
	// ingest queue may still briefly block below if it fills in between).
	if !wait && len(e.imputeIn) == cap(e.imputeIn) {
		e.subMu.Unlock()
		return ErrOverloaded
	}
	tk, err := e.cfg.WAL.Reserve(walEntry(it.seq, r), wait)
	if err != nil {
		e.subMu.Unlock()
		if errors.Is(err, wal.ErrFull) {
			return ErrOverloaded
		}
		return fmt.Errorf("engine: wal reserve: %w", err)
	}
	e.seq.Add(1)
	e.inflight.Add(1)
	if m := e.met; m != nil {
		m.arrivals.Inc()
	}
	e.subMu.Unlock()
	defer e.inflight.Done()
	// Wait for the group commit outside the submission lock, so concurrent
	// submitters batch into shared fsyncs.
	if err := tk.Wait(); err != nil {
		err = fmt.Errorf("engine: wal append: %w", err)
		e.fail(err)
		return err
	}
	if m := e.met; m != nil {
		now := time.Now()
		walWait := now.Sub(it.enq)
		m.walWait.Observe(int64(walWait))
		if it.tr != nil {
			it.tr.WALWaitNs = int64(walWait)
		}
		// Restart the queue-wait clock: the time spent in the group commit is
		// WAL wait, not ingest-queue wait.
		it.enq = now
	}
	select {
	case e.imputeIn <- it:
		return nil
	case <-e.ctx.Done():
		// Only a pipeline failure cancels the context while submitters are
		// inflight (Close waits for us first).
		if err := e.Err(); err != nil {
			return err
		}
		return ErrClosed
	}
}

// walEntry converts one accepted arrival into its log form.
func walEntry(seq int64, r *tuple.Record) wal.Entry {
	vals := make([]string, r.D())
	for j := range vals {
		vals[j] = r.Value(j)
	}
	return wal.Entry{
		Seq:      seq,
		RID:      r.RID,
		Stream:   r.Stream,
		TupleSeq: r.Seq,
		EntityID: r.EntityID,
		Values:   vals,
	}
}

// Close drains the pipeline (every submitted arrival is fully processed),
// stops all workers, and returns the first pipeline error, if any. The
// engine cannot be reused afterwards; the final entity set stays readable.
func (e *Engine) Close() error {
	e.subMu.Lock()
	first := !e.closed
	e.closed = true
	e.subMu.Unlock()
	if first {
		// The skew monitor must stop before intake closes: a rebalance in
		// flight holds the submission lock until it finishes, and the next
		// trigger would hit ErrClosed anyway.
		if e.monitorStop != nil {
			close(e.monitorStop)
		}
		e.monitorWG.Wait()
		// Durable-path submitters between WAL reservation and injection must
		// finish before the intake channel closes: their sequence numbers
		// are already assigned and the merger is waiting for them.
		e.inflight.Wait()
		close(e.imputeIn)
	}
	e.mergeWG.Wait()
	e.cancel()
	return e.Err()
}

// imputeWorker runs the parallel imputation stage: the index join plus
// profile construction and home-shard selection, all over read-only state.
func (e *Engine) imputeWorker() {
	defer e.imputeWG.Done()
	for it := range e.imputeIn {
		m := e.met
		var stageStart time.Time
		if m != nil {
			stageStart = time.Now()
			qw := stageStart.Sub(it.enq)
			m.imputeWait.Observe(int64(qw))
			if it.tr != nil {
				it.tr.QueueWaitNs = int64(qw)
			}
		}
		im, bd := e.step.Impute(it.rec)
		var sw metrics.Stopwatch
		sw.Start()
		prof := e.step.Profile(im)
		out := &profileOut{im: im, prof: prof}
		out.homes, out.slot = e.homeShards(prof)
		bd.ER += sw.Lap() // profile construction is ER-phase cost in core
		e.acc.AddBreakdown(bd)
		it.prof = out
		if m != nil {
			d := time.Since(stageStart)
			m.imputeTime.Observe(int64(d))
			if it.tr != nil {
				it.tr.ImputeNs = int64(d)
			}
		}
		select {
		case e.imputedOut <- it:
		case <-e.ctx.Done():
			return
		}
	}
}

// router is the sequential heart of the pipeline: it restores submission
// order after the parallel impute stage, advances the sliding windows,
// and fans commands out to the shards and the merger.
func (e *Engine) router() {
	defer func() {
		for _, ch := range e.shardCh {
			close(ch)
		}
		close(e.hdrCh)
	}()
	// live (owned by this goroutine from here on; seeded by newEngine or a
	// snapshot restore) tracks resident RIDs across all shards so
	// duplicates are rejected per-tuple instead of failing a shard's grid
	// insert.
	buf := reorder[*item]{next: e.startSeq}
	for it := range e.imputedOut {
		ok := true
		buf.add(it.seq, it, func(next *item) {
			if ok {
				ok = e.route(next)
			}
		})
		if !ok {
			// Keep draining imputedOut so impute workers can exit; the
			// context is cancelled, their sends abort.
			return
		}
	}
}

// route processes one in-order arrival: expiry, then one command per shard.
// Duplicate live RIDs are rejected before touching window or grid state.
// The per-shard commands go out before the header: the router finishes
// writing the arrival's trace fields only after the fan-out, and the header
// send is the merger's happens-before edge for reading them.
func (e *Engine) route(it *item) bool {
	m := e.met
	var routeStart time.Time
	if m != nil {
		routeStart = time.Now()
	}
	if _, dup := e.live[it.rec.RID]; dup {
		hdr := header{seq: it.seq, rid: it.rec.RID, skip: true}
		if m != nil {
			d := time.Since(routeStart)
			m.routeTime.Observe(int64(d))
			if tr := it.tr; tr != nil {
				tr.Rejected = true
				tr.Slot = -1
				tr.RouteNs = int64(d)
				hdr.tr = tr
			}
		}
		select {
		case e.hdrCh <- hdr:
			return true
		case <-e.ctx.Done():
			return false
		}
	}
	expired, err := e.pushWindow(it.rec)
	if err != nil {
		e.fail(err)
		return false
	}
	var rids []string
	for _, x := range expired {
		rids = append(rids, x.RID)
		if slot, ok := e.live[x.RID]; ok && slot >= 0 {
			e.slotWeight[slot].Add(-1)
		}
		delete(e.live, x.RID)
	}
	e.live[it.rec.RID] = it.prof.slot
	if it.prof.slot >= 0 {
		e.slotWeight[it.prof.slot].Add(1)
	}
	homes := it.prof.homes
	tr := it.tr
	if tr != nil {
		tr.Slot = it.prof.slot
		tr.Homes = homes
		// Allocated before the fan-out: each shard writes only its own index
		// (ordered by its partial send), the merger reads after all partials.
		tr.ShardNs = make([]int64, len(e.shardCh))
	}
	for i, ch := range e.shardCh {
		cmd := shardCmd{it: it, removes: rids}
		for _, h := range homes {
			if h == i {
				cmd.insert = true
				break
			}
		}
		select {
		case ch <- cmd:
		case <-e.ctx.Done():
			return false
		}
	}
	hdr := header{seq: it.seq, rid: it.rec.RID, expired: rids}
	if m != nil {
		d := time.Since(routeStart)
		m.routeTime.Observe(int64(d))
		if tr != nil {
			tr.RouteNs = int64(d)
			hdr.tr = tr
		}
	}
	select {
	case e.hdrCh <- hdr:
	case <-e.ctx.Done():
		return false
	}
	return true
}

// pushWindow mirrors core.Processor's window handling.
func (e *Engine) pushWindow(r *tuple.Record) ([]*tuple.Record, error) {
	if e.timeWins != nil {
		if r.Stream < 0 || r.Stream >= len(e.timeWins) {
			return nil, fmt.Errorf("engine: record %s has stream %d, have %d streams",
				r.RID, r.Stream, len(e.timeWins))
		}
		tw := e.timeWins[r.Stream]
		if err := tw.Push(r); err != nil {
			return nil, err
		}
		return tw.Advance(r.Seq), nil
	}
	expired, err := e.windows.Push(r)
	if err != nil {
		return nil, err
	}
	if expired == nil {
		return nil, nil
	}
	return []*tuple.Record{expired}, nil
}

// ResultSet returns a point-in-time copy of the live entity set, sorted by
// pair key (same contract as core.ResultSet.Pairs).
func (e *Engine) ResultSet() []core.Pair {
	e.resultsMu.RLock()
	defer e.resultsMu.RUnlock()
	return e.results.Pairs()
}

// ResultCount returns the number of live pairs.
func (e *Engine) ResultCount() int {
	e.resultsMu.RLock()
	defer e.resultsMu.RUnlock()
	return e.results.Len()
}

// Completed returns how many arrivals have been fully processed.
func (e *Engine) Completed() int64 {
	e.resultsMu.RLock()
	defer e.resultsMu.RUnlock()
	return e.completed
}
