// Package engine is the sharded, pipelined execution layer over the TER-iDS
// operator: a concurrency harness around core.Step that scales the hot path
// across cores without changing the algorithm's semantics.
//
// The ER-grid is partitioned into K shards. Each shard worker goroutine owns
// one grid.Grid partition — its slice of the windowed tuples — and processes
// a FIFO command stream. An arriving tuple flows through a bounded-channel
// pipeline:
//
//	Submit → [impute workers ×W] → [router] → [shard workers ×K] → [merger]
//
// Imputation (the CDD-index/DR-index join) reads only immutable Shared
// state, so a pool of W workers imputes arrivals concurrently; a reorder
// buffer in the router restores submission order. The router owns the
// per-stream sliding windows (O(1) ring-buffer pushes — sequential state
// that must see arrivals in order), computes expirations, and fans each
// arrival out to every shard: candidates may reside anywhere, so resolution
// is a broadcast, while residency (grid insertion) is routed by the hash of
// the tuple's dominant topic, with a broadcast-residency path for tuples
// whose topic distribution straddles shards (see topic.go). Each shard
// resolves the query against its own partition concurrently with the other
// shards; the merger joins the K partial results per arrival, restores
// deterministic output order with a sequence-numbered reorder buffer, and
// maintains the live entity set.
//
// Determinism: for the same submission order, emitted pairs are identical —
// order and probabilities included — to single-threaded core.Processor.
// Every pruning rule is safe under partitioning (cell aggregates over any
// subset of residents still bound each member), so the surviving pair set
// never depends on the partitioning; the merger sorts each arrival's pairs
// by the candidate's global arrival sequence, which is exactly the grid
// insertion-ordinal order the Processor emits.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"terids/internal/core"
	"terids/internal/metrics"
	"terids/internal/obs"
	"terids/internal/prune"
	"terids/internal/stream"
	"terids/internal/tuple"
	"terids/internal/wal"
)

// ErrOverloaded is returned by TrySubmit when the ingest queue is full
// (backpressure; serving layers map it to HTTP 429).
var ErrOverloaded = errors.New("engine: ingest queue full")

// ErrClosed is returned by submissions after Close.
var ErrClosed = errors.New("engine: closed")

// ErrInvalidRecord wraps synchronous Submit/TrySubmit rejections (foreign
// schema, out-of-range stream id). Invalid input never reaches — and never
// poisons — the pipeline; serving layers map it to HTTP 400.
var ErrInvalidRecord = errors.New("invalid record")

// Config tunes the engine around an embedded core configuration.
type Config struct {
	// Core is the TER-iDS problem configuration (validated by core).
	Core core.Config
	// Shards is K, the number of ER-grid partitions / shard workers.
	// Default: GOMAXPROCS capped at 8.
	Shards int
	// ImputeWorkers sizes the imputation pool. Default: Shards.
	ImputeWorkers int
	// QueueDepth bounds each pipeline channel. Default: 64.
	QueueDepth int
	// OnResult, when set, is invoked by the merger for every processed
	// arrival, in submission order. It must not call back into the engine's
	// submission path or Checkpoint (both would deadlock the merger).
	OnResult func(Result)
	// WAL, when set, makes every accepted arrival durable before it enters
	// the pipeline: Submit reserves the arrival's slot in the log under the
	// submission lock (preserving sequence order) and then waits for the
	// group commit outside it, so concurrent submitters share fsyncs. A
	// result is only ever emitted for an arrival the log already holds.
	// Appends during recovery replay are idempotent no-ops (the log already
	// holds those sequences). The engine does not own the log: closing the
	// engine leaves it open, and it must outlive the engine.
	WAL *wal.Log
	// Rebalance configures the adaptive skew monitor (see rebalance.go).
	// The zero value disables it; manual Rebalance calls work regardless.
	Rebalance RebalanceConfig
	// Obs selects the registry the engine publishes its stage metrics into.
	// Nil means obs.Default(), the process-wide registry /metrics serves.
	Obs *obs.Registry
	// Journal selects the event journal lifecycle events (rebalances,
	// pipeline failure) are recorded into. Nil means obs.DefaultJournal(),
	// the journal GET /events serves; ObsOff disables it with the rest of
	// the instrumentation.
	Journal *obs.Journal
	// ObsOff disables all metric and trace instrumentation (used by
	// deep-replay throwaway engines and overhead benchmarks).
	ObsOff bool
	// TraceSample, when > 0, records every Nth arrival's full stage timeline
	// into a bounded ring readable via Traces() (served at GET /trace).
	TraceSample int
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.ImputeWorkers <= 0 {
		c.ImputeWorkers = c.Shards
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
}

// Result is the outcome of one processed arrival.
type Result struct {
	// Seq is the 0-based arrival index in submission order.
	Seq int64
	// RID is the arriving record's identifier.
	RID string
	// Rejected reports that the arrival duplicated a live resident's RID
	// and was dropped before touching any state (the Processor would error
	// at grid insertion instead; the engine rejects up front so one bad
	// tuple cannot poison the pipeline).
	Rejected bool
	// Expired lists the RIDs this arrival evicted from the windows.
	Expired []string
	// Pairs are the new matches, in the exact order core.Processor.Advance
	// would return them.
	Pairs []core.Pair
}

// item is one arrival moving through the pipeline. Items are pooled (see
// pool.go): submitBatch gets one, the merger returns it at finalize.
type item struct {
	seq int64
	rec *tuple.Record
	// prof is embedded by value so the impute stage's product costs no
	// allocation of its own.
	prof profileOut
	// enq is when the arrival entered the ingest queue (set only when
	// instrumentation is on; on the durable path, after the group commit so
	// queue wait excludes the WAL wait).
	enq time.Time
	// tr is the arrival's sampled trace, nil for unsampled arrivals.
	tr *Trace
}

// profileOut is the impute stage's product. homes always aliases one of the
// engine's interned home slices (see topic.go) and must never be mutated.
type profileOut struct {
	im    *tuple.Imputed
	prof  *prune.Profile
	homes []int
	// slot is the layout slot the arrival's residency is charged to (-1 for
	// broadcast residents) — the rebalancer's movable unit of load.
	slot int
}

// header is the router → merger side channel: per-arrival bookkeeping the
// merger needs to finalize seq in order.
type header struct {
	seq     int64
	rid     string
	expired []string
	// skip marks a rejected duplicate: the merger expects no shard
	// partials for this sequence number.
	skip bool
	// tr carries the arrival's sampled trace to the merger, which completes
	// and retains it. The router writes all trace fields (and allocates
	// ShardNs) before sending the header, so this send is the merger's
	// happens-before edge for reading them.
	tr *Trace
	// it hands the pooled item wrapper to the merger for recycling at
	// finalize — by then every shard's partial send happens-before, so no
	// stage can still be reading it.
	it *item
}

// Engine is the sharded concurrent TER-iDS executor. Submit goroutines,
// the pipeline stages, and stats readers may all run concurrently.
type Engine struct {
	step *core.Step
	cfg  Config
	// autoImpute records that the caller left ImputeWorkers unset (<= 0), so
	// the pool was defaulted to Shards. Rebalance keeps the two in lockstep
	// for auto-sized engines; an explicit ImputeWorkers stays fixed.
	autoImpute bool

	ctx    context.Context
	cancel context.CancelFunc

	// subMu serializes sequence assignment and WAL reservation (+ closed).
	// It is NEVER held across a pipeline channel send: a stalled pipeline
	// must not serialize other submitters' WAL reservations (or wedge
	// TrySubmit/Close/Checkpoint behind a blocked send). The router's
	// seq-keyed reorder window restores submission order, so injection can
	// happen outside the lock.
	//terids:nosend
	subMu  sync.Mutex
	closed bool
	// inflight tracks submitters between sequence assignment and pipeline
	// injection; Close and Rebalance wait for them before closing imputeIn
	// (an assigned sequence number MUST reach the pipeline, or the merger's
	// reorder buffer would wait for it forever).
	inflight sync.WaitGroup
	// seq is written only under subMu; atomic so Stats() can read it
	// without queueing behind a backpressured Submit.
	seq atomic.Int64
	// startSeq is the first sequence number this engine assigns: 0 for a
	// fresh engine, the checkpoint watermark after NewFromSnapshot. The
	// router's and merger's reorder buffers release from it.
	startSeq int64

	// stateMu guards the fields a Rebalance swaps out — shards, shardCh,
	// layout, cfg.Shards, the pipeline channels, the windows — against
	// concurrent readers outside the pipeline (Stats, Imbalance,
	// BalancedLayout). Pipeline goroutines never take it: they are created
	// after a swap completes and stopped before the next one begins.
	stateMu sync.RWMutex

	// The pipeline channels carry batches: submitBatch splits a batch into
	// impute-sized chunks of []*item, the router re-groups in-order items
	// and fans out one shardCmd (N tuples) per shard per batch, shards
	// answer with one multi-entry partial, and headers travel as one slice
	// per routed batch — a single channel hop amortized over N arrivals at
	// every stage.
	imputeIn   chan []*item
	imputedOut chan []*item
	shardCh    []chan shardCmd
	hdrCh      chan []header
	partials   chan partial
	// shardScratch holds the router's per-shard batch under construction
	// (router-owned; length tracks cfg.Shards across rebalances). A slot is
	// nil after its batch is handed to the shard and refilled from the pool
	// on the next routed run.
	shardScratch [][]shardItem

	// Hot-path pools (see pool.go for the ownership hand-off rules).
	itemPool        itemPool
	itemsPool       *slicePool[*item]
	shardItemsPool  *slicePool[shardItem]
	headersPool     *slicePool[header]
	partEntriesPool *slicePool[partialEntry]
	shardPairsPool  *slicePool[shardPair]
	walBufPool      *slicePool[wal.Entry]

	// Interned topic tables (see topic.go): kwSlots caches each shared
	// keyword's layout slot (keywords are immutable for the engine's life);
	// homeSingle[s] and homeAll are the shared, read-only home-shard slices
	// homeShards returns, rebuilt whenever K changes.
	kwSlots    []int
	homeSingle [][]int
	homeAll    []int

	imputeWG sync.WaitGroup
	shardWG  sync.WaitGroup
	mergeWG  sync.WaitGroup

	// windows is the router-owned sequential stream state; live maps each
	// resident RID (duplicate rejection) to the layout slot its residency is
	// charged to (-1 for broadcast residents).
	windows  *stream.MultiWindow
	timeWins []*stream.TimeWindow
	live     map[string]int

	shards []*shard
	// layout is the topic-hash slot → shard table (see rebalance.go);
	// slotWeight counts single-home residents per slot (router-written,
	// monitor-read), the weights BalancedLayout packs.
	layout     []int
	slotWeight []atomic.Int64

	reb         rebState
	monitorStop chan struct{}
	monitorWG   sync.WaitGroup

	// met is nil when Config.ObsOff is set — every stage guards its
	// instrumentation with one pointer check. traces is nil unless
	// Config.TraceSample > 0 (and instrumentation is on). jr is the
	// lifecycle event journal (nil under ObsOff; Record is nil-safe).
	met    *engineMetrics
	traces *obs.Ring[Trace]
	jr     *obs.Journal

	// rebalancing is set for the span of an online rebalance — the pause
	// window during which /readyz reports not-ready.
	rebalancing atomic.Bool

	failOnce sync.Once
	failErr  error
	failMu   sync.Mutex

	acc       metrics.Accumulator
	resultsMu sync.RWMutex
	results   *core.ResultSet
	completed int64 // guarded by resultsMu (written by merger)
	rejected  int64 // guarded by resultsMu (written by merger)
	// drained (on resultsMu) is broadcast by the merger after every
	// finalized arrival and on pipeline failure; Checkpoint waits on it for
	// the barrier (completed == seq).
	drained *sync.Cond
}

// New builds and starts the engine over pre-computed Shared state.
func New(sh *core.Shared, cfg Config) (*Engine, error) {
	e, err := newEngine(sh, cfg)
	if err != nil {
		return nil, err
	}
	e.start()
	e.startMonitor()
	return e, nil
}

// newEngine builds the engine — channels, windows, shard grids — without
// launching the pipeline, so NewFromSnapshot can load state first.
func newEngine(sh *core.Shared, cfg Config) (*Engine, error) {
	autoImpute := cfg.ImputeWorkers <= 0
	cfg.fill()
	step, err := core.NewStep(sh, cfg.Core)
	if err != nil {
		return nil, err
	}
	cfg.Core = step.Config()
	e := &Engine{
		step:       step,
		cfg:        cfg,
		autoImpute: autoImpute,
		imputeIn:   make(chan []*item, cfg.QueueDepth),
		imputedOut: make(chan []*item, cfg.QueueDepth),
		hdrCh:      make(chan []header, cfg.QueueDepth),
		partials:   make(chan partial, cfg.QueueDepth*cfg.Shards),
		results:    core.NewResultSet(),
		live:       make(map[string]int),
		layout:     DefaultLayout(cfg.Shards).Slots,
		slotWeight: make([]atomic.Int64, LayoutSlots),
	}
	e.drained = sync.NewCond(&e.resultsMu)
	e.ctx, e.cancel = context.WithCancel(context.Background())
	if !cfg.ObsOff {
		reg := cfg.Obs
		if reg == nil {
			reg = obs.Default()
		}
		e.met = newEngineMetrics(reg)
		if cfg.TraceSample > 0 {
			e.traces = obs.NewRing[Trace](traceRingCap)
		}
		e.jr = cfg.Journal
		if e.jr == nil {
			e.jr = obs.DefaultJournal()
		}
	}
	ps := func(string) poolStats { return poolStats{} }
	if e.met != nil {
		ps = e.met.poolStats
	}
	e.itemPool.st = ps("item")
	e.itemsPool = newSlicePool[*item](ps("item_chunk"))
	e.shardItemsPool = newSlicePool[shardItem](ps("shard_batch"))
	e.headersPool = newSlicePool[header](ps("header_batch"))
	e.partEntriesPool = newSlicePool[partialEntry](ps("partial_batch"))
	e.shardPairsPool = newSlicePool[shardPair](ps("shard_pairs"))
	e.walBufPool = newSlicePool[wal.Entry](ps("wal_entries"))
	kws := step.Shared().Keywords
	e.kwSlots = make([]int, len(kws))
	for i, kw := range kws {
		e.kwSlots[i] = slotOf(kw)
	}
	e.internHomes()

	cc := cfg.Core
	if cc.TimeSpan > 0 {
		e.timeWins = make([]*stream.TimeWindow, cc.Streams)
		for i := range e.timeWins {
			tw, err := stream.NewTimeWindow(cc.TimeSpan)
			if err != nil {
				return nil, err
			}
			e.timeWins[i] = tw
		}
	} else {
		mw, err := stream.NewMultiWindow(cc.Streams, cc.WindowSize)
		if err != nil {
			return nil, err
		}
		e.windows = mw
	}

	e.shardCh = make([]chan shardCmd, cfg.Shards)
	e.shardScratch = make([][]shardItem, cfg.Shards)
	e.shards = make([]*shard, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		g, err := step.NewGrid()
		if err != nil {
			return nil, err
		}
		e.shardCh[i] = make(chan shardCmd, cfg.QueueDepth)
		e.shards[i] = newShard(i, e, g)
	}
	return e, nil
}

// start launches the pipeline goroutines and wires the shutdown cascade:
// closing imputeIn drains the stages left to right.
func (e *Engine) start() {
	for w := 0; w < e.cfg.ImputeWorkers; w++ {
		e.imputeWG.Add(1)
		go e.imputeWorker()
	}
	go func() {
		e.imputeWG.Wait()
		close(e.imputedOut)
	}()
	go e.router()
	for _, s := range e.shards {
		e.shardWG.Add(1)
		go s.run()
	}
	go func() {
		e.shardWG.Wait()
		close(e.partials)
	}()
	e.mergeWG.Add(1)
	go e.merger()
}

// fail records the first pipeline error and cancels everything in flight.
func (e *Engine) fail(err error) {
	e.failOnce.Do(func() {
		e.failMu.Lock()
		e.failErr = err
		e.failMu.Unlock()
		e.jr.Record("pipeline_failed", "pipeline failed, engine unusable",
			map[string]any{"error": err.Error()})
		e.cancel()
		// Wake a Checkpoint barrier that is waiting for a drain which will
		// never complete. Broadcast under resultsMu: a waiter between its
		// predicate check and Wait() still holds the lock, so a lock-free
		// broadcast could slip into that window and be lost forever.
		e.resultsMu.Lock()
		e.drained.Broadcast()
		e.resultsMu.Unlock()
	})
}

// Err returns the first pipeline error, if any.
func (e *Engine) Err() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failErr
}

// Submit enqueues one arrival, blocking while the ingest queue is full
// (backpressure). Submission order defines the engine's arrival order.
func (e *Engine) Submit(r *tuple.Record) error {
	one := [1]*tuple.Record{r}
	return e.submitBatch(one[:], true)
}

// TrySubmit enqueues one arrival without blocking; it returns ErrOverloaded
// when the ingest queue is full.
func (e *Engine) TrySubmit(r *tuple.Record) error {
	one := [1]*tuple.Record{r}
	return e.submitBatch(one[:], false)
}

// SubmitBatch enqueues a batch of arrivals as one submission: the whole
// batch is validated up front, its sequence numbers are assigned and its WAL
// slots reserved under one lock acquisition, and it enters the pipeline in
// impute-sized chunks. The batch is accepted or rejected atomically —
// on error no record of it has been enqueued. Output is byte-identical to
// submitting the records one by one with Submit, in slice order. The engine
// does not retain recs itself, but it keeps references to the Records
// (windows, grids), which must not be mutated after submission.
func (e *Engine) SubmitBatch(recs []*tuple.Record) error {
	return e.submitBatch(recs, true)
}

// TrySubmitBatch is SubmitBatch with backpressure: unless the ingest queue
// has room for the whole batch, it returns ErrOverloaded instead of
// blocking — the batch is admitted or rejected atomically, never partially.
func (e *Engine) TrySubmitBatch(recs []*tuple.Record) error {
	return e.submitBatch(recs, false)
}

// chunkSize picks the impute-chunk granularity for an n-record batch:
// enough chunks to keep the impute pool busy (about two per worker), capped
// so one chunk never serializes a large slice of the batch on one worker.
func (e *Engine) chunkSize(n int) int {
	c := (n + 2*e.cfg.ImputeWorkers - 1) / (2 * e.cfg.ImputeWorkers)
	if c < 1 {
		c = 1
	}
	if c > 32 {
		c = 32
	}
	return c
}

//terids:hotpath
func (e *Engine) submitBatch(recs []*tuple.Record, wait bool) error {
	if len(recs) == 0 {
		return nil
	}
	schema := e.step.Shared().Schema
	for _, r := range recs {
		if r == nil {
			return fmt.Errorf("engine: nil record in batch: %w", ErrInvalidRecord)
		}
		if r.Schema() != schema {
			return fmt.Errorf("engine: record %s uses a foreign schema: %w", r.RID, ErrInvalidRecord)
		}
		if r.Stream < 0 || r.Stream >= e.cfg.Core.Streams {
			return fmt.Errorf("engine: record %s has stream %d, have %d streams: %w",
				r.RID, r.Stream, e.cfg.Core.Streams, ErrInvalidRecord)
		}
	}
	e.subMu.Lock()
	if e.closed {
		e.subMu.Unlock()
		return ErrClosed
	}
	if err := e.Err(); err != nil {
		e.subMu.Unlock()
		return err
	}
	// Backpressure check happens before the batch commits to its sequence
	// numbers: once sequences are assigned the batch MUST reach the
	// pipeline, so a non-waiting batch is admitted only if ALL of its
	// impute chunks fit in the queue's current free space. For a single
	// record this is exactly the old "queue full" check; for a batch it
	// keeps TrySubmitBatch from blocking mid-injection after admission
	// (free slots may still be stolen by a concurrent submitter in the
	// window before injection — that residual block is brief and bounded).
	if !wait {
		cs := e.chunkSize(len(recs))
		chunks := (len(recs) + cs - 1) / cs
		if len(e.imputeIn)+chunks > cap(e.imputeIn) {
			e.subMu.Unlock()
			return ErrOverloaded
		}
	}
	n := len(recs)
	base := e.seq.Load()
	var tk wal.Ticket
	durable := e.cfg.WAL != nil
	if durable {
		entries := e.walBufPool.get(n)
		for i, r := range recs {
			entries = append(entries, walEntry(base+int64(i), r))
		}
		t, err := e.cfg.WAL.ReserveN(entries, wait)
		e.walBufPool.put(entries)
		if err != nil {
			e.subMu.Unlock()
			if errors.Is(err, wal.ErrFull) {
				return ErrOverloaded
			}
			return fmt.Errorf("engine: wal reserve: %w", err)
		}
		tk = t
	}
	m := e.met
	var now time.Time
	if m != nil {
		//lint:ignore nodeterm queue-wait instrumentation; never touches emitted bytes
		now = time.Now()
	}
	items := e.itemsPool.get(n)
	for i, r := range recs {
		it := e.itemPool.get()
		it.seq = base + int64(i)
		it.rec = r
		if m != nil {
			it.enq = now
			if e.traces != nil && it.seq%int64(e.cfg.TraceSample) == 0 {
				it.tr = &Trace{Seq: it.seq, RID: r.RID, Stream: r.Stream, start: now}
				m.traceSampled.Inc()
			}
		}
		items = append(items, it)
	}
	e.seq.Store(base + int64(n))
	e.inflight.Add(1)
	if m != nil {
		m.arrivals.Add(int64(n))
		m.batchEntries.Observe(int64(n))
	}
	e.subMu.Unlock()
	defer e.inflight.Done()
	if durable {
		// Wait for the group commit outside the submission lock, so
		// concurrent submitters batch into shared fsyncs.
		if err := tk.Wait(); err != nil {
			err = fmt.Errorf("engine: wal append: %w", err)
			e.fail(err)
			return err
		}
		if m != nil {
			//lint:ignore nodeterm WAL-wait instrumentation; never touches emitted bytes
			done := time.Now()
			walWait := done.Sub(now)
			m.walWait.Observe(int64(walWait))
			for _, it := range items {
				if it.tr != nil {
					it.tr.WALWaitNs = int64(walWait)
				}
				// Restart the queue-wait clock: time spent in the group
				// commit is WAL wait, not ingest-queue wait.
				it.enq = done
			}
		}
	}
	// Inject outside subMu — the router's reorder window restores sequence
	// order, so a pipeline stalled here cannot serialize other submitters'
	// WAL reservations (or wedge TrySubmit behind the lock).
	cs := e.chunkSize(n)
	if cs >= n {
		return e.inject(items)
	}
	for off := 0; off < n; off += cs {
		end := off + cs
		if end > n {
			end = n
		}
		chunk := e.itemsPool.get(cs)
		chunk = append(chunk, items[off:end]...)
		if err := e.inject(chunk); err != nil {
			e.itemsPool.put(items)
			return err
		}
	}
	e.itemsPool.put(items)
	return nil
}

// inject sends one impute chunk into the pipeline; the chunk's ownership
// passes to the impute worker that receives it.
//
//terids:hotpath
func (e *Engine) inject(chunk []*item) error {
	select {
	case e.imputeIn <- chunk:
		return nil
	case <-e.ctx.Done():
		// Only a pipeline failure cancels the context while submitters are
		// inflight (Close and Rebalance wait for us first).
		if err := e.Err(); err != nil {
			return err
		}
		return ErrClosed
	}
}

// walEntry converts one accepted arrival into its log form.
func walEntry(seq int64, r *tuple.Record) wal.Entry {
	vals := make([]string, r.D())
	for j := range vals {
		vals[j] = r.Value(j)
	}
	return wal.Entry{
		Seq:      seq,
		RID:      r.RID,
		Stream:   r.Stream,
		TupleSeq: r.Seq,
		EntityID: r.EntityID,
		Values:   vals,
	}
}

// Close drains the pipeline (every submitted arrival is fully processed),
// stops all workers, and returns the first pipeline error, if any. The
// engine cannot be reused afterwards; the final entity set stays readable.
func (e *Engine) Close() error {
	e.subMu.Lock()
	first := !e.closed
	e.closed = true
	e.subMu.Unlock()
	if first {
		// The skew monitor must stop before intake closes: a rebalance in
		// flight holds the submission lock until it finishes, and the next
		// trigger would hit ErrClosed anyway.
		if e.monitorStop != nil {
			close(e.monitorStop)
		}
		e.monitorWG.Wait()
		// Durable-path submitters between WAL reservation and injection must
		// finish before the intake channel closes: their sequence numbers
		// are already assigned and the merger is waiting for them.
		e.inflight.Wait()
		close(e.imputeIn)
	}
	e.mergeWG.Wait()
	e.cancel()
	return e.Err()
}

// imputeWorker runs the parallel imputation stage: the index join plus
// profile construction and home-shard selection, all over read-only state.
// Chunks move through whole: the worker imputes every item in its chunk and
// forwards the chunk to the router in one send.
//
//terids:hotpath
func (e *Engine) imputeWorker() {
	defer e.imputeWG.Done()
	for chunk := range e.imputeIn {
		m := e.met
		var stageStart time.Time
		if m != nil {
			//lint:ignore nodeterm stage-latency instrumentation; never touches emitted bytes
			stageStart = time.Now()
		}
		for _, it := range chunk {
			if m != nil {
				qw := stageStart.Sub(it.enq)
				m.imputeWait.Observe(int64(qw))
				if it.tr != nil {
					it.tr.QueueWaitNs = int64(qw)
				}
			}
			im, bd := e.step.Impute(it.rec)
			var sw metrics.Stopwatch
			sw.Start()
			prof := e.step.Profile(im)
			it.prof.im = im
			it.prof.prof = prof
			it.prof.homes, it.prof.slot = e.homeShards(prof)
			bd.ER += sw.Lap() // profile construction is ER-phase cost in core
			e.acc.AddBreakdown(bd)
		}
		if m != nil {
			// Whole-chunk impute cost, attributed evenly across the chunk.
			//lint:ignore nodeterm stage-latency instrumentation; never touches emitted bytes
			d := time.Since(stageStart)
			per := int64(d) / int64(len(chunk))
			for _, it := range chunk {
				m.imputeTime.Observe(per)
				if it.tr != nil {
					it.tr.ImputeNs = per
				}
			}
		}
		select {
		case e.imputedOut <- chunk:
		case <-e.ctx.Done():
			return
		}
	}
}

// router is the sequential heart of the pipeline: it restores submission
// order after the parallel impute stage, advances the sliding windows,
// and fans commands out to the shards and the merger in per-chunk batches.
//
//terids:hotpath
func (e *Engine) router() {
	defer func() {
		for _, ch := range e.shardCh {
			close(ch)
		}
		close(e.hdrCh)
	}()
	// live (owned by this goroutine from here on; seeded by newEngine or a
	// snapshot restore) tracks resident RIDs across all shards so
	// duplicates are rejected per-tuple instead of failing a shard's grid
	// insert.
	win := seqWindow[*item]{next: e.startSeq}
	// released is the router's reusable scratch run of in-order items: each
	// incoming chunk releases zero or more arrivals past the reorder
	// frontier, and the whole run goes to the shards as one batch.
	released := make([]*item, 0, 64)
	for chunk := range e.imputedOut {
		for _, it := range chunk {
			win.put(it.seq, it)
		}
		e.itemsPool.put(chunk)
		released = released[:0]
		for {
			it, ok := win.popNext()
			if !ok {
				break
			}
			released = append(released, it)
		}
		if len(released) == 0 {
			continue
		}
		if !e.routeBatch(released) {
			// Keep draining imputedOut so impute workers can exit; the
			// context is cancelled, their sends abort.
			for i := range released {
				released[i] = nil
			}
			return
		}
	}
}

// routeBatch processes a run of in-order arrivals: expiry and window/live
// bookkeeping per arrival, then ONE command per shard carrying the whole run,
// and finally the run's headers in one send. Duplicate live RIDs are rejected
// before touching window or grid state. The per-shard commands go out before
// the headers: the router finishes writing each arrival's trace fields before
// the fan-out, and the header send is the merger's happens-before edge for
// reading them.
//
//terids:hotpath
func (e *Engine) routeBatch(items []*item) bool {
	m := e.met
	var routeStart time.Time
	if m != nil {
		//lint:ignore nodeterm stage-latency instrumentation; never touches emitted bytes
		routeStart = time.Now()
	}
	k := len(e.shardCh)
	batches := e.shardScratch
	for i := range batches {
		if batches[i] == nil {
			batches[i] = e.shardItemsPool.get(len(items))
		}
	}
	hdrs := e.headersPool.get(len(items))
	for _, it := range items {
		if _, dup := e.live[it.rec.RID]; dup {
			hdr := header{seq: it.seq, rid: it.rec.RID, skip: true, it: it}
			if tr := it.tr; tr != nil {
				tr.Rejected = true
				tr.Slot = -1
				hdr.tr = tr
			}
			hdrs = append(hdrs, hdr)
			continue
		}
		expired, err := e.pushWindow(it.rec)
		if err != nil {
			e.fail(err)
			e.headersPool.put(hdrs)
			return false
		}
		var rids []string
		for _, x := range expired {
			rids = append(rids, x.RID)
			if slot, ok := e.live[x.RID]; ok && slot >= 0 {
				e.slotWeight[slot].Add(-1)
			}
			delete(e.live, x.RID)
		}
		e.live[it.rec.RID] = it.prof.slot
		if it.prof.slot >= 0 {
			e.slotWeight[it.prof.slot].Add(1)
		}
		homes := it.prof.homes
		if tr := it.tr; tr != nil {
			tr.Slot = it.prof.slot
			tr.Homes = homes
			// Allocated before the fan-out: each shard writes only its own
			// index (ordered by its partial send), the merger reads after all
			// partials.
			tr.ShardNs = make([]int64, k)
		}
		for i := 0; i < k; i++ {
			si := shardItem{it: it, removes: rids}
			for _, h := range homes {
				if h == i {
					si.insert = true
					break
				}
			}
			batches[i] = append(batches[i], si)
		}
		hdrs = append(hdrs, header{seq: it.seq, rid: it.rec.RID, expired: rids, it: it, tr: it.tr})
	}
	if m != nil {
		// Whole-run route cost, attributed evenly across the run; written
		// before the fan-out so the header send publishes it.
		//lint:ignore nodeterm stage-latency instrumentation; never touches emitted bytes
		per := int64(time.Since(routeStart)) / int64(len(items))
		for i := range hdrs {
			m.routeTime.Observe(per)
			if tr := hdrs[i].tr; tr != nil {
				tr.RouteNs = per
			}
		}
	}
	for i, ch := range e.shardCh {
		if len(batches[i]) == 0 {
			continue
		}
		select {
		case ch <- shardCmd{items: batches[i]}:
			batches[i] = nil
		case <-e.ctx.Done():
			e.headersPool.put(hdrs)
			return false
		}
	}
	select {
	case e.hdrCh <- hdrs:
	case <-e.ctx.Done():
		return false
	}
	return true
}

// pushWindow mirrors core.Processor's window handling.
//
//terids:hotpath
func (e *Engine) pushWindow(r *tuple.Record) ([]*tuple.Record, error) {
	if e.timeWins != nil {
		if r.Stream < 0 || r.Stream >= len(e.timeWins) {
			return nil, fmt.Errorf("engine: record %s has stream %d, have %d streams",
				r.RID, r.Stream, len(e.timeWins))
		}
		tw := e.timeWins[r.Stream]
		if err := tw.Push(r); err != nil {
			return nil, err
		}
		return tw.Advance(r.Seq), nil
	}
	expired, err := e.windows.Push(r)
	if err != nil {
		return nil, err
	}
	if expired == nil {
		return nil, nil
	}
	return []*tuple.Record{expired}, nil
}

// ResultSet returns a point-in-time copy of the live entity set, sorted by
// pair key (same contract as core.ResultSet.Pairs).
func (e *Engine) ResultSet() []core.Pair {
	e.resultsMu.RLock()
	defer e.resultsMu.RUnlock()
	return e.results.Pairs()
}

// ResultCount returns the number of live pairs.
func (e *Engine) ResultCount() int {
	e.resultsMu.RLock()
	defer e.resultsMu.RUnlock()
	return e.results.Len()
}

// Completed returns how many arrivals have been fully processed.
func (e *Engine) Completed() int64 {
	e.resultsMu.RLock()
	defer e.resultsMu.RUnlock()
	return e.completed
}
