// Adaptive shard rebalancing: real streams are topic-skewed (the Zipfian
// case of the TER experiments), so a static topic-hash partitioning slowly
// concentrates residents — and therefore resolution work — on a few shards,
// eroding the K-way speedup the engine exists to deliver. The rebalancer
// watches per-shard ER-time — where resolution CPU actually goes — with
// resident counts as fallback, and when the imbalance
// ratio stays over a configured threshold for a sustained window it performs
// an online rebalance: barrier-checkpoint at the current watermark, rebuild
// the router/window/shard state under a new Layout (a weighted topic-slot →
// shard table, and optionally a new K), and resume — in place, on the same
// *Engine, with zero lost or duplicated results. The WAL, the background
// checkpointer, and every OnResult subscriber stay attached throughout;
// checkpoints taken after a rebalance carry the layout (snapshot format v2)
// so crash recovery resumes balanced.
//
// Correctness is inherited, not re-proven: residency is pure load placement
// (resolution broadcasts to all shards), so any layout emits byte-identical
// pairs, and the rebalance itself is checkpoint + restore — the exact path
// the K→K' reshard property tests already pin down.
package engine

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"terids/internal/snapshot"
	"terids/internal/stream"
	"terids/internal/tuple"
)

// LayoutSlots is the size of the topic-hash slot table. 256 slots gives the
// balancer fine-grained movable units while keeping the table a few hundred
// bytes in every checkpoint.
const LayoutSlots = 256

// maxAdoptShards bounds the shard count an auto-sizing restore (Shards == 0)
// will adopt from a checkpoint. Checkpoints are CRC-checked, not
// authenticated: a tampered Shards field must not be able to make recovery
// spawn an arbitrary number of goroutines and grids. Mirrors
// cliutil.MaxShards, the cap every flag path enforces.
const maxAdoptShards = 64

// Layout is a shard placement policy: K grid partitions and the slot table
// assigning each topic-hash slot to one of them.
type Layout struct {
	// K is the shard count.
	K int
	// Slots maps hash slot → owning shard, length LayoutSlots. Nil means
	// the default modulo assignment.
	Slots []int
}

// DefaultLayout is the uniform modulo assignment of slots to k shards.
func DefaultLayout(k int) Layout {
	l := Layout{K: k, Slots: make([]int, LayoutSlots)}
	for i := range l.Slots {
		l.Slots[i] = i % k
	}
	return l
}

// normalized validates the layout and fills a nil slot table with the
// default assignment.
func (l Layout) normalized() (Layout, error) {
	if l.K < 1 {
		return Layout{}, fmt.Errorf("engine: layout shard count %d, need >= 1", l.K)
	}
	if l.Slots == nil {
		return DefaultLayout(l.K), nil
	}
	if len(l.Slots) != LayoutSlots {
		return Layout{}, fmt.Errorf("engine: layout slot table has %d entries, need %d", len(l.Slots), LayoutSlots)
	}
	for s, sh := range l.Slots {
		if sh < 0 || sh >= l.K {
			return Layout{}, fmt.Errorf("engine: layout slot %d assigned to shard %d of %d", s, sh, l.K)
		}
	}
	return Layout{K: l.K, Slots: slices.Clone(l.Slots)}, nil
}

// RebalanceConfig tunes the background skew monitor. The zero value disables
// it; manual Rebalance calls work either way.
type RebalanceConfig struct {
	// Threshold arms a rebalance when the imbalance ratio — the most loaded
	// shard's residents over the per-shard mean — reaches it. Must be >= 1
	// to mean anything; 0 disables the monitor.
	Threshold float64
	// Interval is the monitor's sampling period. Required when Threshold is
	// set.
	Interval time.Duration
	// Sustain is how many consecutive over-threshold samples must be seen
	// before firing, so a transient burst does not trigger a barrier.
	// Default: 2.
	Sustain int
	// MinGain bounds thrash: an automatic rebalance only fires if the
	// projected imbalance under the candidate layout is at most MinGain ×
	// the current one (a single hot slot cannot be split, so sometimes no
	// layout helps). Default: 0.9.
	MinGain float64
	// Logf, when set, receives rebalance progress and errors.
	Logf func(format string, args ...any)
}

func (rc *RebalanceConfig) fill() {
	if rc.Sustain <= 0 {
		rc.Sustain = 2
	}
	if rc.MinGain <= 0 || rc.MinGain >= 1 {
		rc.MinGain = 0.9
	}
	if rc.Logf == nil {
		rc.Logf = func(string, ...any) {}
	}
}

// RebalanceStats is the rebalancer's health block, surfaced through
// Engine.Stats and /stats.
type RebalanceStats struct {
	// Enabled reports whether the background skew monitor is running;
	// Threshold is its trigger ratio.
	Enabled   bool    `json:"enabled"`
	Threshold float64 `json:"threshold,omitempty"`
	// Rebalances counts completed rebalances (manual + automatic);
	// AutoRebalances the monitor-fired subset. Skipped counts monitor
	// triggers suppressed because no layout would meaningfully improve the
	// imbalance (e.g. one hot slot).
	Rebalances     int64 `json:"rebalances"`
	AutoRebalances int64 `json:"auto_rebalances"`
	Skipped        int64 `json:"skipped"`
	// LastSeq is the watermark of the newest rebalance; LastImbalance the
	// imbalance ratio that preceded it; LastDurationMS its barrier→resume
	// latency.
	LastSeq        int64   `json:"last_seq"`
	LastImbalance  float64 `json:"last_imbalance"`
	LastDurationMS float64 `json:"last_duration_ms"`
	// LastTrigger names what fired the newest rebalance: "manual",
	// "residents" (resident-count fallback), or "er_time" (the per-shard
	// resolve-time signal).
	LastTrigger string `json:"last_trigger,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

// rebTrigger identifies what initiated a rebalance — and, for automatic
// ones, which load signal armed it (the re-validation under the submission
// lock depends on whether the signal can be re-derived there).
type rebTrigger int

const (
	trigManual rebTrigger = iota
	// trigResidents is the monitor firing on the resident-count imbalance —
	// the fallback signal when ER-time deltas are unusable (first sample,
	// post-rebalance reset, or an idle interval).
	trigResidents
	// trigERTime is the monitor firing on per-shard ER-time deltas, the
	// primary signal: where resolution CPU actually went last interval.
	trigERTime
)

func (t rebTrigger) String() string {
	switch t {
	case trigResidents:
		return "residents"
	case trigERTime:
		return "er_time"
	default:
		return "manual"
	}
}

// rebState is the rebalancer's mutable bookkeeping, under its own lock so
// Stats() never queues behind a running rebalance.
type rebState struct {
	mu       sync.Mutex
	count    int64
	auto     int64
	skipped  int64
	lastSeq  int64
	lastImb  float64
	lastTook time.Duration
	lastTrig rebTrigger
	lastErr  error
}

// Imbalance is the current skew ratio: the most loaded shard's residents
// over the per-shard mean (1 = perfectly balanced, K = everything on one
// shard). An empty engine reports 1.
func (e *Engine) Imbalance() float64 {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	return imbalanceOf(e.shards)
}

func imbalanceOf(shards []*shard) float64 {
	var max, total int64
	for _, s := range shards {
		r := s.residents.Load()
		total += r
		if r > max {
			max = r
		}
	}
	if total == 0 || len(shards) == 0 {
		return 1
	}
	return float64(max) * float64(len(shards)) / float64(total)
}

// BalancedLayout computes a weighted layout over k shards from the observed
// per-slot resident counts: slots are placed greedily, heaviest first, onto
// the least-loaded shard (LPT scheduling), so hot topics end up isolated and
// the cold bulk fills in around them. k <= 0 keeps the current shard count.
// The result is deterministic for a given weight vector.
func (e *Engine) BalancedLayout(k int) Layout {
	e.stateMu.RLock()
	if k <= 0 {
		k = e.cfg.Shards
	}
	e.stateMu.RUnlock()
	weights := make([]int64, LayoutSlots)
	for i := range weights {
		weights[i] = e.slotWeight[i].Load()
	}
	return Layout{K: k, Slots: balancedSlots(weights, k)}
}

// balancedSlots is the deterministic LPT assignment of weighted slots to k
// shards. Zero-weight slots carry no residents to move, but future topics
// will hash into them, so they are spread round-robin instead of all
// landing on the emptiest shard.
func balancedSlots(weights []int64, k int) []int {
	slots := make([]int, len(weights))
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	load := make([]int64, k)
	rr := 0
	for _, s := range order {
		if weights[s] == 0 {
			slots[s] = rr % k
			rr++
			continue
		}
		best := 0
		for sh := 1; sh < k; sh++ {
			if load[sh] < load[best] {
				best = sh
			}
		}
		slots[s] = best
		load[best] += weights[s]
	}
	return slots
}

// projectedImbalance evaluates a candidate layout against the observed slot
// weights without touching any engine state.
func projectedImbalance(weights []int64, l Layout) float64 {
	load := make([]int64, l.K)
	var total, max int64
	for s, w := range weights {
		load[l.Slots[s]] += w
		total += w
	}
	for _, v := range load {
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) * float64(l.K) / float64(total)
}

// Rebalance performs an online layout change on the running engine: barrier
// checkpoint, rebuild the router/window/shard state under l (which may
// change K), restore the residents, and resume — all without losing or
// duplicating a single result. Submissions block for the duration; the WAL,
// counters, result set, and OnResult sink carry over untouched. It must not
// be called from OnResult (like Checkpoint, it waits for the merger to
// drain).
func (e *Engine) Rebalance(l Layout) error {
	return e.rebalance(l, trigManual)
}

func (e *Engine) rebalance(l Layout, trig rebTrigger) (err error) {
	l, err = l.normalized()
	if err != nil {
		return err
	}
	//lint:ignore nodeterm pause-duration metric; never touches emitted bytes
	start := time.Now()
	// The operator-supplied Logf must not run inside the pause window
	// (locksend: callback invocation under subMu — a slow sink would extend
	// the pause, a sink calling back into the engine would deadlock).
	// Registered before the unlock defer, it fires after subMu is released.
	var logDone func()
	defer func() {
		if logDone != nil {
			logDone()
		}
	}()
	e.subMu.Lock()
	defer e.subMu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if err := e.Err(); err != nil {
		return err
	}
	// The pause window starts here: submissions are locked out until the
	// rebuilt pipeline restarts, and /readyz reports not-ready throughout.
	e.rebalancing.Store(true)
	defer e.rebalancing.Store(false)
	if trig != trigManual {
		// The candidate layout was computed before this lock. If a manual
		// rebalance won the race (different K now) or the skew already
		// resolved, applying the stale layout would revert the operator's
		// change — re-validate and stand down instead. An ER-time trigger
		// only re-checks K: its interval deltas cannot be re-derived here,
		// and the resident imbalance it deliberately overrides may well be
		// under threshold.
		stale := e.cfg.Shards != l.K
		if trig == trigResidents && imbalanceOf(e.shards) < e.cfg.Rebalance.Threshold {
			stale = true
		}
		if stale {
			e.reb.mu.Lock()
			e.reb.skipped++
			e.reb.mu.Unlock()
			e.jr.Record("rebalance_skipped", "automatic rebalance stood down (stale trigger)",
				map[string]any{"trigger": trig.String(), "k": l.K})
			return nil
		}
	}
	defer func() {
		e.reb.mu.Lock()
		e.reb.lastErr = err
		e.reb.mu.Unlock()
	}()
	// Durable-path submitters between WAL reservation and injection carry
	// already-assigned sequence numbers; they must enter the pipeline before
	// the barrier can drain to the watermark.
	e.inflight.Wait()
	imbBefore := imbalanceOf(e.shards)
	oldK := e.cfg.Shards
	e.jr.Record("rebalance_start", "online rebalance: barrier checkpoint and rebuild",
		map[string]any{"trigger": trig.String(), "k_from": oldK, "k_to": l.K, "imbalance": imbBefore})
	c, err := e.checkpointLocked()
	if err != nil {
		return err
	}
	// The pipeline is idle at the barrier; stop it. Closing intake cascades
	// the shutdown left to right exactly as Close does, and the merger exits
	// once every stage has drained.
	close(e.imputeIn)
	e.mergeWG.Wait()
	if err := e.Err(); err != nil {
		return err
	}
	e.stateMu.Lock()
	_, err = e.rebuild(l, c)
	e.stateMu.Unlock()
	if err != nil {
		// The old pipeline is gone and the new one never started: the engine
		// is unusable. Fail it so submitters and Checkpoint see the error.
		e.closed = true
		e.fail(err)
		return err
	}
	e.start()
	//lint:ignore nodeterm pause-duration metric; never touches emitted bytes
	took := time.Since(start)
	if m := e.met; m != nil {
		m.rebalancePause.ObserveDuration(took)
	}
	e.reb.mu.Lock()
	e.reb.count++
	if trig != trigManual {
		e.reb.auto++
	}
	e.reb.lastSeq = c.Seq
	e.reb.lastImb = imbBefore
	e.reb.lastTook = took
	e.reb.lastTrig = trig
	e.reb.mu.Unlock()
	e.jr.Record("rebalance_done", "online rebalance complete, pipeline resumed",
		map[string]any{
			"trigger": trig.String(), "k_from": oldK, "k_to": l.K,
			"seq": c.Seq, "residents": len(c.Residents),
			"imbalance": imbBefore, "duration_ms": float64(took.Microseconds()) / 1000,
		})
	logDone = func() {
		e.cfg.Rebalance.Logf("rebalance: K %d→%d at seq %d (%d residents, imbalance %.2f, trigger %s) in %v",
			oldK, l.K, c.Seq, len(c.Residents), imbBefore, trig, took.Round(time.Microsecond))
	}
	return nil
}

// Rebalancing reports whether an online rebalance is in its pause window
// (submissions locked out, pipeline torn down or rebuilding). Serving
// layers surface it through /readyz.
func (e *Engine) Rebalancing() bool { return e.rebalancing.Load() }

// rebuild replaces the routing/window/shard state under layout l and
// reloads the checkpointed residents, returning the restored resident
// records (a follower catch-up needs them to rebuild the result set;
// rebalance discards them — its results are already consistent at the
// watermark). Caller holds subMu and stateMu with every pipeline goroutine
// stopped; the result set and progress counters are left untouched.
func (e *Engine) rebuild(l Layout, c *snapshot.Checkpoint) ([]*tuple.Record, error) {
	// Every fallible construction happens into locals first: a failure here
	// must not publish half-built state (a shards slice with nil entries
	// would panic a concurrent Stats/Imbalance reader).
	cc := e.cfg.Core
	var timeWins []*stream.TimeWindow
	var windows *stream.MultiWindow
	if cc.TimeSpan > 0 {
		timeWins = make([]*stream.TimeWindow, cc.Streams)
		for i := range timeWins {
			tw, err := stream.NewTimeWindow(cc.TimeSpan)
			if err != nil {
				return nil, err
			}
			timeWins[i] = tw
		}
	} else {
		mw, err := stream.NewMultiWindow(cc.Streams, cc.WindowSize)
		if err != nil {
			return nil, err
		}
		windows = mw
	}
	shardCh := make([]chan shardCmd, l.K)
	shards := make([]*shard, l.K)
	for i := 0; i < l.K; i++ {
		g, err := e.step.NewGrid()
		if err != nil {
			return nil, err
		}
		shardCh[i] = make(chan shardCmd, e.cfg.QueueDepth)
		shards[i] = newShard(i, e, g)
	}

	e.cfg.Shards = l.K
	if e.autoImpute {
		// The impute pool was auto-sized to Shards at construction; keep it
		// in lockstep so a grown K gets a grown imputation stage too. start()
		// reads the new value when it relaunches the pipeline.
		e.cfg.ImputeWorkers = l.K
	}
	e.layout = l.Slots
	// Interned home tables are per-K; rebuild them before loadResidents
	// re-homes the checkpointed residents.
	e.internHomes()
	e.imputeIn = make(chan []*item, e.cfg.QueueDepth)
	e.imputedOut = make(chan []*item, e.cfg.QueueDepth)
	e.hdrCh = make(chan []header, e.cfg.QueueDepth)
	e.partials = make(chan partial, e.cfg.QueueDepth*l.K)
	e.shardScratch = make([][]shardItem, l.K)
	e.timeWins, e.windows = timeWins, windows
	e.live = make(map[string]int)
	for i := range e.slotWeight {
		e.slotWeight[i].Store(0)
	}
	e.shardCh, e.shards = shardCh, shards
	e.startSeq = c.Seq
	return e.loadResidents(c)
}

// startMonitor launches the skew monitor when the config enables it. Called
// once per engine (New / NewFromSnapshot), never by Rebalance.
func (e *Engine) startMonitor() {
	rc := &e.cfg.Rebalance
	rc.fill()
	if rc.Threshold <= 0 || rc.Interval <= 0 {
		return
	}
	if rc.Threshold < 1 {
		rc.Threshold = 1
	}
	e.monitorStop = make(chan struct{})
	e.monitorWG.Add(1)
	go e.monitor()
}

// erSample is the monitor's previous per-shard cumulative ER-time reading,
// the baseline its interval deltas are taken against.
type erSample struct {
	k  int
	er []int64
}

// loadImbalance is the skew monitor's load signal. The primary signal is
// per-shard ER-time: the interval delta of each shard's cumulative resolve
// nanoseconds since the previous sample, measuring where resolution CPU
// actually went (resident counts only approximate it — a shard hosting few
// but expensive residents is invisible to occupancy). Resident counts remain
// the fallback whenever the deltas are unusable: the first sample, a shard
// count change or post-rebalance counter reset (negative delta), or an idle
// interval (zero total). prev is updated to the current reading either way.
func (e *Engine) loadImbalance(prev *erSample) (float64, rebTrigger) {
	e.stateMu.RLock()
	k := e.cfg.Shards
	cur := make([]int64, k)
	for i, s := range e.shards {
		cur[i] = s.erTime.Load()
	}
	resident := imbalanceOf(e.shards)
	e.stateMu.RUnlock()

	usable := prev.k == k && len(prev.er) == k
	var maxD, sumD int64
	if usable {
		for i, v := range cur {
			d := v - prev.er[i]
			if d < 0 {
				usable = false
				break
			}
			sumD += d
			if d > maxD {
				maxD = d
			}
		}
	}
	prev.k, prev.er = k, cur
	if !usable || sumD == 0 {
		return resident, trigResidents
	}
	return float64(maxD) * float64(k) / float64(sumD), trigERTime
}

// monitor samples the load imbalance every Interval — per-shard ER-time
// deltas primarily, resident counts as fallback (see loadImbalance) — and
// fires an automatic rebalance after Sustain consecutive over-threshold
// samples, unless no candidate layout would improve matters, in which case
// the trigger is counted as skipped and the clock restarts.
func (e *Engine) monitor() {
	defer e.monitorWG.Done()
	rc := e.cfg.Rebalance
	tick := time.NewTicker(rc.Interval)
	defer tick.Stop()
	over := 0
	var prev erSample
	for {
		select {
		case <-e.monitorStop:
			return
		case <-e.ctx.Done():
			// Pipeline failure (or a failed rebalance that closed the
			// engine): no Close() will come to stop the monitor, so it must
			// notice the cancellation itself instead of ticking forever.
			return
		case <-tick.C:
		}
		imb, trig := e.loadImbalance(&prev)
		if imb < rc.Threshold {
			over = 0
			continue
		}
		if over++; over < rc.Sustain {
			continue
		}
		over = 0
		weights := make([]int64, LayoutSlots)
		for i := range weights {
			weights[i] = e.slotWeight[i].Load()
		}
		e.stateMu.RLock()
		k := e.cfg.Shards
		e.stateMu.RUnlock()
		cand := Layout{K: k, Slots: balancedSlots(weights, k)}
		if proj := projectedImbalance(weights, cand); proj > imb*rc.MinGain {
			e.reb.mu.Lock()
			e.reb.skipped++
			e.reb.mu.Unlock()
			e.jr.Record("rebalance_skipped", "no candidate layout improves the imbalance",
				map[string]any{"trigger": trig.String(), "imbalance": imb, "projected": proj})
			rc.Logf("rebalance: skipped at %s imbalance %.2f (best layout projects %.2f)", trig, imb, proj)
			continue
		}
		switch err := e.rebalance(cand, trig); err {
		case nil:
		case ErrClosed:
			return
		default:
			rc.Logf("rebalance: %v", err)
			if e.Err() != nil {
				return
			}
		}
	}
}

// RebalanceStats reports the rebalancer's counters.
func (e *Engine) RebalanceStats() RebalanceStats {
	e.reb.mu.Lock()
	defer e.reb.mu.Unlock()
	st := RebalanceStats{
		Enabled:        e.monitorStop != nil,
		Threshold:      e.cfg.Rebalance.Threshold,
		Rebalances:     e.reb.count,
		AutoRebalances: e.reb.auto,
		Skipped:        e.reb.skipped,
		LastSeq:        e.reb.lastSeq,
		LastImbalance:  e.reb.lastImb,
		LastDurationMS: float64(e.reb.lastTook.Microseconds()) / 1000,
	}
	if e.reb.count > 0 {
		st.LastTrigger = e.reb.lastTrig.String()
	}
	if e.reb.lastErr != nil {
		st.LastError = e.reb.lastErr.Error()
	}
	return st
}
