// Live checkpoint application: advancing a RUNNING engine to a newer
// checkpoint without tearing the object down. This is the follower
// replica's catch-up path — when the writer's checkpointer truncates the
// WAL underneath the tailer, the follower applies the delta-checkpoint
// chain onto its live engine and resumes tailing from the new watermark,
// instead of rebuilding from scratch. The engine object, its OnResult
// subscribers, metrics, and journal all survive the jump; only the
// routing/window/shard state and the entity set are replaced.
//
// AttachWAL is the other half of warm-standby takeover: promotion opens
// the writer's log (the flock guarantees the old writer is gone), replays
// the un-tailed remainder, then flips the engine onto the durable
// submission path — every later Submit reserves its slot in the WAL
// exactly as a writer-born engine would.
package engine

import (
	"fmt"

	"terids/internal/core"
	"terids/internal/snapshot"
	"terids/internal/wal"
)

// AttachWAL flips a WAL-less engine onto the durable submission path:
// every subsequent submission reserves its sequence in l before entering
// the pipeline. The log must already hold exactly the engine's history
// below its current watermark (promotion replays the remainder first), so
// the first durable reservation continues the sequence space without a
// gap. Attaching twice, or to an engine built with a WAL, is an error.
func (e *Engine) AttachWAL(l *wal.Log) error {
	if l == nil {
		return fmt.Errorf("engine: AttachWAL: nil log")
	}
	e.subMu.Lock()
	defer e.subMu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if e.cfg.WAL != nil {
		return fmt.Errorf("engine: a WAL is already attached")
	}
	if next := l.Stats().NextSeq; next != e.seq.Load() {
		return fmt.Errorf("engine: WAL next seq %d does not meet engine watermark %d", next, e.seq.Load())
	}
	e.cfg.WAL = l
	return nil
}

// ApplyCheckpoint advances a running engine to checkpoint c in place:
// barrier-drain to the current watermark, stop the pipeline, swap the
// routing/window/shard state for the checkpoint's, replace the entity set
// and progress counters, and restart. Submissions block for the duration
// (like Rebalance); OnResult, metrics, and the journal stay attached.
// The checkpoint must be at or ahead of the engine's watermark — a live
// engine never rewinds. Must not be called from OnResult.
//
//terids:deterministic
func (e *Engine) ApplyCheckpoint(c *snapshot.Checkpoint) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if err := core.CheckpointCompatible(e.step.Shared(), e.cfg.Core, c); err != nil {
		return err
	}

	e.subMu.Lock()
	defer e.subMu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if err := e.Err(); err != nil {
		return err
	}
	if c.Seq < e.seq.Load() {
		return fmt.Errorf("engine: checkpoint watermark %d is behind the engine at %d", c.Seq, e.seq.Load())
	}
	// Adopt the checkpoint's topology when it carries one, so a follower
	// tracks the writer across rebalances; otherwise keep the current K
	// under the default table (placement is free — results are identical).
	l := Layout{K: e.cfg.Shards}
	if c.Shards >= 1 && c.Shards <= maxAdoptShards && len(c.SlotTable) == LayoutSlots {
		l = Layout{K: c.Shards, Slots: c.SlotTable}
	}
	l, err := l.normalized()
	if err != nil {
		return err
	}

	e.rebalancing.Store(true)
	defer e.rebalancing.Store(false)
	// Submitters between sequence assignment and pipeline injection must
	// land before the barrier can drain to the watermark.
	e.inflight.Wait()
	target := e.seq.Load()
	e.resultsMu.Lock()
	for e.completed < target && e.Err() == nil {
		e.drained.Wait()
	}
	e.resultsMu.Unlock()
	if err := e.Err(); err != nil {
		return err
	}
	// The pipeline is idle at the barrier; stop it (closing intake cascades
	// left to right) and rebuild under the checkpoint's state.
	close(e.imputeIn)
	e.mergeWG.Wait()
	if err := e.Err(); err != nil {
		return err
	}
	e.stateMu.Lock()
	recs, err := e.rebuild(l, c)
	e.stateMu.Unlock()
	if err == nil {
		results := core.NewResultSet()
		if rerr := core.RestoreResults(results, recs, c); rerr != nil {
			err = rerr
		} else {
			e.resultsMu.Lock()
			e.results = results
			e.completed = c.Completed
			e.rejected = c.Rejected
			e.resultsMu.Unlock()
		}
	}
	if err != nil {
		// The old pipeline is gone and the new one never started: the
		// engine is unusable. Fail it so submitters see the error.
		e.closed = true
		e.fail(err)
		return err
	}
	e.seq.Store(c.Seq)
	e.start()
	e.jr.Record("checkpoint_applied", "advanced live engine to checkpoint",
		map[string]any{"seq": c.Seq, "shards": e.cfg.Shards, "residents": len(c.Residents)})
	return nil
}
