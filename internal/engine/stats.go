package engine

import "terids/internal/metrics"

// ShardStats is one shard worker's live counters.
type ShardStats struct {
	// Shard is the partition index.
	Shard int `json:"shard"`
	// Residents is the number of tuples currently in this partition.
	// Broadcast-resident tuples count once per hosting shard.
	Residents int64 `json:"residents"`
	// Resolved counts arrivals this shard has resolved against its
	// partition.
	Resolved int64 `json:"resolved"`
	// Inserts is the monotonic count of residency insertions this shard has
	// taken; its per-interval delta is the shard's submit rate, the second
	// signal (besides Residents) the skew monitor watches.
	Inserts int64 `json:"inserts"`
	// ERTimeNs is the shard's cumulative resolve time in nanoseconds — the
	// skew monitor's primary load signal (per-interval deltas measure where
	// resolution CPU actually goes, which resident counts only approximate).
	ERTimeNs int64 `json:"er_time_ns"`
}

// Stats is a point-in-time view of the engine, safe to read while the
// pipeline runs. Breakdown durations are summed across workers, so they
// measure CPU time, not wall clock. Pruning counters are summed over
// shard-local resolves: partitioning changes where cell-level pruning
// lands, and broadcast-resident tuples are counted once per hosting shard,
// so the percentages are diagnostics of this engine's work — not the
// single-grid Figure 4 attribution (run the Processor for that).
type Stats struct {
	Shards int `json:"shards"`
	// ImputeWorkers is the current imputation pool size. It tracks Shards
	// across rebalances when the configuration auto-sized it, and stays at
	// the configured value otherwise.
	ImputeWorkers int   `json:"impute_workers"`
	Submitted     int64 `json:"submitted"`
	Completed     int64 `json:"completed"`
	// Rejected counts arrivals dropped as duplicate live RIDs (included in
	// Completed).
	Rejected  int64          `json:"rejected"`
	LivePairs int            `json:"live_pairs"`
	Totals    metrics.Totals `json:"totals"`
	PerShard  []ShardStats   `json:"per_shard"`
	// Imbalance is the current skew ratio: the most loaded shard's residents
	// over the per-shard mean (1 = balanced, Shards = everything on one).
	Imbalance float64 `json:"imbalance"`
	// Rebalance is the adaptive rebalancer's health block.
	Rebalance RebalanceStats `json:"rebalance"`
	// QueueLen is the current ingest queue occupancy (of QueueDepth).
	QueueLen   int `json:"queue_len"`
	QueueDepth int `json:"queue_depth"`
}

// Stats aggregates the per-stage and per-shard counters. It never blocks
// on the submission path, so it stays responsive under overload.
func (e *Engine) Stats() Stats {
	submitted := e.seq.Load()
	e.resultsMu.RLock()
	completed, rejected := e.completed, e.rejected
	e.resultsMu.RUnlock()
	e.stateMu.RLock()
	st := Stats{
		Shards:        e.cfg.Shards,
		ImputeWorkers: e.cfg.ImputeWorkers,
		Submitted:     submitted,
		Completed:     completed,
		Rejected:      rejected,
		Totals:        e.acc.Snapshot(),
		Imbalance:     imbalanceOf(e.shards),
		QueueLen:      len(e.imputeIn),
		QueueDepth:    e.cfg.QueueDepth,
	}
	for _, s := range e.shards {
		st.PerShard = append(st.PerShard, ShardStats{
			Shard:     s.id,
			Residents: s.residents.Load(),
			Resolved:  s.resolved.Load(),
			Inserts:   s.inserts.Load(),
			ERTimeNs:  s.erTime.Load(),
		})
	}
	e.stateMu.RUnlock()
	st.LivePairs = e.ResultCount()
	st.Rebalance = e.RebalanceStats()
	return st
}
