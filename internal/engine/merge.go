package engine

import (
	"cmp"
	"slices"
	"time"

	"terids/internal/core"
	"terids/internal/metrics"
)

// pending accumulates one arrival's header and its K shard partials. pending
// values are recycled through the merger's local freelist; reset clears one
// for reuse keeping its pairs capacity.
type pending struct {
	hdr    header
	hasHdr bool
	pairs  []shardPair
	got    int
	// arrived is when the first piece for this sequence reached the merger
	// (zero when instrumentation is off) — the reorder-buffer hold clock.
	arrived time.Time
}

func (p *pending) reset() {
	pairs := p.pairs[:0]
	*p = pending{pairs: pairs}
}

// merger joins the K partial result slices per arrival, restores submission
// order, dedups broadcast-resident candidates, and maintains the live
// entity set — the single writer of e.results. Intake is batched: one
// receive absorbs a routed run's headers or one shard's multi-entry partial.
//
//terids:hotpath
//terids:deterministic
func (e *Engine) merger() {
	defer e.mergeWG.Done()
	// A Checkpoint barrier may be waiting on the drain condition when the
	// merger exits (close or failure); wake it so it can re-check. The lock
	// prevents the broadcast from being lost between a waiter's predicate
	// check and its Wait().
	defer func() {
		e.resultsMu.Lock()
		e.drained.Broadcast()
		e.resultsMu.Unlock()
	}()
	win := seqWindow[*pending]{next: e.startSeq}
	// free recycles pending accumulators (merger-local, so no lock).
	var free []*pending
	get := func(seq int64) *pending {
		if p, ok := win.get(seq); ok {
			return p
		}
		var p *pending
		if n := len(free); n > 0 {
			p = free[n-1]
			free[n-1] = nil
			free = free[:n-1]
		} else {
			p = &pending{}
		}
		if e.met != nil {
			//lint:ignore nodeterm merge-hold instrumentation; never touches emitted bytes
			p.arrived = time.Now()
		}
		win.put(seq, p)
		return p
	}
	hdrCh, parts := e.hdrCh, e.partials
	for hdrCh != nil || parts != nil {
		select {
		case hs, ok := <-hdrCh:
			if !ok {
				hdrCh = nil
				continue
			}
			for i := range hs {
				p := get(hs[i].seq)
				p.hdr = hs[i]
				p.hasHdr = true
			}
			e.headersPool.put(hs)
		case pt, ok := <-parts:
			if !ok {
				parts = nil
				continue
			}
			for i := range pt.entries {
				en := &pt.entries[i]
				p := get(en.seq)
				p.pairs = append(p.pairs, en.pairs...)
				p.got++
				e.shardPairsPool.put(en.pairs)
			}
			e.partEntriesPool.put(pt.entries)
		case <-e.ctx.Done():
			return
		}
		for {
			p, ok := win.peekNext()
			if !ok || !p.hasHdr || (!p.hdr.skip && p.got < e.cfg.Shards) {
				break
			}
			win.popNext()
			e.finalize(p)
			// finalize happens-after every shard's partial send for this
			// seq, so nothing can still be reading the item wrapper.
			e.itemPool.put(p.hdr.it)
			p.reset()
			free = append(free, p)
		}
		if m := e.met; m != nil {
			m.mergePending.Set(float64(win.len()))
		}
	}
}

// finalize emits one in-order arrival: expired pairs leave the entity set,
// merged pairs enter it in candidate-arrival order — exactly the grid
// insertion-ordinal order core.Processor.Advance returns.
func (e *Engine) finalize(p *pending) {
	if p.hdr.skip {
		e.resultsMu.Lock()
		e.completed++
		e.rejected++
		e.drained.Broadcast()
		e.resultsMu.Unlock()
		if m := e.met; m != nil {
			m.rejected.Inc()
			m.mergeHold.ObserveSince(p.arrived)
		}
		e.completeTrace(p, 0)
		if e.cfg.OnResult != nil {
			e.cfg.OnResult(Result{Seq: p.hdr.seq, RID: p.hdr.rid, Rejected: true})
		}
		return
	}
	slices.SortFunc(p.pairs, func(a, b shardPair) int {
		return cmp.Compare(a.candSeq, b.candSeq)
	})
	pairs := make([]core.Pair, 0, len(p.pairs))
	last := int64(-1)
	for _, sp := range p.pairs {
		if sp.candSeq == last {
			continue // broadcast-resident candidate emitted by several shards
		}
		last = sp.candSeq
		pairs = append(pairs, sp.pair)
	}
	e.resultsMu.Lock()
	for _, rid := range p.hdr.expired {
		e.results.RemoveRID(rid)
	}
	for _, pr := range pairs {
		e.results.Add(pr)
	}
	e.completed++
	e.drained.Broadcast()
	e.resultsMu.Unlock()
	e.acc.Add(metrics.Totals{Tuples: 1, Pairs: int64(len(pairs))})
	if m := e.met; m != nil {
		m.mergeHold.ObserveSince(p.arrived)
	}
	e.completeTrace(p, len(pairs))
	if e.cfg.OnResult != nil {
		e.cfg.OnResult(Result{Seq: p.hdr.seq, RID: p.hdr.rid, Expired: p.hdr.expired, Pairs: pairs})
	}
}

// completeTrace finishes a sampled arrival's timeline and retains it in the
// trace ring. All upstream trace fields are safe to read here: the header
// send ordered the router's writes, the partial sends ordered each shard's.
func (e *Engine) completeTrace(p *pending, pairs int) {
	tr := p.hdr.tr
	if tr == nil || e.traces == nil {
		return
	}
	//lint:ignore nodeterm trace timing; traces never touch emitted bytes
	tr.MergeHoldNs = int64(time.Since(p.arrived))
	//lint:ignore nodeterm trace timing; traces never touch emitted bytes
	tr.TotalNs = int64(time.Since(tr.start))
	tr.Pairs = pairs
	e.traces.Add(*tr)
}
