package engine

import (
	"cmp"
	"slices"
	"time"

	"terids/internal/core"
	"terids/internal/metrics"
)

// reorder releases values in strict sequence order starting at 0, buffering
// out-of-order arrivals. The buffer is bounded in practice by the number of
// items in flight upstream (channel capacities + worker count).
type reorder[T any] struct {
	next int64
	buf  map[int64]T
}

// add offers (seq, v); emit is called zero or more times, always in
// sequence order.
func (r *reorder[T]) add(seq int64, v T, emit func(T)) {
	if seq != r.next {
		if r.buf == nil {
			r.buf = make(map[int64]T)
		}
		r.buf[seq] = v
		return
	}
	emit(v)
	r.next++
	for {
		w, ok := r.buf[r.next]
		if !ok {
			return
		}
		delete(r.buf, r.next)
		emit(w)
		r.next++
	}
}

// pending accumulates one arrival's header and its K shard partials.
type pending struct {
	hdr   *header
	pairs []shardPair
	got   int
	// arrived is when the first piece for this sequence reached the merger
	// (zero when instrumentation is off) — the reorder-buffer hold clock.
	arrived time.Time
}

// merger joins the K partial result slices per arrival, restores submission
// order, dedups broadcast-resident candidates, and maintains the live
// entity set — the single writer of e.results.
func (e *Engine) merger() {
	defer e.mergeWG.Done()
	// A Checkpoint barrier may be waiting on the drain condition when the
	// merger exits (close or failure); wake it so it can re-check. The lock
	// prevents the broadcast from being lost between a waiter's predicate
	// check and its Wait().
	defer func() {
		e.resultsMu.Lock()
		e.drained.Broadcast()
		e.resultsMu.Unlock()
	}()
	pend := make(map[int64]*pending)
	next := e.startSeq
	get := func(seq int64) *pending {
		p, ok := pend[seq]
		if !ok {
			p = &pending{}
			if e.met != nil {
				p.arrived = time.Now()
			}
			pend[seq] = p
		}
		return p
	}
	hdrCh, parts := e.hdrCh, e.partials
	for hdrCh != nil || parts != nil {
		select {
		case h, ok := <-hdrCh:
			if !ok {
				hdrCh = nil
				continue
			}
			p := get(h.seq)
			hc := h
			p.hdr = &hc
		case pt, ok := <-parts:
			if !ok {
				parts = nil
				continue
			}
			p := get(pt.seq)
			p.pairs = append(p.pairs, pt.pairs...)
			p.got++
		case <-e.ctx.Done():
			return
		}
		for {
			p, ok := pend[next]
			if !ok || p.hdr == nil || (!p.hdr.skip && p.got < e.cfg.Shards) {
				break
			}
			delete(pend, next)
			e.finalize(p)
			next++
		}
		if m := e.met; m != nil {
			m.mergePending.Set(float64(len(pend)))
		}
	}
}

// finalize emits one in-order arrival: expired pairs leave the entity set,
// merged pairs enter it in candidate-arrival order — exactly the grid
// insertion-ordinal order core.Processor.Advance returns.
func (e *Engine) finalize(p *pending) {
	if p.hdr.skip {
		e.resultsMu.Lock()
		e.completed++
		e.rejected++
		e.drained.Broadcast()
		e.resultsMu.Unlock()
		if m := e.met; m != nil {
			m.rejected.Inc()
			m.mergeHold.ObserveSince(p.arrived)
		}
		e.completeTrace(p, 0)
		if e.cfg.OnResult != nil {
			e.cfg.OnResult(Result{Seq: p.hdr.seq, RID: p.hdr.rid, Rejected: true})
		}
		return
	}
	slices.SortFunc(p.pairs, func(a, b shardPair) int {
		return cmp.Compare(a.candSeq, b.candSeq)
	})
	pairs := make([]core.Pair, 0, len(p.pairs))
	last := int64(-1)
	for _, sp := range p.pairs {
		if sp.candSeq == last {
			continue // broadcast-resident candidate emitted by several shards
		}
		last = sp.candSeq
		pairs = append(pairs, sp.pair)
	}
	e.resultsMu.Lock()
	for _, rid := range p.hdr.expired {
		e.results.RemoveRID(rid)
	}
	for _, pr := range pairs {
		e.results.Add(pr)
	}
	e.completed++
	e.drained.Broadcast()
	e.resultsMu.Unlock()
	e.acc.Add(metrics.Totals{Tuples: 1, Pairs: int64(len(pairs))})
	if m := e.met; m != nil {
		m.mergeHold.ObserveSince(p.arrived)
	}
	e.completeTrace(p, len(pairs))
	if e.cfg.OnResult != nil {
		e.cfg.OnResult(Result{Seq: p.hdr.seq, RID: p.hdr.rid, Expired: p.hdr.expired, Pairs: pairs})
	}
}

// completeTrace finishes a sampled arrival's timeline and retains it in the
// trace ring. All upstream trace fields are safe to read here: the header
// send ordered the router's writes, the partial sends ordered each shard's.
func (e *Engine) completeTrace(p *pending, pairs int) {
	tr := p.hdr.tr
	if tr == nil || e.traces == nil {
		return
	}
	tr.MergeHoldNs = int64(time.Since(p.arrived))
	tr.TotalNs = int64(time.Since(tr.start))
	tr.Pairs = pairs
	e.traces.Add(*tr)
}
