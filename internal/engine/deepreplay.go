// Deep replay: regenerating historical merged results from the durable
// state, for cursors that have fallen behind every in-memory buffer.
//
// The serving layer keeps only a bounded ring of recent results, but the
// snapshot + WAL on disk determine every result ever emitted: restore the
// newest retained checkpoint at-or-below the requested sequence into a
// throwaway engine, re-run the logged arrivals through the normal pipeline,
// and the regenerated results — pair identities, order, probabilities,
// rejections, expirations — are byte-identical to the originals. Reach is
// bounded by what pruning retained: the oldest checkpoint state whose WAL
// suffix survives (or sequence zero while the WAL has never been truncated).
package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"terids/internal/core"
	"terids/internal/snapshot"
	"terids/internal/tuple"
	"terids/internal/wal"
)

// ErrNoReplayCoverage reports a deep-replay cursor below everything the
// retained checkpoints + WAL can regenerate — the only case left for an
// HTTP 410.
var ErrNoReplayCoverage = errors.New("engine: sequence predates retained checkpoint/WAL coverage")

// ErrReplayDepthExceeded reports a deep replay that would regenerate more
// arrivals than the configured bound allows.
var ErrReplayDepthExceeded = errors.New("engine: deep replay depth exceeded")

// errReplayStopped is the internal sentinel an emit=false unwinds with.
var errReplayStopped = errors.New("engine: deep replay stopped by caller")

// DeepReach returns the oldest arrival sequence deep replay can regenerate
// results from: zero while the WAL has never been truncated (a throwaway
// engine replays from genesis), otherwise the oldest retained checkpoint
// state whose WAL suffix is fully retained. ok is false when no retained
// state has WAL coverage — deep replay is then impossible.
func (d *Durable) DeepReach() (int64, bool) {
	walFirst := d.Log.Stats().FirstSeq
	if walFirst == 0 {
		return 0, true
	}
	files, _, err := listCheckpointFiles(CheckpointDir(d.cfg.Dir))
	if err != nil {
		return 0, false
	}
	reach, ok := int64(0), false
	for _, f := range files { // newest first — the last qualifying is oldest
		if f.seq >= walFirst {
			reach, ok = f.seq, true
		}
	}
	return reach, ok
}

// replayBase picks the newest checkpoint state at-or-below from that the
// retained WAL can replay forward, materializing delta chains; unreadable
// states fall back to older ones. A nil checkpoint with nil error means
// genesis: the WAL still reaches sequence zero and a fresh engine replays
// from scratch.
func (d *Durable) replayBase(from int64) (*snapshot.Checkpoint, error) {
	walFirst := d.Log.Stats().FirstSeq
	ckptDir := CheckpointDir(d.cfg.Dir)
	files, _, err := listCheckpointFiles(ckptDir)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	bySeq := indexBySeq(files)
	for _, f := range files {
		if f.seq > from || f.seq < walFirst {
			continue
		}
		c, err := materializeCheckpoint(ckptDir, bySeq, f, 0)
		if err != nil {
			d.cfg.Logf("deep replay: skipping unreadable checkpoint %s: %v", f.name, err)
			continue
		}
		return c, nil
	}
	if walFirst == 0 {
		return nil, nil
	}
	return nil, fmt.Errorf("%w: no retained checkpoint at or below seq %d with WAL coverage (wal starts at %d)",
		ErrNoReplayCoverage, from, walFirst)
}

// DeepReplay regenerates the merged result stream for sequences >= from:
// the newest retained checkpoint at-or-below from is restored into a
// throwaway engine and the WAL arrivals past its watermark re-run through
// the normal pipeline. emit receives every regenerated Result with
// Seq >= from, in sequence order, byte-identical to the original emission;
// returning false stops the replay early (results already in flight may
// still be produced but are no longer delivered). upTo > 0 tells the replay
// where the caller intends to stop consuming (e.g. the live ring's tail it
// will splice into); it only informs the cost gate — emission is still
// bounded by emit, not upTo. limit > 0 bounds how many arrivals the replay
// may re-run to reach that point (ErrReplayDepthExceeded when the gap is
// wider). The replay runs against a live WAL: arrivals appended while it
// runs are picked up until emit stops it or the durable frontier is reached.
//
//terids:deterministic
func (d *Durable) DeepReplay(ctx context.Context, from, upTo, limit int64, emit func(Result) bool) error {
	if from < 0 {
		from = 0
	}
	ckpt, err := d.replayBase(from)
	if err != nil {
		return err
	}
	base := int64(0)
	if ckpt != nil {
		base = ckpt.Seq
	}
	if limit > 0 {
		// The replay re-runs [base, target): to the caller's splice point
		// when it has one, to the durable frontier otherwise.
		target := d.Log.Stats().DurableSeq
		if upTo > 0 && upTo < target {
			target = upTo
		}
		if span := target - base; span > limit {
			return fmt.Errorf("%w: regenerating from seq %d would re-run %d arrivals, limit is %d",
				ErrReplayDepthExceeded, base, span, limit)
		}
	}

	cfg := d.engCfg
	cfg.WAL = nil
	cfg.Rebalance = RebalanceConfig{}
	// The throwaway engine regenerates history; letting it publish stage
	// metrics or traces would pollute the live distributions.
	cfg.ObsOff = true
	cfg.TraceSample = 0
	//lint:ignore nodeterm replay duration metric; never touches emitted bytes
	replayStart := time.Now()
	var stop atomic.Bool
	cfg.OnResult = func(res Result) {
		if stop.Load() || res.Seq < from {
			return
		}
		if !emit(res) {
			stop.Store(true)
		}
	}
	var eng *Engine
	if ckpt != nil {
		eng, err = NewFromSnapshot(d.sh, cfg, ckpt)
	} else {
		eng, err = New(d.sh, cfg)
	}
	if err != nil {
		return err
	}

	// Regeneration is batched: the cursor only advances past entries whose
	// batch was submitted, so a restart after an error or stop re-reads
	// exactly the unsubmitted suffix.
	const replayBatch = 64
	cursor := base
	batch := make([]*tuple.Record, 0, replayBatch)
	flush := func(upto int64) error {
		if len(batch) == 0 {
			return nil
		}
		err := eng.SubmitBatch(batch)
		batch = batch[:0]
		if err == nil {
			cursor = upto
		}
		return err
	}
	for !stop.Load() {
		if err := ctx.Err(); err != nil {
			break
		}
		frontier := d.Log.Stats().DurableSeq
		if cursor >= frontier {
			break
		}
		last := cursor
		err := d.Log.Replay(cursor, func(e wal.Entry) error {
			if stop.Load() {
				return errReplayStopped
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			rec, err := core.ArrivalRecord(d.sh.Schema, e.RID, e.Stream, e.TupleSeq, e.EntityID, e.Values)
			if err != nil {
				return err
			}
			batch = append(batch, rec)
			last = e.Seq + 1
			if len(batch) < replayBatch {
				return nil
			}
			return flush(last)
		})
		if err == nil {
			err = flush(last)
		}
		if err != nil && !errors.Is(err, errReplayStopped) {
			eng.Close()
			if errors.Is(err, wal.ErrTruncated) {
				// The checkpointer truncated the range out from under the
				// replay: coverage is gone, which is a 410 to the caller,
				// not a server error.
				return fmt.Errorf("%w: %v", ErrNoReplayCoverage, err)
			}
			return fmt.Errorf("engine: deep replay: %w", err)
		}
		if err != nil {
			// Stopped mid-log: the unsubmitted tail is discarded.
			batch = batch[:0]
			break
		}
	}
	// Drain: results still in flight fire through the guarded OnResult.
	if err := eng.Close(); err != nil {
		return fmt.Errorf("engine: deep replay drain: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	d.deepReplays.Add(1)
	//lint:ignore nodeterm replay duration metric; never touches emitted bytes
	took := time.Since(replayStart)
	if m := d.met; m != nil {
		m.deepReplay.ObserveDuration(took)
	}
	d.Eng.jr.Record("deep_replay", "regenerated historical results from checkpoint + WAL",
		map[string]any{
			"from": from, "base": base,
			"duration_ms": float64(took.Microseconds()) / 1000,
		})
	return nil
}
