package engine

import (
	"sync/atomic"

	"terids/internal/core"
	"terids/internal/grid"
	"terids/internal/metrics"
	"terids/internal/obs"
)

// shardItem is one arrival's work for one shard: evict the expired
// residents, resolve the query against the local partition, then (for home
// shards) insert it.
type shardItem struct {
	it      *item
	removes []string
	insert  bool
}

// shardCmd is one routed batch's work for one shard, delivered in submission
// order over the shard's FIFO channel — N arrivals per channel receive. The
// items slice is pooled; the receiving shard recycles it.
type shardCmd struct {
	items []shardItem
}

// shardPair is one emitted pair tagged with the candidate's global arrival
// sequence, the merge key that restores the Processor's emission order.
type shardPair struct {
	pair    core.Pair
	candSeq int64
}

// partialEntry is one shard's result slice for one arrival.
type partialEntry struct {
	seq   int64
	pairs []shardPair
}

// partial is one shard's answer for one batch — one channel send per
// shardCmd, matching the batched fan-out. Both slices are pooled; the merger
// recycles them.
type partial struct {
	entries []partialEntry
}

// shard is one worker goroutine's state: a grid partition plus the global
// arrival sequence of each resident (for cross-shard deterministic merging).
type shard struct {
	id    int
	e     *Engine
	grid  *grid.Grid
	seqOf map[string]int64 // resident RID -> global arrival seq

	// residents/resolved/inserts are read by Stats() and the skew monitor
	// while the worker runs. residents tracks current occupancy; inserts is
	// the monotonic insert count, whose per-interval delta is the shard's
	// submit rate.
	residents atomic.Int64
	resolved  atomic.Int64
	inserts   atomic.Int64
	// erTime is the shard's cumulative resolve time in nanoseconds — the skew
	// monitor's primary load signal (per-interval deltas; see rebalance.go).
	erTime atomic.Int64

	// met is the shard's resolve-latency histogram, nil when
	// instrumentation is off.
	met *obs.Histogram
}

func newShard(id int, e *Engine, g *grid.Grid) *shard {
	s := &shard{id: id, e: e, grid: g, seqOf: make(map[string]int64)}
	if e.met != nil {
		s.met = e.met.shardResolve(id)
	}
	return s
}

// run processes the shard's command stream until it closes or the engine
// fails. All grid state is confined to this goroutine. Each command carries a
// batch of arrivals; the shard answers with one multi-entry partial.
//
//terids:hotpath
func (s *shard) run() {
	defer s.e.shardWG.Done()
	step := s.e.step
	for cmd := range s.e.shardCh[s.id] {
		entries := s.e.partEntriesPool.get(len(cmd.items))
		for _, ci := range cmd.items {
			var ps metrics.PruneStats
			var sw metrics.Stopwatch
			sw.Start()
			for _, rid := range ci.removes {
				if s.grid.Remove(rid) {
					delete(s.seqOf, rid)
					s.residents.Add(-1)
				}
			}
			q := ci.it.prof.prof
			pairs := step.Resolve(s.grid, q, &ps)
			out := s.e.shardPairsPool.get(len(pairs))
			qRID := ci.it.rec.RID
			for _, p := range pairs {
				cand := p.A.RID
				if cand == qRID {
					cand = p.B.RID
				}
				out = append(out, shardPair{pair: p, candSeq: s.seqOf[cand]})
			}
			if ci.insert {
				if err := s.grid.Insert(&grid.Entry{Rec: ci.it.rec, Prof: q}); err != nil {
					s.e.fail(err)
					return
				}
				s.seqOf[qRID] = ci.it.seq
				s.residents.Add(1)
				s.inserts.Add(1)
			}
			er := sw.Lap()
			s.e.acc.Add(metrics.Totals{Breakdown: metrics.Breakdown{ER: er}, Prune: ps})
			s.resolved.Add(1)
			s.erTime.Add(int64(er))
			if s.met != nil {
				s.met.Observe(int64(er))
			}
			if tr := ci.it.tr; tr != nil && tr.ShardNs != nil {
				tr.ShardNs[s.id] = int64(er)
			}
			entries = append(entries, partialEntry{seq: ci.it.seq, pairs: out})
		}
		s.e.shardItemsPool.put(cmd.items)
		select {
		case s.e.partials <- partial{entries: entries}:
		case <-s.e.ctx.Done():
			return
		}
	}
}
