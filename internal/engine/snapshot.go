package engine

import (
	"fmt"
	"slices"
	"sort"

	"terids/internal/core"
	"terids/internal/grid"
	"terids/internal/snapshot"
	"terids/internal/tuple"
)

// Checkpoint is the engine's barrier snapshot: it pauses intake (new
// submissions block on the submission lock), lets the impute pool, router,
// shards, and merger drain every in-flight arrival, and captures all K shard
// grids, the window slices, the entity set, and the merger watermark at a
// single sequence number S — then releases intake. The pipeline goroutines
// are never stopped; they simply go idle at the barrier.
//
// State gathering is race-free without extra locks on the shard/router state
// because of the pipeline's happens-before chain: each stage's writes for
// sequence n precede its channel send for n, the merger's receive precedes
// its completed-counter update under resultsMu, and Checkpoint reads the
// counter under resultsMu before touching any stage state.
//
// The returned checkpoint can be restored at any shard count K' via
// NewFromSnapshot, or into a single-threaded core.Processor.
func (e *Engine) Checkpoint() (*snapshot.Checkpoint, error) {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	return e.checkpointLocked()
}

// checkpointLocked is the barrier body, shared by Checkpoint and Rebalance.
// Caller holds subMu (so the watermark cannot advance).
//
//terids:deterministic
func (e *Engine) checkpointLocked() (*snapshot.Checkpoint, error) {
	target := e.seq.Load()

	e.resultsMu.Lock()
	defer e.resultsMu.Unlock()
	for e.completed < target && e.Err() == nil {
		e.drained.Wait()
	}
	if err := e.Err(); err != nil {
		return nil, fmt.Errorf("engine: checkpoint aborted, pipeline failed: %w", err)
	}

	// Arrival sequences live in the shards' residency maps (broadcast
	// residents appear in several shards with the same sequence).
	seqOf := make(map[string]int64)
	for _, s := range e.shards {
		//lint:ignore nodeterm iteration order erased: residents are sorted by arrival seq below
		for rid, sq := range s.seqOf {
			seqOf[rid] = sq
		}
	}

	var recs []*tuple.Record
	if e.timeWins != nil {
		for _, tw := range e.timeWins {
			recs = append(recs, tw.Export()...)
		}
	} else {
		recs = e.windows.Export()
	}
	for _, r := range recs {
		if _, ok := seqOf[r.RID]; !ok {
			return nil, fmt.Errorf("engine: window resident %s missing from every shard", r.RID)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return seqOf[recs[i].RID] < seqOf[recs[j].RID] })

	c := core.NewCheckpointHeader(e.step.Shared(), e.cfg.Core)
	c.Seq = target
	c.Completed = e.completed
	c.Rejected = e.rejected
	c.Shards = e.cfg.Shards
	c.SlotTable = slices.Clone(e.layout)
	for _, r := range recs {
		c.Residents = append(c.Residents, core.ResidentFromRecord(r, seqOf[r.RID]))
	}
	if err := core.CheckpointPairs(e.results, c); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("engine: checkpoint self-check: %w", err)
	}
	return c, nil
}

// NewFromSnapshot rebuilds an engine from a checkpoint taken at any shard
// count and resumes at its watermark. Residency is re-derived from each
// resident's recomputed profile under the new configuration's K', so
// restoring at a different shard count reshards for free; output remains
// byte-identical to an uninterrupted run because resolution never depends on
// where a tuple resides.
//
// Layout adoption: a checkpoint taken after a rebalance carries its slot
// table (snapshot format v2). When the configuration auto-sizes the shard
// count (Shards == 0) the snapshot's K and table are adopted wholesale, so a
// rebalanced deployment recovers balanced; an explicit Shards equal to the
// snapshot's K adopts the table too; any other K falls back to the default
// modulo layout at the requested K — always safe, placement being free.
//
//terids:deterministic
func NewFromSnapshot(sh *core.Shared, cfg Config, c *snapshot.Checkpoint) (*Engine, error) {
	if cfg.Shards == 0 && c.Shards >= 1 && c.Shards <= maxAdoptShards && len(c.SlotTable) == LayoutSlots {
		cfg.Shards = c.Shards
	}
	e, err := newEngine(sh, cfg)
	if err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := core.CheckpointCompatible(sh, e.cfg.Core, c); err != nil {
		return nil, err
	}
	if len(c.SlotTable) == LayoutSlots && c.Shards == e.cfg.Shards {
		if l, err := (Layout{K: c.Shards, Slots: c.SlotTable}).normalized(); err == nil {
			e.layout = l.Slots
		}
	}
	recs, err := e.loadResidents(c)
	if err != nil {
		return nil, err
	}
	if err := core.RestoreResults(e.results, recs, c); err != nil {
		return nil, err
	}
	e.startSeq = c.Seq
	e.seq.Store(c.Seq)
	e.completed = c.Completed
	e.rejected = c.Rejected
	e.start()
	e.startMonitor()
	return e, nil
}

// loadResidents replays the checkpoint's residents into the windows, the
// live set, and the shard grids under the engine's current layout — the
// restore body shared by NewFromSnapshot and Rebalance. The engine must be
// freshly built (or rebuilt) and not yet started.
//
//terids:deterministic
func (e *Engine) loadResidents(c *snapshot.Checkpoint) ([]*tuple.Record, error) {
	recs, err := core.CheckpointRecords(e.step.Shared().Schema, c)
	if err != nil {
		return nil, err
	}
	for i, rec := range recs {
		expired, err := e.pushWindow(rec)
		if err != nil {
			return nil, err
		}
		if len(expired) > 0 {
			return nil, fmt.Errorf("engine: checkpoint resident %s overflows stream %d window",
				rec.RID, rec.Stream)
		}
		seq := c.Residents[i].ArrivalSeq
		im, _ := e.step.Impute(rec)
		prof := e.step.Profile(im)
		homes, slot := e.homeShards(prof)
		e.live[rec.RID] = slot
		if slot >= 0 {
			e.slotWeight[slot].Add(1)
		}
		for _, h := range homes {
			s := e.shards[h]
			if err := s.grid.Insert(&grid.Entry{Rec: rec, Prof: prof}); err != nil {
				return nil, err
			}
			s.seqOf[rec.RID] = seq
			s.residents.Add(1)
		}
	}
	return recs, nil
}
