package engine

import (
	"sync"

	"terids/internal/obs"
)

// Hot-path object reuse. The pipeline moves three kinds of transient
// allocations per arrival — the item wrapper, the per-batch carrier slices,
// and the per-shard pair buffers — and all of them have a single, well-defined
// ownership hand-off: the stage that receives a pooled object over a channel
// owns it and is the one that returns it. The rules, stage by stage:
//
//   - *item: allocated by submitBatch, travels impute → router → shards (via
//     shardCmd) and merger (via header.it). The merger recycles it at
//     finalize, which happens-after every shard's partial send, so no stage
//     can still be reading it. Rejected duplicates never reach the shards
//     and recycle the same way. The tuple.Record inside is NOT pooled: the
//     caller owns it until Submit returns, the engine (windows/grids) owns
//     it afterwards.
//   - []*item chunks: submitBatch → impute worker → router, recycled by the
//     router once drained into its reorder window.
//   - []shardItem: router → one shard, recycled by that shard after its
//     partial send is prepared.
//   - []header: router → merger, recycled after the headers are absorbed.
//   - []partialEntry and []shardPair: shard → merger, recycled after the
//     pairs are copied into the pending accumulator.
//
// A stage that exits early (pipeline failure) simply drops what it holds to
// the GC — pools are an optimization, never a correctness dependency.

// poolStats counts pool effectiveness; nil counters (ObsOff) are skipped.
type poolStats struct {
	hits, misses *obs.Counter
}

func (s poolStats) hit() {
	if s.hits != nil {
		s.hits.Inc()
	}
}

func (s poolStats) miss() {
	if s.misses != nil {
		s.misses.Inc()
	}
}

// itemPool recycles *item wrappers through a sync.Pool (pointer values,
// so Put never boxes).
//
//terids:pool
type itemPool struct {
	p  sync.Pool
	st poolStats
}

func (ip *itemPool) get() *item {
	if v := ip.p.Get(); v != nil {
		ip.st.hit()
		return v.(*item)
	}
	ip.st.miss()
	return &item{}
}

// put zeroes the wrapper (dropping its record/profile/trace references) and
// returns it for reuse. Callers must guarantee no stage still reads it.
func (ip *itemPool) put(it *item) {
	if it == nil {
		return
	}
	*it = item{}
	ip.p.Put(it)
}

// slicePool recycles carrier slices through a small mutex-guarded freelist.
// sync.Pool would box the slice header on every Put; the freelist keeps
// put/get allocation-free, and the lock is taken per batch, not per tuple.
//
//terids:pool
type slicePool[T any] struct {
	mu   sync.Mutex
	free [][]T
	st   poolStats
}

// slicePoolCap bounds each freelist; overflow is dropped to the GC.
const slicePoolCap = 256

func newSlicePool[T any](st poolStats) *slicePool[T] {
	return &slicePool[T]{free: make([][]T, 0, slicePoolCap), st: st}
}

func (p *slicePool[T]) get(capHint int) []T {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.st.hit()
		return s
	}
	p.mu.Unlock()
	p.st.miss()
	if capHint < 8 {
		capHint = 8
	}
	return make([]T, 0, capHint)
}

// put clears the slice (dropping element references) and shelves it.
func (p *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	var zero T
	for i := range s {
		s[i] = zero
	}
	s = s[:0]
	p.mu.Lock()
	if len(p.free) < slicePoolCap {
		p.free = append(p.free, s)
	}
	p.mu.Unlock()
}
