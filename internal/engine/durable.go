// Durability: the arrival WAL plus a background checkpointer turn the
// engine's barrier checkpoints into exact recovery points. The WAL records
// the accepted arrival stream — the only non-derivable online state — so
// recovery is: restore the newest snapshot, then replay the logged arrivals
// past its watermark through the normal pipeline. The replayed run is
// byte-identical (pair identities, order, probabilities) to an uninterrupted
// one, at any shard count K'.
//
// On-disk layout under one durability directory:
//
//	<dir>/<seq>.wal              arrival log segments (internal/wal)
//	<dir>/checkpoints/ckpt-<seq>.ckpt   snapshots (internal/snapshot), atomic
//
// The checkpointer goroutine periodically runs the engine's barrier
// Checkpoint, writes the snapshot atomically (temp + rename), prunes all but
// the newest KeepCheckpoints snapshots, and truncates WAL segments older
// than the oldest snapshot still retained — so every retained snapshot,
// not just the newest, keeps the WAL suffix it needs for exact recovery
// (the corrupt-newest fallback in LatestCheckpoint depends on this).
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"terids/internal/core"
	"terids/internal/snapshot"
	"terids/internal/wal"
)

// checkpointSubdir is the snapshot directory under the durability root.
const checkpointSubdir = "checkpoints"

// ckptPrefix/ckptSuffix frame snapshot filenames; the middle is the
// zero-padded watermark, so lexicographic order is watermark order.
const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"
)

// DurableConfig tunes the durability subsystem around an engine.
type DurableConfig struct {
	// Dir is the durability root: WAL segments live directly in it,
	// snapshots under Dir/checkpoints.
	Dir string
	// CheckpointInterval enables the background checkpointer when > 0.
	CheckpointInterval time.Duration
	// KeepCheckpoints bounds retained snapshots. Default: 2.
	KeepCheckpoints int
	// SegmentBytes / QueueDepth / NoSync pass through to the WAL.
	SegmentBytes int64
	QueueDepth   int
	NoSync       bool
	// Checkpoint, when set, skips discovery: recovery restores from this
	// pre-loaded snapshot (CheckpointPath names it for stats). Callers that
	// need the watermark before building the engine (e.g. to base a replay
	// ring) load it via LatestCheckpoint and hand it over here.
	Checkpoint     *snapshot.Checkpoint
	CheckpointPath string
	// Logf, when set, receives checkpointer progress and errors.
	Logf func(format string, args ...any)
}

func (d *DurableConfig) fill() {
	if d.KeepCheckpoints <= 0 {
		d.KeepCheckpoints = 2
	}
	if d.Logf == nil {
		d.Logf = func(string, ...any) {}
	}
}

// Durable bundles a recovered engine with its WAL and checkpointer.
type Durable struct {
	// Eng is the recovered (or fresh) engine; submissions go through it as
	// usual and are made durable by the attached WAL.
	Eng *Engine
	// Log is the arrival WAL. Owned by the Durable handle: Close closes it
	// after the engine.
	Log *wal.Log

	cfg           DurableConfig
	recoveredFrom string
	restored      *snapshot.Checkpoint
	replayed      int64
	resumeSeq     int64

	ckptMu       sync.Mutex
	lastCkptSeq  int64
	lastCkptPath string
	lastCkptTime time.Time
	lastCkptErr  error
	ckptCount    int64
	snapshots    int

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// DurabilityStats is the /stats health block for the durability subsystem.
type DurabilityStats struct {
	WAL wal.Stats `json:"wal"`
	// RecoveredFrom is the snapshot file this process booted from (empty for
	// a cold start); Replayed counts the WAL arrivals re-run on boot.
	RecoveredFrom string `json:"recovered_from,omitempty"`
	Replayed      int64  `json:"replayed"`
	// ReplayLag is how many durable arrivals the merged output still trails
	// by — the work a crash right now would replay beyond the WAL's tail.
	ReplayLag int64 `json:"replay_lag"`
	// Checkpointer health.
	Checkpoints              int64   `json:"checkpoints"`
	SnapshotsRetained        int     `json:"snapshots_retained"`
	LastCheckpointSeq        int64   `json:"last_checkpoint_seq"`
	LastCheckpointPath       string  `json:"last_checkpoint_path,omitempty"`
	LastCheckpointAgeSeconds float64 `json:"last_checkpoint_age_seconds"` // -1: never
	LastCheckpointError      string  `json:"last_checkpoint_error,omitempty"`
}

// CheckpointDir returns the snapshot directory under a durability root.
func CheckpointDir(dir string) string { return filepath.Join(dir, checkpointSubdir) }

// listCheckpoints returns the snapshot filenames in a checkpoint directory,
// newest first (the filenames embed the zero-padded watermark, so
// lexicographic order is watermark order).
func listCheckpoints(ckptDir string) ([]string, error) {
	des, err := os.ReadDir(ckptDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if n := de.Name(); !de.IsDir() && strings.HasPrefix(n, ckptPrefix) && strings.HasSuffix(n, ckptSuffix) {
			names = append(names, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names, nil
}

// ckptSeqFromName parses the watermark out of a snapshot filename.
func ckptSeqFromName(name string) (int64, bool) {
	base := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	seq, err := strconv.ParseInt(base, 10, 64)
	return seq, err == nil && seq >= 0
}

// LatestCheckpoint finds and loads the newest readable snapshot under a
// durability root. Corrupt or unreadable snapshots are skipped (the previous
// one still recovers, at the cost of more WAL replay); a root with no usable
// snapshot returns ("", nil, nil) — recovery then replays the WAL from zero.
func LatestCheckpoint(dir string) (string, *snapshot.Checkpoint, error) {
	names, err := listCheckpoints(CheckpointDir(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil, nil
		}
		return "", nil, err
	}
	for _, n := range names {
		path := filepath.Join(CheckpointDir(dir), n)
		c, err := snapshot.ReadFile(path)
		if err != nil {
			continue
		}
		return path, c, nil
	}
	return "", nil, nil
}

// OpenDurable boots a durable engine from a durability directory: restore
// the newest snapshot (if any), open the WAL, replay every logged arrival
// past the snapshot watermark through the normal pipeline, attach the WAL to
// the live submission path, and start the background checkpointer. The
// returned engine is at exactly the state an uninterrupted run would hold
// after the last durable arrival.
func OpenDurable(sh *core.Shared, cfg Config, d DurableConfig) (*Durable, error) {
	d.fill()
	if err := os.MkdirAll(CheckpointDir(d.Dir), 0o755); err != nil {
		return nil, err
	}
	path, ckpt := d.CheckpointPath, d.Checkpoint
	if ckpt == nil {
		var err error
		path, ckpt, err = LatestCheckpoint(d.Dir)
		if err != nil {
			return nil, err
		}
	}
	log, err := wal.Open(d.Dir, wal.Options{
		SegmentBytes: d.SegmentBytes, QueueDepth: d.QueueDepth, NoSync: d.NoSync,
	})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Durable, error) {
		log.Close()
		return nil, err
	}

	watermark := int64(0)
	if ckpt != nil {
		watermark = ckpt.Seq
	}
	if st := log.Stats(); st.NextSeq > st.FirstSeq {
		// Non-empty log: it must connect to the snapshot watermark on both
		// sides, or exact replay is impossible.
		if st.FirstSeq > watermark {
			return fail(fmt.Errorf("engine: wal starts at seq %d, snapshot watermark is %d: arrivals in between are lost", st.FirstSeq, watermark))
		}
		if st.NextSeq < watermark {
			return fail(fmt.Errorf("engine: wal ends at seq %d before snapshot watermark %d: the log is stale", st.NextSeq, watermark))
		}
	}

	cfg.WAL = log
	var eng *Engine
	if ckpt != nil {
		eng, err = NewFromSnapshot(sh, cfg, ckpt)
	} else {
		eng, err = New(sh, cfg)
	}
	if err != nil {
		return fail(err)
	}

	dur := &Durable{
		Eng: eng, Log: log, cfg: d,
		recoveredFrom: path, restored: ckpt,
		lastCkptSeq: -1, lastCkptPath: path,
		stop: make(chan struct{}),
	}
	if ckpt != nil {
		dur.lastCkptSeq = ckpt.Seq
	}
	// Replay the durable suffix through the normal pipeline. The WAL appends
	// these sequences idempotently (they are already durable), so Submit
	// behaves exactly as it did the first time.
	err = log.Replay(watermark, func(e wal.Entry) error {
		rec, err := core.ArrivalRecord(sh.Schema, e.RID, e.Stream, e.TupleSeq, e.EntityID, e.Values)
		if err != nil {
			return err
		}
		dur.replayed++
		return eng.Submit(rec)
	})
	if err != nil {
		eng.Close()
		return fail(fmt.Errorf("engine: wal replay: %w", err))
	}
	dur.resumeSeq = watermark + dur.replayed
	dur.snapshots = dur.countSnapshots()

	if d.CheckpointInterval > 0 {
		dur.wg.Add(1)
		go dur.checkpointLoop()
	}
	return dur, nil
}

// ResumeSeq is the first sequence number the recovered engine will assign to
// a new arrival — the snapshot watermark plus the replayed WAL suffix.
func (d *Durable) ResumeSeq() int64 { return d.resumeSeq }

// Replayed is the number of WAL arrivals re-run on boot.
func (d *Durable) Replayed() int64 { return d.replayed }

// RestoredCheckpoint returns the snapshot recovery booted from (nil for a
// cold start).
func (d *Durable) RestoredCheckpoint() *snapshot.Checkpoint { return d.restored }

// checkpointLoop is the background checkpointer.
func (d *Durable) checkpointLoop() {
	defer d.wg.Done()
	tick := time.NewTicker(d.cfg.CheckpointInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if _, err := d.CheckpointNow(); err != nil {
				d.cfg.Logf("background checkpoint: %v", err)
			}
		case <-d.stop:
			return
		}
	}
}

// CheckpointNow takes a barrier checkpoint, writes it atomically into the
// checkpoint directory, prunes old snapshots beyond KeepCheckpoints, and
// truncates WAL segments older than the oldest snapshot still retained. A
// watermark that has not advanced since the last checkpoint is a no-op.
func (d *Durable) CheckpointNow() (string, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	c, err := d.Eng.Checkpoint()
	if err != nil {
		d.lastCkptErr = err
		return "", err
	}
	if c.Seq == d.lastCkptSeq {
		return d.lastCkptPath, nil
	}
	path := filepath.Join(CheckpointDir(d.cfg.Dir), fmt.Sprintf("%s%020d%s", ckptPrefix, c.Seq, ckptSuffix))
	if err := snapshot.WriteFile(path, c); err != nil {
		d.lastCkptErr = err
		return "", err
	}
	d.lastCkptSeq = c.Seq
	d.lastCkptPath = path
	d.lastCkptTime = time.Now()
	d.lastCkptErr = nil
	d.ckptCount++
	d.cfg.Logf("checkpoint %s (watermark %d, %d residents, %d live pairs)",
		path, c.Seq, len(c.Residents), len(c.Pairs))
	if err := d.prune(c.Seq); err != nil {
		d.lastCkptErr = err
		return path, err
	}
	return path, nil
}

// prune removes snapshots beyond KeepCheckpoints, then truncates the WAL to
// the OLDEST snapshot still retained — not the newest: if the newest ever
// turns out unreadable, LatestCheckpoint falls back to an older one, and
// that one still needs its WAL suffix for exact recovery.
func (d *Durable) prune(newest int64) error {
	dir := CheckpointDir(d.cfg.Dir)
	names, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	keep := min(len(names), d.cfg.KeepCheckpoints)
	for _, n := range names[keep:] {
		if err := os.Remove(filepath.Join(dir, n)); err != nil {
			return err
		}
	}
	d.snapshots = keep
	oldest := newest
	if keep > 0 {
		if seq, ok := ckptSeqFromName(names[keep-1]); ok {
			oldest = seq
		}
	}
	return d.Log.TruncateBefore(oldest)
}

func (d *Durable) countSnapshots() int {
	names, err := listCheckpoints(CheckpointDir(d.cfg.Dir))
	if err != nil {
		return 0
	}
	return len(names)
}

// Stats reports WAL and checkpointer health for /stats.
func (d *Durable) Stats() DurabilityStats {
	st := DurabilityStats{
		WAL:           d.Log.Stats(),
		RecoveredFrom: d.recoveredFrom,
		Replayed:      d.replayed,
	}
	if lag := st.WAL.DurableSeq - d.Eng.Completed(); lag > 0 {
		st.ReplayLag = lag
	}
	d.ckptMu.Lock()
	st.Checkpoints = d.ckptCount
	st.SnapshotsRetained = d.snapshots
	st.LastCheckpointSeq = d.lastCkptSeq
	st.LastCheckpointPath = d.lastCkptPath
	st.LastCheckpointAgeSeconds = -1
	if !d.lastCkptTime.IsZero() {
		st.LastCheckpointAgeSeconds = time.Since(d.lastCkptTime).Seconds()
	}
	if d.lastCkptErr != nil {
		st.LastCheckpointError = d.lastCkptErr.Error()
	}
	d.ckptMu.Unlock()
	return st
}

// Close stops the checkpointer, drains and closes the engine, optionally
// writes one final checkpoint (so a clean restart replays nothing), and
// closes the WAL.
func (d *Durable) Close(finalCheckpoint bool) error {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
	errEng := d.Eng.Close()
	var errCkpt error
	if finalCheckpoint && errEng == nil {
		// A drained, closed engine stays checkpointable; this captures the
		// complete final state.
		if _, err := d.CheckpointNow(); err != nil {
			errCkpt = fmt.Errorf("final checkpoint: %w", err)
		}
	}
	errLog := d.Log.Close()
	return errors.Join(errEng, errCkpt, errLog)
}
