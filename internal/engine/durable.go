// Durability: the arrival WAL plus a background checkpointer turn the
// engine's barrier checkpoints into exact recovery points. The WAL records
// the accepted arrival stream — the only non-derivable online state — so
// recovery is: restore the newest snapshot, then replay the logged arrivals
// past its watermark through the normal pipeline. The replayed run is
// byte-identical (pair identities, order, probabilities) to an uninterrupted
// one, at any shard count K'.
//
// On-disk layout under one durability directory:
//
//	<dir>/<seq>.wal                           arrival log segments (internal/wal)
//	<dir>/checkpoints/ckpt-<seq>.ckpt         full snapshots (internal/snapshot), atomic
//	<dir>/checkpoints/delta-<seq>-<base>.dckpt  v3 delta checkpoints (diff over base)
//
// The checkpointer goroutine periodically runs the engine's barrier
// Checkpoint and writes it atomically (temp + rename) — as a delta over the
// previous checkpoint when DeltaEvery allows, as a full snapshot otherwise —
// prunes all but the newest KeepCheckpoints states (keeping every base a
// retained delta chain references), and truncates WAL segments older than
// the oldest base still retained — so every retained state, not just the
// newest, keeps the WAL suffix it needs for exact recovery (the
// corrupt-newest fallback in LatestCheckpoint depends on this, and deep
// replay regenerates historical results from exactly that coverage).
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"terids/internal/core"
	"terids/internal/obs"
	"terids/internal/snapshot"
	"terids/internal/tuple"
	"terids/internal/wal"
)

// checkpointSubdir is the snapshot directory under the durability root.
const checkpointSubdir = "checkpoints"

// ckptPrefix/ckptSuffix frame full-snapshot filenames; the middle is the
// zero-padded watermark, so lexicographic order is watermark order.
// Delta checkpoints are named delta-<seq>-<base>.dckpt: the filename carries
// both watermarks so pruning and chain resolution never have to open files.
const (
	ckptPrefix  = "ckpt-"
	ckptSuffix  = ".ckpt"
	deltaPrefix = "delta-"
	deltaSuffix = ".dckpt"
)

// maxChainDepth bounds delta-chain walks against corrupt or adversarial
// directories; honest chains are at most DeltaEvery long.
const maxChainDepth = 4096

// ckptFile is one parsed checkpoint filename: a full snapshot (base < 0) or
// a delta over the state at base.
type ckptFile struct {
	name string
	seq  int64
	base int64
}

func ckptName(seq int64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, seq, ckptSuffix)
}

func deltaName(seq, base int64) string {
	return fmt.Sprintf("%s%020d-%020d%s", deltaPrefix, seq, base, deltaSuffix)
}

// parseCkptFileName recognizes both checkpoint filename shapes.
func parseCkptFileName(name string) (ckptFile, bool) {
	if strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ckptSuffix) {
		seq, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), 10, 64)
		if err != nil || seq < 0 {
			return ckptFile{}, false
		}
		return ckptFile{name: name, seq: seq, base: -1}, true
	}
	if strings.HasPrefix(name, deltaPrefix) && strings.HasSuffix(name, deltaSuffix) {
		mid := strings.TrimSuffix(strings.TrimPrefix(name, deltaPrefix), deltaSuffix)
		seqStr, baseStr, ok := strings.Cut(mid, "-")
		if !ok {
			return ckptFile{}, false
		}
		seq, err1 := strconv.ParseInt(seqStr, 10, 64)
		base, err2 := strconv.ParseInt(baseStr, 10, 64)
		if err1 != nil || err2 != nil || base < 0 || seq <= base {
			return ckptFile{}, false
		}
		return ckptFile{name: name, seq: seq, base: base}, true
	}
	return ckptFile{}, false
}

// DurableConfig tunes the durability subsystem around an engine.
type DurableConfig struct {
	// Dir is the durability root: WAL segments live directly in it,
	// snapshots under Dir/checkpoints.
	Dir string
	// CheckpointInterval enables the background checkpointer when > 0.
	CheckpointInterval time.Duration
	// KeepCheckpoints bounds retained checkpoint states. Default: 2. A delta
	// state keeps its whole base chain on disk, so the file count (and the
	// WAL suffix, which is truncated at the oldest base still needed) can
	// exceed this by up to DeltaEvery.
	KeepCheckpoints int
	// DeltaEvery, when > 0, makes the checkpointer write incremental (delta)
	// checkpoints — a diff over the previous checkpoint, snapshot format v3 —
	// with a full snapshot every DeltaEvery deltas. 0 writes only full
	// snapshots.
	DeltaEvery int
	// SegmentBytes / QueueDepth / NoSync pass through to the WAL.
	SegmentBytes int64
	QueueDepth   int
	NoSync       bool
	// Checkpoint, when set, skips discovery: recovery restores from this
	// pre-loaded snapshot (CheckpointPath names it for stats). Callers that
	// need the watermark before building the engine (e.g. to base a replay
	// ring) load it via LatestCheckpoint and hand it over here.
	Checkpoint     *snapshot.Checkpoint
	CheckpointPath string
	// Logf, when set, receives checkpointer progress and errors.
	Logf func(format string, args ...any)
}

func (d *DurableConfig) fill() {
	if d.KeepCheckpoints <= 0 {
		d.KeepCheckpoints = 2
	}
	if d.Logf == nil {
		d.Logf = func(string, ...any) {}
	}
}

// Durable bundles a recovered engine with its WAL and checkpointer.
type Durable struct {
	// Eng is the recovered (or fresh) engine; submissions go through it as
	// usual and are made durable by the attached WAL.
	Eng *Engine
	// Log is the arrival WAL. Owned by the Durable handle: Close closes it
	// after the engine.
	Log *wal.Log

	cfg           DurableConfig
	recoveredFrom string
	restored      *snapshot.Checkpoint
	replayed      int64
	resumeSeq     int64

	// sh/engCfg are what OpenDurable built the engine from; deep replay
	// reuses them to spin up throwaway engines over the same shared state.
	sh     *core.Shared
	engCfg Config

	ckptMu       sync.Mutex
	lastCkptSeq  int64
	lastCkptPath string
	lastCkptTime time.Time
	lastCkptErr  error
	ckptCount    int64
	deltaCount   int64
	snapshots    int
	// prevCkpt is the in-memory image of the newest on-disk checkpoint — the
	// base the next delta diffs against; deltasSince counts deltas written
	// since the last full snapshot.
	prevCkpt    *snapshot.Checkpoint
	deltasSince int
	junkWarned  bool

	deepReplays atomic.Int64

	// met is nil when the engine config disables instrumentation.
	met *durableMetrics

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// durableMetrics are the checkpointer's and deep replay's instruments.
type durableMetrics struct {
	capture    *obs.Histogram
	writeFull  *obs.Histogram
	writeDelta *obs.Histogram
	bytesFull  *obs.Histogram
	bytesDelta *obs.Histogram
	deepReplay *obs.Histogram
}

func newDurableMetrics(reg *obs.Registry) *durableMetrics {
	const (
		writeHelp = "Checkpoint persist latency: encode, write, fsync, atomic rename (kind = full snapshot or delta)."
		bytesHelp = "On-disk size of each written checkpoint file (kind = full snapshot or delta)."
	)
	return &durableMetrics{
		capture: reg.Histogram("terids_checkpoint_capture_seconds",
			"Barrier checkpoint capture: pipeline drain to the watermark plus in-memory state copy.", nil),
		writeFull:  reg.Histogram("terids_checkpoint_write_seconds", writeHelp, obs.Labels{"kind": "full"}),
		writeDelta: reg.Histogram("terids_checkpoint_write_seconds", writeHelp, obs.Labels{"kind": "delta"}),
		bytesFull:  reg.SizeHistogram("terids_checkpoint_bytes", bytesHelp, obs.Labels{"kind": "full"}),
		bytesDelta: reg.SizeHistogram("terids_checkpoint_bytes", bytesHelp, obs.Labels{"kind": "delta"}),
		deepReplay: reg.Histogram("terids_deep_replay_seconds",
			"Deep-replay regeneration: restore the best base checkpoint and re-run the WAL range through a throwaway engine.", nil),
	}
}

// DurabilityStats is the /stats health block for the durability subsystem.
type DurabilityStats struct {
	WAL wal.Stats `json:"wal"`
	// RecoveredFrom is the snapshot file this process booted from (empty for
	// a cold start); Replayed counts the WAL arrivals re-run on boot.
	RecoveredFrom string `json:"recovered_from,omitempty"`
	Replayed      int64  `json:"replayed"`
	// ReplayLag is how many durable arrivals the merged output still trails
	// by — the work a crash right now would replay beyond the WAL's tail.
	ReplayLag int64 `json:"replay_lag"`
	// Checkpointer health. Checkpoints counts every checkpoint taken;
	// DeltaCheckpoints the subset written as v3 deltas. SnapshotsRetained
	// counts retained checkpoint files (chain bases included).
	Checkpoints              int64   `json:"checkpoints"`
	DeltaCheckpoints         int64   `json:"delta_checkpoints"`
	SnapshotsRetained        int     `json:"snapshots_retained"`
	LastCheckpointSeq        int64   `json:"last_checkpoint_seq"`
	LastCheckpointPath       string  `json:"last_checkpoint_path,omitempty"`
	LastCheckpointAgeSeconds float64 `json:"last_checkpoint_age_seconds"` // -1: never
	LastCheckpointError      string  `json:"last_checkpoint_error,omitempty"`
	// ReplayReach is the oldest sequence deep replay can regenerate results
	// from (checkpoint + retained WAL coverage); -1 when deep replay has no
	// coverage at all. DeepReplays counts completed deep replays.
	ReplayReach int64 `json:"replay_reach"`
	DeepReplays int64 `json:"deep_replays"`
}

// CheckpointDir returns the snapshot directory under a durability root.
func CheckpointDir(dir string) string { return filepath.Join(dir, checkpointSubdir) }

// listCheckpointFiles returns the parsed checkpoint files in a checkpoint
// directory, newest first (ties prefer the full snapshot), plus the names of
// entries that are not checkpoint files at all — callers skip those instead
// of letting one stray file abort pruning or recovery.
func listCheckpointFiles(ckptDir string) (files []ckptFile, skipped []string, err error) {
	des, err := os.ReadDir(ckptDir)
	if err != nil {
		return nil, nil, err
	}
	for _, de := range des {
		if de.IsDir() {
			skipped = append(skipped, de.Name())
			continue
		}
		f, ok := parseCkptFileName(de.Name())
		if !ok {
			skipped = append(skipped, de.Name())
			continue
		}
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].seq != files[j].seq {
			return files[i].seq > files[j].seq
		}
		return files[i].base < files[j].base // full (-1) before delta
	})
	return files, skipped, nil
}

// indexBySeq maps each checkpoint state watermark to its file, preferring a
// full snapshot when both shapes exist at the same watermark.
func indexBySeq(files []ckptFile) map[int64]ckptFile {
	m := make(map[int64]ckptFile, len(files))
	for _, f := range files {
		if old, ok := m[f.seq]; !ok || (old.base >= 0 && f.base < 0) {
			m[f.seq] = f
		}
	}
	return m
}

// materializeCheckpoint loads the full checkpoint state a file represents:
// a full snapshot reads directly; a delta resolves its base chain (deltas on
// deltas, terminating at a full snapshot) and applies the diffs forward.
func materializeCheckpoint(ckptDir string, bySeq map[int64]ckptFile, f ckptFile, depth int) (*snapshot.Checkpoint, error) {
	if depth > maxChainDepth {
		return nil, fmt.Errorf("engine: delta chain for %s deeper than %d", f.name, maxChainDepth)
	}
	path := filepath.Join(ckptDir, f.name)
	if f.base < 0 {
		return snapshot.ReadFile(path)
	}
	dl, err := snapshot.ReadDeltaFile(path)
	if err != nil {
		return nil, err
	}
	if dl.Seq != f.seq || dl.BaseSeq != f.base {
		return nil, fmt.Errorf("engine: delta %s spans %d→%d, filename says %d→%d",
			f.name, dl.BaseSeq, dl.Seq, f.base, f.seq)
	}
	bf, ok := bySeq[f.base]
	if !ok || bf.seq >= f.seq {
		return nil, fmt.Errorf("engine: delta %s: base checkpoint at seq %d missing", f.name, f.base)
	}
	base, err := materializeCheckpoint(ckptDir, bySeq, bf, depth+1)
	if err != nil {
		return nil, err
	}
	return snapshot.ApplyDelta(base, dl)
}

// LatestCheckpoint finds and loads the newest readable checkpoint state
// under a durability root, materializing delta chains. Corrupt or unreadable
// states are skipped (the previous one still recovers, at the cost of more
// WAL replay); a root with no usable snapshot returns ("", nil, nil) —
// recovery then replays the WAL from zero.
func LatestCheckpoint(dir string) (string, *snapshot.Checkpoint, error) {
	files, _, err := listCheckpointFiles(CheckpointDir(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil, nil
		}
		return "", nil, err
	}
	bySeq := indexBySeq(files)
	for _, f := range files {
		c, err := materializeCheckpoint(CheckpointDir(dir), bySeq, f, 0)
		if err != nil {
			continue
		}
		return filepath.Join(CheckpointDir(dir), f.name), c, nil
	}
	return "", nil, nil
}

// OpenDurable boots a durable engine from a durability directory: restore
// the newest snapshot (if any), open the WAL, replay every logged arrival
// past the snapshot watermark through the normal pipeline, attach the WAL to
// the live submission path, and start the background checkpointer. The
// returned engine is at exactly the state an uninterrupted run would hold
// after the last durable arrival.
func OpenDurable(sh *core.Shared, cfg Config, d DurableConfig) (*Durable, error) {
	d.fill()
	if err := os.MkdirAll(CheckpointDir(d.Dir), 0o755); err != nil {
		return nil, err
	}
	path, ckpt := d.CheckpointPath, d.Checkpoint
	if ckpt == nil {
		var err error
		path, ckpt, err = LatestCheckpoint(d.Dir)
		if err != nil {
			return nil, err
		}
	}
	log, err := wal.Open(d.Dir, wal.Options{
		SegmentBytes: d.SegmentBytes, QueueDepth: d.QueueDepth, NoSync: d.NoSync,
	})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Durable, error) {
		log.Close()
		return nil, err
	}

	watermark := int64(0)
	if ckpt != nil {
		watermark = ckpt.Seq
	}
	if st := log.Stats(); st.NextSeq > st.FirstSeq {
		// Non-empty log: it must connect to the snapshot watermark on both
		// sides, or exact replay is impossible.
		if st.FirstSeq > watermark {
			return fail(fmt.Errorf("engine: wal starts at seq %d, snapshot watermark is %d: arrivals in between are lost", st.FirstSeq, watermark))
		}
		if st.NextSeq < watermark {
			return fail(fmt.Errorf("engine: wal ends at seq %d before snapshot watermark %d: the log is stale", st.NextSeq, watermark))
		}
	}

	engCfg := cfg // pre-WAL copy: deep replay builds throwaway engines from it
	cfg.WAL = log
	var eng *Engine
	if ckpt != nil {
		eng, err = NewFromSnapshot(sh, cfg, ckpt)
	} else {
		eng, err = New(sh, cfg)
	}
	if err != nil {
		return fail(err)
	}

	dur := &Durable{
		Eng: eng, Log: log, cfg: d,
		sh: sh, engCfg: engCfg,
		recoveredFrom: path, restored: ckpt,
		lastCkptSeq: -1, lastCkptPath: path,
		stop: make(chan struct{}),
	}
	if !cfg.ObsOff {
		reg := cfg.Obs
		if reg == nil {
			reg = obs.Default()
		}
		dur.met = newDurableMetrics(reg)
	}
	if ckpt != nil {
		dur.lastCkptSeq = ckpt.Seq
	}
	// Replay the durable suffix through the normal pipeline in batches. The
	// WAL appends these sequences idempotently (they are already durable), so
	// SubmitBatch behaves exactly as it did the first time — minus the per-
	// arrival submission overhead, which is what makes recovery fast.
	const recoveryBatch = 256
	batch := make([]*tuple.Record, 0, recoveryBatch)
	err = log.Replay(watermark, func(e wal.Entry) error {
		rec, err := core.ArrivalRecord(sh.Schema, e.RID, e.Stream, e.TupleSeq, e.EntityID, e.Values)
		if err != nil {
			return err
		}
		batch = append(batch, rec)
		if len(batch) < recoveryBatch {
			return nil
		}
		dur.replayed += int64(len(batch))
		err = eng.SubmitBatch(batch)
		batch = batch[:0]
		return err
	})
	if err == nil && len(batch) > 0 {
		dur.replayed += int64(len(batch))
		err = eng.SubmitBatch(batch)
	}
	if err != nil {
		eng.Close()
		return fail(fmt.Errorf("engine: wal replay: %w", err))
	}
	dur.resumeSeq = watermark + dur.replayed
	dur.snapshots = dur.countSnapshots()

	if d.CheckpointInterval > 0 {
		dur.wg.Add(1)
		go dur.checkpointLoop()
	}
	return dur, nil
}

// ResumeSeq is the first sequence number the recovered engine will assign to
// a new arrival — the snapshot watermark plus the replayed WAL suffix.
func (d *Durable) ResumeSeq() int64 { return d.resumeSeq }

// Replayed is the number of WAL arrivals re-run on boot.
func (d *Durable) Replayed() int64 { return d.replayed }

// RestoredCheckpoint returns the snapshot recovery booted from (nil for a
// cold start).
func (d *Durable) RestoredCheckpoint() *snapshot.Checkpoint { return d.restored }

// checkpointLoop is the background checkpointer.
func (d *Durable) checkpointLoop() {
	defer d.wg.Done()
	tick := time.NewTicker(d.cfg.CheckpointInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if _, err := d.CheckpointNow(); err != nil {
				d.cfg.Logf("background checkpoint: %v", err)
			}
		case <-d.stop:
			return
		}
	}
}

// CheckpointNow takes a barrier checkpoint, writes it atomically into the
// checkpoint directory — as a v3 delta over the previous checkpoint when
// DeltaEvery allows it, as a full snapshot otherwise — prunes states beyond
// KeepCheckpoints, and truncates WAL segments older than the oldest retained
// base. A watermark that has not advanced since the last checkpoint is a
// no-op.
func (d *Durable) CheckpointNow() (string, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	captureStart := time.Now()
	c, err := d.Eng.Checkpoint()
	if err != nil {
		d.lastCkptErr = err
		return "", err
	}
	if m := d.met; m != nil {
		m.capture.ObserveSince(captureStart)
	}
	if c.Seq == d.lastCkptSeq {
		return d.lastCkptPath, nil
	}
	ckptDir := CheckpointDir(d.cfg.Dir)
	kind := "checkpoint"
	var path string
	wroteDelta := false
	// writeStart covers the whole persist: delta computation (the encode
	// cost deltas exist to amortize), file write, fsync, rename.
	writeStart := time.Now()
	if d.cfg.DeltaEvery > 0 && d.prevCkpt != nil && d.prevCkpt.Seq == d.lastCkptSeq &&
		d.deltasSince < d.cfg.DeltaEvery {
		dl, derr := snapshot.ComputeDelta(d.prevCkpt, c)
		if derr != nil {
			// Cannot happen between checkpoints of one engine; degrade to a
			// full snapshot rather than lose the checkpoint.
			d.cfg.Logf("delta checkpoint %d→%d: %v; writing a full snapshot", d.prevCkpt.Seq, c.Seq, derr)
		} else {
			path = filepath.Join(ckptDir, deltaName(c.Seq, d.prevCkpt.Seq))
			if err := snapshot.WriteDeltaFile(path, dl); err != nil {
				d.lastCkptErr = err
				return "", err
			}
			wroteDelta = true
			kind = "delta checkpoint"
		}
	}
	if !wroteDelta {
		path = filepath.Join(ckptDir, ckptName(c.Seq))
		if err := snapshot.WriteFile(path, c); err != nil {
			d.lastCkptErr = err
			return "", err
		}
		d.deltasSince = 0
	} else {
		d.deltasSince++
		d.deltaCount++
	}
	writeTook := time.Since(writeStart)
	var sizeBytes int64
	if fi, serr := os.Stat(path); serr == nil {
		sizeBytes = fi.Size()
	}
	if m := d.met; m != nil {
		wh, bh := m.writeFull, m.bytesFull
		if wroteDelta {
			wh, bh = m.writeDelta, m.bytesDelta
		}
		wh.ObserveDuration(writeTook)
		if sizeBytes > 0 {
			bh.Observe(sizeBytes)
		}
	}
	ckKind := "full"
	if wroteDelta {
		ckKind = "delta"
	}
	d.Eng.jr.Record("checkpoint", "checkpoint persisted",
		map[string]any{
			"kind": ckKind, "seq": c.Seq, "bytes": sizeBytes,
			"duration_ms": float64(writeTook.Microseconds()) / 1000, "path": path,
		})
	// prevCkpt pins the full materialized state in memory as the next
	// delta's base — only worth the footprint when deltas are enabled.
	if d.cfg.DeltaEvery > 0 {
		d.prevCkpt = c
	}
	d.lastCkptSeq = c.Seq
	d.lastCkptPath = path
	d.lastCkptTime = time.Now()
	d.lastCkptErr = nil
	d.ckptCount++
	d.cfg.Logf("%s %s (watermark %d, %d residents, %d live pairs)",
		kind, path, c.Seq, len(c.Residents), len(c.Pairs))
	if err := d.prune(c.Seq); err != nil {
		d.lastCkptErr = err
		return path, err
	}
	return path, nil
}

// prune removes checkpoint files beyond the newest KeepCheckpoints states —
// keeping every file a retained delta's base chain still references — then
// truncates the WAL to the oldest base still needed. Every retained file is
// a potential fallback recovery state (if the newest ever turns out
// unreadable, LatestCheckpoint falls back), so the WAL keeps the suffix of
// the oldest one; that same coverage is what deep replay regenerates
// historical /results from. Non-checkpoint files in the directory are
// skipped (logged once), and a failed removal does not abort the rest of the
// prune or the WAL truncation behind it.
func (d *Durable) prune(newest int64) error {
	ckptDir := CheckpointDir(d.cfg.Dir)
	files, skipped, err := listCheckpointFiles(ckptDir)
	if err != nil {
		return err
	}
	if len(skipped) > 0 && !d.junkWarned {
		d.junkWarned = true
		d.cfg.Logf("checkpoint dir: ignoring %d non-checkpoint entrie(s) (e.g. %s)", len(skipped), skipped[0])
	}
	bySeq := indexBySeq(files)
	need := make(map[string]bool)
	oldest := newest
	var mark func(f ckptFile, depth int)
	mark = func(f ckptFile, depth int) {
		if depth > maxChainDepth || need[f.name] {
			return
		}
		need[f.name] = true
		if f.seq < oldest {
			oldest = f.seq
		}
		if f.base >= 0 {
			if bf, ok := bySeq[f.base]; ok && bf.seq < f.seq {
				mark(bf, depth+1)
			} else {
				d.cfg.Logf("checkpoint %s: base at seq %d missing, chain unrecoverable", f.name, f.base)
			}
		}
	}
	for i := 0; i < len(files) && i < d.cfg.KeepCheckpoints; i++ {
		mark(files[i], 0)
	}
	var errs []error
	for _, f := range files {
		if need[f.name] {
			continue
		}
		if err := os.Remove(filepath.Join(ckptDir, f.name)); err != nil {
			errs = append(errs, err)
		}
	}
	d.snapshots = len(need)
	if err := d.Log.TruncateBefore(oldest); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func (d *Durable) countSnapshots() int {
	files, _, err := listCheckpointFiles(CheckpointDir(d.cfg.Dir))
	if err != nil {
		return 0
	}
	return len(files)
}

// Stats reports WAL and checkpointer health for /stats.
func (d *Durable) Stats() DurabilityStats {
	st := DurabilityStats{
		WAL:           d.Log.Stats(),
		RecoveredFrom: d.recoveredFrom,
		Replayed:      d.replayed,
		DeepReplays:   d.deepReplays.Load(),
		ReplayReach:   -1,
	}
	if reach, ok := d.DeepReach(); ok {
		st.ReplayReach = reach
	}
	if lag := st.WAL.DurableSeq - d.Eng.Completed(); lag > 0 {
		st.ReplayLag = lag
	}
	d.ckptMu.Lock()
	st.Checkpoints = d.ckptCount
	st.DeltaCheckpoints = d.deltaCount
	st.SnapshotsRetained = d.snapshots
	st.LastCheckpointSeq = d.lastCkptSeq
	st.LastCheckpointPath = d.lastCkptPath
	st.LastCheckpointAgeSeconds = -1
	if !d.lastCkptTime.IsZero() {
		st.LastCheckpointAgeSeconds = time.Since(d.lastCkptTime).Seconds()
	}
	if d.lastCkptErr != nil {
		st.LastCheckpointError = d.lastCkptErr.Error()
	}
	d.ckptMu.Unlock()
	return st
}

// Close stops the checkpointer, drains and closes the engine, optionally
// writes one final checkpoint (so a clean restart replays nothing), and
// closes the WAL.
func (d *Durable) Close(finalCheckpoint bool) error {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
	errEng := d.Eng.Close()
	var errCkpt error
	if finalCheckpoint && errEng == nil {
		// A drained, closed engine stays checkpointable; this captures the
		// complete final state.
		if _, err := d.CheckpointNow(); err != nil {
			errCkpt = fmt.Errorf("final checkpoint: %w", err)
		}
	}
	errLog := d.Log.Close()
	return errors.Join(errEng, errCkpt, errLog)
}
