package engine

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
	"time"

	"terids/internal/core"
	"terids/internal/tuple"
)

// zipfStream reorders the fixture stream so topic mass arrives Zipf-skewed:
// records are bucketed by a topic proxy (the hash of their first attribute)
// and interleaved with 1/rank² weights, so the head of the stream is
// dominated by one bucket — the skew pattern the TER experiments highlight
// and the case a static modulo layout handles worst. Deterministic.
func zipfStream(recs []*tuple.Record) []*tuple.Record {
	const buckets = 8
	type ranked struct {
		prio float64
		b, i int
		r    *tuple.Record
	}
	var all []ranked
	idx := make([]int, buckets)
	for _, r := range recs {
		b := int(fnv32a(r.Value(0)) % buckets)
		w := 1.0 / float64((b+1)*(b+1))
		idx[b]++
		all = append(all, ranked{prio: float64(idx[b]) / w, b: b, i: idx[b], r: r})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].prio != all[j].prio {
			return all[i].prio < all[j].prio
		}
		if all[i].b != all[j].b {
			return all[i].b < all[j].b
		}
		return all[i].i < all[j].i
	})
	out := make([]*tuple.Record, len(all))
	for i := range all {
		out[i] = all[i].r
	}
	return out
}

// runProcessorOn replays an arbitrary record sequence through the
// single-threaded reference.
func runProcessorOn(t *testing.T, f fixture, recs []*tuple.Record) ([][]core.Pair, []core.Pair) {
	t.Helper()
	proc, err := core.NewProcessor(f.sh, f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	perArrival := make([][]core.Pair, 0, len(recs))
	for _, r := range recs {
		pairs, err := proc.Advance(r)
		if err != nil {
			t.Fatal(err)
		}
		perArrival = append(perArrival, pairs)
	}
	return perArrival, proc.Results().Pairs()
}

func randLayout(rng *rand.Rand, k int) Layout {
	l := Layout{K: k, Slots: make([]int, LayoutSlots)}
	for i := range l.Slots {
		l.Slots[i] = rng.Intn(k)
	}
	return l
}

// TestBalancedSlotsLPT pins the weighted layout construction: heavy slots
// are isolated, shard loads end up near-even, zero-weight slots spread
// round-robin instead of piling onto one shard, and the assignment is
// deterministic.
func TestBalancedSlotsLPT(t *testing.T) {
	weights := make([]int64, LayoutSlots)
	weights[0] = 100 // one hot topic
	weights[1] = 60
	weights[2] = 30
	weights[3] = 30
	slots := balancedSlots(weights, 4)
	if len(slots) != LayoutSlots {
		t.Fatalf("layout has %d slots, want %d", len(slots), LayoutSlots)
	}
	owners := map[int]bool{}
	for _, s := range []int{0, 1, 2, 3} {
		if owners[slots[s]] && s != 3 {
			t.Fatalf("hot slots share shard %d: %v", slots[s], slots[:4])
		}
		owners[slots[s]] = true
	}
	proj := projectedImbalance(weights, Layout{K: 4, Slots: slots})
	if proj > 100.0*4/220*1.001 { // the hot slot itself is the floor
		t.Fatalf("projected imbalance %.3f, want the hot-slot floor ~%.3f", proj, 100.0*4/220)
	}
	// Zero-weight slots are spread, not dumped on the emptiest shard.
	counts := make([]int, 4)
	for _, sh := range slots {
		counts[sh]++
	}
	for sh, n := range counts {
		if n < LayoutSlots/8 {
			t.Fatalf("shard %d owns only %d of %d slots: zero-weight slots not spread (%v)",
				sh, n, LayoutSlots, counts)
		}
	}
	if !slices.Equal(slots, balancedSlots(weights, 4)) {
		t.Fatal("balancedSlots is not deterministic")
	}
}

// TestLayoutNormalized covers the layout validation contract.
func TestLayoutNormalized(t *testing.T) {
	if _, err := (Layout{K: 0}).normalized(); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := (Layout{K: 2, Slots: []int{0, 1}}).normalized(); err == nil {
		t.Fatal("short slot table accepted")
	}
	bad := DefaultLayout(2)
	bad.Slots[7] = 2
	if _, err := bad.normalized(); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	l, err := (Layout{K: 3}).normalized()
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Slots) != LayoutSlots || l.Slots[4] != 1 {
		t.Fatalf("nil slots not defaulted: %v", l.Slots[:8])
	}
}

// TestRebalanceEquivalenceUnderSkew is the acceptance property test of the
// rebalancing contract: a Zipfian-skewed stream runs on a durable engine
// with the skew monitor live and manual rebalances — including shard-count
// changes and a randomized layout — fired mid-stream, is SIGKILLed (directory
// clone) at a pseudo-random point whose recovery replays ACROSS a rebalance,
// and continues on the recovered engine through more rebalances. The merged
// output — pair identities, order, probabilities, replayed and live alike —
// must be byte-identical to an uninterrupted fixed-K run. Run under -race in
// CI.
func TestRebalanceEquivalenceUnderSkew(t *testing.T) {
	f := loadFixture(t)
	zs := zipfStream(f.stream)
	n := len(zs)
	wantPerArrival, wantFinal := runProcessorOn(t, f, zs)

	// The uninterrupted fixed-K reference engine: guards that the Processor
	// reference and a plain K=4 engine agree on this skewed stream before
	// any rebalancing enters the picture.
	fixed := newCollector()
	engFixed, err := New(f.sh, Config{Core: f.cfg, Shards: 4, OnResult: fixed.onResult})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range zs {
		if err := engFixed.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := engFixed.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range wantPerArrival {
		if !samePairs(wantPerArrival[i], fixed.pairs[int64(i)]) {
			t.Fatalf("fixed-K reference diverged from the Processor at arrival %d", i)
		}
	}

	rng := rand.New(rand.NewSource(2024))
	ckptAt := n/4 + rng.Intn(n/8)
	rebAt := ckptAt + 1 + rng.Intn(n/8)  // rebalance AFTER the checkpoint...
	kill := rebAt + 1 + rng.Intn(n/8)    // ...and the kill after that, so
	rebAt2 := kill + 1 + rng.Intn(n/8)   // recovery replays across it; more
	rebAt3 := rebAt2 + 1 + rng.Intn(n/8) // rebalances follow on the
	if rebAt3 >= n {                     // recovered engine.
		t.Fatalf("fixture stream too short: rebAt3=%d n=%d", rebAt3, n)
	}
	monitored := RebalanceConfig{Threshold: 1.3, Interval: time.Millisecond, Sustain: 1, Logf: t.Logf}

	dir := t.TempDir()
	col1 := newCollector()
	d1, err := OpenDurable(f.sh,
		Config{Core: f.cfg, Shards: 2, OnResult: col1.onResult, Rebalance: monitored},
		DurableConfig{Dir: dir, NoSync: true, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range zs[:kill] {
		if err := d1.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
		switch i + 1 {
		case ckptAt:
			if _, err := d1.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
		case rebAt:
			// Manual K-change rebalance between the checkpoint and the kill:
			// the recovery below replays the WAL straight across it.
			if err := d1.Eng.Rebalance(Layout{K: 3}); err != nil {
				t.Fatal(err)
			}
		}
	}
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	if err := d1.Close(false); err != nil {
		t.Fatal(err)
	}

	col2 := newCollector()
	d2, err := OpenDurable(f.sh,
		Config{Core: f.cfg, Shards: 0, OnResult: col2.onResult, Rebalance: monitored},
		DurableConfig{Dir: crashDir, NoSync: true, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if d2.ResumeSeq() != int64(kill) {
		t.Fatalf("recovered engine resumes at %d, want %d", d2.ResumeSeq(), kill)
	}
	// Shards: 0 adopts the checkpoint's layout — taken at K=2 before the
	// rebalance, so recovery restores K=2 and replays across the K=3 epoch.
	if got := d2.Eng.Stats().Shards; got != 2 {
		t.Fatalf("recovery adopted K=%d, want the checkpoint's 2", got)
	}
	for i, r := range zs[kill:] {
		if err := d2.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
		switch kill + i + 1 {
		case rebAt2:
			if err := d2.Eng.Rebalance(randLayout(rng, 5)); err != nil {
				t.Fatal(err)
			}
		case rebAt3:
			if err := d2.Eng.Rebalance(d2.Eng.BalancedLayout(4)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := d2.Eng.Stats()
	if err := d2.Close(true); err != nil {
		t.Fatal(err)
	}
	if st.Rebalance.Rebalances < 2 {
		t.Fatalf("recovered engine performed %d rebalances, want >= 2 (manual alone)", st.Rebalance.Rebalances)
	}
	if st.Shards != 4 {
		t.Fatalf("final shard count %d, want 4", st.Shards)
	}

	for i := 0; i < n; i++ {
		got, ok := col1.pairs[int64(i)]
		if i >= kill {
			got, ok = col2.pairs[int64(i)]
		}
		if !ok {
			t.Fatalf("arrival %d never finalized (ckpt=%d reb=%d kill=%d)", i, ckptAt, rebAt, kill)
		}
		if !samePairs(wantPerArrival[i], got) {
			t.Fatalf("arrival %d (ckpt=%d reb=%d kill=%d reb2=%d reb3=%d): got %v, reference %v",
				i, ckptAt, rebAt, kill, rebAt2, rebAt3, got, wantPerArrival[i])
		}
	}
	if !samePairs(wantFinal, d2.Eng.ResultSet()) {
		t.Fatalf("final entity set differs after rebalances + crash recovery (kill=%d)", kill)
	}

	// A clean reboot off the final checkpoint resumes at the stream's end
	// with the last rebalanced layout adopted.
	d3, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 0},
		DurableConfig{Dir: crashDir, NoSync: true, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if d3.ResumeSeq() != int64(n) || d3.Replayed() != 0 {
		t.Fatalf("clean restart resumes at %d with %d replayed, want %d/0", d3.ResumeSeq(), d3.Replayed(), n)
	}
	if got := d3.Eng.Stats().Shards; got != 4 {
		t.Fatalf("clean restart adopted K=%d, want the rebalanced 4", got)
	}
	if !samePairs(wantFinal, d3.Eng.ResultSet()) {
		t.Fatal("clean restart entity set differs")
	}
	if err := d3.Close(false); err != nil {
		t.Fatal(err)
	}
}

// TestMonitorAutoRebalance: under a pathological layout (every topic slot on
// shard 0 — the extreme of topic skew), the background monitor must detect
// the sustained imbalance, fire an automatic weighted rebalance, and bring
// the skew down — without perturbing the output stream.
func TestMonitorAutoRebalance(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, wantFinal := runProcessor(t, f)

	col := newCollector()
	eng, err := New(f.sh, Config{
		Core: f.cfg, Shards: 4, OnResult: col.onResult,
		Rebalance: RebalanceConfig{Threshold: 1.5, Interval: 2 * time.Millisecond, Sustain: 2, Logf: t.Logf},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Concentrate everything: all slots → shard 0.
	if err := eng.Rebalance(Layout{K: 4, Slots: make([]int, LayoutSlots)}); err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream {
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for eng.Stats().Rebalance.AutoRebalances == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("monitor never fired: stats %+v", eng.Stats().Rebalance)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := eng.Stats()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Rebalance.LastImbalance < 1.5 {
		t.Fatalf("auto rebalance recorded imbalance %.2f, want >= threshold 1.5", st.Rebalance.LastImbalance)
	}
	if imb := eng.Imbalance(); imb >= st.Rebalance.LastImbalance {
		t.Fatalf("imbalance %.2f did not improve on the pre-rebalance %.2f", imb, st.Rebalance.LastImbalance)
	}
	for i := range wantPerArrival {
		if !samePairs(wantPerArrival[i], col.pairs[int64(i)]) {
			t.Fatalf("arrival %d perturbed by the auto rebalance", i)
		}
	}
	if !samePairs(wantFinal, eng.ResultSet()) {
		t.Fatal("final entity set perturbed by the auto rebalance")
	}
}

// TestCheckpointCarriesLayout: checkpoints record the live slot table
// (snapshot format v2) and restore adopts it exactly when the shard counts
// line up — including the Shards=0 auto-adoption — and falls back to the
// default modulo layout otherwise.
func TestCheckpointCarriesLayout(t *testing.T) {
	f := loadFixture(t)
	rng := rand.New(rand.NewSource(7))
	custom := randLayout(rng, 3)

	eng, err := New(f.sh, Config{Core: f.cfg, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream[:60] {
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Rebalance(custom); err != nil {
		t.Fatal(err)
	}
	c, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Shards != 3 || !slices.Equal(c.SlotTable, custom.Slots) {
		t.Fatalf("checkpoint carries K=%d table %v..., want the rebalanced layout", c.Shards, c.SlotTable[:4])
	}
	c = roundtrip(t, c) // through the v2 binary format

	cases := []struct {
		name      string
		shards    int
		wantK     int
		wantTable []int
	}{
		{"same K adopts the table", 3, 3, custom.Slots},
		{"auto K adopts everything", 0, 3, custom.Slots},
		{"different K falls back to default", 5, 5, DefaultLayout(5).Slots},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e2, err := NewFromSnapshot(f.sh, Config{Core: f.cfg, Shards: tc.shards}, c)
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			if got := e2.Stats().Shards; got != tc.wantK {
				t.Fatalf("restored K=%d, want %d", got, tc.wantK)
			}
			if !slices.Equal(e2.layout, tc.wantTable) {
				t.Fatalf("restored layout %v..., want %v...", e2.layout[:8], tc.wantTable[:8])
			}
		})
	}
}

// TestAdoptionCapsShardCount: a tampered checkpoint claiming a huge shard
// count must not make an auto-sizing restore (Shards=0) spawn that many
// shard workers — CRC protects integrity, not authenticity.
func TestAdoptionCapsShardCount(t *testing.T) {
	f := loadFixture(t)
	eng, err := New(f.sh, Config{Core: f.cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream[:20] {
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	c, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Tamper: an absurd shard count with a structurally valid slot table
	// (all zeros pass Validate against any Shards >= 1).
	c.Shards = 100000
	c.SlotTable = make([]int, LayoutSlots)
	e2, err := NewFromSnapshot(f.sh, Config{Core: f.cfg, Shards: 0}, c)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := e2.Stats().Shards; got > maxAdoptShards {
		t.Fatalf("restore adopted K=%d from a tampered checkpoint, cap is %d", got, maxAdoptShards)
	}
}

// TestRebalanceClosedAndInvalid covers the error contract.
func TestRebalanceClosedAndInvalid(t *testing.T) {
	f := loadFixture(t)
	eng, err := New(f.sh, Config{Core: f.cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Rebalance(Layout{K: 0}); err == nil {
		t.Fatal("K=0 rebalance accepted")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Rebalance(DefaultLayout(2)); err != ErrClosed {
		t.Fatalf("rebalance after close: %v, want ErrClosed", err)
	}
}

// TestRebalanceResizesImputeWorkers pins the impute-pool sizing contract
// across rebalances: an auto-sized pool (ImputeWorkers unset) follows K,
// while an explicitly configured pool stays fixed. Both engines keep
// processing correctly after the resize.
func TestRebalanceResizesImputeWorkers(t *testing.T) {
	f := loadFixture(t)

	auto, err := New(f.sh, Config{Core: f.cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	if got := auto.Stats().ImputeWorkers; got != 2 {
		t.Fatalf("auto-sized engine starts with %d impute workers, want 2", got)
	}
	for _, r := range f.stream[:len(f.stream)/2] {
		if err := auto.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := auto.Rebalance(Layout{K: 4}); err != nil {
		t.Fatal(err)
	}
	st := auto.Stats()
	if st.Shards != 4 {
		t.Fatalf("rebalance left Shards=%d, want 4", st.Shards)
	}
	if st.ImputeWorkers != 4 {
		t.Fatalf("auto-sized impute pool is %d after rebalance to K=4, want 4", st.ImputeWorkers)
	}
	for _, r := range f.stream[len(f.stream)/2:] {
		if err := auto.Submit(r); err != nil {
			t.Fatal(err)
		}
	}

	fixed, err := New(f.sh, Config{Core: f.cfg, Shards: 2, ImputeWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if err := fixed.Rebalance(Layout{K: 4}); err != nil {
		t.Fatal(err)
	}
	if got := fixed.Stats().ImputeWorkers; got != 3 {
		t.Fatalf("explicit impute pool resized to %d by rebalance, want 3", got)
	}
}
