package engine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"terids/internal/wal"
)

// waitUntil polls cond until it holds or the deadline expires.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFollowerTailsWriterAndPromotes is the end-to-end replica contract:
// a follower tailing a live writer's WAL converges to byte-identical
// results; promotion is refused while the writer holds the flock and the
// follower keeps following; once the writer is gone, promotion seals at
// the WAL frontier, attaches the log, and ingest resumes on the promoted
// handle with the merged stream still byte-identical to an uninterrupted
// single-threaded run. Run under -race in CI.
func TestFollowerTailsWriterAndPromotes(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, wantFinal := runProcessor(t, f)
	n := len(f.stream)
	cut := 2 * n / 3
	dir := t.TempDir()

	w, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2},
		DurableConfig{Dir: dir, NoSync: true, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	col := newCollector()
	fol, err := OpenFollower(f.sh, Config{Core: f.cfg, Shards: 2, OnResult: col.onResult},
		FollowerConfig{Dir: dir, Poll: 2 * time.Millisecond,
			Durable: DurableConfig{NoSync: true, SegmentBytes: 4096}})
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range f.stream[:cut] {
		if err := w.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "follower caught up to the writer", func() bool {
		return fol.Eng.Completed() == int64(cut) && fol.Lag() == 0 &&
			w.Eng.Completed() == int64(cut)
	})
	if !fol.CaughtUp() {
		t.Fatal("follower at zero lag does not report CaughtUp")
	}
	if !samePairs(w.Eng.ResultSet(), fol.Eng.ResultSet()) {
		t.Fatal("follower entity set differs from the writer's at the same watermark")
	}

	// Taking over while the writer is alive must be refused — the flock is
	// the writer's liveness — and the refusal must not stop the tail loop.
	if _, err := fol.Promote(); !errors.Is(err, wal.ErrLocked) {
		t.Fatalf("promote with a live writer = %v, want wal.ErrLocked", err)
	}
	if !fol.WriterAlive() {
		t.Fatal("live writer not reported by the liveness probe")
	}
	more := cut + (n-cut)/2
	for _, r := range f.stream[cut:more] {
		if err := w.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "follower resumed tailing after refused promotion", func() bool {
		return fol.Eng.Completed() == int64(more) && fol.Lag() == 0
	})

	// The writer dies (a clean Close releases the flock exactly like a
	// SIGKILL would — the kernel drops it either way).
	if err := w.Close(false); err != nil {
		t.Fatal(err)
	}
	d2, err := fol.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if d2.ResumeSeq() != int64(more) {
		t.Fatalf("promoted writer resumes at %d, want %d", d2.ResumeSeq(), more)
	}
	if st := fol.Stats(); !st.Promoted {
		t.Fatal("stats do not report the promotion")
	}
	// Ingest resumes on the same engine, now on the durable path.
	for _, r := range f.stream[more:] {
		if err := d2.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := d2.Log.Stats().NextSeq; got != int64(n) {
		t.Fatalf("wal frontier %d after resumed ingest, want %d", got, n)
	}
	if err := d2.Close(true); err != nil {
		t.Fatal(err)
	}
	if err := fol.Close(); err != nil {
		t.Fatal(err)
	}

	// The one merged stream — tailed, then promoted-live — must be
	// byte-identical to the uninterrupted reference, every arrival.
	for i := 0; i < n; i++ {
		got, ok := col.pairs[int64(i)]
		if !ok {
			t.Fatalf("arrival %d never finalized on the follower", i)
		}
		if !samePairs(wantPerArrival[i], got) {
			t.Fatalf("arrival %d: follower emitted %v, reference %v", i, got, wantPerArrival[i])
		}
	}
	if !samePairs(wantFinal, d2.Eng.ResultSet()) {
		t.Fatal("final entity set differs after tail + promote + resumed ingest")
	}
}

// TestFollowerLiveDeltaCatchUp is the live-apply convergence property test:
// when the WAL is truncated below the follower's cursor, the follower must
// catch up by applying the delta-checkpoint chain onto its RUNNING engine
// — incrementally from the checkpoint state it already holds in memory,
// across a mid-chain writer rebalance (K 2→3) — and converge to results
// byte-identical to a cold OpenDurable restore of the same directory. Run
// under -race in CI.
func TestFollowerLiveDeltaCatchUp(t *testing.T) {
	f := loadFixture(t)
	_, wantFinal := runProcessor(t, f)
	n := len(f.stream)
	q1, q2, q3 := n/4, n/2, 3*n/4
	dir := t.TempDir()

	w, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2}, DurableConfig{
		Dir: dir, NoSync: true, SegmentBytes: 1024, KeepCheckpoints: 4, DeltaEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(lo, hi int) {
		t.Helper()
		for _, r := range f.stream[lo:hi] {
			if err := w.Eng.Submit(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	ckpt := func() {
		t.Helper()
		if _, err := w.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}

	submit(0, q1)
	ckpt() // full snapshot at q1 — the follower's boot state

	// The gate stalls the tail loop: the test holds the write lock while
	// the writer races ahead and truncates, releasing it to let exactly the
	// catch-up pass run.
	var gate sync.RWMutex
	gate.Lock()
	fc := FollowerConfig{Dir: dir, Poll: time.Millisecond,
		Durable: DurableConfig{NoSync: true}}
	fc.beforePass = func() { gate.RLock(); gate.RUnlock() } //nolint:staticcheck // empty critical section is the point
	fol, err := OpenFollower(f.sh, Config{Core: f.cfg, Shards: 2}, fc)
	if err != nil {
		t.Fatal(err)
	}
	if fol.Eng.Completed() != int64(q1) {
		t.Fatalf("follower booted at %d, want checkpoint watermark %d", fol.Eng.Completed(), q1)
	}

	submit(q1, q2)
	ckpt() // delta q1→q2
	// Mid-chain topology change: the next delta spans a rebalanced writer.
	if err := w.Eng.Rebalance(DefaultLayout(3)); err != nil {
		t.Fatal(err)
	}
	submit(q2, q3)
	ckpt() // delta q2→q3, across the rebalance
	// Aggressive retention: drop the WAL prefix the stalled follower still
	// needs, so its next pass gets ErrTruncated instead of entries.
	if err := w.Log.TruncateBefore(int64(q3)); err != nil {
		t.Fatal(err)
	}
	if first := w.Log.Stats().FirstSeq; first <= int64(q1) {
		t.Fatalf("truncation kept seq %d, test needs the follower cursor %d dropped", first, q1)
	}

	gate.Unlock()
	waitUntil(t, "delta-chain catch-up onto the live engine", func() bool {
		return fol.Eng.Completed() >= int64(q3) && fol.Lag() == 0
	})
	st := fol.Stats()
	if st.Catchups < 1 {
		t.Fatalf("no checkpoint catch-up recorded: %+v", st)
	}
	if st.IncrementalCatchups < 1 {
		t.Fatalf("catch-up did not use the incremental delta chain (base was in memory): %+v", st)
	}
	if got := fol.Eng.Stats().Shards; got != 3 {
		t.Fatalf("follower did not adopt the rebalanced topology: K=%d, want 3", got)
	}

	// Steady-state tailing resumes after the jump.
	submit(q3, n)
	waitUntil(t, "follower tail after catch-up", func() bool {
		return fol.Eng.Completed() == int64(n) && fol.Lag() == 0
	})
	if !samePairs(wantFinal, fol.Eng.ResultSet()) {
		t.Fatal("follower entity set differs from the uninterrupted reference")
	}

	// Convergence: the live-applied follower must be byte-identical to a
	// cold restore of the same directory.
	if err := w.Close(false); err != nil {
		t.Fatal(err)
	}
	cold, err := OpenDurable(f.sh, Config{Core: f.cfg},
		DurableConfig{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.ResumeSeq() != int64(n) {
		t.Fatalf("cold restore resumes at %d, want %d", cold.ResumeSeq(), n)
	}
	waitUntil(t, "cold restore drain", func() bool { return cold.Eng.Completed() == int64(n) })
	if !samePairs(cold.Eng.ResultSet(), fol.Eng.ResultSet()) {
		t.Fatal("live delta catch-up diverged from cold OpenDurable restore")
	}
	if err := cold.Close(false); err != nil {
		t.Fatal(err)
	}
	if err := fol.Close(); err != nil {
		t.Fatal(err)
	}
}
