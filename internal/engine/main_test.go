package engine

import (
	"testing"

	"terids/internal/testutil"
)

// TestMain gates the package on goroutine hygiene: every Engine the tests
// start must be fully torn down by Close — no orphaned impute workers, shard
// loops, mergers, skew monitors, or follower tails survive the suite.
func TestMain(m *testing.M) {
	testutil.VerifyNoLeaks(m)
}
