package engine

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"terids/internal/testutil"
)

// copyTree is the SIGKILL simulation (see testutil.CopyTree): every Submit
// that returned had its WAL entry written; checkpoints are atomic.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	testutil.CopyTree(t, src, dst)
}

// TestDurableCrashRecoveryExactReplay is the crash-injection property test
// of the durability contract: run with a WAL and a mid-stream checkpoint,
// kill at a pseudo-random point (simulated by cloning the durability
// directory — the exact bytes a SIGKILL would leave), recover into a fresh
// engine at a different shard count K→K', and the merged result stream —
// pair identities, order, and probabilities, replayed and live alike — must
// be byte-identical to an uninterrupted single-threaded run. Run under -race
// in CI.
func TestDurableCrashRecoveryExactReplay(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, wantFinal := runProcessor(t, f)
	n := len(f.stream)

	rng := rand.New(rand.NewSource(1337))
	cases := []struct {
		name  string
		k, k2 int
	}{
		{"K=2 recovered at K=2", 2, 2},
		{"K=1 resharded to K=3", 1, 3},
		{"K=4 resharded to K=2", 4, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kill := 2 + rng.Intn(n-3)
			ckptAt := 1 + rng.Intn(kill-1)
			dir := t.TempDir()

			first := newCollector()
			d1, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: tc.k, OnResult: first.onResult},
				DurableConfig{Dir: dir, NoSync: true, SegmentBytes: 4096})
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range f.stream[:kill] {
				if err := d1.Eng.Submit(r); err != nil {
					t.Fatal(err)
				}
				if i+1 == ckptAt {
					if _, err := d1.CheckpointNow(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// The kill: clone the durable state mid-run, then discard the
			// first engine (its clean close below is only goroutine hygiene —
			// the recovery works off the clone).
			crashDir := t.TempDir()
			copyTree(t, dir, crashDir)
			if err := d1.Close(false); err != nil {
				t.Fatal(err)
			}

			second := newCollector()
			d2, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: tc.k2, OnResult: second.onResult},
				DurableConfig{Dir: crashDir, NoSync: true, SegmentBytes: 4096})
			if err != nil {
				t.Fatal(err)
			}
			if d2.ResumeSeq() != int64(kill) {
				t.Fatalf("recovered engine resumes at %d, want %d (ckpt at %d)", d2.ResumeSeq(), kill, ckptAt)
			}
			if d2.Replayed() != int64(kill-ckptAt) {
				t.Fatalf("replayed %d wal arrivals, want %d", d2.Replayed(), kill-ckptAt)
			}
			if d2.RestoredCheckpoint() == nil || d2.RestoredCheckpoint().Seq != int64(ckptAt) {
				t.Fatalf("recovery did not restore the checkpoint at %d", ckptAt)
			}
			for _, r := range f.stream[kill:] {
				if err := d2.Eng.Submit(r); err != nil {
					t.Fatal(err)
				}
			}
			st := d2.Stats()
			if err := d2.Close(true); err != nil {
				t.Fatal(err)
			}
			if st.WAL.NextSeq != int64(n) {
				t.Fatalf("wal frontier %d after full stream, want %d", st.WAL.NextSeq, n)
			}

			// Replayed ([ckptAt, kill)) and live ([kill, n)) results must be
			// byte-identical to the uninterrupted reference; the pre-crash
			// prefix already was.
			for i := 0; i < n; i++ {
				got, ok := first.pairs[int64(i)]
				if i >= ckptAt {
					got, ok = second.pairs[int64(i)]
				}
				if !ok {
					t.Fatalf("arrival %d never finalized (ckpt=%d kill=%d)", i, ckptAt, kill)
				}
				if !samePairs(wantPerArrival[i], got) {
					t.Fatalf("arrival %d (ckpt=%d kill=%d K=%d→%d): got %v, reference %v",
						i, ckptAt, kill, tc.k, tc.k2, got, wantPerArrival[i])
				}
			}
			if !samePairs(wantFinal, d2.Eng.ResultSet()) {
				t.Fatalf("final entity set differs after crash recovery (ckpt=%d kill=%d)", ckptAt, kill)
			}

			// A third boot off the final checkpoint replays nothing and lands
			// at the stream's end — the clean-restart path.
			d3, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: tc.k, OnResult: newCollector().onResult},
				DurableConfig{Dir: crashDir, NoSync: true, SegmentBytes: 4096})
			if err != nil {
				t.Fatal(err)
			}
			if d3.ResumeSeq() != int64(n) || d3.Replayed() != 0 {
				t.Fatalf("clean restart resumes at %d with %d replayed, want %d/0", d3.ResumeSeq(), d3.Replayed(), n)
			}
			if !samePairs(wantFinal, d3.Eng.ResultSet()) {
				t.Fatal("clean restart entity set differs")
			}
			if err := d3.Close(false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableTornTailRecovery: the crash clone additionally loses the tail
// of its last WAL segment (a torn write). Recovery must resume from the
// surviving durable prefix and stay byte-identical on it.
func TestDurableTornTailRecovery(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, _ := runProcessor(t, f)
	n := len(f.stream)
	kill := 2 * n / 3
	ckptAt := n / 3
	dir := t.TempDir()

	d1, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2},
		DurableConfig{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range f.stream[:kill] {
		if err := d1.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
		if i+1 == ckptAt {
			if _, err := d1.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	if err := d1.Close(false); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop bytes off the last segment so the final record is
	// cut mid-write.
	des, err := os.ReadDir(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".wal") {
			segs = append(segs, de.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no wal segments in crash clone")
	}
	tail := filepath.Join(crashDir, segs[len(segs)-1])
	info, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tail, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	col := newCollector()
	d2, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 3, OnResult: col.onResult},
		DurableConfig{Dir: crashDir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	m := d2.ResumeSeq()
	if m >= int64(kill) || m < int64(ckptAt) {
		t.Fatalf("torn-tail recovery resumed at %d, want in [%d,%d)", m, ckptAt, kill)
	}
	// The lost arrivals simply re-enter as live submissions, as a restarted
	// upstream producer would re-send them.
	for _, r := range f.stream[m:] {
		if err := d2.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := d2.Close(false); err != nil {
		t.Fatal(err)
	}
	for i := int(ckptAt); i < n; i++ {
		if !samePairs(wantPerArrival[i], col.pairs[int64(i)]) {
			t.Fatalf("arrival %d diverged after torn-tail recovery (resumed at %d)", i, m)
		}
	}
}

// TestBackgroundCheckpointer: the timer-driven checkpointer writes snapshots,
// prunes beyond KeepCheckpoints, and truncates obsolete WAL segments.
func TestBackgroundCheckpointer(t *testing.T) {
	f := loadFixture(t)
	dir := t.TempDir()
	d, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2}, DurableConfig{
		Dir: dir, NoSync: true, SegmentBytes: 2048,
		CheckpointInterval: 5 * time.Millisecond, KeepCheckpoints: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Submit in two halves, waiting for the timer to fire in between: the
	// checkpointer only writes when the watermark advanced, so each half
	// guarantees one more snapshot.
	waitCheckpoints := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for d.Stats().Checkpoints < want {
			if time.Now().After(deadline) {
				t.Fatalf("checkpointer stuck at %d checkpoints, want %d", d.Stats().Checkpoints, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	half := len(f.stream) / 2
	for _, r := range f.stream[:half] {
		if err := d.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	waitCheckpoints(1)
	for _, r := range f.stream[half:] {
		if err := d.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	waitCheckpoints(2)
	if err := d.Close(true); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Checkpoints < 2 {
		t.Fatalf("background checkpointer took %d checkpoints, want >= 2", st.Checkpoints)
	}
	if st.SnapshotsRetained > 2 {
		t.Fatalf("%d snapshots retained, want <= 2", st.SnapshotsRetained)
	}
	if st.LastCheckpointSeq != int64(len(f.stream)) {
		t.Fatalf("final checkpoint at %d, want %d", st.LastCheckpointSeq, len(f.stream))
	}
	if st.LastCheckpointAgeSeconds < 0 {
		t.Fatal("last checkpoint age unreported")
	}
	if st.WAL.FirstSeq == 0 {
		t.Fatalf("wal never truncated: first retained seq still 0 (stats %+v)", st.WAL)
	}
	des, err := os.ReadDir(CheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(des) > 2 {
		t.Fatalf("%d snapshot files on disk, want <= 2", len(des))
	}
}

// TestLatestCheckpointSkipsCorrupt: a corrupt newest snapshot falls back to
// the previous one (recovery then replays more WAL). Small segments make
// this bite: pruning truncates the WAL at the OLDEST retained snapshot, so
// the fallback still has the suffix it needs.
func TestLatestCheckpointSkipsCorrupt(t *testing.T) {
	f := loadFixture(t)
	dir := t.TempDir()
	d, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2},
		DurableConfig{Dir: dir, NoSync: true, KeepCheckpoints: 2, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range f.stream[:60] {
		if err := d.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
		if i == 29 || i == 49 {
			if _, err := d.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Close(false); err != nil {
		t.Fatal(err)
	}

	newest := filepath.Join(CheckpointDir(dir), fmt.Sprintf("%s%020d%s", ckptPrefix, 50, ckptSuffix))
	if err := os.WriteFile(newest, []byte("garbage, not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	path, c, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || c.Seq != 30 {
		t.Fatalf("fallback checkpoint watermark %v, want 30", c)
	}
	if !strings.Contains(path, fmt.Sprintf("%020d", 30)) {
		t.Fatalf("fallback path %s does not name watermark 30", path)
	}
	// Truncation after the second checkpoint must have kept the WAL suffix
	// of the OLDER snapshot (watermark 30) — otherwise this recovery gaps.
	d2, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2},
		DurableConfig{Dir: dir, NoSync: true, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if d2.ResumeSeq() != 60 || d2.Replayed() != 30 {
		t.Fatalf("fallback recovery resumed at %d with %d replayed, want 60/30", d2.ResumeSeq(), d2.Replayed())
	}
	st := d2.Stats()
	if st.WAL.FirstSeq == 0 || st.WAL.FirstSeq > 30 {
		t.Fatalf("wal first retained seq %d, want in (0,30] (truncated at the oldest retained snapshot)", st.WAL.FirstSeq)
	}
	if err := d2.Close(false); err != nil {
		t.Fatal(err)
	}
}

// TestOpenDurableRefusesGappedLog: a WAL that starts after the snapshot
// watermark cannot recover exactly and must be refused.
func TestOpenDurableRefusesGappedLog(t *testing.T) {
	f := loadFixture(t)
	dir := t.TempDir()
	d, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2},
		DurableConfig{Dir: dir, NoSync: true, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range f.stream[:80] {
		if err := d.Eng.Submit(r); err != nil {
			t.Fatal(err)
		}
		if i == 59 {
			if _, err := d.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Close(false); err != nil {
		t.Fatal(err)
	}
	// Sabotage: drop the checkpoint, leaving a WAL that (after truncation at
	// seq 60) no longer reaches back to sequence zero.
	if err := os.RemoveAll(CheckpointDir(dir)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2},
		DurableConfig{Dir: dir, NoSync: true}); err == nil {
		t.Fatal("recovery with a gapped WAL must be refused")
	}
}
