package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// submitInBatches drives the whole fixture stream through SubmitBatch in
// fixed-size slices.
func submitInBatches(t *testing.T, eng *Engine, f fixture, bs int) {
	t.Helper()
	for off := 0; off < len(f.stream); off += bs {
		end := off + bs
		if end > len(f.stream) {
			end = len(f.stream)
		}
		if err := eng.SubmitBatch(f.stream[off:end]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSubmitBatchMatchesSingle is the batched-path equivalence property:
// for K ∈ {1, 4, 8} and several batch sizes (including ones that straddle
// the stream length unevenly), SubmitBatch produces per-arrival output and a
// final entity set byte-identical to the single-threaded reference — and
// therefore to the single-Submit path, which is checked against the same
// reference in TestEngineMatchesProcessor. Run under -race in CI.
func TestSubmitBatchMatchesSingle(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, wantFinal := runProcessor(t, f)

	for _, k := range []int{1, 4, 8} {
		for _, bs := range []int{3, 64, 500} {
			t.Run(fmt.Sprintf("K=%d/batch=%d", k, bs), func(t *testing.T) {
				col := newCollector()
				eng, err := New(f.sh, Config{Core: f.cfg, Shards: k, OnResult: col.onResult})
				if err != nil {
					t.Fatal(err)
				}
				submitInBatches(t, eng, f, bs)
				if err := eng.Close(); err != nil {
					t.Fatal(err)
				}
				for i := range wantPerArrival {
					pairs, ok := col.pairs[int64(i)]
					if !ok {
						t.Fatalf("arrival %d never finalized", i)
					}
					if !samePairs(wantPerArrival[i], pairs) {
						t.Fatalf("arrival %d (%s): K=%d batch=%d emitted %v, processor %v",
							i, f.stream[i].RID, k, bs, pairs, wantPerArrival[i])
					}
				}
				if !samePairs(wantFinal, eng.ResultSet()) {
					t.Fatalf("final entity set differs at K=%d batch=%d", k, bs)
				}
				if st := eng.Stats(); st.Completed != int64(len(f.stream)) {
					t.Fatalf("completed %d arrivals, submitted %d", st.Completed, len(f.stream))
				}
			})
		}
	}
}

// TestSubmitBatchRebalanceMidStream interleaves batched submission with an
// online rebalance K→K' at a mid-stream barrier; output must stay
// byte-identical to the uninterrupted reference.
func TestSubmitBatchRebalanceMidStream(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, wantFinal := runProcessor(t, f)
	half := len(f.stream) / 2

	col := newCollector()
	eng, err := New(f.sh, Config{Core: f.cfg, Shards: 2, OnResult: col.onResult})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < half; off += 16 {
		end := off + 16
		if end > half {
			end = half
		}
		if err := eng.SubmitBatch(f.stream[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Rebalance(DefaultLayout(5)); err != nil {
		t.Fatal(err)
	}
	for off := half; off < len(f.stream); off += 16 {
		end := off + 16
		if end > len(f.stream) {
			end = len(f.stream)
		}
		if err := eng.SubmitBatch(f.stream[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range wantPerArrival {
		pairs, ok := col.pairs[int64(i)]
		if !ok {
			t.Fatalf("arrival %d never finalized across the rebalance", i)
		}
		if !samePairs(wantPerArrival[i], pairs) {
			t.Fatalf("arrival %d: got %v, reference %v", i, pairs, wantPerArrival[i])
		}
	}
	if !samePairs(wantFinal, eng.ResultSet()) {
		t.Fatal("final entity set differs after mid-stream rebalance")
	}
}

// TestSubmitBatchCrashRecovery crash-recovers a WAL written entirely by
// batched submits: kill mid-stream (directory clone), recover at a different
// K, finish with batched submits, and require byte-identical output — the
// recovery replay itself runs through SubmitBatch.
func TestSubmitBatchCrashRecovery(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, wantFinal := runProcessor(t, f)
	n := len(f.stream)
	kill := 2 * n / 3
	ckptAt := n / 4

	dir := t.TempDir()
	first := newCollector()
	d1, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 2, OnResult: first.onResult},
		DurableConfig{Dir: dir, NoSync: true, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < kill; off += 32 {
		end := off + 32
		if end > kill {
			end = kill
		}
		if err := d1.Eng.SubmitBatch(f.stream[off:end]); err != nil {
			t.Fatal(err)
		}
		if off <= ckptAt && ckptAt < end {
			if _, err := d1.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	if err := d1.Close(false); err != nil {
		t.Fatal(err)
	}

	second := newCollector()
	d2, err := OpenDurable(f.sh, Config{Core: f.cfg, Shards: 3, OnResult: second.onResult},
		DurableConfig{Dir: crashDir, NoSync: true, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if d2.ResumeSeq() != int64(kill) {
		t.Fatalf("recovered engine resumes at %d, want %d", d2.ResumeSeq(), kill)
	}
	for off := kill; off < n; off += 32 {
		end := off + 32
		if end > n {
			end = n
		}
		if err := d2.Eng.SubmitBatch(f.stream[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	watermark := kill - int(d2.Replayed())
	if err := d2.Close(true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got, ok := first.pairs[int64(i)]
		if i >= watermark {
			got, ok = second.pairs[int64(i)]
		}
		if !ok {
			t.Fatalf("arrival %d never finalized (watermark=%d kill=%d)", i, watermark, kill)
		}
		if !samePairs(wantPerArrival[i], got) {
			t.Fatalf("arrival %d: got %v, reference %v", i, got, wantPerArrival[i])
		}
	}
	if !samePairs(wantFinal, d2.Eng.ResultSet()) {
		t.Fatal("final entity set differs after batched crash recovery")
	}
}

// TestTrySubmitNotBlockedByStall is the subMu contention regression test:
// with the pipeline wedged (OnResult never returns) and a blocking Submit
// parked on the full ingest queue, TrySubmit must still return ErrOverloaded
// promptly instead of queueing behind the submission lock — the old code
// held subMu across the ingest-queue send.
func TestTrySubmitNotBlockedByStall(t *testing.T) {
	f := loadFixture(t)
	release := make(chan struct{})
	var once sync.Once
	eng, err := New(f.sh, Config{
		Core: f.cfg, Shards: 2, ImputeWorkers: 1, QueueDepth: 1,
		OnResult: func(Result) {
			// Wedge the merger on the first finalized arrival; everything
			// upstream backs up behind it.
			once.Do(func() { <-release })
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Park blocking submitters until the ingest queue is full and at least
	// one Submit is stalled mid-injection.
	const parked = 24
	var wg sync.WaitGroup
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := eng.Submit(f.stream[i]); err != nil {
				t.Errorf("parked submit %d: %v", i, err)
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(eng.imputeIn) < cap(eng.imputeIn) {
		if time.Now().After(deadline) {
			t.Fatal("ingest queue never filled while the pipeline was wedged")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan error, 1)
	go func() { done <- eng.TrySubmit(f.stream[parked]) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("TrySubmit under stall returned %v, want ErrOverloaded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TrySubmit blocked behind a stalled pipeline (subMu held across the queue send?)")
	}

	close(release)
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Completed; got != parked {
		t.Fatalf("drained %d arrivals, want %d", got, parked)
	}
}
