// Follower replicas: read-path scale-out by tailing the writer's
// durability directory. A follower restores the newest checkpoint, then
// continuously tails the writer's WAL through a read-only wal.Tailer and
// re-runs every durable arrival through its own pipeline — so its merged
// results are byte-identical to the writer's, a poll interval behind.
//
// When the writer's checkpointer truncates the WAL below the follower's
// cursor (the follower fell behind, or just booted against an old
// checkpoint), the follower catches up WITHOUT a cold rebuild: it resolves
// the newest on-disk checkpoint — applying the delta chain onto the
// checkpoint state it already holds in memory when the chain connects —
// and advances its live engine to it via ApplyCheckpoint. OnResult
// subscribers, metrics, and the journal survive the jump.
//
// Promotion (warm-standby takeover) turns the follower into the writer:
// stop tailing, take the writer flock (refused with wal.ErrLocked while
// the old writer is alive — the kernel drops the lock on any exit,
// including SIGKILL), replay the un-tailed WAL remainder, attach the log
// to the live submission path, and return a fully-functional Durable
// handle with its checkpointer running.
package engine

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"terids/internal/core"
	"terids/internal/obs"
	"terids/internal/snapshot"
	"terids/internal/tuple"
	"terids/internal/wal"
)

// FollowerConfig tunes a follower replica.
type FollowerConfig struct {
	// Dir is the writer's durability directory. It must already exist: a
	// follower never creates or mutates the directory it tails.
	Dir string
	// Poll is the tail poll interval (default 25ms). Each pass reads every
	// durable arrival appended since the last one.
	Poll time.Duration
	// Durable configures the checkpointer the follower starts when it is
	// promoted to writer (Dir is overridden with the directory above).
	Durable DurableConfig
	// Logf, when set, receives tail-loop progress and errors.
	Logf func(format string, args ...any)

	// beforePass, when set, is called at the top of every tail pass — a
	// test hook to stall the tailer until the writer has truncated, forcing
	// the checkpoint catch-up path.
	beforePass func()
}

func (fc *FollowerConfig) fill() {
	if fc.Poll <= 0 {
		fc.Poll = 25 * time.Millisecond
	}
	if fc.Logf == nil {
		fc.Logf = func(string, ...any) {}
	}
}

// FollowerStats is the /stats health block for a follower replica.
type FollowerStats struct {
	Dir string `json:"dir"`
	// RecoveredFrom is the checkpoint file the follower booted from.
	RecoveredFrom string `json:"recovered_from,omitempty"`
	// AppliedSeq is the next WAL sequence the follower will request — every
	// arrival below it has been applied. FrontierSeq is the writer's durable
	// frontier as of the last pass; LagSeq is the gap still unapplied.
	AppliedSeq  int64 `json:"applied_seq"`
	FrontierSeq int64 `json:"frontier_seq"`
	LagSeq      int64 `json:"lag_seq"`
	// Passes counts completed tail passes; Catchups counts checkpoint
	// catch-ups (WAL truncated below the cursor); IncrementalCatchups the
	// subset that applied a delta chain onto the in-memory base instead of
	// materializing from a full snapshot.
	Passes              int64 `json:"passes"`
	Catchups            int64 `json:"catchups"`
	IncrementalCatchups int64 `json:"incremental_catchups"`
	// WriterAlive reports whether a live writer currently holds the
	// directory's flock. Promoted is set once this replica took over.
	WriterAlive bool `json:"writer_alive"`
	Promoted    bool `json:"promoted"`
}

// Follower is a live read-only replica over a writer's durability
// directory.
type Follower struct {
	// Eng is the replica engine; reads (results, stats, deep state) go
	// through it as usual. Submissions are refused by the serving layer
	// until promotion.
	Eng *Engine

	cfg    FollowerConfig
	sh     *core.Shared
	engCfg Config

	tailer        *wal.Tailer
	recoveredFrom string

	applied     atomic.Int64 // next sequence to request from the tailer
	frontier    atomic.Int64 // durable frontier as of the last pass
	passes      atomic.Int64
	catchups    atomic.Int64
	incCatchups atomic.Int64

	// base is the in-memory image of the last checkpoint state this
	// follower applied — the anchor incremental delta chains connect to.
	// pendingBatch is the tail-apply batch under construction. Both are
	// owned by the tail loop (and by Promote after the loop stops).
	base         *snapshot.Checkpoint
	pendingBatch []*tuple.Record

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	promoteMu sync.Mutex
	promoted  *Durable
}

// OpenFollower boots a follower replica over a writer's durability
// directory: restore the newest checkpoint (if any), start tailing the WAL
// past its watermark, and keep applying until Close or Promote. The engine
// config must not carry a WAL; the rebalance monitor is disabled — the
// follower adopts the writer's layout from its checkpoints instead of
// fighting it with local decisions.
func OpenFollower(sh *core.Shared, cfg Config, fc FollowerConfig) (*Follower, error) {
	fc.fill()
	if cfg.WAL != nil {
		return nil, fmt.Errorf("engine: follower config must not carry a WAL")
	}
	cfg.Rebalance = RebalanceConfig{Logf: cfg.Rebalance.Logf}

	tailer, err := wal.OpenTail(fc.Dir)
	if err != nil {
		return nil, fmt.Errorf("engine: follower: %w", err)
	}
	path, ckpt, err := LatestCheckpoint(fc.Dir)
	if err != nil {
		return nil, err
	}
	var eng *Engine
	if ckpt != nil {
		eng, err = NewFromSnapshot(sh, cfg, ckpt)
	} else {
		eng, err = New(sh, cfg)
	}
	if err != nil {
		return nil, err
	}

	f := &Follower{
		Eng: eng, cfg: fc, sh: sh, engCfg: cfg,
		tailer: tailer, recoveredFrom: path, base: ckpt,
		stop: make(chan struct{}),
	}
	if ckpt != nil {
		f.applied.Store(ckpt.Seq)
		f.frontier.Store(ckpt.Seq)
	}
	eng.jr.Record("follower_start", "follower replica tailing writer WAL",
		map[string]any{"dir": fc.Dir, "from_seq": f.applied.Load(), "checkpoint": path})
	f.wg.Add(1)
	go f.tailLoop()
	return f, nil
}

// tailLoop polls the WAL until Close or Promote stops it. Pass errors are
// logged and retried: the writer may be rotating, truncating, or gone —
// none of which should kill the replica.
func (f *Follower) tailLoop() {
	defer f.wg.Done()
	tick := time.NewTicker(f.cfg.Poll)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
		}
		if err := f.pass(); err != nil {
			if errors.Is(err, ErrClosed) {
				return
			}
			f.cfg.Logf("follower: tail pass: %v", err)
		}
	}
}

// pass runs one tail iteration: stream every new durable arrival through
// the pipeline, and fall back to a checkpoint catch-up when the WAL was
// truncated below the cursor.
//
//terids:deterministic
func (f *Follower) pass() error {
	if f.cfg.beforePass != nil {
		f.cfg.beforePass()
	}
	from := f.applied.Load()
	next, err := f.tailer.Replay(from, f.submitEntries())
	if serr := f.flushPending(); serr != nil {
		return serr
	}
	if next > f.applied.Load() {
		f.applied.Store(next)
	}
	switch {
	case err == nil:
		f.frontier.Store(next)
		f.passes.Add(1)
		return nil
	case errors.Is(err, wal.ErrTruncated):
		return f.catchUp()
	default:
		return err
	}
}

// submitEntries returns the per-entry callback: it batches arrivals and
// submits full batches through the pipeline. The trailing partial batch is
// flushed by flushPending after the pass.
func (f *Follower) submitEntries() func(wal.Entry) error {
	return func(e wal.Entry) error {
		rec, err := core.ArrivalRecord(f.sh.Schema, e.RID, e.Stream, e.TupleSeq, e.EntityID, e.Values)
		if err != nil {
			return err
		}
		f.pendingBatch = append(f.pendingBatch, rec)
		if len(f.pendingBatch) < followerBatch {
			return nil
		}
		return f.flushPending()
	}
}

// followerBatch sizes the tail-apply batches — same amortization as boot
// replay.
const followerBatch = 256

// flushPending submits the batch under construction.
func (f *Follower) flushPending() error {
	if len(f.pendingBatch) == 0 {
		return nil
	}
	err := f.Eng.SubmitBatch(f.pendingBatch)
	f.pendingBatch = f.pendingBatch[:0]
	return err
}

// catchUp advances the live engine to the newest on-disk checkpoint after
// the WAL was truncated below the cursor. When the checkpoint's delta
// chain connects to the state the follower already holds in memory, only
// the deltas are read and applied (snapshot.ApplyDelta forward from the
// in-memory base) — catch-up cost proportional to the change, never a
// cold rebuild. A chain that does not connect falls back to full
// materialization; the engine swap is the same either way.
func (f *Follower) catchUp() error {
	ckptDir := CheckpointDir(f.cfg.Dir)
	files, _, err := listCheckpointFiles(ckptDir)
	if err != nil {
		return err
	}
	bySeq := indexBySeq(files)
	applied := f.applied.Load()
	var lastErr error
	for _, file := range files { // newest first
		if file.seq < applied {
			break // older than what we already hold: WAL retention must cover us next pass
		}
		c, incremental, err := f.materialize(ckptDir, bySeq, file)
		if err != nil {
			lastErr = err
			continue
		}
		if err := f.Eng.ApplyCheckpoint(c); err != nil {
			return err
		}
		f.base = c
		f.applied.Store(c.Seq)
		if c.Seq > f.frontier.Load() {
			f.frontier.Store(c.Seq)
		}
		f.catchups.Add(1)
		if incremental {
			f.incCatchups.Add(1)
		}
		f.Eng.jr.Record("follower_catchup", "WAL truncated below cursor; advanced to checkpoint",
			map[string]any{"seq": c.Seq, "incremental": incremental, "file": file.name})
		f.cfg.Logf("follower: caught up to checkpoint %s (seq %d, incremental=%v)", file.name, c.Seq, incremental)
		return nil
	}
	if lastErr != nil {
		return fmt.Errorf("engine: follower catch-up: %w", lastErr)
	}
	return fmt.Errorf("engine: follower catch-up: wal truncated below seq %d and no newer checkpoint found", applied)
}

// materialize loads the full state file represents, preferring the
// incremental path: when the file's delta chain bottoms out at the
// in-memory base's watermark, the deltas are applied forward from that
// base without touching any full snapshot on disk.
func (f *Follower) materialize(ckptDir string, bySeq map[int64]ckptFile, file ckptFile) (*snapshot.Checkpoint, bool, error) {
	if f.base != nil && file.base >= 0 {
		var chain []ckptFile // newest → oldest
		cur := file
		for len(chain) <= maxChainDepth && cur.base >= 0 {
			chain = append(chain, cur)
			if cur.base == f.base.Seq {
				c := f.base
				for i := len(chain) - 1; i >= 0; i-- {
					dl, err := snapshot.ReadDeltaFile(filepath.Join(ckptDir, chain[i].name))
					if err != nil {
						return nil, false, err
					}
					nc, err := snapshot.ApplyDelta(c, dl)
					if err != nil {
						return nil, false, err
					}
					c = nc
				}
				return c, true, nil
			}
			bf, ok := bySeq[cur.base]
			if !ok || bf.seq >= cur.seq {
				break
			}
			cur = bf
		}
	}
	c, err := materializeCheckpoint(ckptDir, bySeq, file, 0)
	return c, false, err
}

// Lag reports how many durable writer arrivals the follower's merged
// output still trails by, as of the last tail pass.
func (f *Follower) Lag() int64 {
	lag := f.frontier.Load() - f.Eng.Completed()
	if lag < 0 {
		return 0
	}
	return lag
}

// CaughtUp reports whether the follower has completed at least one tail
// pass and holds every durable arrival it has seen — the readiness
// condition for serving reads.
func (f *Follower) CaughtUp() bool {
	return (f.passes.Load() > 0 || f.catchups.Load() > 0) && f.Lag() == 0
}

// WriterAlive reports whether a live writer currently holds the tailed
// directory's lock.
func (f *Follower) WriterAlive() bool { return wal.WriterAlive(f.cfg.Dir) }

// Stats reports follower health for /stats.
func (f *Follower) Stats() FollowerStats {
	f.promoteMu.Lock()
	promoted := f.promoted != nil
	f.promoteMu.Unlock()
	return FollowerStats{
		Dir:                 f.cfg.Dir,
		RecoveredFrom:       f.recoveredFrom,
		AppliedSeq:          f.applied.Load(),
		FrontierSeq:         f.frontier.Load(),
		LagSeq:              f.Lag(),
		Passes:              f.passes.Load(),
		Catchups:            f.catchups.Load(),
		IncrementalCatchups: f.incCatchups.Load(),
		WriterAlive:         f.WriterAlive(),
		Promoted:            promoted,
	}
}

// Promote turns the follower into the writer: stop tailing, seal at the
// WAL frontier (take the writer flock — refused with wal.ErrLocked while
// the old writer is still alive), replay the un-tailed remainder through
// the pipeline, attach the log to the live submission path, and return a
// Durable handle with the background checkpointer running. Idempotent:
// a second call returns the same handle. On failure before the point of
// no return the tail loop is restarted and the follower keeps following.
func (f *Follower) Promote() (*Durable, error) {
	f.promoteMu.Lock()
	defer f.promoteMu.Unlock()
	if f.promoted != nil {
		return f.promoted, nil
	}
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()

	dcfg := f.cfg.Durable
	dcfg.Dir = f.cfg.Dir
	dcfg.fill()
	log, err := wal.Open(f.cfg.Dir, wal.Options{
		SegmentBytes: dcfg.SegmentBytes, QueueDepth: dcfg.QueueDepth, NoSync: dcfg.NoSync,
	})
	if err != nil {
		f.resumeTailing()
		return nil, err
	}
	fail := func(err error) (*Durable, error) {
		log.Close()
		f.resumeTailing()
		return nil, err
	}
	// Drain the remainder: everything durable past the applied cursor runs
	// through the pipeline now, exactly as a tail pass would have. A
	// truncation race here is resolved by one checkpoint catch-up.
	for attempt := 0; ; attempt++ {
		err := f.replayRemainder(log)
		if err == nil {
			break
		}
		if errors.Is(err, wal.ErrTruncated) && attempt == 0 {
			if cerr := f.catchUp(); cerr == nil {
				continue
			}
		}
		return fail(fmt.Errorf("engine: promote: %w", err))
	}
	if err := f.Eng.AttachWAL(log); err != nil {
		return fail(err)
	}

	d := &Durable{
		Eng: f.Eng, Log: log, cfg: dcfg,
		sh: f.sh, engCfg: f.engCfg,
		recoveredFrom: f.recoveredFrom,
		restored:      f.base,
		resumeSeq:     f.applied.Load(),
		lastCkptSeq:   -1,
		stop:          make(chan struct{}),
	}
	if !f.engCfg.ObsOff {
		reg := f.engCfg.Obs
		if reg == nil {
			reg = obs.Default()
		}
		d.met = newDurableMetrics(reg)
	}
	d.snapshots = d.countSnapshots()
	if dcfg.CheckpointInterval > 0 {
		d.wg.Add(1)
		go d.checkpointLoop()
	}
	f.Eng.jr.Record("follower_promote", "warm standby took over as writer",
		map[string]any{"dir": f.cfg.Dir, "resume_seq": d.resumeSeq, "catchups": f.catchups.Load()})
	f.cfg.Logf("follower: promoted to writer at seq %d", d.resumeSeq)
	f.promoted = d
	return d, nil
}

// replayRemainder runs every logged arrival past the applied cursor
// through the pipeline, via the just-opened log (the directory is sealed:
// we hold the writer lock and nothing else appends).
func (f *Follower) replayRemainder(log *wal.Log) error {
	from := f.applied.Load()
	err := log.Replay(from, f.submitEntries())
	if serr := f.flushPending(); serr != nil {
		return serr
	}
	if err != nil {
		return err
	}
	st := log.Stats()
	f.applied.Store(st.NextSeq)
	f.frontier.Store(st.NextSeq)
	return nil
}

// resumeTailing restarts the tail loop after a failed promotion.
func (f *Follower) resumeTailing() {
	f.stop = make(chan struct{})
	f.stopOnce = sync.Once{}
	f.wg.Add(1)
	go f.tailLoop()
}

// Close stops the tail loop and the engine. After a successful Promote the
// engine and log belong to the returned Durable handle; Close then only
// stops what the follower still owns.
func (f *Follower) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
	f.promoteMu.Lock()
	promoted := f.promoted != nil
	f.promoteMu.Unlock()
	if promoted {
		return nil
	}
	return f.Eng.Close()
}
