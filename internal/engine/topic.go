package engine

import (
	"terids/internal/prune"
	"terids/internal/tuple"
)

// Shard assignment is pure load placement: resolution broadcasts every
// query to all shards, so result correctness never depends on where a tuple
// resides. Routing by topic keeps tuples about the same subject co-located,
// which concentrates the surviving candidate pairs of topic-heavy queries
// in few shards and lets the other shards cell-prune cheaply.
//
// The dominant topic of a tuple is the query keyword carrying the highest
// probability mass across the imputed candidate distributions (sum of
// candidate existence probabilities of keyword-bearing candidates). Tuples
// whose topic distribution straddles shards — two keywords with comparable
// mass assigned to different shards — take the broadcast-residency path and
// are inserted into every shard (the merger dedups their emissions).
// Keyword-free tuples hash on their RID, spreading the topic-neutral bulk
// uniformly.
//
// The topic hash is indirected through a fixed-size slot table (the engine's
// Layout): topic → fnv32a % LayoutSlots → slot → layout[slot] → shard. The
// default layout is the plain modulo assignment; the rebalancer installs
// weighted tables that split hot slots' neighbours away from overloaded
// shards. Because placement is free, swapping the table never changes the
// emitted pairs.

// straddleRatio: a secondary topic within this fraction of the dominant
// topic's mass makes the residency ambiguous enough to broadcast.
const straddleRatio = 0.5

// fnv32a is a tiny inline FNV-1a, deterministic across runs and platforms.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// slotOf maps a topic (or RID) to its layout slot.
func slotOf(s string) int { return int(fnv32a(s) % LayoutSlots) }

// keywordMass sums, over attributes, the candidate probability mass of
// candidates containing kw — an upper-bound style weight of how much of the
// tuple's possible-worlds mass carries this topic.
func keywordMass(im *tuple.Imputed, kw string) float64 {
	m := 0.0
	for _, d := range im.Dists {
		for _, c := range d.Cands {
			if c.Toks.Contains(kw) {
				m += c.P
			}
		}
	}
	return m
}

// internHomes (re)builds the interned home-shard tables for the current
// shard count: homeSingle[sh] is the shared single-home slice for shard sh,
// homeAll the shared broadcast slice. homeShards returns these directly, so
// repeated topics stop allocating per arrival; every consumer treats them as
// read-only. Called from newEngine and from rebuild (before residents are
// re-homed), never concurrently with the pipeline.
func (e *Engine) internHomes() {
	k := e.cfg.Shards
	e.homeSingle = make([][]int, k)
	for i := 0; i < k; i++ {
		e.homeSingle[i] = []int{i}
	}
	e.homeAll = make([]int, k)
	for i := range e.homeAll {
		e.homeAll[i] = i
	}
}

// homeShards picks the grid partitions an arrival resides in, plus the
// layout slot its residency is charged to (-1 for broadcast residents, whose
// placement the rebalancer cannot move). The returned slice aliases the
// engine's interned tables and must never be mutated. Called from impute
// workers and the restore path only — never concurrently with a layout swap,
// because the pipeline is stopped at the rebalance barrier.
//
//terids:hotpath
func (e *Engine) homeShards(prof *prune.Profile) (homes []int, slot int) {
	kws := e.step.Shared().Keywords
	var best, second float64
	bestKW, secondKW := -1, -1
	for i := range kws {
		if !prof.KW.Get(i) {
			continue
		}
		m := keywordMass(prof.Im, kws[i])
		switch {
		case m > best || (m == best && bestKW < 0):
			second, secondKW = best, bestKW
			best, bestKW = m, i
		case m > second || (m == second && secondKW < 0):
			second, secondKW = m, i
		}
	}
	if bestKW < 0 {
		// Topic-neutral tuple: uniform spread by RID.
		s := slotOf(prof.Im.R.RID)
		return e.homeSingle[e.layout[s]], s
	}
	s1 := e.kwSlots[bestKW]
	if secondKW >= 0 && second >= straddleRatio*best {
		if s2 := e.kwSlots[secondKW]; e.layout[s2] != e.layout[s1] {
			// Straddles shards: broadcast residency.
			return e.homeAll, -1
		}
	}
	return e.homeSingle[e.layout[s1]], s1
}
