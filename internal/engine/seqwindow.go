package engine

// seqWindow is an order-restoring buffer over a contiguous sequence space:
// values arrive at arbitrary seq >= next and leave in strict sequence order.
// It replaces the per-arrival map insert/delete churn the router and merger
// hot loops used to pay with a growable power-of-two ring indexed by
// seq — steady state touches only a slot store and a slot clear, and the
// backing arrays are reused for the life of the pipeline. The occupied span
// is bounded in practice by the items in flight upstream (channel capacities
// plus worker count); the ring grows geometrically on the rare overshoot and
// never shrinks.
type seqWindow[T any] struct {
	next int64
	buf  []T
	occ  []bool
	n    int
}

// slot maps seq into the ring. len(buf) is always a power of two.
func (w *seqWindow[T]) slot(seq int64) int { return int(seq & int64(len(w.buf)-1)) }

// ensure grows the ring until seq's offset from next fits.
func (w *seqWindow[T]) ensure(seq int64) {
	off := seq - w.next
	if len(w.buf) > 0 && off < int64(len(w.buf)) {
		return
	}
	sz := len(w.buf) * 2
	if sz < 16 {
		sz = 16
	}
	for int64(sz) <= off {
		sz *= 2
	}
	nb := make([]T, sz)
	no := make([]bool, sz)
	for o := 0; o < len(w.buf); o++ {
		s := w.next + int64(o)
		if i := w.slot(s); w.occ[i] {
			j := int(s & int64(sz-1))
			nb[j], no[j] = w.buf[i], true
		}
	}
	w.buf, w.occ = nb, no
}

// put stores v at seq (seq must be >= next; storing twice overwrites).
func (w *seqWindow[T]) put(seq int64, v T) {
	w.ensure(seq)
	i := w.slot(seq)
	if !w.occ[i] {
		w.n++
	}
	w.buf[i], w.occ[i] = v, true
}

// get returns the value stored at seq, if any.
func (w *seqWindow[T]) get(seq int64) (T, bool) {
	var zero T
	if len(w.buf) == 0 {
		return zero, false
	}
	if off := seq - w.next; off < 0 || off >= int64(len(w.buf)) {
		return zero, false
	}
	i := w.slot(seq)
	if !w.occ[i] {
		return zero, false
	}
	return w.buf[i], true
}

// peekNext returns the value at the release frontier without removing it.
func (w *seqWindow[T]) peekNext() (T, bool) { return w.get(w.next) }

// popNext removes and returns the value at the release frontier, advancing
// it. ok is false while the frontier's value has not arrived.
func (w *seqWindow[T]) popNext() (T, bool) {
	v, ok := w.get(w.next)
	if !ok {
		var zero T
		return zero, false
	}
	i := w.slot(w.next)
	var zero T
	w.buf[i], w.occ[i] = zero, false
	w.n--
	w.next++
	return v, true
}

// len reports how many out-of-order values are currently buffered.
func (w *seqWindow[T]) len() int { return w.n }
