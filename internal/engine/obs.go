// Engine-side observability: every pipeline stage publishes lock-cheap
// latency histograms and counters into an obs.Registry, and -trace-sample
// additionally records one-in-N arrivals' complete stage timeline into a
// bounded ring. Instrumentation is on by default (Config.Obs selects the
// registry, nil = the process-wide default) and Config.ObsOff turns it off
// entirely — deep-replay throwaway engines run with it off so regenerating
// history never pollutes the live stage distributions.
package engine

import (
	"strconv"
	"time"

	"terids/internal/obs"
)

// traceRingCap bounds the sampled-trace ring: enough to inspect recent
// behavior, small enough that tracing can never grow the heap.
const traceRingCap = 512

// Trace is one sampled arrival's full stage timeline (Config.TraceSample),
// serialized as one NDJSON line by GET /trace. Durations are nanoseconds.
type Trace struct {
	// Seq, RID, Stream identify the arrival.
	Seq    int64  `json:"seq"`
	RID    string `json:"rid"`
	Stream int    `json:"stream"`
	// Slot is the layout slot the arrival's residency was charged to (-1 for
	// broadcast residents); Homes lists the shards that inserted it.
	Slot  int   `json:"topic_slot"`
	Homes []int `json:"home_shards,omitempty"`
	// Rejected marks a duplicate live RID dropped by the router.
	Rejected bool `json:"rejected,omitempty"`
	// WALWaitNs is the group-commit wait on the durable path (0 without a
	// WAL); QueueWaitNs the ingest-queue wait before an impute worker picked
	// the arrival up.
	WALWaitNs   int64 `json:"wal_wait_ns,omitempty"`
	QueueWaitNs int64 `json:"impute_queue_wait_ns"`
	// ImputeNs is the impute stage (index join, profile, home selection);
	// RouteNs the router's sequential work plus the per-shard fan-out.
	ImputeNs int64 `json:"impute_ns"`
	RouteNs  int64 `json:"route_ns"`
	// ShardNs[i] is shard i's resolve time for this arrival (every shard
	// resolves; residency is what Homes restricts).
	ShardNs []int64 `json:"shard_resolve_ns,omitempty"`
	// MergeHoldNs is the reorder-buffer hold before finalization; TotalNs the
	// whole submit→finalize latency; Pairs the matches emitted.
	MergeHoldNs int64 `json:"merge_hold_ns"`
	TotalNs     int64 `json:"total_ns"`
	Pairs       int   `json:"pairs"`

	start time.Time
}

// engineMetrics bundles the engine's instruments. A nil *engineMetrics (on
// Engine.met, when Config.ObsOff is set) disables instrumentation with one
// pointer check per stage.
type engineMetrics struct {
	reg *obs.Registry

	arrivals     *obs.Counter
	rejected     *obs.Counter
	traceSampled *obs.Counter

	imputeWait     *obs.Histogram
	imputeTime     *obs.Histogram
	routeTime      *obs.Histogram
	mergeHold      *obs.Histogram
	mergePending   *obs.Gauge
	walWait        *obs.Histogram
	rebalancePause *obs.Histogram
	batchEntries   *obs.Histogram
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	return &engineMetrics{
		reg: reg,
		arrivals: reg.Counter("terids_arrivals_total",
			"Arrivals accepted into the pipeline.", nil),
		rejected: reg.Counter("terids_rejected_total",
			"Arrivals dropped as duplicate live RIDs.", nil),
		traceSampled: reg.Counter("terids_traces_sampled_total",
			"Arrivals whose full stage timeline was trace-sampled.", nil),
		imputeWait: reg.Histogram("terids_impute_queue_wait_seconds",
			"Time an accepted arrival waits in the ingest queue before an impute worker picks it up.", nil),
		imputeTime: reg.Histogram("terids_impute_seconds",
			"Imputation stage latency per arrival: CDD/DR index join, pruning profile, home-shard selection.", nil),
		routeTime: reg.Histogram("terids_route_seconds",
			"Router latency per arrival: duplicate check, window advance, expiry, per-shard fan-out.", nil),
		mergeHold: reg.Histogram("terids_merge_hold_seconds",
			"Time one arrival's partial results wait in the merger's reorder buffer before finalizing.", nil),
		mergePending: reg.Gauge("terids_merge_pending",
			"Arrivals currently held in the merger's reorder buffer.", nil),
		walWait: reg.Histogram("terids_wal_submit_wait_seconds",
			"Submitter-observed WAL group-commit wait, reservation to durable.", nil),
		rebalancePause: reg.Histogram("terids_rebalance_pause_seconds",
			"Online rebalance pause: barrier drain to pipeline resume.", nil),
		batchEntries: reg.SizeHistogram("terids_submit_batch_entries",
			"Arrivals per accepted submission batch (1 = single Submit).", nil),
	}
}

// poolStats builds the hit/miss counter pair for one named hot-path pool.
func (m *engineMetrics) poolStats(name string) poolStats {
	return poolStats{
		hits: m.reg.Counter("terids_pool_hits_total",
			"Hot-path pool gets served from the pool.", obs.Labels{"pool": name}),
		misses: m.reg.Counter("terids_pool_misses_total",
			"Hot-path pool gets that fell through to a fresh allocation.", obs.Labels{"pool": name}),
	}
}

// shardResolve is shard id's resolve-latency histogram. Shard ids repeat
// across rebalances and engines sharing a registry; the series are cumulative
// per (process, shard id), as Prometheus counters are.
func (m *engineMetrics) shardResolve(id int) *obs.Histogram {
	return m.reg.Histogram("terids_shard_resolve_seconds",
		"Shard ER latency per arrival command: evict expired, resolve against the partition, insert.",
		obs.Labels{"shard": strconv.Itoa(id)})
}

// Traces returns the retained sampled arrival timelines, oldest first
// (empty unless Config.TraceSample > 0).
func (e *Engine) Traces() []Trace {
	if e.traces == nil {
		return nil
	}
	return e.traces.Snapshot()
}
