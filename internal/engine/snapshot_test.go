package engine

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"terids/internal/core"
	"terids/internal/snapshot"
)

// collectResults wires an engine result sink indexed by sequence number.
type collector struct {
	mu    sync.Mutex
	pairs map[int64][]core.Pair
}

func newCollector() *collector { return &collector{pairs: make(map[int64][]core.Pair)} }

func (c *collector) onResult(res Result) {
	c.mu.Lock()
	c.pairs[res.Seq] = res.Pairs
	c.mu.Unlock()
}

// roundtrip pushes a checkpoint through the binary format, as a restart
// across processes would.
func roundtrip(t *testing.T, c *snapshot.Checkpoint) *snapshot.Checkpoint {
	t.Helper()
	var buf bytes.Buffer
	if err := snapshot.Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := snapshot.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return c2
}

// TestCrashRestoreEquivalence is the crash/restore property test of the
// checkpoint contract: process some prefix of the stream, barrier-checkpoint
// at a pseudo-random mid-stream point, restore into a completely fresh
// engine — including restores at a different shard count K→K' — and the
// combined output (prefix from the first engine, suffix from the restored
// one) must be byte-identical to an uninterrupted core.Processor run: same
// pairs, same order, same probabilities, same final entity set. Run under
// -race in CI.
func TestCrashRestoreEquivalence(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, wantFinal := runProcessor(t, f)
	n := len(f.stream)

	// Seeded: deterministic in CI, but midpoints vary across the reshard
	// cases so cut points land in different window/grid phases.
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name  string
		k, k2 int
	}{
		{"K=2 resumed at K=2", 2, 2},
		{"K=1 resharded to K=4", 1, 4},
		{"K=4 resharded to K=1", 4, 1},
		{"K=3 resharded to K=8", 3, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mid := 1 + rng.Intn(n-2)

			first := newCollector()
			eng, err := New(f.sh, Config{Core: f.cfg, Shards: tc.k, OnResult: first.onResult})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range f.stream[:mid] {
				if err := eng.Submit(r); err != nil {
					t.Fatal(err)
				}
			}
			// Barrier checkpoint on the live engine (the "crash" happens
			// after it: the first engine is simply abandoned).
			c, err := eng.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if c.Seq != int64(mid) {
				t.Fatalf("checkpoint watermark %d, want %d", c.Seq, mid)
			}
			if c.Shards != tc.k {
				t.Fatalf("checkpoint records K=%d, want %d", c.Shards, tc.k)
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}

			second := newCollector()
			eng2, err := NewFromSnapshot(f.sh, Config{Core: f.cfg, Shards: tc.k2, OnResult: second.onResult}, roundtrip(t, c))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range f.stream[mid:] {
				if err := eng2.Submit(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng2.Close(); err != nil {
				t.Fatal(err)
			}

			for i := 0; i < n; i++ {
				got, ok := first.pairs[int64(i)]
				if i >= mid {
					got, ok = second.pairs[int64(i)]
				}
				if !ok {
					t.Fatalf("arrival %d never finalized (mid=%d)", i, mid)
				}
				if !samePairs(wantPerArrival[i], got) {
					t.Fatalf("arrival %d (mid=%d, K=%d→%d): got %v, reference %v",
						i, mid, tc.k, tc.k2, got, wantPerArrival[i])
				}
			}
			if !samePairs(wantFinal, eng2.ResultSet()) {
				t.Fatalf("final entity set differs after restore (mid=%d, K=%d→%d)", mid, tc.k, tc.k2)
			}
			st := eng2.Stats()
			if st.Submitted != int64(n) || st.Completed != int64(n) {
				t.Fatalf("restored engine submitted=%d completed=%d, want %d", st.Submitted, st.Completed, n)
			}
		})
	}
}

// TestCrashRestoreTimeWindows covers the time-based window variant: the
// engine checkpoint must capture the per-stream time windows (the clock is
// re-derived from the residents) and restore them exactly.
func TestCrashRestoreTimeWindows(t *testing.T) {
	f := loadFixture(t)
	cfg := f.cfg
	cfg.TimeSpan = 40

	proc, err := core.NewProcessor(f.sh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]core.Pair, len(f.stream))
	for i, r := range f.stream {
		pairs, err := proc.Advance(r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pairs
	}

	mid := len(f.stream) / 3
	eng, err := New(f.sh, Config{Core: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream[:mid] {
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	c, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	col := newCollector()
	eng2, err := NewFromSnapshot(f.sh, Config{Core: cfg, Shards: 3, OnResult: col.onResult}, roundtrip(t, c))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream[mid:] {
		if err := eng2.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	for i := mid; i < len(f.stream); i++ {
		if !samePairs(want[i], col.pairs[int64(i)]) {
			t.Fatalf("time-window arrival %d diverged after restore", i)
		}
	}
	if !samePairs(proc.Results().Pairs(), eng2.ResultSet()) {
		t.Fatal("time-window final entity sets differ after restore")
	}
}

// TestCheckpointBarrierIsNonDisruptive: checkpointing a running engine and
// then continuing on the SAME engine must not perturb its output.
func TestCheckpointBarrierIsNonDisruptive(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, wantFinal := runProcessor(t, f)

	col := newCollector()
	eng, err := New(f.sh, Config{Core: f.cfg, Shards: 4, OnResult: col.onResult})
	if err != nil {
		t.Fatal(err)
	}
	checkpoints := 0
	for i, r := range f.stream {
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
		if i%97 == 13 {
			c, err := eng.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if c.Seq != int64(i+1) {
				t.Fatalf("mid-run checkpoint at seq %d, want %d", c.Seq, i+1)
			}
			checkpoints++
		}
	}
	if checkpoints == 0 {
		t.Fatal("no mid-run checkpoints exercised")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range wantPerArrival {
		if !samePairs(wantPerArrival[i], col.pairs[int64(i)]) {
			t.Fatalf("arrival %d: output perturbed by mid-run checkpoints", i)
		}
	}
	if !samePairs(wantFinal, eng.ResultSet()) {
		t.Fatal("final entity set perturbed by mid-run checkpoints")
	}
}

// TestCheckpointConcurrentWithSubmissions drives the barrier from a separate
// goroutine while a submitter floods the queue — deadlock-freedom and
// watermark consistency under -race.
func TestCheckpointConcurrentWithSubmissions(t *testing.T) {
	f := loadFixture(t)
	eng, err := New(f.sh, Config{Core: f.cfg, Shards: 3, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, r := range f.stream {
			if err := eng.Submit(r); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		c, err := eng.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.Seq > int64(len(f.stream)) {
			t.Fatalf("checkpoint watermark %d beyond stream length %d", c.Seq, len(f.stream))
		}
	}
	<-done
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointAfterClose: a drained, closed engine stays checkpointable —
// the graceful-shutdown path (close, then write the final checkpoint).
func TestCheckpointAfterClose(t *testing.T) {
	f := loadFixture(t)
	eng, err := New(f.sh, Config{Core: f.cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream {
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if c.Seq != int64(len(f.stream)) {
		t.Fatalf("final checkpoint at seq %d, want %d", c.Seq, len(f.stream))
	}

	// The checkpoint restores into a single-threaded Processor too: cross-
	// layer portability of the format.
	proc, err := core.NewProcessorFromSnapshot(f.sh, f.cfg, roundtrip(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(eng.ResultSet(), proc.Results().Pairs()) {
		t.Fatal("entity set differs after restoring an engine checkpoint into a Processor")
	}
}

// TestProcessorCheckpointIntoEngine is the reverse cross-layer path: a
// single-threaded Processor's snapshot seeds a K-sharded engine, which then
// continues the stream identically to the uninterrupted reference.
func TestProcessorCheckpointIntoEngine(t *testing.T) {
	f := loadFixture(t)
	wantPerArrival, wantFinal := runProcessor(t, f)
	mid := 2 * len(f.stream) / 3

	proc, err := core.NewProcessor(f.sh, f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream[:mid] {
		if _, err := proc.Advance(r); err != nil {
			t.Fatal(err)
		}
	}
	c, err := proc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	col := newCollector()
	eng, err := NewFromSnapshot(f.sh, Config{Core: f.cfg, Shards: 4, OnResult: col.onResult}, roundtrip(t, c))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream[mid:] {
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for i := mid; i < len(f.stream); i++ {
		if !samePairs(wantPerArrival[i], col.pairs[int64(i)]) {
			t.Fatalf("arrival %d: engine-from-processor-snapshot diverged", i)
		}
	}
	if !samePairs(wantFinal, eng.ResultSet()) {
		t.Fatal("final entity set differs after Processor→engine restore")
	}
}

// TestRestoreRejectsMismatchedConfig mirrors the core-level guard at the
// engine layer.
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	f := loadFixture(t)
	eng, err := New(f.sh, Config{Core: f.cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream[:30] {
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	c, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	bad := f.cfg
	bad.WindowSize = 49
	if _, err := NewFromSnapshot(f.sh, Config{Core: bad, Shards: 2}, c); err == nil {
		t.Fatal("NewFromSnapshot accepted a mismatched window size")
	}
}
