package engine

import (
	"strconv"
	"strings"
	"testing"

	"terids/internal/obs"
)

// TestEngineInstrumentation runs the fixture stream through an engine wired
// to a private registry with every arrival trace-sampled, then checks that
// each stage published samples and that traces carry a complete timeline.
func TestEngineInstrumentation(t *testing.T) {
	f := loadFixture(t)
	reg := obs.NewRegistry()
	eng, err := New(f.sh, Config{
		Core:        f.cfg,
		Shards:      4,
		Obs:         reg,
		TraceSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream {
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	// Resubmit a live RID to exercise the rejected path.
	dup := f.stream[len(f.stream)-1]
	if err := eng.Submit(dup); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	n := uint64(len(f.stream)) + 1
	if got := reg.Counter("terids_arrivals_total", "", nil).Value(); uint64(got) != n {
		t.Fatalf("arrivals counter %d, want %d", got, n)
	}
	if got := reg.Counter("terids_rejected_total", "", nil).Value(); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
	if got := reg.Counter("terids_traces_sampled_total", "", nil).Value(); uint64(got) != n {
		t.Fatalf("trace-sampled counter %d, want %d (TraceSample=1)", got, n)
	}
	for _, name := range []string{
		"terids_impute_queue_wait_seconds",
		"terids_impute_seconds",
		"terids_route_seconds",
		"terids_merge_hold_seconds",
	} {
		if c := reg.Histogram(name, "", nil).Count(); c != n {
			t.Fatalf("%s has %d samples, want %d", name, c, n)
		}
	}
	// No WAL configured: the group-commit wait histogram must stay empty.
	if c := reg.Histogram("terids_wal_submit_wait_seconds", "", nil).Count(); c != 0 {
		t.Fatalf("wal wait histogram has %d samples without a WAL", c)
	}
	var shardSamples uint64
	for id := 0; id < 4; id++ {
		h := reg.Histogram("terids_shard_resolve_seconds", "",
			obs.Labels{"shard": strconv.Itoa(id)})
		shardSamples += h.Count()
	}
	// Every shard resolves every accepted arrival.
	if want := uint64(len(f.stream)) * 4; shardSamples != want {
		t.Fatalf("shard resolve samples %d, want %d", shardSamples, want)
	}

	traces := eng.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces retained with TraceSample=1")
	}
	if cap := traceRingCap; len(traces) > cap {
		t.Fatalf("%d traces retained, ring cap %d", len(traces), cap)
	}
	var sawRejected bool
	for _, tr := range traces {
		if tr.Rejected {
			sawRejected = true
			if tr.TotalNs <= 0 {
				t.Fatalf("rejected trace seq %d missing total: %+v", tr.Seq, tr)
			}
			continue
		}
		if tr.RID == "" || tr.ImputeNs <= 0 || tr.RouteNs <= 0 || tr.TotalNs <= 0 {
			t.Fatalf("incomplete trace: %+v", tr)
		}
		if tr.QueueWaitNs < 0 || tr.MergeHoldNs < 0 {
			t.Fatalf("negative stage time in trace: %+v", tr)
		}
		if len(tr.ShardNs) != 4 {
			t.Fatalf("trace seq %d has %d shard entries, want 4", tr.Seq, len(tr.ShardNs))
		}
		for s, ns := range tr.ShardNs {
			if ns <= 0 {
				t.Fatalf("trace seq %d shard %d resolve time %d, want > 0", tr.Seq, s, ns)
			}
		}
		if tr.TotalNs < tr.ImputeNs {
			t.Fatalf("trace seq %d total %d < impute %d", tr.Seq, tr.TotalNs, tr.ImputeNs)
		}
	}
	if !sawRejected {
		t.Fatal("duplicate arrival's trace not retained")
	}
}

// TestEngineObsOff checks the kill switch: no instruments registered, no
// traces retained, pipeline output unaffected.
func TestEngineObsOff(t *testing.T) {
	f := loadFixture(t)
	reg := obs.NewRegistry()
	eng, err := New(f.sh, Config{
		Core:        f.cfg,
		Shards:      2,
		Obs:         reg,
		ObsOff:      true,
		TraceSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream[:50] {
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Traces(); got != nil {
		t.Fatalf("ObsOff engine retained %d traces", len(got))
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "terids_") {
		t.Fatalf("ObsOff engine registered instruments:\n%s", b.String())
	}
	if st := eng.Stats(); st.Completed != 50 {
		t.Fatalf("completed %d, want 50", st.Completed)
	}
}

// TestBatchAndPoolMetrics: batched submission publishes the batch-size
// histogram and the hot-path pools publish hit/miss counters — the /metrics
// view of batch efficacy.
func TestBatchAndPoolMetrics(t *testing.T) {
	f := loadFixture(t)
	reg := obs.NewRegistry()
	eng, err := New(f.sh, Config{Core: f.cfg, Shards: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	const bs = 32
	nBatches := uint64(0)
	for off := 0; off < len(f.stream); off += bs {
		end := off + bs
		if end > len(f.stream) {
			end = len(f.stream)
		}
		if err := eng.SubmitBatch(f.stream[off:end]); err != nil {
			t.Fatal(err)
		}
		nBatches++
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	h := reg.SizeHistogram("terids_submit_batch_entries", "", nil)
	if h.Count() != nBatches {
		t.Fatalf("batch histogram has %d samples, want %d", h.Count(), nBatches)
	}
	if got, want := h.Sum(), int64(len(f.stream)); got != want {
		t.Fatalf("batch histogram sum %v, want %v (every arrival counted once)", got, want)
	}
	var hits, misses int64
	for _, pool := range []string{"item", "item_chunk", "shard_batch", "header_batch", "partial_batch", "shard_pairs"} {
		hits += reg.Counter("terids_pool_hits_total", "", obs.Labels{"pool": pool}).Value()
		misses += reg.Counter("terids_pool_misses_total", "", obs.Labels{"pool": pool}).Value()
	}
	if misses == 0 {
		t.Fatal("pools recorded no misses; cold-start gets must miss")
	}
	if hits == 0 {
		t.Fatal("pools recorded no hits over a multi-batch run; recycling is not happening")
	}
}
