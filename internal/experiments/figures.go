package experiments

import (
	"fmt"
	"time"

	"terids/internal/core"
	"terids/internal/dataset"
	"terids/internal/pivot"
	"terids/internal/rules"
	"terids/internal/tokens"
)

// Fig4 regenerates Figure 4: per-strategy pruning power over the five
// datasets at default parameters.
func Fig4(p Params) (*Report, error) {
	rep := &Report{
		ID:      "fig4",
		Title:   "pruning power (%) per strategy",
		Columns: []string{"topic", "simUB", "probUB", "instPair", "total"},
	}
	for _, prof := range p.datasets() {
		pp, err := prepare(prof, p)
		if err != nil {
			return nil, err
		}
		out, err := executeWith(pp, p, "TER-iDS", func(c *core.Config) { c.TrackPruning = true })
		if err != nil {
			return nil, err
		}
		topic, simUB, probUB, instPair, total := out.prune.Power()
		rep.Rows = append(rep.Rows, Row{Label: prof.Name, Values: map[string]float64{
			"topic": topic, "simUB": simUB, "probUB": probUB,
			"instPair": instPair, "total": total,
		}})
	}
	rep.Notes = append(rep.Notes,
		"paper: topic 77.5-86.5, simUB 5.6-14.2, probUB 2.2-3.6, instPair 1.5-4.4, total 98.3-99.4")
	return rep, nil
}

// Fig5a regenerates Figure 5(a): F-score per method per dataset.
func Fig5a(p Params) (*Report, error) {
	rep := &Report{
		ID:      "fig5a",
		Title:   "F-score (%) per method",
		Columns: accuracyMethods,
	}
	for _, prof := range p.datasets() {
		pp, err := prepare(prof, p)
		if err != nil {
			return nil, err
		}
		row := Row{Label: prof.Name, Values: map[string]float64{}}
		for _, m := range accuracyMethods {
			out, err := execute(pp, p, m)
			if err != nil {
				return nil, err
			}
			row.Values[m] = out.f1
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"paper: TER-iDS 94.6-97.3 highest, then DD+ER, er+ER, con+ER lowest")
	return rep, nil
}

// Fig5b regenerates Figure 5(b): wall clock time per tuple per method.
func Fig5b(p Params) (*Report, error) {
	rep := &Report{
		ID:      "fig5b",
		Title:   "wall clock time per tuple (sec) per method",
		Columns: methodNames,
	}
	for _, prof := range p.datasets() {
		pp, err := prepare(prof, p)
		if err != nil {
			return nil, err
		}
		row := Row{Label: prof.Name, Values: map[string]float64{}}
		for _, m := range methodNames {
			out, err := execute(pp, p, m)
			if err != nil {
				return nil, err
			}
			row.Values[m] = out.perTupleSec
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"paper: TER-iDS fastest; Ij+GER 2nd; con+ER 3rd; DD+ER slowest (3-4 orders over TER-iDS); EBooks the costliest dataset")
	return rep, nil
}

// Fig6 regenerates Figure 6: TER-iDS per-phase cost breakdown.
func Fig6(p Params) (*Report, error) {
	rep := &Report{
		ID:      "fig6",
		Title:   "TER-iDS break-up cost per tuple (sec)",
		Columns: []string{"select", "impute", "er"},
	}
	for _, prof := range p.datasets() {
		pp, err := prepare(prof, p)
		if err != nil {
			return nil, err
		}
		out, err := execute(pp, p, "TER-iDS")
		if err != nil {
			return nil, err
		}
		n := float64(min(p.MaxStream, len(pp.data.Stream)))
		if p.MaxStream == 0 {
			n = float64(len(pp.data.Stream))
		}
		rep.Rows = append(rep.Rows, Row{Label: prof.Name, Values: map[string]float64{
			"select": out.breakdown.Select.Seconds() / n,
			"impute": out.breakdown.Impute.Seconds() / n,
			"er":     out.breakdown.ER.Seconds() / n,
		}})
	}
	rep.Notes = append(rep.Notes,
		"paper: ER dominates except on Songs (large repository shifts cost to CDD selection + imputation)")
	return rep, nil
}

// sweep runs a one-parameter sweep for the efficiency figures.
func sweep(p Params, id, title, param string, values []float64, methods []string,
	apply func(*Params, float64), measure func(runOutcome) float64) (*Report, error) {
	rep := &Report{ID: id, Title: title, Columns: methods}
	for _, prof := range p.datasets() {
		for _, v := range values {
			pv := p
			apply(&pv, v)
			pp, err := prepare(prof, pv)
			if err != nil {
				return nil, err
			}
			row := Row{
				Label:  fmt.Sprintf("%s %s=%v", prof.Name, param, v),
				Values: map[string]float64{},
			}
			for _, m := range methods {
				out, err := execute(pp, pv, m)
				if err != nil {
					return nil, err
				}
				row.Values[m] = measure(out)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

func timeMeasure(o runOutcome) float64 { return o.perTupleSec }
func f1Measure(o runOutcome) float64   { return o.f1 }

// Fig7 regenerates Figure 7: efficiency vs probabilistic threshold α.
func Fig7(p Params) (*Report, error) {
	return sweep(p, "fig7", "time per tuple (sec) vs alpha", "alpha",
		[]float64{0.1, 0.2, 0.5, 0.8, 0.9}, methodNames,
		func(pv *Params, v float64) { pv.Alpha = v }, timeMeasure)
}

// Fig8 regenerates Figure 8: efficiency vs similarity ratio ρ = γ/d.
func Fig8(p Params) (*Report, error) {
	return sweep(p, "fig8", "time per tuple (sec) vs rho", "rho",
		[]float64{0.3, 0.4, 0.5, 0.6, 0.7}, methodNames,
		func(pv *Params, v float64) { pv.Rho = v }, timeMeasure)
}

// Fig9 regenerates Figure 9: efficiency vs missing rate ξ.
func Fig9(p Params) (*Report, error) {
	return sweep(p, "fig9", "time per tuple (sec) vs xi", "xi",
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.8}, methodNames,
		func(pv *Params, v float64) { pv.Xi = v }, timeMeasure)
}

// Fig10 regenerates Figure 10: efficiency vs window size w.
func Fig10(p Params) (*Report, error) {
	// Paper sweeps 500..3000 at full scale; the harness scales by W/1000.
	return sweep(p, "fig10", "time per tuple (sec) vs w", "w",
		[]float64{0.5, 0.8, 1.0, 2.0, 3.0}, methodNames,
		func(pv *Params, v float64) { pv.W = int(v * float64(p.W)) }, timeMeasure)
}

// Fig11a regenerates Figure 11(a): pivot-selection cost vs η.
func Fig11a(p Params) (*Report, error) {
	rep := &Report{
		ID:      "fig11a",
		Title:   "pivot selection cost (sec) vs eta",
		Columns: []string{"0.1", "0.2", "0.3", "0.4", "0.5"},
	}
	for _, prof := range p.datasets() {
		row := Row{Label: prof.Name, Values: map[string]float64{}}
		for _, eta := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
			opt := dataset.Options{
				Scale: p.Scale, MissingRate: p.Xi, MissingAttrs: p.M,
				RepoRatio: eta, Seed: p.Seed,
			}
			d, err := dataset.Generate(prof, opt)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := pivot.Select(d.Repo, pivot.Defaults()); err != nil {
				return nil, err
			}
			row.Values[fmt.Sprintf("%.1f", eta)] = time.Since(start).Seconds()
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper: cost grows with repository size (Fig 11a)")
	return rep, nil
}

// Fig11b regenerates Figure 11(b): pivot-selection cost vs cntMax.
func Fig11b(p Params) (*Report, error) {
	rep := &Report{
		ID:      "fig11b",
		Title:   "pivot selection cost (sec) vs cntMax",
		Columns: []string{"1", "2", "3", "4", "5"},
	}
	for _, prof := range p.datasets() {
		opt := dataset.Options{
			Scale: p.Scale, MissingRate: p.Xi, MissingAttrs: p.M,
			RepoRatio: p.Eta, Seed: p.Seed,
		}
		d, err := dataset.Generate(prof, opt)
		if err != nil {
			return nil, err
		}
		row := Row{Label: prof.Name, Values: map[string]float64{}}
		for cnt := 1; cnt <= 5; cnt++ {
			cfg := pivot.Defaults()
			cfg.CntMax = cnt
			cfg.MinEntropy = 99 // force the full cntMax budget, as Fig 11b sweeps it
			start := time.Now()
			if _, err := pivot.Select(d.Repo, cfg); err != nil {
				return nil, err
			}
			row.Values[fmt.Sprintf("%d", cnt)] = time.Since(start).Seconds()
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper: cost rises smoothly with cntMax, flattening once eMin is reached")
	return rep, nil
}

// Fig12 regenerates Figure 12: offline CDD detection cost per dataset.
func Fig12(p Params) (*Report, error) {
	rep := &Report{
		ID:      "fig12",
		Title:   "offline CDD detection cost (sec)",
		Columns: []string{"seconds", "rules"},
	}
	for _, prof := range p.datasets() {
		opt := dataset.Options{
			Scale: p.Scale, MissingRate: p.Xi, MissingAttrs: p.M,
			RepoRatio: p.Eta, Seed: p.Seed,
		}
		d, err := dataset.Generate(prof, opt)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		set := rules.Detect(d.Repo, rules.DefaultDetectConfig())
		rep.Rows = append(rep.Rows, Row{Label: prof.Name, Values: map[string]float64{
			"seconds": time.Since(start).Seconds(),
			"rules":   float64(set.Len()),
		}})
	}
	rep.Notes = append(rep.Notes, "paper: larger repositories and longer token sets cost more (Songs, EBooks)")
	return rep, nil
}

// Fig13 regenerates Figure 13: F-score vs missing rate ξ.
func Fig13(p Params) (*Report, error) {
	return sweep(p, "fig13", "F-score (%) vs xi", "xi",
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.8}, accuracyMethods,
		func(pv *Params, v float64) { pv.Xi = v }, f1Measure)
}

// Fig14 regenerates Figure 14: F-score vs repository ratio η.
func Fig14(p Params) (*Report, error) {
	return sweep(p, "fig14", "F-score (%) vs eta", "eta",
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5}, accuracyMethods,
		func(pv *Params, v float64) { pv.Eta = v }, f1Measure)
}

// Fig15 regenerates Figure 15: F-score vs number of missing attributes m.
func Fig15(p Params) (*Report, error) {
	return sweep(p, "fig15", "F-score (%) vs m", "m",
		[]float64{1, 2, 3}, accuracyMethods,
		func(pv *Params, v float64) { pv.M = int(v) }, f1Measure)
}

// Fig16 regenerates Figure 16: efficiency vs repository ratio η.
func Fig16(p Params) (*Report, error) {
	return sweep(p, "fig16", "time per tuple (sec) vs eta", "eta",
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5}, methodNames,
		func(pv *Params, v float64) { pv.Eta = v }, timeMeasure)
}

// Fig17 regenerates Figure 17: efficiency vs number of missing attributes.
func Fig17(p Params) (*Report, error) {
	return sweep(p, "fig17", "time per tuple (sec) vs m", "m",
		[]float64{1, 2, 3}, methodNames,
		func(pv *Params, v float64) { pv.M = int(v) }, timeMeasure)
}

// Table4 regenerates Table 4: dataset statistics.
func Table4(p Params) (*Report, error) {
	rep := &Report{
		ID:      "table4",
		Title:   "dataset statistics (scaled synthetic stand-ins)",
		Columns: []string{"sourceA", "sourceB", "repo", "incomplete", "matches"},
	}
	for _, prof := range p.datasets() {
		pp, err := prepare(prof, p)
		if err != nil {
			return nil, err
		}
		gamma := p.Rho * float64(pp.data.Schema.D())
		st := pp.data.ComputeStats(p.W, gamma)
		rep.Rows = append(rep.Rows, Row{Label: prof.Name, Values: map[string]float64{
			"sourceA": float64(st.SourceA), "sourceB": float64(st.SourceB),
			"repo": float64(st.RepoSize), "incomplete": float64(st.Incomplete),
			"matches": float64(st.TruthMatches),
		}})
	}
	rep.Notes = append(rep.Notes,
		"paper (full scale): Citations 2614/2294/2224, Anime 4000/4000/10704, Bikes 4786/9003/13815, EBooks 6500/14112/16719, Songs 1M/1M/1.29M")
	return rep, nil
}

// Table5 regenerates Table 5: the parameter grid with defaults.
func Table5(p Params) (*Report, error) {
	rep := &Report{
		ID:      "table5",
		Title:   "parameter settings (defaults in use)",
		Columns: []string{"default"},
	}
	rows := []struct {
		name string
		v    float64
	}{
		{"alpha (0.1,0.2,0.5,0.8,0.9)", p.Alpha},
		{"rho (0.3..0.7)", p.Rho},
		{"xi (0.1..0.8)", p.Xi},
		{"w (500..3000, scaled)", float64(p.W)},
		{"eta (0.1..0.5)", p.Eta},
		{"m (1,2,3)", float64(p.M)},
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, Row{Label: r.name, Values: map[string]float64{"default": r.v}})
	}
	return rep, nil
}

// AblationPruning measures TER-iDS with each pruning strategy disabled.
func AblationPruning(p Params) (*Report, error) {
	variants := []struct {
		name string
		ab   core.AblateConfig
	}{
		{"all-pruning", core.AblateConfig{}},
		{"no-topic", core.AblateConfig{Topic: true}},
		{"no-simUB", core.AblateConfig{Sim: true}},
		{"no-probUB", core.AblateConfig{Prob: true}},
		{"no-instPair", core.AblateConfig{InstPair: true}},
		{"no-pruning", core.AblateConfig{Topic: true, Sim: true, Prob: true, InstPair: true}},
	}
	cols := make([]string, len(variants))
	for i, v := range variants {
		cols[i] = v.name
	}
	rep := &Report{
		ID:      "ablation-pruning",
		Title:   "TER-iDS time per tuple (sec) with pruning strategies disabled",
		Columns: cols,
	}
	for _, prof := range p.datasets() {
		pp, err := prepare(prof, p)
		if err != nil {
			return nil, err
		}
		row := Row{Label: prof.Name, Values: map[string]float64{}}
		for _, v := range variants {
			cfg := pp.config(p)
			cfg.Ablate = v.ab
			proc, err := core.NewProcessor(pp.sh, cfg)
			if err != nil {
				return nil, err
			}
			stream := pp.data.Stream
			if p.MaxStream > 0 && len(stream) > p.MaxStream {
				stream = stream[:p.MaxStream]
			}
			start := time.Now()
			for _, r := range stream {
				if _, err := proc.Advance(r); err != nil {
					return nil, err
				}
			}
			row.Values[v.name] = time.Since(start).Seconds() / float64(len(stream))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "results are identical across variants; only cost moves")
	return rep, nil
}

// AblationPivot compares entropy-selected pivots with naive first-value
// pivots (the design choice of Section 5.4).
func AblationPivot(p Params) (*Report, error) {
	rep := &Report{
		ID:      "ablation-pivot",
		Title:   "TER-iDS time per tuple (sec): entropy pivots vs first-value pivots",
		Columns: []string{"entropy", "naive"},
	}
	for _, prof := range p.datasets() {
		row := Row{Label: prof.Name, Values: map[string]float64{}}
		for _, mode := range []string{"entropy", "naive"} {
			pp, err := prepare(prof, p)
			if err != nil {
				return nil, err
			}
			if mode == "naive" {
				// Degenerate pivots: the first domain value per attribute,
				// with all pivot-dependent state rebuilt against them.
				naive := &pivot.Selection{PerAttr: make([]pivot.AttrPivots, pp.data.Schema.D())}
				for x := 0; x < pp.data.Schema.D(); x++ {
					v := pp.data.Repo.Domain(x).Value(0)
					naive.PerAttr[x] = pivot.AttrPivots{
						Attr: x, Texts: []string{v.Text}, Toks: []tokens.Set{v.Toks},
					}
				}
				cfg := core.DefaultPrepareConfig(pp.data.Keywords)
				cfg.Selection = naive
				sh, err := core.Prepare(pp.data.Repo, cfg)
				if err != nil {
					return nil, err
				}
				pp.sh = sh
			}
			out, err := execute(pp, p, "TER-iDS")
			if err != nil {
				return nil, err
			}
			row.Values[mode] = out.perTupleSec
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}
