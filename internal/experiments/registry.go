package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one table/figure.
type Runner func(Params) (*Report, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"fig4":             Fig4,
	"fig5a":            Fig5a,
	"fig5b":            Fig5b,
	"fig6":             Fig6,
	"fig7":             Fig7,
	"fig8":             Fig8,
	"fig9":             Fig9,
	"fig10":            Fig10,
	"fig11a":           Fig11a,
	"fig11b":           Fig11b,
	"fig12":            Fig12,
	"fig13":            Fig13,
	"fig14":            Fig14,
	"fig15":            Fig15,
	"fig16":            Fig16,
	"fig17":            Fig17,
	"table4":           Table4,
	"table5":           Table5,
	"ablation-pruning": AblationPruning,
	"ablation-pivot":   AblationPivot,
}

// IDs lists available experiments in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run regenerates one experiment by id.
func Run(id string, p Params) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(p)
}
