package experiments

import (
	"strings"
	"testing"
)

// tinyParams shrinks everything so the whole registry can run in tests.
func tinyParams() Params {
	p := DefaultParams()
	p.Scale = 0.04
	p.W = 30
	p.MaxStream = 80
	p.Datasets = []string{"Citations"}
	return p
}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"ablation-pivot", "ablation-pruning",
		"fig10", "fig11a", "fig11b", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig4", "fig5a", "fig5b", "fig6", "fig7", "fig8",
		"fig9", "table4", "table5",
	}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", tinyParams()); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestFig4(t *testing.T) {
	rep, err := Fig4(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	v := rep.Rows[0].Values
	total := v["total"]
	if total <= 0 || total > 100 {
		t.Fatalf("total pruning power %v out of range", total)
	}
	sum := v["topic"] + v["simUB"] + v["probUB"] + v["instPair"]
	if diff := sum - total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("power components %v don't sum to total %v", sum, total)
	}
	if !strings.Contains(rep.String(), "fig4") {
		t.Fatal("report must render its id")
	}
}

func TestFig5aShape(t *testing.T) {
	rep, err := Fig5a(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Rows[0].Values
	// The headline effectiveness ordering: TER-iDS's CDD imputation must
	// beat the con stream-imputer.
	if v["TER-iDS"] < v["con+ER"] {
		t.Fatalf("TER-iDS F1 %v < con+ER %v — ordering inverted", v["TER-iDS"], v["con+ER"])
	}
	if v["TER-iDS"] <= 0 {
		t.Fatalf("TER-iDS F1 = %v; expected recovery of matches", v["TER-iDS"])
	}
}

func TestFig5bShape(t *testing.T) {
	rep, err := Fig5b(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Rows[0].Values
	for _, m := range methodNames {
		if v[m] <= 0 {
			t.Fatalf("method %s has no cost", m)
		}
	}
	// The efficiency ordering vs the heaviest baseline holds even at the
	// tiny test scale; the full CDD-family ordering (TER-iDS < Ij+GER <
	// CDD+ER < DD+ER) needs realistic sizes and is exercised by the
	// benchmark harness (see EXPERIMENTS.md).
	if v["TER-iDS"] >= v["DD+ER"] {
		t.Fatalf("TER-iDS %v not faster than DD+ER %v", v["TER-iDS"], v["DD+ER"])
	}
}

func TestFig6Breakdown(t *testing.T) {
	rep, err := Fig6(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Rows[0].Values
	if v["select"]+v["impute"]+v["er"] <= 0 {
		t.Fatal("breakdown empty")
	}
}

func TestTables(t *testing.T) {
	rep, err := Table4(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows[0].Values["matches"] <= 0 {
		t.Fatal("Table 4 must report ground-truth matches")
	}
	rep, err = Table5(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("Table 5 rows = %d, want 6", len(rep.Rows))
	}
}

func TestSweepsRun(t *testing.T) {
	// Smoke-run the cheap sweeps with minimal grids.
	p := tinyParams()
	p.MaxStream = 50
	for _, id := range []string{"fig11a", "fig11b", "fig12", "table5"} {
		if _, err := Run(id, p); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestFig15Sweep(t *testing.T) {
	p := tinyParams()
	p.MaxStream = 60
	rep, err := Fig15(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 { // m = 1, 2, 3 for one dataset
		t.Fatalf("rows = %d, want 3", len(rep.Rows))
	}
}

func TestAblationPruningRuns(t *testing.T) {
	p := tinyParams()
	p.MaxStream = 60
	rep, err := AblationPruning(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || len(rep.Columns) != 6 {
		t.Fatalf("shape wrong: %d rows, %d cols", len(rep.Rows), len(rep.Columns))
	}
}

func TestAblationPivotRuns(t *testing.T) {
	p := tinyParams()
	p.MaxStream = 60
	rep, err := AblationPivot(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows[0].Values["entropy"] <= 0 || rep.Rows[0].Values["naive"] <= 0 {
		t.Fatal("both pivot modes must be measured")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{
		ID: "x", Title: "demo", Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "row1", Values: map[string]float64{"a": 1, "b": 0.5}},
			{Label: "row2", Values: map[string]float64{"a": 2}},
		},
		Notes: []string{"hello"},
	}
	s := rep.String()
	for _, want := range []string{"demo", "row1", "row2", "hello", "-"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}
