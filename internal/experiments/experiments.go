// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6 and Appendix C) over the synthetic dataset
// profiles: pruning power (Fig. 4), effectiveness and efficiency across
// datasets (Fig. 5), cost breakdown (Fig. 6), parameter sweeps over α, ρ,
// ξ, w, η, m (Figs. 7-10, 13-17), offline pivot-selection and CDD-detection
// costs (Figs. 11-12), and the dataset/parameter tables (Tables 4-5).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"terids/internal/core"
	"terids/internal/dataset"
	"terids/internal/metrics"
)

// Params are the sweep defaults of Table 5 (bold values) plus harness
// scaling knobs. Sizes are scaled down from the paper's; the harness
// reproduces shapes, not absolute wall-clock numbers.
type Params struct {
	// Alpha is the probabilistic threshold α (default 0.5).
	Alpha float64
	// Rho is γ/d (default 0.5).
	Rho float64
	// Xi is the missing rate ξ (default 0.3).
	Xi float64
	// W is the sliding window size (default 100 at harness scale; the
	// paper uses 1000).
	W int
	// Eta is the repository/stream size ratio η (default 0.5).
	Eta float64
	// M is the number of missing attributes (default 1).
	M int
	// Scale multiplies dataset sizes (default 0.2 of the profile sizes).
	Scale float64
	// MaxStream caps the number of processed arrivals per run (0 = all).
	MaxStream int
	// Seed drives generation.
	Seed int64
	// CellsPerDim is the ER-grid resolution.
	CellsPerDim int
	// Datasets restricts the run (empty = all five).
	Datasets []string
}

// DefaultParams mirrors Table 5's defaults at harness scale.
func DefaultParams() Params {
	return Params{
		Alpha: 0.5, Rho: 0.5, Xi: 0.3, W: 100, Eta: 0.5, M: 1,
		Scale: 0.2, MaxStream: 400, Seed: 1, CellsPerDim: 4,
	}
}

func (p Params) datasets() []dataset.Profile {
	all := dataset.Profiles()
	if len(p.Datasets) == 0 {
		return all
	}
	var out []dataset.Profile
	for _, name := range p.Datasets {
		for _, prof := range all {
			if strings.EqualFold(prof.Name, name) {
				out = append(out, prof)
			}
		}
	}
	return out
}

// Row is one table row of a report.
type Row struct {
	Label  string
	Values map[string]float64
}

// Report is a regenerated table/figure.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns)+1)
	widths[0] = len("label")
	for _, row := range r.Rows {
		if len(row.Label) > widths[0] {
			widths[0] = len(row.Label)
		}
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(r.Columns))
		for j, col := range r.Columns {
			v, ok := row.Values[col]
			if !ok {
				cells[i][j] = "-"
			} else {
				cells[i][j] = formatValue(v)
			}
			if len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	for j, col := range r.Columns {
		if len(col) > widths[j+1] {
			widths[j+1] = len(col)
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0]+2, "label")
	for j, col := range r.Columns {
		fmt.Fprintf(&b, "%*s", widths[j+1]+2, col)
	}
	b.WriteByte('\n')
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0]+2, row.Label)
		for j := range r.Columns {
			fmt.Fprintf(&b, "%*s", widths[j+1]+2, cells[i][j])
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e9:
		return fmt.Sprintf("%d", int64(v))
	case v >= 0.01:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// run bundles everything a single (dataset, params, method) execution
// produces.
type runOutcome struct {
	perTupleSec float64
	breakdown   metrics.Breakdown
	prune       metrics.PruneStats
	f1          float64
	pairs       int
}

// prepared caches dataset generation + offline phase per (profile, params
// that affect them).
type prepared struct {
	data *dataset.Data
	sh   *core.Shared
}

func prepare(prof dataset.Profile, p Params) (*prepared, error) {
	opt := dataset.Options{
		Scale:        p.Scale,
		MissingRate:  p.Xi,
		MissingAttrs: p.M,
		RepoRatio:    p.Eta,
		Seed:         p.Seed,
	}
	d, err := dataset.Generate(prof, opt)
	if err != nil {
		return nil, err
	}
	sh, err := core.Prepare(d.Repo, core.DefaultPrepareConfig(d.Keywords))
	if err != nil {
		return nil, err
	}
	return &prepared{data: d, sh: sh}, nil
}

func (pp *prepared) config(p Params) core.Config {
	return core.Config{
		Keywords:    pp.data.Keywords,
		Gamma:       p.Rho * float64(pp.data.Schema.D()),
		Alpha:       p.Alpha,
		WindowSize:  p.W,
		Streams:     2,
		CellsPerDim: p.CellsPerDim,
	}
}

// methodNames in the paper's presentation order.
var methodNames = []string{"TER-iDS", "Ij+GER", "CDD+ER", "DD+ER", "er+ER", "con+ER"}

// accuracyMethods are the Figure 5(a)/13/14/15 comparison set (Ij+GER and
// CDD+ER share TER-iDS's imputation and hence its F-score).
var accuracyMethods = []string{"TER-iDS", "DD+ER", "er+ER", "con+ER"}

func newResolver(pp *prepared, cfg core.Config, name string) (core.Resolver, error) {
	switch name {
	case "TER-iDS":
		return core.NewProcessor(pp.sh, cfg)
	case "Ij+GER":
		return core.NewBaseline(pp.sh, cfg, core.IjGER)
	case "CDD+ER":
		return core.NewBaseline(pp.sh, cfg, core.CDDER)
	case "DD+ER":
		return core.NewBaseline(pp.sh, cfg, core.DDER)
	case "er+ER":
		return core.NewBaseline(pp.sh, cfg, core.ErER)
	case "con+ER":
		return core.NewBaseline(pp.sh, cfg, core.ConER)
	case "naive":
		return core.NewBaseline(pp.sh, cfg, core.Naive)
	default:
		return nil, fmt.Errorf("experiments: unknown method %q", name)
	}
}

// execute runs one method over the dataset stream and measures it.
func execute(pp *prepared, p Params, method string) (runOutcome, error) {
	return executeWith(pp, p, method, nil)
}

// executeWith is execute with a config hook (e.g. Figure 4 enables exact
// pruning attribution).
func executeWith(pp *prepared, p Params, method string, mutate func(*core.Config)) (runOutcome, error) {
	cfg := pp.config(p)
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := newResolver(pp, cfg, method)
	if err != nil {
		return runOutcome{}, err
	}
	stream := pp.data.Stream
	if p.MaxStream > 0 && len(stream) > p.MaxStream {
		stream = stream[:p.MaxStream]
	}
	emitted := make(map[metrics.PairKey]bool)
	start := time.Now()
	for _, r := range stream {
		pairs, err := res.Advance(r)
		if err != nil {
			return runOutcome{}, err
		}
		for _, pair := range pairs {
			emitted[pair.Key()] = true
		}
	}
	elapsed := time.Since(start)

	truth := truthFor(pp, p, len(stream))
	conf := metrics.Compare(emitted, truth)
	return runOutcome{
		perTupleSec: elapsed.Seconds() / float64(len(stream)),
		breakdown:   res.Breakdown(),
		prune:       res.PruneStats(),
		f1:          conf.F1() * 100,
		pairs:       len(emitted),
	}, nil
}

// truthFor computes ground truth restricted to the processed stream
// prefix.
func truthFor(pp *prepared, p Params, processed int) map[metrics.PairKey]bool {
	gamma := p.Rho * float64(pp.data.Schema.D())
	full := pp.data.TruthPairs(p.W, gamma)
	if processed >= len(pp.data.Stream) {
		return full
	}
	// Restrict to pairs whose both members arrived within the prefix.
	seen := make(map[string]bool, processed)
	for _, r := range pp.data.Stream[:processed] {
		seen[r.RID] = true
	}
	out := make(map[metrics.PairKey]bool)
	for k := range full {
		if seen[k.A] && seen[k.B] {
			out[k] = true
		}
	}
	return out
}
