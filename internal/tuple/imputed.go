package tuple

import (
	"fmt"
	"sort"

	"terids/internal/tokens"
)

// Candidate is one possible value of an (imputed) attribute together with
// its existence probability (Equations 3 and 4 of the paper).
type Candidate struct {
	Text string
	Toks tokens.Set
	P    float64
}

// AttrDist is the distribution over candidate values of a single attribute.
// A non-missing attribute is represented by a single candidate with P = 1.
type AttrDist struct {
	Cands []Candidate
}

// Point builds a single-candidate distribution (probability 1) for a known
// value.
func Point(text string, toks tokens.Set) AttrDist {
	return AttrDist{Cands: []Candidate{{Text: text, Toks: toks, P: 1}}}
}

// Normalize rescales the candidate probabilities to sum to 1. Distributions
// with zero total mass are left untouched.
func (d *AttrDist) Normalize() {
	total := 0.0
	for _, c := range d.Cands {
		total += c.P
	}
	if total <= 0 {
		return
	}
	for i := range d.Cands {
		d.Cands[i].P /= total
	}
}

// Truncate keeps only the cap most probable candidates (ties broken by
// text for determinism) and renormalizes. cap <= 0 means no truncation.
func (d *AttrDist) Truncate(cap int) {
	if cap <= 0 || len(d.Cands) <= cap {
		return
	}
	sort.Slice(d.Cands, func(i, j int) bool {
		if d.Cands[i].P != d.Cands[j].P {
			return d.Cands[i].P > d.Cands[j].P
		}
		return d.Cands[i].Text < d.Cands[j].Text
	})
	d.Cands = d.Cands[:cap]
	d.Normalize()
}

// SizeInterval returns the minimum and maximum token-set sizes over the
// candidates (|T−| and |T+| of Lemma 4.1).
func (d *AttrDist) SizeInterval() (min, max int) {
	if len(d.Cands) == 0 {
		return 0, 0
	}
	min, max = d.Cands[0].Toks.Len(), d.Cands[0].Toks.Len()
	for _, c := range d.Cands[1:] {
		if n := c.Toks.Len(); n < min {
			min = n
		} else if n > max {
			max = n
		}
	}
	return min, max
}

// Imputed is the imputed (probabilistic) version r^p of an incomplete record
// (Definition 4): one candidate distribution per attribute. Instances are
// the cross product of per-attribute candidates.
type Imputed struct {
	R     *Record
	Dists []AttrDist
}

// FromComplete wraps a record without missing attributes into its trivial
// imputed form (a single instance with probability 1). Missing attributes,
// if any, become empty-valued single candidates; callers that can impute
// should do so instead.
func FromComplete(r *Record) *Imputed {
	im := &Imputed{R: r, Dists: make([]AttrDist, r.D())}
	for j := 0; j < r.D(); j++ {
		if r.IsMissing(j) {
			im.Dists[j] = Point("", nil)
		} else {
			im.Dists[j] = Point(r.Value(j), r.Tokens(j))
		}
	}
	return im
}

// InstanceCount returns the number of instances (product of candidate
// counts).
func (im *Imputed) InstanceCount() int {
	n := 1
	for _, d := range im.Dists {
		n *= len(d.Cands)
	}
	return n
}

// Instance is one fully concrete possibility r_{i,m} of an imputed tuple,
// with its joint existence probability and a precomputed topic flag.
type Instance struct {
	// Toks holds the d token sets of this instance.
	Toks []tokens.Set
	// P is the joint existence probability r_{i,m}.p.
	P float64
	// HasKeyword caches ϖ(r_{i,m}, K) for the keyword set the instances
	// were enumerated with.
	HasKeyword bool
}

// Sim returns the Definition 5 similarity between two instances.
func (a Instance) Sim(b Instance) float64 {
	if len(a.Toks) != len(b.Toks) {
		panic(fmt.Sprintf("tuple: instance dimension mismatch %d vs %d", len(a.Toks), len(b.Toks)))
	}
	total := 0.0
	for j := range a.Toks {
		total += tokens.Jaccard(a.Toks[j], b.Toks[j])
	}
	return total
}

// Instances enumerates all instances of the imputed tuple as the cross
// product of per-attribute candidates, computing joint probabilities and
// keyword flags against keywords. The enumeration order is deterministic.
func (im *Imputed) Instances(keywords tokens.Set) []Instance {
	d := len(im.Dists)
	out := make([]Instance, 0, im.InstanceCount())
	toks := make([]tokens.Set, d)
	// kw[j] marks whether the currently chosen candidate of attribute j
	// contains a keyword.
	kw := make([]bool, d)
	var rec func(j int, p float64)
	rec = func(j int, p float64) {
		if j == d {
			inst := Instance{Toks: append([]tokens.Set(nil), toks...), P: p}
			for _, h := range kw {
				if h {
					inst.HasKeyword = true
					break
				}
			}
			out = append(out, inst)
			return
		}
		for _, c := range im.Dists[j].Cands {
			toks[j] = c.Toks
			kw[j] = c.Toks.ContainsAny(keywords)
			rec(j+1, p*c.P)
		}
	}
	rec(0, 1)
	return out
}

// MayContainKeyword reports whether any instance of the imputed tuple
// contains a query keyword (the condition of Theorem 4.1: if false for both
// tuples of a pair, the pair is safely pruned).
func (im *Imputed) MayContainKeyword(keywords tokens.Set) bool {
	for _, d := range im.Dists {
		for _, c := range d.Cands {
			if c.Toks.ContainsAny(keywords) {
				return true
			}
		}
	}
	return false
}

// MustContainKeyword reports whether every instance contains a keyword,
// i.e. some attribute has all candidates keyword-bearing.
func (im *Imputed) MustContainKeyword(keywords tokens.Set) bool {
	for _, d := range im.Dists {
		if len(d.Cands) == 0 {
			continue
		}
		all := true
		for _, c := range d.Cands {
			if !c.Toks.ContainsAny(keywords) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// SizeInterval returns the token-set size interval of attribute j over all
// candidates.
func (im *Imputed) SizeInterval(j int) (min, max int) {
	return im.Dists[j].SizeInterval()
}

// TotalMass returns the sum of instance probabilities (≤ 1 per
// Definition 4; exactly 1 after Normalize on every distribution).
func (im *Imputed) TotalMass() float64 {
	total := 1.0
	for _, d := range im.Dists {
		m := 0.0
		for _, c := range d.Cands {
			m += c.P
		}
		total *= m
	}
	return total
}
