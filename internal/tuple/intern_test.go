package tuple

import (
	"fmt"
	"reflect"
	"testing"
)

// TestInternerMatchesNewRecord: the interned constructor is observationally
// identical to package NewRecord — same values, missing flags, and token
// sets — while repeated values share one token-set backing array.
func TestInternerMatchesNewRecord(t *testing.T) {
	sc, err := NewSchema("Title", "Venue", "Year")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterner(0)

	rows := [][]string{
		{"deep entity matching", "SIGMOD Conference", "2021"},
		{"streaming joins", "SIGMOD Conference", ""},
		{"deep entity matching", Missing, "2021"},
	}
	var first *Record
	for i, vals := range rows {
		rid := fmt.Sprintf("r%d", i)
		want, err := NewRecord(sc, rid, 0, int64(i), vals)
		if err != nil {
			t.Fatal(err)
		}
		got, err := in.NewRecord(sc, rid, 0, int64(i), vals)
		if err != nil {
			t.Fatal(err)
		}
		if got.RID != want.RID || got.MissingCount() != want.MissingCount() {
			t.Fatalf("row %d: rid/missing diverge: %v vs %v", i, got, want)
		}
		for j := 0; j < sc.D(); j++ {
			if got.Value(j) != want.Value(j) {
				t.Fatalf("row %d attr %d: value %q, want %q", i, j, got.Value(j), want.Value(j))
			}
			if !reflect.DeepEqual(got.Tokens(j), want.Tokens(j)) {
				t.Fatalf("row %d attr %d: tokens %v, want %v", i, j, got.Tokens(j), want.Tokens(j))
			}
		}
		if i == 0 {
			first = got
		}
		if i == 2 {
			// "deep entity matching" (rows 0 and 2) must share one token set.
			a, b := first.Tokens(0), got.Tokens(0)
			if len(a) == 0 || &a[0] != &b[0] {
				t.Fatal("repeated value did not share its interned token set")
			}
		}
	}

	// Missing / empty values never enter the cache.
	if n := in.Len(); n != 4 {
		t.Fatalf("cache holds %d values, want 4 distinct non-missing values", n)
	}
}

// TestInternerCapacityClear: hitting capacity clears the cache wholesale and
// keeps going — no error, no unbounded growth.
func TestInternerCapacityClear(t *testing.T) {
	sc, err := NewSchema("A")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterner(8)
	for i := 0; i < 50; i++ {
		if _, err := in.NewRecord(sc, "r", 0, int64(i), []string{fmt.Sprintf("value %d", i)}); err != nil {
			t.Fatal(err)
		}
		if n := in.Len(); n > 8 {
			t.Fatalf("cache grew to %d entries past its capacity of 8", n)
		}
	}
	if in.Len() == 0 {
		t.Fatal("cache empty after the run: clear-on-full should refill with the working set")
	}

	// Validation still mirrors NewRecord.
	if _, err := in.NewRecord(nil, "r", 0, 0, []string{"x"}); err == nil {
		t.Fatal("nil schema accepted")
	}
	if _, err := in.NewRecord(sc, "r", 0, 0, []string{"x", "y"}); err == nil {
		t.Fatal("wrong value count accepted")
	}
}
