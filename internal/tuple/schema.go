// Package tuple defines the data model of TER-iDS: d-attribute textual
// records arriving on incomplete data streams (Definition 1), and imputed
// probabilistic tuples whose instances carry existence probabilities
// (Definition 4).
package tuple

import "fmt"

// Missing is the textual marker for a missing attribute value ("−" in the
// paper; we accept "-" and "" as missing on input).
const Missing = "-"

// Schema names the d attributes shared by all records of a stream. Streams
// are homogeneous (Section 2.3).
type Schema struct {
	attrs []string
	index map[string]int
}

// NewSchema builds a schema from attribute names. Names must be non-empty
// and unique.
func NewSchema(attrs ...string) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("tuple: schema needs at least one attribute")
	}
	s := &Schema{attrs: append([]string(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("tuple: attribute %d has empty name", i)
		}
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("tuple: duplicate attribute name %q", a)
		}
		s.index[a] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and fixed literals.
func MustSchema(attrs ...string) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// D returns the dimensionality (number of attributes).
func (s *Schema) D() int { return len(s.attrs) }

// Attr returns the name of attribute j.
func (s *Schema) Attr(j int) string { return s.attrs[j] }

// Attrs returns a copy of all attribute names in order.
func (s *Schema) Attrs() []string { return append([]string(nil), s.attrs...) }

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}
