package tuple

import (
	"math"
	"strings"
	"testing"

	"terids/internal/tokens"
)

func TestNewSchema(t *testing.T) {
	s, err := NewSchema("Gender", "Symptom", "Diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	if s.D() != 3 {
		t.Fatalf("D = %d, want 3", s.D())
	}
	if s.Attr(1) != "Symptom" {
		t.Fatalf("Attr(1) = %q", s.Attr(1))
	}
	if s.Index("Diagnosis") != 2 {
		t.Fatalf("Index(Diagnosis) = %d", s.Index("Diagnosis"))
	}
	if s.Index("missing") != -1 {
		t.Fatal("unknown attribute must return -1")
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema must fail")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Error("empty attribute name must fail")
	}
	if _, err := NewSchema("a", "a"); err == nil {
		t.Error("duplicate attribute must fail")
	}
}

func TestSchemaAttrsIsCopy(t *testing.T) {
	s := MustSchema("a", "b")
	attrs := s.Attrs()
	attrs[0] = "mutated"
	if s.Attr(0) != "a" {
		t.Fatal("Attrs must return a copy")
	}
}

func TestNewRecord(t *testing.T) {
	s := MustSchema("Gender", "Symptom", "Diagnosis", "Treatment")
	r, err := NewRecord(s, "a2", 0, 7, []string{"male", "loss of weight, blurred vision", "-", ""})
	if err != nil {
		t.Fatal(err)
	}
	if r.IsComplete() {
		t.Error("record with missing attrs must not be complete")
	}
	if r.MissingCount() != 2 {
		t.Errorf("MissingCount = %d, want 2", r.MissingCount())
	}
	if got := r.MissingAttrs(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("MissingAttrs = %v, want [2 3]", got)
	}
	if r.Value(2) != Missing || r.Value(3) != Missing {
		t.Error("missing values must normalize to the Missing marker")
	}
	if !r.Tokens(1).Contains("blurred") {
		t.Error("tokens must be precomputed")
	}
	if r.Tokens(2) != nil {
		t.Error("missing attribute must have nil tokens")
	}
	if r.EntityID != -1 {
		t.Error("default EntityID must be -1")
	}
}

func TestNewRecordErrors(t *testing.T) {
	s := MustSchema("a", "b")
	if _, err := NewRecord(nil, "x", 0, 0, []string{"v"}); err == nil {
		t.Error("nil schema must fail")
	}
	if _, err := NewRecord(s, "x", 0, 0, []string{"only one"}); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestRecordImmutableInput(t *testing.T) {
	s := MustSchema("a")
	in := []string{"hello"}
	r := MustRecord(s, "x", 0, 0, in)
	in[0] = "mutated"
	if r.Value(0) != "hello" {
		t.Fatal("record must copy its input values")
	}
}

func TestAllTokensAndKeywords(t *testing.T) {
	s := MustSchema("a", "b", "c")
	r := MustRecord(s, "x", 0, 0, []string{"diabetes care", "-", "drug therapy"})
	all := r.AllTokens()
	for _, tok := range []string{"diabetes", "care", "drug", "therapy"} {
		if !all.Contains(tok) {
			t.Errorf("AllTokens missing %q", tok)
		}
	}
	if !r.ContainsAnyKeyword(tokens.New("diabetes")) {
		t.Error("keyword diabetes must be found")
	}
	if r.ContainsAnyKeyword(tokens.New("flu")) {
		t.Error("keyword flu must not be found")
	}
}

func TestSim(t *testing.T) {
	s := MustSchema("a", "b")
	r1 := MustRecord(s, "x", 0, 0, []string{"a b c", "x y"})
	r2 := MustRecord(s, "y", 1, 1, []string{"a b c", "x z"})
	// attr a: identical -> 1; attr b: {x,y} vs {x,z} -> 1/3.
	want := 1 + 1.0/3.0
	if got := Sim(r1, r2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sim = %v, want %v", got, want)
	}
}

func TestAttrDistNormalizeTruncate(t *testing.T) {
	d := AttrDist{Cands: []Candidate{
		{Text: "a", Toks: tokens.New("a"), P: 2},
		{Text: "b", Toks: tokens.New("b"), P: 1},
		{Text: "c", Toks: tokens.New("c"), P: 1},
	}}
	d.Normalize()
	if math.Abs(d.Cands[0].P-0.5) > 1e-12 {
		t.Fatalf("normalized P = %v, want 0.5", d.Cands[0].P)
	}
	d.Truncate(2)
	if len(d.Cands) != 2 {
		t.Fatalf("Truncate kept %d, want 2", len(d.Cands))
	}
	total := d.Cands[0].P + d.Cands[1].P
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("after truncate probabilities sum to %v, want 1", total)
	}
	if d.Cands[0].Text != "a" {
		t.Fatal("truncate must keep the most probable candidate")
	}
}

func TestTruncateDeterministicTies(t *testing.T) {
	d := AttrDist{Cands: []Candidate{
		{Text: "z", P: 1}, {Text: "a", P: 1}, {Text: "m", P: 1},
	}}
	d.Truncate(2)
	if d.Cands[0].Text != "a" || d.Cands[1].Text != "m" {
		t.Fatalf("tie-break must be lexicographic, got %v", d.Cands)
	}
}

func TestNormalizeZeroMass(t *testing.T) {
	d := AttrDist{Cands: []Candidate{{Text: "a", P: 0}}}
	d.Normalize() // must not panic or NaN
	if d.Cands[0].P != 0 {
		t.Fatal("zero-mass distribution must stay zero")
	}
}

func TestFromCompleteAndInstances(t *testing.T) {
	s := MustSchema("a", "b")
	r := MustRecord(s, "x", 0, 0, []string{"alpha beta", "gamma"})
	im := FromComplete(r)
	if im.InstanceCount() != 1 {
		t.Fatalf("InstanceCount = %d, want 1", im.InstanceCount())
	}
	inst := im.Instances(tokens.New("gamma"))
	if len(inst) != 1 || inst[0].P != 1 {
		t.Fatalf("instances = %v", inst)
	}
	if !inst[0].HasKeyword {
		t.Error("instance must carry keyword flag")
	}
	if math.Abs(im.TotalMass()-1) > 1e-12 {
		t.Errorf("TotalMass = %v, want 1", im.TotalMass())
	}
}

func TestInstancesCrossProduct(t *testing.T) {
	s := MustSchema("a", "b")
	r := MustRecord(s, "x", 0, 0, []string{"known", "-"})
	im := &Imputed{R: r, Dists: []AttrDist{
		Point("known", tokens.New("known")),
		{Cands: []Candidate{
			{Text: "v1", Toks: tokens.New("v1"), P: 0.75},
			{Text: "diabetes", Toks: tokens.New("diabetes"), P: 0.25},
		}},
	}}
	insts := im.Instances(tokens.New("diabetes"))
	if len(insts) != 2 {
		t.Fatalf("len(instances) = %d, want 2", len(insts))
	}
	if insts[0].HasKeyword || !insts[1].HasKeyword {
		t.Errorf("keyword flags wrong: %v %v", insts[0].HasKeyword, insts[1].HasKeyword)
	}
	if math.Abs(insts[0].P-0.75) > 1e-12 || math.Abs(insts[1].P-0.25) > 1e-12 {
		t.Errorf("instance probabilities wrong: %v", insts)
	}
}

func TestMayMustContainKeyword(t *testing.T) {
	s := MustSchema("a")
	r := MustRecord(s, "x", 0, 0, []string{"-"})
	kw := tokens.New("diabetes")
	im := &Imputed{R: r, Dists: []AttrDist{{Cands: []Candidate{
		{Text: "diabetes", Toks: tokens.New("diabetes"), P: 0.5},
		{Text: "flu", Toks: tokens.New("flu"), P: 0.5},
	}}}}
	if !im.MayContainKeyword(kw) {
		t.Error("MayContainKeyword must be true")
	}
	if im.MustContainKeyword(kw) {
		t.Error("MustContainKeyword must be false (flu candidate)")
	}
	im2 := &Imputed{R: r, Dists: []AttrDist{{Cands: []Candidate{
		{Text: "diabetes one", Toks: tokens.New("diabetes", "one"), P: 0.5},
		{Text: "diabetes two", Toks: tokens.New("diabetes", "two"), P: 0.5},
	}}}}
	if !im2.MustContainKeyword(kw) {
		t.Error("MustContainKeyword must be true when every candidate has it")
	}
}

func TestSizeInterval(t *testing.T) {
	d := AttrDist{Cands: []Candidate{
		{Toks: tokens.New("a", "b", "c")},
		{Toks: tokens.New("a")},
		{Toks: tokens.New("a", "b")},
	}}
	min, max := d.SizeInterval()
	if min != 1 || max != 3 {
		t.Fatalf("SizeInterval = (%d, %d), want (1, 3)", min, max)
	}
	empty := AttrDist{}
	if mn, mx := empty.SizeInterval(); mn != 0 || mx != 0 {
		t.Fatal("empty distribution size interval must be (0,0)")
	}
}

func TestInstanceSim(t *testing.T) {
	a := Instance{Toks: []tokens.Set{tokens.New("x", "y"), tokens.New("p")}}
	b := Instance{Toks: []tokens.Set{tokens.New("x", "y"), tokens.New("q")}}
	if got := a.Sim(b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Instance.Sim = %v, want 1", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := MustSchema("title", "authors")
	r1 := MustRecord(s, "a1", 0, 0, []string{"deep learning", "-"})
	r1.EntityID = 42
	r2 := MustRecord(s, "b1", 1, 1, []string{"streaming er", "ren lian"})
	var buf strings.Builder
	if err := WriteCSV(&buf, s, []*Record{r1, r2}); err != nil {
		t.Fatal(err)
	}
	schema, recs, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if schema.D() != 2 || schema.Attr(0) != "title" {
		t.Fatalf("schema round-trip failed: %v", schema.Attrs())
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].EntityID != 42 || !recs[0].IsMissing(1) {
		t.Errorf("record 0 round-trip failed: %v", recs[0])
	}
	if recs[1].Stream != 1 || recs[1].Value(1) != "ren lian" {
		t.Errorf("record 1 round-trip failed: %v", recs[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bad,header\n",
		"rid,stream,entity,a\nx,notanint,0,v\n",
		"rid,stream,entity,a\nx,0,notanint,v\n",
	}
	for _, c := range cases {
		if _, _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) must fail", c)
		}
	}
}
