package tuple

import (
	"math"
	"math/rand"
	"testing"

	"terids/internal/tokens"
)

func TestSimHeterogeneous(t *testing.T) {
	s1 := MustSchema("title", "authors")
	s2 := MustSchema("name", "people", "venue") // different schema entirely
	a := MustRecord(s1, "a", 0, 0, []string{"entity resolution streams", "ren lian"})
	b := MustRecord(s2, "b", 1, 0, []string{"entity resolution", "ren lian ghazinour", "sigmod"})
	got := SimHeterogeneous(a, b)
	// T(a) = {entity, resolution, streams, ren, lian} (5)
	// T(b) = {entity, resolution, ren, lian, ghazinour, sigmod} (6)
	// intersection = 4, union = 7.
	if want := 4.0 / 7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("SimHeterogeneous = %v, want %v", got, want)
	}
}

func TestSimHeterogeneousIgnoresMissing(t *testing.T) {
	s := MustSchema("a", "b")
	r1 := MustRecord(s, "r1", 0, 0, []string{"x y", "-"})
	r2 := MustRecord(s, "r2", 1, 0, []string{"x y", "z"})
	// T(r1) = {x, y}, T(r2) = {x, y, z} -> 2/3.
	if got, want := SimHeterogeneous(r1, r2), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("SimHeterogeneous = %v, want %v", got, want)
	}
}

func TestSimHeterogeneousProperties(t *testing.T) {
	s := MustSchema("a", "b", "c")
	r := rand.New(rand.NewSource(8))
	randVal := func() string {
		out := ""
		for i := 0; i <= r.Intn(4); i++ {
			out += string(rune('a'+r.Intn(10))) + " "
		}
		return out
	}
	for i := 0; i < 2000; i++ {
		a := MustRecord(s, "a", 0, 0, []string{randVal(), randVal(), randVal()})
		b := MustRecord(s, "b", 1, 0, []string{randVal(), randVal(), randVal()})
		sim := SimHeterogeneous(a, b)
		if sim < 0 || sim > 1 {
			t.Fatalf("out of range: %v", sim)
		}
		if sim != SimHeterogeneous(b, a) {
			t.Fatal("not symmetric")
		}
		// Upper-bounded by 1 and consistent with token overlap.
		if a.AllTokens().IntersectSize(b.AllTokens()) == 0 && sim != 0 {
			t.Fatal("no overlap must give 0")
		}
	}
	_ = tokens.Set{}
}
