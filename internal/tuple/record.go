package tuple

import (
	"fmt"

	"terids/internal/tokens"
)

// Record is one tuple r_i of an incomplete data stream: a profile identifier
// plus d attribute values, any of which may be missing (Definition 1).
// Token sets are precomputed at construction. Records are immutable after
// creation.
type Record struct {
	// RID is the unique profile identifier r_id.
	RID string
	// Stream identifies the originating data stream iDS_y (0-based).
	Stream int
	// Seq is the arrival timestamp (position in the merged stream order).
	Seq int64
	// EntityID is the ground-truth entity label for evaluation, or -1 when
	// unknown. It is never consulted by the resolution algorithms.
	EntityID int

	schema *Schema
	vals   []string
	miss   []bool
	toks   []tokens.Set
	nMiss  int
}

var errNilSchema = fmt.Errorf("tuple: nil schema")

func errValueCount(rid string, got, want int) error {
	return fmt.Errorf("tuple: record %q has %d values, schema has %d attributes", rid, got, want)
}

// NewRecord builds a record over schema. values must have exactly schema.D()
// entries; the Missing marker ("-") or an empty string denotes a missing
// attribute.
func NewRecord(schema *Schema, rid string, stream int, seq int64, values []string) (*Record, error) {
	if schema == nil {
		return nil, errNilSchema
	}
	if len(values) != schema.D() {
		return nil, errValueCount(rid, len(values), schema.D())
	}
	r := &Record{
		RID:      rid,
		Stream:   stream,
		Seq:      seq,
		EntityID: -1,
		schema:   schema,
		vals:     append([]string(nil), values...),
		miss:     make([]bool, len(values)),
		toks:     make([]tokens.Set, len(values)),
	}
	for j, v := range r.vals {
		if v == Missing || v == "" {
			r.vals[j] = Missing
			r.miss[j] = true
			r.nMiss++
			continue
		}
		r.toks[j] = tokens.Tokenize(v)
	}
	return r, nil
}

// MustRecord is NewRecord that panics on error; for tests and fixtures.
func MustRecord(schema *Schema, rid string, stream int, seq int64, values []string) *Record {
	r, err := NewRecord(schema, rid, stream, seq, values)
	if err != nil {
		panic(err)
	}
	return r
}

// Schema returns the record's schema.
func (r *Record) Schema() *Schema { return r.schema }

// D returns the number of attributes.
func (r *Record) D() int { return len(r.vals) }

// Value returns the raw text of attribute j (Missing if absent).
func (r *Record) Value(j int) string { return r.vals[j] }

// IsMissing reports whether attribute j is missing.
func (r *Record) IsMissing(j int) bool { return r.miss[j] }

// IsComplete reports whether no attribute is missing.
func (r *Record) IsComplete() bool { return r.nMiss == 0 }

// MissingCount returns the number of missing attributes.
func (r *Record) MissingCount() int { return r.nMiss }

// MissingAttrs returns the indexes of all missing attributes, in order.
func (r *Record) MissingAttrs() []int {
	if r.nMiss == 0 {
		return nil
	}
	out := make([]int, 0, r.nMiss)
	for j, m := range r.miss {
		if m {
			out = append(out, j)
		}
	}
	return out
}

// Tokens returns the token set of attribute j (nil when missing).
func (r *Record) Tokens(j int) tokens.Set { return r.toks[j] }

// AllTokens returns the union of token sets over all non-missing attributes.
func (r *Record) AllTokens() tokens.Set {
	var u tokens.Set
	for j := range r.toks {
		if !r.miss[j] {
			u = u.Union(r.toks[j])
		}
	}
	return u
}

// ContainsAnyKeyword reports whether any non-missing attribute of r contains
// a token from keywords.
func (r *Record) ContainsAnyKeyword(keywords tokens.Set) bool {
	for j := range r.toks {
		if !r.miss[j] && r.toks[j].ContainsAny(keywords) {
			return true
		}
	}
	return false
}

// Sim returns the ER similarity of two complete records per Definition 5:
// the sum over attributes of per-attribute Jaccard similarities. Calling Sim
// on records with missing attributes treats the missing side as an empty
// token set; resolution code only calls it on imputed instances.
func Sim(a, b *Record) float64 {
	if a.D() != b.D() {
		panic(fmt.Sprintf("tuple: Sim over mismatched dimensions %d vs %d", a.D(), b.D()))
	}
	total := 0.0
	for j := 0; j < a.D(); j++ {
		total += tokens.Jaccard(a.toks[j], b.toks[j])
	}
	return total
}

// SimHeterogeneous returns the schema-agnostic similarity the paper
// sketches for heterogeneous sources (Section 2.3): the Jaccard similarity
// between the token sets of ALL attributes of each tuple,
// |T(r) ∩ T(r')| / |T(r) ∪ T(r')|. Unlike Sim it needs no attribute
// alignment, so the records may have different schemas. The result lies in
// [0, 1].
func SimHeterogeneous(a, b *Record) float64 {
	return tokens.Jaccard(a.AllTokens(), b.AllTokens())
}

// String renders the record compactly for logs and error messages.
func (r *Record) String() string {
	return fmt.Sprintf("%s@%d%v", r.RID, r.Seq, r.vals)
}
