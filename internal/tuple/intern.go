package tuple

import (
	"sync"

	"terids/internal/tokens"
)

// Interner caches attribute-value tokenizations across records. Streams
// repeat values heavily — the same venue, author, or topic string arrives
// thousands of times — and Tokenize is the dominant per-record construction
// cost, so ingest paths that decode many records benefit from sharing one
// interner. Cached token sets are shared read-only between records, which is
// safe because Record never mutates its token sets after construction.
//
// The cache is bounded: when it reaches capacity it is cleared wholesale
// (cheap, no LRU bookkeeping on the hot path) and re-fills with the current
// working set. Safe for concurrent use.
type Interner struct {
	mu    sync.Mutex
	cache map[string]tokens.Set
	cap   int
}

// defaultInternerCap bounds the value cache; at typical attribute-value
// sizes this is a few MB.
const defaultInternerCap = 1 << 16

// NewInterner returns an interner holding at most capacity distinct values
// (capacity <= 0 selects the default).
func NewInterner(capacity int) *Interner {
	if capacity <= 0 {
		capacity = defaultInternerCap
	}
	return &Interner{cache: make(map[string]tokens.Set, capacity/4), cap: capacity}
}

// tokenize returns the shared token set for v, computing and caching it on
// first sight.
func (in *Interner) tokenize(v string) tokens.Set {
	in.mu.Lock()
	if ts, ok := in.cache[v]; ok {
		in.mu.Unlock()
		return ts
	}
	in.mu.Unlock()
	// Tokenize outside the lock: it allocates and sorts, and two goroutines
	// racing on the same fresh value just do the work twice, harmlessly.
	ts := tokens.Tokenize(v)
	in.mu.Lock()
	if len(in.cache) >= in.cap {
		in.cache = make(map[string]tokens.Set, in.cap/4)
	}
	in.cache[v] = ts
	in.mu.Unlock()
	return ts
}

// Len reports how many distinct values are currently cached.
func (in *Interner) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.cache)
}

// NewRecord is NewRecord with interned tokenization: identical to the
// package-level constructor (same validation, same resulting Record) except
// that token sets for repeated values are shared via the interner.
func (in *Interner) NewRecord(schema *Schema, rid string, stream int, seq int64, values []string) (*Record, error) {
	if schema == nil {
		return nil, errNilSchema
	}
	if len(values) != schema.D() {
		return nil, errValueCount(rid, len(values), schema.D())
	}
	r := &Record{
		RID:      rid,
		Stream:   stream,
		Seq:      seq,
		EntityID: -1,
		schema:   schema,
		vals:     append([]string(nil), values...),
		miss:     make([]bool, len(values)),
		toks:     make([]tokens.Set, len(values)),
	}
	for j, v := range r.vals {
		if v == Missing || v == "" {
			r.vals[j] = Missing
			r.miss[j] = true
			r.nMiss++
			continue
		}
		r.toks[j] = in.tokenize(v)
	}
	return r, nil
}
