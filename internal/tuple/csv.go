package tuple

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csv layout: header row is "rid,stream,entity,<attr1>,...,<attrd>"; each
// data row carries the record identity followed by the d attribute values
// (Missing marker for absent ones). EntityID -1 is written for unlabeled
// records.

// WriteCSV serializes records (all sharing schema) to w.
func WriteCSV(w io.Writer, schema *Schema, recs []*Record) error {
	cw := csv.NewWriter(w)
	header := append([]string{"rid", "stream", "entity"}, schema.Attrs()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("tuple: writing csv header: %w", err)
	}
	row := make([]string, 0, 3+schema.D())
	for _, r := range recs {
		row = row[:0]
		row = append(row, r.RID, strconv.Itoa(r.Stream), strconv.Itoa(r.EntityID))
		for j := 0; j < r.D(); j++ {
			row = append(row, r.Value(j))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("tuple: writing csv row for %s: %w", r.RID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records written by WriteCSV. The schema is reconstructed
// from the header. Sequence numbers are assigned in file order.
func ReadCSV(r io.Reader) (*Schema, []*Record, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("tuple: reading csv header: %w", err)
	}
	if len(header) < 4 || header[0] != "rid" || header[1] != "stream" || header[2] != "entity" {
		return nil, nil, fmt.Errorf("tuple: malformed csv header %v", header)
	}
	schema, err := NewSchema(header[3:]...)
	if err != nil {
		return nil, nil, err
	}
	var recs []*Record
	for seq := int64(0); ; seq++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("tuple: reading csv row %d: %w", seq, err)
		}
		stream, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, nil, fmt.Errorf("tuple: row %d: bad stream id %q", seq, row[1])
		}
		entity, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, nil, fmt.Errorf("tuple: row %d: bad entity id %q", seq, row[2])
		}
		rec, err := NewRecord(schema, row[0], stream, seq, row[3:])
		if err != nil {
			return nil, nil, err
		}
		rec.EntityID = entity
		recs = append(recs, rec)
	}
	return schema, recs, nil
}
