package metrics

import "sync"

// Totals is a mergeable snapshot of online work: the Figure 6 cost
// breakdown, the Figure 4 pruning counters, and throughput counts. Shard
// workers produce Totals deltas; aggregation is component-wise addition.
type Totals struct {
	Breakdown Breakdown
	Prune     PruneStats
	// Tuples counts arrivals fully processed.
	Tuples int64
	// Pairs counts result pairs emitted (after cross-shard dedup).
	Pairs int64
}

// Add folds o into t component-wise.
func (t *Totals) Add(o Totals) {
	t.Breakdown.Add(o.Breakdown)
	t.Prune.Add(o.Prune)
	t.Tuples += o.Tuples
	t.Pairs += o.Pairs
}

// Accumulator is a concurrency-safe Totals: many writers (per-shard and
// per-stage workers) fold deltas in while readers (stats endpoints) take
// consistent snapshots. The zero value is ready to use.
type Accumulator struct {
	mu sync.Mutex
	t  Totals
}

// Add folds a delta in.
func (a *Accumulator) Add(delta Totals) {
	a.mu.Lock()
	a.t.Add(delta)
	a.mu.Unlock()
}

// AddBreakdown folds in a cost-only delta.
func (a *Accumulator) AddBreakdown(b Breakdown) {
	a.Add(Totals{Breakdown: b})
}

// AddPrune folds in a pruning-counter delta.
func (a *Accumulator) AddPrune(p PruneStats) {
	a.Add(Totals{Prune: p})
}

// Snapshot returns a consistent copy of the accumulated totals.
func (a *Accumulator) Snapshot() Totals {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.t
}
