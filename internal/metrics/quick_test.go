package metrics

import (
	"testing"
	"testing/quick"
)

func TestQuickKeyNormalization(t *testing.T) {
	symmetric := func(a, b string) bool {
		return Key(a, b) == Key(b, a)
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	ordered := func(a, b string) bool {
		k := Key(a, b)
		return k.A <= k.B
	}
	if err := quick.Check(ordered, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickConfusionScoresBounded(t *testing.T) {
	bounded := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn)}
		p, r, f := c.Precision(), c.Recall(), c.F1()
		return p >= 0 && p <= 1 && r >= 0 && r <= 1 && f >= 0 && f <= 1 &&
			f <= p+1e-12+1 && // trivially true; guards NaN
			!(f != f) // NaN check
	}
	if err := quick.Check(bounded, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestQuickF1BetweenPrecisionAndRecall(t *testing.T) {
	between := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn)}
		p, r, f := c.Precision(), c.Recall(), c.F1()
		lo, hi := p, r
		if lo > hi {
			lo, hi = hi, lo
		}
		// Harmonic mean lies between min and max (or all are zero).
		return (f >= lo-1e-12 && f <= hi+1e-12) || (p == 0 && r == 0 && f == 0) ||
			(p+r == 0 && f == 0)
	}
	if err := quick.Check(between, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
