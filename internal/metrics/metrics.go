// Package metrics implements the evaluation measures of Section 6.1:
// precision/recall/F-score against ground-truth matching pairs, and the
// wall-clock breakdown of Figure 6 (online CDD selection, online imputation,
// online ER cost).
package metrics

import (
	"fmt"
	"time"
)

// PairKey identifies an unordered record pair by RIDs; Key normalizes the
// order so (a,b) == (b,a).
type PairKey struct {
	A, B string
}

// Key builds a normalized PairKey.
func Key(a, b string) PairKey {
	if a > b {
		a, b = b, a
	}
	return PairKey{A: a, B: b}
}

// Confusion counts true/false positives and false negatives of a returned
// pair set against ground truth.
type Confusion struct {
	TP, FP, FN int
}

// Precision returns TP/(TP+FP); 0 when nothing was returned.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN); 0 when the ground truth is empty.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall (Equation 6).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Compare evaluates returned pairs against truth.
func Compare(returned map[PairKey]bool, truth map[PairKey]bool) Confusion {
	var c Confusion
	for k := range returned {
		if truth[k] {
			c.TP++
		} else {
			c.FP++
		}
	}
	for k := range truth {
		if !returned[k] {
			c.FN++
		}
	}
	return c
}

// Breakdown is the per-phase online cost of Figure 6.
type Breakdown struct {
	// Select is the online CDD selection cost.
	Select time.Duration
	// Impute is the online imputation cost.
	Impute time.Duration
	// ER is the online entity-resolution cost.
	ER time.Duration
}

// Total returns the summed wall-clock time.
func (b Breakdown) Total() time.Duration { return b.Select + b.Impute + b.ER }

// Add folds o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Select += o.Select
	b.Impute += o.Impute
	b.ER += o.ER
}

// String renders the breakdown for reports.
func (b Breakdown) String() string {
	return fmt.Sprintf("select=%v impute=%v er=%v total=%v", b.Select, b.Impute, b.ER, b.Total())
}

// Stopwatch measures phases with minimal ceremony.
type Stopwatch struct {
	start time.Time
}

// Start begins (or restarts) the stopwatch.
func (s *Stopwatch) Start() { s.start = time.Now() }

// Lap returns the elapsed time and restarts.
func (s *Stopwatch) Lap() time.Duration {
	now := time.Now()
	d := now.Sub(s.start)
	s.start = now
	return d
}

// PruneStats counts pairs eliminated by each pruning strategy of Section 4,
// in application order, plus survivors (refined pairs). It backs Figure 4.
type PruneStats struct {
	// Considered is the number of candidate pairs examined.
	Considered int64
	// Topic counts pairs removed by topic keyword pruning (Theorem 4.1).
	Topic int64
	// SimUB counts pairs removed by similarity upper bound pruning
	// (Theorem 4.2).
	SimUB int64
	// ProbUB counts pairs removed by probability upper bound pruning
	// (Theorem 4.3).
	ProbUB int64
	// InstPair counts pairs removed by instance-pair-level pruning
	// (Theorem 4.4).
	InstPair int64
	// Refined counts pairs whose exact probability was fully computed.
	Refined int64
}

// Add folds o into s.
func (s *PruneStats) Add(o PruneStats) {
	s.Considered += o.Considered
	s.Topic += o.Topic
	s.SimUB += o.SimUB
	s.ProbUB += o.ProbUB
	s.InstPair += o.InstPair
	s.Refined += o.Refined
}

// Power returns each strategy's pruning percentage of considered pairs and
// the total pruned percentage, as in Figure 4.
func (s PruneStats) Power() (topic, simUB, probUB, instPair, total float64) {
	if s.Considered == 0 {
		return 0, 0, 0, 0, 0
	}
	n := float64(s.Considered)
	topic = 100 * float64(s.Topic) / n
	simUB = 100 * float64(s.SimUB) / n
	probUB = 100 * float64(s.ProbUB) / n
	instPair = 100 * float64(s.InstPair) / n
	total = topic + simUB + probUB + instPair
	return
}
