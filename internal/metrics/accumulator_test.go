package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestTotalsAdd(t *testing.T) {
	var tot Totals
	tot.Add(Totals{
		Breakdown: Breakdown{Select: time.Millisecond, Impute: 2 * time.Millisecond, ER: 3 * time.Millisecond},
		Prune:     PruneStats{Considered: 10, Topic: 4, SimUB: 3, Refined: 3},
		Tuples:    5,
		Pairs:     2,
	})
	tot.Add(Totals{Prune: PruneStats{Considered: 5, InstPair: 5}, Tuples: 1})
	if tot.Prune.Considered != 15 || tot.Prune.Topic != 4 || tot.Prune.InstPair != 5 {
		t.Fatalf("prune counters not additive: %+v", tot.Prune)
	}
	if tot.Tuples != 6 || tot.Pairs != 2 {
		t.Fatalf("throughput counters not additive: %+v", tot)
	}
	if tot.Breakdown.Total() != 6*time.Millisecond {
		t.Fatalf("breakdown total %v", tot.Breakdown.Total())
	}
}

// TestAccumulatorConcurrent exercises the engine's usage: many workers
// folding deltas while a reader snapshots. Run under -race in CI.
func TestAccumulatorConcurrent(t *testing.T) {
	var acc Accumulator
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = acc.Snapshot()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				acc.Add(Totals{Tuples: 1, Prune: PruneStats{Considered: 2}})
				acc.AddBreakdown(Breakdown{ER: time.Microsecond})
				acc.AddPrune(PruneStats{Refined: 1})
			}
		}()
	}
	wg.Wait()
	close(stop)
	got := acc.Snapshot()
	if got.Tuples != workers*perWorker {
		t.Fatalf("tuples %d, want %d", got.Tuples, workers*perWorker)
	}
	if got.Prune.Considered != 2*workers*perWorker || got.Prune.Refined != workers*perWorker {
		t.Fatalf("prune counters %+v", got.Prune)
	}
	if got.Breakdown.ER != workers*perWorker*time.Microsecond {
		t.Fatalf("breakdown ER %v", got.Breakdown.ER)
	}
}
