package metrics

import (
	"math"
	"testing"
	"time"
)

func TestKeyNormalizes(t *testing.T) {
	if Key("b", "a") != Key("a", "b") {
		t.Fatal("Key must normalize order")
	}
	if Key("a", "b") == Key("a", "c") {
		t.Fatal("distinct pairs must differ")
	}
}

func TestCompareAndScores(t *testing.T) {
	truth := map[PairKey]bool{
		Key("a", "b"): true,
		Key("c", "d"): true,
		Key("e", "f"): true,
		Key("g", "h"): true,
	}
	returned := map[PairKey]bool{
		Key("b", "a"): true, // TP (order-normalized)
		Key("c", "d"): true, // TP
		Key("x", "y"): true, // FP
	}
	c := Compare(returned, truth)
	if c.TP != 2 || c.FP != 1 || c.FN != 2 {
		t.Fatalf("Confusion = %+v", c)
	}
	if got, want := c.Precision(), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Precision = %v, want %v", got, want)
	}
	if got, want := c.Recall(), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Recall = %v, want %v", got, want)
	}
	wantF1 := 2 * (2.0 / 3.0) * 0.5 / ((2.0 / 3.0) + 0.5)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
}

func TestScoresDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion must score 0 without NaN")
	}
	onlyFN := Confusion{FN: 5}
	if onlyFN.F1() != 0 {
		t.Fatal("no TP must give F1 0")
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{Select: time.Millisecond, Impute: 2 * time.Millisecond, ER: 3 * time.Millisecond}
	if b.Total() != 6*time.Millisecond {
		t.Fatalf("Total = %v", b.Total())
	}
	b.Add(Breakdown{Select: time.Millisecond})
	if b.Select != 2*time.Millisecond {
		t.Fatalf("Add failed: %+v", b)
	}
	if b.String() == "" {
		t.Fatal("String must render")
	}
}

func TestStopwatch(t *testing.T) {
	var sw Stopwatch
	sw.Start()
	time.Sleep(time.Millisecond)
	d1 := sw.Lap()
	if d1 <= 0 {
		t.Fatal("Lap must measure positive time")
	}
	d2 := sw.Lap()
	if d2 < 0 || d2 > d1+time.Second {
		t.Fatalf("second lap unreasonable: %v", d2)
	}
}

func TestPruneStats(t *testing.T) {
	s := PruneStats{Considered: 200, Topic: 160, SimUB: 20, ProbUB: 10, InstPair: 6, Refined: 4}
	topic, simUB, probUB, instPair, total := s.Power()
	if topic != 80 || simUB != 10 || probUB != 5 || instPair != 3 {
		t.Fatalf("Power = %v %v %v %v", topic, simUB, probUB, instPair)
	}
	if total != 98 {
		t.Fatalf("total = %v, want 98", total)
	}
	var z PruneStats
	if _, _, _, _, tot := z.Power(); tot != 0 {
		t.Fatal("zero considered must not divide by zero")
	}
	z.Add(s)
	if z.Considered != 200 || z.Refined != 4 {
		t.Fatalf("Add failed: %+v", z)
	}
}
