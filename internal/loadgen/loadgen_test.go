package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testRecords(n int) []Arrival {
	recs := make([]Arrival, n)
	for i := range recs {
		recs[i] = Arrival{
			RID:    fmt.Sprintf("r%d", i),
			Stream: i % 2,
			Values: []string{"a", "b", "c", "d"},
		}
	}
	return recs
}

// acceptAll is a fast ingest stub replying like terids-serve.
func acceptAll() http.HandlerFunc {
	return func(rw http.ResponseWriter, req *http.Request) {
		n := 0
		sc := bufio.NewScanner(req.Body)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) != "" {
				n++
			}
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(map[string]any{"accepted": n})
	}
}

func TestParsePhases(t *testing.T) {
	phases, err := ParsePhases(100, 2*time.Second, "")
	if err != nil || len(phases) != 1 || phases[0].Rate != 100 || phases[0].Duration != 2*time.Second {
		t.Fatalf("single phase: %v %v", phases, err)
	}
	phases, err = ParsePhases(0, 0, "200:1s, 400:500ms")
	if err != nil || len(phases) != 2 {
		t.Fatalf("ramp: %v %v", phases, err)
	}
	if phases[0].Rate != 200 || phases[1].Rate != 400 || phases[1].Duration != 500*time.Millisecond {
		t.Fatalf("ramp parsed wrong: %+v", phases)
	}
	for _, bad := range []string{"200", "x:1s", "200:zzz", "-5:1s", "200:-1s"} {
		if _, err := ParsePhases(0, 0, bad); err == nil {
			t.Fatalf("ramp %q accepted, want error", bad)
		}
	}
	if _, err := ParsePhases(0, 0, ""); err == nil {
		t.Fatal("no rate, no ramp accepted, want error")
	}
}

// TestRunBasicReport: a fast server at a modest rate — every arrival is
// accepted, the achieved rate is near the target, and the report carries the
// phase breakdown.
func TestRunBasicReport(t *testing.T) {
	ts := httptest.NewServer(acceptAll())
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL,
		Phases:  []Phase{{Rate: 400, Duration: 500 * time.Millisecond}},
		Records: testRecords(16),
		Workers: 2, Batch: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 200 || rep.Accepted != 200 || rep.Errors != 0 {
		t.Fatalf("sent/accepted/errors = %d/%d/%d, want 200/200/0", rep.Sent, rep.Accepted, rep.Errors)
	}
	if rep.AchievedRate < 200 || rep.AchievedRate > 800 {
		t.Fatalf("achieved rate %.1f, want near 400", rep.AchievedRate)
	}
	if rep.TargetRate != 400 {
		t.Fatalf("target rate %.1f, want 400", rep.TargetRate)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Sent != 200 {
		t.Fatalf("phase breakdown %+v", rep.Phases)
	}
	if rep.P50NS <= 0 || rep.P99NS < rep.P50NS {
		t.Fatalf("quantiles p50=%v p99=%v", rep.P50NS, rep.P99NS)
	}
}

// TestRunCoordinatedOmissionSafety is the property the harness exists for: a
// server that stalls every request must show the queueing delay in the
// recorded distribution. One worker against a 25ms-per-request server at
// 100/s means the schedule demands 4× the capacity; arrivals queue, and a
// schedule-based (intended-start) measurement records latencies that grow
// toward the full backlog — while a naive send-based measurement would
// report a flat ~25ms and hide the overload entirely.
func TestRunCoordinatedOmissionSafety(t *testing.T) {
	const service = 25 * time.Millisecond
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		time.Sleep(service)
		acceptAll()(rw, req)
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL,
		Phases:  []Phase{{Rate: 100, Duration: 250 * time.Millisecond}},
		Records: testRecords(8),
		Workers: 1, Batch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 25 {
		t.Fatalf("sent %d, want 25", rep.Sent)
	}
	// 25 requests × 25ms service on one connection = 625ms of work against a
	// 250ms schedule: the last arrivals wait hundreds of ms past their slot.
	// p99 must expose that queueing, far above the bare service time.
	if rep.P99NS < float64(4*service) {
		t.Fatalf("p99 %.1fms with a saturated server, want >= %.0fms (queueing must be measured, not omitted)",
			rep.P99NS/1e6, float64(4*service)/1e6)
	}
	// And the median is already above one service time: mid-schedule arrivals
	// queue too.
	if rep.P50NS < float64(service) {
		t.Fatalf("p50 %.1fms, want >= service time %.0fms", rep.P50NS/1e6, float64(service)/1e6)
	}
}

// TestRunCountsThrottlesAndErrors: 429 and 5xx replies land in the
// throttled/error counters, not in accepted.
func TestRunCountsThrottlesAndErrors(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		bufio.NewScanner(req.Body) // drain lazily; reply depends on call index
		switch n.Add(1) % 2 {
		case 0:
			rw.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(rw).Encode(map[string]any{"accepted": 0})
		default:
			rw.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(rw).Encode(map[string]any{"accepted": 0})
		}
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL,
		Phases:  []Phase{{Rate: 200, Duration: 200 * time.Millisecond}},
		Records: testRecords(4),
		Workers: 2, Batch: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 0 {
		t.Fatalf("accepted %d from an all-failing server, want 0", rep.Accepted)
	}
	if rep.Throttled429 == 0 || rep.Errors == 0 {
		t.Fatalf("throttled=%d errors=%d, want both > 0", rep.Throttled429, rep.Errors)
	}
	if rep.Throttled429+rep.Errors != rep.Sent {
		t.Fatalf("throttled %d + errors %d != sent %d", rep.Throttled429, rep.Errors, rep.Sent)
	}
}

func TestReportCheck(t *testing.T) {
	rep := Report{P99NS: 5e6, AchievedRate: 150, Sent: 1000, Errors: 20}
	if err := rep.Check(Thresholds{MaxP99: 10 * time.Millisecond, MinRate: 100, MaxErrorRate: 0.05}); err != nil {
		t.Fatalf("passing report failed check: %v", err)
	}
	if err := rep.Check(Thresholds{MaxP99: time.Millisecond}); err == nil ||
		!strings.Contains(err.Error(), "p99") {
		t.Fatalf("p99 violation not reported: %v", err)
	}
	if err := rep.Check(Thresholds{MinRate: 1e6}); err == nil ||
		!strings.Contains(err.Error(), "rate") {
		t.Fatalf("rate violation not reported: %v", err)
	}
	if err := rep.Check(Thresholds{MaxErrorRate: 0.001}); err == nil ||
		!strings.Contains(err.Error(), "error rate") {
		t.Fatalf("error-rate violation not reported: %v", err)
	}
	if err := rep.Check(Thresholds{}); err != nil {
		t.Fatalf("zero thresholds must disable every gate: %v", err)
	}
}
