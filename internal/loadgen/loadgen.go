// Package loadgen drives open-loop NDJSON ingest against a terids-serve
// instance with coordinated-omission-safe latency measurement.
//
// The scheduler derives every arrival's intended start time from the
// configured rate alone (phaseStart + i/rate) and workers record latency as
// completion − intended, never completion − send: when the server stalls,
// the arrivals queueing behind the stall keep their schedule-based
// timestamps, so the stall's full cost lands in the recorded distribution
// instead of being silently omitted (the classic coordinated-omission bug in
// closed-loop benchmarks).
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"terids/internal/obs"
)

// Arrival is one ingest line template. RIDs are suffixed with a global
// iteration counter at send time so repeated cycles stay unique.
type Arrival struct {
	RID    string
	Stream int
	Values []string
}

// Phase is one constant-rate segment of the schedule.
type Phase struct {
	Rate     float64       // arrivals per second
	Duration time.Duration // how long this segment runs
}

// Config parameterizes one load run.
type Config struct {
	BaseURL string
	Phases  []Phase
	Records []Arrival // cycled through; must be non-empty

	Workers int  // concurrent ingest connections (default 4)
	Batch   int  // arrivals per POST (default 32)
	Wait    bool // ?wait=1 blocking ingest instead of shedding 429s

	Followers   int           // concurrent live /results followers (read mix)
	ReplayEvery time.Duration // period between /results?from=0 deep-cursor reads (0 = off)
	// ReplicaURL, when set, aims the read mix (live followers and replay
	// reads) at a follower replica while ingest keeps hitting BaseURL —
	// the writer/replica split a scaled-out read path runs in production.
	ReplicaURL string

	Client *http.Client
	Logf   func(string, ...any)
}

// PhaseReport is one phase's slice of the run.
type PhaseReport struct {
	TargetRate   float64 `json:"target_rate"`
	DurationS    float64 `json:"duration_s"`
	Sent         int64   `json:"sent"`
	AchievedRate float64 `json:"achieved_rate"`
	P50NS        float64 `json:"p50_ns"`
	P99NS        float64 `json:"p99_ns"`
}

// Report is the run summary written to LOADGEN.json. Latency quantiles are
// coordinated-omission-safe: measured against each arrival's schedule-based
// intended start, not its actual send time.
type Report struct {
	TargetRate    float64       `json:"target_rate"`
	AchievedRate  float64       `json:"achieved_rate"`
	DurationS     float64       `json:"duration_s"`
	Sent          int64         `json:"sent"`
	Accepted      int64         `json:"accepted"`
	Errors        int64         `json:"errors"`
	Throttled429  int64         `json:"throttled_429"`
	P50NS         float64       `json:"p50_ns"`
	P95NS         float64       `json:"p95_ns"`
	P99NS         float64       `json:"p99_ns"`
	P999NS        float64       `json:"p999_ns"`
	FollowerLines int64         `json:"follower_lines"`
	ReplayReads   int64         `json:"deep_replay_reads"`
	Phases        []PhaseReport `json:"phases"`
}

// Thresholds gate a -check run; zero values disable the corresponding gate.
type Thresholds struct {
	MaxP99       time.Duration // recorded p99 must stay at or below
	MinRate      float64       // achieved accepted/sec must reach
	MaxErrorRate float64       // errors/sent must stay at or below
}

// Check returns an error naming every violated threshold.
func (r Report) Check(th Thresholds) error {
	var violations []string
	if th.MaxP99 > 0 && r.P99NS > float64(th.MaxP99) {
		violations = append(violations, fmt.Sprintf("p99 %.3fms exceeds %.3fms",
			r.P99NS/1e6, float64(th.MaxP99)/1e6))
	}
	if th.MinRate > 0 && r.AchievedRate < th.MinRate {
		violations = append(violations, fmt.Sprintf("achieved rate %.1f/s below %.1f/s",
			r.AchievedRate, th.MinRate))
	}
	if th.MaxErrorRate > 0 && r.Sent > 0 {
		if er := float64(r.Errors) / float64(r.Sent); er > th.MaxErrorRate {
			violations = append(violations, fmt.Sprintf("error rate %.4f exceeds %.4f",
				er, th.MaxErrorRate))
		}
	}
	if len(violations) > 0 {
		return errors.New("thresholds violated: " + strings.Join(violations, "; "))
	}
	return nil
}

// ParsePhases builds the schedule from either a single rate+duration or a
// stepped ramp spec "rate:duration,rate:duration,..." (e.g. "200:10s,400:20s").
func ParsePhases(rate float64, duration time.Duration, ramp string) ([]Phase, error) {
	if ramp == "" {
		if rate <= 0 || duration <= 0 {
			return nil, errors.New("loadgen: need -rate > 0 and -duration > 0 (or -ramp)")
		}
		return []Phase{{Rate: rate, Duration: duration}}, nil
	}
	var phases []Phase
	for _, step := range strings.Split(ramp, ",") {
		r, d, ok := strings.Cut(strings.TrimSpace(step), ":")
		if !ok {
			return nil, fmt.Errorf("loadgen: ramp step %q: want rate:duration", step)
		}
		rv, err := strconv.ParseFloat(r, 64)
		if err != nil || rv <= 0 {
			return nil, fmt.Errorf("loadgen: ramp step %q: bad rate %q", step, r)
		}
		dv, err := time.ParseDuration(d)
		if err != nil || dv <= 0 {
			return nil, fmt.Errorf("loadgen: ramp step %q: bad duration %q", step, d)
		}
		phases = append(phases, Phase{Rate: rv, Duration: dv})
	}
	return phases, nil
}

// job is one scheduled POST: the prebuilt NDJSON body plus each line's
// intended start timestamp.
type job struct {
	body     []byte
	intended []time.Time
	phase    int
}

// Run executes the schedule and returns the report. Cancelling ctx stops the
// run early; whatever was measured up to that point is still reported.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if len(cfg.Records) == 0 {
		return Report{}, errors.New("loadgen: no records to send")
	}
	if len(cfg.Phases) == 0 {
		return Report{}, errors.New("loadgen: no phases scheduled")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 32
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	reg := obs.NewRegistry()
	overall := reg.Histogram("loadgen_latency_seconds",
		"Coordinated-omission-safe ingest latency (completion minus intended start).", nil)
	phaseHists := make([]*obs.Histogram, len(cfg.Phases))
	for i := range cfg.Phases {
		phaseHists[i] = reg.Histogram("loadgen_phase_latency_seconds",
			"Per-phase CO-safe ingest latency.", obs.Labels{"phase": strconv.Itoa(i)})
	}

	var sent, accepted, errCount, throttled atomic.Int64
	var followerLines, replayReads atomic.Int64
	phaseSent := make([]atomic.Int64, len(cfg.Phases))

	ingestURL := cfg.BaseURL + "/ingest"
	if cfg.Wait {
		ingestURL += "?wait=1"
	}

	jobs := make(chan job, 1024)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				resp, err := client.Post(ingestURL, "application/x-ndjson", bytes.NewReader(j.body))
				completion := time.Now()
				n := int64(len(j.intended))
				sent.Add(n)
				phaseSent[j.phase].Add(n)
				if err != nil {
					errCount.Add(n)
				} else {
					var out struct {
						Accepted int64 `json:"accepted"`
					}
					_ = json.NewDecoder(resp.Body).Decode(&out)
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					accepted.Add(out.Accepted)
					switch {
					case resp.StatusCode == http.StatusTooManyRequests:
						throttled.Add(n - out.Accepted)
					case resp.StatusCode != http.StatusOK:
						errCount.Add(n - out.Accepted)
					}
				}
				// Every line is measured against its own schedule slot —
				// including lines the server shed or failed: the client paid
				// that time, so the distribution must contain it.
				for _, it := range j.intended {
					d := completion.Sub(it)
					overall.ObserveDuration(d)
					phaseHists[j.phase].ObserveDuration(d)
				}
			}
		}()
	}

	// Read mix: live followers tail /results for the whole run; the replay
	// reader periodically re-reads history from sequence zero, exercising the
	// ring (and deep replay on a durable server). With ReplicaURL the reads
	// go to the follower replica instead of the ingest target.
	readURL := cfg.BaseURL
	if cfg.ReplicaURL != "" {
		readURL = cfg.ReplicaURL
	}
	readCtx, stopReads := context.WithCancel(ctx)
	defer stopReads()
	var readWG sync.WaitGroup
	for f := 0; f < cfg.Followers; f++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			req, err := http.NewRequestWithContext(readCtx, "GET", readURL+"/results", nil)
			if err != nil {
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
			for sc.Scan() {
				followerLines.Add(1)
			}
		}()
	}
	if cfg.ReplayEvery > 0 {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			tick := time.NewTicker(cfg.ReplayEvery)
			defer tick.Stop()
			for {
				select {
				case <-readCtx.Done():
					return
				case <-tick.C:
				}
				// Bounded historical read: up to 500 lines from sequence 0,
				// then hang up — the point is to exercise the replay path,
				// not to keep a full follower open.
				func() {
					rctx, cancel := context.WithTimeout(readCtx, 10*time.Second)
					defer cancel()
					req, err := http.NewRequestWithContext(rctx, "GET", readURL+"/results?from=0", nil)
					if err != nil {
						return
					}
					resp, err := client.Do(req)
					if err != nil {
						return
					}
					defer resp.Body.Close()
					sc := bufio.NewScanner(resp.Body)
					sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
					for lines := 0; lines < 500 && sc.Scan(); lines++ {
					}
					replayReads.Add(1)
				}()
			}
		}()
	}

	// The open-loop scheduler: arrival i of a phase is due at
	// phaseStart + i/rate, computed from the schedule — never from observed
	// progress. The enqueue may lag when workers fall behind (the channel
	// fills), but the intended timestamps do not move, so that lag is
	// measured rather than omitted.
	start := time.Now()
	seq := int64(0)
	var body bytes.Buffer
sched:
	for pi, ph := range cfg.Phases {
		phaseStart := time.Now()
		interval := time.Duration(float64(time.Second) / ph.Rate)
		total := int(ph.Rate * ph.Duration.Seconds())
		logf("phase %d: %d arrivals at %.1f/s over %s", pi, total, ph.Rate, ph.Duration)
		for i := 0; i < total; {
			n := batch
			if rem := total - i; rem < n {
				n = rem
			}
			body.Reset()
			intended := make([]time.Time, 0, n)
			for k := 0; k < n; k++ {
				rec := cfg.Records[int(seq)%len(cfg.Records)]
				line, err := json.Marshal(map[string]any{
					"rid":    fmt.Sprintf("%s~%d", rec.RID, seq),
					"stream": rec.Stream,
					"values": rec.Values,
				})
				if err != nil {
					return Report{}, err
				}
				body.Write(line)
				body.WriteByte('\n')
				intended = append(intended, phaseStart.Add(time.Duration(i+k)*interval))
				seq++
			}
			// A batch departs at its last member's slot: no line is sent
			// ahead of schedule, and the earlier members' in-batch wait is
			// charged to their own latency.
			due := intended[len(intended)-1]
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					break sched
				}
			}
			j := job{body: bytes.Clone(body.Bytes()), intended: intended, phase: pi}
			select {
			case jobs <- j:
			case <-ctx.Done():
				break sched
			}
			i += n
		}
	}
	close(jobs)
	wg.Wait()
	stopReads()
	readWG.Wait()
	elapsed := time.Since(start)

	rep := Report{
		AchievedRate:  float64(accepted.Load()) / elapsed.Seconds(),
		DurationS:     elapsed.Seconds(),
		Sent:          sent.Load(),
		Accepted:      accepted.Load(),
		Errors:        errCount.Load(),
		Throttled429:  throttled.Load(),
		P50NS:         overall.Quantile(0.5),
		P95NS:         overall.Quantile(0.95),
		P99NS:         overall.Quantile(0.99),
		P999NS:        overall.Quantile(0.999),
		FollowerLines: followerLines.Load(),
		ReplayReads:   replayReads.Load(),
	}
	var weighted, schedSecs float64
	for pi, ph := range cfg.Phases {
		weighted += ph.Rate * ph.Duration.Seconds()
		schedSecs += ph.Duration.Seconds()
		pSent := phaseSent[pi].Load()
		pr := PhaseReport{
			TargetRate: ph.Rate,
			DurationS:  ph.Duration.Seconds(),
			Sent:       pSent,
			P50NS:      phaseHists[pi].Quantile(0.5),
			P99NS:      phaseHists[pi].Quantile(0.99),
		}
		if ph.Duration > 0 {
			pr.AchievedRate = float64(pSent) / ph.Duration.Seconds()
		}
		rep.Phases = append(rep.Phases, pr)
	}
	if schedSecs > 0 {
		rep.TargetRate = weighted / schedSecs
	}
	return rep, ctx.Err()
}
