package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Poolown enforces the single-recycling-owner discipline for pooled
// buffers: once a value is handed back with put/Put on a //terids:pool
// type (or a sync.Pool), the putter no longer owns it. Any later use of
// that variable — reading a field, sending it on a channel, storing it
// anywhere, or putting it a second time — is a finding, because the pool
// may have already recycled the buffer into another goroutine's hands.
//
// Tracking is per function and flow-insensitive across branches in the
// conservative direction: a branch's retirements survive the join (if any
// path put the buffer, later use is suspect), while reassigning the
// variable to a fresh value clears its taint. Closures and goroutine
// bodies are analyzed as their own scopes.
var Poolown = &Analyzer{
	Name: "poolown",
	Doc:  "no use-after-put, double-put, or ownership escape of pooled buffers",
	Run:  runPoolown,
}

type poolownPass struct {
	pass *Pass
	// poolTypes holds the //terids:pool-annotated type objects; generic
	// pools match through their origin.
	poolTypes map[*types.TypeName]bool
}

func runPoolown(pass *Pass) error {
	po := &poolownPass{pass: pass, poolTypes: map[*types.TypeName]bool{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if hasDirective(gd.Doc, "pool") || hasDirective(ts.Doc, "pool") || hasDirective(ts.Comment, "pool") {
					if tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
						po.poolTypes[tn] = true
					}
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					po.analyze(n.Body.List, retiredSet{})
				}
				return false
			case *ast.FuncLit:
				po.analyze(n.Body.List, retiredSet{})
				return false
			}
			return true
		})
	}
	return nil
}

// retiredSet maps a variable to the position of the put that retired it.
type retiredSet map[*types.Var]token.Pos

func (r retiredSet) clone() retiredSet {
	out := make(retiredSet, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// analyze walks a statement list, mutating retired in place; branch bodies
// run against a clone whose final retirements are merged back (union).
func (po *poolownPass) analyze(stmts []ast.Stmt, retired retiredSet) {
	for _, s := range stmts {
		po.stmt(s, retired)
	}
}

func (po *poolownPass) branch(stmts []ast.Stmt, retired retiredSet) {
	inner := retired.clone()
	po.analyze(stmts, inner)
	// A branch that cannot fall through — the error-path `put(b); return err`
	// idiom — never reaches the join, so its retirements stay local.
	if terminates(stmts) {
		return
	}
	for v, pos := range inner {
		if _, ok := retired[v]; !ok {
			retired[v] = pos
		}
	}
}

// terminates reports whether control cannot fall off the end of the
// statement list: it ends in return, break/continue/goto, or panic.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.LabeledStmt:
		return terminates([]ast.Stmt{s.Stmt})
	}
	return false
}

func (po *poolownPass) stmt(s ast.Stmt, retired retiredSet) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		po.expr(s.X, retired)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			po.expr(e, retired)
		}
		for _, e := range s.Lhs {
			// Reassignment hands the variable a fresh value: the old
			// taint no longer applies to it.
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if v := po.varOf(id); v != nil {
					delete(retired, v)
					continue
				}
			}
			po.expr(e, retired)
		}
	case *ast.SendStmt:
		po.exprContext(s.Value, retired, "sent on a channel")
		po.expr(s.Chan, retired)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			po.exprContext(e, retired, "returned")
		}
	case *ast.IfStmt:
		if s.Init != nil {
			po.stmt(s.Init, retired)
		}
		po.expr(s.Cond, retired)
		po.branch(s.Body.List, retired)
		if s.Else != nil {
			po.branch([]ast.Stmt{s.Else}, retired)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			po.stmt(s.Init, retired)
		}
		if s.Cond != nil {
			po.expr(s.Cond, retired)
		}
		po.branch(s.Body.List, retired)
	case *ast.RangeStmt:
		po.expr(s.X, retired)
		po.branch(s.Body.List, retired)
	case *ast.SwitchStmt:
		if s.Init != nil {
			po.stmt(s.Init, retired)
		}
		if s.Tag != nil {
			po.expr(s.Tag, retired)
		}
		for _, c := range s.Body.List {
			po.branch(c.(*ast.CaseClause).Body, retired)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			po.branch(c.(*ast.CaseClause).Body, retired)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				po.branch([]ast.Stmt{cc.Comm}, retired)
			}
			po.branch(cc.Body, retired)
		}
	case *ast.BlockStmt:
		po.analyze(s.List, retired)
	case *ast.LabeledStmt:
		po.stmt(s.Stmt, retired)
	case *ast.DeferStmt:
		po.expr(s.Call, retired)
	case *ast.GoStmt:
		po.expr(s.Call, retired)
	case *ast.IncDecStmt:
		po.expr(s.X, retired)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						po.expr(v, retired)
					}
				}
			}
		}
	}
}

// expr scans an expression: put calls retire their argument, any other
// appearance of a retired variable is a finding.
func (po *poolownPass) expr(e ast.Expr, retired retiredSet) {
	po.exprContext(e, retired, "used")
}

func (po *poolownPass) exprContext(e ast.Expr, retired retiredSet, how string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closure bodies were analyzed as their own scope at the top
			// level; variables retired here may be revived before the
			// closure runs, so the taint does not flow in.
			return false
		case *ast.CallExpr:
			if arg, ok := po.putCall(n); ok {
				// The put's receiver and non-tracked arguments still count
				// as uses; the retired argument itself is the hand-off.
				po.exprContext(n.Fun, retired, how)
				for _, a := range n.Args {
					if a == arg {
						continue
					}
					po.exprContext(a, retired, how)
				}
				if arg != nil {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if v := po.varOf(id); v != nil {
							if prev, dup := retired[v]; dup {
								po.pass.Reportf(n.Pos(), "double put of pooled %s (already put at %s)",
									v.Name(), po.pass.Fset.Position(prev))
							} else {
								retired[v] = n.Pos()
							}
							return false
						}
					}
					// A non-identifier argument (field, index) can't be
					// tracked; scan it as a plain use.
					po.exprContext(arg, retired, how)
				}
				return false
			}
		case *ast.Ident:
			if v := po.varOf(n); v != nil {
				if putPos, ok := retired[v]; ok {
					po.pass.Reportf(n.Pos(), "pooled %s %s after put (put at %s): the pool may have recycled it",
						v.Name(), how, po.pass.Fset.Position(putPos))
				}
			}
		}
		return true
	})
}

// putCall recognizes pool.put(v) / pool.Put(v) on a //terids:pool type or
// sync.Pool and returns the recycled argument.
func (po *poolownPass) putCall(call *ast.CallExpr) (arg ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false
	}
	if sel.Sel.Name != "put" && sel.Sel.Name != "Put" {
		return nil, false
	}
	fn, _ := po.pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return nil, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil, false
	}
	tn := namedOrigin(sig.Recv().Type())
	if tn == nil {
		return nil, false
	}
	if !po.poolTypes[tn] && !(tn.Pkg() != nil && tn.Pkg().Path() == "sync" && tn.Name() == "Pool") {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, true
	}
	return call.Args[0], true
}

func (po *poolownPass) varOf(id *ast.Ident) *types.Var {
	obj := po.pass.Info.Uses[id]
	if obj == nil {
		obj = po.pass.Info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	if v == nil || v.IsField() {
		return nil
	}
	return v
}
