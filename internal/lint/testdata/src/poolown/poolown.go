// Package poolown is the fixture for the poolown analyzer.
package poolown

import "sync"

type buf struct {
	b []byte
}

// itemPool recycles bufs with a single-owner hand-off discipline.
//
//terids:pool
type itemPool struct {
	free []*buf
}

func (p *itemPool) get() *buf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &buf{}
}

func (p *itemPool) put(b *buf) {
	p.free = append(p.free, b)
}

// plainPool has the same shape but no annotation: its puts are untracked.
type plainPool struct {
	free []*buf
}

func (p *plainPool) put(b *buf) { p.free = append(p.free, b) }

var sink *buf
var ch = make(chan *buf)

// useAfterPut reads a buffer the pool may already have recycled.
func useAfterPut(p *itemPool) int {
	b := p.get()
	p.put(b)
	return len(b.b) // want "pooled b returned after put"
}

// doublePut returns the same buffer twice.
func doublePut(p *itemPool) {
	b := p.get()
	p.put(b)
	p.put(b) // want "double put of pooled b"
}

// sendAfterPut leaks the retired buffer to another goroutine.
func sendAfterPut(p *itemPool) {
	b := p.get()
	p.put(b)
	ch <- b // want "pooled b sent on a channel after put"
}

// storeAfterPut escapes the single recycling owner through a global.
func storeAfterPut(p *itemPool) {
	b := p.get()
	p.put(b)
	sink = b // want "pooled b used after put"
}

// returnAfterPut hands the caller a buffer it no longer owns.
func returnAfterPut(p *itemPool) *buf {
	b := p.get()
	p.put(b)
	return b // want "pooled b returned after put"
}

// branchPut retires on one path only; the join is still tainted.
func branchPut(p *itemPool, done bool) int {
	b := p.get()
	if done {
		p.put(b)
	}
	return len(b.b) // want "pooled b returned after put"
}

// putOnErrorPath retires the buffer only on the terminating error path —
// the engine's `put(b); return err` idiom — so the join stays clean.
func putOnErrorPath(p *itemPool, fail bool) *buf {
	b := p.get()
	if fail {
		p.put(b)
		return nil
	}
	return b
}

// putThenReacquire is the legitimate shape: reassignment revives the name.
func putThenReacquire(p *itemPool) int {
	b := p.get()
	p.put(b)
	b = p.get()
	n := len(b.b)
	p.put(b)
	return n
}

// useBeforePut is the normal lifecycle.
func useBeforePut(p *itemPool) int {
	b := p.get()
	n := len(b.b)
	p.put(b)
	return n
}

// unannotatedPool puts are not tracked at all.
func unannotatedPool(p *plainPool) int {
	b := &buf{}
	p.put(b)
	return len(b.b)
}

// syncPoolDouble shows sync.Pool is covered without annotation.
func syncPoolDouble(p *sync.Pool) {
	b := p.Get()
	p.Put(b)
	p.Put(b) // want "double put of pooled b"
}

// ignoredUse demonstrates the waiver convention.
func ignoredUse(p *itemPool) int {
	b := p.get()
	p.put(b)
	//lint:ignore poolown the pool is single-threaded in this test helper
	return len(b.b)
}
