// Package hotalloc is the fixture for the hotalloc analyzer.
package hotalloc

import (
	"errors"
	"fmt"
	"strconv"
)

var errBad = errors.New("bad")

// sprintfHot formats on the hot path.
//
//terids:hotpath
func sprintfHot(n int) string {
	return fmt.Sprintf("n=%d", n) // want "fmt.Sprintf allocates"
}

// mapAlloc builds a throwaway map per call.
//
//terids:hotpath
func mapAlloc(keys []string) int {
	seen := make(map[string]bool, len(keys)) // want "map allocation"
	for _, k := range keys {
		seen[k] = true
	}
	return len(seen)
}

// mapLiteral is the composite-literal spelling of the same mistake.
//
//terids:hotpath
func mapLiteral(k string) int {
	m := map[string]int{k: 1} // want "map literal allocation"
	return m[k]
}

// concatLoop grows a string quadratically.
//
//terids:hotpath
func concatLoop(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p // want "string concatenation inside a loop"
	}
	return out
}

// closureLoop allocates a closure per element.
//
//terids:hotpath
func closureLoop(ns []int, apply func(func() int)) {
	for _, n := range ns {
		apply(func() int { return n }) // want "closure allocated inside a loop"
	}
}

// boxLoop boxes an int into an interface per element.
//
//terids:hotpath
func boxLoop(ns []int) []any {
	var out []any
	for _, n := range ns {
		out = append(out, any(n)) // want "interface boxing"
	}
	return out
}

// errorPath may use fmt.Errorf: an error return is already the cold path.
//
//terids:hotpath
func errorPath(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d: %w", n, errBad)
	}
	return nil
}

// concatOnce outside a loop is a single allocation, not a per-element one.
//
//terids:hotpath
func concatOnce(a, b string) string {
	return a + b
}

// closureOnce outside a loop is a single allocation the compiler can often
// keep on the stack.
//
//terids:hotpath
func closureOnce(n int) func() int {
	return func() int { return n }
}

// appendLoop is the approved zero-alloc shape.
//
//terids:hotpath
func appendLoop(dst []byte, ns []int) []byte {
	for _, n := range ns {
		dst = strconv.AppendInt(dst, int64(n), 10)
	}
	return dst
}

// coldSprintf is not annotated; it may allocate freely.
func coldSprintf(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// ignoredAlloc demonstrates the waiver convention.
//
//terids:hotpath
func ignoredAlloc(keys []string) map[string]bool {
	//lint:ignore hotalloc one-time warmup table built before steady state
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		seen[k] = true
	}
	return seen
}
