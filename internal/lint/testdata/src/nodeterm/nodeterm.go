// Package nodeterm is the fixture for the nodeterm analyzer.
package nodeterm

import (
	"math/rand"
	"sort"
	"time"
)

type result struct {
	seq  int64
	prob float64
}

// replayMerge is a deterministic root: it must emit byte-identical results
// on every run.
//
//terids:deterministic
func replayMerge(rs []result) []result {
	now := time.Now() // want "time.Now in deterministic replay path replayMerge"
	_ = now
	out := make([]result, 0, len(rs))
	out = append(out, rs...)
	jitter(out)
	return out
}

// jitter is unannotated but reached from replayMerge: the closure is
// transitive.
func jitter(rs []result) {
	for i := range rs {
		rs[i].prob += rand.Float64() // want "rand.Float64 in deterministic replay path jitter \\(reached from //terids:deterministic replayMerge\\)"
	}
}

// mapOrder leaks iteration order straight into the output.
//
//terids:deterministic
func mapOrder(m map[int64]float64) []result {
	var out []result
	for seq, p := range m { // want "map iteration order leaks into deterministic replay path mapOrder"
		out = append(out, result{seq: seq, prob: p})
	}
	return out
}

// sortedMapOrder ranges a map but sorts before anything observable — the
// waiver records why that is safe.
//
//terids:deterministic
func sortedMapOrder(m map[int64]float64) []result {
	out := make([]result, 0, len(m))
	//lint:ignore nodeterm iteration order erased by the sort below
	for seq, p := range m {
		out = append(out, result{seq: seq, prob: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// wallClockFree is the approved shape: logical sequence only.
//
//terids:deterministic
func wallClockFree(rs []result) int64 {
	var max int64
	for _, r := range rs {
		if r.seq > max {
			max = r.seq
		}
	}
	return max
}

// coldTimer is not annotated and not reachable from a root: wall clocks
// are fine here.
func coldTimer() time.Time {
	return time.Now()
}
