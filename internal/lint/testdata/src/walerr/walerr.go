// Package walerr is the fixture for the walerr analyzer.
//
//terids:strict-errors
package walerr

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

// dropClose silently discards the error that reports a failed flush.
func dropClose(f *os.File) {
	f.Close() // want "error result of os.File.Close discarded"
}

// dropDeferClose is the same bug spelled with defer.
func dropDeferClose(f *os.File) {
	defer f.Close() // want "error result of os.File.Close discarded by defer"
	_ = f
}

// dropGoRemove launches the discard onto another goroutine.
func dropGoRemove(path string) {
	go os.Remove(path) // want "error result of os.Remove discarded by go statement"
}

// dropSync discards the one error fsync exists to report.
func dropSync(f *os.File) {
	f.Sync() // want "error result of os.File.Sync discarded"
}

// waived is the explicit, greppable discard: the close error is already
// superseded by the error being returned.
func waived(f *os.File) {
	_ = f.Close()
}

// handled is the normal shape.
func handled(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// bufferWrites are exempt: bytes.Buffer and strings.Builder document their
// errors as always nil.
func bufferWrites(buf *bytes.Buffer, sb *strings.Builder) {
	buf.WriteString("header")
	buf.WriteByte(0x1)
	sb.WriteString("trailer")
	fmt.Fprintf(buf, "seq=%d", 7)
}

// noError calls need no handling.
func noError(buf *bytes.Buffer) int {
	buf.Reset()
	return buf.Len()
}

// ignored demonstrates the waiver convention for read-only paths.
func ignored(f *os.File) {
	//lint:ignore walerr read-only descriptor, close cannot lose data
	f.Close()
}
