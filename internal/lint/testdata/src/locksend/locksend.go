// Package locksend is the fixture for the locksend analyzer.
package locksend

import (
	"os"
	"sync"
	"time"
)

type engine struct {
	// subMu serializes sequence assignment.
	//terids:nosend
	subMu sync.Mutex

	// plain is not annotated: sends under it are somebody else's problem.
	plain sync.Mutex

	ch     chan int
	onDone func()
	wg     sync.WaitGroup
}

// sendUnderLock is the PR 7 bug class verbatim.
func (e *engine) sendUnderLock() {
	e.subMu.Lock()
	e.ch <- 1 // want "channel send while holding subMu"
	e.subMu.Unlock()
}

// sendAfterUnlock is the fixed shape: the send happens outside the region.
func (e *engine) sendAfterUnlock() {
	e.subMu.Lock()
	e.subMu.Unlock()
	e.ch <- 1
}

// earlyUnlockBranch models unlock-and-return: the fall-through path still
// holds the lock, the branch does not.
func (e *engine) earlyUnlockBranch(fail bool) {
	e.subMu.Lock()
	if fail {
		e.subMu.Unlock()
		return
	}
	e.ch <- 1 // want "channel send while holding subMu"
	e.subMu.Unlock()
}

// deferredUnlock holds to the end of the function.
func (e *engine) deferredUnlock() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	e.ch <- 1 // want "channel send while holding subMu"
}

// blockingSyscall performs filesystem work under the lock.
func (e *engine) blockingSyscall(path string) {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	os.Remove(path) // want "blocking syscall os.Remove while holding subMu"
}

// callback invokes a func value whose body the holder cannot see.
func (e *engine) callback() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	e.onDone() // want "callback invocation .* while holding subMu"
}

// sleeper blocks a helper deep; transitive summaries catch it.
func (e *engine) sleeper() {
	time.Sleep(time.Millisecond)
}

func (e *engine) viaHelper() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	e.sleeper() // want "call to sleeper"
}

// annotatedBlocker is declared blocking even though its body looks inert.
//
//terids:blocks
func (e *engine) annotatedBlocker() {}

func (e *engine) viaAnnotated() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	e.annotatedBlocker() // want "annotated //terids:blocks"
}

// selectNoDefault still blocks: every clause parks the goroutine.
func (e *engine) selectNoDefault() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	select {
	case e.ch <- 1: // want "channel send \\(select\\) while holding subMu"
	case <-e.ch: // want "channel receive \\(select\\) while holding subMu"
	}
}

// selectWithDefault never blocks — the non-blocking attempt idiom is fine.
func (e *engine) selectWithDefault() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	select {
	case e.ch <- 1:
	default:
	}
}

// plainMutex is not annotated: no findings under it.
func (e *engine) plainMutex() {
	e.plain.Lock()
	defer e.plain.Unlock()
	e.ch <- 1
}

// waitGroupWait is deliberately permitted: the engine parks on quiescence
// under subMu by design.
func (e *engine) waitGroupWait() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	e.wg.Wait()
}

// closureDefinition only defines the closure; nothing runs under the lock.
func (e *engine) closureDefinition() func() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	return func() { e.ch <- 1 }
}

// goroutineBody escapes the region: the spawned goroutine does not hold
// the lock.
func (e *engine) goroutineBody() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	go func() { e.ch <- 1 }()
}

// ignored demonstrates the waiver convention.
func (e *engine) ignored() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	//lint:ignore locksend the channel is buffered and drained by this goroutine
	e.ch <- 1
}
