// Package lint is the project's static-analysis suite: five analyzers that
// mechanically enforce the invariants the engine's correctness rests on —
// no blocking work under the submission or WAL-append locks (locksend), the
// single-recycling-owner pool discipline (poolown), the zero-alloc hot path
// (hotalloc), no silently dropped errors in the durability formats (walerr),
// and no nondeterminism in the paths that must replay byte-identically
// (nodeterm).
//
// The framework mirrors golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic — but is built on the standard library alone (go/parser,
// go/types, and export data resolved through `go list -export`), so the
// suite builds and runs offline with zero module dependencies. If x/tools
// ever lands in the build environment, each analyzer's Run is shaped to port
// mechanically.
//
// Analyzers are wired to the source by comment directives rather than
// hard-coded symbol paths, which keeps them testable against small fixture
// packages and keeps the annotated source self-documenting:
//
//	//terids:nosend        on a mutex field: no channel sends, blocking
//	                       syscalls, or callback invocations while held
//	//terids:pool          on a pool type: get/put obey single-owner recycling
//	//terids:hotpath       on a function: no fmt.Sprint*, no map allocation,
//	                       and inside loops no string concatenation, closure
//	                       creation, or interface boxing
//	//terids:strict-errors in a package doc: no discarded error results
//	//terids:deterministic on a function: no time.Now / math/rand /
//	                       map-iteration-order dependence, transitively
//	                       through same-package callees
//	//terids:blocks        on a function: treat as blocking under locksend
//
// A false positive is suppressed with a reason, on or immediately above the
// offending line:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is the one-line description `terids-lint -list` prints.
	Doc string
	// Run reports the analyzer's findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Analyzers is the suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Locksend, Poolown, Hotalloc, Walerr, Nodeterm}
}

// RunOnPackage runs one analyzer over one package and returns its findings
// with //lint:ignore suppressions already applied, sorted by position.
func RunOnPackage(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	ig := buildIgnoreIndex(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		if !ig.suppressed(fset, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// --- comment directives ---

const directivePrefix = "//terids:"

// hasDirective reports whether the comment group carries the named
// //terids: directive.
func hasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	want := directivePrefix + name
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == want {
			return true
		}
	}
	return false
}

// funcHasDirective reports whether the function's doc comment carries the
// directive.
func funcHasDirective(fd *ast.FuncDecl, name string) bool {
	return hasDirective(fd.Doc, name)
}

// packageHasDirective reports whether any file's package doc block carries
// the directive (the whole package opts in).
func packageHasDirective(files []*ast.File, name string) bool {
	for _, f := range files {
		if hasDirective(f.Doc, name) {
			return true
		}
		// Directives may sit in a comment block above the doc comment
		// (separated by a blank line from the package clause).
		for _, cg := range f.Comments {
			if cg.End() < f.Package && hasDirective(cg, name) {
				return true
			}
		}
	}
	return false
}

// --- //lint:ignore suppression ---

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+(.+)$`)

// ignoreIndex maps file → line → analyzer names waived on that line.
type ignoreIndex map[string]map[int][]string

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	ig := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				names := strings.Split(m[1], ",")
				lines := ig[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					ig[pos.Filename] = lines
				}
				// The directive waives its own line (trailing comment) and
				// the next line (comment above the statement).
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
	return ig
}

func (ig ignoreIndex) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, name := range ig[pos.Filename][pos.Line] {
		if name == d.Analyzer || name == "all" {
			return true
		}
	}
	return false
}

// --- shared type helpers ---

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// through a pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// namedOrigin unwraps pointers and generic instantiations down to the
// defining type object, or nil for unnamed types.
func namedOrigin(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return n.Origin().Obj()
}

// calleeFunc resolves a call to its statically known *types.Func (a declared
// function or method), or nil for dynamic calls through func values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// isBuiltinCall reports whether the call invokes a builtin (len, close, ...).
func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// stdFunc reports whether fn is the named package-level function of the
// given standard-library package path.
func stdFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// methodOn reports whether fn is a method named name whose receiver's
// defining type is pkgPath.typeName.
func methodOn(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	tn := namedOrigin(sig.Recv().Type())
	return tn != nil && tn.Pkg() != nil && tn.Pkg().Path() == pkgPath && tn.Name() == typeName
}
