package lint

import (
	"go/ast"
	"go/types"
)

// Walerr forbids silently discarded error results in packages whose doc
// block carries //terids:strict-errors — the WAL and snapshot codecs, where
// a dropped CRC or I/O error is indistinguishable from corruption. A call
// whose result tuple contains an error must not appear as a bare statement,
// a defer, or a go statement.
//
// An explicit waiver is still possible — and greppable — by assigning the
// result away (`_ = f.Close()`), which is the convention for close-on-error
// paths where the original error is already being returned. Methods on
// bytes.Buffer and strings.Builder are exempt (their Write errors are
// documented to always be nil), as are the fmt.Fprint* helpers when their
// writer is one of those types.
var Walerr = &Analyzer{
	Name: "walerr",
	Doc:  "no discarded error results in //terids:strict-errors packages",
	Run:  runWalerr,
}

func runWalerr(pass *Pass) error {
	if !packageHasDirective(pass.Files, "strict-errors") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
				how = "discarded"
			case *ast.DeferStmt:
				call = n.Call
				how = "discarded by defer"
			case *ast.GoStmt:
				call = n.Call
				how = "discarded by go statement"
			default:
				return true
			}
			if call == nil {
				return true
			}
			if fn := walerrCallee(pass, call); fn != "" {
				pass.Reportf(call.Pos(), "error result of %s %s; handle it or waive explicitly with `_ =`", fn, how)
			}
			return true
		})
	}
	return nil
}

// walerrCallee returns a display name when the call returns an error that
// the caller is dropping, or "" when the call is clean or exempt.
func walerrCallee(pass *Pass, call *ast.CallExpr) string {
	info := pass.Info
	if isConversion(info, call) || isBuiltinCall(info, call) {
		return ""
	}
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil || !tupleHasError(tv.Type) {
		return ""
	}
	fn := calleeFunc(info, call)
	if fn != nil {
		// bytes.Buffer and strings.Builder document their errors as
		// always nil; checking them is noise.
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if tn := namedOrigin(sig.Recv().Type()); tn != nil && tn.Pkg() != nil {
				p := tn.Pkg().Path()
				if (p == "bytes" && tn.Name() == "Buffer") || (p == "strings" && tn.Name() == "Builder") {
					return ""
				}
			}
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && len(call.Args) > 0 {
			switch fn.Name() {
			case "Fprint", "Fprintf", "Fprintln":
				if wtv, ok := info.Types[call.Args[0]]; ok {
					if tn := namedOrigin(wtv.Type); tn != nil && tn.Pkg() != nil {
						p := tn.Pkg().Path()
						if (p == "bytes" && tn.Name() == "Buffer") || (p == "strings" && tn.Name() == "Builder") {
							return ""
						}
					}
				}
			}
		}
		name := fn.Name()
		if sig != nil && sig.Recv() != nil {
			if tn := namedOrigin(sig.Recv().Type()); tn != nil {
				name = tn.Name() + "." + name
			}
		}
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			name = fn.Pkg().Name() + "." + name
		}
		return name
	}
	return "call"
}

// tupleHasError reports whether a call's result type includes error.
func tupleHasError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}
