package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc keeps //terids:hotpath functions allocation-free in steady
// state. Inside an annotated function it flags fmt.Sprint/Sprintf/Sprintln
// and map allocations (make(map...) or a map composite literal) anywhere —
// both allocate on every call — and, inside loops, string concatenation,
// closure creation, and explicit conversions of non-interface values to
// interface types (boxing). Error paths may still use fmt.Errorf: an error
// return is already the cold path, and the allocation happens only when
// something has gone wrong.
//
// Only directly annotated functions are checked — the annotation is the
// contract, and transitive inference would make adding a helper call a
// spooky-action lint failure two files away. Closures declared inside a hot
// function are scanned as part of its body (they run on the hot path when
// invoked).
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//terids:hotpath functions must not allocate: no Sprintf, maps, or in-loop concat/closures/boxing",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasDirective(fd, "hotpath") {
				continue
			}
			hotallocScan(pass, fd.Body, 0)
		}
	}
	return nil
}

func hotallocScan(pass *Pass, n ast.Node, loopDepth int) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Init != nil {
				hotallocScan(pass, n.Init, loopDepth)
			}
			if n.Cond != nil {
				hotallocScan(pass, n.Cond, loopDepth)
			}
			if n.Post != nil {
				hotallocScan(pass, n.Post, loopDepth+1)
			}
			hotallocScan(pass, n.Body, loopDepth+1)
			return false
		case *ast.RangeStmt:
			hotallocScan(pass, n.X, loopDepth)
			hotallocScan(pass, n.Body, loopDepth+1)
			return false
		case *ast.FuncLit:
			if loopDepth > 0 {
				pass.Reportf(n.Pos(), "closure allocated inside a loop on a //terids:hotpath function")
			}
			// The closure body runs on the hot path when invoked; its own
			// loops start a fresh depth.
			hotallocScan(pass, n.Body, 0)
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n); fn != nil {
				switch {
				case stdFunc(fn, "fmt", "Sprint"), stdFunc(fn, "fmt", "Sprintf"), stdFunc(fn, "fmt", "Sprintln"):
					pass.Reportf(n.Pos(), "fmt.%s allocates on a //terids:hotpath function", fn.Name())
				}
			}
			if isBuiltinCall(pass.Info, n) {
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if tv, ok := pass.Info.Types[n.Args[0]]; ok && isMapType(tv.Type) {
						pass.Reportf(n.Pos(), "map allocation on a //terids:hotpath function")
					}
				}
			}
			if loopDepth > 0 && isConversion(pass.Info, n) && len(n.Args) == 1 {
				to := pass.Info.Types[n.Fun].Type
				from := pass.Info.Types[n.Args[0]].Type
				if to != nil && from != nil && types.IsInterface(to) && !types.IsInterface(from) {
					pass.Reportf(n.Pos(), "interface boxing (%s) inside a loop on a //terids:hotpath function", types.TypeString(to, types.RelativeTo(pass.Pkg)))
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok && isMapType(tv.Type) {
				pass.Reportf(n.Pos(), "map literal allocation on a //terids:hotpath function")
			}
		case *ast.BinaryExpr:
			if loopDepth > 0 && n.Op == token.ADD && isStringExpr(pass.Info, n.X) {
				pass.Reportf(n.OpPos, "string concatenation inside a loop on a //terids:hotpath function")
			}
		case *ast.AssignStmt:
			if loopDepth > 0 && n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass.Info, n.Lhs[0]) {
				pass.Reportf(n.TokPos, "string concatenation inside a loop on a //terids:hotpath function")
			}
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
