package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Locksend flags blocking work performed while holding a mutex whose
// declaration is annotated //terids:nosend — the PR 7 stall class, where a
// channel send under Engine.subMu deadlocked submission against a full
// pipeline. While such a mutex is held, the analyzer rejects channel sends
// and receives (outside a select with a default clause), calls to known
// blocking standard-library functions (time.Sleep, os.Remove and friends,
// os.File I/O and fsync), invocations of func-typed values (callbacks whose
// body the holder cannot see), and calls to same-package functions that
// transitively do any of the above or are annotated //terids:blocks.
//
// Lock regions are tracked linearly per function: branches are analyzed
// against a copy of the held set, `defer mu.Unlock()` keeps the mutex held
// to the end of the function, and goroutine bodies and closures are excluded
// (they run outside the region unless invoked, and a direct invocation of a
// func value is itself flagged). Same-package summaries include deferred
// calls — a helper's defers run at its own return, inside the caller's lock
// region — but not dynamic calls, which are only flagged when they appear
// directly in a lock region. sync.Cond.Wait and sync.WaitGroup.Wait are
// deliberately permitted: the engine parks on both under subMu by design
// (checkpoint drains, rebalance quiescence), with the condition's waker not
// requiring the lock.
var Locksend = &Analyzer{
	Name: "locksend",
	Doc:  "no channel sends, blocking syscalls, or callbacks while holding a //terids:nosend mutex",
	Run:  runLocksend,
}

// lsBad describes the first blocking operation found in a function, for
// transitive reporting.
type lsBad struct {
	pos  token.Pos
	what string
}

type locksendPass struct {
	pass *Pass
	// annotated holds the field/var objects declared with //terids:nosend.
	annotated map[types.Object]bool
	// decls maps same-package function objects to their declarations.
	decls map[*types.Func]*ast.FuncDecl
	// summary records which same-package functions may block; nil value
	// means analyzed and clean.
	summary map[*types.Func]*lsBad
}

func runLocksend(pass *Pass) error {
	ls := &locksendPass{
		pass:      pass,
		annotated: map[types.Object]bool{},
		decls:     map[*types.Func]*ast.FuncDecl{},
		summary:   map[*types.Func]*lsBad{},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				if hasDirective(n.Doc, "nosend") || hasDirective(n.Comment, "nosend") {
					for _, name := range n.Names {
						if obj := pass.Info.Defs[name]; obj != nil && isMutexType(obj.Type()) {
							ls.annotated[obj] = true
						}
					}
				}
			case *ast.ValueSpec:
				if hasDirective(n.Doc, "nosend") || hasDirective(n.Comment, "nosend") {
					for _, name := range n.Names {
						if obj := pass.Info.Defs[name]; obj != nil && isMutexType(obj.Type()) {
							ls.annotated[obj] = true
						}
					}
				}
			case *ast.FuncDecl:
				if fn, ok := pass.Info.Defs[n.Name].(*types.Func); ok {
					ls.decls[fn] = n
				}
			}
			return true
		})
	}
	if len(ls.annotated) == 0 {
		return nil
	}
	ls.summarize()
	for _, decl := range ls.decls {
		if decl.Body != nil {
			ls.region(decl.Body.List, map[types.Object]bool{})
		}
	}
	return nil
}

// summarize computes the may-block summary for every same-package function
// by fixpoint over the static call graph.
func (ls *locksendPass) summarize() {
	// Direct facts first: own annotation, sends, blocking std calls.
	for fn, decl := range ls.decls {
		if funcHasDirective(decl, "blocks") {
			ls.summary[fn] = &lsBad{pos: decl.Pos(), what: "annotated //terids:blocks"}
			continue
		}
		ls.summary[fn] = ls.directBad(decl)
	}
	// Propagate through same-package static calls until stable.
	for changed := true; changed; {
		changed = false
		for fn, decl := range ls.decls {
			if ls.summary[fn] != nil || decl.Body == nil {
				continue
			}
			ls.eachCall(decl.Body, func(call *ast.CallExpr) {
				if ls.summary[fn] != nil {
					return
				}
				callee := calleeFunc(ls.pass.Info, call)
				if callee == nil {
					return
				}
				if bad := ls.summary[callee.Origin()]; bad != nil {
					ls.summary[fn] = &lsBad{pos: call.Pos(), what: "calls " + callee.Name() + ", which " + bad.what}
					changed = true
				}
			})
		}
	}
}

// directBad scans a function body for operations that block by themselves:
// channel sends/receives and blocking standard-library calls. Deferred
// calls count — a helper's defers run at its own return, still inside the
// caller's lock region — but goroutine and closure bodies do not.
func (ls *locksendPass) directBad(decl *ast.FuncDecl) *lsBad {
	if decl.Body == nil {
		return nil
	}
	var bad *lsBad
	ls.eachOp(decl.Body, func(pos token.Pos, what string) {
		if bad == nil {
			bad = &lsBad{pos: pos, what: what}
		}
	})
	return bad
}

// eachOp visits every directly blocking operation in n, skipping goroutine
// bodies and closures.
func (ls *locksendPass) eachOp(n ast.Node, report func(token.Pos, string)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				return true
			}
			// A select with a default clause never blocks; its comm
			// clauses are non-blocking attempts. Bodies still apply.
			for _, c := range n.Body.List {
				for _, s := range c.(*ast.CommClause).Body {
					ls.eachOp(s, report)
				}
			}
			return false
		case *ast.SendStmt:
			report(n.Arrow, "sends on a channel")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.OpPos, "receives from a channel")
			}
		case *ast.CallExpr:
			if fn := calleeFunc(ls.pass.Info, n); fn != nil {
				if what := blockingStd(fn); what != "" {
					report(n.Pos(), "calls "+what)
				}
			}
		}
		return true
	})
}

// eachCall visits every static call in n outside goroutine bodies and
// closures.
func (ls *locksendPass) eachCall(n ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}

// region walks a statement list tracking which annotated mutexes are held.
// Branch bodies are analyzed against copies of the held set; fall-through
// keeps the parent state, which models the early-unlock-and-return idiom.
func (ls *locksendPass) region(stmts []ast.Stmt, held map[types.Object]bool) {
	for _, s := range stmts {
		ls.regionStmt(s, held)
	}
}

func (ls *locksendPass) regionStmt(s ast.Stmt, held map[types.Object]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if obj, op := ls.lockOp(call); obj != nil {
				switch op {
				case "Lock", "RLock":
					held[obj] = true
				case "Unlock", "RUnlock":
					delete(held, obj)
				}
				return
			}
		}
		ls.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the region open to the end of the
		// function; other deferred calls run at an indeterminate lock
		// state and are not checked here (summaries cover helpers).
		return
	case *ast.GoStmt:
		return
	case *ast.SendStmt:
		ls.reportHeld(held, s.Arrow, "channel send")
		ls.checkExpr(s.Chan, held)
		ls.checkExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ls.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			ls.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.checkExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ls.regionStmt(s.Init, held)
		}
		ls.checkExpr(s.Cond, held)
		ls.region(s.Body.List, copyHeld(held))
		if s.Else != nil {
			ls.regionStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ls.regionStmt(s.Init, held)
		}
		if s.Cond != nil {
			ls.checkExpr(s.Cond, held)
		}
		inner := copyHeld(held)
		ls.region(s.Body.List, inner)
		if s.Post != nil {
			ls.regionStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		ls.checkExpr(s.X, held)
		ls.region(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.regionStmt(s.Init, held)
		}
		if s.Tag != nil {
			ls.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			ls.region(c.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			ls.region(c.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.SelectStmt:
		def := selectHasDefault(s)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if !def && cc.Comm != nil {
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					ls.reportHeld(held, comm.Arrow, "channel send (select)")
				default:
					// Receive clauses block the select too.
					ls.reportHeld(held, cc.Comm.Pos(), "channel receive (select)")
				}
			}
			ls.region(cc.Body, copyHeld(held))
		}
	case *ast.BlockStmt:
		ls.region(s.List, held)
	case *ast.LabeledStmt:
		ls.regionStmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ls.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		ls.checkExpr(s.X, held)
	}
}

// checkExpr flags blocking operations inside an expression evaluated while
// held is non-empty. Closure bodies are skipped: defining a closure under a
// lock is fine, invoking it is not (the invocation is a dynamic call and is
// flagged as such).
func (ls *locksendPass) checkExpr(e ast.Expr, held map[types.Object]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ls.reportHeld(held, n.OpPos, "channel receive")
			}
		case *ast.CallExpr:
			ls.checkCall(n, held)
		}
		return true
	})
}

func (ls *locksendPass) checkCall(call *ast.CallExpr, held map[types.Object]bool) {
	info := ls.pass.Info
	if isConversion(info, call) || isBuiltinCall(info, call) {
		return
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		// A call through a func value: the callback's body is invisible
		// to the lock holder, so it must not run under the lock.
		if _, ok := call.Fun.(*ast.FuncLit); ok {
			return
		}
		ls.reportHeld(held, call.Pos(), "callback invocation (dynamic call through a func value)")
		return
	}
	if what := blockingStd(fn); what != "" {
		ls.reportHeld(held, call.Pos(), what)
		return
	}
	if bad := ls.summary[fn.Origin()]; bad != nil {
		ls.reportHeld(held, call.Pos(), "call to "+fn.Name()+", which "+bad.what)
	}
}

func (ls *locksendPass) reportHeld(held map[types.Object]bool, pos token.Pos, what string) {
	for obj := range held {
		ls.pass.Reportf(pos, "%s while holding %s (//terids:nosend)", what, obj.Name())
		return
	}
}

// lockOp recognizes mu.Lock()/Unlock()/RLock()/RUnlock() on an annotated
// mutex and returns the mutex object and operation name.
func (ls *locksendPass) lockOp(call *ast.CallExpr) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	fn, _ := ls.pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	var obj types.Object
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		obj = ls.pass.Info.Uses[x.Sel]
	case *ast.Ident:
		obj = ls.pass.Info.Uses[x]
		if obj == nil {
			obj = ls.pass.Info.Defs[x]
		}
	default:
		return nil, ""
	}
	if obj == nil || !ls.annotated[obj] {
		return nil, ""
	}
	return obj, op
}

func copyHeld(held map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// blockingStd names the blocking standard-library operations a lock region
// must not perform: filesystem mutation and I/O, fsync, and sleeping.
func blockingStd(fn *types.Func) string {
	for _, name := range [...]string{"Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll", "Create", "Open", "OpenFile", "ReadFile", "WriteFile", "Truncate"} {
		if stdFunc(fn, "os", name) {
			return "blocking syscall os." + name
		}
	}
	if stdFunc(fn, "time", "Sleep") {
		return "time.Sleep"
	}
	for _, name := range [...]string{"Sync", "Close", "Write", "WriteString", "WriteAt", "Read", "ReadAt", "Seek", "Truncate"} {
		if methodOn(fn, "os", "File", name) {
			return "blocking file I/O (*os.File)." + name
		}
	}
	return ""
}
