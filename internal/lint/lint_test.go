package lint_test

import (
	"testing"

	"terids/internal/lint"
	"terids/internal/lint/linttest"
)

// Each fixture package pairs positive cases (every diagnostic the analyzer
// exists to produce) with negative ones (the approved idioms it must stay
// quiet about), plus one //lint:ignore waiver proving suppression works.

func TestLocksend(t *testing.T) { linttest.Run(t, lint.Locksend, "locksend") }

func TestPoolown(t *testing.T) { linttest.Run(t, lint.Poolown, "poolown") }

func TestHotalloc(t *testing.T) { linttest.Run(t, lint.Hotalloc, "hotalloc") }

func TestWalerr(t *testing.T) { linttest.Run(t, lint.Walerr, "walerr") }

func TestNodeterm(t *testing.T) { linttest.Run(t, lint.Nodeterm, "nodeterm") }
