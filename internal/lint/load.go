package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves the patterns to packages, parses their sources with
// comments, and type-checks them against compiler export data produced by
// `go list -export`. It needs no network and no module downloads: the
// toolchain's own build cache supplies the export files for every
// dependency, which is what lets the suite run with a dependency-free
// go.mod.
//
// dir is the working directory for the go tool (the module root); patterns
// are standard package patterns (./..., terids/internal/wal, ...).
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports, err := exportData(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(error) {}, // collect everything; first error is returned below
	}

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Pkg:   pkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// exportData compiles the patterns' dependency closure and returns the
// import path → export file map. The targets themselves are type-checked
// from source, but their export entries are harmless to include.
func exportData(dir string, patterns []string) (map[string]string, error) {
	deps, err := goList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}
	return exports, nil
}

// goList runs `go list` with the given arguments and decodes its JSON
// package stream.
func goList(dir string, args []string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, strings.TrimSpace(errb.String()))
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
