// Package linttest runs an analyzer over a fixture package and checks its
// findings against `// want "regex"` expectations, analysistest-style: every
// diagnostic must match a want on its line, and every want must be matched
// by a diagnostic. Fixtures live under internal/lint/testdata/src/<name> —
// a testdata directory keeps them out of ./... builds while still letting
// the loader resolve them as explicit package paths.
package linttest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"terids/internal/lint"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads internal/lint/testdata/src/<name>, applies the analyzer, and
// fails the test on any mismatch between findings and want comments.
func Run(t *testing.T, a *lint.Analyzer, name string) {
	t.Helper()
	root := moduleRoot(t)
	pkgs, err := lint.Load(root, "./internal/lint/testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", name, len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := lint.RunOnPackage(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info)
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, name, err)
	}

	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	key := func(pos token.Position) string {
		return filepath.Base(pos.Filename) + ":" + itoa(pos.Line)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllString(m[1], -1) {
					raw, err := strconv.Unquote(arg)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key(pos), arg, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key(pos), raw, err)
					}
					k := key(pos)
					wants[k] = append(wants[k], &want{re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key(pos)
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected %s diagnostic: %s", k, d.Analyzer, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no %s diagnostic matching %q", k, a.Name, w.raw)
			}
		}
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
