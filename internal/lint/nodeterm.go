package lint

import (
	"go/ast"
	"go/types"
)

// Nodeterm guards the byte-identical replay contract: deep replay and
// follower catch-up must regenerate the exact result stream the live
// pipeline emitted, so the merge and replay paths may not consult wall
// clocks, random sources, or map iteration order. Functions annotated
// //terids:deterministic — and every same-package function they statically
// call, transitively — must not call time.Now/Since/Until, reference
// math/rand (or math/rand/v2), or range over a map.
//
// Instrumentation that provably cannot affect emitted bytes (latency
// observations, trace timestamps) and map ranges whose results are sorted
// before use are waived at the site with //lint:ignore nodeterm <reason> —
// the waiver is the review record for why the nondeterminism is harmless.
var Nodeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "no time.Now, math/rand, or map-iteration-order dependence in //terids:deterministic paths",
	Run:  runNodeterm,
}

func runNodeterm(pass *Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if funcHasDirective(fd, "deterministic") {
				roots = append(roots, fn)
			}
		}
	}

	// The deterministic context is the transitive same-package static call
	// closure of the annotated roots.
	inContext := map[*types.Func]string{} // fn -> root that reached it
	var reach func(fn *types.Func, root string)
	reach = func(fn *types.Func, root string) {
		if _, ok := inContext[fn]; ok {
			return
		}
		fd, ok := decls[fn]
		if !ok || fd.Body == nil {
			return
		}
		inContext[fn] = root
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeFunc(pass.Info, call); callee != nil {
					if _, same := decls[callee.Origin()]; same {
						reach(callee.Origin(), root)
					}
				}
			}
			return true
		})
	}
	for _, fn := range roots {
		reach(fn, fn.Name())
	}

	for fn, root := range inContext {
		fd := decls[fn]
		via := ""
		if fn.Name() != root {
			via = " (reached from //terids:deterministic " + root + ")"
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if callee := calleeFunc(pass.Info, n); callee != nil {
					switch {
					case stdFunc(callee, "time", "Now"), stdFunc(callee, "time", "Since"), stdFunc(callee, "time", "Until"):
						pass.Reportf(n.Pos(), "time.%s in deterministic replay path %s%s", callee.Name(), fn.Name(), via)
					}
				}
			case *ast.Ident:
				if obj := pass.Info.Uses[n]; obj != nil && obj.Pkg() != nil {
					switch obj.Pkg().Path() {
					case "math/rand", "math/rand/v2":
						pass.Reportf(n.Pos(), "%s.%s in deterministic replay path %s%s", obj.Pkg().Name(), obj.Name(), fn.Name(), via)
					}
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok && isMapType(tv.Type) {
					pass.Reportf(n.For, "map iteration order leaks into deterministic replay path %s%s", fn.Name(), via)
				}
			}
			return true
		})
	}
	return nil
}
