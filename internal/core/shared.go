package core

import (
	"fmt"
	"time"

	"terids/internal/cddindex"
	"terids/internal/drindex"
	"terids/internal/pivot"
	"terids/internal/repository"
	"terids/internal/rules"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

// Shared holds the offline pre-computation phase of Algorithm 1 (lines
// 1-4): pivot tuples, detected rule sets, and the imputation indexes. The
// same Shared state backs TER-iDS and all baselines so that comparisons
// isolate the online algorithms.
type Shared struct {
	Schema *tuple.Schema
	Repo   *repository.Repository
	// Sel is the cost-model-selected pivot set (Section 5.4).
	Sel *pivot.Selection
	// Rules is the banded CDD+DD+editing set TER-iDS imputes with.
	Rules *rules.Set
	// DDRules is the cumulative interval-only set of the DD+ER baseline.
	DDRules *rules.Set
	// EdRules is the editing-rule subset of the er+ER baseline.
	EdRules *rules.Set
	// Keywords is the query keyword set K as a token set (sorted).
	Keywords tokens.Set
	// DomIdx are per-attribute pivot-ordered domain indexes (accelerated
	// candidate range queries).
	DomIdx []*repository.Index
	// CDDIdx are the per-dependent-attribute CDD-indexes I_j.
	CDDIdx []*cddindex.Index
	// DRIdx is the DR-index I_R.
	DRIdx *drindex.Index

	// Offline timing of the pre-computation phase.
	PivotTime  time.Duration
	DetectTime time.Duration
	IndexTime  time.Duration
}

// PrepareConfig tunes the offline phase.
type PrepareConfig struct {
	Pivot  pivot.Config
	Detect rules.DetectConfig
	// Keywords is K; copied into Shared as a token set.
	Keywords []string
	// Selection, when non-nil, overrides cost-model pivot selection (used
	// by the pivot ablation study).
	Selection *pivot.Selection
}

// DefaultPrepareConfig mirrors the paper's offline settings.
func DefaultPrepareConfig(keywords []string) PrepareConfig {
	return PrepareConfig{
		Pivot:    pivot.Defaults(),
		Detect:   rules.DefaultDetectConfig(),
		Keywords: keywords,
	}
}

// Prepare runs the offline phase over repository R: pivot selection, rule
// detection (banded for TER-iDS, cumulative DDs and editing rules for the
// baselines), and index construction.
func Prepare(repo *repository.Repository, cfg PrepareConfig) (*Shared, error) {
	if repo.Len() == 0 {
		return nil, fmt.Errorf("core: empty repository; TER-iDS needs R for imputation")
	}
	sh := &Shared{
		Schema:   repo.Schema(),
		Repo:     repo,
		Keywords: tokens.New(cfg.Keywords...),
	}

	start := time.Now()
	if cfg.Selection != nil {
		sh.Sel = cfg.Selection
	} else {
		sel, err := pivot.Select(repo, cfg.Pivot)
		if err != nil {
			return nil, fmt.Errorf("core: pivot selection: %w", err)
		}
		sh.Sel = sel
	}
	sel := sh.Sel
	sh.PivotTime = time.Since(start)

	start = time.Now()
	sh.Rules = rules.Detect(repo, cfg.Detect)
	ddCfg := cfg.Detect
	ddCfg.Cumulative = true
	ddCfg.DisableCDD = true
	ddCfg.DisableEditing = true
	ddCfg.MaxDepWidth = cfg.Detect.MaxDepWidth * 1.5
	sh.DDRules = rules.Detect(repo, ddCfg)
	sh.EdRules = sh.Rules.Filter(rules.KindEditing)
	sh.DetectTime = time.Since(start)

	start = time.Now()
	d := sh.Schema.D()
	sh.DomIdx = make([]*repository.Index, d)
	for j := 0; j < d; j++ {
		sh.DomIdx[j] = repo.Domain(j).BuildIndex(sel.Main(j))
	}
	sh.CDDIdx = make([]*cddindex.Index, d)
	for j := 0; j < d; j++ {
		ix, err := cddindex.Build(sh.Rules, j, sel)
		if err != nil {
			return nil, fmt.Errorf("core: CDD-index for attribute %d: %w", j, err)
		}
		sh.CDDIdx[j] = ix
	}
	dr, err := drindex.Build(repo, sel, sh.Keywords)
	if err != nil {
		return nil, fmt.Errorf("core: DR-index: %w", err)
	}
	sh.DRIdx = dr
	sh.IndexTime = time.Since(start)
	return sh, nil
}

// AddSamples extends the repository with new complete samples and
// incrementally updates the DR-index and domain indexes (the dynamic
// repository extension of Section 5.5). Rule sets and CDD-indexes are
// refreshed by re-detection when revalidate is true (the paper's
// delete-and-extend rule maintenance, applied as a batch).
func (sh *Shared) AddSamples(revalidate bool, detect rules.DetectConfig, samples ...*tuple.Record) error {
	if err := sh.Repo.Add(samples...); err != nil {
		return err
	}
	for _, s := range samples {
		sh.DRIdx.Add(s)
	}
	d := sh.Schema.D()
	for j := 0; j < d; j++ {
		sh.DomIdx[j] = sh.Repo.Domain(j).BuildIndex(sh.Sel.Main(j))
	}
	if revalidate {
		sh.Rules = rules.Detect(sh.Repo, detect)
		sh.EdRules = sh.Rules.Filter(rules.KindEditing)
		for j := 0; j < d; j++ {
			ix, err := cddindex.Build(sh.Rules, j, sh.Sel)
			if err != nil {
				return err
			}
			sh.CDDIdx[j] = ix
		}
	}
	return nil
}
