package core

import (
	"slices"

	"terids/internal/grid"
	"terids/internal/impute"
	"terids/internal/metrics"
	"terids/internal/prune"
	"terids/internal/rules"
	"terids/internal/tuple"
)

// Step is the per-shard slice of the TER-iDS operator: the pure, grid-free
// pieces of Algorithm 2 (imputation via the CDD-index/DR-index join, profile
// construction, and the Section 4 pruning cascade over an ER-grid
// partition). A Step holds only read-only state — the offline Shared indexes
// and a validated Config — so one Step may be used concurrently from many
// goroutines as long as each call's grid and stats arguments are owned by
// the caller. Processor and the sharded engine are both thin drivers over
// this API, which keeps their semantics identical by construction.
type Step struct {
	sh  *Shared
	cfg Config
}

// NewStep validates cfg against the shared schema and returns the step.
func NewStep(sh *Shared, cfg Config) (*Step, error) {
	if err := cfg.Validate(sh.Schema.D()); err != nil {
		return nil, err
	}
	return &Step{sh: sh, cfg: cfg}, nil
}

// Shared returns the offline state the step resolves against.
func (s *Step) Shared() *Shared { return s.sh }

// Config returns the validated (default-filled) configuration.
func (s *Step) Config() Config { return s.cfg }

// NewGrid builds an empty ER-grid partition sized for profiles produced by
// this step (same geometry the Processor uses for its single grid).
func (s *Step) NewGrid() (*grid.Grid, error) {
	nPiv := 1 + s.sh.Sel.MaxAux()
	return grid.New(s.sh.Schema.D(), s.cfg.CellsPerDim, nPiv, len(s.sh.Keywords))
}

// Impute is the 3-way join's imputation side: CDD-index rule selection plus
// DR-index sample retrieval, accumulating candidates through the
// pivot-accelerated domain index. It reads only Shared state and returns the
// imputed tuple plus the online Select/Impute cost of this call.
func (s *Step) Impute(r *tuple.Record) (*tuple.Imputed, metrics.Breakdown) {
	var bd metrics.Breakdown
	if r.IsComplete() {
		return tuple.FromComplete(r), bd
	}
	im := &tuple.Imputed{R: r, Dists: make([]tuple.AttrDist, r.D())}
	var sw metrics.Stopwatch
	for j := 0; j < r.D(); j++ {
		if !r.IsMissing(j) {
			im.Dists[j] = tuple.Point(r.Value(j), r.Tokens(j))
			continue
		}
		sw.Start()
		var applicable []*rules.Rule
		s.sh.CDDIdx[j].Applicable(r, func(rule *rules.Rule) bool {
			applicable = append(applicable, rule)
			return true
		})
		bd.Select += sw.Lap()

		dom := s.sh.Repo.Domain(j)
		acc := impute.NewAccumulator(dom, s.sh.DomIdx[j])
		s.sh.DRIdx.MatchingSamplesMulti(r, applicable, func(ri int, smp *tuple.Record) bool {
			acc.AddSample(dom.Lookup(smp.Value(j)), applicable[ri].DepMin, applicable[ri].DepMax)
			return true
		})
		im.Dists[j] = acc.Distribution(s.cfg.Impute)
		bd.Impute += sw.Lap()
	}
	return im, bd
}

// Profile computes the pruning profile of an imputed tuple under the shared
// pivot selection and query keywords.
func (s *Step) Profile(im *tuple.Imputed) *prune.Profile {
	return prune.BuildProfile(im, s.sh.Sel, s.sh.Keywords)
}

// Resolve runs the pruning cascade of Section 4 for query profile q over one
// ER-grid partition g and returns the matching pairs, accumulating pruning
// counters into stat. The pair set depends only on (q, resident profiles,
// γ, α) — never on how residents are distributed across grid partitions —
// because every pruning rule is safe: cell-level aggregates over any subset
// of residents still bound each member, so partitioning can only move cost.
func (s *Step) Resolve(g *grid.Grid, q *prune.Profile, stat *metrics.PruneStats) []Pair {
	var out []Pair
	var survivors []*grid.Entry
	g.Candidates(q, grid.Query{
		Gamma:        s.cfg.Gamma,
		DisableTopic: s.cfg.Ablate.Topic,
		DisableSim:   s.cfg.Ablate.Sim,
	}, func(e *grid.Entry) bool {
		survivors = append(survivors, e)
		return true
	})
	// Deterministic order via insertion ordinals (cheap int sort). Ordinals
	// are assigned in insertion order, so within any partition this is also
	// global arrival order — the engine's merge relies on that.
	slices.SortFunc(survivors, func(a, b *grid.Entry) int {
		return int(a.Ord() - b.Ord())
	})

	// Exact pruning attribution (Figure 4): every live other-stream tuple
	// forms one candidate pair with q. Pairs eliminated at cell level are
	// attributed to the strategy that would have eliminated them. This
	// pass costs O(live tuples), so it is gated behind TrackPruning.
	if s.cfg.TrackPruning {
		live := make(map[int64]struct{}, len(survivors))
		for _, e := range survivors {
			live[e.Ord()] = struct{}{}
		}
		g.Each(func(e *grid.Entry) bool {
			if e.Rec.Stream == q.Im.R.Stream {
				return true
			}
			stat.Considered++
			if _, ok := live[e.Ord()]; ok {
				return true
			}
			if prune.TopicPrune(q, e.Prof) {
				stat.Topic++
			} else {
				stat.SimUB++
			}
			return true
		})
	} else {
		stat.Considered += int64(len(survivors))
	}

	for _, e := range survivors {
		// Theorem 4.1.
		if !s.cfg.Ablate.Topic && prune.TopicPrune(q, e.Prof) {
			stat.Topic++
			continue
		}
		// Theorem 4.2 (size + pivot bounds).
		if !s.cfg.Ablate.Sim && prune.SimPrune(q.Bounds, e.Prof.Bounds, s.cfg.Gamma) {
			stat.SimUB++
			continue
		}
		// Theorem 4.3 (Paley-Zygmund).
		if !s.cfg.Ablate.Prob && prune.ProbPrune(q, e.Prof, s.cfg.Gamma, s.cfg.Alpha) {
			stat.ProbUB++
			continue
		}
		if s.cfg.Ablate.InstPair {
			// Ablated Theorem 4.4: full Equation 2.
			prob := prune.ExactProbability(q, e.Prof, s.cfg.Gamma)
			stat.Refined++
			if prob > s.cfg.Alpha {
				out = append(out, newPair(q.Im.R, e.Rec, prob))
			}
			continue
		}
		// Theorem 4.4 inside the refinement.
		res := prune.Refine(q, e.Prof, s.cfg.Gamma, s.cfg.Alpha)
		if res.PrunedEarly {
			stat.InstPair++
			continue
		}
		stat.Refined++
		if res.Match {
			out = append(out, newPair(q.Im.R, e.Rec, res.Prob))
		}
	}
	return out
}
