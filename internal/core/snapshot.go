package core

import (
	"fmt"
	"slices"

	"terids/internal/grid"
	"terids/internal/snapshot"
	"terids/internal/tuple"
)

// This file is the core half of the checkpoint subsystem: converting between
// live operator state and snapshot.Checkpoint. Only primary state is
// captured — resident records, arrival sequences, the entity set, counters.
// Everything derived (imputation distributions, profiles, grid cells) is
// recomputed on restore, which is what lets a checkpoint taken at one shard
// count be restored at another: residency is a function of the recomputed
// profile, not of the serialized bytes.

// NewCheckpointHeader seeds a checkpoint with the problem-configuration
// fingerprint restore validates against.
func NewCheckpointHeader(sh *Shared, cfg Config) *snapshot.Checkpoint {
	return &snapshot.Checkpoint{
		Streams:     cfg.Streams,
		WindowSize:  cfg.WindowSize,
		TimeSpan:    cfg.TimeSpan,
		Gamma:       cfg.Gamma,
		Alpha:       cfg.Alpha,
		Keywords:    append([]string(nil), sh.Keywords...),
		SchemaAttrs: sh.Schema.Attrs(),
	}
}

// CheckpointCompatible reports whether a checkpoint was captured under an
// equivalent problem configuration. Parameters that affect which pairs are
// emitted (schema, keywords, thresholds, window model) must match exactly;
// parameters that only move cost around (shard count, grid resolution) may
// differ freely.
func CheckpointCompatible(sh *Shared, cfg Config, c *snapshot.Checkpoint) error {
	if attrs := sh.Schema.Attrs(); !slices.Equal(attrs, c.SchemaAttrs) {
		return fmt.Errorf("core: checkpoint schema %v, have %v", c.SchemaAttrs, attrs)
	}
	if kws := []string(sh.Keywords); !slices.Equal(kws, c.Keywords) {
		return fmt.Errorf("core: checkpoint keywords %v, have %v", c.Keywords, kws)
	}
	if cfg.Streams != c.Streams {
		return fmt.Errorf("core: checkpoint has %d streams, configured %d", c.Streams, cfg.Streams)
	}
	if cfg.TimeSpan != c.TimeSpan {
		return fmt.Errorf("core: checkpoint time span %d, configured %d", c.TimeSpan, cfg.TimeSpan)
	}
	if cfg.TimeSpan == 0 && cfg.WindowSize != c.WindowSize {
		return fmt.Errorf("core: checkpoint window size %d, configured %d", c.WindowSize, cfg.WindowSize)
	}
	if cfg.Gamma != c.Gamma || cfg.Alpha != c.Alpha {
		return fmt.Errorf("core: checkpoint thresholds γ=%v α=%v, configured γ=%v α=%v",
			c.Gamma, c.Alpha, cfg.Gamma, cfg.Alpha)
	}
	return nil
}

// ResidentFromRecord converts one live record into its checkpoint form.
func ResidentFromRecord(r *tuple.Record, arrivalSeq int64) snapshot.Resident {
	vals := make([]string, r.D())
	for j := range vals {
		vals[j] = r.Value(j)
	}
	return snapshot.Resident{
		ArrivalSeq: arrivalSeq,
		RID:        r.RID,
		Stream:     r.Stream,
		Seq:        r.Seq,
		EntityID:   r.EntityID,
		Values:     vals,
	}
}

// CheckpointRecords materializes the checkpoint's residents back into
// records, in arrival order (index i corresponds to c.Residents[i]).
func CheckpointRecords(schema *tuple.Schema, c *snapshot.Checkpoint) ([]*tuple.Record, error) {
	recs := make([]*tuple.Record, len(c.Residents))
	for i, res := range c.Residents {
		r, err := tuple.NewRecord(schema, res.RID, res.Stream, res.Seq, res.Values)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint resident %d: %w", i, err)
		}
		r.EntityID = res.EntityID
		recs[i] = r
	}
	return recs, nil
}

// ArrivalRecord materializes one logged arrival back into a record — the
// replay entry point shared by the engine's WAL recovery and the batch CLI.
// EntityID is preserved so a replayed evaluation run scores identically to
// the original; resolution itself never reads it.
func ArrivalRecord(schema *tuple.Schema, rid string, stream int, seq int64, entityID int, values []string) (*tuple.Record, error) {
	r, err := tuple.NewRecord(schema, rid, stream, seq, values)
	if err != nil {
		return nil, fmt.Errorf("core: replayed arrival %s: %w", rid, err)
	}
	r.EntityID = entityID
	return r, nil
}

// CheckpointPairs appends the live entity set to c as index references over
// c.Residents (every pair member is window-live, hence a resident).
func CheckpointPairs(rs *ResultSet, c *snapshot.Checkpoint) error {
	idx := make(map[string]int, len(c.Residents))
	for i, r := range c.Residents {
		idx[r.RID] = i
	}
	for _, p := range rs.Pairs() {
		a, okA := idx[p.A.RID]
		b, okB := idx[p.B.RID]
		if !okA || !okB {
			return fmt.Errorf("core: entity-set pair (%s, %s) references a non-resident tuple",
				p.A.RID, p.B.RID)
		}
		c.Pairs = append(c.Pairs, snapshot.PairRef{A: a, B: b, Prob: p.Prob})
	}
	return nil
}

// RestoreResults fills an empty result set from the checkpoint's pairs over
// the materialized records.
func RestoreResults(rs *ResultSet, recs []*tuple.Record, c *snapshot.Checkpoint) error {
	if rs.Len() != 0 {
		return fmt.Errorf("core: restore into non-empty result set (%d pairs)", rs.Len())
	}
	for _, pr := range c.Pairs {
		rs.Add(Pair{A: recs[pr.A], B: recs[pr.B], Prob: pr.Prob})
	}
	return nil
}

// Seq returns the number of arrivals the processor has fully processed —
// the watermark its next checkpoint would carry.
func (p *Processor) Seq() int64 { return p.seq }

// Snapshot captures the processor's full online state at the current
// watermark: the window residents with their arrival sequences, the live
// entity set, and the arrival counter. The checkpoint can be restored into
// a fresh Processor or into the sharded engine at any shard count.
func (p *Processor) Snapshot() (*snapshot.Checkpoint, error) {
	c := NewCheckpointHeader(p.step.Shared(), p.step.Config())
	c.Seq = p.seq
	c.Completed = p.seq
	c.Shards = 1
	// Grid export order is insertion-ordinal order, which for the processor
	// is arrival order — exactly the Residents contract.
	for _, e := range p.grid.Export() {
		s, ok := p.seqOf[e.Rec.RID]
		if !ok {
			return nil, fmt.Errorf("core: resident %s has no arrival sequence", e.Rec.RID)
		}
		c.Residents = append(c.Residents, ResidentFromRecord(e.Rec, s))
	}
	if err := CheckpointPairs(p.results, c); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("core: snapshot self-check: %w", err)
	}
	return c, nil
}

// Restore loads a checkpoint into a freshly constructed (never advanced)
// processor: windows, grid, entity set, and counters all resume at the
// checkpoint's watermark. Profiles are recomputed from the resident records,
// so the restored grid is identical to the one an uninterrupted run holds.
func (p *Processor) Restore(c *snapshot.Checkpoint) error {
	if p.seq != 0 || p.grid.Len() != 0 || p.results.Len() != 0 {
		return fmt.Errorf("core: restore into a processor that has already advanced")
	}
	if err := c.Validate(); err != nil {
		return err
	}
	if err := CheckpointCompatible(p.step.Shared(), p.step.Config(), c); err != nil {
		return err
	}
	recs, err := CheckpointRecords(p.step.Shared().Schema, c)
	if err != nil {
		return err
	}
	if p.timeWins != nil {
		perStream := make([][]*tuple.Record, len(p.timeWins))
		for _, r := range recs {
			perStream[r.Stream] = append(perStream[r.Stream], r)
		}
		for i, tw := range p.timeWins {
			if err := tw.Import(perStream[i]); err != nil {
				return err
			}
		}
	} else {
		if err := p.windows.Import(recs); err != nil {
			return err
		}
	}
	entries := make([]*grid.Entry, len(recs))
	for i, r := range recs {
		im, _ := p.step.Impute(r)
		entries[i] = &grid.Entry{Rec: r, Prof: p.step.Profile(im)}
		p.seqOf[r.RID] = c.Residents[i].ArrivalSeq
	}
	if err := p.grid.Import(entries); err != nil {
		return err
	}
	if err := RestoreResults(p.results, recs, c); err != nil {
		return err
	}
	p.seq = c.Seq
	return nil
}

// NewProcessorFromSnapshot builds a processor over Shared state and resumes
// it from checkpoint c.
func NewProcessorFromSnapshot(sh *Shared, cfg Config, c *snapshot.Checkpoint) (*Processor, error) {
	p, err := NewProcessor(sh, cfg)
	if err != nil {
		return nil, err
	}
	if err := p.Restore(c); err != nil {
		return nil, err
	}
	return p, nil
}
