package core

import "testing"

// TestAblationsPreserveResults verifies the safety claim behind the
// ablation benchmarks: disabling any pruning strategy (or all of them)
// changes cost only, never the entity set.
func TestAblationsPreserveResults(t *testing.T) {
	f := newFixture(t, 61, 40, 100, 0.4)
	base := testConfig()
	ref, err := NewProcessor(f.shared, base)
	if err != nil {
		t.Fatal(err)
	}
	refKeys := runAll(t, ref, f.stream)

	variants := map[string]AblateConfig{
		"no-topic":    {Topic: true},
		"no-sim":      {Sim: true},
		"no-prob":     {Prob: true},
		"no-instpair": {InstPair: true},
		"none":        {Topic: true, Sim: true, Prob: true, InstPair: true},
	}
	for name, ab := range variants {
		cfg := base
		cfg.Ablate = ab
		p, err := NewProcessor(f.shared, cfg)
		if err != nil {
			t.Fatal(err)
		}
		keys := runAll(t, p, f.stream)
		if len(keys) != len(refKeys) {
			t.Fatalf("%s: %d pairs, reference %d", name, len(keys), len(refKeys))
		}
		for k := range refKeys {
			if !keys[k] {
				t.Fatalf("%s: missing pair %v", name, k)
			}
		}
	}
}

// TestAblationShiftsWork confirms the fully-ablated processor refines more
// pairs than the pruned one (the cost the pruning strategies save).
func TestAblationShiftsWork(t *testing.T) {
	f := newFixture(t, 67, 40, 100, 0.4)
	base := testConfig()
	pruned, _ := NewProcessor(f.shared, base)
	runAll(t, pruned, f.stream)

	cfg := base
	cfg.Ablate = AblateConfig{Topic: true, Sim: true, Prob: true, InstPair: true}
	open, _ := NewProcessor(f.shared, cfg)
	runAll(t, open, f.stream)

	if open.PruneStats().Refined <= pruned.PruneStats().Refined {
		t.Fatalf("ablated processor refined %d pairs, pruned %d — pruning saved nothing?",
			open.PruneStats().Refined, pruned.PruneStats().Refined)
	}
}
