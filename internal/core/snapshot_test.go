package core

import (
	"bytes"
	"testing"

	"terids/internal/snapshot"
)

func snapshotEquivalence(t *testing.T, cfg Config) {
	t.Helper()
	f := newFixture(t, 11, 60, 120, 0.4)

	// Reference: one uninterrupted run.
	ref, err := NewProcessor(f.shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]Pair, len(f.stream))
	for i, r := range f.stream {
		pairs, err := ref.Advance(r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pairs
	}
	total := 0
	for _, ps := range want {
		total += len(ps)
	}
	if total == 0 {
		t.Fatal("reference emitted no pairs; fixture too small to be meaningful")
	}

	// Interrupted run: advance to the midpoint, snapshot, roundtrip through
	// the binary format, restore into a fresh processor, and finish.
	mid := len(f.stream) / 2
	first, err := NewProcessor(f.shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream[:mid] {
		if _, err := first.Advance(r); err != nil {
			t.Fatal(err)
		}
	}
	c, err := first.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if c.Seq != int64(mid) {
		t.Fatalf("checkpoint watermark %d, want %d", c.Seq, mid)
	}
	var buf bytes.Buffer
	if err := snapshot.Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := snapshot.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	second, err := NewProcessorFromSnapshot(f.shared, cfg, c2)
	if err != nil {
		t.Fatal(err)
	}
	if second.Seq() != int64(mid) {
		t.Fatalf("restored processor at seq %d, want %d", second.Seq(), mid)
	}
	for i, r := range f.stream[mid:] {
		pairs, err := second.Advance(r)
		if err != nil {
			t.Fatal(err)
		}
		w := want[mid+i]
		if len(pairs) != len(w) {
			t.Fatalf("arrival %d: restored emitted %d pairs, reference %d", mid+i, len(pairs), len(w))
		}
		for j := range pairs {
			if pairs[j].A.RID != w[j].A.RID || pairs[j].B.RID != w[j].B.RID || pairs[j].Prob != w[j].Prob {
				t.Fatalf("arrival %d pair %d: restored %v/%v/%v, reference %v/%v/%v",
					mid+i, j, pairs[j].A.RID, pairs[j].B.RID, pairs[j].Prob,
					w[j].A.RID, w[j].B.RID, w[j].Prob)
			}
		}
	}
	gotFinal, wantFinal := second.Results().Pairs(), ref.Results().Pairs()
	if len(gotFinal) != len(wantFinal) {
		t.Fatalf("final entity set: restored %d pairs, reference %d", len(gotFinal), len(wantFinal))
	}
	for i := range gotFinal {
		if gotFinal[i].A.RID != wantFinal[i].A.RID || gotFinal[i].B.RID != wantFinal[i].B.RID ||
			gotFinal[i].Prob != wantFinal[i].Prob {
			t.Fatalf("final pair %d differs: %v vs %v", i, gotFinal[i], wantFinal[i])
		}
	}
}

// TestProcessorSnapshotRestoreEquivalence is the core checkpoint contract:
// snapshot → binary roundtrip → restore → resume emits pairs and
// probabilities identical to an uninterrupted run, count-based windows.
func TestProcessorSnapshotRestoreEquivalence(t *testing.T) {
	snapshotEquivalence(t, testConfig())
}

// TestProcessorSnapshotTimeWindowMode covers the time-based window variant,
// whose window clock must be recovered from the residents.
func TestProcessorSnapshotTimeWindowMode(t *testing.T) {
	cfg := testConfig()
	cfg.TimeSpan = 15
	snapshotEquivalence(t, cfg)
}

// TestProcessorRestoreRejectsMismatchedConfig: a checkpoint must not load
// under a configuration that changes which pairs are emitted.
func TestProcessorRestoreRejectsMismatchedConfig(t *testing.T) {
	f := newFixture(t, 3, 40, 40, 0.4)
	p, err := NewProcessor(f.shared, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.stream[:20] {
		if _, err := p.Advance(r); err != nil {
			t.Fatal(err)
		}
	}
	c, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	muts := map[string]func(*Config){
		"gamma":    func(c *Config) { c.Gamma = 1.5 },
		"alpha":    func(c *Config) { c.Alpha = 0.3 },
		"window":   func(c *Config) { c.WindowSize = 19 },
		"timespan": func(c *Config) { c.TimeSpan = 10 },
	}
	for name, mut := range muts {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			mut(&cfg)
			if _, err := NewProcessorFromSnapshot(f.shared, cfg, c); err == nil {
				t.Fatal("restore accepted a checkpoint from a different configuration")
			}
		})
	}
	t.Run("used processor", func(t *testing.T) {
		q, err := NewProcessor(f.shared, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.Advance(f.stream[25]); err != nil {
			t.Fatal(err)
		}
		if err := q.Restore(c); err == nil {
			t.Fatal("Restore accepted a processor that has already advanced")
		}
	})
}
