package core

import (
	"fmt"
	"math/rand"
	"testing"

	"terids/internal/metrics"
	"terids/internal/repository"
	"terids/internal/tuple"
)

var testSchema = tuple.MustSchema("Gender", "Symptom", "Diagnosis", "Treatment")

// fixture bundles a deterministic health-forum style workload: a complete
// repository, a two-stream record sequence with injected missing values,
// and the keyword set.
type fixture struct {
	repo    *repository.Repository
	stream  []*tuple.Record
	shared  *Shared
	nextRID int
}

type disease struct {
	symptoms  []string
	diagnosis string
	treatment string
}

var diseases = []disease{
	{[]string{"thirst", "weight", "loss", "blurred", "vision"}, "diabetes mellitus", "insulin diet"},
	{[]string{"fever", "cough", "fatigue", "aches"}, "seasonal flu", "rest fluids"},
	{[]string{"red", "eye", "itchy", "tears"}, "conjunctivitis acute", "eye drops"},
	{[]string{"headache", "nausea", "light", "sensitivity"}, "migraine chronic", "dark room"},
}

func (f *fixture) record(r *rand.Rand, stream int, seq int64, dz disease, missing int) *tuple.Record {
	gender := []string{"male", "female"}[r.Intn(2)]
	drop := r.Intn(len(dz.symptoms))
	sym := ""
	for i, s := range dz.symptoms {
		if i != drop {
			sym += s + " "
		}
	}
	vals := []string{gender, sym, dz.diagnosis, dz.treatment}
	// Mark `missing` random attributes (never Symptom, which anchors the
	// rules) as absent.
	for m := 0; m < missing; m++ {
		j := []int{0, 2, 3}[r.Intn(3)]
		vals[j] = tuple.Missing
	}
	f.nextRID++
	return tuple.MustRecord(testSchema, fmt.Sprintf("r%03d", f.nextRID), stream, seq, vals)
}

func newFixture(t *testing.T, seed int64, repoSize, streamLen int, missingRate float64) *fixture {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	f := &fixture{}
	var samples []*tuple.Record
	for i := 0; i < repoSize; i++ {
		dz := diseases[i%len(diseases)]
		gender := []string{"male", "female"}[i%2]
		drop := r.Intn(len(dz.symptoms))
		sym := ""
		for k, s := range dz.symptoms {
			if k != drop {
				sym += s + " "
			}
		}
		samples = append(samples, tuple.MustRecord(testSchema, fmt.Sprintf("s%03d", i), 0, 0,
			[]string{gender, sym, dz.diagnosis, dz.treatment}))
	}
	repo, err := repository.Build(testSchema, samples)
	if err != nil {
		t.Fatal(err)
	}
	f.repo = repo
	for i := 0; i < streamLen; i++ {
		dz := diseases[r.Intn(len(diseases))]
		missing := 0
		if r.Float64() < missingRate {
			missing = 1 + r.Intn(2)
		}
		f.stream = append(f.stream, f.record(r, i%2, int64(i), dz, missing))
	}
	sh, err := Prepare(repo, DefaultPrepareConfig([]string{"diabetes", "flu"}))
	if err != nil {
		t.Fatal(err)
	}
	f.shared = sh
	return f
}

func testConfig() Config {
	return Config{
		Keywords:     []string{"diabetes", "flu"},
		Gamma:        2.0, // of d=4
		Alpha:        0.5,
		WindowSize:   20,
		Streams:      2,
		CellsPerDim:  4,
		TrackPruning: true,
	}
}

func TestResultSet(t *testing.T) {
	rs := NewResultSet()
	a := tuple.MustRecord(testSchema, "a", 0, 0, []string{"x", "y", "z", "w"})
	b := tuple.MustRecord(testSchema, "b", 1, 1, []string{"x", "y", "z", "w"})
	c := tuple.MustRecord(testSchema, "c", 1, 2, []string{"x", "y", "z", "w"})
	rs.Add(newPair(b, a, 0.9)) // normalization check
	rs.Add(newPair(a, c, 0.8))
	if rs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rs.Len())
	}
	if !rs.Has("a", "b") || !rs.Has("b", "a") {
		t.Fatal("Has must be order-insensitive")
	}
	pairs := rs.Pairs()
	if pairs[0].A.RID != "a" || pairs[0].B.RID != "b" {
		t.Fatalf("Pairs[0] = %v; normalization or ordering broken", pairs[0])
	}
	if n := rs.RemoveRID("a"); n != 2 {
		t.Fatalf("RemoveRID(a) removed %d, want 2", n)
	}
	if rs.Len() != 0 {
		t.Fatal("all pairs involved a")
	}
	if n := rs.RemoveRID("zzz"); n != 0 {
		t.Fatal("removing unknown RID must be a no-op")
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(4); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Gamma: 0, Alpha: 0.5, WindowSize: 5, Streams: 2},
		{Gamma: 4, Alpha: 0.5, WindowSize: 5, Streams: 2},
		{Gamma: 2, Alpha: 1, WindowSize: 5, Streams: 2},
		{Gamma: 2, Alpha: -0.1, WindowSize: 5, Streams: 2},
		{Gamma: 2, Alpha: 0.5, WindowSize: 0, Streams: 2},
		{Gamma: 2, Alpha: 0.5, WindowSize: 5, Streams: 1},
		{Gamma: 2, Alpha: 0.5, WindowSize: 5, Streams: 2, CellsPerDim: -1},
	}
	for i, c := range bad {
		if err := c.Validate(4); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Defaults fill in.
	c := Config{Gamma: 2, Alpha: 0.5, WindowSize: 5, Streams: 2}
	if err := c.Validate(4); err != nil {
		t.Fatal(err)
	}
	if c.CellsPerDim != 5 || c.Impute.MaxCandidates == 0 {
		t.Fatal("defaults not applied")
	}
}

func TestPrepare(t *testing.T) {
	f := newFixture(t, 1, 40, 0, 0)
	sh := f.shared
	if sh.Rules.Len() == 0 {
		t.Fatal("no rules detected")
	}
	if sh.DDRules.Len() == 0 {
		t.Fatal("no DD rules detected")
	}
	if len(sh.CDDIdx) != 4 || sh.DRIdx.Len() != 40 {
		t.Fatal("indexes not built")
	}
	if sh.PivotTime <= 0 || sh.DetectTime <= 0 {
		t.Fatal("offline timings not recorded")
	}
	// Empty repository must fail.
	empty, _ := repository.Build(testSchema, nil)
	if _, err := Prepare(empty, DefaultPrepareConfig(nil)); err == nil {
		t.Fatal("Prepare over empty repository must fail")
	}
}

// runAll feeds the full stream to a resolver and returns the final result
// keys plus pair count over time.
func runAll(t *testing.T, res Resolver, recs []*tuple.Record) map[metrics.PairKey]bool {
	t.Helper()
	for _, r := range recs {
		if _, err := res.Advance(r); err != nil {
			t.Fatalf("%s: Advance(%s): %v", res.Name(), r.RID, err)
		}
	}
	return res.Results().Keys()
}

// TestTERIDSMatchesNaive is the headline correctness property: the indexed,
// pruned TER-iDS processor must produce exactly the entity set of the
// straightforward method (same imputation, exhaustive ER) at every
// timestamp.
func TestTERIDSMatchesNaive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		f := newFixture(t, seed, 40, 120, 0.4)
		cfg := testConfig()
		ter, err := NewProcessor(f.shared, cfg)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NewBaseline(f.shared, cfg, Naive)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range f.stream {
			if _, err := ter.Advance(r); err != nil {
				t.Fatal(err)
			}
			if _, err := naive.Advance(r); err != nil {
				t.Fatal(err)
			}
			// Compare live sets every few steps (and at the end).
			if i%10 == 9 || i == len(f.stream)-1 {
				tk, nk := ter.Results().Keys(), naive.Results().Keys()
				if len(tk) != len(nk) {
					t.Fatalf("seed %d step %d: TER-iDS has %d pairs, naive %d",
						seed, i, len(tk), len(nk))
				}
				for k := range nk {
					if !tk[k] {
						t.Fatalf("seed %d step %d: TER-iDS missed pair %v", seed, i, k)
					}
				}
			}
		}
	}
}

// TestBaselinesShareGroundTruthWithExhaustiveER verifies that Ij+GER (same
// imputer family, grid ER) equals naive too, and that CDD+ER trivially
// equals naive.
func TestBaselinesShareGroundTruthWithExhaustiveER(t *testing.T) {
	f := newFixture(t, 7, 40, 80, 0.3)
	cfg := testConfig()
	naive, _ := NewBaseline(f.shared, cfg, Naive)
	ij, _ := NewBaseline(f.shared, cfg, IjGER)
	cdd, _ := NewBaseline(f.shared, cfg, CDDER)
	nk := runAll(t, naive, f.stream)
	ik := runAll(t, ij, f.stream)
	ck := runAll(t, cdd, f.stream)
	if len(ik) != len(nk) {
		t.Fatalf("Ij+GER %d pairs, naive %d", len(ik), len(nk))
	}
	for k := range nk {
		if !ik[k] {
			t.Fatalf("Ij+GER missed %v", k)
		}
		if !ck[k] {
			t.Fatalf("CDD+ER missed %v", k)
		}
	}
	if len(ck) != len(nk) {
		t.Fatalf("CDD+ER %d pairs, naive %d", len(ck), len(nk))
	}
}

func TestWindowEvictionRemovesPairs(t *testing.T) {
	f := newFixture(t, 11, 40, 0, 0)
	cfg := testConfig()
	cfg.WindowSize = 3
	ter, err := NewProcessor(f.shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	dz := diseases[0] // diabetes: keyword-bearing
	// Two matching tuples on different streams.
	a := f.record(r, 0, 0, dz, 0)
	b := f.record(r, 1, 1, dz, 0)
	ter.Advance(a)
	ter.Advance(b)
	if !ter.Results().Has(a.RID, b.RID) {
		t.Fatal("expected the matching pair")
	}
	// Push 3 more tuples through stream 0: a expires.
	for i := 0; i < 3; i++ {
		ter.Advance(f.record(r, 0, int64(2+i), diseases[2], 0))
	}
	if ter.Results().Has(a.RID, b.RID) {
		t.Fatal("pair must be evicted once a expires")
	}
	if _, ok := ter.Grid().Get(a.RID); ok {
		t.Fatal("expired tuple must leave the grid")
	}
}

func TestSameStreamPairsExcluded(t *testing.T) {
	f := newFixture(t, 13, 40, 0, 0)
	ter, _ := NewProcessor(f.shared, testConfig())
	r := rand.New(rand.NewSource(5))
	dz := diseases[0]
	a := f.record(r, 0, 0, dz, 0)
	b := f.record(r, 0, 1, dz, 0) // same stream
	ter.Advance(a)
	pairs, _ := ter.Advance(b)
	if len(pairs) != 0 {
		t.Fatalf("same-stream tuples must not pair: %v", pairs)
	}
}

func TestTopicFiltering(t *testing.T) {
	// With keywords that never occur, no pairs may be emitted.
	f := newFixture(t, 17, 40, 60, 0.3)
	sh, err := Prepare(f.repo, DefaultPrepareConfig([]string{"nonexistentkeyword"}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Keywords = []string{"nonexistentkeyword"}
	ter, _ := NewProcessor(sh, cfg)
	keys := runAll(t, ter, f.stream)
	if len(keys) != 0 {
		t.Fatalf("no tuple carries the keyword, got %d pairs", len(keys))
	}
	st := ter.PruneStats()
	if st.Topic == 0 {
		t.Fatal("topic pruning must fire")
	}
	if st.Refined != 0 {
		t.Fatal("nothing should be refined")
	}
}

func TestEmptyKeywordSetMeansAllTopics(t *testing.T) {
	// K = domain of all keywords is modeled as the empty keyword set with
	// topic checks disabled... the paper models it as K = whole domain; we
	// verify a keyword present in every diagnosis behaves that way.
	f := newFixture(t, 19, 40, 40, 0.2)
	cfg := testConfig()
	ter, _ := NewProcessor(f.shared, cfg)
	naive, _ := NewBaseline(f.shared, cfg, Naive)
	tk := runAll(t, ter, f.stream)
	nk := runAll(t, naive, f.stream)
	if len(tk) != len(nk) {
		t.Fatalf("TER-iDS %d pairs, naive %d", len(tk), len(nk))
	}
}

func TestPruneStatsAccounting(t *testing.T) {
	f := newFixture(t, 23, 40, 100, 0.3)
	ter, _ := NewProcessor(f.shared, testConfig())
	runAll(t, ter, f.stream)
	st := ter.PruneStats()
	if st.Considered == 0 {
		t.Fatal("no pairs considered")
	}
	if st.Topic+st.SimUB+st.ProbUB+st.InstPair+st.Refined != st.Considered {
		t.Fatalf("pruning accounting leak: %+v", st)
	}
	_, _, _, _, total := st.Power()
	if total <= 0 || total > 100 {
		t.Fatalf("pruning power %v out of range", total)
	}
}

func TestBreakdownRecorded(t *testing.T) {
	f := newFixture(t, 29, 40, 60, 0.5)
	ter, _ := NewProcessor(f.shared, testConfig())
	runAll(t, ter, f.stream)
	b := ter.Breakdown()
	if b.ER <= 0 {
		t.Fatalf("ER cost missing: %+v", b)
	}
	if b.Impute <= 0 {
		t.Fatalf("imputation cost missing (stream has missing attrs): %+v", b)
	}
}

func TestForeignSchemaRejected(t *testing.T) {
	f := newFixture(t, 31, 40, 0, 0)
	ter, _ := NewProcessor(f.shared, testConfig())
	other := tuple.MustSchema("Gender", "Symptom", "Diagnosis", "Treatment")
	alien := tuple.MustRecord(other, "x", 0, 0, []string{"male", "fever", "flu", "rest"})
	if _, err := ter.Advance(alien); err == nil {
		t.Fatal("foreign schema must be rejected")
	}
	nv, _ := NewBaseline(f.shared, testConfig(), Naive)
	if _, err := nv.Advance(alien); err == nil {
		t.Fatal("baseline must also reject foreign schema")
	}
}

func TestAllBaselineKindsRun(t *testing.T) {
	f := newFixture(t, 37, 40, 50, 0.3)
	for _, kind := range []BaselineKind{IjGER, CDDER, DDER, ErER, ConER, Naive} {
		b, err := NewBaseline(f.shared, testConfig(), kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if b.Name() != kind.String() {
			t.Fatalf("name mismatch: %s vs %s", b.Name(), kind)
		}
		runAll(t, b, f.stream)
	}
	if _, err := NewBaseline(f.shared, testConfig(), BaselineKind(99)); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestDynamicRepositoryExtension(t *testing.T) {
	f := newFixture(t, 41, 30, 0, 0)
	sh := f.shared
	before := sh.DRIdx.Len()
	extra := tuple.MustRecord(testSchema, "dyn1", 0, 0,
		[]string{"male", "thirst weight loss vision", "diabetes mellitus", "insulin diet"})
	cfg := DefaultPrepareConfig([]string{"diabetes", "flu"})
	if err := sh.AddSamples(true, cfg.Detect, extra); err != nil {
		t.Fatal(err)
	}
	if sh.DRIdx.Len() != before+1 {
		t.Fatal("DR-index not extended")
	}
	if sh.Repo.Len() != 31 {
		t.Fatal("repository not extended")
	}
	// The processor still works after the refresh.
	ter, err := NewProcessor(sh, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	ter.Advance(f.record(r, 0, 0, diseases[0], 1))
	ter.Advance(f.record(r, 1, 1, diseases[0], 0))
}

func TestBaselineKindString(t *testing.T) {
	if IjGER.String() != "Ij+GER" || ConER.String() != "con+ER" || Naive.String() != "naive" {
		t.Fatal("BaselineKind strings wrong")
	}
	if BaselineKind(42).String() == "" {
		t.Fatal("unknown kind must render")
	}
}
