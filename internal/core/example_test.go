package core_test

import (
	"fmt"
	"log"

	"terids/internal/core"
	"terids/internal/repository"
	"terids/internal/tuple"
)

// Example runs the complete TER-iDS pipeline on a miniature health-forum
// workload: offline preparation over a repository, then online resolution
// of posts from two streams, with one post's diagnosis imputed.
func Example() {
	schema := tuple.MustSchema("Gender", "Symptom", "Diagnosis")
	mk := func(rid string, vals ...string) *tuple.Record {
		return tuple.MustRecord(schema, rid, 0, 0, vals)
	}
	// Historical posts: symptom variants of two diseases across genders,
	// enough pairs for the miner to detect symptom→diagnosis rules.
	var hist []*tuple.Record
	variants := map[string][]string{
		"diabetes": {
			"thirst weight loss blurred vision",
			"thirst weight loss vision",
			"thirst weight blurred vision",
			"weight loss blurred vision",
		},
		"flu": {
			"fever cough aches fatigue",
			"fever cough aches",
			"fever cough fatigue",
			"fever aches fatigue",
		},
	}
	i := 0
	for _, diag := range []string{"diabetes", "flu"} {
		for _, sym := range variants[diag] {
			for _, gender := range []string{"male", "female"} {
				i++
				hist = append(hist, mk(fmt.Sprintf("h%02d", i), gender, sym, diag))
			}
		}
	}
	repo, err := repository.Build(schema, hist)
	if err != nil {
		log.Fatal(err)
	}

	sh, err := core.Prepare(repo, core.DefaultPrepareConfig([]string{"diabetes"}))
	if err != nil {
		log.Fatal(err)
	}
	proc, err := core.NewProcessor(sh, core.Config{
		Keywords:   []string{"diabetes"},
		Gamma:      1.8,
		Alpha:      0.3,
		WindowSize: 4,
		Streams:    2,
	})
	if err != nil {
		log.Fatal(err)
	}

	arrivals := []*tuple.Record{
		tuple.MustRecord(schema, "a1", 0, 0, []string{"male", "thirst weight loss blurred vision", "diabetes"}),
		tuple.MustRecord(schema, "b1", 1, 1, []string{"male", "fever cough aches", "flu"}),
		// b2's diagnosis is missing and is imputed from the repository.
		tuple.MustRecord(schema, "b2", 1, 2, []string{"male", "thirst weight loss vision", "-"}),
	}
	for _, r := range arrivals {
		pairs, err := proc.Advance(r)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range pairs {
			fmt.Printf("match: %s ~ %s\n", p.A.RID, p.B.RID)
		}
	}
	fmt.Printf("live pairs: %d\n", proc.Results().Len())
	// Output:
	// match: a1 ~ b2
	// live pairs: 1
}
