package core

import (
	"fmt"

	"terids/internal/grid"
	"terids/internal/metrics"
	"terids/internal/stream"
	"terids/internal/tuple"
)

// Processor is the TER-iDS operator of Algorithm 2: it maintains the
// ER-grid over the sliding windows, imputes arriving incomplete tuples via
// the CDD-index/DR-index join, prunes candidate pairs with Theorems 4.1-4.4,
// and refines survivors into the entity set ES. It is the single-threaded
// driver over the per-shard Step API; the sharded engine drives the same
// Step across grid partitions.
type Processor struct {
	step    *Step
	windows *stream.MultiWindow
	// timeWins replaces windows in time-based mode (cfg.TimeSpan > 0).
	timeWins []*stream.TimeWindow
	grid     *grid.Grid
	results  *ResultSet

	// seq counts arrivals; seqOf maps each resident RID to its 0-based
	// arrival sequence. Together they make the processor checkpointable at
	// an exact watermark (and its checkpoints loadable by the sharded
	// engine, whose merge order is keyed on arrival sequences).
	seq   int64
	seqOf map[string]int64

	breakdown metrics.Breakdown
	pruneStat metrics.PruneStats
}

// NewProcessor builds the TER-iDS processor over pre-computed Shared state.
func NewProcessor(sh *Shared, cfg Config) (*Processor, error) {
	step, err := NewStep(sh, cfg)
	if err != nil {
		return nil, err
	}
	cfg = step.Config()
	p := &Processor{
		step:    step,
		results: NewResultSet(),
		seqOf:   make(map[string]int64),
	}
	if cfg.TimeSpan > 0 {
		p.timeWins = make([]*stream.TimeWindow, cfg.Streams)
		for i := range p.timeWins {
			tw, err := stream.NewTimeWindow(cfg.TimeSpan)
			if err != nil {
				return nil, err
			}
			p.timeWins[i] = tw
		}
	} else {
		mw, err := stream.NewMultiWindow(cfg.Streams, cfg.WindowSize)
		if err != nil {
			return nil, err
		}
		p.windows = mw
	}
	g, err := step.NewGrid()
	if err != nil {
		return nil, err
	}
	p.grid = g
	return p, nil
}

// pushWindow routes an arrival into the configured window model and
// returns the tuples it expires.
func (p *Processor) pushWindow(r *tuple.Record) ([]*tuple.Record, error) {
	if p.timeWins != nil {
		if r.Stream < 0 || r.Stream >= len(p.timeWins) {
			return nil, fmt.Errorf("core: record %s has stream %d, have %d streams",
				r.RID, r.Stream, len(p.timeWins))
		}
		tw := p.timeWins[r.Stream]
		if err := tw.Push(r); err != nil {
			return nil, err
		}
		return tw.Advance(r.Seq), nil
	}
	expired, err := p.windows.Push(r)
	if err != nil {
		return nil, err
	}
	if expired == nil {
		return nil, nil
	}
	return []*tuple.Record{expired}, nil
}

// Name implements Resolver.
func (p *Processor) Name() string { return "TER-iDS" }

// Results implements Resolver.
func (p *Processor) Results() *ResultSet { return p.results }

// Breakdown implements Resolver.
func (p *Processor) Breakdown() metrics.Breakdown { return p.breakdown }

// PruneStats implements Resolver.
func (p *Processor) PruneStats() metrics.PruneStats { return p.pruneStat }

// Grid exposes the synopsis (tests and diagnostics).
func (p *Processor) Grid() *grid.Grid { return p.grid }

// Advance implements Resolver: one arriving tuple r_t.
func (p *Processor) Advance(r *tuple.Record) ([]Pair, error) {
	sh := p.step.Shared()
	if r.Schema() != sh.Schema {
		return nil, fmt.Errorf("core: record %s uses a foreign schema", r.RID)
	}
	// Expiry (Algorithm 2 lines 2-7): expired tuples of r's stream leave
	// the window, the grid, and the entity set.
	expired, err := p.pushWindow(r)
	if err != nil {
		return nil, err
	}
	for _, e := range expired {
		p.grid.Remove(e.RID)
		p.results.RemoveRID(e.RID)
		delete(p.seqOf, e.RID)
	}

	// Imputation via the index join (line 9).
	im, bd := p.step.Impute(r)
	p.breakdown.Add(bd)

	var sw metrics.Stopwatch
	sw.Start()
	prof := p.step.Profile(im)

	// ER over the grid with the pruning cascade (lines 14-25).
	newPairs := p.step.Resolve(p.grid, prof, &p.pruneStat)

	// Insert r^p into the grid (lines 11-13).
	if err := p.grid.Insert(&grid.Entry{Rec: r, Prof: prof}); err != nil {
		return nil, err
	}
	p.seqOf[r.RID] = p.seq
	p.seq++
	p.breakdown.ER += sw.Lap()

	for _, pair := range newPairs {
		p.results.Add(pair)
	}
	return newPairs, nil
}
