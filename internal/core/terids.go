package core

import (
	"fmt"
	"slices"

	"terids/internal/grid"
	"terids/internal/impute"
	"terids/internal/metrics"
	"terids/internal/prune"
	"terids/internal/rules"
	"terids/internal/stream"
	"terids/internal/tuple"
)

// Processor is the TER-iDS operator of Algorithm 2: it maintains the
// ER-grid over the sliding windows, imputes arriving incomplete tuples via
// the CDD-index/DR-index join, prunes candidate pairs with Theorems 4.1-4.4,
// and refines survivors into the entity set ES.
type Processor struct {
	sh      *Shared
	cfg     Config
	windows *stream.MultiWindow
	// timeWins replaces windows in time-based mode (cfg.TimeSpan > 0).
	timeWins []*stream.TimeWindow
	grid     *grid.Grid
	results  *ResultSet

	breakdown metrics.Breakdown
	pruneStat metrics.PruneStats
}

// NewProcessor builds the TER-iDS processor over pre-computed Shared state.
func NewProcessor(sh *Shared, cfg Config) (*Processor, error) {
	if err := cfg.Validate(sh.Schema.D()); err != nil {
		return nil, err
	}
	p := &Processor{
		sh:      sh,
		cfg:     cfg,
		results: NewResultSet(),
	}
	if cfg.TimeSpan > 0 {
		p.timeWins = make([]*stream.TimeWindow, cfg.Streams)
		for i := range p.timeWins {
			tw, err := stream.NewTimeWindow(cfg.TimeSpan)
			if err != nil {
				return nil, err
			}
			p.timeWins[i] = tw
		}
	} else {
		mw, err := stream.NewMultiWindow(cfg.Streams, cfg.WindowSize)
		if err != nil {
			return nil, err
		}
		p.windows = mw
	}
	nPiv := 1 + sh.Sel.MaxAux()
	g, err := grid.New(sh.Schema.D(), cfg.CellsPerDim, nPiv, len(sh.Keywords))
	if err != nil {
		return nil, err
	}
	p.grid = g
	return p, nil
}

// pushWindow routes an arrival into the configured window model and
// returns the tuples it expires.
func (p *Processor) pushWindow(r *tuple.Record) ([]*tuple.Record, error) {
	if p.timeWins != nil {
		if r.Stream < 0 || r.Stream >= len(p.timeWins) {
			return nil, fmt.Errorf("core: record %s has stream %d, have %d streams",
				r.RID, r.Stream, len(p.timeWins))
		}
		tw := p.timeWins[r.Stream]
		if err := tw.Push(r); err != nil {
			return nil, err
		}
		return tw.Advance(r.Seq), nil
	}
	expired, err := p.windows.Push(r)
	if err != nil {
		return nil, err
	}
	if expired == nil {
		return nil, nil
	}
	return []*tuple.Record{expired}, nil
}

// Name implements Resolver.
func (p *Processor) Name() string { return "TER-iDS" }

// Results implements Resolver.
func (p *Processor) Results() *ResultSet { return p.results }

// Breakdown implements Resolver.
func (p *Processor) Breakdown() metrics.Breakdown { return p.breakdown }

// PruneStats implements Resolver.
func (p *Processor) PruneStats() metrics.PruneStats { return p.pruneStat }

// Grid exposes the synopsis (tests and diagnostics).
func (p *Processor) Grid() *grid.Grid { return p.grid }

// Advance implements Resolver: one arriving tuple r_t.
func (p *Processor) Advance(r *tuple.Record) ([]Pair, error) {
	if r.Schema() != p.sh.Schema {
		return nil, fmt.Errorf("core: record %s uses a foreign schema", r.RID)
	}
	// Expiry (Algorithm 2 lines 2-7): expired tuples of r's stream leave
	// the window, the grid, and the entity set.
	expired, err := p.pushWindow(r)
	if err != nil {
		return nil, err
	}
	for _, e := range expired {
		p.grid.Remove(e.RID)
		p.results.RemoveRID(e.RID)
	}

	// Imputation via the index join (line 9).
	im := p.imputeIndexed(r)

	var sw metrics.Stopwatch
	sw.Start()
	prof := prune.BuildProfile(im, p.sh.Sel, p.sh.Keywords)

	// ER over the grid with the pruning cascade (lines 14-25).
	newPairs := p.resolve(prof)

	// Insert r^p into the grid (lines 11-13).
	if err := p.grid.Insert(&grid.Entry{Rec: r, Prof: prof}); err != nil {
		return nil, err
	}
	p.breakdown.ER += sw.Lap()

	for _, pair := range newPairs {
		p.results.Add(pair)
	}
	return newPairs, nil
}

// imputeIndexed is the 3-way join's imputation side: CDD-index rule
// selection plus DR-index sample retrieval, accumulating candidates through
// the pivot-accelerated domain index.
func (p *Processor) imputeIndexed(r *tuple.Record) *tuple.Imputed {
	if r.IsComplete() {
		return tuple.FromComplete(r)
	}
	im := &tuple.Imputed{R: r, Dists: make([]tuple.AttrDist, r.D())}
	var sw metrics.Stopwatch
	for j := 0; j < r.D(); j++ {
		if !r.IsMissing(j) {
			im.Dists[j] = tuple.Point(r.Value(j), r.Tokens(j))
			continue
		}
		sw.Start()
		var applicable []*rules.Rule
		p.sh.CDDIdx[j].Applicable(r, func(rule *rules.Rule) bool {
			applicable = append(applicable, rule)
			return true
		})
		p.breakdown.Select += sw.Lap()

		dom := p.sh.Repo.Domain(j)
		acc := impute.NewAccumulator(dom, p.sh.DomIdx[j])
		p.sh.DRIdx.MatchingSamplesMulti(r, applicable, func(ri int, s *tuple.Record) bool {
			acc.AddSample(dom.Lookup(s.Value(j)), applicable[ri].DepMin, applicable[ri].DepMax)
			return true
		})
		im.Dists[j] = acc.Distribution(p.cfg.Impute)
		p.breakdown.Impute += sw.Lap()
	}
	return im
}

// resolve runs the pruning cascade of Section 4 over the grid candidates of
// q and returns the matching pairs.
func (p *Processor) resolve(q *prune.Profile) []Pair {
	var out []Pair
	var survivors []*grid.Entry
	p.grid.Candidates(q, grid.Query{
		Gamma:        p.cfg.Gamma,
		DisableTopic: p.cfg.Ablate.Topic,
		DisableSim:   p.cfg.Ablate.Sim,
	}, func(e *grid.Entry) bool {
		survivors = append(survivors, e)
		return true
	})
	// Deterministic order via insertion ordinals (cheap int sort).
	slices.SortFunc(survivors, func(a, b *grid.Entry) int {
		return int(a.Ord() - b.Ord())
	})

	// Exact pruning attribution (Figure 4): every live other-stream tuple
	// forms one candidate pair with q. Pairs eliminated at cell level are
	// attributed to the strategy that would have eliminated them. This
	// pass costs O(live tuples), so it is gated behind TrackPruning.
	if p.cfg.TrackPruning {
		live := make(map[int64]struct{}, len(survivors))
		for _, e := range survivors {
			live[e.Ord()] = struct{}{}
		}
		p.grid.Each(func(e *grid.Entry) bool {
			if e.Rec.Stream == q.Im.R.Stream {
				return true
			}
			p.pruneStat.Considered++
			if _, ok := live[e.Ord()]; ok {
				return true
			}
			if prune.TopicPrune(q, e.Prof) {
				p.pruneStat.Topic++
			} else {
				p.pruneStat.SimUB++
			}
			return true
		})
	} else {
		p.pruneStat.Considered += int64(len(survivors))
	}

	for _, e := range survivors {
		// Theorem 4.1.
		if !p.cfg.Ablate.Topic && prune.TopicPrune(q, e.Prof) {
			p.pruneStat.Topic++
			continue
		}
		// Theorem 4.2 (size + pivot bounds).
		if !p.cfg.Ablate.Sim && prune.SimPrune(q.Bounds, e.Prof.Bounds, p.cfg.Gamma) {
			p.pruneStat.SimUB++
			continue
		}
		// Theorem 4.3 (Paley-Zygmund).
		if !p.cfg.Ablate.Prob && prune.ProbPrune(q, e.Prof, p.cfg.Gamma, p.cfg.Alpha) {
			p.pruneStat.ProbUB++
			continue
		}
		if p.cfg.Ablate.InstPair {
			// Ablated Theorem 4.4: full Equation 2.
			prob := prune.ExactProbability(q, e.Prof, p.cfg.Gamma)
			p.pruneStat.Refined++
			if prob > p.cfg.Alpha {
				out = append(out, newPair(q.Im.R, e.Rec, prob))
			}
			continue
		}
		// Theorem 4.4 inside the refinement.
		res := prune.Refine(q, e.Prof, p.cfg.Gamma, p.cfg.Alpha)
		if res.PrunedEarly {
			p.pruneStat.InstPair++
			continue
		}
		p.pruneStat.Refined++
		if res.Match {
			out = append(out, newPair(q.Im.R, e.Rec, res.Prob))
		}
	}
	return out
}
