package core

import (
	"math/rand"
	"testing"
)

// TestTimeBasedProcessor exercises the time-based window extension: tuples
// expire by timestamp distance rather than count, several tuples may share
// a timestamp, and pairs evaporate when either side ages out.
func TestTimeBasedProcessor(t *testing.T) {
	f := newFixture(t, 81, 40, 0, 0)
	cfg := testConfig()
	cfg.TimeSpan = 5
	ter, err := NewProcessor(f.shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	dz := diseases[0] // diabetes: keyword-bearing

	a := f.record(r, 0, 10, dz, 0)
	b := f.record(r, 1, 11, dz, 0)
	if _, err := ter.Advance(a); err != nil {
		t.Fatal(err)
	}
	if _, err := ter.Advance(b); err != nil {
		t.Fatal(err)
	}
	if !ter.Results().Has(a.RID, b.RID) {
		t.Fatal("expected the matching pair inside the time window")
	}

	// Advance stream 0's clock beyond the span: a (Seq 10) must expire
	// once a tuple with Seq > 15 arrives on its stream.
	late := f.record(r, 0, 16, diseases[2], 0)
	if _, err := ter.Advance(late); err != nil {
		t.Fatal(err)
	}
	if ter.Results().Has(a.RID, b.RID) {
		t.Fatal("pair must be evicted after a ages out of the time window")
	}
	if _, ok := ter.Grid().Get(a.RID); ok {
		t.Fatal("expired tuple must leave the grid")
	}
	// b is governed by its own stream's clock and must still be resident.
	if _, ok := ter.Grid().Get(b.RID); !ok {
		t.Fatal("b must still be live on stream 1")
	}
}

// TestTimeBasedMatchesCountBasedWhenEquivalent: with one tuple per
// timestamp per stream and span == count, both window models hold the same
// tuples, so the result sets must agree.
func TestTimeBasedMatchesCountBasedWhenEquivalent(t *testing.T) {
	f := newFixture(t, 83, 40, 80, 0.3)
	// Per-stream consecutive timestamps: re-sequence arrivals per stream.
	perStream := map[int]int64{}
	for _, r := range f.stream {
		r.Seq = perStream[r.Stream]
		perStream[r.Stream]++
	}
	count := testConfig()
	count.WindowSize = 10
	timed := testConfig()
	timed.TimeSpan = 10

	pc, err := NewProcessor(f.shared, count)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewProcessor(f.shared, timed)
	if err != nil {
		t.Fatal(err)
	}
	ck := runAll(t, pc, f.stream)
	tk := runAll(t, pt, f.stream)
	if len(ck) != len(tk) {
		t.Fatalf("count-based %d pairs, time-based %d", len(ck), len(tk))
	}
	for k := range ck {
		if !tk[k] {
			t.Fatalf("time-based missed %v", k)
		}
	}
}

func TestTimeBasedRejectsBadStream(t *testing.T) {
	f := newFixture(t, 85, 40, 0, 0)
	cfg := testConfig()
	cfg.TimeSpan = 5
	ter, _ := NewProcessor(f.shared, cfg)
	r := rand.New(rand.NewSource(2))
	bad := f.record(r, 0, 0, diseases[0], 0)
	bad.Stream = 9
	if _, err := ter.Advance(bad); err == nil {
		t.Fatal("out-of-range stream must error")
	}
}
