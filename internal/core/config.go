// Package core implements the TER-iDS operator (Algorithms 1 and 2): online
// imputation of incomplete tuples and topic-aware entity resolution over
// sliding windows of n data streams, via a join over the CDD-index,
// DR-index, and ER-grid — plus the five baselines of Section 6.1 and the
// straightforward reference method of Section 2.3.
package core

import (
	"fmt"
	"sort"

	"terids/internal/impute"
	"terids/internal/metrics"
	"terids/internal/tuple"
)

// Config carries the TER-iDS problem parameters (problem statement,
// Section 2.3) and implementation knobs.
type Config struct {
	// Keywords is the query topic keyword set K. Empty means "all topics"
	// (every tuple is treated as topic-relevant, per the discussion in
	// Section 2.3).
	Keywords []string
	// Gamma is the similarity threshold γ ∈ (0, d).
	Gamma float64
	// Alpha is the probabilistic threshold α ∈ [0, 1).
	Alpha float64
	// WindowSize is w, the per-stream count-based sliding window size.
	WindowSize int
	// TimeSpan, when > 0, switches the processor to the time-based window
	// of Definition 2's extension: a tuple lives while its Seq is within
	// TimeSpan of the latest arrival on its stream (several tuples may
	// share a timestamp). WindowSize is ignored in that mode.
	TimeSpan int64
	// Streams is n, the number of incomplete data streams.
	Streams int
	// CellsPerDim is the ER-grid resolution (cells along each dimension).
	CellsPerDim int
	// Impute bounds the per-attribute candidate lists.
	Impute impute.Config
	// Ablate disables individual pruning strategies (for the ablation
	// benchmarks). Results are unchanged — pruning is safe — only cost
	// moves.
	Ablate AblateConfig
	// TrackPruning enables exact per-pair pruning attribution (Figure 4).
	// It adds an O(live tuples) bookkeeping pass per arrival, so
	// efficiency experiments leave it off; survivor-level counters are
	// always collected.
	TrackPruning bool
}

// AblateConfig switches off pruning strategies one by one.
type AblateConfig struct {
	// Topic disables Theorem 4.1 (tuple- and cell-level).
	Topic bool
	// Sim disables Theorem 4.2 (tuple- and cell-level).
	Sim bool
	// Prob disables Theorem 4.3.
	Prob bool
	// InstPair disables Theorem 4.4 (full Equation 2 is computed).
	InstPair bool
}

// Validate checks parameter ranges against the schema dimensionality.
func (c *Config) Validate(d int) error {
	if c.Gamma <= 0 || c.Gamma >= float64(d) {
		return fmt.Errorf("core: gamma %v outside (0, %d)", c.Gamma, d)
	}
	if c.Alpha < 0 || c.Alpha >= 1 {
		return fmt.Errorf("core: alpha %v outside [0, 1)", c.Alpha)
	}
	if c.WindowSize < 1 {
		return fmt.Errorf("core: window size %d < 1", c.WindowSize)
	}
	if c.Streams < 2 {
		return fmt.Errorf("core: need >= 2 streams, got %d", c.Streams)
	}
	if c.CellsPerDim == 0 {
		c.CellsPerDim = 5
	}
	if c.CellsPerDim < 1 {
		return fmt.Errorf("core: cells per dim %d < 1", c.CellsPerDim)
	}
	if c.Impute.MaxCandidates == 0 {
		c.Impute = impute.DefaultConfig()
	}
	return nil
}

// Pair is one TER-iDS result: two tuples from different streams
// representing the same entity with probability > α.
type Pair struct {
	A, B *tuple.Record // normalized: A.RID < B.RID
	Prob float64
}

// Key returns the normalized pair key.
func (p Pair) Key() metrics.PairKey { return metrics.Key(p.A.RID, p.B.RID) }

// newPair normalizes tuple order.
func newPair(a, b *tuple.Record, prob float64) Pair {
	if a.RID > b.RID {
		a, b = b, a
	}
	return Pair{A: a, B: b, Prob: prob}
}

// ResultSet is the entity set ES of Algorithm 1: the live matching pairs
// over the current windows, with per-RID bookkeeping so expired tuples'
// pairs can be evicted.
type ResultSet struct {
	pairs map[metrics.PairKey]Pair
	byRID map[string]map[metrics.PairKey]struct{}
}

// NewResultSet returns an empty entity set.
func NewResultSet() *ResultSet {
	return &ResultSet{
		pairs: make(map[metrics.PairKey]Pair),
		byRID: make(map[string]map[metrics.PairKey]struct{}),
	}
}

// Add inserts (or refreshes) a pair.
func (rs *ResultSet) Add(p Pair) {
	k := p.Key()
	rs.pairs[k] = p
	for _, rid := range []string{p.A.RID, p.B.RID} {
		m, ok := rs.byRID[rid]
		if !ok {
			m = make(map[metrics.PairKey]struct{})
			rs.byRID[rid] = m
		}
		m[k] = struct{}{}
	}
}

// RemoveRID drops every pair involving rid (window expiry, Algorithm 2
// lines 4-5) and returns how many pairs were removed.
func (rs *ResultSet) RemoveRID(rid string) int {
	keys, ok := rs.byRID[rid]
	if !ok {
		return 0
	}
	n := 0
	for k := range keys {
		p, live := rs.pairs[k]
		if !live {
			continue
		}
		delete(rs.pairs, k)
		n++
		other := p.A.RID
		if other == rid {
			other = p.B.RID
		}
		if m, ok := rs.byRID[other]; ok {
			delete(m, k)
			if len(m) == 0 {
				delete(rs.byRID, other)
			}
		}
	}
	delete(rs.byRID, rid)
	return n
}

// Len returns the number of live pairs.
func (rs *ResultSet) Len() int { return len(rs.pairs) }

// Has reports whether the pair (a, b) is in the set.
func (rs *ResultSet) Has(a, b string) bool {
	_, ok := rs.pairs[metrics.Key(a, b)]
	return ok
}

// Pairs returns the live pairs sorted by key for deterministic output.
func (rs *ResultSet) Pairs() []Pair {
	out := make([]Pair, 0, len(rs.pairs))
	for _, p := range rs.pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A.RID != out[j].A.RID {
			return out[i].A.RID < out[j].A.RID
		}
		return out[i].B.RID < out[j].B.RID
	})
	return out
}

// Keys returns the live pair keys as a set (for metrics.Compare).
func (rs *ResultSet) Keys() map[metrics.PairKey]bool {
	out := make(map[metrics.PairKey]bool, len(rs.pairs))
	for k := range rs.pairs {
		out[k] = true
	}
	return out
}

// Resolver is the common contract of TER-iDS and the baselines: feed
// records in arrival order with Advance, read the live entity set with
// Results.
type Resolver interface {
	// Name identifies the method ("TER-iDS", "Ij+GER", "CDD+ER", "DD+ER",
	// "er+ER", "con+ER", "naive").
	Name() string
	// Advance processes one arriving record: evicts its stream's expired
	// tuple, imputes, resolves, and updates the entity set. It returns the
	// pairs newly added for this record.
	Advance(r *tuple.Record) ([]Pair, error)
	// Results returns the live entity set ES.
	Results() *ResultSet
	// Breakdown returns accumulated online costs (Figure 6 phases).
	Breakdown() metrics.Breakdown
	// PruneStats returns accumulated pruning counters (Figure 4); zero for
	// methods that do not prune.
	PruneStats() metrics.PruneStats
}
