package core

import (
	"fmt"
	"testing"
)

// TestEquivalenceAcrossParameterGrid re-asserts TER-iDS == straightforward
// method over a grid of thresholds and window sizes — the regimes where
// pruning behaves very differently (everything pruned vs nothing pruned).
func TestEquivalenceAcrossParameterGrid(t *testing.T) {
	f := newFixture(t, 71, 40, 90, 0.4)
	for _, alpha := range []float64{0.05, 0.45, 0.85} {
		for _, gamma := range []float64{1.2, 2.0, 3.2} {
			for _, w := range []int{5, 25} {
				cfg := testConfig()
				cfg.Alpha = alpha
				cfg.Gamma = gamma
				cfg.WindowSize = w
				name := fmt.Sprintf("alpha=%v,gamma=%v,w=%d", alpha, gamma, w)
				ter, err := NewProcessor(f.shared, cfg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				naive, err := NewBaseline(f.shared, cfg, Naive)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				tk := runAll(t, ter, f.stream)
				nk := runAll(t, naive, f.stream)
				if len(tk) != len(nk) {
					t.Fatalf("%s: TER-iDS %d pairs, naive %d", name, len(tk), len(nk))
				}
				for k := range nk {
					if !tk[k] {
						t.Fatalf("%s: TER-iDS missed %v", name, k)
					}
				}
			}
		}
	}
}

// TestAdvanceReturnedPairsMatchResultSet ensures the incremental pairs
// returned by Advance exactly reconstruct the live result set (modulo
// evictions).
func TestAdvanceReturnedPairsMatchResultSet(t *testing.T) {
	f := newFixture(t, 73, 40, 80, 0.3)
	cfg := testConfig()
	cfg.WindowSize = 15
	ter, _ := NewProcessor(f.shared, cfg)
	type liveRec struct{ a, b string }
	incremental := map[liveRec]bool{}
	evicted := map[string]bool{}
	window := map[int][]string{}
	for _, r := range f.stream {
		pairs, err := ter.Advance(r)
		if err != nil {
			t.Fatal(err)
		}
		// Track manual window eviction.
		window[r.Stream] = append(window[r.Stream], r.RID)
		if len(window[r.Stream]) > cfg.WindowSize {
			evicted[window[r.Stream][0]] = true
			window[r.Stream] = window[r.Stream][1:]
		}
		for _, p := range pairs {
			incremental[liveRec{p.A.RID, p.B.RID}] = true
		}
	}
	// The live set must equal the incremental pairs minus those involving
	// evicted tuples.
	want := map[liveRec]bool{}
	for p := range incremental {
		if !evicted[p.a] && !evicted[p.b] {
			want[p] = true
		}
	}
	got := map[liveRec]bool{}
	for _, p := range ter.Results().Pairs() {
		got[liveRec{p.A.RID, p.B.RID}] = true
	}
	if len(got) != len(want) {
		t.Fatalf("live set %d pairs, reconstruction %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("reconstruction missing %v", p)
		}
	}
}
