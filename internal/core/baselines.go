package core

import (
	"fmt"
	"sort"

	"terids/internal/grid"
	"terids/internal/impute"
	"terids/internal/metrics"
	"terids/internal/prune"
	"terids/internal/rules"
	"terids/internal/stream"
	"terids/internal/tuple"
)

// BaselineKind selects one of the Section 6.1 competitors.
type BaselineKind int

// The five baselines plus the straightforward reference method.
const (
	// IjGER imputes via CDD rules with the CDD-index but scans R for
	// samples, then resolves through an ER-grid (indexes used, no 3-way
	// join).
	IjGER BaselineKind = iota
	// CDDER imputes via CDD rules without any index, then resolves by
	// scanning the whole window.
	CDDER
	// DDER imputes via classic DD rules (cumulative intervals).
	DDER
	// ErER imputes via editing rules only.
	ErER
	// ConER imputes from the stream window itself (constraint-based).
	ConER
	// Naive is the straightforward method of Section 2.3: unindexed CDD
	// imputation plus exhaustive exact ER. Its result set is the ground
	// truth the optimized methods must reproduce.
	Naive
)

// String implements fmt.Stringer.
func (k BaselineKind) String() string {
	switch k {
	case IjGER:
		return "Ij+GER"
	case CDDER:
		return "CDD+ER"
	case DDER:
		return "DD+ER"
	case ErER:
		return "er+ER"
	case ConER:
		return "con+ER"
	case Naive:
		return "naive"
	default:
		return fmt.Sprintf("BaselineKind(%d)", int(k))
	}
}

// Baseline is a Section 6.1 competitor: a pluggable imputer followed by
// either a window-scan ER or (for Ij+GER) a grid-backed ER.
type Baseline struct {
	kind    BaselineKind
	sh      *Shared
	cfg     Config
	imputer impute.Imputer
	windows *stream.MultiWindow
	// profiles holds the imputed profile of every live tuple.
	profiles map[string]*prune.Profile
	// order keeps live RIDs per stream for deterministic scans.
	order   [][]string
	g       *grid.Grid // Ij+GER only
	results *ResultSet

	breakdown metrics.Breakdown
	pruneStat metrics.PruneStats
}

// NewBaseline constructs a competitor over the same Shared offline state as
// the TER-iDS processor.
func NewBaseline(sh *Shared, cfg Config, kind BaselineKind) (*Baseline, error) {
	if err := cfg.Validate(sh.Schema.D()); err != nil {
		return nil, err
	}
	mw, err := stream.NewMultiWindow(cfg.Streams, cfg.WindowSize)
	if err != nil {
		return nil, err
	}
	b := &Baseline{
		kind:     kind,
		sh:       sh,
		cfg:      cfg,
		windows:  mw,
		profiles: make(map[string]*prune.Profile),
		order:    make([][]string, cfg.Streams),
		results:  NewResultSet(),
	}
	switch kind {
	case IjGER:
		nPiv := 1 + sh.Sel.MaxAux()
		g, err := grid.New(sh.Schema.D(), cfg.CellsPerDim, nPiv, len(sh.Keywords))
		if err != nil {
			return nil, err
		}
		b.g = g
		b.imputer = newIndexSelectedImputer(sh, cfg, &b.breakdown)
	case CDDER, Naive:
		b.imputer = impute.NewRuleImputer(kind.String(), sh.Repo, sh.Rules, cfg.Impute).
			WithBreakdown(&b.breakdown)
	case DDER:
		b.imputer = impute.NewRuleImputer("DD", sh.Repo, sh.DDRules, cfg.Impute).
			WithBreakdown(&b.breakdown)
	case ErER:
		b.imputer = impute.NewRuleImputer("er", sh.Repo, sh.EdRules, cfg.Impute).
			WithBreakdown(&b.breakdown)
	case ConER:
		b.imputer = impute.NewStreamImputer(b.windowSnapshot, cfg.Impute)
	default:
		return nil, fmt.Errorf("core: unknown baseline kind %d", kind)
	}
	return b, nil
}

func (b *Baseline) windowSnapshot() []*tuple.Record {
	var out []*tuple.Record
	b.windows.Each(func(r *tuple.Record) bool {
		out = append(out, r)
		return true
	})
	return out
}

// Name implements Resolver.
func (b *Baseline) Name() string { return b.kind.String() }

// Results implements Resolver.
func (b *Baseline) Results() *ResultSet { return b.results }

// Breakdown implements Resolver.
func (b *Baseline) Breakdown() metrics.Breakdown { return b.breakdown }

// PruneStats implements Resolver (non-zero only for Ij+GER, which prunes
// through its grid).
func (b *Baseline) PruneStats() metrics.PruneStats { return b.pruneStat }

// Advance implements Resolver.
func (b *Baseline) Advance(r *tuple.Record) ([]Pair, error) {
	if r.Schema() != b.sh.Schema {
		return nil, fmt.Errorf("core: record %s uses a foreign schema", r.RID)
	}
	expired, err := b.windows.Push(r)
	if err != nil {
		return nil, err
	}
	if expired != nil {
		delete(b.profiles, expired.RID)
		b.dropFromOrder(expired)
		if b.g != nil {
			b.g.Remove(expired.RID)
		}
		b.results.RemoveRID(expired.RID)
	}

	var sw metrics.Stopwatch
	sw.Start()
	im := b.imputer.Impute(r)
	if b.kind == ConER {
		// The stream imputer cannot split select/impute phases itself.
		b.breakdown.Impute += sw.Lap()
	}
	sw.Start()
	prof := prune.BuildProfile(im, b.sh.Sel, b.sh.Keywords)

	var pairs []Pair
	if b.g != nil {
		pairs = b.resolveGrid(prof)
		if err := b.g.Insert(&grid.Entry{Rec: r, Prof: prof}); err != nil {
			return nil, err
		}
	} else {
		pairs = b.resolveScan(prof)
	}
	b.breakdown.ER += sw.Lap()

	b.profiles[r.RID] = prof
	b.order[r.Stream] = append(b.order[r.Stream], r.RID)
	for _, p := range pairs {
		b.results.Add(p)
	}
	return pairs, nil
}

func (b *Baseline) dropFromOrder(r *tuple.Record) {
	lst := b.order[r.Stream]
	for i, rid := range lst {
		if rid == r.RID {
			b.order[r.Stream] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

// resolveScan is the unindexed ER of the non-topic-aware baselines: every
// live other-stream tuple is checked with the exact Equation 2 probability
// over ALL instance pairs (full ER; topic filtering only decides what is
// reported, not what is computed) — the cost profile the paper attributes
// to CDD+ER, DD+ER, er+ER, and con+ER.
func (b *Baseline) resolveScan(q *prune.Profile) []Pair {
	var out []Pair
	qStream := q.Im.R.Stream
	for s := 0; s < b.cfg.Streams; s++ {
		if s == qStream {
			continue
		}
		for _, rid := range b.order[s] {
			prof := b.profiles[rid]
			p := prune.ExactProbabilityFullER(q, prof, b.cfg.Gamma)
			if p > b.cfg.Alpha {
				out = append(out, newPair(q.Im.R, prof.Im.R, p))
			}
		}
	}
	return out
}

// resolveGrid is Ij+GER's ER: grid candidates plus the pruning cascade,
// identical to the TER-iDS refinement.
func (b *Baseline) resolveGrid(q *prune.Profile) []Pair {
	var out []Pair
	var survivors []*grid.Entry
	b.g.Candidates(q, grid.Query{Gamma: b.cfg.Gamma}, func(e *grid.Entry) bool {
		survivors = append(survivors, e)
		return true
	})
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].Rec.RID < survivors[j].Rec.RID })
	for _, e := range survivors {
		b.pruneStat.Considered++
		if prune.TopicPrune(q, e.Prof) {
			b.pruneStat.Topic++
			continue
		}
		if prune.SimPrune(q.Bounds, e.Prof.Bounds, b.cfg.Gamma) {
			b.pruneStat.SimUB++
			continue
		}
		if prune.ProbPrune(q, e.Prof, b.cfg.Gamma, b.cfg.Alpha) {
			b.pruneStat.ProbUB++
			continue
		}
		res := prune.Refine(q, e.Prof, b.cfg.Gamma, b.cfg.Alpha)
		if res.PrunedEarly {
			b.pruneStat.InstPair++
			continue
		}
		b.pruneStat.Refined++
		if res.Match {
			out = append(out, newPair(q.Im.R, e.Rec, res.Prob))
		}
	}
	return out
}

// indexSelectedImputer is Ij+GER's imputation: the same indexes TER-iDS
// uses (CDD-index for rule selection, DR-index for sample retrieval), but
// driven sequentially — one index query per rule — instead of TER-iDS's
// batched 3-way join that shares one DR-index traversal and one set of
// per-attribute distances across all applicable rules.
type indexSelectedImputer struct {
	sh        *Shared
	cfg       Config
	breakdown *metrics.Breakdown
}

func newIndexSelectedImputer(sh *Shared, cfg Config, b *metrics.Breakdown) *indexSelectedImputer {
	return &indexSelectedImputer{sh: sh, cfg: cfg, breakdown: b}
}

// Name implements impute.Imputer.
func (ii *indexSelectedImputer) Name() string { return "Ij" }

// Impute implements impute.Imputer.
func (ii *indexSelectedImputer) Impute(r *tuple.Record) *tuple.Imputed {
	if r.IsComplete() {
		return tuple.FromComplete(r)
	}
	im := &tuple.Imputed{R: r, Dists: make([]tuple.AttrDist, r.D())}
	var sw metrics.Stopwatch
	for j := 0; j < r.D(); j++ {
		if !r.IsMissing(j) {
			im.Dists[j] = tuple.Point(r.Value(j), r.Tokens(j))
			continue
		}
		sw.Start()
		var applicable []*rules.Rule
		ii.sh.CDDIdx[j].Applicable(r, func(rule *rules.Rule) bool {
			applicable = append(applicable, rule)
			return true
		})
		ii.breakdown.Select += sw.Lap()

		dom := ii.sh.Repo.Domain(j)
		acc := impute.NewAccumulator(dom, ii.sh.DomIdx[j])
		ii.sh.DRIdx.MatchingSamplesMulti(r, applicable, func(ri int, s *tuple.Record) bool {
			acc.AddSample(dom.Lookup(s.Value(j)), applicable[ri].DepMin, applicable[ri].DepMax)
			return true
		})
		im.Dists[j] = acc.Distribution(ii.cfg.Impute)
		ii.breakdown.Impute += sw.Lap()
	}
	return im
}
