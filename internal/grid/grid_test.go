package grid

import (
	"fmt"
	"math/rand"
	"testing"

	"terids/internal/pivot"
	"terids/internal/prune"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

var schema = tuple.MustSchema("A", "B")

func sel2() *pivot.Selection {
	return &pivot.Selection{PerAttr: []pivot.AttrPivots{
		{Attr: 0, Texts: []string{"p q"}, Toks: []tokens.Set{tokens.New("p", "q")}},
		{Attr: 1, Texts: []string{"m n"}, Toks: []tokens.Set{tokens.New("m", "n")}},
	}}
}

func entry(t *testing.T, rid string, stream int, a, b string, kw tokens.Set) *Entry {
	t.Helper()
	r := tuple.MustRecord(schema, rid, stream, 0, []string{a, b})
	return &Entry{Rec: r, Prof: prune.BuildProfile(tuple.FromComplete(r), sel2(), kw)}
}

func mustGrid(t *testing.T, d, n int) *Grid {
	t.Helper()
	g, err := New(d, n, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	for _, bad := range [][4]int{{0, 5, 1, 1}, {2, 0, 1, 1}, {2, 5, 0, 1}} {
		if _, err := New(bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Errorf("New(%v) must fail", bad)
		}
	}
}

func TestInsertRemove(t *testing.T) {
	g := mustGrid(t, 2, 5)
	kw := tokens.New("k")
	e1 := entry(t, "r1", 0, "p q", "m n", kw)
	if err := g.Insert(e1); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 || g.CellCount() == 0 {
		t.Fatalf("Len=%d cells=%d", g.Len(), g.CellCount())
	}
	if err := g.Insert(e1); err == nil {
		t.Fatal("duplicate insert must fail")
	}
	if got, ok := g.Get("r1"); !ok || got != e1 {
		t.Fatal("Get failed")
	}
	if !g.Remove("r1") {
		t.Fatal("Remove failed")
	}
	if g.Remove("r1") {
		t.Fatal("double remove must report false")
	}
	if g.Len() != 0 || g.CellCount() != 0 {
		t.Fatal("grid must be empty after removal")
	}
}

func TestCandidatesFindsCrossStreamMatches(t *testing.T) {
	g := mustGrid(t, 2, 5)
	kw := tokens.New("k")
	// Same-content tuples on different streams.
	g.Insert(entry(t, "a1", 0, "k p q", "m n", kw))
	g.Insert(entry(t, "b1", 1, "k p q", "m n", kw))
	// A far-away tuple.
	g.Insert(entry(t, "b2", 1, "zz ww", "uu vv", kw))

	q := entry(t, "q", 0, "k p q", "m n", kw)
	var got []string
	g.Candidates(q.Prof, Query{Gamma: 1.5}, func(e *Entry) bool {
		got = append(got, e.Rec.RID)
		return true
	})
	found := map[string]bool{}
	for _, rid := range got {
		found[rid] = true
	}
	if !found["b1"] {
		t.Fatal("b1 (same content, other stream) must be a candidate")
	}
	if found["a1"] {
		t.Fatal("a1 is on the query's own stream and must be excluded")
	}
}

func TestCandidatesCellPruning(t *testing.T) {
	g := mustGrid(t, 2, 5)
	kw := tokens.New("diabetes")
	// No keyword anywhere in the grid.
	g.Insert(entry(t, "b1", 1, "flu fever", "cough", kw))
	g.Insert(entry(t, "b2", 1, "cold nose", "sneeze", kw))
	// Query without keywords either: every cell must be topic-pruned.
	q := entry(t, "q", 0, "flu fever", "cough", kw)
	stats := g.Candidates(q.Prof, Query{Gamma: 0.1}, func(*Entry) bool { return true })
	if stats.Emitted != 0 {
		t.Fatalf("topic pruning failed: emitted %d", stats.Emitted)
	}
	if stats.CellsPruned == 0 {
		t.Fatal("expected cell-level pruning")
	}
	// Query WITH a keyword: cells pass the topic check.
	q2 := entry(t, "q2", 0, "diabetes fever flu", "cough", kw)
	stats = g.Candidates(q2.Prof, Query{Gamma: 0.1}, func(*Entry) bool { return true })
	if stats.Emitted == 0 {
		t.Fatal("keyword query must reach similar tuples")
	}
}

func TestCandidatesSimPruningAtCellLevel(t *testing.T) {
	g := mustGrid(t, 2, 10)
	kw := tokens.New("k")
	// Far tuple (opposite corner of converted space: identical to pivots
	// means distance 0; disjoint means 1).
	g.Insert(entry(t, "far", 1, "k zz", "ww", kw))    // far from pivots
	g.Insert(entry(t, "near", 1, "k p q", "m n", kw)) // at pivots
	q := entry(t, "q", 0, "k p q", "m n", kw)
	// gamma = 1.2: the far tuple's cell (distance >= ~1 per attr from q's
	// cell) must be pruned by the Lemma 4.2 cell bound.
	var got []string
	stats := g.Candidates(q.Prof, Query{Gamma: 1.2}, func(e *Entry) bool {
		got = append(got, e.Rec.RID)
		return true
	})
	if len(got) != 1 || got[0] != "near" {
		t.Fatalf("Candidates = %v, want [near]", got)
	}
	if stats.CellsPruned == 0 {
		t.Fatal("expected the far cell to be pruned")
	}
}

func TestCandidatesEarlyStop(t *testing.T) {
	g := mustGrid(t, 2, 3)
	kw := tokens.New("k")
	for i := 0; i < 10; i++ {
		g.Insert(entry(t, fmt.Sprintf("b%d", i), 1, "k p q", "m n", kw))
	}
	q := entry(t, "q", 0, "k p q", "m n", kw)
	n := 0
	g.Candidates(q.Prof, Query{Gamma: 0.5}, func(*Entry) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d, want 1", n)
	}
}

func TestEach(t *testing.T) {
	g := mustGrid(t, 2, 4)
	kw := tokens.New("k")
	g.Insert(entry(t, "x1", 0, "a", "b", kw))
	g.Insert(entry(t, "x2", 1, "c", "d", kw))
	n := 0
	g.Each(func(*Entry) bool { n++; return true })
	if n != 2 {
		t.Fatalf("Each visited %d, want 2", n)
	}
	n = 0
	g.Each(func(*Entry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Each early stop visited %d, want 1", n)
	}
}

// TestCandidatesNeverMissesAgainstBruteForce is the grid's completeness
// property: any pair the exhaustive scan finds above the similarity bound
// must also be reachable through Candidates.
func TestCandidatesNeverMissesAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	kw := tokens.New("t0", "t3")
	vocab := func() string {
		n := 1 + r.Intn(4)
		s := ""
		for i := 0; i < n; i++ {
			s += fmt.Sprintf("t%d ", r.Intn(8))
		}
		return s
	}
	sel := sel2()
	for trial := 0; trial < 30; trial++ {
		g, err := New(2, 4, 1, kw.Len())
		if err != nil {
			t.Fatal(err)
		}
		var resident []*Entry
		for i := 0; i < 25; i++ {
			rec := tuple.MustRecord(schema, fmt.Sprintf("s%d", i), 1, int64(i), []string{vocab(), vocab()})
			e := &Entry{Rec: rec, Prof: prune.BuildProfile(tuple.FromComplete(rec), sel, kw)}
			if err := g.Insert(e); err != nil {
				t.Fatal(err)
			}
			resident = append(resident, e)
		}
		qrec := tuple.MustRecord(schema, "q", 0, 99, []string{vocab(), vocab()})
		q := prune.BuildProfile(tuple.FromComplete(qrec), sel, kw)
		gamma := r.Float64() * 2

		got := map[string]bool{}
		g.Candidates(q, Query{Gamma: gamma}, func(e *Entry) bool {
			got[e.Rec.RID] = true
			return true
		})
		for _, e := range resident {
			sim := q.Instances[0].Sim(e.Prof.Instances[0])
			kwOK := q.MayKW || e.Prof.MayKW
			if sim > gamma && kwOK && !got[e.Rec.RID] {
				t.Fatalf("trial %d: grid missed %s with sim %v > gamma %v", trial, e.Rec.RID, sim, gamma)
			}
		}
	}
}

func TestRemoveRebuildsAggregates(t *testing.T) {
	g := mustGrid(t, 2, 1) // single cell: aggregates must shrink on remove
	kw := tokens.New("k")
	e1 := entry(t, "r1", 0, "k p q", "m n", kw) // keyword-bearing
	e2 := entry(t, "r2", 1, "x y", "u v", kw)   // no keyword
	g.Insert(e1)
	g.Insert(e2)
	// One cell holding both; its KW aggregate must be set.
	for _, c := range g.cells {
		if !c.summary.KW.Any() {
			t.Fatal("cell aggregate must carry the keyword bit")
		}
	}
	g.Remove("r1")
	for _, c := range g.cells {
		if c.summary.KW.Any() {
			t.Fatal("keyword bit must disappear after the carrier is removed")
		}
	}
}

func TestExportImportRoundtrip(t *testing.T) {
	g := mustGrid(t, 2, 5)
	kw := tokens.New("k")
	rids := []string{"a1", "b1", "a2", "b2", "a3"}
	for i, rid := range rids {
		e := entry(t, rid, i%2, fmt.Sprintf("k p q%d", i), "m n", kw)
		if err := g.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	// One eviction mid-way keeps the ordinal sequence gapped, as in
	// production.
	g.Remove("b1")

	exported := g.Export()
	if len(exported) != 4 {
		t.Fatalf("exported %d entries, want 4", len(exported))
	}
	for i := 1; i < len(exported); i++ {
		if exported[i-1].Ord() >= exported[i].Ord() {
			t.Fatal("export not in insertion-ordinal order")
		}
	}

	g2 := mustGrid(t, 2, 5)
	if err := g2.Import(exported); err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("imported grid has %d residents, want %d", g2.Len(), g.Len())
	}
	// Relative order is preserved under the fresh (compacted) ordinals.
	re := g2.Export()
	for i := range exported {
		if re[i].Rec.RID != exported[i].Rec.RID {
			t.Fatalf("import reordered entries: %s at %d, want %s",
				re[i].Rec.RID, i, exported[i].Rec.RID)
		}
	}
	// The source grid's entries were not mutated by the import.
	for i, e := range exported {
		if g.Export()[i].Ord() != e.Ord() {
			t.Fatal("import mutated the exported entries' ordinals")
		}
	}
	// Candidates behave identically on the rebuilt grid.
	q := entry(t, "q", 0, "k p q1", "m n", kw)
	collect := func(gr *Grid) []string {
		var out []string
		gr.Candidates(q.Prof, Query{Gamma: 0.5}, func(e *Entry) bool {
			out = append(out, e.Rec.RID)
			return true
		})
		return out
	}
	want, got := collect(g), collect(g2)
	if len(want) != len(got) {
		t.Fatalf("candidates differ after import: %v vs %v", got, want)
	}

	if err := g2.Import(exported); err == nil {
		t.Fatal("import into a non-empty grid must fail")
	}
}
