package grid

import (
	"fmt"
	"math/rand"
	"testing"

	"terids/internal/prune"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

// TestRandomInsertRemoveConsistency hammers the grid with random
// insert/remove sequences and checks Len, Get, CellCount consistency and
// that Candidates never emits evicted or same-stream tuples.
func TestRandomInsertRemoveConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	kw := tokens.New("k")
	sel := sel2()
	g, err := New(2, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	alive := map[string]*Entry{}
	next := 0
	randEntry := func() *Entry {
		next++
		rid := fmt.Sprintf("r%d", next)
		vals := []string{}
		for i := 0; i < 2; i++ {
			v := ""
			for k := 0; k <= r.Intn(3); k++ {
				v += fmt.Sprintf("t%d ", r.Intn(10))
			}
			vals = append(vals, v)
		}
		rec := tuple.MustRecord(schema, rid, r.Intn(2), int64(next), vals)
		return &Entry{Rec: rec, Prof: prune.BuildProfile(tuple.FromComplete(rec), sel, kw)}
	}
	for round := 0; round < 3000; round++ {
		if len(alive) == 0 || r.Float64() < 0.6 {
			e := randEntry()
			if err := g.Insert(e); err != nil {
				t.Fatal(err)
			}
			alive[e.Rec.RID] = e
		} else {
			// Remove a random live RID.
			for rid := range alive {
				if !g.Remove(rid) {
					t.Fatalf("Remove(%s) failed", rid)
				}
				delete(alive, rid)
				break
			}
		}
		if g.Len() != len(alive) {
			t.Fatalf("round %d: Len %d != alive %d", round, g.Len(), len(alive))
		}
	}
	// Every live entry is retrievable; evicted ones are not.
	for rid, e := range alive {
		got, ok := g.Get(rid)
		if !ok || got != e {
			t.Fatalf("live entry %s not retrievable", rid)
		}
	}
	// A query from stream 0 must only see live stream-1 entries.
	q := randEntry()
	qr := tuple.MustRecord(schema, q.Rec.RID, 0, 0, []string{"t1 k", "t2"})
	qp := prune.BuildProfile(tuple.FromComplete(qr), sel, kw)
	g.Candidates(qp, Query{Gamma: 0.01}, func(e *Entry) bool {
		if e.Rec.Stream != 1 {
			t.Fatalf("candidate %s from query's own stream", e.Rec.RID)
		}
		if _, ok := alive[e.Rec.RID]; !ok {
			t.Fatalf("candidate %s was evicted", e.Rec.RID)
		}
		return true
	})
	// Empty grid after removing everything.
	for rid := range alive {
		g.Remove(rid)
	}
	if g.Len() != 0 || g.CellCount() != 0 {
		t.Fatalf("grid not empty after removing all: len=%d cells=%d", g.Len(), g.CellCount())
	}
}

// TestAblationFlagsWidenCandidates checks that disabling cell-level pruning
// only ever ADDS candidates (safety direction).
func TestAblationFlagsWidenCandidates(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	kw := tokens.New("t0")
	sel := sel2()
	g, err := New(2, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		v := func() string {
			out := ""
			for k := 0; k <= r.Intn(3); k++ {
				out += fmt.Sprintf("t%d ", r.Intn(8))
			}
			return out
		}
		rec := tuple.MustRecord(schema, fmt.Sprintf("e%d", i), 1, int64(i), []string{v(), v()})
		g.Insert(&Entry{Rec: rec, Prof: prune.BuildProfile(tuple.FromComplete(rec), sel, kw)})
	}
	qrec := tuple.MustRecord(schema, "q", 0, 99, []string{"t1 t2", "t3"})
	qp := prune.BuildProfile(tuple.FromComplete(qrec), sel, kw)
	collect := func(opt Query) map[string]bool {
		out := map[string]bool{}
		g.Candidates(qp, opt, func(e *Entry) bool {
			out[e.Rec.RID] = true
			return true
		})
		return out
	}
	pruned := collect(Query{Gamma: 1.2})
	open := collect(Query{Gamma: 1.2, DisableTopic: true, DisableSim: true})
	for rid := range pruned {
		if !open[rid] {
			t.Fatalf("ablation lost candidate %s", rid)
		}
	}
	if len(open) < len(pruned) {
		t.Fatal("disabling pruning must not shrink the candidate set")
	}
}
