// Package grid implements the ER-grid data synopsis of Section 5.2: a
// sparse d-dimensional grid over the converted space [0,1]^d (main-pivot
// Jaccard distances). An imputed tuple occupies the box of its per-attribute
// distance intervals and is stored in every cell that box intersects. Cells
// carry the aggregates of Section 5.2 (keyword vector, per-pivot distance
// intervals, token-size intervals) enabling cell-level pruning before
// tuple-level pruning.
package grid

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"terids/internal/agg"
	"terids/internal/prune"
	"terids/internal/tuple"
)

// Entry is one tuple resident in the grid.
type Entry struct {
	Rec  *tuple.Record
	Prof *prune.Profile
	// sum caches Prof.Summary at the grid's pivot width; computed on
	// first insert and reused when cell aggregates are rebuilt.
	sum *agg.Summary
	// ord is the grid-assigned insertion ordinal: a cheap deterministic
	// identity for dedup and ordering in hot paths.
	ord int64
}

// Ord returns the entry's insertion ordinal (0 before insertion).
func (e *Entry) Ord() int64 { return e.ord }

type cell struct {
	key     string
	entries []*Entry
	summary *agg.Summary
}

func (c *cell) remove(rid string) {
	for i, e := range c.entries {
		if e.Rec.RID == rid {
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
			return
		}
	}
}

// Grid is the ER-grid G_ER. It is not safe for concurrent use.
type Grid struct {
	d    int // attributes (grid dimensionality)
	n    int // cells per dimension
	nPiv int // pivot slots in summaries
	nKW  int // keyword vector width
	h    float64

	cells   map[string]*cell
	byRID   map[string][]string // rid -> keys of cells holding it
	recs    map[string]*Entry   // rid -> entry
	nextOrd int64
}

// New creates a grid with cellsPerDim cells along each of the d dimensions.
func New(d, cellsPerDim, nPiv, nKW int) (*Grid, error) {
	if d < 1 || cellsPerDim < 1 {
		return nil, fmt.Errorf("grid: bad geometry d=%d cells=%d", d, cellsPerDim)
	}
	if nPiv < 1 {
		return nil, fmt.Errorf("grid: need at least the main pivot, got %d", nPiv)
	}
	return &Grid{
		d: d, n: cellsPerDim, nPiv: nPiv, nKW: nKW,
		h:     1 / float64(cellsPerDim),
		cells: make(map[string]*cell),
		byRID: make(map[string][]string),
		recs:  make(map[string]*Entry),
	}, nil
}

// Len returns the number of resident tuples.
func (g *Grid) Len() int { return len(g.recs) }

// CellCount returns the number of materialized (non-empty) cells.
func (g *Grid) CellCount() int { return len(g.cells) }

// coord clamps v into [0,1] and returns its cell index.
func (g *Grid) coord(v float64) int {
	if v < 0 {
		v = 0
	}
	i := int(v * float64(g.n))
	if i >= g.n {
		i = g.n - 1
	}
	return i
}

func key(idx []int) string {
	var b strings.Builder
	for i, v := range idx {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// boxCells enumerates the keys of all cells intersecting the box [lo, hi].
func (g *Grid) boxCells(lo, hi []float64) []string {
	loIdx := make([]int, g.d)
	hiIdx := make([]int, g.d)
	total := 1
	for x := 0; x < g.d; x++ {
		loIdx[x] = g.coord(lo[x])
		hiIdx[x] = g.coord(hi[x])
		total *= hiIdx[x] - loIdx[x] + 1
	}
	keys := make([]string, 0, total)
	idx := append([]int(nil), loIdx...)
	for {
		keys = append(keys, key(idx))
		x := g.d - 1
		for x >= 0 {
			idx[x]++
			if idx[x] <= hiIdx[x] {
				break
			}
			idx[x] = loIdx[x]
			x--
		}
		if x < 0 {
			break
		}
	}
	return keys
}

// Insert adds an entry to every cell its main-pivot box intersects and
// updates cell aggregates. Inserting an RID already present is an error
// (evict first).
func (g *Grid) Insert(e *Entry) error {
	rid := e.Rec.RID
	if _, dup := g.recs[rid]; dup {
		return fmt.Errorf("grid: duplicate insert of %s", rid)
	}
	lo, hi := e.Prof.MainBox()
	if len(lo) != g.d {
		return fmt.Errorf("grid: entry dimensionality %d, grid %d", len(lo), g.d)
	}
	keys := g.boxCells(lo, hi)
	if e.sum == nil {
		e.sum = e.Prof.Summary(g.nPiv)
	}
	g.nextOrd++
	e.ord = g.nextOrd
	sum := e.sum
	for _, k := range keys {
		c, ok := g.cells[k]
		if !ok {
			c = &cell{
				key:     k,
				summary: agg.NewSummary(g.d, g.nPiv, g.nKW),
			}
			g.cells[k] = c
		}
		c.entries = append(c.entries, e)
		c.summary.Merge(sum)
	}
	g.byRID[rid] = keys
	g.recs[rid] = e
	return nil
}

// Remove evicts a tuple (window expiry) and rebuilds the aggregates of the
// cells that held it. It reports whether the RID was present.
func (g *Grid) Remove(rid string) bool {
	keys, ok := g.byRID[rid]
	if !ok {
		return false
	}
	for _, k := range keys {
		c := g.cells[k]
		c.remove(rid)
		if len(c.entries) == 0 {
			delete(g.cells, k)
			continue
		}
		// Recompute the cell aggregate from the survivors' cached
		// summaries.
		c.summary = agg.NewSummary(g.d, g.nPiv, g.nKW)
		for _, e := range c.entries {
			c.summary.Merge(e.sum)
		}
	}
	delete(g.byRID, rid)
	delete(g.recs, rid)
	return true
}

// Export returns the resident entries in insertion-ordinal order — the
// minimal state a checkpoint needs. Cells, aggregates, and ordinals are
// derived state that Import rebuilds.
func (g *Grid) Export() []*Entry {
	out := make([]*Entry, 0, len(g.recs))
	for _, e := range g.recs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ord < out[j].ord })
	return out
}

// Import bulk-loads exported entries into an empty grid, preserving their
// relative order (fresh ordinals are assigned in slice order). The entries
// are re-wrapped, not aliased, so the source grid — which may use a
// different geometry — is left untouched.
func (g *Grid) Import(entries []*Entry) error {
	if len(g.recs) != 0 {
		return fmt.Errorf("grid: import into non-empty grid (%d residents)", len(g.recs))
	}
	for _, e := range entries {
		if err := g.Insert(&Entry{Rec: e.Rec, Prof: e.Prof}); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the resident entry for rid, if any.
func (g *Grid) Get(rid string) (*Entry, bool) {
	e, ok := g.recs[rid]
	return e, ok
}

// Each visits every resident entry once.
func (g *Grid) Each(visit func(*Entry) bool) {
	for _, e := range g.recs {
		if !visit(e) {
			return
		}
	}
}

// CandidateStats reports how much work a Candidates call did.
type CandidateStats struct {
	CellsVisited int
	CellsPruned  int
	Emitted      int
}

// Query parameterizes a Candidates call. The Disable flags turn off
// cell-level pruning strategies for ablation studies (results are
// unchanged — pruning is safe — only cost moves).
type Query struct {
	Gamma        float64
	DisableTopic bool
	DisableSim   bool
}

// Candidates streams the entries that survive cell-level pruning against
// query profile q (Theorem 4.1 at cell granularity via keyword aggregates,
// Theorem 4.2 via distance/size aggregates). Entries from other streams
// only (stream != q's stream) are emitted, deduplicated. Tuple-level
// pruning is the caller's job.
func (g *Grid) Candidates(q *prune.Profile, opt Query, visit func(*Entry) bool) CandidateStats {
	var stats CandidateStats
	qStream := q.Im.R.Stream
	seen := make(map[int64]struct{})
	for _, c := range g.cells {
		stats.CellsVisited++
		// Cell-level topic pruning: if the query tuple can never carry a
		// keyword, only cells that may contain one can form result pairs.
		if !opt.DisableTopic && !q.MayKW && !c.summary.KW.Any() {
			stats.CellsPruned++
			continue
		}
		// Cell-level similarity upper bound over the cell aggregate.
		cb := prune.Bounds{Dist: c.summary.Dist, Size: c.summary.Size}
		if !opt.DisableSim && prune.SimPrune(q.Bounds, cb, opt.Gamma) {
			stats.CellsPruned++
			continue
		}
		for _, e := range c.entries {
			if e.Rec.Stream == qStream {
				continue
			}
			if _, dup := seen[e.ord]; dup {
				continue
			}
			seen[e.ord] = struct{}{}
			stats.Emitted++
			if !visit(e) {
				return stats
			}
		}
	}
	return stats
}
