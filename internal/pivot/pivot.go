// Package pivot implements the cost-model-based pivot tuple selection of
// Section 5.4 and Appendix B: per attribute, pick the domain value whose
// converted-distance histogram has maximal Shannon entropy (Equation 5),
// adding auxiliary pivots greedily until the joint entropy reaches eMin or
// cntMax pivots are used.
package pivot

import (
	"fmt"
	"math"
	"sort"

	"terids/internal/repository"
	"terids/internal/tokens"
)

// Config tunes the selection cost model.
type Config struct {
	// Buckets is P, the number of equal-length sub-intervals of the
	// converted space [0,1] (Appendix C.1 uses P = 10).
	Buckets int
	// MinEntropy is eMin, the target Shannon entropy in nats (Appendix C.1
	// uses 1.5).
	MinEntropy float64
	// CntMax is the maximal number of attribute pivots per attribute
	// (Figure 11(b) varies it in [1,5]).
	CntMax int
	// MaxCandidates caps the number of candidate pivot values examined per
	// attribute (0 = all of dom(A_x)); candidates are the most frequent
	// values. The paper scans the full domain; the cap exists for very
	// large repositories.
	MaxCandidates int
}

// Defaults returns the paper's Appendix C.1 settings.
func Defaults() Config {
	return Config{Buckets: 10, MinEntropy: 1.5, CntMax: 3}
}

func (c *Config) fill() {
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.MinEntropy <= 0 {
		c.MinEntropy = 1.5
	}
	if c.CntMax <= 0 {
		c.CntMax = 3
	}
}

// AttrPivots holds the selected pivots of one attribute: piv_1 (the main
// pivot used for the metric-space conversion) plus auxiliary pivots used in
// index aggregates.
type AttrPivots struct {
	Attr int
	// Texts[0] / Toks[0] is the main pivot; the rest are auxiliary.
	Texts []string
	Toks  []tokens.Set
	// Entropy is the joint Shannon entropy achieved by the selected set.
	Entropy float64
}

// Main returns the main pivot token set piv_1[A_x].
func (p *AttrPivots) Main() tokens.Set { return p.Toks[0] }

// NumPivots returns n_x, the number of selected attribute pivots.
func (p *AttrPivots) NumPivots() int { return len(p.Toks) }

// Aux returns auxiliary pivot a (a in [1, NumPivots()-1]).
func (p *AttrPivots) Aux(a int) tokens.Set { return p.Toks[a] }

// Selection is the per-attribute pivot choice for a schema.
type Selection struct {
	PerAttr []AttrPivots
}

// Main returns the main pivot of attribute x.
func (s *Selection) Main(x int) tokens.Set { return s.PerAttr[x].Main() }

// NumPivots returns n_x for attribute x.
func (s *Selection) NumPivots(x int) int { return s.PerAttr[x].NumPivots() }

// MaxAux returns the largest auxiliary pivot count over all attributes.
func (s *Selection) MaxAux() int {
	m := 0
	for i := range s.PerAttr {
		if n := s.PerAttr[i].NumPivots() - 1; n > m {
			m = n
		}
	}
	return m
}

// Convert maps a token set to its converted coordinate on attribute x:
// the Jaccard distance to the main pivot.
func (s *Selection) Convert(x int, toks tokens.Set) float64 {
	return tokens.JaccardDistance(toks, s.Main(x))
}

// Entropy computes the Shannon entropy (Equation 5, natural log) of the
// histogram of values over buckets equal-width bins of [0,1].
func Entropy(values []float64, buckets int) float64 {
	if len(values) == 0 || buckets <= 0 {
		return 0
	}
	hist := make([]int, buckets)
	for _, v := range values {
		b := int(v * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		if b < 0 {
			b = 0
		}
		hist[b]++
	}
	h := 0.0
	n := float64(len(values))
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log(p)
	}
	return h
}

// jointEntropy computes the Shannon entropy of the joint bucketization:
// each sample is assigned the tuple of its bucket ids under every pivot.
func jointEntropy(dists [][]float64, buckets int) float64 {
	if len(dists) == 0 || len(dists[0]) == 0 {
		return 0
	}
	n := len(dists[0])
	counts := make(map[string]int, n)
	key := make([]byte, len(dists))
	for i := 0; i < n; i++ {
		for p := range dists {
			b := int(dists[p][i] * float64(buckets))
			if b >= buckets {
				b = buckets - 1
			}
			if b < 0 {
				b = 0
			}
			key[p] = byte(b)
		}
		counts[string(key)]++
	}
	h := 0.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		h -= p * math.Log(p)
	}
	return h
}

// Select chooses pivots for every attribute of the repository per the cost
// model. It fails only on an empty repository.
func Select(repo *repository.Repository, cfg Config) (*Selection, error) {
	cfg.fill()
	if repo.Len() == 0 {
		return nil, fmt.Errorf("pivot: cannot select pivots from an empty repository")
	}
	d := repo.Schema().D()
	sel := &Selection{PerAttr: make([]AttrPivots, d)}
	for x := 0; x < d; x++ {
		sel.PerAttr[x] = selectAttr(repo, x, cfg)
	}
	return sel, nil
}

func selectAttr(repo *repository.Repository, x int, cfg Config) AttrPivots {
	dom := repo.Domain(x)
	cands := candidateIndexes(dom, cfg.MaxCandidates)
	samples := repo.Samples()

	// Distance matrix: distTo[ci][si] = dist(sample_si[A_x], candidate ci).
	distTo := make([][]float64, len(cands))
	for ci, vi := range cands {
		row := make([]float64, len(samples))
		toks := dom.Value(vi).Toks
		for si, s := range samples {
			row[si] = tokens.JaccardDistance(s.Tokens(x), toks)
		}
		distTo[ci] = row
	}

	// Greedy: first pivot maximizes marginal entropy; subsequent pivots
	// maximize joint entropy of the already-chosen set plus the candidate.
	chosen := make([]int, 0, cfg.CntMax)
	chosenDists := make([][]float64, 0, cfg.CntMax)
	best := 0.0
	for len(chosen) < cfg.CntMax {
		bestCi, bestH := -1, -1.0
		for ci := range cands {
			if contains(chosen, ci) {
				continue
			}
			h := jointEntropy(append(chosenDists, distTo[ci]), cfg.Buckets)
			if h > bestH {
				bestH, bestCi = h, ci
			}
		}
		if bestCi == -1 || (len(chosen) > 0 && bestH <= best+1e-12) {
			break // no candidate improves the joint entropy
		}
		chosen = append(chosen, bestCi)
		chosenDists = append(chosenDists, distTo[bestCi])
		best = bestH
		if best >= cfg.MinEntropy {
			break
		}
	}

	out := AttrPivots{Attr: x, Entropy: best}
	for _, ci := range chosen {
		v := dom.Value(cands[ci])
		out.Texts = append(out.Texts, v.Text)
		out.Toks = append(out.Toks, v.Toks)
	}
	return out
}

// candidateIndexes returns the domain value indexes to consider as pivots:
// all of them, or the maxCand most frequent (ties broken by text).
func candidateIndexes(dom *repository.Domain, maxCand int) []int {
	idx := make([]int, dom.Len())
	for i := range idx {
		idx[i] = i
	}
	if maxCand <= 0 || dom.Len() <= maxCand {
		return idx
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := dom.Value(idx[a]), dom.Value(idx[b])
		if va.Freq != vb.Freq {
			return va.Freq > vb.Freq
		}
		return va.Text < vb.Text
	})
	idx = idx[:maxCand]
	sort.Ints(idx)
	return idx
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
