package pivot

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"terids/internal/repository"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

var schema = tuple.MustSchema("A", "B")

func buildRepo(t *testing.T, values [][2]string) *repository.Repository {
	t.Helper()
	var recs []*tuple.Record
	for i, v := range values {
		recs = append(recs, tuple.MustRecord(schema, fmt.Sprintf("s%d", i), 0, 0, []string{v[0], v[1]}))
	}
	repo, err := repository.Build(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestEntropy(t *testing.T) {
	// Uniform over 4 of 4 buckets: entropy = ln 4.
	vals := []float64{0.1, 0.35, 0.6, 0.85}
	if got, want := Entropy(vals, 4), math.Log(4); math.Abs(got-want) > 1e-9 {
		t.Fatalf("uniform entropy = %v, want %v", got, want)
	}
	// All in one bucket: 0.
	if got := Entropy([]float64{0.1, 0.12, 0.15}, 10); got != 0 {
		t.Fatalf("degenerate entropy = %v, want 0", got)
	}
	// Edge cases.
	if Entropy(nil, 10) != 0 || Entropy([]float64{0.5}, 0) != 0 {
		t.Fatal("empty inputs must give 0")
	}
	// Boundary value 1.0 must fall in the last bucket, not panic.
	if got := Entropy([]float64{1.0, 0.0}, 10); got <= 0 {
		t.Fatalf("boundary entropy = %v, want > 0", got)
	}
}

func TestEntropyMaximizedByUniform(t *testing.T) {
	uniform := make([]float64, 100)
	skewed := make([]float64, 100)
	for i := range uniform {
		uniform[i] = float64(i) / 100
		skewed[i] = 0.05
	}
	if Entropy(uniform, 10) <= Entropy(skewed, 10) {
		t.Fatal("uniform distribution must have higher entropy than skewed")
	}
}

func TestSelectPrefersSpreadingPivot(t *testing.T) {
	// Attribute A domain: values designed so "a b c d e" spreads distances
	// while "z" collapses everything near distance 1.
	var values [][2]string
	vocab := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 20; i++ {
		// Values share a sliding window of the vocab: varying overlap.
		v := ""
		for k := 0; k < 3; k++ {
			v += vocab[(i+k)%len(vocab)] + " "
		}
		values = append(values, [2]string{v, "constant"})
	}
	repo := buildRepo(t, values)
	sel, err := Select(repo, Config{Buckets: 5, MinEntropy: 0.5, CntMax: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.PerAttr) != 2 {
		t.Fatalf("PerAttr len = %d, want 2", len(sel.PerAttr))
	}
	if sel.PerAttr[0].NumPivots() < 1 {
		t.Fatal("attribute A must have at least the main pivot")
	}
	if sel.PerAttr[0].Entropy <= 0 {
		t.Fatal("attribute A pivot entropy must be positive")
	}
	// Attribute B has a single domain value: entropy 0 but a pivot exists.
	if sel.PerAttr[1].NumPivots() != 1 {
		t.Fatalf("constant attribute must select exactly 1 pivot, got %d", sel.PerAttr[1].NumPivots())
	}
}

func TestSelectAddsAuxiliaryPivots(t *testing.T) {
	// A domain with two clusters far apart: one pivot cannot spread both, a
	// second pivot raises the joint entropy.
	var values [][2]string
	for i := 0; i < 10; i++ {
		values = append(values, [2]string{fmt.Sprintf("c1 x%d", i%3), "k"})
		values = append(values, [2]string{fmt.Sprintf("c2 y%d", i%3), "k"})
	}
	repo := buildRepo(t, values)
	selLow, err := Select(repo, Config{Buckets: 10, MinEntropy: 0.1, CntMax: 5})
	if err != nil {
		t.Fatal(err)
	}
	selHigh, err := Select(repo, Config{Buckets: 10, MinEntropy: 5.0, CntMax: 5})
	if err != nil {
		t.Fatal(err)
	}
	if selHigh.PerAttr[0].NumPivots() < selLow.PerAttr[0].NumPivots() {
		t.Fatalf("higher eMin must select at least as many pivots: %d vs %d",
			selHigh.PerAttr[0].NumPivots(), selLow.PerAttr[0].NumPivots())
	}
	if selHigh.PerAttr[0].Entropy < selLow.PerAttr[0].Entropy-1e-9 {
		t.Fatal("more pivots must not lower joint entropy")
	}
}

func TestSelectRespectsCntMax(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var values [][2]string
	for i := 0; i < 60; i++ {
		values = append(values, [2]string{
			fmt.Sprintf("w%d w%d w%d", r.Intn(20), r.Intn(20), r.Intn(20)),
			fmt.Sprintf("u%d", r.Intn(10)),
		})
	}
	repo := buildRepo(t, values)
	for cntMax := 1; cntMax <= 4; cntMax++ {
		sel, err := Select(repo, Config{Buckets: 10, MinEntropy: 99, CntMax: cntMax})
		if err != nil {
			t.Fatal(err)
		}
		for x := range sel.PerAttr {
			if n := sel.PerAttr[x].NumPivots(); n > cntMax {
				t.Fatalf("attr %d selected %d pivots, cntMax %d", x, n, cntMax)
			}
		}
	}
}

func TestSelectEmptyRepo(t *testing.T) {
	repo, err := repository.Build(schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Select(repo, Defaults()); err == nil {
		t.Fatal("empty repository must fail")
	}
}

func TestSelectMaxCandidates(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var values [][2]string
	for i := 0; i < 50; i++ {
		values = append(values, [2]string{fmt.Sprintf("v%d t%d", i, r.Intn(5)), "k"})
	}
	repo := buildRepo(t, values)
	sel, err := Select(repo, Config{Buckets: 10, MinEntropy: 1.5, CntMax: 2, MaxCandidates: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sel.PerAttr[0].NumPivots() < 1 {
		t.Fatal("must still select a pivot with capped candidates")
	}
}

func TestConvertAndMaxAux(t *testing.T) {
	repo := buildRepo(t, [][2]string{{"a b", "x"}, {"c d", "x"}})
	sel, err := Select(repo, Config{Buckets: 4, MinEntropy: 0.01, CntMax: 2})
	if err != nil {
		t.Fatal(err)
	}
	main := sel.Main(0)
	if got := sel.Convert(0, main); got != 0 {
		t.Fatalf("Convert(main pivot) = %v, want 0", got)
	}
	if got := sel.Convert(0, tokens.New("zzz")); got != 1 {
		t.Fatalf("Convert(disjoint) = %v, want 1", got)
	}
	if sel.MaxAux() < 0 {
		t.Fatal("MaxAux must be >= 0")
	}
}
