package snapshot

import (
	"bytes"
	"io"
	"testing"
)

// fuzzSeed encodes a representative checkpoint (with and without the v2
// slot table) so the mutator starts from real wire bytes.
func fuzzSeed(f *testing.F, slotTable bool) []byte {
	f.Helper()
	c := sampleCheckpoint()
	if slotTable {
		c.SlotTable = make([]int, 256)
		for i := range c.SlotTable {
			c.SlotTable[i] = i % c.Shards
		}
	}
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// deltaSeed encodes a representative v3 delta checkpoint so the mutator
// also starts from real delta wire bytes.
func deltaSeed(f *testing.F) []byte {
	f.Helper()
	d, err := ComputeDelta(sampleCheckpoint(), evolvedCheckpoint())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeDelta(&buf, d); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotDecode hardens restore against arbitrary checkpoint
// corruption — full snapshots (v1/v2) and delta checkpoints (v3) alike:
// random mutations of valid artifacts must never panic or over-allocate —
// corrupt input returns an error. Anything DecodeAny does accept must be
// structurally valid (Validate passes) and re-encodable, so a recovered
// checkpoint can always be checkpointed again.
func FuzzSnapshotDecode(f *testing.F) {
	plain := fuzzSeed(f, false)
	layout := fuzzSeed(f, true)
	delta := deltaSeed(f)
	f.Add(plain)
	f.Add(layout)
	f.Add(delta)
	f.Add(plain[:len(plain)-2])
	f.Add(plain[:len(Magic)+10])
	f.Add(delta[:len(delta)-3])
	f.Add([]byte{})
	f.Add([]byte("TERIDSCP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, d, err := DecodeAny(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		switch {
		case c != nil:
			if err := c.Validate(); err != nil {
				t.Fatalf("DecodeAny accepted a structurally invalid checkpoint: %v", err)
			}
			if err := Encode(io.Discard, c); err != nil {
				t.Fatalf("decoded checkpoint does not re-encode: %v", err)
			}
		case d != nil:
			if err := d.Validate(); err != nil {
				t.Fatalf("DecodeAny accepted a structurally invalid delta: %v", err)
			}
			if err := EncodeDelta(io.Discard, d); err != nil {
				t.Fatalf("decoded delta does not re-encode: %v", err)
			}
		default:
			t.Fatal("DecodeAny returned neither a checkpoint nor a delta")
		}
	})
}
