package snapshot

import (
	"bytes"
	"io"
	"testing"
)

// fuzzSeed encodes a representative checkpoint (with and without the v2
// slot table) so the mutator starts from real wire bytes.
func fuzzSeed(f *testing.F, slotTable bool) []byte {
	f.Helper()
	c := sampleCheckpoint()
	if slotTable {
		c.SlotTable = make([]int, 256)
		for i := range c.SlotTable {
			c.SlotTable[i] = i % c.Shards
		}
	}
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotDecode hardens restore against arbitrary checkpoint
// corruption: random mutations of valid artifacts must never panic or
// over-allocate — corrupt input returns an error. Anything Decode does
// accept must be structurally valid (Validate passes) and re-encodable, so
// a recovered checkpoint can always be checkpointed again.
func FuzzSnapshotDecode(f *testing.F) {
	plain := fuzzSeed(f, false)
	layout := fuzzSeed(f, true)
	f.Add(plain)
	f.Add(layout)
	f.Add(plain[:len(plain)-2])
	f.Add(plain[:len(Magic)+10])
	f.Add([]byte{})
	f.Add([]byte("TERIDSCP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Decode accepted a structurally invalid checkpoint: %v", err)
		}
		if err := Encode(io.Discard, c); err != nil {
			t.Fatalf("decoded checkpoint does not re-encode: %v", err)
		}
	})
}
