package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Seq:         12,
		Completed:   12,
		Rejected:    1,
		Shards:      4,
		Streams:     2,
		WindowSize:  5,
		Gamma:       1.5,
		Alpha:       0.4,
		Keywords:    []string{"deep", "learning"},
		SchemaAttrs: []string{"title", "venue", "year"},
		Residents: []Resident{
			{ArrivalSeq: 3, RID: "a1", Stream: 0, Seq: 3, EntityID: 7,
				Values: []string{"deep nets", "nips", "2014"}},
			{ArrivalSeq: 5, RID: "b9", Stream: 1, Seq: 4, EntityID: -1,
				Values: []string{"deep nets", "-", "2014"}},
			{ArrivalSeq: 11, RID: "c2", Stream: 0, Seq: 9, EntityID: 7,
				Values: []string{"-", "nips", "2015"}},
		},
		Pairs: []PairRef{{A: 0, B: 1, Prob: 0.75}},
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	c := sampleCheckpoint()
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != c.Seq || got.Completed != c.Completed || got.Rejected != c.Rejected ||
		got.Shards != c.Shards || got.Streams != c.Streams || got.WindowSize != c.WindowSize ||
		got.TimeSpan != c.TimeSpan || got.Gamma != c.Gamma || got.Alpha != c.Alpha {
		t.Fatalf("header mismatch: %+v vs %+v", got, c)
	}
	if len(got.Keywords) != len(c.Keywords) || got.Keywords[0] != "deep" {
		t.Fatalf("keywords %v", got.Keywords)
	}
	if len(got.SchemaAttrs) != 3 || got.SchemaAttrs[2] != "year" {
		t.Fatalf("schema %v", got.SchemaAttrs)
	}
	if len(got.Residents) != len(c.Residents) {
		t.Fatalf("residents %d, want %d", len(got.Residents), len(c.Residents))
	}
	for i, r := range got.Residents {
		w := c.Residents[i]
		if r.ArrivalSeq != w.ArrivalSeq || r.RID != w.RID || r.Stream != w.Stream ||
			r.Seq != w.Seq || r.EntityID != w.EntityID {
			t.Fatalf("resident %d: %+v, want %+v", i, r, w)
		}
		for j := range r.Values {
			if r.Values[j] != w.Values[j] {
				t.Fatalf("resident %d value %d: %q, want %q", i, j, r.Values[j], w.Values[j])
			}
		}
	}
	if len(got.Pairs) != 1 || got.Pairs[0] != c.Pairs[0] {
		t.Fatalf("pairs %v", got.Pairs)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	c := sampleCheckpoint()
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(Magic)+10+4] ^= 0xff
		if _, err := Decode(bytes.NewReader(bad)); err == nil ||
			!strings.Contains(err.Error(), "checksum") {
			t.Fatalf("corrupted decode err = %v, want checksum mismatch", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if _, err := Decode(bytes.NewReader(bad)); err == nil ||
			!strings.Contains(err.Error(), "magic") {
			t.Fatalf("bad-magic decode err = %v", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(Magic)] = 99
		if _, err := Decode(bytes.NewReader(bad)); err == nil ||
			!strings.Contains(err.Error(), "version") {
			t.Fatalf("version decode err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 4, len(Magic) + 3, len(good) / 2, len(good) - 1} {
			if _, err := Decode(bytes.NewReader(good[:n])); err == nil {
				t.Fatalf("truncation at %d bytes decoded successfully", n)
			}
		}
	})
}

// TestDecodeRejectsOversizedCounts: a tiny file with a valid checksum but a
// huge section count must fail before any count-sized allocation happens.
func TestDecodeRejectsOversizedCounts(t *testing.T) {
	var p writer
	p.varint(1)        // seq
	p.varint(1)        // completed
	p.varint(0)        // rejected
	p.varint(1)        // shards
	p.varint(2)        // streams
	p.varint(5)        // window size
	p.varint(0)        // time span
	p.float(1)         // gamma
	p.float(.5)        // alpha
	p.uvarint(1 << 27) // keyword count with no data behind it
	payload := p.buf.Bytes()

	var buf bytes.Buffer
	buf.WriteString(Magic)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], Version)
	buf.Write(u16[:])
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(payload)))
	buf.Write(u64[:])
	buf.Write(payload)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	buf.Write(sum[:])

	_, err := Decode(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "section length") {
		t.Fatalf("crafted-count decode err = %v, want section-length rejection", err)
	}
}

func TestValidateRejectsBadStructure(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Checkpoint)
	}{
		{"arrival beyond watermark", func(c *Checkpoint) { c.Residents[2].ArrivalSeq = c.Seq }},
		{"non-ascending arrivals", func(c *Checkpoint) { c.Residents[1].ArrivalSeq = 3 }},
		{"value arity", func(c *Checkpoint) { c.Residents[0].Values = c.Residents[0].Values[:2] }},
		{"pair out of range", func(c *Checkpoint) { c.Pairs[0].B = 99 }},
		{"pair not normalized", func(c *Checkpoint) { c.Pairs[0] = PairRef{A: 1, B: 0, Prob: 0.5} }},
		{"stream out of range", func(c *Checkpoint) { c.Residents[0].Stream = 2 }},
		{"empty rid", func(c *Checkpoint) { c.Residents[0].RID = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := sampleCheckpoint()
			tc.mut(c)
			if err := c.Validate(); err == nil {
				t.Fatal("Validate accepted a structurally broken checkpoint")
			}
			var buf bytes.Buffer
			if err := Encode(&buf, c); err == nil {
				t.Fatal("Encode accepted a structurally broken checkpoint")
			}
		})
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	c := sampleCheckpoint()
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != c.Seq || len(got.Residents) != len(c.Residents) {
		t.Fatalf("file roundtrip mismatch: %+v", got)
	}
	// No temp droppings left behind after a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after WriteFile, want 1", len(entries))
	}
}

func TestValueInterningCompactsRepeats(t *testing.T) {
	// 200 residents sharing 2 distinct values must encode far smaller than
	// 200 distinct values.
	mk := func(distinct bool) *Checkpoint {
		c := &Checkpoint{
			Seq: 1000, Streams: 2, WindowSize: 500, Gamma: 1, Alpha: 0.5,
			SchemaAttrs: []string{"a"},
		}
		for i := 0; i < 200; i++ {
			v := "the same long repeated attribute value shared by every tuple"
			if distinct {
				v = strings.Repeat("x", 50) + string(rune('0'+i%10)) + strings.Repeat("y", 8) + string(rune('a'+i%26))
			}
			c.Residents = append(c.Residents, Resident{
				ArrivalSeq: int64(i), RID: "r" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
				Stream: i % 2, Seq: int64(i), EntityID: -1, Values: []string{v},
			})
		}
		return c
	}
	var shared, distinct bytes.Buffer
	if err := Encode(&shared, mk(false)); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&distinct, mk(true)); err != nil {
		t.Fatal(err)
	}
	if shared.Len() >= distinct.Len()/2 {
		t.Fatalf("interned encoding %dB not compact vs distinct %dB", shared.Len(), distinct.Len())
	}
}
