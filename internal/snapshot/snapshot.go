// Package snapshot defines the durable checkpoint format of the TER-iDS
// operator: one versioned, checksummed binary blob capturing everything the
// online layers (core.Processor, the sharded engine) need to resume a stream
// at an exact sequence number — the window-resident tuples with their global
// arrival sequences, the live entity set, and the sequence counters.
//
// The encoding is deliberately minimal: derived state (imputation
// distributions, pruning profiles, grid cells, per-shard residency) is NOT
// serialized. It is recomputed deterministically from the resident records on
// restore, which keeps checkpoints compact, makes them independent of the
// shard count K they were taken at, and guarantees the restored derived
// state matches what an uninterrupted run would hold.
//
// Layout (all integers varint/uvarint, strings as uvarint length + bytes):
//
//	magic "TERIDSCP" | version u16 | payload len u64 | payload | crc32(payload)
//
// The payload interns attribute values in a string table and references them
// by index (stream tuples repeat values heavily); entity-set pairs reference
// residents by index instead of repeating RIDs.
//
// A dropped I/O or CRC error here is indistinguishable from corruption, so
// the package opts into the walerr analyzer: every error result must be
// handled or explicitly waived with `_ =`.
//
//terids:strict-errors
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Magic identifies a TER-iDS checkpoint file.
const Magic = "TERIDSCP"

// Version is the current full-checkpoint format version. Version 2 appends
// the shard layout slot table (adaptive rebalancing); Decode still reads
// version-1 files, which simply carry no layout (SlotTable nil — restore
// derives the default modulo layout).
const Version = 2

// DeltaVersion is the format version of incremental (delta) checkpoints: a
// diff over a base checkpoint's residents and entity set, keyed by merge
// sequence (see delta.go). Delta files share the magic and envelope with
// full checkpoints; the version field distinguishes the payloads.
const DeltaVersion = 3

// maxSection bounds every decoded collection length, so a corrupted or
// hostile length prefix cannot drive allocation before the data runs out.
const maxSection = 1 << 28

// maxPrealloc caps the initial capacity of any decoded slice; larger
// sections grow by append as elements actually parse.
const maxPrealloc = 1 << 16

func prealloc(n int) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

// Resident is one window-live tuple: the raw record plus its global arrival
// sequence (the engine's merge key and the processor's arrival ordinal).
type Resident struct {
	// ArrivalSeq is the 0-based position of this tuple in the operator's
	// arrival order. Residents are stored in ascending ArrivalSeq order,
	// which is also the grid re-insertion order on restore.
	ArrivalSeq int64
	// RID, Stream, Seq, EntityID mirror tuple.Record.
	RID      string
	Stream   int
	Seq      int64
	EntityID int
	// Values are the raw attribute texts ("-" marks a missing attribute).
	Values []string
}

// PairRef is one live entity-set pair, referencing Residents by index.
// A and B preserve the normalized order (RID(A) < RID(B)).
type PairRef struct {
	A, B int
	Prob float64
}

// Checkpoint is the full restorable state at watermark Seq: every arrival
// with sequence < Seq has been fully processed and is reflected here; no
// later arrival has touched any state.
type Checkpoint struct {
	// Seq is the watermark S: the next arrival sequence to be assigned.
	Seq int64
	// Completed and Rejected restore the operator's progress counters.
	Completed int64
	Rejected  int64
	// Shards is the shard count K at capture time (informational — restore
	// may use any K', residency is re-derived from the topic hash).
	Shards int

	// Problem-configuration fingerprint; restore refuses a checkpoint taken
	// under a different configuration, because result equivalence would not
	// hold.
	Streams     int
	WindowSize  int
	TimeSpan    int64
	Gamma       float64
	Alpha       float64
	Keywords    []string
	SchemaAttrs []string

	// Residents in ascending ArrivalSeq order.
	Residents []Resident
	// Pairs is the live entity set.
	Pairs []PairRef

	// SlotTable is the engine's topic-hash→shard layout at capture time
	// (format v2+): entry s names the shard owning hash slot s, every value
	// in [0, Shards). Empty for version-1 checkpoints, single-threaded
	// snapshots, and engines on the default modulo layout. Like Shards it is
	// advisory: restore adopts it only when the shard counts line up, because
	// placement never affects which pairs are emitted.
	SlotTable []int
}

// Validate checks the checkpoint's structural invariants: ascending arrival
// sequences below the watermark, value arity matching the schema, and pair
// references in range.
func (c *Checkpoint) Validate() error {
	if c.Seq < 0 || c.Completed < 0 || c.Rejected < 0 {
		return fmt.Errorf("snapshot: negative counters seq=%d completed=%d rejected=%d",
			c.Seq, c.Completed, c.Rejected)
	}
	if len(c.SchemaAttrs) == 0 {
		return fmt.Errorf("snapshot: empty schema")
	}
	d := len(c.SchemaAttrs)
	last := int64(-1)
	for i, r := range c.Residents {
		if r.ArrivalSeq <= last {
			return fmt.Errorf("snapshot: resident %d arrival seq %d not ascending (prev %d)",
				i, r.ArrivalSeq, last)
		}
		last = r.ArrivalSeq
		if r.ArrivalSeq >= c.Seq {
			return fmt.Errorf("snapshot: resident %s arrival seq %d beyond watermark %d",
				r.RID, r.ArrivalSeq, c.Seq)
		}
		if r.RID == "" {
			return fmt.Errorf("snapshot: resident %d has empty RID", i)
		}
		if r.Stream < 0 || (c.Streams > 0 && r.Stream >= c.Streams) {
			return fmt.Errorf("snapshot: resident %s stream %d outside [0,%d)",
				r.RID, r.Stream, c.Streams)
		}
		if len(r.Values) != d {
			return fmt.Errorf("snapshot: resident %s has %d values, schema has %d",
				r.RID, len(r.Values), d)
		}
	}
	for i, p := range c.Pairs {
		if p.A < 0 || p.A >= len(c.Residents) || p.B < 0 || p.B >= len(c.Residents) {
			return fmt.Errorf("snapshot: pair %d references residents (%d,%d) of %d",
				i, p.A, p.B, len(c.Residents))
		}
		if c.Residents[p.A].RID >= c.Residents[p.B].RID {
			return fmt.Errorf("snapshot: pair %d not RID-normalized (%s vs %s)",
				i, c.Residents[p.A].RID, c.Residents[p.B].RID)
		}
	}
	if len(c.SlotTable) > 0 {
		if c.Shards < 1 {
			return fmt.Errorf("snapshot: slot table with %d entries but shard count %d",
				len(c.SlotTable), c.Shards)
		}
		for s, sh := range c.SlotTable {
			if sh < 0 || sh >= c.Shards {
				return fmt.Errorf("snapshot: slot %d assigned to shard %d of %d", s, sh, c.Shards)
			}
		}
	}
	return nil
}

// writer accumulates the payload.
type writer struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (w *writer) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *writer) varint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *writer) float(f float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	w.buf.Write(b[:])
}

// Encode writes the checkpoint to w in the versioned binary format.
//
//terids:deterministic
func Encode(w io.Writer, c *Checkpoint) error {
	if err := c.Validate(); err != nil {
		return err
	}
	var p writer
	p.varint(c.Seq)
	p.varint(c.Completed)
	p.varint(c.Rejected)
	p.varint(int64(c.Shards))
	p.varint(int64(c.Streams))
	p.varint(int64(c.WindowSize))
	p.varint(c.TimeSpan)
	p.float(c.Gamma)
	p.float(c.Alpha)
	p.uvarint(uint64(len(c.Keywords)))
	for _, kw := range c.Keywords {
		p.str(kw)
	}
	p.uvarint(uint64(len(c.SchemaAttrs)))
	for _, a := range c.SchemaAttrs {
		p.str(a)
	}

	// Intern attribute values: the table holds each distinct text once,
	// residents reference it by index.
	var table []string
	index := make(map[string]int)
	intern := func(s string) int {
		if i, ok := index[s]; ok {
			return i
		}
		index[s] = len(table)
		table = append(table, s)
		return len(table) - 1
	}
	refs := make([][]int, len(c.Residents))
	for i, r := range c.Residents {
		refs[i] = make([]int, len(r.Values))
		for j, v := range r.Values {
			refs[i][j] = intern(v)
		}
	}
	p.uvarint(uint64(len(table)))
	for _, s := range table {
		p.str(s)
	}

	p.uvarint(uint64(len(c.Residents)))
	for i, r := range c.Residents {
		p.varint(r.ArrivalSeq)
		p.str(r.RID)
		p.varint(int64(r.Stream))
		p.varint(r.Seq)
		p.varint(int64(r.EntityID))
		for _, ref := range refs[i] {
			p.uvarint(uint64(ref))
		}
	}
	p.uvarint(uint64(len(c.Pairs)))
	for _, pr := range c.Pairs {
		p.uvarint(uint64(pr.A))
		p.uvarint(uint64(pr.B))
		p.float(pr.Prob)
	}
	p.uvarint(uint64(len(c.SlotTable)))
	for _, sh := range c.SlotTable {
		p.uvarint(uint64(sh))
	}

	return writeEnvelope(w, Version, p.buf.Bytes())
}

// writeEnvelope frames one payload: magic, version, length, payload, crc.
func writeEnvelope(w io.Writer, version uint16, payload []byte) error {
	// Mirror readEnvelope's limit: an oversized checkpoint that encodes fine
	// but can never be read back is silent data loss discovered at restore
	// time.
	if len(payload) > maxSection {
		return fmt.Errorf("snapshot: payload %d bytes exceeds the format limit %d", len(payload), maxSection)
	}
	var hdr bytes.Buffer
	hdr.WriteString(Magic)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], version)
	hdr.Write(u16[:])
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(payload)))
	hdr.Write(u64[:])
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(sum[:])
	return err
}

// reader decodes the payload.
type reader struct {
	b   *bytes.Reader
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.b)
	if err != nil {
		r.err = fmt.Errorf("snapshot: truncated payload: %w", err)
	}
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.b)
	if err != nil {
		r.err = fmt.Errorf("snapshot: truncated payload: %w", err)
	}
	return v
}

func (r *reader) count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	// Every encoded element consumes at least one payload byte, so a count
	// beyond the remaining bytes is corrupt — reject it before any make()
	// sized by it can allocate gigabytes off a tiny crafted file.
	if n > maxSection || n > uint64(r.b.Len()) {
		r.err = fmt.Errorf("snapshot: section length %d exceeds remaining payload %d", n, r.b.Len())
	}
	return int(n)
}

func (r *reader) str() string {
	n := r.count()
	if r.err != nil {
		return ""
	}
	if int64(n) > int64(r.b.Len()) {
		r.err = fmt.Errorf("snapshot: string length %d exceeds remaining payload", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.b, b); err != nil {
		r.err = fmt.Errorf("snapshot: truncated string: %w", err)
		return ""
	}
	return string(b)
}

func (r *reader) float() float64 {
	if r.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(r.b, b[:]); err != nil {
		r.err = fmt.Errorf("snapshot: truncated float: %w", err)
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// readEnvelope reads and verifies one file envelope (magic, version,
// length, checksum) and returns the version plus the raw payload.
func readEnvelope(src io.Reader) (uint16, []byte, error) {
	br := bufio.NewReader(src)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return 0, nil, fmt.Errorf("snapshot: bad magic %q (not a TER-iDS checkpoint)", magic)
	}
	var fixed [10]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return 0, nil, fmt.Errorf("snapshot: reading header: %w", err)
	}
	ver := binary.LittleEndian.Uint16(fixed[0:2])
	if ver < 1 || ver > DeltaVersion {
		return 0, nil, fmt.Errorf("snapshot: format version %d, this build reads 1..%d", ver, DeltaVersion)
	}
	size := binary.LittleEndian.Uint64(fixed[2:10])
	if size > maxSection {
		return 0, nil, fmt.Errorf("snapshot: implausible payload size %d", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("snapshot: truncated payload: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return 0, nil, fmt.Errorf("snapshot: reading checksum: %w", err)
	}
	if want, got := binary.LittleEndian.Uint32(sum[:]), crc32.ChecksumIEEE(payload); want != got {
		return 0, nil, fmt.Errorf("snapshot: checksum mismatch (stored %08x, computed %08x): corrupt checkpoint", want, got)
	}
	return ver, payload, nil
}

// Decode reads one full checkpoint, verifying magic, version, and checksum
// before parsing, and structural invariants after. A delta file (version 3)
// is rejected — it cannot stand alone; use DecodeAny or DecodeDelta.
func Decode(src io.Reader) (*Checkpoint, error) {
	ver, payload, err := readEnvelope(src)
	if err != nil {
		return nil, err
	}
	if ver == DeltaVersion {
		return nil, fmt.Errorf("snapshot: version-%d file is a delta checkpoint, not a standalone snapshot", ver)
	}
	return decodeCheckpointPayload(ver, payload)
}

// decodeCheckpointPayload parses a full-checkpoint payload (versions 1..2).
func decodeCheckpointPayload(ver uint16, payload []byte) (*Checkpoint, error) {
	r := &reader{b: bytes.NewReader(payload)}
	c := &Checkpoint{
		Seq:        r.varint(),
		Completed:  r.varint(),
		Rejected:   r.varint(),
		Shards:     int(r.varint()),
		Streams:    int(r.varint()),
		WindowSize: int(r.varint()),
		TimeSpan:   r.varint(),
		Gamma:      r.float(),
		Alpha:      r.float(),
	}
	// Sections grow by append with a capped initial capacity: a declared
	// count never sizes an allocation beyond maxPrealloc, so memory use is
	// bounded by what the payload actually contains — a corrupt count fails
	// at the first missing element instead of in make().
	if n := r.count(); r.err == nil {
		c.Keywords = make([]string, 0, prealloc(n))
		for i := 0; i < n && r.err == nil; i++ {
			c.Keywords = append(c.Keywords, r.str())
		}
	}
	if n := r.count(); r.err == nil {
		c.SchemaAttrs = make([]string, 0, prealloc(n))
		for i := 0; i < n && r.err == nil; i++ {
			c.SchemaAttrs = append(c.SchemaAttrs, r.str())
		}
	}
	var table []string
	if n := r.count(); r.err == nil {
		table = make([]string, 0, prealloc(n))
		for i := 0; i < n && r.err == nil; i++ {
			table = append(table, r.str())
		}
	}
	if n := r.count(); r.err == nil {
		c.Residents = make([]Resident, 0, prealloc(n))
		for i := 0; i < n && r.err == nil; i++ {
			res := Resident{
				ArrivalSeq: r.varint(),
				RID:        r.str(),
				Stream:     int(r.varint()),
				Seq:        r.varint(),
				EntityID:   int(r.varint()),
			}
			res.Values = make([]string, len(c.SchemaAttrs))
			for j := range res.Values {
				ref := r.uvarint()
				if r.err != nil {
					break
				}
				if ref >= uint64(len(table)) {
					r.err = fmt.Errorf("snapshot: resident %d value ref %d outside table of %d",
						i, ref, len(table))
					break
				}
				res.Values[j] = table[ref]
			}
			if r.err == nil {
				c.Residents = append(c.Residents, res)
			}
		}
	}
	if n := r.count(); r.err == nil {
		c.Pairs = make([]PairRef, 0, prealloc(n))
		for i := 0; i < n && r.err == nil; i++ {
			c.Pairs = append(c.Pairs, PairRef{A: int(r.uvarint()), B: int(r.uvarint()), Prob: r.float()})
		}
	}
	if ver >= 2 {
		if n := r.count(); r.err == nil && n > 0 {
			c.SlotTable = make([]int, 0, prealloc(n))
			for i := 0; i < n && r.err == nil; i++ {
				c.SlotTable = append(c.SlotTable, int(r.uvarint()))
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.b.Len() != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing payload bytes", r.b.Len())
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// WriteFile atomically writes the checkpoint to path (temp file + rename, so
// a crash mid-write never clobbers a previous good checkpoint).
func WriteFile(path string, c *Checkpoint) error {
	return writeFileAtomic(path, func(w io.Writer) error { return Encode(w, c) })
}

// writeFileAtomic writes enc's output to path via temp file + rename.
func writeFileAtomic(path string, enc func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".terids-ckpt-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := enc(f); err != nil {
		_ = f.Close()      // walerr: the encode failure is the error being returned
		_ = os.Remove(tmp) // walerr: best-effort temp cleanup on the error path
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()      // walerr: the sync failure is the error being returned
		_ = os.Remove(tmp) // walerr: best-effort temp cleanup on the error path
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp) // walerr: best-effort temp cleanup on the error path
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp) // walerr: best-effort temp cleanup on the error path
		return err
	}
	// Fsync the directory so the rename itself is durable: callers (e.g. the
	// WAL checkpointer) delete now-redundant state right after WriteFile
	// returns, and a power loss must not be able to lose both.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // walerr: the sync failure is the error being returned
		return err
	}
	return d.Close()
}

// ReadFile loads and verifies a checkpoint from path.
func ReadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore walerr read-only load; close cannot lose data
	defer f.Close()
	return Decode(f)
}
