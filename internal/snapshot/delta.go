// Delta (incremental) checkpoints, snapshot format version 3.
//
// A delta captures the operator state at watermark Seq as a diff over the
// checkpoint at watermark BaseSeq: residents that left the windows, residents
// that arrived, and the entity-set pairs that changed — everything keyed by
// RID and merge sequence, so applying the delta to its base reproduces the
// full checkpoint bit for bit. Deltas chain: a delta's base may itself be a
// delta, terminating at a full snapshot. The background checkpointer writes a
// full snapshot every N deltas so chains stay short and a single corrupt file
// costs at most one chain.
//
// The window model makes deltas naturally small: between two checkpoints at
// watermarks B < S, every surviving resident is unchanged, every departed
// resident is named by RID, and every new resident carries an arrival
// sequence in [B, S) — so the delta's size tracks the arrival rate between
// checkpoints, not the window size.
package snapshot

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"slices"
	"sort"
)

// DeltaPair is one entity-set change, keyed by the pair's normalized RIDs
// (A < B).
type DeltaPair struct {
	A, B string
	Prob float64
}

// Delta is the state at watermark Seq expressed as a diff over the
// checkpoint at watermark BaseSeq. The problem-configuration fingerprint is
// not repeated: it is inherited from the base on apply (ComputeDelta refuses
// bases with a different configuration).
type Delta struct {
	// BaseSeq is the watermark of the checkpoint this delta applies to.
	BaseSeq int64
	// Seq, Completed, Rejected, Shards, SlotTable mirror Checkpoint at the
	// new watermark.
	Seq       int64
	Completed int64
	Rejected  int64
	Shards    int
	SlotTable []int

	// RemovedRIDs names the base residents no longer window-live at Seq (or
	// replaced by a re-arrival under the same RID), in base order.
	RemovedRIDs []string
	// Added holds the residents live at Seq that the base does not carry, in
	// ascending ArrivalSeq order; every arrival sequence is in [BaseSeq, Seq).
	Added []Resident
	// RemovedPairs / AddedPairs are the entity-set diff by normalized RID
	// pair; an added pair overwrites any base pair with the same key (a
	// refreshed probability).
	RemovedPairs [][2]string
	AddedPairs   []DeltaPair
}

// Validate checks the delta's structural invariants.
func (d *Delta) Validate() error {
	if d.BaseSeq < 0 || d.Seq < d.BaseSeq {
		return fmt.Errorf("snapshot: delta watermarks base=%d seq=%d not ascending", d.BaseSeq, d.Seq)
	}
	if d.Completed < 0 || d.Rejected < 0 {
		return fmt.Errorf("snapshot: delta negative counters completed=%d rejected=%d", d.Completed, d.Rejected)
	}
	for i, rid := range d.RemovedRIDs {
		if rid == "" {
			return fmt.Errorf("snapshot: delta removed rid %d empty", i)
		}
	}
	last := d.BaseSeq - 1
	for i, r := range d.Added {
		if r.ArrivalSeq <= last {
			return fmt.Errorf("snapshot: delta resident %d arrival seq %d not ascending past base %d (prev %d)",
				i, r.ArrivalSeq, d.BaseSeq, last)
		}
		last = r.ArrivalSeq
		if r.ArrivalSeq >= d.Seq {
			return fmt.Errorf("snapshot: delta resident %s arrival seq %d beyond watermark %d",
				r.RID, r.ArrivalSeq, d.Seq)
		}
		if r.RID == "" {
			return fmt.Errorf("snapshot: delta resident %d has empty RID", i)
		}
		if r.Stream < 0 {
			return fmt.Errorf("snapshot: delta resident %s has negative stream %d", r.RID, r.Stream)
		}
	}
	for i, p := range d.RemovedPairs {
		if p[0] == "" || p[0] >= p[1] {
			return fmt.Errorf("snapshot: delta removed pair %d (%q,%q) not RID-normalized", i, p[0], p[1])
		}
	}
	for i, p := range d.AddedPairs {
		if p.A == "" || p.A >= p.B {
			return fmt.Errorf("snapshot: delta added pair %d (%q,%q) not RID-normalized", i, p.A, p.B)
		}
	}
	if len(d.SlotTable) > 0 {
		if d.Shards < 1 {
			return fmt.Errorf("snapshot: delta slot table with %d entries but shard count %d",
				len(d.SlotTable), d.Shards)
		}
		for s, sh := range d.SlotTable {
			if sh < 0 || sh >= d.Shards {
				return fmt.Errorf("snapshot: delta slot %d assigned to shard %d of %d", s, sh, d.Shards)
			}
		}
	}
	return nil
}

// sameConfig reports whether two checkpoints fingerprint the same problem
// configuration — the precondition for expressing one as a diff of the other.
func sameConfig(a, b *Checkpoint) bool {
	return a.Streams == b.Streams && a.WindowSize == b.WindowSize &&
		a.TimeSpan == b.TimeSpan && a.Gamma == b.Gamma && a.Alpha == b.Alpha &&
		slices.Equal(a.Keywords, b.Keywords) && slices.Equal(a.SchemaAttrs, b.SchemaAttrs)
}

func pairKey(a, b string) string { return a + "\x00" + b }

// ComputeDelta expresses cur as a diff over base. ApplyDelta(base, delta)
// reproduces cur exactly — residents, pair set, probabilities, and ordering.
//
//terids:deterministic
func ComputeDelta(base, cur *Checkpoint) (*Delta, error) {
	if !sameConfig(base, cur) {
		return nil, fmt.Errorf("snapshot: delta across different problem configurations (base seq %d, cur seq %d)",
			base.Seq, cur.Seq)
	}
	if cur.Seq < base.Seq {
		return nil, fmt.Errorf("snapshot: delta base watermark %d is newer than target %d", base.Seq, cur.Seq)
	}
	d := &Delta{
		BaseSeq:   base.Seq,
		Seq:       cur.Seq,
		Completed: cur.Completed,
		Rejected:  cur.Rejected,
		Shards:    cur.Shards,
		SlotTable: slices.Clone(cur.SlotTable),
	}
	baseRes := make(map[string]*Resident, len(base.Residents))
	for i := range base.Residents {
		baseRes[base.Residents[i].RID] = &base.Residents[i]
	}
	curRes := make(map[string]*Resident, len(cur.Residents))
	for i := range cur.Residents {
		r := &cur.Residents[i]
		curRes[r.RID] = r
		if b, ok := baseRes[r.RID]; ok && b.ArrivalSeq == r.ArrivalSeq &&
			b.Stream == r.Stream && b.Seq == r.Seq && b.EntityID == r.EntityID &&
			slices.Equal(b.Values, r.Values) {
			continue // unchanged survivor
		}
		d.Added = append(d.Added, *r)
	}
	for i := range base.Residents {
		r := &base.Residents[i]
		if c, ok := curRes[r.RID]; !ok || c.ArrivalSeq != r.ArrivalSeq {
			d.RemovedRIDs = append(d.RemovedRIDs, r.RID)
		}
	}

	basePairs := make(map[string]float64, len(base.Pairs))
	for _, p := range base.Pairs {
		basePairs[pairKey(base.Residents[p.A].RID, base.Residents[p.B].RID)] = p.Prob
	}
	curKeys := make(map[string]bool, len(cur.Pairs))
	for _, p := range cur.Pairs {
		a, b := cur.Residents[p.A].RID, cur.Residents[p.B].RID
		curKeys[pairKey(a, b)] = true
		if prob, ok := basePairs[pairKey(a, b)]; !ok || prob != p.Prob {
			d.AddedPairs = append(d.AddedPairs, DeltaPair{A: a, B: b, Prob: p.Prob})
		}
	}
	for _, p := range base.Pairs {
		a, b := base.Residents[p.A].RID, base.Residents[p.B].RID
		if !curKeys[pairKey(a, b)] {
			d.RemovedPairs = append(d.RemovedPairs, [2]string{a, b})
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// ApplyDelta materializes the full checkpoint at d.Seq from its base. The
// result is exactly the checkpoint ComputeDelta diffed against the base —
// Validate-clean, with residents in ascending arrival order and pairs in the
// canonical sorted-key order.
//
//terids:deterministic
func ApplyDelta(base *Checkpoint, d *Delta) (*Checkpoint, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if base.Seq != d.BaseSeq {
		return nil, fmt.Errorf("snapshot: delta expects base watermark %d, base is at %d", d.BaseSeq, base.Seq)
	}
	out := &Checkpoint{
		Seq:         d.Seq,
		Completed:   d.Completed,
		Rejected:    d.Rejected,
		Shards:      d.Shards,
		Streams:     base.Streams,
		WindowSize:  base.WindowSize,
		TimeSpan:    base.TimeSpan,
		Gamma:       base.Gamma,
		Alpha:       base.Alpha,
		Keywords:    slices.Clone(base.Keywords),
		SchemaAttrs: slices.Clone(base.SchemaAttrs),
		SlotTable:   slices.Clone(d.SlotTable),
	}
	removed := make(map[string]bool, len(d.RemovedRIDs))
	for _, rid := range d.RemovedRIDs {
		removed[rid] = true
	}
	// Survivors keep their base order (ascending arrival seq); every added
	// resident arrived after the base watermark, so appending preserves it.
	out.Residents = make([]Resident, 0, len(base.Residents)-len(removed)+len(d.Added))
	for i := range base.Residents {
		if !removed[base.Residents[i].RID] {
			out.Residents = append(out.Residents, base.Residents[i])
		}
	}
	out.Residents = append(out.Residents, d.Added...)

	pairs := make(map[string]DeltaPair, len(base.Pairs)+len(d.AddedPairs))
	for _, p := range base.Pairs {
		a, b := base.Residents[p.A].RID, base.Residents[p.B].RID
		pairs[pairKey(a, b)] = DeltaPair{A: a, B: b, Prob: p.Prob}
	}
	for _, rp := range d.RemovedPairs {
		delete(pairs, pairKey(rp[0], rp[1]))
	}
	for _, ap := range d.AddedPairs {
		pairs[pairKey(ap.A, ap.B)] = ap
	}
	idx := make(map[string]int, len(out.Residents))
	for i := range out.Residents {
		idx[out.Residents[i].RID] = i
	}
	out.Pairs = make([]PairRef, 0, len(pairs))
	//lint:ignore nodeterm iteration order erased: pairs are sorted before encoding below
	for _, p := range pairs {
		a, okA := idx[p.A]
		b, okB := idx[p.B]
		if !okA || !okB {
			return nil, fmt.Errorf("snapshot: delta pair (%s, %s) references a non-resident tuple", p.A, p.B)
		}
		out.Pairs = append(out.Pairs, PairRef{A: a, B: b, Prob: p.Prob})
	}
	// Canonical checkpoint pair order: sorted by (RID(A), RID(B)), matching
	// ResultSet.Pairs — so applying a delta reproduces the full capture
	// byte-for-byte.
	sort.Slice(out.Pairs, func(i, j int) bool {
		a, b := out.Pairs[i], out.Pairs[j]
		if out.Residents[a.A].RID != out.Residents[b.A].RID {
			return out.Residents[a.A].RID < out.Residents[b.A].RID
		}
		return out.Residents[a.B].RID < out.Residents[b.B].RID
	})
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("snapshot: applying delta %d→%d: %w", d.BaseSeq, d.Seq, err)
	}
	return out, nil
}

// EncodeDelta writes the delta in the versioned binary envelope (version 3).
func EncodeDelta(w io.Writer, d *Delta) error {
	if err := d.Validate(); err != nil {
		return err
	}
	var p writer
	p.varint(d.BaseSeq)
	p.varint(d.Seq)
	p.varint(d.Completed)
	p.varint(d.Rejected)
	p.varint(int64(d.Shards))
	p.uvarint(uint64(len(d.SlotTable)))
	for _, sh := range d.SlotTable {
		p.uvarint(uint64(sh))
	}
	p.uvarint(uint64(len(d.RemovedRIDs)))
	for _, rid := range d.RemovedRIDs {
		p.str(rid)
	}
	p.uvarint(uint64(len(d.Added)))
	for _, r := range d.Added {
		p.varint(r.ArrivalSeq)
		p.str(r.RID)
		p.varint(int64(r.Stream))
		p.varint(r.Seq)
		p.varint(int64(r.EntityID))
		p.uvarint(uint64(len(r.Values)))
		for _, v := range r.Values {
			p.str(v)
		}
	}
	p.uvarint(uint64(len(d.RemovedPairs)))
	for _, rp := range d.RemovedPairs {
		p.str(rp[0])
		p.str(rp[1])
	}
	p.uvarint(uint64(len(d.AddedPairs)))
	for _, ap := range d.AddedPairs {
		p.str(ap.A)
		p.str(ap.B)
		p.float(ap.Prob)
	}
	return writeEnvelope(w, DeltaVersion, p.buf.Bytes())
}

// DecodeDelta reads one delta checkpoint, rejecting full-checkpoint files.
func DecodeDelta(src io.Reader) (*Delta, error) {
	ver, payload, err := readEnvelope(src)
	if err != nil {
		return nil, err
	}
	if ver != DeltaVersion {
		return nil, fmt.Errorf("snapshot: version-%d file is a full checkpoint, not a delta", ver)
	}
	return decodeDeltaPayload(payload)
}

func decodeDeltaPayload(payload []byte) (*Delta, error) {
	r := &reader{b: bytes.NewReader(payload)}
	d := &Delta{
		BaseSeq:   r.varint(),
		Seq:       r.varint(),
		Completed: r.varint(),
		Rejected:  r.varint(),
		Shards:    int(r.varint()),
	}
	if n := r.count(); r.err == nil && n > 0 {
		d.SlotTable = make([]int, 0, prealloc(n))
		for i := 0; i < n && r.err == nil; i++ {
			d.SlotTable = append(d.SlotTable, int(r.uvarint()))
		}
	}
	if n := r.count(); r.err == nil {
		d.RemovedRIDs = make([]string, 0, prealloc(n))
		for i := 0; i < n && r.err == nil; i++ {
			d.RemovedRIDs = append(d.RemovedRIDs, r.str())
		}
	}
	if n := r.count(); r.err == nil {
		d.Added = make([]Resident, 0, prealloc(n))
		for i := 0; i < n && r.err == nil; i++ {
			res := Resident{
				ArrivalSeq: r.varint(),
				RID:        r.str(),
				Stream:     int(r.varint()),
				Seq:        r.varint(),
				EntityID:   int(r.varint()),
			}
			nv := r.count()
			if r.err != nil {
				break
			}
			res.Values = make([]string, 0, prealloc(nv))
			for j := 0; j < nv && r.err == nil; j++ {
				res.Values = append(res.Values, r.str())
			}
			if r.err == nil {
				d.Added = append(d.Added, res)
			}
		}
	}
	if n := r.count(); r.err == nil {
		d.RemovedPairs = make([][2]string, 0, prealloc(n))
		for i := 0; i < n && r.err == nil; i++ {
			d.RemovedPairs = append(d.RemovedPairs, [2]string{r.str(), r.str()})
		}
	}
	if n := r.count(); r.err == nil {
		d.AddedPairs = make([]DeltaPair, 0, prealloc(n))
		for i := 0; i < n && r.err == nil; i++ {
			d.AddedPairs = append(d.AddedPairs, DeltaPair{A: r.str(), B: r.str(), Prob: r.float()})
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.b.Len() != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing payload bytes", r.b.Len())
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// DecodeAny reads either kind of checkpoint file: exactly one of the returns
// is non-nil on success. Recovery code that walks a checkpoint directory uses
// this to sniff full snapshots vs deltas by the envelope version.
func DecodeAny(src io.Reader) (*Checkpoint, *Delta, error) {
	ver, payload, err := readEnvelope(src)
	if err != nil {
		return nil, nil, err
	}
	if ver == DeltaVersion {
		d, err := decodeDeltaPayload(payload)
		return nil, d, err
	}
	c, err := decodeCheckpointPayload(ver, payload)
	return c, nil, err
}

// WriteDeltaFile atomically writes the delta to path (temp file + rename).
func WriteDeltaFile(path string, d *Delta) error {
	return writeFileAtomic(path, func(w io.Writer) error { return EncodeDelta(w, d) })
}

// ReadDeltaFile loads and verifies a delta checkpoint from path.
func ReadDeltaFile(path string) (*Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore walerr read-only load; close cannot lose data
	defer f.Close()
	return DecodeDelta(f)
}
