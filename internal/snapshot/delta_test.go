package snapshot

import (
	"bytes"
	"reflect"
	"testing"
)

// evolvedCheckpoint mutates sampleCheckpoint the way a live window does
// between two checkpoints: one resident expired, two arrived, one pair
// left with its member, one new pair formed.
func evolvedCheckpoint() *Checkpoint {
	c := sampleCheckpoint()
	c.Seq = 20
	c.Completed = 20
	c.Rejected = 2
	c.Shards = 2
	c.SlotTable = make([]int, 256)
	for i := range c.SlotTable {
		c.SlotTable[i] = i % c.Shards
	}
	// "a1" (index 0) expired; "b9" and "c2" survive; "d4" and "e5" arrived.
	c.Residents = []Resident{
		c.Residents[1],
		c.Residents[2],
		{ArrivalSeq: 14, RID: "d4", Stream: 1, Seq: 12, EntityID: 7,
			Values: []string{"deep nets", "nips", "2016"}},
		{ArrivalSeq: 17, RID: "e5", Stream: 0, Seq: 15, EntityID: -1,
			Values: []string{"-", "nips", "2016"}},
	}
	// The (a1, b9) pair died with a1; (c2, d4) formed.
	c.Pairs = []PairRef{{A: 1, B: 2, Prob: 0.6}}
	return c
}

// TestDeltaRoundtrip: ComputeDelta → ApplyDelta reproduces the target
// checkpoint exactly, and the delta survives its binary encoding.
func TestDeltaRoundtrip(t *testing.T) {
	base, cur := sampleCheckpoint(), evolvedCheckpoint()
	d, err := ComputeDelta(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if d.BaseSeq != base.Seq || d.Seq != cur.Seq {
		t.Fatalf("delta spans %d→%d, want %d→%d", d.BaseSeq, d.Seq, base.Seq, cur.Seq)
	}
	if len(d.RemovedRIDs) != 1 || d.RemovedRIDs[0] != "a1" {
		t.Fatalf("removed rids %v, want [a1]", d.RemovedRIDs)
	}
	if len(d.Added) != 2 || d.Added[0].RID != "d4" || d.Added[1].RID != "e5" {
		t.Fatalf("added residents %+v, want d4,e5", d.Added)
	}
	if len(d.RemovedPairs) != 1 || d.RemovedPairs[0] != [2]string{"a1", "b9"} {
		t.Fatalf("removed pairs %v, want [(a1,b9)]", d.RemovedPairs)
	}
	if len(d.AddedPairs) != 1 || d.AddedPairs[0].A != "c2" || d.AddedPairs[0].B != "d4" {
		t.Fatalf("added pairs %+v, want (c2,d4)", d.AddedPairs)
	}

	var buf bytes.Buffer
	if err := EncodeDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ApplyDelta(base, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cur) {
		t.Fatalf("apply(base, delta) != cur:\n got %+v\nwant %+v", got, cur)
	}
	// A materialized checkpoint must re-encode identically to a direct full
	// capture — the byte-identity the deep-replay path leans on.
	var full, applied bytes.Buffer
	if err := Encode(&full, cur); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&applied, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full.Bytes(), applied.Bytes()) {
		t.Fatal("materialized checkpoint encodes differently from the full capture")
	}
}

// TestDeltaReArrival: a RID that expired and re-arrived with new values
// between checkpoints is carried as remove + add, not silently kept.
func TestDeltaReArrival(t *testing.T) {
	base, cur := sampleCheckpoint(), evolvedCheckpoint()
	cur.Residents = append(cur.Residents, Resident{
		ArrivalSeq: 19, RID: "a1", Stream: 0, Seq: 18, EntityID: 7,
		Values: []string{"deeper nets", "nips", "2017"},
	})
	d, err := ComputeDelta(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.RemovedRIDs) != 1 || d.RemovedRIDs[0] != "a1" {
		t.Fatalf("removed rids %v, want [a1] (replaced)", d.RemovedRIDs)
	}
	found := false
	for _, r := range d.Added {
		if r.RID == "a1" && r.ArrivalSeq == 19 {
			found = true
		}
	}
	if !found {
		t.Fatalf("re-arrived a1 missing from added residents: %+v", d.Added)
	}
	got, err := ApplyDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cur) {
		t.Fatal("apply with re-arrival != cur")
	}
}

// TestDeltaEmptyDiff: identical checkpoints produce an empty (but valid,
// applicable) delta — the no-op case a quiet stream hits.
func TestDeltaEmptyDiff(t *testing.T) {
	base := sampleCheckpoint()
	cur := sampleCheckpoint()
	d, err := ComputeDelta(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.RemovedRIDs)+len(d.Added)+len(d.RemovedPairs)+len(d.AddedPairs) != 0 {
		t.Fatalf("identical checkpoints produced a non-empty diff: %+v", d)
	}
	got, err := ApplyDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cur) {
		t.Fatal("empty delta does not reproduce the base")
	}
}

// TestDeltaRejects covers the guard rails: config drift, watermark order,
// wrong base on apply, and the Decode/DecodeDelta version cross-checks.
func TestDeltaRejects(t *testing.T) {
	base, cur := sampleCheckpoint(), evolvedCheckpoint()

	drifted := evolvedCheckpoint()
	drifted.Alpha = 0.9
	if _, err := ComputeDelta(base, drifted); err == nil {
		t.Fatal("delta across different configurations accepted")
	}
	if _, err := ComputeDelta(cur, base); err == nil {
		t.Fatal("delta with a newer base than target accepted")
	}

	d, err := ComputeDelta(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	wrongBase := evolvedCheckpoint()
	if _, err := ApplyDelta(wrongBase, d); err == nil {
		t.Fatal("apply onto a base at the wrong watermark accepted")
	}

	// The two decoders refuse each other's files.
	var db, cb bytes.Buffer
	if err := EncodeDelta(&db, d); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&cb, base); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(db.Bytes())); err == nil {
		t.Fatal("Decode accepted a delta file")
	}
	if _, err := DecodeDelta(bytes.NewReader(cb.Bytes())); err == nil {
		t.Fatal("DecodeDelta accepted a full checkpoint file")
	}
	// DecodeAny sniffs both.
	if c, dd, err := DecodeAny(bytes.NewReader(cb.Bytes())); err != nil || c == nil || dd != nil {
		t.Fatalf("DecodeAny(full) = (%v, %v, %v)", c, dd, err)
	}
	if c, dd, err := DecodeAny(bytes.NewReader(db.Bytes())); err != nil || c != nil || dd == nil {
		t.Fatalf("DecodeAny(delta) = (%v, %v, %v)", c, dd, err)
	}
}

// TestDeltaFileRoundtrip: the atomic file writer + reader path.
func TestDeltaFileRoundtrip(t *testing.T) {
	base, cur := sampleCheckpoint(), evolvedCheckpoint()
	d, err := ComputeDelta(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/x.dckpt"
	if err := WriteDeltaFile(path, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDeltaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, d2) {
		t.Fatalf("delta file roundtrip mismatch:\n got %+v\nwant %+v", d2, d)
	}
}
