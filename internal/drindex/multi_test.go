package drindex

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"terids/internal/rules"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

// TestMultiMatchesPerRuleQueries: the batched traversal must return exactly
// the union of per-rule results, labeled with the right rule indexes.
func TestMultiMatchesPerRuleQueries(t *testing.T) {
	repo, sel := buildFixture(t, 100, 11)
	ix, err := Build(repo, sel, tokens.New("diabetes"))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(12))
	mkRules := func() []*rules.Rule {
		var rs []*rules.Rule
		n := 1 + r.Intn(6)
		for i := 0; i < n; i++ {
			var dets []rules.Constraint
			if r.Intn(3) == 0 {
				dets = append(dets, rules.Constraint{
					Attr: 0, Kind: rules.Const, Value: "male", Toks: tokens.New("male"),
				})
			}
			lo := r.Float64() * 0.4
			dets = append(dets, rules.Constraint{
				Attr: 1, Kind: rules.Interval, Min: lo, Max: lo + 0.1 + r.Float64()*0.4,
			})
			rs = append(rs, &rules.Rule{
				Kind: rules.KindCDD, Dependent: 2, Determinants: dets,
				DepMin: 0, DepMax: r.Float64(),
			})
		}
		return rs
	}
	for trial := 0; trial < 40; trial++ {
		rs := mkRules()
		q := tuple.MustRecord(schema, "q", 0, 0,
			[]string{"male", "thirst weight loss vision", "-"})
		// Keep only rules that apply to q (the caller's contract).
		applicable := rs[:0]
		for _, rule := range rs {
			if rule.AppliesTo(q) {
				applicable = append(applicable, rule)
			}
		}
		if len(applicable) == 0 {
			continue
		}
		type hit struct {
			rule int
			rid  string
		}
		var multi, single []hit
		ix.MatchingSamplesMulti(q, applicable, func(ri int, s *tuple.Record) bool {
			multi = append(multi, hit{ri, s.RID})
			return true
		})
		for ri, rule := range applicable {
			ix.MatchingSamples(q, rule, func(s *tuple.Record) bool {
				single = append(single, hit{ri, s.RID})
				return true
			})
		}
		key := func(h hit) string { return fmt.Sprintf("%d|%s", h.rule, h.rid) }
		ms := make([]string, len(multi))
		ss := make([]string, len(single))
		for i, h := range multi {
			ms[i] = key(h)
		}
		for i, h := range single {
			ss[i] = key(h)
		}
		sort.Strings(ms)
		sort.Strings(ss)
		if fmt.Sprint(ms) != fmt.Sprint(ss) {
			t.Fatalf("trial %d: multi %v != single %v", trial, ms, ss)
		}
	}
}

func TestMultiEmptyRules(t *testing.T) {
	repo, sel := buildFixture(t, 20, 13)
	ix, err := Build(repo, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := tuple.MustRecord(schema, "q", 0, 0, []string{"male", "fever cough aches", "-"})
	stats := ix.MatchingSamplesMulti(q, nil, func(int, *tuple.Record) bool {
		t.Fatal("no rules, no visits")
		return true
	})
	if stats.Verified != 0 {
		t.Fatal("no rules must verify nothing")
	}
}

func TestMultiEarlyStop(t *testing.T) {
	repo, sel := buildFixture(t, 60, 14)
	ix, err := Build(repo, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	rule := &rules.Rule{
		Kind: rules.KindDD, Dependent: 2,
		Determinants: []rules.Constraint{
			{Attr: 1, Kind: rules.Interval, Min: 0, Max: 1},
		},
		DepMin: 0, DepMax: 1,
	}
	q := tuple.MustRecord(schema, "q", 0, 0, []string{"male", "fever cough aches", "-"})
	n := 0
	ix.MatchingSamplesMulti(q, []*rules.Rule{rule, rule}, func(int, *tuple.Record) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d, want 1", n)
	}
}
