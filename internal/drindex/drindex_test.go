package drindex

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"terids/internal/pivot"
	"terids/internal/repository"
	"terids/internal/rules"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

var schema = tuple.MustSchema("Gender", "Symptom", "Diagnosis")

func buildFixture(t *testing.T, n int, seed int64) (*repository.Repository, *pivot.Selection) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	genders := []string{"male", "female"}
	diseases := [][2]string{
		{"thirst weight loss vision", "diabetes"},
		{"fever cough aches", "flu"},
		{"red eye itchy tears", "conjunctivitis"},
	}
	var recs []*tuple.Record
	for i := 0; i < n; i++ {
		dz := diseases[r.Intn(len(diseases))]
		sym := dz[0]
		if r.Intn(2) == 0 {
			sym += fmt.Sprintf(" extra%d", r.Intn(3))
		}
		recs = append(recs, tuple.MustRecord(schema, fmt.Sprintf("s%d", i), 0, 0,
			[]string{genders[r.Intn(2)], sym, dz[1]}))
	}
	repo, err := repository.Build(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := pivot.Select(repo, pivot.Config{Buckets: 10, MinEntropy: 1.0, CntMax: 2})
	if err != nil {
		t.Fatal(err)
	}
	return repo, sel
}

func TestBuildAndLen(t *testing.T) {
	repo, sel := buildFixture(t, 50, 1)
	ix, err := Build(repo, sel, tokens.New("diabetes"))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 50 {
		t.Fatalf("Len = %d, want 50", ix.Len())
	}
	if ix.RootSummary() == nil {
		t.Fatal("RootSummary must exist")
	}
	if !ix.RootSummary().KW.Any() {
		t.Fatal("repository contains diabetes; root keyword bit must be set")
	}
}

func TestMatchingSamplesAgainstLinearScan(t *testing.T) {
	repo, sel := buildFixture(t, 80, 2)
	ix, err := Build(repo, sel, tokens.New("diabetes"))
	if err != nil {
		t.Fatal(err)
	}
	testRules := []*rules.Rule{
		{
			Kind: rules.KindCDD, Dependent: 2,
			Determinants: []rules.Constraint{
				{Attr: 0, Kind: rules.Const, Value: "male", Toks: tokens.New("male")},
				{Attr: 1, Kind: rules.Interval, Min: 0, Max: 0.4},
			},
			DepMin: 0, DepMax: 0.3,
		},
		{
			Kind: rules.KindDD, Dependent: 2,
			Determinants: []rules.Constraint{
				{Attr: 1, Kind: rules.Interval, Min: 0.1, Max: 0.5},
			},
			DepMin: 0, DepMax: 0.5,
		},
		{
			Kind: rules.KindEditing, Dependent: 2,
			Determinants: []rules.Constraint{
				{Attr: 0, Kind: rules.Const, Value: "female", Toks: tokens.New("female")},
			},
			DepMin: 0, DepMax: 0.1,
		},
	}
	queries := []*tuple.Record{
		tuple.MustRecord(schema, "q1", 0, 0, []string{"male", "thirst weight loss vision", "-"}),
		tuple.MustRecord(schema, "q2", 0, 0, []string{"female", "fever cough aches", "-"}),
		tuple.MustRecord(schema, "q3", 0, 0, []string{"male", "red eye itchy", "-"}),
	}
	for _, rule := range testRules {
		for _, q := range queries {
			if !rule.AppliesTo(q) {
				continue
			}
			want := map[string]bool{}
			for _, s := range repo.Samples() {
				if rule.SampleMatches(q, s) {
					want[s.RID] = true
				}
			}
			got := map[string]bool{}
			stats := ix.MatchingSamples(q, rule, func(s *tuple.Record) bool {
				got[s.RID] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("rule %v query %s: got %d matches, want %d", rule, q.RID, len(got), len(want))
			}
			for rid := range want {
				if !got[rid] {
					t.Fatalf("rule %v query %s: missing sample %s", rule, q.RID, rid)
				}
			}
			if stats.Matched != len(want) {
				t.Fatalf("stats.Matched = %d, want %d", stats.Matched, len(want))
			}
		}
	}
}

func TestIndexPrunesWork(t *testing.T) {
	repo, sel := buildFixture(t, 300, 3)
	ix, err := Build(repo, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	rule := &rules.Rule{
		Kind: rules.KindCDD, Dependent: 2,
		Determinants: []rules.Constraint{
			{Attr: 1, Kind: rules.Interval, Min: 0, Max: 0.15},
		},
		DepMin: 0, DepMax: 0.2,
	}
	q := tuple.MustRecord(schema, "q", 0, 0, []string{"male", "thirst weight loss vision", "-"})
	stats := ix.MatchingSamples(q, rule, func(*tuple.Record) bool { return true })
	if stats.Verified >= 300 {
		t.Fatalf("index verified all %d samples; expected pruning", stats.Verified)
	}
}

func TestMatchingSamplesEarlyStop(t *testing.T) {
	repo, sel := buildFixture(t, 60, 4)
	ix, err := Build(repo, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	rule := &rules.Rule{
		Kind: rules.KindDD, Dependent: 2,
		Determinants: []rules.Constraint{
			{Attr: 1, Kind: rules.Interval, Min: 0, Max: 1},
		},
		DepMin: 0, DepMax: 1,
	}
	q := tuple.MustRecord(schema, "q", 0, 0, []string{"male", "fever cough aches", "-"})
	n := 0
	ix.MatchingSamples(q, rule, func(*tuple.Record) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d, want 1", n)
	}
}

func TestAddRemove(t *testing.T) {
	repo, sel := buildFixture(t, 20, 5)
	ix, err := Build(repo, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	extra := tuple.MustRecord(schema, "new1", 0, 0, []string{"male", "fever cough aches", "flu"})
	if err := repo.Add(extra); err != nil {
		t.Fatal(err)
	}
	ix.Add(extra)
	if ix.Len() != 21 {
		t.Fatalf("Len = %d after Add, want 21", ix.Len())
	}
	if !ix.Remove(extra) {
		t.Fatal("Remove must find the sample")
	}
	if ix.Remove(extra) {
		t.Fatal("second Remove must fail")
	}
	if ix.Len() != 20 {
		t.Fatalf("Len = %d after Remove, want 20", ix.Len())
	}
}

func TestBuildSchemaMismatch(t *testing.T) {
	repo, _ := buildFixture(t, 10, 6)
	badSel := &pivot.Selection{PerAttr: []pivot.AttrPivots{{Attr: 0, Toks: []tokens.Set{tokens.New("x")}}}}
	if _, err := Build(repo, badSel, nil); err == nil {
		t.Fatal("selection/schema mismatch must fail")
	}
}

func TestDeterministicMatches(t *testing.T) {
	repo, sel := buildFixture(t, 60, 7)
	ix, err := Build(repo, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	rule := &rules.Rule{
		Kind: rules.KindDD, Dependent: 2,
		Determinants: []rules.Constraint{
			{Attr: 1, Kind: rules.Interval, Min: 0, Max: 0.5},
		},
		DepMin: 0, DepMax: 0.4,
	}
	q := tuple.MustRecord(schema, "q", 0, 0, []string{"male", "fever cough aches", "-"})
	run := func() []string {
		var out []string
		ix.MatchingSamples(q, rule, func(s *tuple.Record) bool {
			out = append(out, s.RID)
			return true
		})
		sort.Strings(out)
		return out
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("matches must be deterministic")
	}
}
