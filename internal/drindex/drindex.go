// Package drindex implements the DR-index I_R of Section 5.1: an aR-tree
// over the repository samples converted to d-dimensional points (Jaccard
// distance to the main pivot per attribute), with node aggregates carrying
// keyword vectors, auxiliary-pivot distance intervals, and token-set-size
// intervals. Given an incomplete tuple and a CDD rule, the index retrieves
// the samples satisfying the rule's determinant constraints: the converted
// coordinates give a triangle-inequality necessary condition, and real
// Jaccard distances verify candidates at the leaves.
package drindex

import (
	"fmt"

	"terids/internal/agg"
	"terids/internal/artree"
	"terids/internal/pivot"
	"terids/internal/repository"
	"terids/internal/rules"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

// Index is the DR-index I_R.
type Index struct {
	repo     *repository.Repository
	sel      *pivot.Selection
	keywords tokens.Set
	nPiv     int
	tree     *artree.Tree
}

// Build converts every repository sample to its d-dimensional point and
// bulk-inserts into the aR-tree. keywords drive the keyword-vector
// aggregates (bit i = keywords[i]).
func Build(repo *repository.Repository, sel *pivot.Selection, keywords tokens.Set) (*Index, error) {
	d := repo.Schema().D()
	if len(sel.PerAttr) != d {
		return nil, fmt.Errorf("drindex: selection has %d attributes, schema %d", len(sel.PerAttr), d)
	}
	nPiv := 1 + sel.MaxAux()
	ix := &Index{
		repo:     repo,
		sel:      sel,
		keywords: keywords,
		nPiv:     nPiv,
		tree:     artree.New(d, agg.Merger{D: d, NPiv: nPiv, NKW: len(keywords)}),
	}
	for _, s := range repo.Samples() {
		ix.insert(s)
	}
	return ix, nil
}

// Len returns the number of indexed samples.
func (ix *Index) Len() int { return ix.tree.Len() }

// Add indexes a new complete sample (dynamic repository extension of
// Section 5.5). The sample must already be in the repository.
func (ix *Index) Add(s *tuple.Record) { ix.insert(s) }

func (ix *Index) insert(s *tuple.Record) {
	d := ix.repo.Schema().D()
	coords := make([]float64, d)
	sum := agg.NewSummary(d, ix.nPiv, len(ix.keywords))
	for x := 0; x < d; x++ {
		coords[x] = ix.sel.Convert(x, s.Tokens(x))
		sum.Size[x].Extend(s.Tokens(x).Len())
		for a := 0; a < ix.sel.NumPivots(x); a++ {
			sum.Dist[x][a].Extend(tokens.JaccardDistance(s.Tokens(x), ix.sel.PerAttr[x].Toks[a]))
		}
	}
	for i, kw := range ix.keywords {
		if s.ContainsAnyKeyword(tokens.New(kw)) {
			sum.KW.Set(i)
		}
	}
	ix.tree.Insert(artree.Item{Rect: artree.Point(coords...), Data: s, Agg: sum})
}

// Remove deletes a sample by RID, returning whether it was found.
func (ix *Index) Remove(s *tuple.Record) bool {
	d := ix.repo.Schema().D()
	coords := make([]float64, d)
	for x := 0; x < d; x++ {
		coords[x] = ix.sel.Convert(x, s.Tokens(x))
	}
	return ix.tree.Delete(artree.Point(coords...), func(it artree.Item) bool {
		return it.Data.(*tuple.Record).RID == s.RID
	})
}

// QueryStats reports index work per MatchingSamples call.
type QueryStats struct {
	NodesVisited int
	NodesPruned  int
	Verified     int
	Matched      int
}

// MatchingSamples streams the repository samples satisfying rule's
// determinant constraints with respect to r (the sample-side check of
// Definition 3). The traversal prunes aR-tree nodes via the converted-space
// window implied by each constraint and via auxiliary-pivot aggregates,
// then verifies real distances on the leaves. Returning false from visit
// stops the scan. The caller must have checked rule.AppliesTo(r).
func (ix *Index) MatchingSamples(r *tuple.Record, rule *rules.Rule, visit func(*tuple.Record) bool) QueryStats {
	return ix.MatchingSamplesMulti(r, []*rules.Rule{rule}, func(_ int, s *tuple.Record) bool {
		return visit(s)
	})
}

type auxWin struct {
	attr int
	aux  int // pivot slot >= 1
	lo   float64
	hi   float64
}

// ruleGeometry is the per-rule query window plus aux-pivot windows.
type ruleGeometry struct {
	lo, hi []float64
	aux    []auxWin
}

func (ix *Index) geometryOf(r *tuple.Record, rule *rules.Rule) ruleGeometry {
	d := ix.repo.Schema().D()
	g := ruleGeometry{lo: make([]float64, d), hi: make([]float64, d)}
	for x := 0; x < d; x++ {
		g.lo[x], g.hi[x] = 0, 1
	}
	for _, c := range rule.Determinants {
		x := c.Attr
		switch c.Kind {
		case rules.Const:
			// Samples must equal the constant: the converted coordinate is
			// pinned, and every aux distance is pinned too.
			cc := ix.sel.Convert(x, c.Toks)
			g.lo[x], g.hi[x] = cc, cc
			for a := 1; a < ix.sel.NumPivots(x); a++ {
				da := tokens.JaccardDistance(c.Toks, ix.sel.PerAttr[x].Toks[a])
				g.aux = append(g.aux, auxWin{x, a, da, da})
			}
		case rules.Interval:
			// |dist(s,piv) - dist(r,piv)| <= dist(r[x], s[x]) <= Max.
			cr := ix.sel.Convert(x, r.Tokens(x))
			g.lo[x], g.hi[x] = clamp01(cr-c.Max), clamp01(cr+c.Max)
			for a := 1; a < ix.sel.NumPivots(x); a++ {
				da := tokens.JaccardDistance(r.Tokens(x), ix.sel.PerAttr[x].Toks[a])
				g.aux = append(g.aux, auxWin{x, a, clamp01(da - c.Max), clamp01(da + c.Max)})
			}
		}
	}
	return g
}

// nodeMayHold reports whether an aR-tree node (MBR + aggregate) can contain
// samples satisfying the rule geometry.
func (g *ruleGeometry) nodeMayHold(rect artree.Rect, sum *agg.Summary) bool {
	for x := range g.lo {
		if rect.Min[x] > g.hi[x] || rect.Max[x] < g.lo[x] {
			return false
		}
	}
	for _, w := range g.aux {
		iv := sum.Dist[w.attr][w.aux]
		if iv.IsEmpty() {
			continue
		}
		if iv.Lo > w.hi || iv.Hi < w.lo {
			return false
		}
	}
	return true
}

func (g *ruleGeometry) itemInWindow(rect artree.Rect) bool {
	for x := range g.lo {
		if rect.Min[x] > g.hi[x] || rect.Max[x] < g.lo[x] {
			return false
		}
	}
	return true
}

// MatchingSamplesMulti retrieves, in a single aR-tree traversal, the
// samples matching each of several rules with respect to r. A node is
// descended if ANY rule's window may hold samples below it; at the leaves,
// the per-attribute Jaccard distances dist(r[A_x], s[A_x]) are computed
// ONCE per sample and every rule is verified against the cached distances
// (a constant constraint that survived AppliesTo(r) pins the value to
// r's, i.e. distance exactly 0). Verification therefore costs one Jaccard
// per attribute per sample — independent of the rule count — which is the
// index join's advantage over the per-rule repository scans of the
// baselines (Section 5.3). visit receives the rule's index in the input
// slice; returning false stops everything.
func (ix *Index) MatchingSamplesMulti(r *tuple.Record, rs []*rules.Rule, visit func(ruleIdx int, s *tuple.Record) bool) QueryStats {
	var stats QueryStats
	if len(rs) == 0 {
		return stats
	}
	geoms := make([]ruleGeometry, len(rs))
	for i, rule := range rs {
		geoms[i] = ix.geometryOf(r, rule)
	}
	d := ix.repo.Schema().D()
	dists := make([]float64, d)
	have := make([]bool, d)
	ix.tree.Traverse(
		func(rect artree.Rect, a any) bool {
			stats.NodesVisited++
			if rect.Dims() == 0 {
				stats.NodesPruned++
				return false
			}
			sum := a.(*agg.Summary)
			for i := range geoms {
				if geoms[i].nodeMayHold(rect, sum) {
					return true
				}
			}
			stats.NodesPruned++
			return false
		},
		func(it artree.Item) bool {
			s := it.Data.(*tuple.Record)
			for x := range have {
				have[x] = false
			}
			stats.Verified++
			for i := range geoms {
				// No per-geometry window recheck: the cached-distance
				// verification below is exact and cheaper than d float
				// comparisons per geometry.
				matched := true
				for _, c := range rs[i].Determinants {
					x := c.Attr
					if !have[x] {
						dists[x] = tokens.JaccardDistance(r.Tokens(x), s.Tokens(x))
						have[x] = true
					}
					switch c.Kind {
					case rules.Const:
						// AppliesTo(r) established r[A_x] == const, so the
						// sample matches iff it equals r's value.
						if dists[x] != 0 {
							matched = false
						}
					case rules.Interval:
						if dists[x] < c.Min || dists[x] > c.Max {
							matched = false
						}
					}
					if !matched {
						break
					}
				}
				if matched {
					stats.Matched++
					if !visit(i, s) {
						return false
					}
				}
			}
			return true
		},
	)
	return stats
}

// RootSummary exposes the whole-repository aggregate (used by the join to
// derive coarse bounds before descending).
func (ix *Index) RootSummary() *agg.Summary {
	return ix.tree.RootAgg().(*agg.Summary)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
