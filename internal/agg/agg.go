// Package agg defines the aggregate summaries attached to aR-tree nodes,
// ER-grid cells, and imputed tuples (Sections 5.1 and 5.2): a keyword
// bitvector, per-attribute/per-pivot Jaccard-distance intervals, and
// per-attribute token-set-size intervals. All summaries are merge-monotone.
package agg

import (
	"math"

	"terids/internal/bitvec"
)

// Interval is a closed float interval. The zero value is NOT empty; use
// EmptyInterval.
type Interval struct {
	Lo, Hi float64
}

// EmptyInterval returns the identity for interval union.
func EmptyInterval() Interval {
	return Interval{Lo: math.Inf(1), Hi: math.Inf(-1)}
}

// IsEmpty reports whether no value was ever added.
func (i Interval) IsEmpty() bool { return i.Lo > i.Hi }

// Extend grows the interval to include v.
func (i *Interval) Extend(v float64) {
	if v < i.Lo {
		i.Lo = v
	}
	if v > i.Hi {
		i.Hi = v
	}
}

// ExtendInterval grows the interval to include all of o.
func (i *Interval) ExtendInterval(o Interval) {
	if o.IsEmpty() {
		return
	}
	if o.Lo < i.Lo {
		i.Lo = o.Lo
	}
	if o.Hi > i.Hi {
		i.Hi = o.Hi
	}
}

// Contains reports whether v lies in the interval.
func (i Interval) Contains(v float64) bool { return v >= i.Lo && v <= i.Hi }

// Of builds an interval spanning the given values.
func Of(vals ...float64) Interval {
	out := EmptyInterval()
	for _, v := range vals {
		out.Extend(v)
	}
	return out
}

// IntInterval is a closed integer interval; used for token-set sizes.
type IntInterval struct {
	Lo, Hi int
}

// EmptyIntInterval returns the identity for integer interval union.
func EmptyIntInterval() IntInterval {
	return IntInterval{Lo: math.MaxInt32, Hi: math.MinInt32}
}

// IsEmpty reports whether no value was ever added.
func (i IntInterval) IsEmpty() bool { return i.Lo > i.Hi }

// Extend grows the interval to include v.
func (i *IntInterval) Extend(v int) {
	if v < i.Lo {
		i.Lo = v
	}
	if v > i.Hi {
		i.Hi = v
	}
}

// ExtendInterval grows the interval to include all of o.
func (i *IntInterval) ExtendInterval(o IntInterval) {
	if o.IsEmpty() {
		return
	}
	if o.Lo < i.Lo {
		i.Lo = o.Lo
	}
	if o.Hi > i.Hi {
		i.Hi = o.Hi
	}
}

// Summary is the aggregate of Sections 5.1/5.2: keyword vector, distance
// intervals per (attribute, pivot), and size intervals per attribute.
// Pivot index 0 is the main pivot; indexes >= 1 are auxiliary pivots.
type Summary struct {
	// KW ORs the keyword vectors of everything summarized.
	KW bitvec.Vector
	// Dist[x][a] bounds dist(value, piv_a[A_x]) over all summarized values
	// of attribute x.
	Dist [][]Interval
	// Size[x] bounds |T(value)| over all summarized values of attribute x.
	Size []IntInterval
}

// NewSummary allocates an empty summary for d attributes, nPiv pivots per
// attribute (>= 1; index 0 = main), and nKW keywords.
func NewSummary(d, nPiv, nKW int) *Summary {
	s := &Summary{
		KW:   bitvec.New(nKW),
		Dist: make([][]Interval, d),
		Size: make([]IntInterval, d),
	}
	for x := 0; x < d; x++ {
		s.Dist[x] = make([]Interval, nPiv)
		for a := 0; a < nPiv; a++ {
			s.Dist[x][a] = EmptyInterval()
		}
		s.Size[x] = EmptyIntInterval()
	}
	return s
}

// Merge folds o into s.
func (s *Summary) Merge(o *Summary) {
	if o == nil {
		return
	}
	s.KW.Or(o.KW)
	for x := range s.Dist {
		for a := range s.Dist[x] {
			s.Dist[x][a].ExtendInterval(o.Dist[x][a])
		}
		s.Size[x].ExtendInterval(o.Size[x])
	}
}

// Clone returns an independent copy.
func (s *Summary) Clone() *Summary {
	out := &Summary{
		KW:   s.KW.Clone(),
		Dist: make([][]Interval, len(s.Dist)),
		Size: append([]IntInterval(nil), s.Size...),
	}
	for x := range s.Dist {
		out.Dist[x] = append([]Interval(nil), s.Dist[x]...)
	}
	return out
}

// Merger adapts Summary to the artree.Merger interface.
type Merger struct {
	D, NPiv, NKW int
}

// Zero returns a fresh empty *Summary.
func (m Merger) Zero() any { return NewSummary(m.D, m.NPiv, m.NKW) }

// Add folds agg (*Summary) into acc (*Summary) and returns acc.
func (m Merger) Add(acc, aggregate any) any {
	a := acc.(*Summary)
	a.Merge(aggregate.(*Summary))
	return a
}
