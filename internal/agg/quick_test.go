package agg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickIntervalUnionLaws checks the algebraic laws interval aggregates
// rely on: extension is commutative, associative, idempotent, and monotone
// (an extended interval always contains its inputs).
func TestQuickIntervalUnionLaws(t *testing.T) {
	mk := func(a, b float64) Interval {
		iv := EmptyInterval()
		iv.Extend(a)
		iv.Extend(b)
		return iv
	}
	comm := func(a1, a2, b1, b2 float64) bool {
		x, y := mk(a1, a2), mk(b1, b2)
		xy := x
		xy.ExtendInterval(y)
		yx := y
		yx.ExtendInterval(x)
		return xy == yx
	}
	if err := quick.Check(comm, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c, d, e, f float64) bool {
		x, y, z := mk(a, b), mk(c, d), mk(e, f)
		l := x
		l.ExtendInterval(y)
		l.ExtendInterval(z)
		yz := y
		yz.ExtendInterval(z)
		r := x
		r.ExtendInterval(yz)
		return l == r
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	idem := func(a, b float64) bool {
		x := mk(a, b)
		y := x
		y.ExtendInterval(x)
		return x == y
	}
	if err := quick.Check(idem, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	mono := func(a, b, v float64) bool {
		x := mk(a, b)
		x.Extend(v)
		return x.Contains(v) && x.Contains(a) && x.Contains(b)
	}
	if err := quick.Check(mono, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickSummaryMergeMonotone: merging never shrinks any component.
func TestQuickSummaryMergeMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	randSummary := func() *Summary {
		s := NewSummary(3, 2, 8)
		for x := 0; x < 3; x++ {
			for a := 0; a < 2; a++ {
				if r.Intn(3) > 0 {
					s.Dist[x][a].Extend(r.Float64())
					s.Dist[x][a].Extend(r.Float64())
				}
			}
			if r.Intn(3) > 0 {
				s.Size[x].Extend(r.Intn(20))
			}
		}
		for i := 0; i < 8; i++ {
			if r.Intn(4) == 0 {
				s.KW.Set(i)
			}
		}
		return s
	}
	for trial := 0; trial < 1000; trial++ {
		a, b := randSummary(), randSummary()
		merged := a.Clone()
		merged.Merge(b)
		for x := 0; x < 3; x++ {
			for p := 0; p < 2; p++ {
				for _, src := range []*Summary{a, b} {
					iv := src.Dist[x][p]
					if iv.IsEmpty() {
						continue
					}
					if merged.Dist[x][p].Lo > iv.Lo || merged.Dist[x][p].Hi < iv.Hi {
						t.Fatalf("trial %d: merged interval %v does not cover input %v",
							trial, merged.Dist[x][p], iv)
					}
				}
			}
			for _, src := range []*Summary{a, b} {
				if src.Size[x].IsEmpty() {
					continue
				}
				if merged.Size[x].Lo > src.Size[x].Lo || merged.Size[x].Hi < src.Size[x].Hi {
					t.Fatalf("trial %d: merged size %v does not cover input %v",
						trial, merged.Size[x], src.Size[x])
				}
			}
		}
		for i := 0; i < 8; i++ {
			if (a.KW.Get(i) || b.KW.Get(i)) && !merged.KW.Get(i) {
				t.Fatalf("trial %d: merged KW lost bit %d", trial, i)
			}
		}
	}
}
