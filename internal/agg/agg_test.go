package agg

import (
	"testing"
)

func TestInterval(t *testing.T) {
	i := EmptyInterval()
	if !i.IsEmpty() {
		t.Fatal("EmptyInterval must be empty")
	}
	i.Extend(0.5)
	if i.IsEmpty() || i.Lo != 0.5 || i.Hi != 0.5 {
		t.Fatalf("after Extend: %+v", i)
	}
	i.Extend(0.2)
	i.Extend(0.8)
	if i.Lo != 0.2 || i.Hi != 0.8 {
		t.Fatalf("after extends: %+v", i)
	}
	if !i.Contains(0.5) || i.Contains(0.9) {
		t.Fatal("Contains wrong")
	}
	var j Interval
	j = EmptyInterval()
	j.ExtendInterval(i)
	if j != i {
		t.Fatalf("ExtendInterval: %+v != %+v", j, i)
	}
	j.ExtendInterval(EmptyInterval()) // no-op
	if j != i {
		t.Fatal("extending by empty must be a no-op")
	}
	if got := Of(0.3, 0.1, 0.7); got.Lo != 0.1 || got.Hi != 0.7 {
		t.Fatalf("Of = %+v", got)
	}
}

func TestIntInterval(t *testing.T) {
	i := EmptyIntInterval()
	if !i.IsEmpty() {
		t.Fatal("EmptyIntInterval must be empty")
	}
	i.Extend(5)
	i.Extend(2)
	i.Extend(9)
	if i.Lo != 2 || i.Hi != 9 {
		t.Fatalf("IntInterval = %+v", i)
	}
	j := EmptyIntInterval()
	j.ExtendInterval(i)
	if j != i {
		t.Fatal("ExtendInterval failed")
	}
	j.ExtendInterval(EmptyIntInterval())
	if j != i {
		t.Fatal("extending by empty must be a no-op")
	}
}

func TestSummaryMerge(t *testing.T) {
	a := NewSummary(2, 2, 4)
	b := NewSummary(2, 2, 4)
	a.KW.Set(0)
	b.KW.Set(3)
	a.Dist[0][0].Extend(0.1)
	b.Dist[0][0].Extend(0.9)
	a.Size[1].Extend(3)
	b.Size[1].Extend(7)
	a.Merge(b)
	if !a.KW.Get(0) || !a.KW.Get(3) {
		t.Fatal("KW merge failed")
	}
	if a.Dist[0][0].Lo != 0.1 || a.Dist[0][0].Hi != 0.9 {
		t.Fatalf("Dist merge = %+v", a.Dist[0][0])
	}
	if a.Size[1].Lo != 3 || a.Size[1].Hi != 7 {
		t.Fatalf("Size merge = %+v", a.Size[1])
	}
	// Untouched slots stay empty.
	if !a.Dist[1][1].IsEmpty() || !a.Size[0].IsEmpty() {
		t.Fatal("untouched slots must stay empty")
	}
	a.Merge(nil) // must not panic
}

func TestSummaryClone(t *testing.T) {
	a := NewSummary(1, 1, 2)
	a.KW.Set(1)
	a.Dist[0][0].Extend(0.4)
	a.Size[0].Extend(2)
	c := a.Clone()
	c.KW.Set(0)
	c.Dist[0][0].Extend(0.9)
	c.Size[0].Extend(99)
	if a.KW.Get(0) || a.Dist[0][0].Hi != 0.4 || a.Size[0].Hi != 2 {
		t.Fatal("Clone must be independent")
	}
}

func TestMerger(t *testing.T) {
	m := Merger{D: 1, NPiv: 1, NKW: 2}
	acc := m.Zero().(*Summary)
	s1 := NewSummary(1, 1, 2)
	s1.Dist[0][0].Extend(0.3)
	s2 := NewSummary(1, 1, 2)
	s2.Dist[0][0].Extend(0.6)
	acc = m.Add(acc, s1).(*Summary)
	acc = m.Add(acc, s2).(*Summary)
	if acc.Dist[0][0].Lo != 0.3 || acc.Dist[0][0].Hi != 0.6 {
		t.Fatalf("Merger fold = %+v", acc.Dist[0][0])
	}
}
