package repository

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"terids/internal/tokens"
	"terids/internal/tuple"
)

var schema = tuple.MustSchema("A", "B")

func sample(rid, a, b string) *tuple.Record {
	return tuple.MustRecord(schema, rid, 0, 0, []string{a, b})
}

func TestBuild(t *testing.T) {
	r, err := Build(schema, []*tuple.Record{
		sample("s1", "alpha beta", "one"),
		sample("s2", "alpha beta", "two"),
		sample("s3", "gamma", "one"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	d := r.Domain(0)
	if d.Len() != 2 {
		t.Fatalf("domain A has %d values, want 2", d.Len())
	}
	i := d.Lookup("alpha beta")
	if i == -1 || d.Value(i).Freq != 2 {
		t.Fatalf("alpha beta lookup/freq wrong: %d", i)
	}
	if d.Lookup("nope") != -1 {
		t.Fatal("unknown value must return -1")
	}
	if r.Domain(1).Len() != 2 {
		t.Fatal("domain B must have 2 distinct values")
	}
	if r.Sample(2).RID != "s3" {
		t.Fatal("Sample order must be preserved")
	}
}

func TestBuildRejectsIncomplete(t *testing.T) {
	bad := tuple.MustRecord(schema, "x", 0, 0, []string{"a", "-"})
	if _, err := Build(schema, []*tuple.Record{bad}); err == nil {
		t.Fatal("incomplete sample must be rejected")
	}
	if _, err := Build(nil, nil); err == nil {
		t.Fatal("nil schema must be rejected")
	}
	other := tuple.MustSchema("A", "B")
	mismatched := tuple.MustRecord(other, "y", 0, 0, []string{"a", "b"})
	if _, err := Build(schema, []*tuple.Record{mismatched}); err == nil {
		t.Fatal("foreign-schema sample must be rejected")
	}
}

func TestAdd(t *testing.T) {
	r, err := Build(schema, []*tuple.Record{sample("s1", "v1", "w1")})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Add(sample("s2", "v1", "w2")); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d after Add, want 2", r.Len())
	}
	d := r.Domain(0)
	if d.Len() != 1 || d.Value(0).Freq != 2 {
		t.Fatal("Add must update domain frequencies")
	}
	if err := r.Add(tuple.MustRecord(schema, "bad", 0, 0, []string{"-", "x"})); err == nil {
		t.Fatal("Add must reject incomplete samples")
	}
}

func TestRangeByDistance(t *testing.T) {
	r, err := Build(schema, []*tuple.Record{
		sample("s1", "a b c", "x"),
		sample("s2", "a b d", "x"),
		sample("s3", "p q r", "x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := r.Domain(0)
	from := tokens.New("a", "b", "c")
	// dist to "a b c" = 0, to "a b d" = 1 - 2/4 = 0.5, to "p q r" = 1.
	got := d.RangeByDistance(from, 0, 0.6)
	if len(got) != 2 {
		t.Fatalf("RangeByDistance = %v, want 2 hits", got)
	}
	got = d.RangeByDistance(from, 0.4, 0.6)
	if len(got) != 1 || d.Value(got[0]).Text != "a b d" {
		t.Fatalf("narrow range = %v", got)
	}
}

func randomValue(r *rand.Rand) string {
	n := 1 + r.Intn(5)
	out := ""
	for i := 0; i < n; i++ {
		out += fmt.Sprintf("t%d ", r.Intn(15))
	}
	return out
}

func TestIndexMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var recs []*tuple.Record
	for i := 0; i < 120; i++ {
		recs = append(recs, sample(fmt.Sprintf("s%d", i), randomValue(r), "x"))
	}
	repo, err := Build(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	d := repo.Domain(0)
	pivot := tokens.Tokenize(randomValue(r))
	idx := d.BuildIndex(pivot)
	for trial := 0; trial < 200; trial++ {
		from := tokens.Tokenize(randomValue(r))
		min := r.Float64() * 0.5
		max := min + r.Float64()*0.5
		want := d.RangeByDistance(from, min, max)
		got := idx.Range(from, min, max)
		sort.Ints(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Range(min=%v,max=%v) = %v, want %v", trial, min, max, got, want)
		}
	}
}

func TestIndexEmptyDomain(t *testing.T) {
	repo, err := Build(schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx := repo.Domain(0).BuildIndex(tokens.New("p"))
	if got := idx.Range(tokens.New("q"), 0, 1); got != nil {
		t.Fatalf("empty index Range = %v, want nil", got)
	}
}

func TestIndexPivotDistance(t *testing.T) {
	repo, err := Build(schema, []*tuple.Record{
		sample("s1", "a b", "x"),
		sample("s2", "c d", "x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := repo.Domain(0)
	idx := d.BuildIndex(tokens.New("a", "b"))
	i := d.Lookup("a b")
	if got := idx.PivotDistance(i); got != 0 {
		t.Fatalf("PivotDistance(a b) = %v, want 0", got)
	}
	j := d.Lookup("c d")
	if got := idx.PivotDistance(j); got != 1 {
		t.Fatalf("PivotDistance(c d) = %v, want 1", got)
	}
}
