// Package repository implements the static complete data repository R of
// Section 2.2: the historical samples used to detect CDD rules and to impute
// missing attributes, together with per-attribute value domains dom(A_j) and
// pivot-accelerated distance range queries over them.
package repository

import (
	"fmt"
	"sort"

	"terids/internal/tokens"
	"terids/internal/tuple"
)

// Repository is the static complete repository R. Samples are complete
// records sharing a schema.
type Repository struct {
	schema  *tuple.Schema
	samples []*tuple.Record
	domains []*Domain
}

// Build constructs a repository from complete samples. Incomplete samples
// are rejected: R holds only complete tuples (Section 2.2).
func Build(schema *tuple.Schema, samples []*tuple.Record) (*Repository, error) {
	if schema == nil {
		return nil, fmt.Errorf("repository: nil schema")
	}
	for _, s := range samples {
		if s.Schema() != schema {
			return nil, fmt.Errorf("repository: sample %s uses a different schema", s.RID)
		}
		if !s.IsComplete() {
			return nil, fmt.Errorf("repository: sample %s is incomplete; R must hold complete tuples", s.RID)
		}
	}
	r := &Repository{
		schema:  schema,
		samples: append([]*tuple.Record(nil), samples...),
		domains: make([]*Domain, schema.D()),
	}
	for j := 0; j < schema.D(); j++ {
		r.domains[j] = buildDomain(j, r.samples)
	}
	return r, nil
}

// Schema returns the repository schema.
func (r *Repository) Schema() *tuple.Schema { return r.schema }

// Len returns the number of samples.
func (r *Repository) Len() int { return len(r.samples) }

// Sample returns the i-th sample.
func (r *Repository) Sample(i int) *tuple.Record { return r.samples[i] }

// Samples returns the live sample slice (callers must not mutate it).
func (r *Repository) Samples() []*tuple.Record { return r.samples }

// Domain returns the value domain of attribute j.
func (r *Repository) Domain(j int) *Domain { return r.domains[j] }

// Add appends new complete samples and incrementally extends the domains.
// It supports the dynamic-repository extension of Section 5.5. Domain
// indexes built earlier do not see the new values; rebuild them after a
// batch of Adds.
func (r *Repository) Add(samples ...*tuple.Record) error {
	for _, s := range samples {
		if s.Schema() != r.schema {
			return fmt.Errorf("repository: sample %s uses a different schema", s.RID)
		}
		if !s.IsComplete() {
			return fmt.Errorf("repository: sample %s is incomplete", s.RID)
		}
	}
	for _, s := range samples {
		r.samples = append(r.samples, s)
		for j := 0; j < r.schema.D(); j++ {
			r.domains[j].add(s.Value(j), s.Tokens(j))
		}
	}
	return nil
}

// Domain is dom(A_j): the distinct values of attribute j across R with
// occurrence frequencies.
type Domain struct {
	attr   int
	values []DomainValue
	byText map[string]int
}

// DomainValue is one distinct attribute value.
type DomainValue struct {
	Text string
	Toks tokens.Set
	Freq int
}

func buildDomain(attr int, samples []*tuple.Record) *Domain {
	d := &Domain{attr: attr, byText: make(map[string]int)}
	for _, s := range samples {
		d.add(s.Value(attr), s.Tokens(attr))
	}
	return d
}

func (d *Domain) add(text string, toks tokens.Set) {
	if i, ok := d.byText[text]; ok {
		d.values[i].Freq++
		return
	}
	d.byText[text] = len(d.values)
	d.values = append(d.values, DomainValue{Text: text, Toks: toks, Freq: 1})
}

// Attr returns the attribute index this domain describes.
func (d *Domain) Attr() int { return d.attr }

// Len returns the number of distinct values.
func (d *Domain) Len() int { return len(d.values) }

// Value returns the i-th distinct value.
func (d *Domain) Value(i int) DomainValue { return d.values[i] }

// Lookup returns the index of an exact text value, or -1.
func (d *Domain) Lookup(text string) int {
	if i, ok := d.byText[text]; ok {
		return i
	}
	return -1
}

// RangeByDistance returns the indexes of all domain values whose Jaccard
// distance to from lies in [min, max], by linear scan. It is the unindexed
// reference used by the non-indexed baselines and by tests.
func (d *Domain) RangeByDistance(from tokens.Set, min, max float64) []int {
	var out []int
	for i := range d.values {
		dist := tokens.JaccardDistance(from, d.values[i].Toks)
		if dist >= min && dist <= max {
			out = append(out, i)
		}
	}
	return out
}

// Index is a pivot-ordered distance index over a domain: values sorted by
// Jaccard distance to a pivot attribute value. Range queries use the
// triangle inequality to narrow the scan window before verifying real
// distances, the same conversion trick the DR-index uses (Section 5.1).
type Index struct {
	dom   *Domain
	pivot tokens.Set
	order []int     // domain value indexes sorted by dist-to-pivot
	dists []float64 // parallel to order
}

// BuildIndex sorts the domain by distance to pivot.
func (d *Domain) BuildIndex(pivot tokens.Set) *Index {
	idx := &Index{
		dom:   d,
		pivot: pivot,
		order: make([]int, len(d.values)),
		dists: make([]float64, len(d.values)),
	}
	for i := range d.values {
		idx.order[i] = i
	}
	pd := make([]float64, len(d.values))
	for i := range d.values {
		pd[i] = tokens.JaccardDistance(pivot, d.values[i].Toks)
	}
	sort.SliceStable(idx.order, func(a, b int) bool { return pd[idx.order[a]] < pd[idx.order[b]] })
	for i, v := range idx.order {
		idx.dists[i] = pd[v]
	}
	return idx
}

// PivotDistance returns dist(value_i, pivot) for domain value i.
func (idx *Index) PivotDistance(i int) float64 {
	for pos, v := range idx.order {
		if v == i {
			return idx.dists[pos]
		}
	}
	return -1
}

// Range returns the indexes of domain values whose Jaccard distance to from
// lies in [min, max]. The pivot prefilter shrinks the verified candidate
// window: by the triangle inequality every answer v satisfies
// |dist(v,pivot) − dist(from,pivot)| <= max.
func (idx *Index) Range(from tokens.Set, min, max float64) []int {
	if len(idx.order) == 0 {
		return nil
	}
	delta := tokens.JaccardDistance(from, idx.pivot)
	lo := sort.SearchFloat64s(idx.dists, delta-max)
	var out []int
	for pos := lo; pos < len(idx.order) && idx.dists[pos] <= delta+max; pos++ {
		v := idx.order[pos]
		dist := tokens.JaccardDistance(from, idx.dom.values[v].Toks)
		if dist >= min && dist <= max {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
