package bitvec

import (
	"math/rand"
	"testing"
)

func TestSetGetClear(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestAnyCount(t *testing.T) {
	v := New(70)
	if v.Any() {
		t.Fatal("fresh vector must have Any() == false")
	}
	if v.Count() != 0 {
		t.Fatal("fresh vector must have Count() == 0")
	}
	v.Set(3)
	v.Set(69)
	if !v.Any() {
		t.Fatal("Any() must be true after Set")
	}
	if got := v.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestOrIntersects(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(10)
	b.Set(90)
	if a.Intersects(b) {
		t.Fatal("disjoint vectors must not intersect")
	}
	a.Or(b)
	if !a.Get(10) || !a.Get(90) {
		t.Fatal("Or must keep both bits")
	}
	if !a.Intersects(b) {
		t.Fatal("a now shares bit 90 with b")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(10)
	a.Set(5)
	c := a.Clone()
	c.Set(7)
	if a.Get(7) {
		t.Fatal("Clone must be independent")
	}
	if !c.Get(5) {
		t.Fatal("Clone must copy existing bits")
	}
}

func TestReset(t *testing.T) {
	v := New(65)
	v.Set(0)
	v.Set(64)
	v.Reset()
	if v.Any() {
		t.Fatal("Reset must clear all bits")
	}
}

func TestString(t *testing.T) {
	v := New(4)
	v.Set(1)
	v.Set(3)
	if got := v.String(); got != "0101" {
		t.Fatalf("String = %q, want 0101", got)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	v := New(8)
	mustPanic("Get out of range", func() { v.Get(8) })
	mustPanic("Set negative", func() { v.Set(-1) })
	mustPanic("Or width mismatch", func() { v.Or(New(9)) })
	mustPanic("Intersects width mismatch", func() { v.Intersects(New(9)) })
	mustPanic("New negative", func() { New(-1) })
}

func TestZeroWidth(t *testing.T) {
	v := New(0)
	if v.Any() || v.Count() != 0 || v.String() != "" {
		t.Fatal("zero-width vector must be empty")
	}
	v.Or(New(0)) // must not panic
}

func TestRandomizedAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 200
	v := New(n)
	ref := map[int]bool{}
	for i := 0; i < 5000; i++ {
		bit := r.Intn(n)
		if r.Intn(2) == 0 {
			v.Set(bit)
			ref[bit] = true
		} else {
			v.Clear(bit)
			delete(ref, bit)
		}
	}
	count := 0
	for i := 0; i < n; i++ {
		if v.Get(i) != ref[i] {
			t.Fatalf("bit %d: got %v, want %v", i, v.Get(i), ref[i])
		}
		if ref[i] {
			count++
		}
	}
	if v.Count() != count {
		t.Fatalf("Count = %d, want %d", v.Count(), count)
	}
}
