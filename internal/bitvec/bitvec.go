// Package bitvec provides compact boolean vectors used for the keyword/topic
// aggregates of the DR-index and ER-grid (Section 5 of the paper): each bit
// records whether a query keyword may appear under an index node, a grid
// cell, or an imputed tuple.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-width bit vector. The zero value is an empty vector of
// width 0; use New to size one.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of width n bits.
func New(n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative width %d", n))
	}
	return Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// Len reports the vector width in bits.
func (v Vector) Len() int { return v.n }

// Set sets bit i to 1.
func (v Vector) Set(i int) {
	v.check(i)
	v.words[i/64] |= 1 << (uint(i) % 64)
}

// Clear sets bit i to 0.
func (v Vector) Clear(i int) {
	v.check(i)
	v.words[i/64] &^= 1 << (uint(i) % 64)
}

// Get reports whether bit i is set.
func (v Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/64]&(1<<(uint(i)%64)) != 0
}

func (v Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Any reports whether at least one bit is set.
func (v Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (v Vector) Count() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Or folds other into v in place (v |= other). The widths must match.
func (v Vector) Or(other Vector) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: width mismatch %d vs %d", v.n, other.n))
	}
	for i := range v.words {
		v.words[i] |= other.words[i]
	}
}

// Intersects reports whether v and other share any set bit. Vectors of
// different widths never intersect beyond the common prefix; widths must
// match here as all callers use query-keyword width.
func (v Vector) Intersects(other Vector) bool {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: width mismatch %d vs %d", v.n, other.n))
	}
	for i := range v.words {
		if v.words[i]&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(out.words, v.words)
	return out
}

// Reset zeroes all bits in place.
func (v Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// String renders the vector as a 0/1 string, bit 0 first.
func (v Vector) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
