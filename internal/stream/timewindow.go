package stream

import (
	"fmt"

	"terids/internal/tuple"
)

// TimeWindow is the time-based sliding window variant (Section 2.1 notes the
// count-based solution "can be easily extended to the time-based one" by
// allowing several tuples per timestamp). It retains every tuple whose Seq
// is within span of the most recent Advance time.
type TimeWindow struct {
	span int64
	buf  []*tuple.Record // oldest first
	now  int64
}

// NewTimeWindow creates a window covering (now-span, now].
func NewTimeWindow(span int64) (*TimeWindow, error) {
	if span < 1 {
		return nil, fmt.Errorf("stream: time window span %d, need >= 1", span)
	}
	return &TimeWindow{span: span}, nil
}

// Push adds a tuple arriving at r.Seq. Tuples must arrive in non-decreasing
// Seq order.
func (t *TimeWindow) Push(r *tuple.Record) error {
	if n := len(t.buf); n > 0 && r.Seq < t.buf[n-1].Seq {
		return fmt.Errorf("stream: out-of-order arrival %d after %d", r.Seq, t.buf[n-1].Seq)
	}
	t.buf = append(t.buf, r)
	if r.Seq > t.now {
		t.now = r.Seq
	}
	return nil
}

// Advance moves the clock to now and returns all expired tuples (those with
// Seq <= now-span), oldest first.
func (t *TimeWindow) Advance(now int64) []*tuple.Record {
	if now > t.now {
		t.now = now
	}
	cutoff := t.now - t.span
	i := 0
	for i < len(t.buf) && t.buf[i].Seq <= cutoff {
		i++
	}
	if i == 0 {
		return nil
	}
	expired := append([]*tuple.Record(nil), t.buf[:i]...)
	t.buf = append(t.buf[:0], t.buf[i:]...)
	return expired
}

// Len returns the number of live tuples.
func (t *TimeWindow) Len() int { return len(t.buf) }

// Snapshot returns the live tuples oldest-first.
func (t *TimeWindow) Snapshot() []*tuple.Record {
	return append([]*tuple.Record(nil), t.buf...)
}

// Export is Snapshot under the checkpoint naming convention. The window
// clock is derived: it equals the newest live tuple's Seq (the arrival that
// set it is always still live, since span >= 1), so Import recovers it.
func (t *TimeWindow) Export() []*tuple.Record { return t.Snapshot() }

// Import restores exported tuples (oldest-first) into an empty time window,
// re-deriving the clock from the newest tuple.
func (t *TimeWindow) Import(recs []*tuple.Record) error {
	if len(t.buf) != 0 {
		return fmt.Errorf("stream: import into non-empty time window (%d tuples)", len(t.buf))
	}
	for _, r := range recs {
		if err := t.Push(r); err != nil {
			return err
		}
	}
	return nil
}
