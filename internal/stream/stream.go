// Package stream models incomplete data streams (Definition 1) and the
// count-based sliding window of Definition 2, plus the time-based window
// variant the paper sketches as an extension (Section 2.1).
package stream

import (
	"fmt"
	"sort"

	"terids/internal/tuple"
)

// Source yields records in arrival order. Next returns false when the
// stream is exhausted.
type Source interface {
	Next() (*tuple.Record, bool)
}

// SliceSource replays a fixed slice of records. The zero value is an
// exhausted source.
type SliceSource struct {
	recs []*tuple.Record
	i    int
}

// NewSliceSource wraps recs (replayed in the given order).
func NewSliceSource(recs []*tuple.Record) *SliceSource {
	return &SliceSource{recs: recs}
}

// Next implements Source.
func (s *SliceSource) Next() (*tuple.Record, bool) {
	if s.i >= len(s.recs) {
		return nil, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}

// Len reports the number of records remaining.
func (s *SliceSource) Len() int { return len(s.recs) - s.i }

// Interleave merges records from multiple per-stream slices into a single
// arrival order sorted by Seq (ties broken by stream id then RID, for
// determinism). It returns the merged sequence.
func Interleave(perStream ...[]*tuple.Record) []*tuple.Record {
	var all []*tuple.Record
	for _, s := range perStream {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Stream != b.Stream {
			return a.Stream < b.Stream
		}
		return a.RID < b.RID
	})
	return all
}

// Window is the count-based sliding window W_t of Definition 2 over one
// stream: the w most recent tuples. Push returns the evicted tuple once the
// window is full.
type Window struct {
	w     int
	buf   []*tuple.Record
	head  int // index of the oldest tuple
	count int
}

// NewWindow creates a window of capacity w (w >= 1).
func NewWindow(w int) (*Window, error) {
	if w < 1 {
		return nil, fmt.Errorf("stream: window size %d, need >= 1", w)
	}
	return &Window{w: w, buf: make([]*tuple.Record, w)}, nil
}

// MustWindow is NewWindow that panics on error.
func MustWindow(w int) *Window {
	win, err := NewWindow(w)
	if err != nil {
		panic(err)
	}
	return win
}

// Cap returns the window capacity w.
func (w *Window) Cap() int { return w.w }

// Len returns the number of tuples currently held.
func (w *Window) Len() int { return w.count }

// Push appends a newly arriving tuple; if the window was full, the oldest
// tuple is evicted and returned (expired, nil otherwise).
func (w *Window) Push(r *tuple.Record) (expired *tuple.Record) {
	if w.count == w.w {
		expired = w.buf[w.head]
		w.buf[w.head] = r
		w.head = (w.head + 1) % w.w
		return expired
	}
	w.buf[(w.head+w.count)%w.w] = r
	w.count++
	return nil
}

// Each visits the live tuples from oldest to newest; returning false from
// the callback stops the scan.
func (w *Window) Each(visit func(*tuple.Record) bool) {
	for i := 0; i < w.count; i++ {
		if !visit(w.buf[(w.head+i)%w.w]) {
			return
		}
	}
}

// Snapshot returns the live tuples oldest-first.
func (w *Window) Snapshot() []*tuple.Record {
	out := make([]*tuple.Record, 0, w.count)
	w.Each(func(r *tuple.Record) bool {
		out = append(out, r)
		return true
	})
	return out
}

// Export is Snapshot under the checkpoint naming convention: the window's
// restorable state is exactly its live tuples, oldest-first.
func (w *Window) Export() []*tuple.Record { return w.Snapshot() }

// Import restores exported tuples (oldest-first) into an empty window. It
// refuses to evict: more tuples than the capacity is a corrupt checkpoint.
func (w *Window) Import(recs []*tuple.Record) error {
	if w.count != 0 {
		return fmt.Errorf("stream: import into non-empty window (%d tuples)", w.count)
	}
	if len(recs) > w.w {
		return fmt.Errorf("stream: import of %d tuples exceeds window capacity %d", len(recs), w.w)
	}
	for _, r := range recs {
		w.Push(r)
	}
	return nil
}

// MultiWindow maintains one count-based window per stream, the layout used
// by the TER-iDS problem statement (n streams, each with its own W_t).
type MultiWindow struct {
	wins []*Window
}

// NewMultiWindow creates n windows of capacity w each.
func NewMultiWindow(n, w int) (*MultiWindow, error) {
	if n < 1 {
		return nil, fmt.Errorf("stream: need >= 1 streams, got %d", n)
	}
	mw := &MultiWindow{wins: make([]*Window, n)}
	for i := range mw.wins {
		win, err := NewWindow(w)
		if err != nil {
			return nil, err
		}
		mw.wins[i] = win
	}
	return mw, nil
}

// Streams returns the number of streams.
func (m *MultiWindow) Streams() int { return len(m.wins) }

// Push routes r to its stream's window and returns the evicted tuple, if
// any.
func (m *MultiWindow) Push(r *tuple.Record) (*tuple.Record, error) {
	if r.Stream < 0 || r.Stream >= len(m.wins) {
		return nil, fmt.Errorf("stream: record %s has stream %d, have %d streams",
			r.RID, r.Stream, len(m.wins))
	}
	return m.wins[r.Stream].Push(r), nil
}

// Window returns stream i's window.
func (m *MultiWindow) Window(i int) *Window { return m.wins[i] }

// Len returns the total number of live tuples across all streams.
func (m *MultiWindow) Len() int {
	n := 0
	for _, w := range m.wins {
		n += w.Len()
	}
	return n
}

// Export returns every stream's live tuples, interleaved back into one
// global sequence: per-stream oldest-first order merged by Seq (ties broken
// deterministically), which is the order Import replays them in.
func (m *MultiWindow) Export() []*tuple.Record {
	per := make([][]*tuple.Record, len(m.wins))
	for i, w := range m.wins {
		per[i] = w.Snapshot()
	}
	return Interleave(per...)
}

// Import restores exported tuples into empty windows, routing each to its
// stream. Order within a stream must be oldest-first (Export's contract).
func (m *MultiWindow) Import(recs []*tuple.Record) error {
	per := make([][]*tuple.Record, len(m.wins))
	for _, r := range recs {
		if r.Stream < 0 || r.Stream >= len(m.wins) {
			return fmt.Errorf("stream: import record %s has stream %d, have %d streams",
				r.RID, r.Stream, len(m.wins))
		}
		per[r.Stream] = append(per[r.Stream], r)
	}
	for i, w := range m.wins {
		if err := w.Import(per[i]); err != nil {
			return fmt.Errorf("stream %d: %w", i, err)
		}
	}
	return nil
}

// Each visits all live tuples across all streams.
func (m *MultiWindow) Each(visit func(*tuple.Record) bool) {
	for _, w := range m.wins {
		stop := false
		w.Each(func(r *tuple.Record) bool {
			if !visit(r) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}
