package stream

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestQuickWindowIsLastW: after any push sequence, the window holds exactly
// the last min(n, w) records in arrival order, and evictions happen in FIFO
// order.
func TestQuickWindowIsLastW(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		w := 1 + r.Intn(10)
		n := r.Intn(40)
		win := MustWindow(w)
		var pushed []string
		var evicted []string
		for i := 0; i < n; i++ {
			rec := rec(fmt.Sprintf("t%d-%d", trial, i), 0, int64(i))
			pushed = append(pushed, rec.RID)
			if exp := win.Push(rec); exp != nil {
				evicted = append(evicted, exp.RID)
			}
		}
		snap := win.Snapshot()
		start := n - w
		if start < 0 {
			start = 0
		}
		want := pushed[start:]
		if len(snap) != len(want) {
			t.Fatalf("trial %d: window has %d records, want %d", trial, len(snap), len(want))
		}
		for i := range want {
			if snap[i].RID != want[i] {
				t.Fatalf("trial %d: window[%d] = %s, want %s", trial, i, snap[i].RID, want[i])
			}
		}
		// Evicted = everything before the window, in order.
		if len(evicted) != start {
			t.Fatalf("trial %d: %d evictions, want %d", trial, len(evicted), start)
		}
		for i := 0; i < start; i++ {
			if evicted[i] != pushed[i] {
				t.Fatalf("trial %d: eviction %d = %s, want %s (FIFO)", trial, i, evicted[i], pushed[i])
			}
		}
	}
}

// TestQuickTimeWindowInvariant: after Advance(now), every live record has
// Seq > now - span, and expired ones do not.
func TestQuickTimeWindowInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 100; trial++ {
		span := int64(1 + r.Intn(20))
		tw, err := NewTimeWindow(span)
		if err != nil {
			t.Fatal(err)
		}
		now := int64(0)
		for i := 0; i < 50; i++ {
			now += int64(r.Intn(4))
			if err := tw.Push(rec(fmt.Sprintf("r%d-%d", trial, i), 0, now)); err != nil {
				t.Fatal(err)
			}
			if r.Intn(3) == 0 {
				expired := tw.Advance(now)
				for _, e := range expired {
					if e.Seq > now-span {
						t.Fatalf("trial %d: expired %s with Seq %d > %d", trial, e.RID, e.Seq, now-span)
					}
				}
				for _, l := range tw.Snapshot() {
					if l.Seq <= now-span {
						t.Fatalf("trial %d: live %s with Seq %d <= %d", trial, l.RID, l.Seq, now-span)
					}
				}
			}
		}
	}
}
