package stream

import (
	"fmt"
	"testing"

	"terids/internal/tuple"
)

var testSchema = tuple.MustSchema("a")

func rec(rid string, stream int, seq int64) *tuple.Record {
	return tuple.MustRecord(testSchema, rid, stream, seq, []string{"v " + rid})
}

func TestSliceSource(t *testing.T) {
	rs := []*tuple.Record{rec("r1", 0, 0), rec("r2", 0, 1)}
	s := NewSliceSource(rs)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	got, ok := s.Next()
	if !ok || got.RID != "r1" {
		t.Fatalf("first Next = %v, %v", got, ok)
	}
	if got, ok = s.Next(); !ok || got.RID != "r2" {
		t.Fatalf("second Next = %v, %v", got, ok)
	}
	if _, ok = s.Next(); ok {
		t.Fatal("exhausted source must return false")
	}
}

func TestInterleave(t *testing.T) {
	a := []*tuple.Record{rec("a1", 0, 0), rec("a2", 0, 4)}
	b := []*tuple.Record{rec("b1", 1, 1), rec("b2", 1, 0)}
	got := Interleave(a, b)
	want := []string{"a1", "b2", "b1", "a2"} // seq 0 ties broken by stream
	for i, r := range got {
		if r.RID != want[i] {
			t.Fatalf("Interleave order %d = %s, want %s", i, r.RID, want[i])
		}
	}
}

func TestWindowPushEvict(t *testing.T) {
	w := MustWindow(3)
	if w.Cap() != 3 || w.Len() != 0 {
		t.Fatal("fresh window state wrong")
	}
	for i := 0; i < 3; i++ {
		if exp := w.Push(rec(fmt.Sprintf("r%d", i), 0, int64(i))); exp != nil {
			t.Fatalf("push %d evicted %v before full", i, exp)
		}
	}
	exp := w.Push(rec("r3", 0, 3))
	if exp == nil || exp.RID != "r0" {
		t.Fatalf("expected r0 evicted, got %v", exp)
	}
	exp = w.Push(rec("r4", 0, 4))
	if exp == nil || exp.RID != "r1" {
		t.Fatalf("expected r1 evicted, got %v", exp)
	}
	snap := w.Snapshot()
	want := []string{"r2", "r3", "r4"}
	if len(snap) != 3 {
		t.Fatalf("Snapshot len = %d", len(snap))
	}
	for i, r := range snap {
		if r.RID != want[i] {
			t.Fatalf("snapshot[%d] = %s, want %s", i, r.RID, want[i])
		}
	}
}

func TestWindowEachEarlyStop(t *testing.T) {
	w := MustWindow(5)
	for i := 0; i < 5; i++ {
		w.Push(rec(fmt.Sprintf("r%d", i), 0, int64(i)))
	}
	n := 0
	w.Each(func(*tuple.Record) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d, want 2", n)
	}
}

func TestWindowSizeOne(t *testing.T) {
	w := MustWindow(1)
	if exp := w.Push(rec("a", 0, 0)); exp != nil {
		t.Fatal("first push must not evict")
	}
	if exp := w.Push(rec("b", 0, 1)); exp == nil || exp.RID != "a" {
		t.Fatalf("w=1 must evict previous, got %v", exp)
	}
}

func TestNewWindowError(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Fatal("window size 0 must fail")
	}
}

func TestMultiWindow(t *testing.T) {
	mw, err := NewMultiWindow(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mw.Streams() != 2 {
		t.Fatal("Streams != 2")
	}
	for i := 0; i < 2; i++ {
		if _, err := mw.Push(rec(fmt.Sprintf("a%d", i), 0, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mw.Push(rec("b0", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if mw.Len() != 3 {
		t.Fatalf("Len = %d, want 3", mw.Len())
	}
	exp, err := mw.Push(rec("a2", 0, 3))
	if err != nil || exp == nil || exp.RID != "a0" {
		t.Fatalf("expected a0 evicted from stream 0, got %v, %v", exp, err)
	}
	// Stream 1 untouched.
	if mw.Window(1).Len() != 1 {
		t.Fatal("stream 1 window must be unaffected")
	}
	if _, err := mw.Push(rec("x", 7, 9)); err == nil {
		t.Fatal("bad stream id must error")
	}
	n := 0
	mw.Each(func(*tuple.Record) bool { n++; return true })
	if n != 3 {
		t.Fatalf("Each visited %d, want 3", n)
	}
	n = 0
	mw.Each(func(*tuple.Record) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Each early stop visited %d, want 1", n)
	}
}

func TestTimeWindow(t *testing.T) {
	tw, err := NewTimeWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []int64{1, 3, 5, 12} {
		if err := tw.Push(rec(fmt.Sprintf("r%d", seq), 0, seq)); err != nil {
			t.Fatal(err)
		}
	}
	// now=12, span=10: cutoff 2 -> r1 expired.
	expired := tw.Advance(12)
	if len(expired) != 1 || expired[0].Seq != 1 {
		t.Fatalf("expired = %v, want [seq 1]", expired)
	}
	if tw.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tw.Len())
	}
	// Advance far: everything expires.
	expired = tw.Advance(100)
	if len(expired) != 3 {
		t.Fatalf("expired = %v, want 3 tuples", expired)
	}
	if tw.Len() != 0 {
		t.Fatal("window must now be empty")
	}
	if got := tw.Advance(200); got != nil {
		t.Fatal("advancing an empty window must return nil")
	}
}

func TestTimeWindowOutOfOrder(t *testing.T) {
	tw, _ := NewTimeWindow(5)
	if err := tw.Push(rec("a", 0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tw.Push(rec("b", 0, 9)); err == nil {
		t.Fatal("out-of-order push must fail")
	}
	if _, err := NewTimeWindow(0); err == nil {
		t.Fatal("span 0 must fail")
	}
}
