package stream

import (
	"fmt"
	"testing"

	"terids/internal/tuple"
)

var testSchema = tuple.MustSchema("a")

func rec(rid string, stream int, seq int64) *tuple.Record {
	return tuple.MustRecord(testSchema, rid, stream, seq, []string{"v " + rid})
}

func TestSliceSource(t *testing.T) {
	rs := []*tuple.Record{rec("r1", 0, 0), rec("r2", 0, 1)}
	s := NewSliceSource(rs)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	got, ok := s.Next()
	if !ok || got.RID != "r1" {
		t.Fatalf("first Next = %v, %v", got, ok)
	}
	if got, ok = s.Next(); !ok || got.RID != "r2" {
		t.Fatalf("second Next = %v, %v", got, ok)
	}
	if _, ok = s.Next(); ok {
		t.Fatal("exhausted source must return false")
	}
}

func TestInterleave(t *testing.T) {
	a := []*tuple.Record{rec("a1", 0, 0), rec("a2", 0, 4)}
	b := []*tuple.Record{rec("b1", 1, 1), rec("b2", 1, 0)}
	got := Interleave(a, b)
	want := []string{"a1", "b2", "b1", "a2"} // seq 0 ties broken by stream
	for i, r := range got {
		if r.RID != want[i] {
			t.Fatalf("Interleave order %d = %s, want %s", i, r.RID, want[i])
		}
	}
}

func TestWindowPushEvict(t *testing.T) {
	w := MustWindow(3)
	if w.Cap() != 3 || w.Len() != 0 {
		t.Fatal("fresh window state wrong")
	}
	for i := 0; i < 3; i++ {
		if exp := w.Push(rec(fmt.Sprintf("r%d", i), 0, int64(i))); exp != nil {
			t.Fatalf("push %d evicted %v before full", i, exp)
		}
	}
	exp := w.Push(rec("r3", 0, 3))
	if exp == nil || exp.RID != "r0" {
		t.Fatalf("expected r0 evicted, got %v", exp)
	}
	exp = w.Push(rec("r4", 0, 4))
	if exp == nil || exp.RID != "r1" {
		t.Fatalf("expected r1 evicted, got %v", exp)
	}
	snap := w.Snapshot()
	want := []string{"r2", "r3", "r4"}
	if len(snap) != 3 {
		t.Fatalf("Snapshot len = %d", len(snap))
	}
	for i, r := range snap {
		if r.RID != want[i] {
			t.Fatalf("snapshot[%d] = %s, want %s", i, r.RID, want[i])
		}
	}
}

func TestWindowEachEarlyStop(t *testing.T) {
	w := MustWindow(5)
	for i := 0; i < 5; i++ {
		w.Push(rec(fmt.Sprintf("r%d", i), 0, int64(i)))
	}
	n := 0
	w.Each(func(*tuple.Record) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d, want 2", n)
	}
}

func TestWindowSizeOne(t *testing.T) {
	w := MustWindow(1)
	if exp := w.Push(rec("a", 0, 0)); exp != nil {
		t.Fatal("first push must not evict")
	}
	if exp := w.Push(rec("b", 0, 1)); exp == nil || exp.RID != "a" {
		t.Fatalf("w=1 must evict previous, got %v", exp)
	}
}

func TestNewWindowError(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Fatal("window size 0 must fail")
	}
}

func TestMultiWindow(t *testing.T) {
	mw, err := NewMultiWindow(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mw.Streams() != 2 {
		t.Fatal("Streams != 2")
	}
	for i := 0; i < 2; i++ {
		if _, err := mw.Push(rec(fmt.Sprintf("a%d", i), 0, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mw.Push(rec("b0", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if mw.Len() != 3 {
		t.Fatalf("Len = %d, want 3", mw.Len())
	}
	exp, err := mw.Push(rec("a2", 0, 3))
	if err != nil || exp == nil || exp.RID != "a0" {
		t.Fatalf("expected a0 evicted from stream 0, got %v, %v", exp, err)
	}
	// Stream 1 untouched.
	if mw.Window(1).Len() != 1 {
		t.Fatal("stream 1 window must be unaffected")
	}
	if _, err := mw.Push(rec("x", 7, 9)); err == nil {
		t.Fatal("bad stream id must error")
	}
	n := 0
	mw.Each(func(*tuple.Record) bool { n++; return true })
	if n != 3 {
		t.Fatalf("Each visited %d, want 3", n)
	}
	n = 0
	mw.Each(func(*tuple.Record) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Each early stop visited %d, want 1", n)
	}
}

func TestTimeWindow(t *testing.T) {
	tw, err := NewTimeWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []int64{1, 3, 5, 12} {
		if err := tw.Push(rec(fmt.Sprintf("r%d", seq), 0, seq)); err != nil {
			t.Fatal(err)
		}
	}
	// now=12, span=10: cutoff 2 -> r1 expired.
	expired := tw.Advance(12)
	if len(expired) != 1 || expired[0].Seq != 1 {
		t.Fatalf("expired = %v, want [seq 1]", expired)
	}
	if tw.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tw.Len())
	}
	// Advance far: everything expires.
	expired = tw.Advance(100)
	if len(expired) != 3 {
		t.Fatalf("expired = %v, want 3 tuples", expired)
	}
	if tw.Len() != 0 {
		t.Fatal("window must now be empty")
	}
	if got := tw.Advance(200); got != nil {
		t.Fatal("advancing an empty window must return nil")
	}
}

func TestTimeWindowOutOfOrder(t *testing.T) {
	tw, _ := NewTimeWindow(5)
	if err := tw.Push(rec("a", 0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tw.Push(rec("b", 0, 9)); err == nil {
		t.Fatal("out-of-order push must fail")
	}
	if _, err := NewTimeWindow(0); err == nil {
		t.Fatal("span 0 must fail")
	}
}

func TestWindowExportImport(t *testing.T) {
	w := MustWindow(3)
	for i := 0; i < 5; i++ {
		w.Push(rec(fmt.Sprintf("r%d", i), 0, int64(i)))
	}
	exp := w.Export()
	if len(exp) != 3 || exp[0].RID != "r2" || exp[2].RID != "r4" {
		t.Fatalf("export %v", exp)
	}

	w2 := MustWindow(3)
	if err := w2.Import(exp); err != nil {
		t.Fatal(err)
	}
	// The restored window evicts in the same order as the original.
	if e := w2.Push(rec("r5", 0, 5)); e == nil || e.RID != "r2" {
		t.Fatalf("restored window evicted %v, want r2", e)
	}

	if err := w2.Import(exp); err == nil {
		t.Fatal("import into non-empty window must fail")
	}
	small := MustWindow(2)
	if err := small.Import(exp); err == nil {
		t.Fatal("import beyond capacity must fail")
	}
}

func TestMultiWindowExportImport(t *testing.T) {
	m, err := NewMultiWindow(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := []*tuple.Record{
		rec("a1", 0, 0), rec("b1", 1, 1), rec("a2", 0, 2), rec("b2", 1, 3),
	}
	for _, r := range arrivals {
		if _, err := m.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	exp := m.Export()
	if len(exp) != 4 {
		t.Fatalf("export has %d records, want 4", len(exp))
	}

	m2, err := NewMultiWindow(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Import(exp); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 4 || m2.Window(0).Len() != 2 || m2.Window(1).Len() != 2 {
		t.Fatalf("imported layout %d/%d/%d", m2.Len(), m2.Window(0).Len(), m2.Window(1).Len())
	}
	// Per-stream eviction order survives the roundtrip: one push fills
	// stream 0's window (cap 3), the next evicts the oldest resident.
	if e, _ := m2.Push(rec("a3", 0, 4)); e != nil {
		t.Fatalf("fill push evicted %v", e)
	}
	e, _ := m2.Push(rec("a4", 0, 5))
	if e == nil || e.RID != "a1" {
		t.Fatalf("restored multi-window evicted %v, want a1", e)
	}

	if err := m2.Import(exp); err == nil {
		t.Fatal("import into non-empty multi-window must fail")
	}
	bad := []*tuple.Record{rec("x", 5, 0)}
	m3, _ := NewMultiWindow(2, 3)
	if err := m3.Import(bad); err == nil {
		t.Fatal("import of an out-of-range stream must fail")
	}
	overflow := []*tuple.Record{
		rec("o1", 0, 0), rec("o2", 0, 1), rec("o3", 0, 2), rec("o4", 0, 3),
	}
	m4, _ := NewMultiWindow(2, 3)
	if err := m4.Import(overflow); err == nil {
		t.Fatal("import overflowing a stream window must fail")
	}
}

func TestTimeWindowExportImport(t *testing.T) {
	tw, err := NewTimeWindow(5)
	if err != nil {
		t.Fatal(err)
	}
	for i, seq := range []int64{1, 3, 7, 8} {
		if err := tw.Push(rec(fmt.Sprintf("t%d", i), 0, seq)); err != nil {
			t.Fatal(err)
		}
		tw.Advance(seq)
	}
	// seq 1 expired at Advance(7), seq 3 at Advance(8); live: 7, 8.
	exp := tw.Export()
	if len(exp) != 2 {
		t.Fatalf("export has %d tuples, want 2", len(exp))
	}

	tw2, err := NewTimeWindow(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw2.Import(exp); err != nil {
		t.Fatal(err)
	}
	// The clock was recovered: advancing to 12 expires seq 7 (7 <= 12-5) in
	// both windows identically.
	want := tw.Advance(12)
	got := tw2.Advance(12)
	if len(want) != 1 || len(got) != 1 || got[0].RID != want[0].RID {
		t.Fatalf("restored time window expired %v, original %v", got, want)
	}

	if err := tw2.Import(exp); err == nil {
		t.Fatal("import into non-empty time window must fail")
	}
}
