package wal

import (
	"testing"

	"terids/internal/testutil"
)

// TestMain gates the package on goroutine hygiene: Log.Close must stop the
// group-commit loop and Tailer.Stop must stop the poll loop — a survivor
// fails the whole run with its stack.
func TestMain(m *testing.M) {
	testutil.VerifyNoLeaks(m)
}
