package wal

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTailerFollowsAppends: a tailer over a live log sees every durable
// entry across multiple passes, in order, without ever opening the log.
func TestTailerFollowsAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tl, err := OpenTail(dir)
	if err != nil {
		t.Fatal(err)
	}

	var got []Entry
	collect := func(e Entry) error { got = append(got, e); return nil }

	next, err := tl.Replay(0, collect)
	if err != nil || next != 0 || len(got) != 0 {
		t.Fatalf("empty dir: next=%d err=%v entries=%d", next, err, len(got))
	}

	appendN(t, l, 0, 30)
	next, err = tl.Replay(next, collect)
	if err != nil {
		t.Fatal(err)
	}
	if next != 30 || len(got) != 30 {
		t.Fatalf("first pass: next=%d entries=%d, want 30/30", next, len(got))
	}

	appendN(t, l, 30, 20)
	next, err = tl.Replay(next, collect)
	if err != nil {
		t.Fatal(err)
	}
	if next != 50 || len(got) != 50 {
		t.Fatalf("second pass: next=%d entries=%d, want 50/50", next, len(got))
	}
	for i, e := range got {
		if e.Seq != int64(i) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}

	fr, err := tl.Frontier(0)
	if err != nil || fr != 50 {
		t.Fatalf("Frontier = %d, %v; want 50", fr, err)
	}
}

// TestTailerTruncationSignal: a cursor below the oldest retained segment
// reports ErrTruncated — the restart-from-checkpoint signal — not a silent
// resume or an fd error.
func TestTailerTruncationSignal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 60)
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("want >=3 segments for the test, got %d", st.Segments)
	}
	if err := l.TruncateBefore(40); err != nil {
		t.Fatal(err)
	}
	first := l.Stats().FirstSeq
	if first == 0 {
		t.Fatal("truncation removed nothing")
	}

	tl, err := OpenTail(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tl.Replay(0, func(Entry) error { return nil })
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("replay below retained = %v, want ErrTruncated", err)
	}
	// From the retained frontier it works.
	var n int
	next, err := tl.Replay(first, func(Entry) error { n++; return nil })
	if err != nil || next != 60 || n != int(60-first) {
		t.Fatalf("replay from %d: next=%d n=%d err=%v", first, next, n, err)
	}
}

// TestReplayTruncatedRangeError: Log.Replay wraps its own below-retained
// error in ErrTruncated so callers can branch on it.
func TestReplayTruncatedRangeError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 60)
	if err := l.TruncateBefore(40); err != nil {
		t.Fatal(err)
	}
	err = l.Replay(0, func(Entry) error { return nil })
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("Replay(0) after truncate = %v, want ErrTruncated", err)
	}
}

// TestTruncateUnderTailHammer is the satellite -race test: one goroutine
// appends, one truncates aggressively behind a moving watermark, and
// several replay concurrently from cursors at or above the already-applied
// frontier. Every replay must end cleanly or with ErrTruncated — never a
// raw fd error, never a contiguity gap — and entries that are delivered
// must be dense from the requested cursor.
func TestTruncateUnderTailHammer(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const total = 3000
	var appended atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := int64(0); seq < total; seq++ {
			if err := l.Append(testEntry(seq)); err != nil {
				t.Errorf("append %d: %v", seq, err)
				return
			}
			appended.Store(seq + 1)
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if hi := appended.Load(); hi > 0 {
				if err := l.TruncateBefore(hi); err != nil {
					t.Errorf("truncate: %v", err)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Log.Replay tailers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				hi := appended.Load()
				from := hi - rng.Int63n(200+1)
				if from < 0 {
					from = 0
				}
				expect := from
				err := l.Replay(from, func(e Entry) error {
					if e.Seq != expect {
						t.Errorf("Log.Replay gap: got seq %d, expected %d", e.Seq, expect)
					}
					expect = e.Seq + 1
					return nil
				})
				if err != nil && !errors.Is(err, ErrTruncated) {
					t.Errorf("Log.Replay(%d): %v", from, err)
					return
				}
			}
		}(int64(w))
	}

	// Read-only Tailer tailers (the follower's steady state).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tl, err := OpenTail(dir)
			if err != nil {
				t.Errorf("OpenTail: %v", err)
				return
			}
			rng := rand.New(rand.NewSource(100 + seed))
			cursor := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				expect := cursor
				next, err := tl.Replay(cursor, func(e Entry) error {
					if e.Seq != expect {
						t.Errorf("Tailer gap: got seq %d, expected %d", e.Seq, expect)
					}
					expect = e.Seq + 1
					return nil
				})
				switch {
				case errors.Is(err, ErrTruncated):
					// Restart-from-checkpoint signal: jump to the retained
					// frontier like a follower reloading a checkpoint would.
					cursor = appended.Load()
				case err != nil:
					t.Errorf("Tailer.Replay(%d): %v", cursor, err)
					return
				default:
					cursor = next
					if rng.Intn(4) == 0 {
						time.Sleep(time.Millisecond)
					}
				}
			}
		}(int64(w))
	}

	// Let the appender finish, then stop the churn.
	for appended.Load() < total {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestWriterLockExcludesSecondOpen: two live writers on one directory are
// refused, and the lock reads as writer-liveness for followers.
func TestWriterLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	if WriterAlive(dir) {
		t.Fatal("empty dir reports a live writer")
	}
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if !WriterAlive(dir) {
		t.Fatal("open log not reported as a live writer")
	}
	if _, err := Open(dir, Options{NoSync: true}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if WriterAlive(dir) {
		t.Fatal("closed log still reported as a live writer")
	}
	// The lock is reacquirable after release.
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	l2.Close()
}
