// The Tailer is the read side of the follower-replica design: a read-only
// view of a WAL directory that another live process is appending to. It
// must never use Open — Open truncates a torn tail record and takes the
// writer lock, both of which would fight the live writer — so the Tailer
// re-scans the directory on every pass, reads records bounded by the
// scanned sizes, and treats anything past the last complete record of the
// tail segment as "not durable yet" rather than an error. Segments removed
// underneath it (the writer's checkpointer truncating below a watermark)
// surface as ErrTruncated: the clean restart-from-checkpoint signal, never
// a silent gap.

package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Tailer reads another process's live WAL directory without mutating it.
// It holds no file descriptors between calls, so the writer can rotate and
// truncate freely; each Replay pass works from a fresh directory scan.
type Tailer struct {
	dir string
}

// OpenTail builds a read-only tailer over dir. The directory must exist
// (the follower boots against a writer's durability dir, never creates
// one).
func OpenTail(dir string) (*Tailer, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("wal: tail target %s is not a directory", dir)
	}
	return &Tailer{dir: dir}, nil
}

// Dir returns the tailed directory.
func (t *Tailer) Dir() string { return t.dir }

// scan lists the directory's segments with their current sizes, oldest
// first — the same scan Open performs, minus every mutation.
func (t *Tailer) scan() ([]segmeta, error) {
	des, err := os.ReadDir(t.dir)
	if err != nil {
		return nil, err
	}
	var segs []segmeta
	for _, de := range des {
		first, ok := parseSegName(de.Name())
		if !ok || de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			if os.IsNotExist(err) {
				continue // removed between ReadDir and stat
			}
			return nil, err
		}
		segs = append(segs, segmeta{first: first, path: filepath.Join(t.dir, de.Name()), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// Replay streams every fully-written entry with sequence >= from, in
// order, to fn, and returns the next sequence to request — the durable
// frontier as of this pass. A torn or partially-visible record in the tail
// segment ends the pass cleanly (the writer is mid-append; the next pass
// picks it up). ErrTruncated is returned when from is below the oldest
// retained segment or a segment vanishes mid-pass: reload a checkpoint and
// resume from its watermark. fn returning an error aborts the pass with
// that error.
func (t *Tailer) Replay(from int64, fn func(Entry) error) (int64, error) {
	segs, err := t.scan()
	if err != nil {
		return from, err
	}
	if len(segs) == 0 {
		return from, nil
	}
	if from < segs[0].first {
		return from, fmt.Errorf("%w: entries from seq %d requested, oldest retained is %d",
			ErrTruncated, from, segs[0].first)
	}
	next := from
	for i, s := range segs {
		if i+1 < len(segs) && segs[i+1].first <= from {
			continue // entirely below the requested range
		}
		tail := i == len(segs)-1
		done, err := t.replaySegment(s, from, &next, tail, fn)
		if err != nil {
			return next, err
		}
		if done {
			break
		}
	}
	return next, nil
}

// replaySegment delivers one segment's entries at or past from, advancing
// *next. For the tail segment any malformed record is the durable end (the
// writer may be mid-write and large batch writes are not atomic to
// readers); done=true stops the pass there. Rotated segments are immutable,
// so their record errors are real corruption — except a vanished file,
// which is truncation.
func (t *Tailer) replaySegment(s segmeta, from int64, next *int64, tail bool, fn func(Entry) error) (done bool, err error) {
	f, err := os.Open(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, fmt.Errorf("%w: segment %s removed mid-tail", ErrTruncated, filepath.Base(s.path))
		}
		return false, err
	}
	//lint:ignore walerr read-only tail scan; close cannot lose data
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	for {
		payload, n, rerr := readRecord(br, s.size-off)
		if rerr == io.EOF {
			return false, nil
		}
		if rerr != nil {
			if tail || errors.Is(rerr, errShortRecord) {
				// Torn tail, or a record grown past the scanned size: the
				// durable prefix ends here for this pass.
				return true, nil
			}
			return false, fmt.Errorf("wal: segment %s at offset %d: %w", filepath.Base(s.path), off, rerr)
		}
		e, derr := decodeEntry(payload)
		if derr != nil {
			if tail {
				return true, nil
			}
			return false, fmt.Errorf("wal: segment %s at offset %d: %w", filepath.Base(s.path), off, derr)
		}
		off += n
		if e.Seq < from {
			continue
		}
		if e.Seq != *next {
			return false, fmt.Errorf("wal: segment %s: entry seq %d, expected %d (log not contiguous)",
				filepath.Base(s.path), e.Seq, *next)
		}
		*next = e.Seq + 1
		if err := fn(e); err != nil {
			return false, err
		}
	}
}

// Frontier returns the sequence after the last fully-written entry at or
// past from, without delivering anything — how far a fresh reader could
// get right now.
func (t *Tailer) Frontier(from int64) (int64, error) {
	return t.Replay(from, func(Entry) error { return nil })
}
