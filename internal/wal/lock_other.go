//go:build !unix

package wal

import "os"

// Non-unix builds have no flock: writer exclusion and the liveness probe
// are disabled. Open always succeeds and WriterAlive always reports false,
// so follower auto-promotion must be driven explicitly (POST /promote) on
// these platforms.

func acquireDirLock(dir string) (*os.File, error) { return nil, nil }

func releaseDirLock(f *os.File) {}

// WriterAlive reports whether a live writer holds the directory lock;
// without flock support it cannot tell, and reports false.
func WriterAlive(dir string) bool { return false }
