//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockFileName is the writer-exclusion lock under the WAL directory. It is
// not a segment (no .wal suffix), so the segment scan ignores it. The
// kernel drops a flock when its holder exits — even on SIGKILL — so the
// lock doubles as a writer-liveness probe for followers: no stale-lockfile
// cleanup is ever needed.
const lockFileName = "wal.lock"

// acquireDirLock takes the exclusive, non-blocking writer lock on dir.
// A second live writer gets ErrLocked instead of silently corrupting the
// log.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close() // walerr: the flock failure is the error being returned
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
		}
		return nil, err
	}
	return f, nil
}

// releaseDirLock drops the writer lock; closing the fd releases the flock.
func releaseDirLock(f *os.File) {
	if f != nil {
		_ = f.Close() // walerr: lock release; the fd carries no buffered writes
	}
}

// WriterAlive reports whether a live process currently holds the writer
// lock on dir — the follower's liveness probe for auto-promotion. It never
// blocks; a missing lock file means no writer has ever opened the
// directory.
func WriterAlive(dir string) bool {
	f, err := os.Open(filepath.Join(dir, lockFileName))
	if err != nil {
		return false
	}
	//lint:ignore walerr read-only liveness probe; close cannot lose data
	defer f.Close()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_SH|syscall.LOCK_NB); err != nil {
		return true // the writer's exclusive lock blocked us: it is alive
	}
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN) // walerr: probe fd is closed next

	return false
}
