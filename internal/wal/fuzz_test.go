package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// validSegment builds a real on-disk segment by appending entries through
// the log itself, so fuzz seeds start from the genuine wire format and the
// mutator explores its neighbourhood (flipped CRCs, torn lengths, truncated
// varints) instead of random noise.
func validSegment(f *testing.F, n int) []byte {
	f.Helper()
	dir := f.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := l.Append(Entry{
			Seq: int64(i), RID: "r" + string(rune('a'+i)), Stream: i % 2,
			TupleSeq: int64(i), EntityID: -1,
			Values: []string{"deep nets", "-", "2014", "nips"},
		}); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, segName(0)))
	if err != nil {
		f.Fatal(err)
	}
	return b
}

// FuzzWALOpen hardens crash recovery against arbitrary segment corruption:
// whatever bytes a dying disk or a torn write leaves behind, Open must never
// panic — it either rejects the directory with an error or truncates to a
// well-formed durable prefix. When it does open, the surviving log must be
// internally consistent: Replay delivers exactly the contiguous entries the
// frontier advertises.
func FuzzWALOpen(f *testing.F) {
	seg := validSegment(f, 5)
	f.Add(seg)
	f.Add(seg[:len(seg)-3]) // torn tail record
	f.Add(seg[:9])          // torn first header
	f.Add([]byte{})
	f.Add([]byte("not a wal segment at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{NoSync: true})
		if err != nil {
			return // rejected cleanly
		}
		st := l.Stats()
		var n int64
		if err := l.Replay(st.FirstSeq, func(Entry) error { n++; return nil }); err != nil {
			t.Fatalf("opened log failed its own replay: %v (stats %+v)", err, st)
		}
		if want := st.NextSeq - st.FirstSeq; n != want {
			t.Fatalf("replayed %d entries, frontier advertises %d (stats %+v)", n, want, st)
		}
		// The truncated prefix must stay appendable.
		if err := l.Append(Entry{Seq: st.NextSeq, RID: "post", EntityID: -1}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
	})
}
