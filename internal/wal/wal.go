// Package wal is the arrival write-ahead log of the TER-iDS durability
// subsystem: a segmented, CRC-checksummed, append-only record of every
// accepted arrival, in submission order. Per the paper's incomplete-stream
// model the arrival order is the only non-derivable online state — every
// imputation distribution, pruning profile, and emitted pair is a
// deterministic function of it — so checkpoint-plus-arrival-log is an exact
// recovery discipline: restore the newest snapshot, replay the logged
// arrivals past its watermark, and the rebuilt state (pairs, order,
// probabilities) is byte-identical to an uninterrupted run.
//
// Durability uses group commit: appenders reserve a slot in the pending
// batch (cheap, in-memory, strictly ordered by sequence number) and then
// wait on a ticket while a single committer goroutine writes and fsyncs
// whole batches — concurrent appenders amortize one fsync instead of paying
// one each.
//
// On-disk layout: the directory holds segments named %020d.wal after their
// first sequence number. Each record is
//
//	u32 payload length | u32 crc32(payload) | payload
//
// with the payload encoding one arrival (sequence, stream id, raw tuple).
// Segments rotate at Options.SegmentBytes; TruncateBefore removes whole
// segments strictly below a checkpoint watermark. Open scans only the tail
// segment, truncating a torn final record (crash mid-write) so the log
// always reopens to the durable prefix.
//
// A dropped I/O or CRC error here is indistinguishable from corruption, so
// the package opts into the walerr analyzer: every error result must be
// handled or explicitly waived with `_ =`.
//
//terids:strict-errors
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"terids/internal/obs"
)

// ErrFull is returned by a non-blocking Reserve when the pending batch is at
// Options.QueueDepth (backpressure; the engine maps it to ErrOverloaded).
var ErrFull = errors.New("wal: append queue full")

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("wal: closed")

// ErrTruncated marks a replay that requested (or raced into) a range the
// log no longer retains: the cursor is below the oldest segment, or
// TruncateBefore removed a segment mid-replay. It is a clean
// restart-from-checkpoint signal — the caller should reload the newest
// checkpoint and resume from its watermark — never a silent gap or a raw
// fd error.
var ErrTruncated = errors.New("wal: replayed range truncated")

// ErrLocked is returned by Open when another live process holds the
// writer lock on the directory — two writers on one WAL directory would
// corrupt it, and a follower must promote via the lock, not around it.
var ErrLocked = errors.New("wal: directory locked by another writer")

// maxRecord bounds one encoded record, so a corrupted length prefix cannot
// drive allocation; anything larger is treated as a torn/corrupt tail.
const maxRecord = 1 << 24

// suffix is the segment file extension.
const suffix = ".wal"

// Entry is one logged arrival: the engine-assigned sequence number plus the
// raw tuple, everything replay needs to reconstruct the exact record.
type Entry struct {
	// Seq is the engine's global arrival sequence. Entries are strictly
	// contiguous: each append must carry the previous sequence plus one.
	Seq int64
	// RID, Stream, TupleSeq, EntityID, Values mirror tuple.Record ("-" or ""
	// marks a missing attribute; EntityID is the evaluation label, -1 when
	// unknown).
	RID      string
	Stream   int
	TupleSeq int64
	EntityID int
	Values   []string
}

// Options tunes the log.
type Options struct {
	// SegmentBytes is the rotation threshold. Default: 16 MiB.
	SegmentBytes int64
	// QueueDepth bounds the pending (reserved, not yet durable) batch.
	// Default: 256.
	QueueDepth int
	// NoSync skips fsync after each batch (tests and benchmarks; a crash may
	// lose the tail the OS had not flushed, but records stay well-formed).
	NoSync bool
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
}

// segmeta is one segment's bookkeeping.
type segmeta struct {
	first int64 // first sequence number in the segment (also its filename)
	path  string
	size  int64
}

// flush is one group-commit batch: entries reserved together, made durable
// by a single write+fsync, sharing one outcome.
type flush struct {
	entries []Entry
	err     error
	done    chan struct{}
}

// Ticket is an appender's claim on a pending batch; Wait blocks until the
// batch is durable (or failed).
type Ticket struct {
	f *flush // nil: the entry was already durable (idempotent re-append)
}

// Wait blocks until the reserved entry is durable and returns the batch's
// commit error, if any.
func (t Ticket) Wait() error {
	if t.f == nil {
		return nil
	}
	<-t.f.done
	return t.f.err
}

// Stats is a point-in-time view of the log.
type Stats struct {
	// Segments and Bytes describe the on-disk footprint.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// FirstSeq is the oldest retained sequence; NextSeq the next to be
	// reserved; DurableSeq the frontier below which every entry is on disk.
	// All zero for a log that has never seen an append.
	FirstSeq   int64 `json:"first_seq"`
	NextSeq    int64 `json:"next_seq"`
	DurableSeq int64 `json:"durable_seq"`
	// Pending counts reserved entries not yet durable.
	Pending int `json:"pending"`
}

// Log is a segmented append-only arrival log. Reserve/Append may be called
// from many goroutines; ordering of sequence numbers across them is the
// caller's contract (the engine serializes reservation under its submission
// lock).
type Log struct {
	dir  string
	opts Options

	// mu is the append mutex: reservation bookkeeping only. Blocking work —
	// segment I/O, fsync, file removal — happens outside it, or appenders
	// queue behind the disk.
	//terids:nosend
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	cur      *flush
	next     int64 // next sequence to reserve; -1 until the first entry fixes it
	durable  int64 // sequences < durable are written (and synced unless NoSync)
	segs     []segmeta
	total    int64
	closed   bool
	err      error // sticky commit failure: the log is poisoned

	f     *os.File // active (tail) segment, committer-owned
	fsize int64

	committerDone chan struct{}

	// metCommit/metFsync/metBatch are group-commit instruments in the
	// process-wide registry, committer-observed (one sample per batch).
	metCommit *obs.Histogram
	metFsync  *obs.Histogram
	metBatch  *obs.Histogram

	// jr receives segment lifecycle events (rotation, truncation) —
	// per-segment, not per-append, so recording cost is negligible.
	jr *obs.Journal

	// lockf holds the exclusive writer flock on the directory for the
	// lifetime of the log. The kernel releases it when the process dies —
	// even on SIGKILL — so followers probe it as a writer-liveness signal.
	lockf *os.File

	// testHookBeforeCommit, when set, runs in the committer just before each
	// batch write (test-only: lets tests hold a batch open to fill the queue).
	testHookBeforeCommit func()
}

func segName(first int64) string {
	return fmt.Sprintf("%020d%s", first, suffix)
}

func parseSegName(name string) (int64, bool) {
	base, ok := strings.CutSuffix(name, suffix)
	if !ok || len(base) != 20 {
		return 0, false
	}
	n, err := strconv.ParseInt(base, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Open scans dir (created if missing), validates the tail segment —
// truncating a torn final record — and returns a log positioned to append
// after the last durable entry. An empty directory yields an empty log whose
// first append fixes the starting sequence.
func Open(dir string, opts Options) (*Log, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lockf, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	opened := false
	defer func() {
		if !opened {
			releaseDirLock(lockf)
		}
	}()
	l := &Log{dir: dir, opts: opts, next: -1, durable: -1, committerDone: make(chan struct{}), lockf: lockf}
	l.notEmpty = sync.NewCond(&l.mu)
	l.notFull = sync.NewCond(&l.mu)
	reg := obs.Default()
	l.metCommit = reg.Histogram("terids_wal_commit_seconds",
		"Group-commit batch latency in the WAL committer: rotate if needed, encode, write, fsync.", nil)
	l.metFsync = reg.Histogram("terids_wal_fsync_seconds",
		"fsync portion of each WAL group commit (absent samples under NoSync).", nil)
	l.metBatch = reg.SizeHistogram("terids_wal_batch_entries",
		"Entries per WAL group-commit batch (how well concurrent submitters amortize each fsync).", nil)
	l.jr = obs.DefaultJournal()

	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, de := range des {
		first, ok := parseSegName(de.Name())
		if !ok || de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			return nil, err
		}
		l.segs = append(l.segs, segmeta{first: first, path: filepath.Join(dir, de.Name()), size: info.Size()})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })
	for i := 1; i < len(l.segs); i++ {
		if l.segs[i].first <= l.segs[i-1].first {
			return nil, fmt.Errorf("wal: segments %s and %s overlap",
				filepath.Base(l.segs[i-1].path), filepath.Base(l.segs[i].path))
		}
	}
	// A zero-byte tail (crash between segment creation and first write)
	// carries no entries; drop it so the scan below sees real records.
	for len(l.segs) > 0 && l.segs[len(l.segs)-1].size == 0 {
		tail := l.segs[len(l.segs)-1]
		if err := os.Remove(tail.path); err != nil {
			return nil, err
		}
		l.segs = l.segs[:len(l.segs)-1]
	}
	if len(l.segs) > 0 {
		if err := l.openTail(); err != nil {
			return nil, err
		}
	}
	for _, s := range l.segs {
		l.total += s.size
	}
	opened = true
	go l.run()
	return l, nil
}

// openTail scans the last segment record by record, truncates any torn tail,
// and opens it for appending.
func (l *Log) openTail() error {
	tail := &l.segs[len(l.segs)-1]
	f, err := os.Open(tail.path)
	if err != nil {
		return err
	}
	br := bufio.NewReader(f)
	var good int64
	last := int64(-1)
	for {
		payload, n, err := readRecord(br, tail.size-good)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail record: everything before it is the
			// durable prefix; drop the rest.
			break
		}
		e, derr := decodeEntry(payload)
		if derr != nil {
			break
		}
		if last == -1 {
			if e.Seq != tail.first {
				_ = f.Close() // walerr: read-only scan; the format error is what matters
				return fmt.Errorf("wal: segment %s starts at seq %d, filename says %d",
					filepath.Base(tail.path), e.Seq, tail.first)
			}
		} else if e.Seq != last+1 {
			_ = f.Close() // walerr: read-only scan; the format error is what matters
			return fmt.Errorf("wal: segment %s jumps from seq %d to %d",
				filepath.Base(tail.path), last, e.Seq)
		}
		last = e.Seq
		good += n
	}
	_ = f.Close() // walerr: read-only scan; the tail reopens O_RDWR below
	if last == -1 {
		// No whole record survived; the segment is a pure torn write.
		if err := os.Remove(tail.path); err != nil {
			return err
		}
		l.segs = l.segs[:len(l.segs)-1]
		if len(l.segs) > 0 {
			return l.openTail()
		}
		return nil
	}
	if good < tail.size {
		if err := os.Truncate(tail.path, good); err != nil {
			return err
		}
		tail.size = good
	}
	w, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = w
	l.fsize = tail.size
	l.next = last + 1
	l.durable = l.next
	return nil
}

// Reserve claims the next slot in the pending batch for e and returns a
// ticket to wait on. Entries must be contiguous: e.Seq equal to the previous
// reservation plus one. A sequence already reserved (or durable) is a no-op
// — the returned ticket is immediately ready — which makes recovery replay
// through the normal submission path idempotent. With block=false a full
// queue returns ErrFull instead of waiting.
//
//terids:hotpath
func (l *Log) Reserve(e Entry, block bool) (Ticket, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed {
			return Ticket{}, ErrClosed
		}
		if l.err != nil {
			return Ticket{}, l.err
		}
		if l.next >= 0 && e.Seq < l.next {
			return Ticket{}, nil // already reserved or durable
		}
		if l.next >= 0 && e.Seq > l.next {
			return Ticket{}, fmt.Errorf("wal: append seq %d leaves a gap (next is %d)", e.Seq, l.next)
		}
		if l.cur == nil || len(l.cur.entries) < l.opts.QueueDepth {
			break
		}
		if !block {
			return Ticket{}, ErrFull
		}
		l.notFull.Wait()
	}
	if l.cur == nil {
		l.cur = &flush{done: make(chan struct{})}
	}
	l.cur.entries = append(l.cur.entries, e)
	if l.next < 0 {
		// First entry of an empty log: it fixes the starting sequence, and
		// the durable frontier starts right at it (nothing older exists).
		l.durable = e.Seq
	}
	l.next = e.Seq + 1
	l.notEmpty.Signal()
	return Ticket{f: l.cur}, nil
}

// ReserveN claims slots for a whole batch of entries under one lock
// acquisition and returns a single ticket covering all of them — the batched
// counterpart of Reserve that Engine.SubmitBatch amortizes its WAL
// reservation through. The entries must be in ascending, gap-free sequence
// order. A leading run of already-durable sequences is skipped entry by
// entry (so recovery replay through the batched submission path stays
// idempotent); the remainder must then continue exactly at the log's next
// sequence. All accepted entries join the same pending flush and share one
// write+fsync; a batch may overrun QueueDepth by up to its own length
// (blocking waits only for the current flush to have any room at all), which
// keeps a batch atomic within one group commit. With block=false a full
// queue returns ErrFull before anything is appended.
//
//terids:hotpath
func (l *Log) ReserveN(entries []Entry, block bool) (Ticket, error) {
	if len(entries) == 0 {
		return Ticket{}, nil
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Seq != entries[i-1].Seq+1 {
			return Ticket{}, fmt.Errorf("wal: batch entries out of order: seq %d follows %d",
				entries[i].Seq, entries[i-1].Seq)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	i := 0
	for {
		if l.closed {
			return Ticket{}, ErrClosed
		}
		if l.err != nil {
			return Ticket{}, l.err
		}
		for i < len(entries) && l.next >= 0 && entries[i].Seq < l.next {
			i++ // already reserved or durable: idempotent replay no-op
		}
		if i == len(entries) {
			return Ticket{}, nil
		}
		if l.next >= 0 && entries[i].Seq > l.next {
			return Ticket{}, fmt.Errorf("wal: append seq %d leaves a gap (next is %d)", entries[i].Seq, l.next)
		}
		if l.cur == nil || len(l.cur.entries) < l.opts.QueueDepth {
			break
		}
		if !block {
			return Ticket{}, ErrFull
		}
		l.notFull.Wait()
	}
	if l.cur == nil {
		l.cur = &flush{done: make(chan struct{})}
	}
	if l.next < 0 {
		// First entry of an empty log fixes the starting sequence and the
		// durable frontier (nothing older exists).
		l.durable = entries[i].Seq
	}
	l.cur.entries = append(l.cur.entries, entries[i:]...)
	l.next = entries[len(entries)-1].Seq + 1
	l.notEmpty.Signal()
	return Ticket{f: l.cur}, nil
}

// Append reserves e and waits for durability — the blocking convenience
// wrapper around Reserve.
func (l *Log) Append(e Entry) error {
	t, err := l.Reserve(e, true)
	if err != nil {
		return err
	}
	return t.Wait()
}

// run is the committer: it takes whole pending batches and makes them
// durable with one write (+fsync) each.
func (l *Log) run() {
	defer close(l.committerDone)
	for {
		l.mu.Lock()
		for l.cur == nil && !l.closed {
			l.notEmpty.Wait()
		}
		f := l.cur
		l.cur = nil
		closed := l.closed
		hook := l.testHookBeforeCommit
		l.mu.Unlock()
		if f == nil {
			if closed {
				return
			}
			continue
		}
		if hook != nil {
			hook()
		}
		err := l.commit(f.entries)
		l.mu.Lock()
		if err != nil {
			if l.err == nil {
				l.err = err
			}
		} else {
			l.durable = f.entries[len(f.entries)-1].Seq + 1
		}
		l.notFull.Broadcast()
		l.mu.Unlock()
		f.err = err
		close(f.done)
	}
}

// commit writes one batch to the active segment, rotating first if the
// segment is over the threshold. Only the committer touches l.f.
func (l *Log) commit(entries []Entry) error {
	commitStart := time.Now()
	if l.f != nil && l.fsize >= l.opts.SegmentBytes {
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	if l.f == nil {
		path := filepath.Join(l.dir, segName(entries[0].Seq))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		l.jr.Record("wal_rotate", "opened a new WAL segment",
			map[string]any{"first_seq": entries[0].Seq, "path": path})
		// The new directory entry must be durable before any batch in this
		// segment is acknowledged: fsyncing the file alone does not persist
		// its name, and a power loss could otherwise drop a whole
		// acknowledged segment.
		if !l.opts.NoSync {
			if err := syncDir(l.dir); err != nil {
				_ = f.Close() // walerr: the sync failure is the error being returned
				return err
			}
		}
		l.f = f
		l.fsize = 0
		l.mu.Lock()
		l.segs = append(l.segs, segmeta{first: entries[0].Seq, path: path})
		l.mu.Unlock()
	}
	var buf bytes.Buffer
	for i := range entries {
		if err := writeRecord(&buf, &entries[i]); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("wal: writing segment: %w", err)
	}
	if !l.opts.NoSync {
		fsyncStart := time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.metFsync.ObserveSince(fsyncStart)
	}
	l.fsize += int64(buf.Len())
	l.mu.Lock()
	l.segs[len(l.segs)-1].size = l.fsize
	l.total += int64(buf.Len())
	l.mu.Unlock()
	l.metCommit.ObserveSince(commitStart)
	l.metBatch.Observe(int64(len(entries)))
	return nil
}

// TruncateBefore removes whole segments all of whose entries have sequence
// numbers below seq — called after a checkpoint at watermark seq makes them
// unnecessary for recovery. The active segment is never removed.
func (l *Log) TruncateBefore(seq int64) error {
	// Bookkeeping under the append mutex, unlinking outside it (locksend:
	// os.Remove under mu would queue appenders behind the disk). Dropping
	// the segments from l.segs first is safe in both failure directions: a
	// removal that fails leaves a stray file that the next Open rescans as
	// ordinary (still-valid) coverage, and replay of a removed range
	// already reports ErrTruncated off the bookkeeping, not the directory.
	l.mu.Lock()
	var victims []string
	for len(l.segs) >= 2 && l.segs[1].first <= seq {
		victims = append(victims, l.segs[0].path)
		l.total -= l.segs[0].size
		l.segs = l.segs[1:]
	}
	if len(victims) > 0 {
		l.jr.Record("wal_truncate", "removed WAL segments below the checkpoint watermark",
			map[string]any{"segments": len(victims), "watermark": seq, "first_seq": l.segs[0].first})
	}
	l.mu.Unlock()
	for _, path := range victims {
		if err := os.Remove(path); err != nil {
			return err
		}
	}
	return nil
}

// Replay streams every durable entry with sequence >= from, in order, to fn;
// fn returning an error aborts the replay. It is an error for the log to
// have already truncated entries at or above from (the caller's checkpoint
// is older than the retained log). Entries still pending (reserved but not
// yet durable) are not replayed, so Replay is safe concurrently with
// appends; recovery calls it before the first append anyway.
func (l *Log) Replay(from int64, fn func(Entry) error) error {
	l.mu.Lock()
	segs := append([]segmeta(nil), l.segs...)
	stop := l.durable
	l.mu.Unlock()
	if len(segs) == 0 || stop < 0 {
		return nil
	}
	if from < segs[0].first {
		return fmt.Errorf("%w: entries from seq %d requested, oldest retained is %d", ErrTruncated, from, segs[0].first)
	}
	expect := from
	for i, s := range segs {
		if i+1 < len(segs) && segs[i+1].first <= from {
			continue // entirely below the requested range
		}
		if s.first >= stop {
			break
		}
		if err := l.replaySegment(s, from, stop, &expect, fn); err != nil {
			return err
		}
	}
	if expect < stop {
		return fmt.Errorf("wal: replay ended at seq %d, durable frontier is %d", expect, stop)
	}
	return nil
}

func (l *Log) replaySegment(s segmeta, from, stop int64, expect *int64, fn func(Entry) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			// TruncateBefore removed the segment between our metadata
			// snapshot and this open: the range is gone, cleanly.
			return fmt.Errorf("%w: segment %s removed mid-replay", ErrTruncated, filepath.Base(s.path))
		}
		return err
	}
	//lint:ignore walerr read-only replay scan; close cannot lose data
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	for {
		payload, n, err := readRecord(br, s.size-off)
		if err == io.EOF || errors.Is(err, errShortRecord) {
			// errShortRecord here means the segment grew past the captured
			// size snapshot mid-read; everything durable was delivered.
			return nil
		}
		if err != nil {
			return fmt.Errorf("wal: segment %s at offset %d: %w", filepath.Base(s.path), off, err)
		}
		e, err := decodeEntry(payload)
		if err != nil {
			return fmt.Errorf("wal: segment %s at offset %d: %w", filepath.Base(s.path), off, err)
		}
		off += n
		if e.Seq >= stop {
			return nil
		}
		if e.Seq >= from {
			if e.Seq != *expect {
				return fmt.Errorf("wal: segment %s: entry seq %d, expected %d (log not contiguous)",
					filepath.Base(s.path), e.Seq, *expect)
			}
			*expect = e.Seq + 1
			if err := fn(e); err != nil {
				return err
			}
		}
	}
}

// Stats returns the log's current footprint and frontiers.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{Segments: len(l.segs), Bytes: l.total}
	if l.next >= 0 {
		st.NextSeq = l.next
		st.DurableSeq = l.durable
		st.Pending = int(l.next - l.durable)
	}
	if len(l.segs) > 0 {
		st.FirstSeq = l.segs[0].first
	} else if l.next >= 0 {
		st.FirstSeq = l.next
	}
	return st
}

// Close flushes the pending batch, stops the committer, and closes the
// active segment. Further appends return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.committerDone
		return nil
	}
	l.closed = true
	l.notEmpty.Signal()
	l.notFull.Broadcast()
	l.mu.Unlock()
	<-l.committerDone
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	// Release the liveness flock outside mu (locksend: the release closes a
	// file descriptor, and a follower polling TryAcquire must not observe
	// the lock held by a Log wedged on its own close path).
	l.mu.Lock()
	lockf := l.lockf
	l.lockf = nil
	err := l.err
	l.mu.Unlock()
	releaseDirLock(lockf)
	return err
}

// syncDir fsyncs a directory, making renames and newly created names in it
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // walerr: the sync failure is the error being returned
		return err
	}
	return d.Close()
}

// errShortRecord marks a record whose declared length runs past the known
// segment end — a torn write at the tail, or (during concurrent replay) a
// record beyond the captured durable frontier.
var errShortRecord = errors.New("wal: record extends past segment end")

// writeRecord frames one entry: length, crc, payload.
func writeRecord(buf *bytes.Buffer, e *Entry) error {
	payload := encodeEntry(e)
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: entry %d encodes to %d bytes, limit %d", e.Seq, len(payload), maxRecord)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf.Write(hdr[:])
	buf.Write(payload)
	return nil
}

// readRecord reads one framed record; remaining bounds how many bytes of the
// segment are known to exist, so a torn length prefix fails cleanly instead
// of blocking on a short read.
func readRecord(br *bufio.Reader, remaining int64) (payload []byte, n int64, err error) {
	if remaining <= 0 {
		return nil, 0, io.EOF
	}
	if remaining < 8 {
		return nil, 0, errShortRecord
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, 0, errShortRecord
		}
		return nil, 0, err
	}
	size := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if size > maxRecord {
		return nil, 0, fmt.Errorf("wal: implausible record length %d", size)
	}
	if int64(size) > remaining-8 {
		return nil, 0, errShortRecord
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, 0, errShortRecord
		}
		return nil, 0, err
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, fmt.Errorf("wal: record checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	return payload, 8 + int64(size), nil
}

// encodeEntry serializes one arrival (varints + length-prefixed strings).
func encodeEntry(e *Entry) []byte {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	vi := func(v int64) { buf.Write(tmp[:binary.PutVarint(tmp[:], v)]) }
	uv := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	str := func(s string) { uv(uint64(len(s))); buf.WriteString(s) }
	vi(e.Seq)
	str(e.RID)
	vi(int64(e.Stream))
	vi(e.TupleSeq)
	vi(int64(e.EntityID))
	uv(uint64(len(e.Values)))
	for _, v := range e.Values {
		str(v)
	}
	return buf.Bytes()
}

// decodeEntry parses one payload back into an entry.
func decodeEntry(payload []byte) (Entry, error) {
	r := bytes.NewReader(payload)
	var firstErr error
	vi := func() int64 {
		v, err := binary.ReadVarint(r)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	uv := func() uint64 {
		v, err := binary.ReadUvarint(r)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	str := func() string {
		n := uv()
		if firstErr != nil {
			return ""
		}
		if n > uint64(r.Len()) {
			firstErr = fmt.Errorf("wal: string length %d exceeds remaining payload %d", n, r.Len())
			return ""
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			firstErr = err
			return ""
		}
		return string(b)
	}
	var e Entry
	e.Seq = vi()
	e.RID = str()
	e.Stream = int(vi())
	e.TupleSeq = vi()
	e.EntityID = int(vi())
	nv := uv()
	if firstErr == nil && nv > uint64(r.Len()) {
		firstErr = fmt.Errorf("wal: value count %d exceeds remaining payload %d", nv, r.Len())
	}
	if firstErr == nil {
		e.Values = make([]string, 0, nv)
		for i := uint64(0); i < nv && firstErr == nil; i++ {
			e.Values = append(e.Values, str())
		}
	}
	if firstErr != nil {
		return Entry{}, fmt.Errorf("wal: corrupt entry payload: %w", firstErr)
	}
	if r.Len() != 0 {
		return Entry{}, fmt.Errorf("wal: %d trailing bytes in entry payload", r.Len())
	}
	return e, nil
}
