package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func testEntry(seq int64) Entry {
	return Entry{
		Seq:      seq,
		RID:      fmt.Sprintf("r%d", seq),
		Stream:   int(seq % 3),
		TupleSeq: seq * 10,
		EntityID: int(seq % 7),
		Values:   []string{fmt.Sprintf("alpha beta %d", seq), "-", "shared value"},
	}
}

func appendN(t *testing.T, l *Log, from, n int64) {
	t.Helper()
	for seq := from; seq < from+n; seq++ {
		if err := l.Append(testEntry(seq)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
}

func replayAll(t *testing.T, l *Log, from int64) []Entry {
	t.Helper()
	var out []Entry
	if err := l.Replay(from, func(e Entry) error {
		out = append(out, e)
		return nil
	}); err != nil {
		t.Fatalf("replay from %d: %v", from, err)
	}
	return out
}

// TestRoundtrip: entries survive a close/reopen byte-exactly, in order.
func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 25)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2, 0)
	if len(got) != 25 {
		t.Fatalf("replayed %d entries, want 25", len(got))
	}
	for i, e := range got {
		if want := testEntry(int64(i)); !reflect.DeepEqual(e, want) {
			t.Fatalf("entry %d: got %+v, want %+v", i, e, want)
		}
	}
	if st := l2.Stats(); st.NextSeq != 25 || st.FirstSeq != 0 || st.DurableSeq != 25 {
		t.Fatalf("stats after reopen: %+v", st)
	}
	// Appends continue where the log left off; a gap or a stale sequence is
	// handled per the contract (no-op below, error above).
	if err := l2.Append(testEntry(25)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(testEntry(10)); err != nil {
		t.Fatal("idempotent re-append of a durable seq must be a no-op, got:", err)
	}
	if err := l2.Append(testEntry(99)); err == nil {
		t.Fatal("append with a sequence gap must fail")
	}
	if got := replayAll(t, l2, 20); len(got) != 6 || got[0].Seq != 20 || got[5].Seq != 25 {
		t.Fatalf("partial replay got %d entries spanning [%d,%d]", len(got), got[0].Seq, got[len(got)-1].Seq)
	}
}

// TestRotationAndTruncate: small segments force rotation; TruncateBefore
// drops whole segments below the watermark and replay still serves the rest.
func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 60)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", st.Segments)
	}
	if err := l.TruncateBefore(30); err != nil {
		t.Fatal(err)
	}
	st = l.Stats()
	if st.FirstSeq == 0 || st.FirstSeq > 30 {
		t.Fatalf("after truncate: first retained seq %d, want in (0,30]", st.FirstSeq)
	}
	if got := replayAll(t, l, 30); len(got) != 30 || got[0].Seq != 30 {
		t.Fatalf("post-truncate replay: %d entries starting at %d", len(got), got[0].Seq)
	}
	// Replay below the retained range must refuse (exact recovery from that
	// point is impossible), not silently skip.
	if err := l.Replay(0, func(Entry) error { return nil }); err == nil {
		t.Fatal("replay below the truncation point must fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen mid-history: the log resumes from the retained tail.
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.NextSeq != 60 {
		t.Fatalf("reopened NextSeq %d, want 60", st.NextSeq)
	}
}

// TestTornTailRecovery simulates crash mid-write in all its forms: a
// truncated record, a corrupted checksum, and trailing garbage. Open must
// recover the durable prefix and keep appending from there.
func TestTornTailRecovery(t *testing.T) {
	cases := []struct {
		name string
		harm func(t *testing.T, path string, size int64)
		keep int64 // entries surviving out of 10
	}{
		{"truncated mid-record", func(t *testing.T, path string, size int64) {
			if err := os.Truncate(path, size-3); err != nil {
				t.Fatal(err)
			}
		}, 9},
		{"corrupted last payload byte", func(t *testing.T, path string, size int64) {
			f, err := os.OpenFile(path, os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte{0xFF}, size-1); err != nil {
				t.Fatal(err)
			}
		}, 9},
		{"trailing garbage", func(t *testing.T, path string, size int64) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write([]byte{1, 2, 3, 4, 5}); err != nil {
				t.Fatal(err)
			}
		}, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 0, 10)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, segName(0))
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			tc.harm(t, path, info.Size())

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open after torn tail: %v", err)
			}
			defer l2.Close()
			if st := l2.Stats(); st.NextSeq != tc.keep {
				t.Fatalf("NextSeq %d after recovery, want %d", st.NextSeq, tc.keep)
			}
			if got := replayAll(t, l2, 0); int64(len(got)) != tc.keep {
				t.Fatalf("replayed %d entries, want %d", len(got), tc.keep)
			}
			// The log keeps working past the repaired tail.
			appendN(t, l2, tc.keep, 3)
			if got := replayAll(t, l2, 0); int64(len(got)) != tc.keep+3 {
				t.Fatalf("post-repair replay %d entries, want %d", len(got), tc.keep+3)
			}
		})
	}
}

// TestEmptyTailSegmentDropped: a zero-byte segment (crash between create and
// first write cannot happen with lazy creation, but an operator touch can)
// must not wedge Open.
func TestEmptyTailSegmentDropped(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(5)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.NextSeq != 5 || st.Segments != 1 {
		t.Fatalf("stats after dropping empty tail: %+v", st)
	}
}

// TestGroupCommit: concurrent appenders (reserving in order, waiting
// together) all become durable, and the full queue pushes back on a
// non-blocking reserve while a batch is held open.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	l.testHookBeforeCommit = func() {
		once.Do(func() {
			close(entered)
			<-gate
		})
	}
	// First reserve wakes the committer, which parks in the hook holding
	// batch {0}; everything reserved meanwhile piles into the next batch.
	t0, err := l.Reserve(testEntry(0), true)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	tickets := []Ticket{t0}
	for seq := int64(1); seq <= 4; seq++ {
		tk, err := l.Reserve(testEntry(seq), false)
		if err != nil {
			t.Fatalf("reserve %d: %v", seq, err)
		}
		tickets = append(tickets, tk)
	}
	if _, err := l.Reserve(testEntry(5), false); !errors.Is(err, ErrFull) {
		t.Fatalf("reserve into a full queue: %v, want ErrFull", err)
	}
	close(gate)
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	if st := l.Stats(); st.DurableSeq != 5 {
		t.Fatalf("DurableSeq %d, want 5", st.DurableSeq)
	}
	if err := l.Append(testEntry(5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Reserve(testEntry(6), true); !errors.Is(err, ErrClosed) {
		t.Fatalf("reserve after close: %v, want ErrClosed", err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2, 0); len(got) != 6 {
		t.Fatalf("replayed %d entries after group-commit run, want 6", len(got))
	}
}

// TestStartsAtNonZeroSeq: a fresh log restored next to an existing
// checkpoint begins at the checkpoint watermark, not zero.
func TestStartsAtNonZeroSeq(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1000, 5)
	st := l.Stats()
	if st.FirstSeq != 1000 || st.NextSeq != 1005 {
		t.Fatalf("stats %+v, want first 1000 next 1005", st)
	}
	if got := replayAll(t, l, 1002); len(got) != 3 || got[0].Seq != 1002 {
		t.Fatalf("replay from 1002: %d entries starting at %d", len(got), got[0].Seq)
	}
}

// TestEntryCodecEdgeCases: empty values, missing markers, unicode — the
// payload codec must be exact.
func TestEntryCodecEdgeCases(t *testing.T) {
	cases := []Entry{
		{Seq: 0, RID: "a", Stream: 0, TupleSeq: 0, EntityID: -1, Values: []string{}},
		{Seq: 7, RID: "日本語-rid", Stream: 5, TupleSeq: -3, EntityID: 42,
			Values: []string{"", "-", "x y z", "héllo wörld"}},
	}
	for i, e := range cases {
		got, err := decodeEntry(encodeEntry(&e))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if e.Values == nil {
			e.Values = []string{}
		}
		if got.Values == nil {
			got.Values = []string{}
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("case %d: got %+v, want %+v", i, got, e)
		}
	}
	if _, err := decodeEntry([]byte{0x80}); err == nil {
		t.Fatal("truncated payload must fail to decode")
	}
	if _, err := decodeEntry(append(encodeEntry(&cases[0]), 0)); err == nil {
		t.Fatal("trailing bytes must fail to decode")
	}
}

// batchEntries builds the ascending batch [from, from+n).
func batchEntries(from, n int64) []Entry {
	out := make([]Entry, 0, n)
	for seq := from; seq < from+n; seq++ {
		out = append(out, testEntry(seq))
	}
	return out
}

// TestReserveN: a batch shares one ticket, lands durably in order, and the
// already-durable prefix of a replayed batch is skipped idempotently.
func TestReserveN(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := l.ReserveN(batchEntries(0, 10), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.NextSeq != 10 || st.DurableSeq != 10 {
		t.Fatalf("stats after batch: %+v", st)
	}

	// Overlapping re-submission (recovery replay): the durable prefix [0,10)
	// is skipped, [10,15) is appended.
	tk, err = l.ReserveN(batchEntries(5, 10), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	// A fully-durable batch is a ready-ticket no-op.
	tk, err = l.ReserveN(batchEntries(0, 15), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.NextSeq != 15 {
		t.Fatalf("NextSeq %d after overlap replays, want 15", st.NextSeq)
	}

	// Gaps fail up front: within the batch and against the log frontier.
	if _, err := l.ReserveN([]Entry{testEntry(15), testEntry(17)}, true); err == nil {
		t.Fatal("batch with an internal gap must fail")
	}
	if _, err := l.ReserveN(batchEntries(20, 3), true); err == nil {
		t.Fatal("batch leaving a gap after the frontier must fail")
	}
	if tk, err := l.ReserveN(nil, true); err != nil || tk.Wait() != nil {
		t.Fatal("empty batch must be a ready no-op")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2, 0)
	if len(got) != 15 {
		t.Fatalf("replayed %d entries, want 15", len(got))
	}
	for i, e := range got {
		if want := testEntry(int64(i)); !reflect.DeepEqual(e, want) {
			t.Fatalf("entry %d: got %+v, want %+v", i, e, want)
		}
	}
}

// TestReserveNFullQueue: with the committer parked and the current flush at
// QueueDepth, a non-blocking batch gets ErrFull with nothing appended, while
// a blocking batch waits for room and then joins one group commit whole —
// overrunning QueueDepth by its own length rather than splitting.
func TestReserveNFullQueue(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	l.testHookBeforeCommit = func() {
		once.Do(func() {
			close(entered)
			<-gate
		})
	}
	// Wake the committer with {0}; it parks in the hook. {1,2} then fill the
	// next flush to QueueDepth.
	t0, err := l.Reserve(testEntry(0), true)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	t12, err := l.ReserveN(batchEntries(1, 2), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReserveN(batchEntries(3, 4), false); !errors.Is(err, ErrFull) {
		t.Fatalf("non-blocking batch into a full queue: %v, want ErrFull", err)
	}
	if st := l.Stats(); st.NextSeq != 3 {
		t.Fatalf("rejected batch advanced the frontier: NextSeq %d, want 3", st.NextSeq)
	}
	// The blocking batch waits for the parked flush to drain, then joins the
	// following flush whole.
	done := make(chan error, 1)
	go func() {
		tk, err := l.ReserveN(batchEntries(3, 4), true)
		if err != nil {
			done <- err
			return
		}
		done <- tk.Wait()
	}()
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for _, tk := range []Ticket{t0, t12} {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.DurableSeq != 7 || st.NextSeq != 7 {
		t.Fatalf("stats after blocking batch: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
