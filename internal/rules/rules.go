// Package rules implements the dependency rules TER-iDS imputes with:
// differential dependencies (DDs, Song & Chen), editing rules (Fan et al.),
// and conditional differential dependencies (CDDs, Definition 3), plus a
// self-contained miner that detects them from a complete data repository
// (the recipe sketched in Section 2.2).
package rules

import (
	"fmt"
	"strings"

	"terids/internal/tokens"
	"terids/internal/tuple"
)

// Kind labels the rule family a rule was mined as.
type Kind int

// Rule families.
const (
	KindDD      Kind = iota // interval constraints only, εmin = 0
	KindCDD                 // mixed constants and (banded) intervals
	KindEditing             // constant constraints with exact dependent copy
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDD:
		return "DD"
	case KindCDD:
		return "CDD"
	case KindEditing:
		return "editing"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ConstraintKind distinguishes the two determinant constraint forms of
// Definition 3.
type ConstraintKind int

// Constraint forms.
const (
	// Const requires both tuples to carry exactly the value v on the
	// attribute.
	Const ConstraintKind = iota
	// Interval requires the Jaccard distance between the two tuples'
	// values to lie in [Min, Max].
	Interval
)

// Constraint is φ[A_x] for one determinant attribute A_x ∈ X.
type Constraint struct {
	Attr int
	Kind ConstraintKind
	// Value/Toks define the constant for Const constraints.
	Value string
	Toks  tokens.Set
	// Min/Max define the distance interval for Interval constraints
	// (0 <= Min < Max per the paper's relaxed εmin).
	Min, Max float64
}

// Rule is one dependency (X → A_j, φ[XA_j]).
type Rule struct {
	ID           int
	Kind         Kind
	Dependent    int
	Determinants []Constraint
	// DepMin/DepMax form the dependent distance constraint A_j.I.
	DepMin, DepMax float64
}

// AppliesTo reports whether the rule can be used to impute rec's missing
// dependent attribute: every determinant attribute must be present, and
// constant constraints must match rec's value exactly (token-set equality).
func (r *Rule) AppliesTo(rec *tuple.Record) bool {
	for _, c := range r.Determinants {
		if rec.IsMissing(c.Attr) {
			return false
		}
		if c.Kind == Const && !rec.Tokens(c.Attr).Equal(c.Toks) {
			return false
		}
	}
	return true
}

// SampleMatches reports whether repository sample s satisfies the rule's
// determinant constraints with respect to rec: constant constraints require
// s to carry the constant too, interval constraints require the Jaccard
// distance between rec and s on the attribute to fall inside [Min, Max].
// Callers must have established AppliesTo(rec).
func (r *Rule) SampleMatches(rec, s *tuple.Record) bool {
	for _, c := range r.Determinants {
		switch c.Kind {
		case Const:
			if !s.Tokens(c.Attr).Equal(c.Toks) {
				return false
			}
		case Interval:
			d := tokens.JaccardDistance(rec.Tokens(c.Attr), s.Tokens(c.Attr))
			if d < c.Min || d > c.Max {
				return false
			}
		}
	}
	return true
}

// String renders the rule in the paper's notation.
func (r *Rule) String() string {
	var parts []string
	for _, c := range r.Determinants {
		if c.Kind == Const {
			parts = append(parts, fmt.Sprintf("A%d=%q", c.Attr, c.Value))
		} else {
			parts = append(parts, fmt.Sprintf("A%d∈[%.2f,%.2f]", c.Attr, c.Min, c.Max))
		}
	}
	return fmt.Sprintf("%s{%s → A%d, [%.2f,%.2f]}",
		r.Kind, strings.Join(parts, ","), r.Dependent, r.DepMin, r.DepMax)
}

// Set is a collection of rules grouped by dependent attribute.
type Set struct {
	d     int
	byDep [][]*Rule
	all   []*Rule
}

// NewSet creates an empty set for a d-attribute schema.
func NewSet(d int) *Set {
	return &Set{d: d, byDep: make([][]*Rule, d)}
}

// Add appends a rule, assigning it the next id.
func (s *Set) Add(r *Rule) error {
	if r.Dependent < 0 || r.Dependent >= s.d {
		return fmt.Errorf("rules: dependent attribute %d out of range [0,%d)", r.Dependent, s.d)
	}
	if r.DepMin < 0 || r.DepMax < r.DepMin {
		return fmt.Errorf("rules: bad dependent interval [%v,%v]", r.DepMin, r.DepMax)
	}
	if len(r.Determinants) == 0 {
		return fmt.Errorf("rules: rule has no determinant constraints")
	}
	for _, c := range r.Determinants {
		if c.Attr == r.Dependent {
			return fmt.Errorf("rules: determinant %d equals dependent", c.Attr)
		}
		if c.Attr < 0 || c.Attr >= s.d {
			return fmt.Errorf("rules: determinant attribute %d out of range", c.Attr)
		}
		if c.Kind == Interval && (c.Min < 0 || c.Max < c.Min) {
			return fmt.Errorf("rules: bad interval constraint [%v,%v] on attr %d", c.Min, c.Max, c.Attr)
		}
	}
	r.ID = len(s.all)
	s.all = append(s.all, r)
	s.byDep[r.Dependent] = append(s.byDep[r.Dependent], r)
	return nil
}

// MustAdd is Add that panics on error.
func (s *Set) MustAdd(r *Rule) {
	if err := s.Add(r); err != nil {
		panic(err)
	}
}

// ForDependent returns the rules imputing attribute j.
func (s *Set) ForDependent(j int) []*Rule { return s.byDep[j] }

// All returns every rule.
func (s *Set) All() []*Rule { return s.all }

// Len returns the number of rules.
func (s *Set) Len() int { return len(s.all) }

// D returns the schema dimensionality the set was built for.
func (s *Set) D() int { return s.d }

// Filter returns a new Set holding only rules of the given kinds, with ids
// reassigned. It lets the baselines run on DD-only or editing-only subsets.
func (s *Set) Filter(kinds ...Kind) *Set {
	keep := map[Kind]bool{}
	for _, k := range kinds {
		keep[k] = true
	}
	out := NewSet(s.d)
	for _, r := range s.all {
		if keep[r.Kind] {
			cp := *r
			out.MustAdd(&cp)
		}
	}
	return out
}
